lib/probe/leakage.ml: Float Format Hashtbl List Partition Secpol_core
