lib/probe/sampled.mli: Format Random Secpol_core
