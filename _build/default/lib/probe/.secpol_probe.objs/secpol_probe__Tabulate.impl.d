lib/probe/tabulate.ml: List Printf String
