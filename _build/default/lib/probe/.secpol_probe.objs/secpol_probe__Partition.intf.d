lib/probe/partition.mli: Secpol_core
