lib/probe/sampled.ml: Array Format Random Secpol_core
