lib/probe/tabulate.mli:
