lib/probe/leakage.mli: Format Secpol_core
