lib/probe/partition.ml: Hashtbl List Secpol_core Seq
