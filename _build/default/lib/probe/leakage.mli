(** Quantifying leaks in bits.

    Soundness is all-or-nothing; real systems (the paper's logon program,
    Example 5) survive on leaks that are merely {e small}. This module puts
    a number on "small": assuming inputs uniform over the space, the mutual
    information between what the policy withholds and what the user
    observes, i.e. the expected Shannon entropy of the observable within a
    policy class

    [leak = Σ_c (|c| / N) · H(obs | c)].

    A mechanism is sound iff the observable is constant per class iff this
    is zero bits. The paper's logon program leaks a fraction of a bit per
    query; an unprotected branch-on-secret leaks a whole bit; a timing
    channel leaks [log2] of the number of distinguishable durations. *)

type report = {
  avg_bits : float;  (** expected leak over a uniform input *)
  max_bits : float;  (** worst class *)
  leaky_classes : int;  (** classes with a non-constant observable *)
  classes : int;
  points : int;
}

val of_channel :
  Secpol_core.Policy.t ->
  (Secpol_core.Value.t array -> Secpol_core.Program.Obs.t) ->
  Secpol_core.Space.t ->
  report
(** Generic form: any deterministic observation function. *)

val of_program :
  ?view:Secpol_core.Program.view ->
  Secpol_core.Policy.t ->
  Secpol_core.Program.t ->
  Secpol_core.Space.t ->
  report
(** Leakage of the bare program (as its own mechanism). *)

val of_mechanism :
  ?view:Secpol_core.Program.view ->
  Secpol_core.Policy.t ->
  Secpol_core.Mechanism.t ->
  Secpol_core.Space.t ->
  report

val is_tight : report -> bool
(** Zero leak: the channel is sound. *)

val pp : Format.formatter -> report -> unit
