(** Partitioning an input space by a policy.

    The equivalence classes of [a ~ b <=> I(a) = I(b)] are the unit of every
    enforcement question: a sound mechanism is exactly one that is constant
    on each class, and the maximal mechanism grants exactly the classes on
    which the protected program is constant. *)

type t = {
  classes : (Secpol_core.Value.t * Secpol_core.Value.t array list) list;
      (** [(image, members)] per class; members in enumeration order *)
  points : int;  (** total number of inputs *)
}

val compute : Secpol_core.Policy.t -> Secpol_core.Space.t -> t

val class_count : t -> int

val largest_class : t -> int
(** Size of the biggest class — an upper bound on how much a violation of
    soundness could reveal. *)
