(** Plain-text tables for the experiment harness. *)

type t

val create : header:string list -> t

val add_row : t -> string list -> unit
(** @raise Invalid_argument if the row width differs from the header. *)

val render : t -> string
(** Monospace table with aligned columns and a rule under the header. *)

val print : ?title:string -> t -> unit
(** Render to stdout, optionally preceded by a title line. *)
