module Iset = Secpol_core.Iset
module Policy = Secpol_core.Policy
module Space = Secpol_core.Space
module Program = Secpol_core.Program
module Mechanism = Secpol_core.Mechanism
module Soundness = Secpol_core.Soundness

type verdict = Probably_sound of int | Unsound of Soundness.witness

let check ?(view = `Value) ~rng ~trials policy m space =
  let arity = Space.arity space in
  let allowed =
    match Policy.allowed_indices policy with
    | Some j -> j
    | None ->
        invalid_arg
          "Sampled.check: coordinate resampling needs an allow(...) policy"
  in
  let observe a = Mechanism.observe view (Mechanism.respond m a) in
  let resample_disallowed a =
    let b = Array.copy a in
    for i = 0 to arity - 1 do
      if not (Iset.mem i allowed) then begin
        let d = Space.domain space i in
        b.(i) <- d.(Random.State.int rng (Array.length d))
      end
    done;
    b
  in
  let rec go t =
    if t >= trials then Probably_sound trials
    else begin
      let a = Space.sample rng space in
      let b = resample_disallowed a in
      let oa = observe a and ob = observe b in
      if Program.Obs.equal oa ob then go (t + 1)
      else
        Unsound
          { Soundness.input_a = a; input_b = b; obs_a = oa; obs_b = ob }
    end
  in
  go 0

let pp_verdict ppf = function
  | Probably_sound n -> Format.fprintf ppf "no discrepancy in %d trials" n
  | Unsound w -> Soundness.pp_verdict ppf (Soundness.Unsound w)
