module Value = Secpol_core.Value
module Policy = Secpol_core.Policy
module Space = Secpol_core.Space

type t = { classes : (Value.t * Value.t array list) list; points : int }

let compute policy space =
  let tbl : (Value.t, Value.t array list ref) Hashtbl.t = Hashtbl.create 256 in
  let order = ref [] in
  let points = ref 0 in
  Seq.iter
    (fun a ->
      incr points;
      let key = Policy.image policy a in
      match Hashtbl.find_opt tbl key with
      | Some members -> members := a :: !members
      | None ->
          Hashtbl.add tbl key (ref [ a ]);
          order := key :: !order)
    (Space.enumerate space);
  let classes =
    List.rev_map (fun key -> (key, List.rev !(Hashtbl.find tbl key))) !order
  in
  { classes; points = !points }

let class_count t = List.length t.classes

let largest_class t =
  List.fold_left (fun acc (_, members) -> max acc (List.length members)) 0 t.classes
