module Value = Secpol_core.Value
module Policy = Secpol_core.Policy
module Program = Secpol_core.Program
module Mechanism = Secpol_core.Mechanism

type report = {
  avg_bits : float;
  max_bits : float;
  leaky_classes : int;
  classes : int;
  points : int;
}

let entropy counts total =
  let total = float_of_int total in
  List.fold_left
    (fun acc n ->
      let p = float_of_int n /. total in
      acc -. (p *. (Float.log p /. Float.log 2.0)))
    0.0 counts

let of_channel policy observe space =
  let partition = Partition.compute policy space in
  let class_stats =
    List.map
      (fun (_, members) ->
        let dist : (Program.Obs.t, int ref) Hashtbl.t = Hashtbl.create 8 in
        List.iter
          (fun a ->
            let o = observe a in
            match Hashtbl.find_opt dist o with
            | Some n -> incr n
            | None -> Hashtbl.add dist o (ref 1))
          members;
        let counts = Hashtbl.fold (fun _ n acc -> !n :: acc) dist [] in
        let size = List.length members in
        (size, entropy counts size, Hashtbl.length dist > 1))
      partition.Partition.classes
  in
  let points = partition.Partition.points in
  let avg_bits =
    List.fold_left
      (fun acc (size, h, _) -> acc +. (float_of_int size /. float_of_int points *. h))
      0.0 class_stats
  in
  let max_bits = List.fold_left (fun acc (_, h, _) -> Float.max acc h) 0.0 class_stats in
  let leaky_classes =
    List.length (List.filter (fun (_, _, leaky) -> leaky) class_stats)
  in
  {
    avg_bits;
    max_bits;
    leaky_classes;
    classes = List.length class_stats;
    points;
  }

let of_program ?(view = `Value) policy q space =
  of_channel policy (fun a -> Program.observe view (Program.run q a)) space

let of_mechanism ?(view = `Value) policy m space =
  of_channel policy (fun a -> Mechanism.observe view (Mechanism.respond m a)) space

let is_tight r = r.leaky_classes = 0

let pp ppf r =
  Format.fprintf ppf "avg %.4f bits, max %.4f bits (%d/%d classes leak)"
    r.avg_bits r.max_bits r.leaky_classes r.classes
