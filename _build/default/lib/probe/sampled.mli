(** Sampling-based soundness probing for spaces too large to enumerate.

    The black-box analogue of {!Secpol_core.Soundness.check}: draw an input,
    resample its disallowed coordinates (which by construction stays inside
    the same policy class), and compare observations. A discrepancy is a
    proof of unsoundness; [trials] agreements are only evidence — the
    verdict says so. Only [allow(...)] policies support coordinate
    resampling. *)

type verdict =
  | Probably_sound of int  (** trials performed, no discrepancy *)
  | Unsound of Secpol_core.Soundness.witness

val check :
  ?view:Secpol_core.Program.view ->
  rng:Random.State.t ->
  trials:int ->
  Secpol_core.Policy.t ->
  Secpol_core.Mechanism.t ->
  Secpol_core.Space.t ->
  verdict
(** @raise Invalid_argument on a non-[allow] policy. *)

val pp_verdict : Format.formatter -> verdict -> unit
