type t = { header : string list; mutable rows : string list list }

let create ~header = { header; rows = [] }

let add_row t row =
  if List.length row <> List.length t.header then
    invalid_arg
      (Printf.sprintf "Tabulate.add_row: expected %d cells, got %d"
         (List.length t.header) (List.length row));
  t.rows <- row :: t.rows

let render t =
  let rows = List.rev t.rows in
  let widths =
    List.fold_left
      (fun ws row -> List.map2 (fun w c -> max w (String.length c)) ws row)
      (List.map String.length t.header)
      rows
  in
  let line cells =
    String.concat "  "
      (List.map2 (fun w c -> c ^ String.make (w - String.length c) ' ') widths cells)
  in
  let rule =
    String.concat "  " (List.map (fun w -> String.make w '-') widths)
  in
  String.concat "\n" ((line t.header :: rule :: List.map line rows) @ [ "" ])

let print ?title t =
  (match title with Some s -> Printf.printf "%s\n" s | None -> ());
  print_string (render t)
