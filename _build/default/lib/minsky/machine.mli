(** Minsky register machines (Example 1's computation model).

    Fenton's memoryless subsystems — the paper's running Example 1 — are
    programs computed by Minsky machines: finitely many registers holding
    naturals, increment and decrement-or-jump-if-zero instructions. The
    machine here adds one pseudo-instruction, [Restore], used only by the
    Data Mark Machine ({!Dmm}) to model Fenton's restoration of the program
    counter's security class at control-flow joins; on a plain machine it is
    a no-op costing one step.

    Inputs load into registers [0 .. ninputs-1]; the output is the value of
    [out_reg] when the machine halts. *)

type instr =
  | Inc of int * int  (** [Inc (r, next)]: increment register r *)
  | Decjz of int * int * int
      (** [Decjz (r, if_zero, else_next)]: if register r is zero jump to
          [if_zero], otherwise decrement it and go to [else_next] *)
  | Restore of int  (** pop the program-counter mark (Dmm only); no-op here *)
  | Stop  (** halt *)

type t = {
  name : string;
  ninputs : int;
  nregs : int;  (** total registers; must be >= ninputs and > out_reg *)
  out_reg : int;
  code : instr array;
  entry : int;
}

val make :
  name:string -> ninputs:int -> nregs:int -> out_reg:int -> ?entry:int ->
  instr array -> t
(** @raise Invalid_argument on out-of-range registers or jump targets. *)

val run : ?fuel:int -> t -> int array -> Secpol_core.Program.outcome
(** Execute; one step per instruction executed. Negative inputs are clamped
    to 0 (registers hold naturals). *)

val program : ?fuel:int -> t -> Secpol_core.Program.t
(** As an extensional program over integer inputs. *)

val halts_within : t -> fuel:int -> int array -> bool
(** Used by the Theorem 4 / Ruzzo construction: does the machine halt in at
    most [fuel] steps on this input? *)

(** A small zoo used by tests and experiments. *)
module Zoo : sig
  val adder : t
  (** out := x0 + x1 *)

  val doubler : t
  (** out := 2 * x0 *)

  val zero_test : t
  (** out := 1 if x0 = 0 else 0 *)

  val looper : t
  (** halts iff x0 = 0 (spins forever otherwise) *)

  val slow_counter : t
  (** counts x0 down; running time proportional to x0, output 0 *)

  val implicit_copy : t
  (** out := (x0 = 0 ? 1 : 0) computed with no data flow at all — the
      program that forces mark-tracking machines to watch the program
      counter *)

  val negative_inference : t
  (** branches on the secret x0, halting inside the marked region when
      x0 = 0 and after a [Restore] otherwise — the paper's Example 1
      construction that makes the error-notice halt unsound *)
end
