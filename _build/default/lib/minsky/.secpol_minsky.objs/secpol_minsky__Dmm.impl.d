lib/minsky/dmm.ml: Array Machine Printf Secpol_core
