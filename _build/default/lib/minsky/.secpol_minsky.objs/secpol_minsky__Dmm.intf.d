lib/minsky/dmm.mli: Machine Secpol_core
