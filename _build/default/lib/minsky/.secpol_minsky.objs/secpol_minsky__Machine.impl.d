lib/minsky/machine.ml: Array Printf Secpol_core
