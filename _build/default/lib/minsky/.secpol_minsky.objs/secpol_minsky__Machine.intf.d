lib/minsky/machine.mli: Secpol_core
