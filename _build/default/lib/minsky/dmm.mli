(** Fenton's Data Mark Machine, and the paper's critique of it.

    Fenton attaches to each register a security attribute ([null] or
    [priv]) and to the program counter a class [P] that is raised when the
    machine branches on marked data. The paper (Example 1, continued) makes
    two observations this module turns into runnable experiments:

    - Fenton's [halt] statement, "[if P = null then halt]", is {e not
      completely defined} when [P <> null], and the natural completion that
      emits an error message is {e unsound}: a program can arrange to
      produce the error message iff a secret is zero — negative inference.
    - Even the benign completion (treat [halt] as a no-op) leaks through
      {e running time}, which Fenton and Denning leave open and the paper
      resolves by making time part of the output.

    Marks here generalize [priv]/[null] to input-index sets, exactly like
    the surveillance variables: a register is "[priv]" when its mark is not
    contained in the policy's allowed set. The program-counter mark is
    monotone by default; [Scoped] honors the {!Machine.Restore}
    pseudo-instruction, which models Fenton's class-restoring return
    discipline and is what makes the unsound halt interpretations
    {e observable} as unsound. *)

type pc_mode =
  | Monotone  (** the pc mark only grows; [Restore] is a no-op *)
  | Scoped  (** [Restore] pops the mark saved by the latest marked branch *)

type halt_mode =
  | Halt_noop
      (** [P] marked: skip the halt and continue with the next instruction
          (running past the last instruction spins forever). Fenton's
          benign reading. *)
  | Halt_error
      (** [P] marked: emit a violation notice immediately. The reading the
          paper proves unsound. *)
  | Halt_checked
      (** always stop; grant only if the output mark and [P] are within the
          allowed set. The surveillance-style sound completion. *)

type config = {
  allowed : Secpol_core.Iset.t;
  pc_mode : pc_mode;
  halt_mode : halt_mode;
  track_pc : bool;
      (** The ablation the paper points at: "A key point here is that we
          must keep track of [the surveillance variable] not only for
          input, program, and output variables but also for the program
          counter. The need to do this ... is independently illustrated in
          Fenton." With [false] the machine tracks data marks only; the
          implicit-copy machine then grants while copying a priv bit
          through pure control flow — measured unsound. Default [true]. *)
  fuel : int;
}

val config :
  ?fuel:int -> ?pc_mode:pc_mode -> ?halt_mode:halt_mode -> ?track_pc:bool ->
  Secpol_core.Policy.t -> config
(** Defaults: [Monotone], [Halt_checked], [track_pc = true].
    @raise Invalid_argument on a non-[allow] policy. *)

val run :
  config -> Machine.t -> Secpol_core.Value.t array -> Secpol_core.Mechanism.reply

val mechanism : config -> Machine.t -> Secpol_core.Mechanism.t

val notice : string
(** The violation notice the marked-halt interpretations emit. *)
