module Program = Secpol_core.Program
module Value = Secpol_core.Value

type instr =
  | Inc of int * int
  | Decjz of int * int * int
  | Restore of int
  | Stop

type t = {
  name : string;
  ninputs : int;
  nregs : int;
  out_reg : int;
  code : instr array;
  entry : int;
}

let make ~name ~ninputs ~nregs ~out_reg ?(entry = 0) code =
  let m = { name; ninputs; nregs; out_reg; code; entry } in
  let len = Array.length code in
  let check_target t =
    if t < 0 || t >= len then
      invalid_arg (Printf.sprintf "Machine.make %s: jump target %d out of range" name t)
  in
  let check_reg r =
    if r < 0 || r >= nregs then
      invalid_arg (Printf.sprintf "Machine.make %s: register %d out of range" name r)
  in
  if ninputs > nregs then invalid_arg "Machine.make: ninputs > nregs";
  if out_reg < 0 || out_reg >= nregs then invalid_arg "Machine.make: bad out_reg";
  check_target entry;
  Array.iter
    (function
      | Inc (r, n) ->
          check_reg r;
          check_target n
      | Decjz (r, z, n) ->
          check_reg r;
          check_target z;
          check_target n
      | Restore n -> check_target n
      | Stop -> ())
    code;
  m

let default_fuel = 100_000

let run ?(fuel = default_fuel) m inputs =
  if Array.length inputs <> m.ninputs then
    invalid_arg
      (Printf.sprintf "Machine.run %s: expected %d inputs, got %d" m.name
         m.ninputs (Array.length inputs));
  let regs = Array.make m.nregs 0 in
  Array.iteri (fun i v -> regs.(i) <- max 0 v) inputs;
  let rec go pc steps =
    if steps >= fuel then { Program.result = Program.Diverged; steps }
    else
      match m.code.(pc) with
      | Inc (r, next) ->
          regs.(r) <- regs.(r) + 1;
          go next (steps + 1)
      | Decjz (r, if_zero, next) ->
          if regs.(r) = 0 then go if_zero (steps + 1)
          else begin
            regs.(r) <- regs.(r) - 1;
            go next (steps + 1)
          end
      | Restore next -> go next (steps + 1)
      | Stop ->
          { Program.result = Program.Value (Value.Int regs.(m.out_reg)); steps }
  in
  go m.entry 0

let program ?fuel m =
  Program.make ~name:m.name ~arity:m.ninputs (fun a ->
      run ?fuel m (Array.map Value.to_int a))

let halts_within m ~fuel inputs =
  match (run ~fuel m inputs).Program.result with
  | Program.Value _ -> true
  | Program.Diverged | Program.Fault _ -> false

module Zoo = struct
  (* out := x0 + x1: drain r0 into r2, then r1 into r2. *)
  let adder =
    make ~name:"adder" ~ninputs:2 ~nregs:3 ~out_reg:2
      [|
        Decjz (0, 2, 1) (* 0: r0 -> ... *);
        Inc (2, 0) (* 1 *);
        Decjz (1, 4, 3) (* 2: r1 -> ... *);
        Inc (2, 2) (* 3 *);
        Stop (* 4 *);
      |]

  (* out := 2 * x0 *)
  let doubler =
    make ~name:"doubler" ~ninputs:1 ~nregs:2 ~out_reg:1
      [|
        Decjz (0, 3, 1) (* 0 *);
        Inc (1, 2) (* 1 *);
        Inc (1, 0) (* 2 *);
        Stop (* 3 *);
      |]

  (* out := if x0 = 0 then 1 else 0 *)
  let zero_test =
    make ~name:"zero-test" ~ninputs:1 ~nregs:2 ~out_reg:1
      [|
        Decjz (0, 1, 2) (* 0 *);
        Inc (1, 2) (* 1 *);
        Stop (* 2 *);
      |]

  (* Halts (out 0) iff x0 = 0; otherwise spins. *)
  let looper =
    make ~name:"looper" ~ninputs:1 ~nregs:2 ~out_reg:1
      [|
        Decjz (0, 2, 1) (* 0 *);
        Inc (0, 0) (* 1: restore and spin *);
        Stop (* 2 *);
      |]

  (* Counts x0 down to zero; output 0, time ~ x0. *)
  let slow_counter =
    make ~name:"slow-counter" ~ninputs:1 ~nregs:2 ~out_reg:1
      [| Decjz (0, 1, 0) (* 0 *); Stop (* 1 *) |]

  (* Implicit flow, Fenton's motivating case: copy whether x0 is zero into
     the output purely through control flow. No data ever moves from
     register 0 to register 1, so a machine tracking data marks alone
     waves it through. *)
  let implicit_copy =
    make ~name:"implicit-copy" ~ninputs:1 ~nregs:2 ~out_reg:1
      [|
        Decjz (0, 2, 1) (* 0: branch on the secret *);
        Stop (* 1: x0 <> 0, output stays 0 *);
        Inc (1, 3) (* 2: x0 = 0, output := 1 *);
        Stop (* 3 *);
      |]

  (* The paper's negative-inference trap (Example 1, continued): under the
     scoped Data Mark Machine with the error-notice halt, this emits the
     error iff x0 = 0 — leaking exactly the bit the policy withholds. *)
  let negative_inference =
    make ~name:"negative-inference" ~ninputs:1 ~nregs:2 ~out_reg:1
      [|
        Decjz (0, 1, 2) (* 0: branch on the secret *);
        Stop (* 1: halt while the pc is marked *);
        Restore 3 (* 2: clear the pc mark *);
        Stop (* 3: clean halt *);
      |]
end
