module Iset = Secpol_core.Iset
module Value = Secpol_core.Value
module Policy = Secpol_core.Policy
module Mechanism = Secpol_core.Mechanism

type pc_mode = Monotone | Scoped
type halt_mode = Halt_noop | Halt_error | Halt_checked

type config = {
  allowed : Iset.t;
  pc_mode : pc_mode;
  halt_mode : halt_mode;
  track_pc : bool;
  fuel : int;
}

let notice = "data-mark violation"

let config ?(fuel = 100_000) ?(pc_mode = Monotone) ?(halt_mode = Halt_checked)
    ?(track_pc = true) policy =
  match Policy.allowed_indices policy with
  | Some allowed -> { allowed; pc_mode; halt_mode; track_pc; fuel }
  | None ->
      invalid_arg "Dmm.config: data marks are defined for allow(...) policies"

let run cfg (m : Machine.t) inputs =
  if Array.length inputs <> m.Machine.ninputs then
    invalid_arg
      (Printf.sprintf "Dmm.run %s: expected %d inputs, got %d" m.Machine.name
         m.Machine.ninputs (Array.length inputs));
  let regs = Array.make m.Machine.nregs 0 in
  let marks = Array.make m.Machine.nregs Iset.empty in
  Array.iteri
    (fun i v ->
      regs.(i) <- max 0 (Value.to_int v);
      marks.(i) <- Iset.singleton i)
    inputs;
  let pc_mark = ref Iset.empty in
  let saved : Iset.t list ref = ref [] in
  let ok l = Iset.subset l cfg.allowed in
  let reply response steps = { Mechanism.response; steps } in
  let len = Array.length m.Machine.code in
  let rec go pc steps =
    if steps >= cfg.fuel then reply Mechanism.Hung steps
    else if pc >= len then
      (* Ran past the end (Halt_noop on the last instruction): Fenton leaves
         this undefined; the machine simply never answers. *)
      reply Mechanism.Hung cfg.fuel
    else
      match m.Machine.code.(pc) with
      | Machine.Inc (r, next) ->
          regs.(r) <- regs.(r) + 1;
          marks.(r) <- Iset.union marks.(r) !pc_mark;
          go next (steps + 1)
      | Machine.Decjz (r, if_zero, next) ->
          (match cfg.pc_mode with
          | Monotone -> ()
          | Scoped -> saved := !pc_mark :: !saved);
          if cfg.track_pc then pc_mark := Iset.union !pc_mark marks.(r);
          if regs.(r) = 0 then go if_zero (steps + 1)
          else begin
            regs.(r) <- regs.(r) - 1;
            marks.(r) <- Iset.union marks.(r) !pc_mark;
            go next (steps + 1)
          end
      | Machine.Restore next ->
          (match (cfg.pc_mode, !saved) with
          | Scoped, top :: rest ->
              pc_mark := top;
              saved := rest
          | Scoped, [] | Monotone, _ -> ());
          go next (steps + 1)
      | Machine.Stop -> (
          let out_ok = ok (Iset.union marks.(m.Machine.out_reg) !pc_mark) in
          match cfg.halt_mode with
          | Halt_checked ->
              if out_ok then
                reply (Mechanism.Granted (Value.Int regs.(m.Machine.out_reg))) steps
              else reply (Mechanism.Denied notice) steps
          | Halt_noop ->
              if ok !pc_mark then
                if ok marks.(m.Machine.out_reg) then
                  reply (Mechanism.Granted (Value.Int regs.(m.Machine.out_reg))) steps
                else reply (Mechanism.Denied notice) steps
              else go (pc + 1) (steps + 1)
          | Halt_error ->
              if ok !pc_mark then
                if ok marks.(m.Machine.out_reg) then
                  reply (Mechanism.Granted (Value.Int regs.(m.Machine.out_reg))) steps
                else reply (Mechanism.Denied notice) steps
              else reply (Mechanism.Denied "halted under privileged control") steps)
  in
  go m.Machine.entry 0

let mechanism cfg m =
  Mechanism.make
    ~name:(Printf.sprintf "dmm(%s)" m.Machine.name)
    ~arity:m.Machine.ninputs
    (fun a -> run cfg m a)
