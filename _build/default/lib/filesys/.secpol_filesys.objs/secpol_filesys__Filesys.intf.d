lib/filesys/filesys.mli: Secpol_core
