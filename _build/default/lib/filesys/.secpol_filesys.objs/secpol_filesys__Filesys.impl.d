lib/filesys/filesys.ml: Array List Printf Secpol_core
