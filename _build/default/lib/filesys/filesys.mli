(** Example 2: a simple file system with a content-dependent policy.

    The program shape is [Q : D1 x ... x Dk x F1 x ... x Fk -> E] — [k]
    directories (each saying whether its file may be read) followed by [k]
    files. Input [i] is directory [i]; input [k + i] is file [i].

    The policy is the paper's content-dependent one:

    [I(d1..dk, f1..fk) = (d1..dk, f1'..fk')] with [fi' = fi] if
    [di = YES] and a fixed sentinel otherwise.

    It is {e not} of the [allow(...)] form — what the user may learn about
    input [k + i] depends on the {e value} of input [i]. Directories
    themselves are always visible. *)

val arity : k:int -> int
(** [2 * k]. *)

val space : k:int -> file_values:int list -> Secpol_core.Space.t
(** Directories range over {YES, NO} (booleans); files over the given
    contents. *)

val policy : k:int -> Secpol_core.Policy.t
(** The content-dependent filter above. *)

val read_file : k:int -> slot:int -> Secpol_core.Program.t
(** [Q = f_slot]: return the file's content, {e ignoring} the directory —
    unsound as its own mechanism as soon as the slot's directory can say
    NO. *)

val read_sum_permitted : k:int -> Secpol_core.Program.t
(** Sum of the contents of exactly the permitted files. Checks permissions
    itself, so as its own mechanism it is sound — a program can be its own
    (nontrivial) protection mechanism. *)

val monitor : k:int -> slot:int -> Secpol_core.Mechanism.t
(** The reference monitor for {!read_file}: grants the file's content when
    the directory says YES and otherwise answers the paper's violation
    notice "Illegal access attempted, run aborted". Sound: its decision
    depends only on the directory, which the policy always reveals. *)

val violation_notice : string
