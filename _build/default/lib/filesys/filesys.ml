module Value = Secpol_core.Value
module Space = Secpol_core.Space
module Policy = Secpol_core.Policy
module Program = Secpol_core.Program
module Mechanism = Secpol_core.Mechanism

let arity ~k = 2 * k

let violation_notice = "Illegal access attempted, run aborted"

let check_slot ~k slot =
  if slot < 0 || slot >= k then invalid_arg "Filesys: slot out of range"

let space ~k ~file_values =
  let dirs = List.init k (fun _ -> [ Value.Bool true; Value.Bool false ]) in
  let files = List.init k (fun _ -> List.map Value.int file_values) in
  Space.of_domains (dirs @ files)

let permitted a i =
  match a.(i) with
  | Value.Bool b -> b
  | _ -> invalid_arg "Filesys: directory input is not a boolean"

(* fi' = fi if di = YES, else a sentinel outside the file domain (the paper
   writes 0; a sentinel keeps "filtered" distinct from a file containing 0). *)
let policy ~k =
  Policy.filter ~name:(Printf.sprintf "file-system(k=%d)" k) (fun a ->
      let dirs = Array.to_list (Array.sub a 0 k) in
      let files =
        List.init k (fun i ->
            if permitted a i then a.(k + i) else Value.str "#denied")
      in
      Value.tuple (dirs @ files))

let read_file ~k ~slot =
  check_slot ~k slot;
  Program.of_fun
    ~name:(Printf.sprintf "read-file-%d" slot)
    ~arity:(arity ~k)
    (fun a -> a.(k + slot))

let read_sum_permitted ~k =
  Program.of_fun ~name:"read-sum-permitted" ~arity:(arity ~k) (fun a ->
      let sum = ref 0 in
      for i = 0 to k - 1 do
        if permitted a i then sum := !sum + Value.to_int a.(k + i)
      done;
      Value.int !sum)

let monitor ~k ~slot =
  check_slot ~k slot;
  Mechanism.make
    ~name:(Printf.sprintf "monitor-file-%d" slot)
    ~arity:(arity ~k)
    (fun a ->
      if permitted a slot then
        { Mechanism.response = Mechanism.Granted a.(k + slot); steps = 1 }
      else { Mechanism.response = Mechanism.Denied violation_notice; steps = 1 })
