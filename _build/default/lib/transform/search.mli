(** Bounded mechanism synthesis by transformation.

    Section 4: "This example is just an instance of a general way to
    generate many different protection mechanisms: Given a program Q,
    transform it to Q' where Q and Q' are functionally equivalent. Then
    apply the surveillance protection mechanism to Q'." And: "Whether to
    apply a transform or not is not necessarily a clearcut decision" —
    indeed Theorem 4 makes the optimal choice uncomputable.

    This module is the honest version of that idea: enumerate bounded
    sequences of the library's transforms, keep the candidates that remain
    functionally equivalent on the experiment space, attach the
    surveillance mechanism (and the per-halt static guard) to each, verify
    soundness exhaustively, and return the join of every surviving
    candidate — by Theorem 1 itself a sound mechanism at least as complete
    as each. The result provably sits between plain surveillance and the
    brute-force maximal mechanism; how much of the gap it closes is
    measured per program (experiment E17).

    Everything here is exhaustive over the provided finite space, so the
    output is trustworthy-by-construction; what Theorem 4 forbids is doing
    this uniformly and effectively over unbounded domains, not per finite
    experiment. *)

module Ast = Secpol_flowgraph.Ast

type candidate = {
  label : string;  (** the transform sequence, e.g. ["dup;ite"] *)
  mechanism : Secpol_core.Mechanism.t;
  ratio : float;  (** completeness on the search space *)
}

type report = {
  best : Secpol_core.Mechanism.t;  (** join of all sound candidates *)
  best_ratio : float;
  candidates : candidate list;  (** every sound candidate, best ratio first *)
  maximal_ratio : float;  (** the Theorem-2 yardstick, for the gap *)
  discarded : (string * string) list;
      (** transform sequences dropped, with the reason (inequivalent on
          the space, or measured unsound) *)
}

val search :
  ?max_depth:int ->
  ?while_bound:int ->
  policy:Secpol_core.Policy.t ->
  space:Secpol_core.Space.t ->
  Ast.prog ->
  report
(** [search ~policy ~space prog] explores transform sequences up to
    [max_depth] (default 2) drawn from: the if-then-else transform (with
    and without simplification), assignment duplication, and predicated
    loop unrolling with [while_bound] (default 4, checked for equivalence
    before use). Every candidate mechanism is verified sound on [space];
    unsound or inequivalent candidates land in [discarded] rather than in
    the result.
    @raise Invalid_argument on a non-[allow] policy. *)
