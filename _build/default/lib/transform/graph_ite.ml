module Var = Secpol_flowgraph.Var
module Expr = Secpol_flowgraph.Expr
module Graph = Secpol_flowgraph.Graph
module Graphalgo = Secpol_flowgraph.Graphalgo

(* A straight, privately-owned assignment chain from [start] to [stop]:
   every node strictly between is an Assign with exactly one predecessor. *)
let chain_to g preds ~start ~stop =
  let rec walk acc node =
    if node = stop then Some (List.rev acc)
    else
      match g.Graph.nodes.(node) with
      | Graph.Assign (v, e, next) when List.length preds.(node) = 1 ->
          walk ((v, e) :: acc) next
      | _ -> None
  in
  walk [] start

let diamond g preds ipd d =
  match g.Graph.nodes.(d) with
  | Graph.Decision (p, t, f) when ipd.(d) >= 0 ->
      let j = ipd.(d) in
      (match (chain_to g preds ~start:t ~stop:j, chain_to g preds ~start:f ~stop:j) with
      | Some ct, Some cf -> Some (p, ct, cf, j)
      | _ -> None)
  | _ -> None

let diamonds g =
  let preds = Graphalgo.predecessors g in
  let ipd = Graphalgo.immediate_postdominator g in
  List.filter
    (fun d -> diamond g preds ipd d <> None)
    (List.init (Graph.node_count g) Fun.id)

(* Sequential composition of a chain as a substitution over the pre-state. *)
let effect chain =
  List.fold_left
    (fun sigma (v, e) -> Var.Map.add v (Expr.subst sigma e) sigma)
    Var.Map.empty chain

let rewrite_one ~simp g (d, (p, ct, cf, j)) =
  let st = effect ct and sf = effect cf in
  let get s v = match Var.Map.find_opt v s with Some e -> e | None -> Expr.Var v in
  let assigned =
    Var.Map.fold (fun v _ acc -> Var.Set.add v acc) st Var.Set.empty
    |> Var.Map.fold (fun v _ acc -> Var.Set.add v acc) sf
  in
  let fresh = ref (Graph.max_reg g + 1) in
  let selects =
    Var.Set.fold
      (fun v acc ->
        let t = Var.Reg !fresh in
        incr fresh;
        let e = Expr.Cond (p, get st v, get sf v) in
        (v, t, if simp then Expr.simplify e else e) :: acc)
      assigned []
  in
  (* d becomes the head of: t_i := select_i ... ; v_i := t_i ... ; -> j.
     New nodes are appended; d's own slot holds the first instruction. *)
  let nodes = ref [] in
  let base = Graph.node_count g in
  let push node =
    nodes := node :: !nodes;
    base + List.length !nodes - 1
  in
  let instrs =
    List.map (fun (_, t, e) -> (t, e)) selects
    @ List.map (fun (v, t, _) -> (v, Expr.Var t)) selects
  in
  let replacement, appended =
    match instrs with
    | [] ->
        (* Degenerate diamond: the test vanishes entirely. *)
        let t = Var.Reg !fresh in
        (Graph.Assign (t, Expr.Const 0, j), [])
    | (v0, e0) :: rest ->
        (* Chain the tail through appended slots; the head sits at d. *)
        let rec build = function
          | [] -> j
          | (v, e) :: more ->
              let next = build more in
              push (Graph.Assign (v, e, next))
        in
        let next = build rest in
        (Graph.Assign (v0, e0, next), List.rev !nodes)
  in
  let new_nodes = Array.append (Array.copy g.Graph.nodes) (Array.of_list appended) in
  new_nodes.(d) <- replacement;
  Graph.make ~name:g.Graph.name ~arity:g.Graph.arity ~entry:g.Graph.entry new_nodes

let rewrite ?(simplify = true) g =
  Array.iter
    (function
      | Graph.Halt_violation _ ->
          invalid_arg "Graph_ite.rewrite: graph is already a mechanism"
      | _ -> ())
    g.Graph.nodes;
  let rec fix g =
    let preds = Graphalgo.predecessors g in
    let ipd = Graphalgo.immediate_postdominator g in
    let candidate =
      List.find_map
        (fun d ->
          match diamond g preds ipd d with
          | Some dd -> Some (d, dd)
          | None -> None)
        (List.init (Graph.node_count g) Fun.id)
    in
    match candidate with
    | None -> g
    | Some c -> fix (rewrite_one ~simp:simplify g c)
  in
  let out = fix g in
  { out with Graph.name = g.Graph.name ^ "+gite" }
