(** Program transformations that change what surveillance can see.

    Section 4's key insight: surveillance applied to a {e functionally
    equivalent} rewriting [Q'] of [Q] is still a sound protection mechanism
    for [Q] — and may be strictly more or strictly less complete than
    surveillance on [Q] itself (Examples 7 and 8). Theorem 4 says choosing
    the best rewriting is undecidable, so these are heuristics a user
    composes, not an optimizer.

    Three transforms are provided:

    - {!ite}: the if-then-else transform. A branch whose arms are loop-free
      is replaced by straight-line code computing every assigned variable
      with a branchless select ([Expr.Cond]): control dependence on the test
      becomes data dependence. With [~simplify:true], selects whose arms
      coincide collapse ([Cond (p, e, e) = e]) — this is how Example 7's
      program becomes surveillance-transparent.
    - {!predicate_loops}: the while transform, realized as bounded predicated
      unrolling. Each of [bound] copies of the body executes unconditionally
      with every assignment guarded by a running guard register
      [g := g AND test]; assignments become [v := Cond (g = 1, e, v)]. The
      result is functionally equivalent whenever the loop exits within
      [bound] iterations (check with {!equivalent_on}); past the bound the
      transformed program falls into a deliberate infinite loop so that it
      never reports a {e wrong} value.
    - {!sink_into_branches}: the duplication transform of Example 9. Code
      following an [If] is copied into both arms, so that after compilation
      (and {!split_halts}) each path owns its final assignments and halt box
      — which is what lets a per-halt static mechanism serve the clean path
      while denying only the dirty one. *)

module Ast = Secpol_flowgraph.Ast
module Graph = Secpol_flowgraph.Graph

val ite : ?simplify:bool -> Ast.prog -> Ast.prog
(** Apply the if-then-else transform to every [If] whose branches are
    loop-free (innermost first). [simplify] (default [true]) folds constants
    and collapses equal-armed selects afterwards. *)

val predicate_loops : ?residual:bool -> bound:int -> Ast.prog -> Ast.prog
(** Apply the while transform: replace every [While] (innermost first,
    provided its body is loop-free after inner transformation) by [bound]
    predicated copies of its body. The program's register count grows by
    one guard per loop.

    With [residual] (the default) a trailing [while guard do skip] diverges
    when the bound was insufficient, so the transform never answers wrongly
    — but that residual decision re-taints the program counter with the
    loop test, defeating the transform's purpose under surveillance. Pass
    [~residual:false] {e only} after establishing (e.g. with
    {!equivalent_on}) that [bound] covers every iteration count the input
    space can produce; the result is then branch-free straight-line code
    and surveillance sees no control dependence on the test at all.
    @raise Invalid_argument if [bound < 0]. *)

val sink_into_branches : Ast.prog -> Ast.prog
(** Duplicate statements following each [If] into both of its arms, making
    every post-branch computation path-private. *)

val split_halts : Graph.t -> Graph.t
(** Give every predecessor of a shared halt box its own copy, so per-halt
    static checks become per-path checks. *)

val equivalent_on :
  ?fuel:int ->
  Ast.prog ->
  Ast.prog ->
  Secpol_core.Space.t ->
  (unit, Secpol_core.Value.t array) result
(** Check functional equivalence (output values; not timing) of two
    structured programs over a finite space; the error carries a
    distinguishing input. Transforms deliberately change step counts, so
    equivalence is the untimed notion — which is also all that soundness of
    surveillance-after-transform requires when time is unobservable. *)
