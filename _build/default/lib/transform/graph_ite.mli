(** The if-then-else transform directly on flowcharts.

    {!Transforms.ite} needs structured syntax; the paper's programs are
    arbitrary flowcharts. This pass finds {e diamonds} — a decision box
    whose two branches are straight assignment chains, privately owned
    (no edges jump into their middles), meeting again at the decision's
    immediate postdominator — and replaces each with branch-free code:
    every variable either branch assigns gets one [Expr.Cond] select, so
    control dependence on the test becomes data dependence, exactly as in
    Section 4. Degenerate diamonds (both edges straight to the join)
    disappear entirely, taking the test's taint with them.

    The pass iterates to a fixpoint, so nested diamonds collapse from the
    inside out. Cost: the rewritten region evaluates both branches' work
    on every run (the usual price of predication); functional behaviour is
    preserved exactly, which the property tests check against the plain
    interpreter. *)

val rewrite : ?simplify:bool -> Secpol_flowgraph.Graph.t -> Secpol_flowgraph.Graph.t
(** Collapse every recognizable diamond; [simplify] (default true) folds
    the synthesized selects, letting equal-armed diamonds (Example 7's
    shape) shed the test's taint entirely.
    @raise Invalid_argument if the graph contains violation halts (rewrite
    programs, not mechanisms). *)

val diamonds : Secpol_flowgraph.Graph.t -> int list
(** Indices of currently rewritable decision boxes (one fixpoint step's
    worth), mainly for tests and inspection. *)
