lib/transform/graph_ite.mli: Secpol_flowgraph
