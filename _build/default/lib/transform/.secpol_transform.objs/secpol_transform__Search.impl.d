lib/transform/search.ml: Float Graph_ite Hashtbl List Secpol_core Secpol_flowgraph Secpol_staticflow Secpol_taint Transforms
