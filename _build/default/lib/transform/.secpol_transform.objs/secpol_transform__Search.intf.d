lib/transform/search.mli: Secpol_core Secpol_flowgraph
