lib/transform/transforms.mli: Secpol_core Secpol_flowgraph
