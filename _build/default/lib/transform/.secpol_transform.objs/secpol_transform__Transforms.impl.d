lib/transform/transforms.ml: Array Hashtbl List Option Printf Secpol_core Secpol_flowgraph Seq
