lib/transform/graph_ite.ml: Array Fun List Secpol_flowgraph
