lib/corpus/generator.ml: Format List QCheck Secpol_core Secpol_flowgraph
