lib/corpus/generator.mli: QCheck Secpol_core Secpol_flowgraph
