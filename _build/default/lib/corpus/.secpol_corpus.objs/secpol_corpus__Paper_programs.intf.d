lib/corpus/paper_programs.mli: Secpol_core Secpol_flowgraph
