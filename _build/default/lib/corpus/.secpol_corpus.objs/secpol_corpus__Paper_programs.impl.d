lib/corpus/paper_programs.ml: List Secpol_core Secpol_flowgraph
