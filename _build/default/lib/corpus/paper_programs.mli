(** The programs that appear in the paper, reconstructed.

    Each entry packages a structured program with the policy and the finite
    input space under which the paper discusses it, plus the claim the
    experiments check against. Figures in the source text of the paper are
    partially garbled; where a flowchart had to be reconstructed from the
    surrounding prose the [note] says so and EXPERIMENTS.md discusses the
    reconstruction. Input numbering is 0-based here (the paper's [x1] is
    [x0]).

    Domains default to small integer ranges: every quantifier the paper
    states ("for all inputs ...") is then checked exhaustively. *)

module Ast = Secpol_flowgraph.Ast

type entry = {
  name : string;
  prog : Ast.prog;
  policy : Secpol_core.Policy.t;
  space : Secpol_core.Space.t;
  paper_ref : string;  (** where in the paper the program appears *)
  claim : string;  (** what the paper asserts about it *)
  note : string;  (** reconstruction caveats, if any *)
}

val graph : entry -> Secpol_flowgraph.Graph.t

val program : ?fuel:int -> entry -> Secpol_core.Program.t

val forgetting : entry
(** Section 3's comparison of surveillance and high-water mark:
    [y := x0; if x1 = 0 then y := x1]. Surveillance grants when x1 = 0;
    high-water never grants. *)

val constant_branch : entry
(** Section 4's non-maximality witness: both branches of a test on the
    disallowed input assign the same constant, so Q is constant and
    [Mmax = Q], yet surveillance always denies. *)

val ex7 : entry
(** Example 7: the if-then-else transform (with simplification) turns the
    always-denying surveillance mechanism into a maximal one. *)

val ex8 : entry
(** Example 8: the same transform is harmful — surveillance on the original
    grants when x1 = 1, on the transformed program never. *)

val ex9 : entry
(** Example 9 (Section 5): whole-program static certification rejects;
    duplicating the post-branch assignment into both arms and splitting
    halt boxes lets the per-halt static mechanism serve the clean path,
    denying only when x0 <> 0. *)

val timing_constant : entry
(** Section 2's observability example: output identically 1, but a loop on
    the secret makes running time reveal whether x0 = 0. Sound untimed,
    unsound timed. *)

val loop_then_secretfree : entry
(** A loop governed by the disallowed input followed by an allowed
    assignment: surveillance's monotone [C̄] ruins it; the while transform
    (predicated unrolling) rescues it. *)

val scoped_trap : entry
(** [if x1 = 0 then y := x0] under [allow(0)]: the scoped mechanism grants
    everywhere and is unsound; plain surveillance denies everywhere. *)

val direct_flow : entry
(** [y := x0 + x1] under [allow(0)]: nothing can serve this but denial. *)

val branch_allowed : entry
(** Branching on an {e allowed} input only: every mechanism should grant
    everywhere. *)

val thm4_family : (int -> int) -> name:string -> entry
(** Theorem 4's construction: [y := A(x0)] under [allow()]. The maximal
    mechanism is the constant 0 iff [A] vanishes everywhere — deciding
    which is as hard as deciding [∀x. A(x) = 0]. The function is supplied
    as an OCaml function and embedded pointwise over the entry's finite
    domain (the theorem is about the impossibility of doing this uniformly
    and effectively for {e all} [A]). *)

val all : entry list
(** Every fixed entry above, in presentation order. *)

val find : string -> entry
(** @raise Not_found on an unknown name. *)
