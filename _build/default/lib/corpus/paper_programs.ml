module Value = Secpol_core.Value
module Space = Secpol_core.Space
module Policy = Secpol_core.Policy
module Var = Secpol_flowgraph.Var
module Expr = Secpol_flowgraph.Expr
module Ast = Secpol_flowgraph.Ast
module Compile = Secpol_flowgraph.Compile
module Interp = Secpol_flowgraph.Interp
open Expr.Build

type entry = {
  name : string;
  prog : Ast.prog;
  policy : Policy.t;
  space : Space.t;
  paper_ref : string;
  claim : string;
  note : string;
}

let graph e = Compile.compile e.prog
let program ?fuel e = Interp.ast_program ?fuel e.prog

let assign v e = Ast.Assign (v, e)
let out = Var.Out
let reg n = Var.Reg n

let small_space arity = Space.ints ~lo:0 ~hi:3 ~arity

let forgetting =
  {
    name = "forgetting";
    prog =
      Ast.prog ~name:"forgetting" ~arity:2
        (Ast.seq
           [ assign out (x 0); Ast.If (x 1 =: i 0, assign out (x 1), Ast.Skip) ]);
    policy = Policy.allow [ 1 ];
    space = small_space 2;
    paper_ref = "Section 3, Ms vs Mh flowchart";
    claim =
      "high-water always denies; surveillance forgets y's old taint on \
       reassignment and grants exactly when x1 = 0";
    note = "";
  }

let constant_branch =
  {
    name = "constant-branch";
    prog =
      Ast.prog ~name:"constant-branch" ~arity:2
        (Ast.If (x 0 =: i 1, assign out (i 1), assign out (i 1)));
    policy = Policy.allow [ 1 ];
    space = small_space 2;
    paper_ref = "Section 4, non-maximality of surveillance";
    claim =
      "Q is the constant 1, so Mmax = Q grants everywhere; surveillance \
       always denies because both arms assign under a disallowed test";
    note = "";
  }

let ex7 =
  {
    name = "ex7";
    prog =
      Ast.prog ~name:"ex7" ~arity:2
        (Ast.seq
           [
             Ast.If (x 0 =: i 1, assign (reg 0) (i 1), assign (reg 0) (i 2));
             Ast.If (r 0 =: i 1, assign out (i 1), assign out (i 1));
           ]);
    policy = Policy.allow [ 1 ];
    space = small_space 2;
    paper_ref = "Example 7";
    claim =
      "surveillance on Q always denies; after the if-then-else transform \
       (with simplification) the mechanism always outputs 1 and is maximal";
    note = "figure reconstructed from the prose: the last if-then-else has \
            functionally identical arms";
  }

let ex8 =
  {
    name = "ex8";
    prog =
      Ast.prog ~name:"ex8" ~arity:2
        (Ast.If (x 1 =: i 1, assign out (i 1), assign out (x 0)));
    policy = Policy.allow [ 1 ];
    space = small_space 2;
    paper_ref = "Example 8";
    claim =
      "surveillance on Q grants exactly when x1 = 1; the if-then-else \
       transform merges both arms into one select and always denies — the \
       transform is not always advisable";
    note = "figure reconstructed from the prose (M outputs 1 provided the \
            allowed input equals 1)";
  }

let ex9 =
  {
    name = "ex9";
    prog =
      Ast.prog ~name:"ex9" ~arity:2
        (Ast.seq
           [
             Ast.If (x 0 =: i 0, assign (reg 0) (i 1), assign (reg 0) (x 1));
             assign out (r 0);
           ]);
    policy = Policy.allow [ 0 ];
    space = small_space 2;
    paper_ref = "Example 9 (Section 5)";
    claim =
      "whole-program static certification rejects; the if-then-else \
       transform always denies; duplicating the assignment to y into both \
       arms and splitting halt boxes yields a compile-time mechanism that \
       denies exactly when x0 <> 0";
    note = "figure reconstructed: branch on the allowed input, one arm \
            clean, the other reading the disallowed input";
  }

let timing_constant =
  {
    name = "timing-constant";
    prog =
      Ast.prog ~name:"timing-constant" ~arity:1
        (Ast.seq
           [
             Ast.If
               ( x 0 =: i 0,
                 Ast.seq
                   [
                     assign (reg 0) (i 4);
                     Ast.While (r 0 >: i 0, assign (reg 0) (r 0 -: i 1));
                   ],
                 Ast.Skip );
             assign out (i 1);
           ]);
    policy = Policy.allow_none;
    space = Space.ints ~lo:0 ~hi:3 ~arity:1;
    paper_ref = "Section 2, observability postulate example";
    claim =
      "Q computes the constant 1, hence is sound as its own mechanism when \
       only values are observable — and unsound the moment the step count \
       is part of the output";
    note = "";
  }

let loop_then_secretfree =
  {
    name = "loop-then-secretfree";
    prog =
      Ast.prog ~name:"loop-then-secretfree" ~arity:2
        (Ast.seq
           [
             assign (reg 0) (x 0);
             Ast.While (r 0 >: i 0, assign (reg 0) (r 0 -: i 1));
             assign out (x 1);
           ]);
    policy = Policy.allow [ 1 ];
    space = small_space 2;
    paper_ref = "Section 4, while transform";
    claim =
      "surveillance's monotone program-counter taint contaminates the \
       final allowed assignment, denying everywhere; the while transform \
       (predicated unrolling) makes the mechanism grant everywhere";
    note = "loop program chosen to exercise the while transform the paper \
            sketches";
  }

let scoped_trap =
  {
    name = "scoped-trap";
    prog =
      Ast.prog ~name:"scoped-trap" ~arity:2
        (Ast.If (x 1 =: i 0, assign out (x 0), Ast.Skip));
    policy = Policy.allow [ 0 ];
    space = small_space 2;
    paper_ref = "Section 4 discussion / Example 1's negative inference";
    claim =
      "restoring the program-counter taint at the join (the scoped \
       mechanism) grants the untaken-branch inputs and is unsound: whether \
       y was overwritten reveals the disallowed test; plain surveillance's \
       monotone counter taint denies everywhere and stays sound";
    note = "standard counterexample to purely dynamic flow-sensitive \
            monitoring";
  }

let direct_flow =
  {
    name = "direct-flow";
    prog =
      Ast.prog ~name:"direct-flow" ~arity:2 (assign out (x 0 +: x 1));
    policy = Policy.allow [ 0 ];
    space = small_space 2;
    paper_ref = "Section 2 (allow policies)";
    claim = "the output genuinely depends on the disallowed input; every \
             sound mechanism must always deny";
    note = "";
  }

let branch_allowed =
  {
    name = "branch-allowed";
    prog =
      Ast.prog ~name:"branch-allowed" ~arity:2
        (Ast.If (x 0 =: i 0, assign out (i 1), assign out (i 2)));
    policy = Policy.allow [ 0 ];
    space = small_space 2;
    paper_ref = "baseline";
    claim = "only allowed inputs are consulted: every mechanism, dynamic or \
             static, grants everywhere";
    note = "";
  }

(* Theorem 4: y := A(x0) with nothing allowed. The arbitrary total function
   A is embedded pointwise over the entry's finite domain as a chain of
   branchless selects. *)
let thm4_family f ~name =
  let lo = 0 and hi = 7 in
  let rec chain v = if v > hi then i (f hi) else cond (x 0 =: i v) (i (f v)) (chain (v + 1)) in
  {
    name;
    prog = Ast.prog ~name ~arity:1 (assign out (chain lo));
    policy = Policy.allow_none;
    space = Space.ints ~lo ~hi ~arity:1;
    paper_ref = "Theorem 4";
    claim =
      "the maximal mechanism grants iff A is constant on the domain; \
       surveillance always denies; no effective uniform procedure can \
       decide which case holds for arbitrary A";
    note = "A embedded pointwise over the finite domain";
  }

let all =
  [
    forgetting;
    constant_branch;
    ex7;
    ex8;
    ex9;
    timing_constant;
    loop_then_secretfree;
    scoped_trap;
    direct_flow;
    branch_allowed;
  ]

let find name = List.find (fun e -> e.name = name) all
