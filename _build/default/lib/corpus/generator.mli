(** Random well-formed structured programs for property-based testing.

    Every generated program terminates by construction: loops are counted
    down on dedicated counter registers that the loop body cannot touch, and
    counters start from an input or a small constant — so the exhaustive
    checks the properties perform never hit the fuel bound in practice.

    Generated programs use arithmetic without division, so they never
    fault. *)

module Ast = Secpol_flowgraph.Ast

type params = {
  arity : int;  (** number of inputs; at least 1 *)
  max_reg : int;  (** general-purpose registers 0..max_reg *)
  depth : int;  (** statement nesting budget *)
}

val default : params
(** arity 2, two registers, depth 3. *)

val gen : params -> Ast.prog QCheck.Gen.t

val shrink : Ast.prog QCheck.Shrink.t
(** Structural shrinking: replace subtrees with [Skip], drop sequence
    elements, promote branch arms and loop bodies. Shrunk programs remain
    well-formed (only removals), so failing properties minimize to small
    readable witnesses. *)

val arbitrary : params -> Ast.prog QCheck.arbitrary
(** With a printer and {!shrink}, for readable counterexamples. *)

val space_for : params -> Secpol_core.Space.t
(** A small exhaustive input space ([{0..2}^arity]) matched to the
    generator's constants. *)
