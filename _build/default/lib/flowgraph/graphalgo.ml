module ISet = Set.Make (Int)

let predecessors g =
  let n = Graph.node_count g in
  let preds = Array.make n [] in
  for i = 0 to n - 1 do
    List.iter (fun s -> preds.(s) <- i :: preds.(s)) (Graph.successors g i)
  done;
  preds

let can_reach_halt g =
  let n = Graph.node_count g in
  let preds = predecessors g in
  let ok = Array.make n false in
  let rec mark i =
    if not ok.(i) then begin
      ok.(i) <- true;
      List.iter mark preds.(i)
    end
  in
  List.iter mark (Graph.halt_nodes g);
  ok

(* Iterative backward fixpoint: pdom(halt) = {halt};
   pdom(n) = {n} u intersection of pdom over successors. *)
let postdominators g =
  let n = Graph.node_count g in
  let full = ISet.of_list (List.init n Fun.id) in
  let pdom = Array.make n full in
  List.iter (fun h -> pdom.(h) <- ISet.singleton h) (Graph.halt_nodes g);
  let halts = ISet.of_list (Graph.halt_nodes g) in
  let changed = ref true in
  while !changed do
    changed := false;
    for i = 0 to n - 1 do
      if not (ISet.mem i halts) then begin
        let meet =
          match Graph.successors g i with
          | [] -> full
          | s :: rest ->
              List.fold_left (fun acc t -> ISet.inter acc pdom.(t)) pdom.(s) rest
        in
        let updated = ISet.add i meet in
        if not (ISet.equal updated pdom.(i)) then begin
          pdom.(i) <- updated;
          changed := true
        end
      end
    done
  done;
  pdom

let immediate_postdominator g =
  let n = Graph.node_count g in
  let pdom = postdominators g in
  let reaches = can_reach_halt g in
  let ipd = Array.make n (-1) in
  for i = 0 to n - 1 do
    if reaches.(i) then begin
      let strict = ISet.remove i pdom.(i) in
      (* ipd is the member whose own postdominator set equals the strict
         set: the closest strict postdominator. *)
      ISet.iter (fun p -> if ISet.equal pdom.(p) strict then ipd.(i) <- p) strict
    end
  done;
  ipd

let pp_ipd ppf ipd =
  Format.fprintf ppf "@[<h>";
  Array.iteri (fun i p -> Format.fprintf ppf "%d->%d " i p) ipd;
  Format.fprintf ppf "@]"
