(** Flowchart variables.

    The paper's flowchart language has input variables [x1..xk], program
    variables [r1..rn] for intermediate values, and a single output variable
    [y]. We index inputs and registers from 0. The program counter is not a
    variable of the language — the surveillance mechanism tracks it
    separately. *)

type t =
  | Input of int  (** [x i]: initialized to the i-th input value *)
  | Reg of int  (** [r i]: initialized to 0 *)
  | Out  (** [y]: initialized to 0; its value at halt is the output *)

val compare : t -> t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string

module Set : Stdlib.Set.S with type elt = t
module Map : Stdlib.Map.S with type key = t
