(* Nodes are accumulated in a growable buffer; While needs its decision box
   allocated before its body (for the back edge), so the buffer supports
   patching. *)

type buffer = { mutable nodes : Graph.node array; mutable len : int }

let create () = { nodes = Array.make 16 Graph.Halt; len = 0 }

let push buf node =
  if buf.len = Array.length buf.nodes then begin
    let bigger = Array.make (2 * buf.len) Graph.Halt in
    Array.blit buf.nodes 0 bigger 0 buf.len;
    buf.nodes <- bigger
  end;
  buf.nodes.(buf.len) <- node;
  buf.len <- buf.len + 1;
  buf.len - 1

let patch buf i node = buf.nodes.(i) <- node

let rec stmt buf ~next = function
  | Ast.Skip -> next
  | Ast.Assign (v, e) -> push buf (Graph.Assign (v, e, next))
  | Ast.Seq l -> List.fold_right (fun st k -> stmt buf ~next:k st) l next
  | Ast.If (p, a, b) ->
      let ia = stmt buf ~next a in
      let ib = stmt buf ~next b in
      push buf (Graph.Decision (p, ia, ib))
  | Ast.While (p, body) ->
      let d = push buf Graph.Halt (* placeholder *) in
      let ibody = stmt buf ~next:d body in
      patch buf d (Graph.Decision (p, ibody, next));
      d

let compile (p : Ast.prog) =
  let buf = create () in
  let halt = push buf Graph.Halt in
  let body = stmt buf ~next:halt p.Ast.body in
  let entry = push buf (Graph.Start body) in
  Graph.make ~name:p.Ast.name ~arity:p.Ast.arity ~entry
    (Array.sub buf.nodes 0 buf.len)
