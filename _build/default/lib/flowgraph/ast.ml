type t =
  | Skip
  | Assign of Var.t * Expr.t
  | Seq of t list
  | If of Expr.pred * t * t
  | While of Expr.pred * t

type prog = { name : string; arity : int; body : t }

let rec assigned_vars = function
  | Skip -> Var.Set.empty
  | Assign (v, _) -> Var.Set.singleton v
  | Seq l -> List.fold_left (fun s st -> Var.Set.union s (assigned_vars st)) Var.Set.empty l
  | If (_, a, b) -> Var.Set.union (assigned_vars a) (assigned_vars b)
  | While (_, body) -> assigned_vars body

let rec read_vars = function
  | Skip -> Var.Set.empty
  | Assign (_, e) -> Expr.vars e
  | Seq l -> List.fold_left (fun s st -> Var.Set.union s (read_vars st)) Var.Set.empty l
  | If (p, a, b) ->
      Var.Set.union (Expr.pred_vars p) (Var.Set.union (read_vars a) (read_vars b))
  | While (p, body) -> Var.Set.union (Expr.pred_vars p) (read_vars body)

let validate p =
  let vs = Var.Set.union (assigned_vars p.body) (read_vars p.body) in
  let out_of_range = function
    | Var.Input i -> i >= p.arity || i < 0
    | Var.Reg _ | Var.Out -> false
  in
  let bad = List.find_opt out_of_range (Var.Set.elements vs) in
  match bad with
  | Some v ->
      Error
        (Printf.sprintf "program %s (arity %d) uses out-of-range input %s"
           p.name p.arity (Var.to_string v))
  | None -> Ok ()

let prog ~name ~arity body =
  let p = { name; arity; body } in
  match validate p with Ok () -> p | Error m -> invalid_arg ("Ast.prog: " ^ m)

let max_reg p =
  Var.Set.fold
    (fun v acc -> match v with Var.Reg i -> max i acc | Var.Input _ | Var.Out -> acc)
    (Var.Set.union (assigned_vars p.body) (read_vars p.body))
    (-1)

let seq l =
  let rec flatten = function
    | [] -> []
    | Skip :: rest -> flatten rest
    | Seq inner :: rest -> flatten (inner @ rest)
    | st :: rest -> st :: flatten rest
  in
  match flatten l with [] -> Skip | [ st ] -> st | sts -> Seq sts

let rec map_exprs ~expr ~pred = function
  | Skip -> Skip
  | Assign (v, e) -> Assign (v, expr e)
  | Seq l -> Seq (List.map (map_exprs ~expr ~pred) l)
  | If (p, a, b) -> If (pred p, map_exprs ~expr ~pred a, map_exprs ~expr ~pred b)
  | While (p, body) -> While (pred p, map_exprs ~expr ~pred body)

let simplify_exprs p =
  {
    p with
    body = map_exprs ~expr:Expr.simplify ~pred:Expr.simplify_pred p.body;
  }

let rec size = function
  | Skip -> 1
  | Assign _ -> 1
  | Seq l -> List.fold_left (fun n st -> n + size st) 1 l
  | If (_, a, b) -> 1 + size a + size b
  | While (_, body) -> 1 + size body

let rec loop_free = function
  | Skip | Assign _ -> true
  | Seq l -> List.for_all loop_free l
  | If (_, a, b) -> loop_free a && loop_free b
  | While _ -> false

let rec pp ppf = function
  | Skip -> Format.pp_print_string ppf "skip"
  | Assign (v, e) -> Format.fprintf ppf "@[<h>%a := %a@]" Var.pp v Expr.pp e
  | Seq l ->
      Format.fprintf ppf "@[<v>%a@]"
        (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ";@ ") pp)
        l
  | If (p, a, Skip) ->
      Format.fprintf ppf "@[<v 2>if %a then@ %a@]@,end" Expr.pp_pred p pp a
  | If (p, a, b) ->
      Format.fprintf ppf "@[<v>@[<v 2>if %a then@ %a@]@,@[<v 2>else@ %a@]@,end@]"
        Expr.pp_pred p pp a pp b
  | While (p, body) ->
      Format.fprintf ppf "@[<v 2>while %a do@ %a@]@,done" Expr.pp_pred p pp body

let pp_prog ppf p =
  Format.fprintf ppf "@[<v 2>program %s(x0..x%d):@ %a@]" p.name (p.arity - 1) pp
    p.body

let to_string st = Format.asprintf "%a" pp st
