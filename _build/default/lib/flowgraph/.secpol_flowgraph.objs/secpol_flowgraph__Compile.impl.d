lib/flowgraph/compile.ml: Array Ast Graph List
