lib/flowgraph/graph.ml: Array Expr Format List Printf Var
