lib/flowgraph/graphalgo.mli: Format Graph Set
