lib/flowgraph/store.mli: Secpol_core Var
