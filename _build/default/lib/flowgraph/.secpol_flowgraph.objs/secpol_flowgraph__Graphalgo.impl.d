lib/flowgraph/graphalgo.ml: Array Format Fun Graph Int List Set
