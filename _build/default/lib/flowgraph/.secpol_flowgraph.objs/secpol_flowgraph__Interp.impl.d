lib/flowgraph/interp.ml: Array Ast Expr Graph List Printf Secpol_core Store String
