lib/flowgraph/ast.mli: Expr Format Var
