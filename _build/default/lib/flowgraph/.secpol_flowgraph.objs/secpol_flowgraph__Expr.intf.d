lib/flowgraph/expr.mli: Format Var
