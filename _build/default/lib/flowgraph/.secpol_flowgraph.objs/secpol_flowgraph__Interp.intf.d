lib/flowgraph/interp.mli: Ast Expr Graph Secpol_core
