lib/flowgraph/expr.ml: Format Var
