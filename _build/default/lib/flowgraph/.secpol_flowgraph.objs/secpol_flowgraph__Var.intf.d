lib/flowgraph/var.mli: Format Stdlib
