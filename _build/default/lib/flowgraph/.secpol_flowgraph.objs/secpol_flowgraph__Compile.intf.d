lib/flowgraph/compile.mli: Ast Graph
