lib/flowgraph/graph.mli: Expr Format Var
