lib/flowgraph/ast.ml: Expr Format List Printf Var
