lib/flowgraph/store.ml: Array Secpol_core Var
