lib/flowgraph/var.ml: Format Stdlib
