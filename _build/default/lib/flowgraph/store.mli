(** Mutable variable stores for the interpreters.

    A store holds the integer value of every flowchart variable. Inputs are
    initialized from the input vector, registers and the output variable
    from 0 — exactly the paper's initialization convention. *)

type t

val create : inputs:int array -> max_reg:int -> t

val of_values : inputs:Secpol_core.Value.t array -> max_reg:int -> t
(** Converts each input with [Value.to_int].
    @raise Invalid_argument on a non-integer input (flowchart domains are
    the integers). *)

val get : t -> Var.t -> int
val set : t -> Var.t -> int -> unit

val lookup : t -> Var.t -> int
(** Same as {!get}; shaped for use as an {!Expr.eval} environment. *)

val output : t -> int
(** Current value of [y]. *)
