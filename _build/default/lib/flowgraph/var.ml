module T = struct
  type t = Input of int | Reg of int | Out

  let compare (a : t) (b : t) = Stdlib.compare a b
end

include T

let equal a b = compare a b = 0

let pp ppf = function
  | Input i -> Format.fprintf ppf "x%d" i
  | Reg i -> Format.fprintf ppf "r%d" i
  | Out -> Format.pp_print_string ppf "y"

let to_string v = Format.asprintf "%a" pp v

module Set = Stdlib.Set.Make (T)
module Map = Stdlib.Map.Make (T)
