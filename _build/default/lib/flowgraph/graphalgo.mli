(** Control-flow analyses over flowcharts.

    The augmented mechanisms of Section 4 "recognize" single-entry
    single-exit structures. The graph-level characterization of where such a
    structure ends is the {e immediate postdominator} of its opening
    decision box: the first node every path from the decision must pass
    through on its way to a halt. Both the scoped dynamic mechanism and the
    static flow analysis consume these. *)

module ISet : Set.S with type elt = int

val predecessors : Graph.t -> int list array
(** [preds.(n)] = nodes with an edge to [n]. *)

val can_reach_halt : Graph.t -> bool array
(** [can_reach_halt g].(n) iff some path from [n] reaches a halt box. *)

val postdominators : Graph.t -> ISet.t array
(** [pdom.(n)] is the set of nodes every path from [n] to a halt box passes
    through; [n] postdominates itself. For nodes that cannot reach a halt
    box the result is the vacuous full set. *)

val immediate_postdominator : Graph.t -> int array
(** [ipd.(n)] is the closest strict postdominator of [n], or [-1] when none
    exists (halt boxes, and nodes that cannot reach a halt). *)

val pp_ipd : Format.formatter -> int array -> unit
