(** Compiling structured programs to flowcharts.

    The translation is the obvious structural one and introduces no extra
    boxes: each [Assign] becomes one assignment box, each [If]/[While] test
    one decision box, [Skip] and [Seq] vanish. Consequently a structured
    program and its flowchart execute the same number of step-consuming
    boxes on every input — the interpreters' (value, steps) observations
    agree exactly, which the test suite checks by property. *)

val compile : Ast.prog -> Graph.t
