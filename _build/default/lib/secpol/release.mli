(** The packaged release decision.

    Given a program, a policy, and the finite input space the decision
    should be exhaustive over, pick the cheapest enforcement that is sound
    and maximally complete among the routes the library knows:

    + {b Ship_bare} — the program certifies (Section 5): release it
      unmodified, enforcement costs nothing at run time.
    + {b Guarded} — whole-program certification fails, but after
      duplication and halt-splitting every surviving halt box is clean
      (Example 9): release the guarded flowchart, still no run-time
      bookkeeping, violations only on the dirty paths.
    + {b Monitored} — fall back to a dynamic mechanism: the Theorem-1 join
      of plain surveillance with the bounded transform search's sound
      candidates, so the monitor is at least as complete as plain
      surveillance and often better.
    + {b Refuse} — nothing sound serves any input (the brute-force maximal
      mechanism is empty): the policy, not the machinery, says no.

    Every returned mechanism has been exhaustively verified sound on the
    given space, and the report carries the completeness story so callers
    can see what each rejected cheaper route would have cost. *)

type route =
  | Ship_bare of Secpol_core.Program.t
  | Guarded of Secpol_flowgraph.Graph.t * Secpol_core.Mechanism.t
  | Monitored of Secpol_core.Mechanism.t
  | Refuse

type report = {
  route : route;
  mechanism : Secpol_core.Mechanism.t;
      (** the decision as a mechanism, whatever the route *)
  completeness : float;  (** fraction of the space the decision serves *)
  maximal : float;  (** what the best sound mechanism could serve *)
  certified : bool;
  notes : string list;  (** human-readable trail of the decision *)
}

val plan :
  ?search_depth:int ->
  policy:Secpol_core.Policy.t ->
  space:Secpol_core.Space.t ->
  Secpol_flowgraph.Ast.prog ->
  report
(** @raise Invalid_argument on a non-[allow] policy (the enforcement
    constructions need the allow form; check filter policies with
    {!Secpol_core.Soundness} directly). *)

val route_name : route -> string
