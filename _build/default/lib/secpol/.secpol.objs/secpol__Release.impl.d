lib/secpol/release.ml: List Printf Secpol_core Secpol_flowgraph Secpol_staticflow Secpol_taint Secpol_transform
