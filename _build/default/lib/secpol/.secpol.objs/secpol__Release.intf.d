lib/secpol/release.mli: Secpol_core Secpol_flowgraph
