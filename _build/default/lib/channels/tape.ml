module Value = Secpol_core.Value
module Space = Secpol_core.Space
module Program = Secpol_core.Program

type motion = Walk | Tab_linear | Tab_constant

let motion_name = function
  | Walk -> "walk"
  | Tab_linear -> "tab-linear"
  | Tab_constant -> "tab-constant"

let block_length v =
  match v with
  | Value.Tuple l -> List.length l
  | _ -> invalid_arg "Tape: block is not a tuple"

let read_block motion ~k ~j =
  if j < 0 || j >= k then invalid_arg "Tape.read_block: block out of range";
  Program.make
    ~name:(Printf.sprintf "read-z%d-%s" j (motion_name motion))
    ~arity:k
    (fun a ->
      let distance =
        let rec total i acc = if i >= j then acc else total (i + 1) (acc + block_length a.(i)) in
        total 0 0
      in
      let seek_cost =
        match motion with Walk | Tab_linear -> distance | Tab_constant -> 1
      in
      let read_cost = block_length a.(j) in
      { Program.result = Program.Value a.(j); steps = seek_cost + read_cost })

let block_space ~k ~lengths ~alphabet =
  let letters = List.map Value.int alphabet in
  (* All tuples over the alphabet with length in [lengths]. *)
  let rec tuples n =
    if n = 0 then [ [] ]
    else
      List.concat_map (fun rest -> List.map (fun c -> c :: rest) letters) (tuples (n - 1))
  in
  let domain =
    List.concat_map (fun n -> List.map Value.tuple (tuples n)) lengths
  in
  Space.of_domains (List.init k (fun _ -> domain))
