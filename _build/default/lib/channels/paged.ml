module Value = Secpol_core.Value
module Program = Secpol_core.Program

type t = { nvars : int; page_size : int }

let make ~nvars ~page_size =
  if nvars <= 0 || page_size <= 0 then
    invalid_arg "Paged.make: sizes must be positive";
  { nvars; page_size }

let page_of m v =
  if v < 0 || v >= m.nvars then invalid_arg "Paged.page_of: no such variable";
  v / m.page_size

let faults m trace =
  let rec go resident count = function
    | [] -> count
    | v :: rest ->
        let p = page_of m v in
        if Some p = resident then go resident count rest
        else go (Some p) (count + 1) rest
  in
  go None 0 trace

let program m ~name ~trace ~result =
  Program.make ~name ~arity:m.nvars (fun a ->
      let ints = Array.map Value.to_int a in
      {
        Program.result = Program.Value (result ints);
        steps = faults m (trace ints);
      })

let scan_sorted_by_secret m ~key =
  if key < 0 || key >= m.nvars then
    invalid_arg "Paged.scan_sorted_by_secret: bad key index";
  let others = List.filter (fun v -> v <> key) (List.init m.nvars Fun.id) in
  (* Page-friendly order: one fault per page. Page-hostile order: group by
     in-page offset so consecutive accesses land on different pages. *)
  let friendly = others in
  let hostile =
    List.sort
      (fun v w -> compare (v mod m.page_size, v) (w mod m.page_size, w))
      others
  in
  program m
    ~name:(Printf.sprintf "scan-by-x%d" key)
    ~trace:(fun a -> if a.(key) = 0 then friendly else hostile)
    ~result:(fun _ -> Value.int 0)
