(** Page traffic as the observable (the conclusions' other example).

    "Our model is useful for modeling phenomena ignored in other models —
    such as running time or page faults." Running time is threaded through
    every interpreter as the step count; this module makes the same point
    for memory traffic. The observability postulate does not care {e what}
    the implicit counter counts, so a paged program simply reports its
    fault count as the outcome's step field and the whole apparatus —
    timed soundness checks, leakage estimation — applies unchanged.

    The machine: variables live on pages, [page_size] variables per page,
    in declaration order. A program is a straight-line {e access trace}:
    which variables it touches, in which order (the order may depend on
    input values — that is the channel). Each access to a page different
    from the one currently resident costs one fault; the value computed is
    whatever the [result] function says. *)

type t = {
  nvars : int;  (** variables 0 .. nvars-1, also the program's arity *)
  page_size : int;  (** variables per page *)
}

val make : nvars:int -> page_size:int -> t
(** @raise Invalid_argument unless both are positive. *)

val page_of : t -> int -> int

val faults : t -> int list -> int
(** Fault count of an access trace, starting with no page resident. *)

val program :
  t ->
  name:string ->
  trace:(int array -> int list) ->
  result:(int array -> Secpol_core.Value.t) ->
  Secpol_core.Program.t
(** [program m ~name ~trace ~result]: on input [a] (integer values of the
    [nvars] variables), touch [trace a] in order and output [result a];
    the outcome's step count is the fault count. *)

val scan_sorted_by_secret : t -> key:int -> Secpol_core.Program.t
(** The demonstration program: output the constant 0 after touching every
    variable {e except} the key, in an order decided by the key's value —
    page-friendly (one fault per page) when the key is 0, page-hostile
    (alternating pages on every access) otherwise. Value-constant,
    fault-variable: sound untimed, unsound the moment page traffic is
    observable — the password attack's mechanism in miniature. *)
