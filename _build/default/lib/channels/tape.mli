(** The one-way input tape of Section 2.

    Inputs sit in blocks [z1 ... zk] on a linear read-only tape, head at the
    leftmost character. To read block [j] a program must move the head
    across blocks [1 .. j-1], so even a program that never "looks" at them
    encodes the {e length} of the earlier blocks into its running time: no
    program reading a later block can be sound for [allow(j)] while time is
    observable. The paper's fix is a new primitive, [tab(i)], that jumps to
    block [i] in constant time — restoring the observability postulate by
    construction.

    Here each block is an integer tuple; [read_block] produces the
    program "output block [j]" under three head-motion disciplines. *)

type motion =
  | Walk  (** move cell by cell: cost = cells crossed (the leaky default) *)
  | Tab_linear
      (** [tab(i)] implemented naively: still costs the distance — the
          trap the paper warns about ("perhaps tab(i) takes time dependent
          on the length of z1 ... zi-1?") *)
  | Tab_constant  (** [tab(i)] in one step: the sound implementation *)

val motion_name : motion -> string

val read_block : motion -> k:int -> j:int -> Secpol_core.Program.t
(** [Q(z1..zk) = zj], with running time determined by the motion
    discipline: walking costs one step per cell crossed plus one per cell
    read; constant tab costs one step plus one per cell read. *)

val block_space : k:int -> lengths:int list -> alphabet:int list -> Secpol_core.Space.t
(** Domain of each block: all tuples over [alphabet] whose length is drawn
    from [lengths]. Sizes grow fast; keep parameters small. *)
