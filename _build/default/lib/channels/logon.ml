module Value = Secpol_core.Value
module Space = Secpol_core.Space
module Policy = Secpol_core.Policy
module Program = Secpol_core.Program

let logon =
  Program.of_fun ~name:"logon" ~arity:3 (fun a ->
      match a.(1) with
      | Value.Tuple pairs ->
          let uid = a.(0) and pwd = a.(2) in
          let hit =
            List.exists
              (function
                | Value.Tuple [ u; p ] -> Value.equal u uid && Value.equal p pwd
                | _ -> invalid_arg "logon: malformed table entry")
              pairs
          in
          Value.bool hit
      | _ -> invalid_arg "logon: table is not a tuple")

let logon_policy = Policy.allow [ 0; 2 ]

let logon_space ~uids ~pwds ~table_pairs =
  let pair (u, p) = Value.tuple [ Value.int u; Value.int p ] in
  Space.of_domains
    [
      List.map Value.int uids;
      List.map (fun t -> Value.tuple (List.map pair t)) table_pairs;
      List.map Value.int pwds;
    ]

module Attack = struct
  type oracle = { n : int; k : int; secret : int array }

  let make ~n ~k ~secret =
    if Array.length secret <> k then invalid_arg "Attack.make: bad secret length";
    Array.iter
      (fun c -> if c < 0 || c >= n then invalid_arg "Attack.make: symbol out of range")
      secret;
    { n; k; secret }

  let random_secret rng ~n ~k = Array.init k (fun _ -> Random.State.int rng n)

  let whole_compare o guess = guess = o.secret

  let paged_compare o guess =
    let rec prefix i =
      if i >= o.k then i else if guess.(i) = o.secret.(i) then prefix (i + 1) else i
    in
    prefix 0

  (* Lexicographic enumeration, counting whole-guess probes. *)
  let brute_force o =
    let guess = Array.make o.k 0 in
    let rec advance i =
      if i < 0 then false
      else begin
        guess.(i) <- guess.(i) + 1;
        if guess.(i) >= o.n then begin
          guess.(i) <- 0;
          advance (i - 1)
        end
        else true
      end
    in
    let rec go count =
      if whole_compare o guess then count + 1
      else if advance (o.k - 1) then go (count + 1)
      else invalid_arg "brute_force: exhausted space without a hit"
    in
    go 0

  (* Fix characters left to right using the prefix-length observable. *)
  let prefix_walk o =
    let guess = Array.make o.k 0 in
    let probes = ref 0 in
    for pos = 0 to o.k - 1 do
      let rec try_symbol c =
        guess.(pos) <- c;
        incr probes;
        if paged_compare o guess <= pos then
          if c + 1 < o.n then try_symbol (c + 1)
          else invalid_arg "prefix_walk: no symbol extends the prefix"
      in
      try_symbol 0
    done;
    !probes
end
