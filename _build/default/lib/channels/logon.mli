(** Example 5: the logon program, and the password work-factor collapse.

    [Q(userid, table, password)] is true iff [(userid, password)] is in the
    table. Under [allow(1, 3)] — reveal nothing about the table — the
    program is its own (unsound!) mechanism: every answer narrows the set
    of possible tables. It is workable in practice only because the leak
    per query is small; {!Secpol_probe.Leakage} puts the number on it.

    The second half models the paper's "now-classic case": passwords of
    [k] characters over an [n]-character alphabet promise a work factor of
    [n^k] guesses, but if candidate passwords can be laid across a page
    boundary and page movement observed, a guesser confirms one character
    at a time and needs only about [n * k] — the forgotten observable
    (page traffic) voids the observability postulate and with it the
    work-factor argument. *)

val logon : Secpol_core.Program.t
(** Arity 3: userid (Int), table (Tuple of (Int uid, Int pwd) pairs),
    password (Int). Output: Bool. *)

val logon_policy : Secpol_core.Policy.t
(** [allow(1, 3)] in the paper's 1-based numbering = allow {0, 2}: the
    table (input 1) is withheld. *)

val logon_space :
  uids:int list -> pwds:int list -> table_pairs:(int * int) list list ->
  Secpol_core.Space.t

(** The guessing experiment. A password is a string over an alphabet of
    size [n], length [k]. Oracles report, per guess, what the attacker can
    observe. *)
module Attack : sig
  type oracle = {
    n : int;  (** alphabet size *)
    k : int;  (** password length *)
    secret : int array;  (** the password, [k] symbols in [0..n-1] *)
  }

  val make : n:int -> k:int -> secret:int array -> oracle

  val random_secret : Random.State.t -> n:int -> k:int -> int array

  val whole_compare : oracle -> int array -> bool
  (** The intended interface: equality of the whole guess, one bit out. *)

  val paged_compare : oracle -> int array -> int
  (** The leaky interface: the comparison proceeds character by character
      and the attacker observes how many page crossings occurred before the
      mismatch — i.e. the length of the agreeing prefix. Returns that
      prefix length ([k] means the guess is correct). *)

  val brute_force : oracle -> int
  (** Number of calls to {!whole_compare} a lexicographic exhaustive
      guesser makes before success. Worst case [n^k]. *)

  val prefix_walk : oracle -> int
  (** Number of calls to {!paged_compare} made by the attacker that fixes
      one character at a time. Worst case [n * k]. *)
end
