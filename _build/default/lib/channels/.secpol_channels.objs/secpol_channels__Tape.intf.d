lib/channels/tape.mli: Secpol_core
