lib/channels/logon.ml: Array List Random Secpol_core
