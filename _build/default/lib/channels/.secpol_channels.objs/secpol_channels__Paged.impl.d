lib/channels/paged.ml: Array Fun List Printf Secpol_core
