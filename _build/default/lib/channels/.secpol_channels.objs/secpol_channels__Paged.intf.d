lib/channels/paged.mli: Secpol_core
