lib/channels/tape.ml: Array List Printf Secpol_core
