lib/channels/logon.mli: Random Secpol_core
