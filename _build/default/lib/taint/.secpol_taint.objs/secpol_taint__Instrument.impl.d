lib/taint/instrument.ml: Array Dynamic Printf Secpol_core Secpol_flowgraph
