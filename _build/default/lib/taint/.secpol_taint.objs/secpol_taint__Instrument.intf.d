lib/taint/instrument.mli: Secpol_core Secpol_flowgraph
