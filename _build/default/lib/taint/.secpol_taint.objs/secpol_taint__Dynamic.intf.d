lib/taint/dynamic.mli: Secpol_core Secpol_flowgraph
