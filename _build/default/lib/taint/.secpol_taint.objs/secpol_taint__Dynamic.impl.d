lib/taint/dynamic.ml: Array Printf Secpol_core Secpol_flowgraph
