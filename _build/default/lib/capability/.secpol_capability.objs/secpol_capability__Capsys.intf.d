lib/capability/capsys.mli: Secpol_core
