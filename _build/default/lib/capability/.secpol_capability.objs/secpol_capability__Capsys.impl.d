lib/capability/capsys.ml: Array List Printf Secpol_core
