module Value = Secpol_core.Value
module Space = Secpol_core.Space
module Policy = Secpol_core.Policy
module Program = Secpol_core.Program
module Mechanism = Secpol_core.Mechanism

type t = { objects : int; stored_caps : int array }

let make ~objects ~stored_caps =
  if objects <= 0 || objects > 20 then invalid_arg "Capsys.make: bad object count";
  if Array.length stored_caps <> objects then
    invalid_arg "Capsys.make: stored_caps length mismatch";
  Array.iter
    (fun m ->
      if m < 0 || m >= 1 lsl objects then
        invalid_arg "Capsys.make: stored capability mask out of range")
    stored_caps;
  { objects; stored_caps }

type op = Load of int | Fetch of int
type script = op list

let arity sys = sys.objects + 1

let notice = "capability check failed"

let space sys ~value_range ~cap_masks =
  List.iter
    (fun m ->
      if m < 0 || m >= 1 lsl sys.objects then
        invalid_arg "Capsys.space: capability mask out of range")
    cap_masks;
  Space.of_domains
    (List.init sys.objects (fun _ -> List.init value_range Value.int)
    @ [ List.map Value.int cap_masks ])

let closure sys mask =
  let rec grow mask =
    let bigger = ref mask in
    for i = 0 to sys.objects - 1 do
      if mask land (1 lsl i) <> 0 then bigger := !bigger lor sys.stored_caps.(i)
    done;
    if !bigger = mask then mask else grow !bigger
  in
  grow (mask land ((1 lsl sys.objects) - 1))

let split sys a = (Array.sub a 0 sys.objects, Value.to_int a.(sys.objects))

let policy sys =
  Policy.filter
    ~name:(Printf.sprintf "cap-reachability(k=%d)" sys.objects)
    (fun a ->
      let values, mask = split sys a in
      let reach = closure sys mask in
      Value.tuple
        (Value.int mask
        :: List.init sys.objects (fun i ->
               if reach land (1 lsl i) <> 0 then values.(i) else Value.str "#")))

let check_script sys script =
  List.iter
    (function
      | Load i | Fetch i ->
          if i < 0 || i >= sys.objects then
            invalid_arg "Capsys: script touches an unknown object")
    script

(* The three executions share one engine differing in the check and in
   whether Fetch has any effect. *)
type discipline = Unchecked | Checked | Strict

let execute sys script discipline a =
  let values, initial = split sys a in
  let caps = ref initial in
  let sum = ref 0 in
  let steps = ref 0 in
  let allowed i = !caps land (1 lsl i) <> 0 in
  let exception Refused in
  match
    List.iter
      (fun op ->
        incr steps;
        match (op, discipline) with
        | Load i, Unchecked -> sum := !sum + Value.to_int values.(i)
        | Load i, (Checked | Strict) ->
            if allowed i then sum := !sum + Value.to_int values.(i)
            else raise Refused
        | Fetch i, Unchecked | Fetch i, Checked ->
            if discipline = Unchecked || allowed i then
              caps := !caps lor sys.stored_caps.(i)
            else raise Refused
        | Fetch _, Strict -> ())
      script
  with
  | () -> Ok (Value.int !sum, !steps)
  | exception Refused -> Error !steps

let program sys script =
  check_script sys script;
  Program.make ~name:"cap-machine" ~arity:(arity sys) (fun a ->
      match execute sys script Unchecked a with
      | Ok (v, steps) -> { Program.result = Program.Value v; steps }
      | Error _ -> assert false)

let mechanism_of_discipline sys script discipline name =
  check_script sys script;
  Mechanism.make ~name ~arity:(arity sys) (fun a ->
      match execute sys script discipline a with
      | Ok (v, steps) -> { Mechanism.response = Mechanism.Granted v; steps }
      | Error steps -> { Mechanism.response = Mechanism.Denied notice; steps })

let checked sys script = mechanism_of_discipline sys script Checked "cap-checked"
let strict sys script = mechanism_of_discipline sys script Strict "cap-strict"
