(** Capability systems in the enforcement model.

    The paper closes: "Our model is useful for modeling phenomena ignored
    in other models ... it can be used to model capability systems as well
    as surveillance." This module does so.

    A system has [k] objects. Each object holds an integer value (the
    inputs [0 .. k-1]) and, statically, a set of {e capabilities stored
    inside it} — reading such an object hands you further capabilities,
    the take–grant phenomenon. Input [k] is the subject's initial
    capability list, a bitmask over objects.

    The security policy is {e reachability}: a subject may learn the
    values of exactly the objects in the transitive capability closure of
    its initial list (read an object you can reach, acquire what is stored
    in it, repeat). Like Example 2's directory policy it is
    content-dependent — here on the capability input — and not of the
    [allow(...)] form.

    Subjects run {e scripts} of loads and fetches. Three executions of the
    same script give the paper's comparison triple:

    - {!program}: the unchecked machine — every load succeeds. Unsound as
      its own mechanism as soon as the script can outrun a capability list.
    - {!checked}: loads and fetches verified against the {e current} list,
      which grows as fetched capabilities are acquired. Sound, and
      complete on every input whose closure covers the script.
    - {!strict}: verifies loads against the {e initial} list only (fetches
      are dead letters). Also sound — and measurably less complete than
      {!checked}: a lattice of capability-checking mechanisms, ordered
      exactly by the paper's completeness relation. *)

type t = {
  objects : int;  (** number of objects [k] *)
  stored_caps : int array;
      (** [stored_caps.(i)] = bitmask of capabilities stored inside object
          [i]; length [objects] *)
}

val make : objects:int -> stored_caps:int array -> t
(** @raise Invalid_argument on bad lengths or out-of-range masks. *)

type op =
  | Load of int  (** read object's value into the running sum *)
  | Fetch of int  (** acquire the capabilities stored in the object *)

type script = op list

val arity : t -> int
(** [objects + 1]: the values, then the capability-list input. *)

val space : t -> value_range:int -> cap_masks:int list -> Secpol_core.Space.t

val closure : t -> int -> int
(** [closure sys mask] is the transitive capability closure of [mask]. *)

val policy : t -> Secpol_core.Policy.t
(** Reveal the capability input and the values of objects inside its
    closure. *)

val program : t -> script -> Secpol_core.Program.t
(** The unchecked machine: output is the sum of all loaded values. *)

val checked : t -> script -> Secpol_core.Mechanism.t
(** Capability-checked execution with acquisition. *)

val strict : t -> script -> Secpol_core.Mechanism.t
(** Capability-checked execution that never acquires. *)

val notice : string
(** The violation notice both checked machines emit. *)
