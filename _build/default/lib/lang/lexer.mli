(** Hand-written lexer for the While-language.

    Comments run from [#] to end of line. [x<digits>] and [r<digits>] are
    input and register variables; [y] is the output variable; other
    alphabetic words are keywords or program names. *)

exception Error of { line : int; col : int; message : string }

val tokenize : string -> Token.located list
(** The whole input, ending with an [EOF] token.
    @raise Error on an unexpected character. *)
