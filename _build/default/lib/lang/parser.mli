(** Recursive-descent parser for the While-language.

    Concrete syntax (comments run from [#] to end of line):

    {v
    program euclid(x0, x1)
      r0 := x0 + 1;
      r1 := x1 + 1;
      while r0 <> r1 do
        if r0 > r1 then r0 := r0 - r1 else r1 := r1 - r0 end
      done;
      y := r0
    v}

    Expressions include the branchless select [(p ? e1 : e2)]; predicates
    are comparisons combined with [and]/[or]/[not]. Input parameters must
    be declared as [x0, x1, ...] in order; the declared count becomes the
    program's arity. *)

exception Error of { line : int; col : int; message : string }

val program : Token.located list -> Secpol_flowgraph.Ast.prog
(** @raise Error on a syntax error (positions are 1-based). *)

val statement : Token.located list -> Secpol_flowgraph.Ast.t
(** Parse a bare statement (no [program] header), for tests and the CLI. *)
