lib/lang/source.ml: Format In_channel Lexer List Out_channel Parser Printf Result Secpol_core Secpol_flowgraph String
