lib/lang/parser.ml: Array List Printf Secpol_flowgraph String Token
