lib/lang/source.mli: Secpol_core Secpol_flowgraph
