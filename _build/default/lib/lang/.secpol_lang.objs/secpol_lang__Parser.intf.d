lib/lang/parser.mli: Secpol_flowgraph Token
