lib/lang/token.mli:
