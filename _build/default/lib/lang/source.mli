(** Reading and writing programs as text.

    The printer emits exactly the grammar {!Parser} accepts, so programs
    round-trip: [parse (to_source p)] is semantically identical to [p] (and
    after one round, syntactically stable — a property test holds the two
    ends together). *)

val parse : string -> (Secpol_flowgraph.Ast.prog, string) result
(** Parse a full [program name(x0, ...) body] from a string; the error is a
    human-readable message with a 1-based position. *)

val parse_exn : string -> Secpol_flowgraph.Ast.prog
(** @raise Invalid_argument with the same message. *)

val load : string -> (Secpol_flowgraph.Ast.prog, string) result
(** Parse a program from a file. *)

val policy_hint : string -> Secpol_core.Policy.t option
(** Scan source text for a policy declaration comment —
    [# policy: 0,2] (allowed input indices) or [# policy: -] (allow
    nothing). Tools use it as the program's default policy; the language
    itself ignores comments. Returns [None] when absent or malformed. *)

val load_with_hint :
  string ->
  (Secpol_flowgraph.Ast.prog * Secpol_core.Policy.t option, string) result
(** {!load} plus the file's {!policy_hint}. *)

val to_source : Secpol_flowgraph.Ast.prog -> string
(** Render a program in the concrete syntax. *)

val save : string -> Secpol_flowgraph.Ast.prog -> unit
(** Write [to_source] to a file. *)
