module Ast = Secpol_flowgraph.Ast

let position_message ~line ~col message =
  Printf.sprintf "line %d, column %d: %s" line col message

let parse src =
  match Parser.program (Lexer.tokenize src) with
  | prog -> Ok prog
  | exception Lexer.Error { line; col; message } ->
      Error (position_message ~line ~col message)
  | exception Parser.Error { line; col; message } ->
      Error (position_message ~line ~col message)

let parse_exn src =
  match parse src with Ok p -> p | Error m -> invalid_arg ("Source.parse: " ^ m)

let load path =
  match In_channel.with_open_text path In_channel.input_all with
  | src -> parse src
  | exception Sys_error m -> Error m

let policy_hint src =
  let prefix = "# policy:" in
  let parse_spec spec =
    let spec = String.trim spec in
    if spec = "-" then Some Secpol_core.Policy.allow_none
    else
      match
        String.split_on_char ',' spec
        |> List.filter (fun s -> String.trim s <> "")
        |> List.map (fun s -> int_of_string (String.trim s))
      with
      | indices -> Some (Secpol_core.Policy.allow indices)
      | exception (Failure _ | Invalid_argument _) -> None
  in
  String.split_on_char '\n' src
  |> List.find_map (fun line ->
         let line = String.trim line in
         if String.length line >= String.length prefix
            && String.sub line 0 (String.length prefix) = prefix
         then
           parse_spec
             (String.sub line (String.length prefix)
                (String.length line - String.length prefix))
         else None)

let load_with_hint path =
  match In_channel.with_open_text path In_channel.input_all with
  | src -> Result.map (fun prog -> (prog, policy_hint src)) (parse src)
  | exception Sys_error m -> Error m

let to_source (p : Ast.prog) =
  let params =
    String.concat ", " (List.init p.Ast.arity (Printf.sprintf "x%d"))
  in
  Format.asprintf "program %s(%s)@.%a@." p.Ast.name params Ast.pp p.Ast.body

let save path p = Out_channel.with_open_text path (fun oc -> Out_channel.output_string oc (to_source p))
