lib/history/querydb.mli: Secpol_core
