lib/history/querydb.ml: Array Fun List Printf Secpol_core
