module Value = Secpol_core.Value
module Space = Secpol_core.Space
module Policy = Secpol_core.Policy
module Program = Secpol_core.Program
module Mechanism = Secpol_core.Mechanism

type t = { k : int; queries : int }

let arity db = db.k + db.queries

let refused = Value.Str "refused"

let space db ~record_values ~query_masks =
  List.iter
    (fun m ->
      if m < 0 || m >= 1 lsl db.k then
        invalid_arg (Printf.sprintf "Querydb.space: mask %d out of range" m))
    query_masks;
  Space.of_domains
    (List.init db.k (fun _ -> List.map Value.int record_values)
    @ List.init db.queries (fun _ -> List.map Value.int query_masks))

let popcount m =
  let rec go acc m = if m = 0 then acc else go (acc + 1) (m land (m - 1)) in
  go 0 m

(* Query i is permitted iff it is not a singleton and differs from every
   earlier permitted query in more than one record. *)
let permitted db masks =
  ignore db;
  let rec go earlier = function
    | [] -> []
    | m :: rest ->
        let ok =
          popcount m <> 1
          && List.for_all (fun e -> popcount (m lxor e) <> 1) earlier
        in
        ok :: go (if ok then m :: earlier else earlier) rest
  in
  go [] masks

let split db a =
  let records = Array.sub a 0 db.k in
  let masks =
    List.init db.queries (fun i -> Value.to_int a.(db.k + i))
  in
  (records, masks)

let answer records mask =
  let sum = ref 0 in
  List.iteri
    (fun bit v -> if mask land (1 lsl bit) <> 0 then sum := !sum + Value.to_int v)
    (Array.to_list records);
  !sum

let session_program db =
  Program.of_fun ~name:"db-session" ~arity:(arity db) (fun a ->
      let records, masks = split db a in
      Value.tuple (List.map (fun m -> Value.int (answer records m)) masks))

let policy db =
  Policy.filter
    ~name:(Printf.sprintf "history(k=%d,q=%d)" db.k db.queries)
    (fun a ->
      let records, masks = split db a in
      let oks = permitted db masks in
      Value.tuple
        (List.map Value.int masks
        @ List.map2
            (fun ok m -> if ok then Value.int (answer records m) else refused)
            oks masks))

let slotwise_program db =
  Program.of_fun ~name:"db-session-guarded" ~arity:(arity db) (fun a ->
      let records, masks = split db a in
      let oks = permitted db masks in
      Value.tuple
        (List.map2
           (fun ok m -> if ok then Value.int (answer records m) else refused)
           oks masks))

let monitor db =
  let q = session_program db in
  Mechanism.make ~name:"db-monitor" ~arity:(arity db) (fun a ->
      let _, masks = split db a in
      if List.for_all Fun.id (permitted db masks) then begin
        let o = Program.run q a in
        match o.Program.result with
        | Program.Value v ->
            { Mechanism.response = Mechanism.Granted v; steps = o.Program.steps }
        | Program.Diverged ->
            { Mechanism.response = Mechanism.Hung; steps = o.Program.steps }
        | Program.Fault m ->
            { Mechanism.response = Mechanism.Failed m; steps = o.Program.steps }
      end
      else
        {
          Mechanism.response =
            Mechanism.Denied "query sequence enables inference, session refused";
          steps = 1;
        })
