(** History-dependent policies over a query session (Section 2's remark).

    "We also include policies (such as might be found in a data base
    system) where what a user is permitted to view is dependent upon a
    history of the user's previous queries." This module instantiates that
    remark with a small statistical database and the classic aggregate
    inference threat.

    The database holds [k] integer records. A {e session} asks a fixed
    number of aggregate queries; each query names a subset of records and
    receives their sum. One aggregate is harmless; two aggregates whose
    symmetric difference is a single record reveal that record exactly.
    The history-dependent policy therefore permits a query iff its
    record-set does not leave a singleton symmetric difference with any
    {e earlier permitted} query of the session.

    Everything is phrased in the paper's vocabulary: the session is one
    program [Q : records × queries -> answers]; the policy is an
    information filter [I] whose value on an input lists the queries and
    the answers the history rule permits; mechanisms are gatekeepers over
    the whole session. Inputs [0..k-1] are the records; inputs
    [k..k+n-1] are the queries, encoded as bitmask integers over the
    records. *)

type t = {
  k : int;  (** number of records *)
  queries : int;  (** queries per session *)
}

val arity : t -> int

val space :
  t -> record_values:int list -> query_masks:int list -> Secpol_core.Space.t
(** Record domains and the candidate query masks (each in
    [0 .. 2^k - 1]). *)

val permitted : t -> int list -> bool list
(** [permitted db masks] applies the history rule to the session's query
    masks, in order: query [i] is permitted iff for every earlier
    {e permitted} query [j], the symmetric difference of the two mask sets
    has size <> 1, and the mask itself has size <> 1 (a singleton query is
    a direct read). *)

val session_program : t -> Secpol_core.Program.t
(** Answers every query unconditionally: the unprotected database front
    end. Output: tuple of sums. *)

val policy : t -> Secpol_core.Policy.t
(** The history-dependent filter: reveals all query masks, and the answers
    only of permitted queries. Not an [allow(...)] policy — which queries
    are filtered depends on the query inputs themselves. *)

val monitor : t -> Secpol_core.Mechanism.t
(** The session gatekeeper: if the history rule permits every query of the
    session, pass the program's answers through; otherwise refuse the whole
    session with one violation notice. A protection mechanism for
    {!session_program} in the paper's strict sense, and sound for
    {!policy}: both the pass/refuse decision and the passed answers are
    functions of the policy's image. *)

val slotwise_program : t -> Secpol_core.Program.t
(** The {e redesigned} front end: answers each permitted query and returns
    the {!refused} marker in the other slots. As its own mechanism it is
    sound for the history policy — redesign versus gatekeeping, both
    expressible in the model. *)

val refused : Secpol_core.Value.t
(** The per-slot refusal marker used by {!slotwise_program} and by the
    policy's image. *)
