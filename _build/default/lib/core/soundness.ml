type config = { view : Program.view; identify_violations : bool }

let default = { view = `Value; identify_violations = false }
let timed = { view = `Timed; identify_violations = false }

type witness = {
  input_a : Value.t array;
  input_b : Value.t array;
  obs_a : Program.Obs.t;
  obs_b : Program.Obs.t;
}

type verdict = Sound | Unsound of witness

let canonicalize config (obs : Program.Obs.t) : Program.Obs.t =
  if not config.identify_violations then obs
  else
    match obs with
    | Program.Obs.Output (Value.Tuple (Value.Str "violation" :: _)) ->
        Program.Obs.Output (Value.Tuple [ Value.Str "violation" ])
    | Program.Obs.Timed_output (Value.Tuple (Value.Str "violation" :: _), t) ->
        Program.Obs.Timed_output (Value.Tuple [ Value.Str "violation" ], t)
    | o -> o

let check ?(config = default) policy m space =
  (* Partition the space by policy image; the mechanism must present the same
     observable within each class. *)
  let seen : (Value.t, Value.t array * Program.Obs.t) Hashtbl.t =
    Hashtbl.create 1024
  in
  let witness =
    Seq.find_map
      (fun a ->
        let key = Policy.image policy a in
        let obs = canonicalize config (Mechanism.observe config.view (Mechanism.respond m a)) in
        match Hashtbl.find_opt seen key with
        | None ->
            Hashtbl.add seen key (a, obs);
            None
        | Some (b, obs_b) ->
            if Program.Obs.equal obs obs_b then None
            else Some { input_a = b; input_b = a; obs_a = obs_b; obs_b = obs })
      (Space.enumerate space)
  in
  match witness with None -> Sound | Some w -> Unsound w

let check_program ?config policy q space =
  check ?config policy (Mechanism.of_program q) space

let is_sound ?config policy m space =
  match check ?config policy m space with Sound -> true | Unsound _ -> false

let pp_input ppf a =
  Format.fprintf ppf "(%a)"
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ") Value.pp)
    (Array.to_list a)

let pp_verdict ppf = function
  | Sound -> Format.pp_print_string ppf "sound"
  | Unsound w ->
      Format.fprintf ppf
        "@[<v>unsound:@ M%a = %a@ M%a = %a@ (inputs are policy-equivalent)@]"
        pp_input w.input_a Program.Obs.pp w.obs_a pp_input w.input_b
        Program.Obs.pp w.obs_b
