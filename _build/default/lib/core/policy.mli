(** Security policies.

    A security policy for [Q : D1 x ... x Dk -> E] is a function
    [I : D1 x ... x Dk -> U] into some new set [U]; its value [I(a)] has
    "filtered out" everything the user must not learn. The family the paper
    studies in detail is [allow(J)]: project the input vector onto the allowed
    coordinates [J]. The general constructor {!filter} admits arbitrary
    policies — including the content-dependent file-system policy of Example 2
    and history-dependent policies.

    The only thing enforcement definitions ever need from a policy is the
    equivalence relation it induces on inputs ([a ~ b] iff [I(a) = I(b)]);
    {!image} computes a canonical representative of [I(a)] for partitioning. *)

type t =
  | Allow of Iset.t
      (** [allow(J)]: the user may learn exactly the inputs with index in
          [J]. *)
  | Filter of { name : string; image : Value.t array -> Value.t }
      (** An arbitrary information filter [I]; [image] must be a pure
          function. *)

val allow : int list -> t
(** [allow [i; j; ...]] is the policy [allow(i, j, ...)] (0-based). *)

val allow_set : Iset.t -> t

val allow_none : t
(** [allow()] — the user may learn nothing. *)

val allow_all : arity:int -> t
(** [allow(0, ..., k-1)] — the user may learn everything. *)

val filter : name:string -> (Value.t array -> Value.t) -> t

val name : t -> string

val image : t -> Value.t array -> Value.t
(** [image i a] is the canonical value of [I(a)]. For [Allow J] it is the
    tuple of the allowed coordinates in ascending index order. *)

val equiv : t -> Value.t array -> Value.t array -> bool
(** [equiv i a b] iff [I(a) = I(b)]: the policy cannot distinguish [a] from
    [b], hence no sound mechanism may either. *)

val allowed_indices : t -> Iset.t option
(** [Some j] for [Allow j], [None] for a general filter. *)

val disallowed_indices : t -> arity:int -> Iset.t option
(** Complement of the allowed set within [0..arity-1], when defined. *)

val pp : Format.formatter -> t -> unit
