(** The lattice of protection mechanisms.

    After Theorem 1 the paper remarks: "if we assume only a single
    violation notice, it can easily be shown that the sound protection
    mechanisms form a lattice". This module supplies the structure the
    remark refers to, over a finite space where it can be verified.

    The order is completeness ([Completeness.compare]); mechanisms are
    identified with their {e grant sets} (the inputs on which they return
    [Q]'s output — with one violation notice, the grant set is the whole
    extensional content). Join is {!Mechanism.join}; {!meet} grants where
    both components grant. Bottom is pulling the plug; the top of the
    {e sound} sublattice is the maximal mechanism of Theorem 2.

    Soundness closure: the join and meet of sound mechanisms are sound —
    the join by Theorem 1, the meet because its grant decision is a
    conjunction of two functions of [I(a)]. The lattice-law tests in the
    suite check all of this on concrete families. *)

val meet : Mechanism.t -> Mechanism.t -> Mechanism.t
(** [meet m1 m2] grants (with [m1]'s reply) exactly where both grant;
    elsewhere it answers the single violation notice. *)

val equivalent : Mechanism.t -> Mechanism.t -> q:Program.t -> Space.t -> bool
(** Same grant set over the space (the lattice's underlying equality). *)

val grant_set : Mechanism.t -> q:Program.t -> Space.t -> Value.t array list
(** The inputs on which the mechanism returns [Q]'s output, in enumeration
    order. *)

val of_grant_predicate :
  name:string -> q:Program.t -> (Value.t array -> bool) -> Mechanism.t
(** The mechanism that grants [Q]'s output exactly where the predicate
    holds — the paper's identification of mechanisms with subsets, as a
    constructor. Sound iff the predicate and [Q]'s restriction to it factor
    through the policy; handy for building lattice test families. *)
