(* I1 <= I2 iff the partition induced by I2 refines the partition induced
   by I1: per I2-image, the I1-image is unique. *)
let reveals_at_most p1 p2 space =
  let seen : (Value.t, Value.t) Hashtbl.t = Hashtbl.create 256 in
  Seq.for_all
    (fun a ->
      let key = Policy.image p2 a in
      let img = Policy.image p1 a in
      match Hashtbl.find_opt seen key with
      | None ->
          Hashtbl.add seen key img;
          true
      | Some img' -> Value.equal img img')
    (Space.enumerate space)

let equivalent p1 p2 space =
  reveals_at_most p1 p2 space && reveals_at_most p2 p1 space

let strictly_below p1 p2 space =
  reveals_at_most p1 p2 space && not (reveals_at_most p2 p1 space)

let agrees_with_inclusion ~arity j1 j2 space =
  ignore arity;
  reveals_at_most (Policy.allow_set j1) (Policy.allow_set j2) space
  = Iset.subset j1 j2
