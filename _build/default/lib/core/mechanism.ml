type response =
  | Granted of Value.t
  | Denied of string
  | Hung
  | Failed of string

type reply = { response : response; steps : int }
type t = { name : string; arity : int; respond : Value.t array -> reply }

let make ~name ~arity respond = { name; arity; respond }

let of_program (q : Program.t) =
  let respond a =
    let o = Program.run q a in
    let response =
      match o.Program.result with
      | Program.Value v -> Granted v
      | Program.Diverged -> Hung
      | Program.Fault m -> Failed m
    in
    { response; steps = o.Program.steps }
  in
  make ~name:q.Program.name ~arity:q.Program.arity respond

let pull_the_plug ?(notice = "\xce\x9b") arity =
  make ~name:"pull-the-plug" ~arity (fun _ ->
      { response = Denied notice; steps = 1 })

let constant ~arity v =
  make ~name:"constant" ~arity (fun _ -> { response = Granted v; steps = 1 })

let respond m a =
  if Array.length a <> m.arity then
    invalid_arg
      (Printf.sprintf "Mechanism %s: expected %d inputs, got %d" m.name m.arity
         (Array.length a));
  m.respond a

let observe view r =
  match (view, r.response) with
  | `Value, Granted v -> Program.Obs.Output v
  | `Timed, Granted v -> Program.Obs.Timed_output (v, r.steps)
  | `Value, Denied n -> Program.Obs.Output (Value.Tuple [ Value.Str "violation"; Value.Str n ])
  | `Timed, Denied n ->
      Program.Obs.Timed_output
        (Value.Tuple [ Value.Str "violation"; Value.Str n ], r.steps)
  | _, Hung -> Program.Obs.Hang
  | _, Failed m -> Program.Obs.Fail m

let join m1 m2 =
  if m1.arity <> m2.arity then invalid_arg "Mechanism.join: arity mismatch";
  let respond a =
    match m1.respond a with
    | { response = Granted _; _ } as r -> r
    | _ -> m2.respond a
  in
  make ~name:(Printf.sprintf "(%s v %s)" m1.name m2.name) ~arity:m1.arity respond

let join_list ~arity = function
  | [] -> pull_the_plug arity
  | m :: ms ->
      if m.arity <> arity then invalid_arg "Mechanism.join_list: arity mismatch";
      List.fold_left join m ms

type counterexample = {
  input : Value.t array;
  got : response;
  expected : Program.result;
}

let check_protects m q space =
  if m.arity <> q.Program.arity then
    invalid_arg "Mechanism.check_protects: arity mismatch";
  let bad =
    Seq.find_map
      (fun a ->
        let r = respond m a in
        match r.response with
        | Denied _ -> None
        | Granted v -> (
            let o = Program.run q a in
            match o.Program.result with
            | Program.Value w when Value.equal v w -> None
            | expected -> Some { input = a; got = r.response; expected })
        | Hung | Failed _ -> (
            let o = Program.run q a in
            match (r.response, o.Program.result) with
            | Hung, Program.Diverged -> None
            | Failed _, Program.Fault _ -> None
            | got, expected -> Some { input = a; got; expected }))
      (Space.enumerate space)
  in
  match bad with None -> Ok () | Some c -> Error c

let rename name m = { m with name }
