type t = int

let max_index = Sys.int_size - 1

let check i =
  if i < 0 || i >= max_index then
    invalid_arg (Printf.sprintf "Iset: index %d out of bounds [0,%d)" i max_index)

let empty = 0

let full k =
  check (k - 1 + if k = 0 then 1 else 0);
  if k = 0 then 0 else (1 lsl k) - 1

let singleton i =
  check i;
  1 lsl i

let add i s = s lor singleton i
let remove i s = s land lnot (singleton i)
let mem i s = i >= 0 && i < max_index && s land (1 lsl i) <> 0
let union a b = a lor b
let inter a b = a land b
let diff a b = a land lnot b
let subset a b = a land lnot b = 0
let equal (a : t) (b : t) = a = b
let is_empty s = s = 0

let cardinal s =
  let rec count acc s = if s = 0 then acc else count (acc + 1) (s land (s - 1)) in
  count 0 s

let of_list l = List.fold_left (fun s i -> add i s) empty l

let fold f s init =
  let rec go i s acc =
    if s = 0 then acc
    else if s land 1 <> 0 then go (i + 1) (s lsr 1) (f i acc)
    else go (i + 1) (s lsr 1) acc
  in
  go 0 s init

let to_list s = List.rev (fold (fun i acc -> i :: acc) s [])
let union_list l = List.fold_left union empty l
let to_mask s = s

let of_mask m =
  if m < 0 then invalid_arg "Iset.of_mask: negative mask";
  m

let pp ppf s =
  Format.fprintf ppf "{%s}" (String.concat "," (List.map string_of_int (to_list s)))

let to_string s = Format.asprintf "%a" pp s
