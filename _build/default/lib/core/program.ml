type result = Value of Value.t | Diverged | Fault of string
type outcome = { result : result; steps : int }
type t = { name : string; arity : int; run : Value.t array -> outcome }
type view = [ `Value | `Timed ]

let make ~name ~arity run = { name; arity; run }

let of_fun ~name ~arity f =
  make ~name ~arity (fun a -> { result = Value (f a); steps = 1 })

let value v = Value v

let check_arity q a =
  if Array.length a <> q.arity then
    invalid_arg
      (Printf.sprintf "Program %s: expected %d inputs, got %d" q.name q.arity
         (Array.length a))

let run q a =
  check_arity q a;
  q.run a

module Obs = struct
  type t =
    | Output of Value.t
    | Timed_output of Value.t * int
    | Hang
    | Fail of string

  let equal (a : t) (b : t) = a = b
  let compare (a : t) (b : t) = Stdlib.compare a b

  let pp ppf = function
    | Output v -> Value.pp ppf v
    | Timed_output (v, t) -> Format.fprintf ppf "%a@%d" Value.pp v t
    | Hang -> Format.pp_print_string ppf "<hang>"
    | Fail m -> Format.fprintf ppf "<fault:%s>" m

  let to_string o = Format.asprintf "%a" pp o
end

let observe view o =
  match (view, o.result) with
  | `Value, Value v -> Obs.Output v
  | `Timed, Value v -> Obs.Timed_output (v, o.steps)
  | _, Diverged -> Obs.Hang
  | _, Fault m -> Obs.Fail m

let total_on q space =
  Seq.for_all
    (fun a -> match (run q a).result with Value _ -> true | Diverged | Fault _ -> false)
    (Space.enumerate space)
