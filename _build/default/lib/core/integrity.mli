(** The paper's second security question: data security.

    Section 2 distinguishes two uses of a program. As a {e view} function
    the question is whether [Q(a)] contains information it should not —
    confinement, the subject of the rest of the paper. As an {e operator}
    the question flips: does the result contain {e all} the information it
    should? ("data security": has a system table been illegally altered and
    hence lost?) The paper asserts without proof that the same methods
    handle this case; this module is that assertion, made executable.

    Dualizing soundness: a mechanism {e preserves} a policy [I] if the
    required information [I(a)] is recoverable from the reply — there is a
    function [G] with [I(a) = G(M(a))] for every input. Where soundness
    says the reply may depend on {e at most} [I(a)], preservation says it
    must determine {e at least} [I(a)]. Over a finite space this is again
    decidable by partitioning: group inputs by reply; preservation holds
    iff [I] is constant on every group. A violation witness is a pair of
    inputs the mechanism merges that the policy requires kept apart. *)

type config = {
  view : Program.view;
  identify_violations : bool;
      (** with [true], all violation notices count as the same reply — the
          harshest reading, under which any denial on a non-trivial policy
          destroys information *)
}

val default : config

type witness = {
  input_a : Value.t array;
  input_b : Value.t array;  (** replies are equal... *)
  image_a : Value.t;
  image_b : Value.t;  (** ... but the required images differ: information
                          the operator had to deliver was lost *)
}

type verdict = Preserves | Loses of witness

val check : ?config:config -> Policy.t -> Mechanism.t -> Space.t -> verdict

val check_program : ?config:config -> Policy.t -> Program.t -> Space.t -> verdict
(** Does the bare program deliver everything [I] requires? *)

val preserves : ?config:config -> Policy.t -> Mechanism.t -> Space.t -> bool

val pp_verdict : Format.formatter -> verdict -> unit
