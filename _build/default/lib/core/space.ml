type t = { domains : Value.t array array }

let make domains =
  Array.iteri
    (fun i d ->
      if Array.length d = 0 then
        invalid_arg (Printf.sprintf "Space.make: empty domain for input %d" i))
    domains;
  { domains }

let ints ~lo ~hi ~arity =
  if hi < lo then invalid_arg "Space.ints: hi < lo";
  let d = Array.init (hi - lo + 1) (fun j -> Value.Int (lo + j)) in
  make (Array.init arity (fun _ -> d))

let of_domains ds = make (Array.of_list (List.map Array.of_list ds))
let heterogeneous ds = make (Array.map Array.of_list ds)
let arity s = Array.length s.domains
let domain s i = s.domains.(i)

let size s =
  Array.fold_left
    (fun acc d ->
      let n = acc * Array.length d in
      if acc <> 0 && n / acc <> Array.length d then
        invalid_arg "Space.size: overflow";
      n)
    1 s.domains

let mem s a =
  Array.length a = arity s
  && Array.for_all2 (fun v d -> Array.exists (Value.equal v) d) a s.domains

(* Lexicographic enumeration via an odometer over domain indices. The state
   is copied on advance so the resulting sequence is persistent. *)
let enumerate s =
  let k = arity s in
  let current idx = Array.init k (fun i -> s.domains.(i).(idx.(i))) in
  let advance idx =
    let idx = Array.copy idx in
    let rec go i =
      if i < 0 then None
      else begin
        idx.(i) <- idx.(i) + 1;
        if idx.(i) >= Array.length s.domains.(i) then begin
          idx.(i) <- 0;
          go (i - 1)
        end
        else Some idx
      end
    in
    go (k - 1)
  in
  let rec from idx () =
    Seq.Cons
      ( current idx,
        fun () ->
          match advance idx with None -> Seq.Nil | Some idx' -> from idx' () )
  in
  from (Array.make k 0)

let sample rng s =
  Array.map (fun d -> d.(Random.State.int rng (Array.length d))) s.domains

let sample_seq rng s n =
  Seq.init n (fun _ -> ()) |> Seq.map (fun () -> sample rng s)

let restrict s i v =
  if i < 0 || i >= arity s then invalid_arg "Space.restrict: bad index";
  let domains = Array.copy s.domains in
  domains.(i) <- [| v |];
  { domains }

let pp ppf s =
  Format.fprintf ppf "@[<h>";
  Array.iteri
    (fun i d ->
      if i > 0 then Format.fprintf ppf " x ";
      Format.fprintf ppf "D%d[%d]" i (Array.length d))
    s.domains;
  Format.fprintf ppf "@]"
