(** Programs as functions, with an explicit cost model.

    Following the paper's basic model, a program is (extensionally) a function
    [Q : D1 x ... x Dk -> E]. Two departures, both forced by executability:

    - The paper assumes [Q] total. Concrete interpreters may diverge, so a run
      produces an {!outcome} whose {!result} distinguishes a proper value from
      divergence (fuel exhaustion) and from a runtime fault.
    - The observability postulate says the output must encode {e everything}
      the user can observe — in particular running time. Every run therefore
      reports a step count; whether that count is part of the observable
      output is chosen per-experiment via {!view}. *)

type result =
  | Value of Value.t  (** normal termination with an output value *)
  | Diverged  (** fuel exhausted: treated as (observable) nontermination *)
  | Fault of string  (** runtime error, e.g. division by zero *)

type outcome = {
  result : result;
  steps : int;  (** number of elementary steps executed *)
}

type t = {
  name : string;
  arity : int;  (** number of inputs [k] *)
  run : Value.t array -> outcome;
}

(** Which implicit outputs the user is assumed to observe. [`Timed] models
    the paper's "the range of Q is Z x Z": the output is the pair of the
    computed value and the number of steps executed. *)
type view = [ `Value | `Timed ]

val make : name:string -> arity:int -> (Value.t array -> outcome) -> t

val of_fun : name:string -> arity:int -> (Value.t array -> Value.t) -> t
(** Lift a pure total function; every run costs one step. *)

val value : Value.t -> result

val run : t -> Value.t array -> outcome

(** The observable produced by one run under a given view. Comparing
    observables is how soundness is decided: a mechanism is sound iff its
    observable is constant on every policy-equivalence class. *)
module Obs : sig
  type t =
    | Output of Value.t
    | Timed_output of Value.t * int
    | Hang  (** divergence; observable as "no answer" *)
    | Fail of string

  val equal : t -> t -> bool
  val compare : t -> t -> int
  val pp : Format.formatter -> t -> unit
  val to_string : t -> string
end

val observe : view -> outcome -> Obs.t
(** [observe view o] is what a user watching the program sees. Under [`Timed]
    the step count is part of the observation, including for divergence and
    faults (a hung terminal and an error message are observable events). *)

val total_on : t -> Space.t -> bool
(** True iff the program terminates normally on every input of the space —
    i.e. it really is the total function the paper requires. *)

val check_arity : t -> Value.t array -> unit
(** @raise Invalid_argument if the vector length differs from [arity]. *)
