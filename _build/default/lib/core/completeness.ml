let grants m ~q a =
  match (Mechanism.respond m a).Mechanism.response with
  | Mechanism.Granted v -> (
      match (Program.run q a).Program.result with
      | Program.Value w -> Value.equal v w
      | Program.Diverged | Program.Fault _ -> false)
  | Mechanism.Denied _ | Mechanism.Hung | Mechanism.Failed _ -> false

let grant_count m ~q space =
  Seq.fold_left
    (fun (g, n) a -> ((if grants m ~q a then g + 1 else g), n + 1))
    (0, 0) (Space.enumerate space)

let ratio m ~q space =
  let g, n = grant_count m ~q space in
  if n = 0 then 1.0 else float_of_int g /. float_of_int n

type comparison = Equal | More_complete | Less_complete | Incomparable

let compare m1 m2 ~q space =
  let m1_extra = ref false and m2_extra = ref false in
  Seq.iter
    (fun a ->
      let g1 = grants m1 ~q a and g2 = grants m2 ~q a in
      if g1 && not g2 then m1_extra := true;
      if g2 && not g1 then m2_extra := true)
    (Space.enumerate space);
  match (!m1_extra, !m2_extra) with
  | false, false -> Equal
  | true, false -> More_complete
  | false, true -> Less_complete
  | true, true -> Incomparable

let as_complete_as m1 m2 ~q space =
  let missing =
    Seq.find (fun a -> grants m2 ~q a && not (grants m1 ~q a)) (Space.enumerate space)
  in
  match missing with None -> Ok () | Some a -> Error a

let pp_comparison ppf c =
  Format.pp_print_string ppf
    (match c with
    | Equal -> "="
    | More_complete -> ">"
    | Less_complete -> "<"
    | Incomparable -> "<>")
