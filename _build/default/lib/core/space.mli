(** Finite input spaces [D1 x ... x Dk].

    The paper's definitions of soundness, completeness and maximality
    universally quantify over the whole input space. By working over finite,
    explicitly enumerated domains those quantifiers become decidable, so the
    paper's theorems can be checked exhaustively rather than assumed. A space
    records one finite domain per input position. *)

type t
(** A finite cartesian product of per-input domains. *)

val make : Value.t array array -> t
(** [make domains] builds the space [domains.(0) x ... x domains.(k-1)].
    Every domain must be non-empty.
    @raise Invalid_argument on an empty domain. *)

val ints : lo:int -> hi:int -> arity:int -> t
(** [ints ~lo ~hi ~arity] is the space [{lo..hi}^arity] of integer vectors
    (bounds inclusive). *)

val of_domains : Value.t list list -> t

val heterogeneous : Value.t list array -> t
(** Like {!make} but from lists, for spaces whose coordinates differ. *)

val arity : t -> int

val domain : t -> int -> Value.t array
(** [domain s i] is the domain of input [i]. *)

val size : t -> int
(** Number of input vectors; raises [Invalid_argument] on overflow. *)

val mem : t -> Value.t array -> bool

val enumerate : t -> Value.t array Seq.t
(** All input vectors in lexicographic order. Each produced array is fresh
    and owned by the consumer. *)

val sample : Random.State.t -> t -> Value.t array
(** One input vector uniformly at random. *)

val sample_seq : Random.State.t -> t -> int -> Value.t array Seq.t
(** [sample_seq rng s n] draws [n] independent uniform vectors. *)

val restrict : t -> int -> Value.t -> t
(** [restrict s i v] pins coordinate [i] to the single value [v]. *)

val pp : Format.formatter -> t -> unit
