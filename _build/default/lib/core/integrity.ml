type config = { view : Program.view; identify_violations : bool }

let default = { view = `Value; identify_violations = false }

type witness = {
  input_a : Value.t array;
  input_b : Value.t array;
  image_a : Value.t;
  image_b : Value.t;
}

type verdict = Preserves | Loses of witness

let canonicalize config (obs : Program.Obs.t) : Program.Obs.t =
  if not config.identify_violations then obs
  else
    match obs with
    | Program.Obs.Output (Value.Tuple (Value.Str "violation" :: _)) ->
        Program.Obs.Output (Value.Tuple [ Value.Str "violation" ])
    | Program.Obs.Timed_output (Value.Tuple (Value.Str "violation" :: _), t) ->
        Program.Obs.Timed_output (Value.Tuple [ Value.Str "violation" ], t)
    | o -> o

(* Dual of Soundness.check: partition by REPLY, require the policy image
   constant within each block. *)
let check ?(config = default) policy m space =
  let seen : (Program.Obs.t, Value.t array * Value.t) Hashtbl.t =
    Hashtbl.create 1024
  in
  let witness =
    Seq.find_map
      (fun a ->
        let obs =
          canonicalize config (Mechanism.observe config.view (Mechanism.respond m a))
        in
        let image = Policy.image policy a in
        match Hashtbl.find_opt seen obs with
        | None ->
            Hashtbl.add seen obs (a, image);
            None
        | Some (b, image_b) ->
            if Value.equal image image_b then None
            else Some { input_a = b; input_b = a; image_a = image_b; image_b = image })
      (Space.enumerate space)
  in
  match witness with None -> Preserves | Some w -> Loses w

let check_program ?config policy q space =
  check ?config policy (Mechanism.of_program q) space

let preserves ?config policy m space =
  match check ?config policy m space with Preserves -> true | Loses _ -> false

let pp_input ppf a =
  Format.fprintf ppf "(%a)"
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ") Value.pp)
    (Array.to_list a)

let pp_verdict ppf = function
  | Preserves -> Format.pp_print_string ppf "preserves"
  | Loses w ->
      Format.fprintf ppf
        "@[<v>loses information:@ inputs %a and %a produce the same reply@ \
         but required images %a and %a differ@]"
        pp_input w.input_a pp_input w.input_b Value.pp w.image_a Value.pp
        w.image_b
