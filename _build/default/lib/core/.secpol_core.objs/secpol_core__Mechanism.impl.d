lib/core/mechanism.ml: Array List Printf Program Seq Space Value
