lib/core/integrity.ml: Array Format Hashtbl Mechanism Policy Program Seq Space Value
