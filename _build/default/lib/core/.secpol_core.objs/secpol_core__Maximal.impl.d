lib/core/maximal.ml: Hashtbl Mechanism Policy Printf Program Seq Space Value
