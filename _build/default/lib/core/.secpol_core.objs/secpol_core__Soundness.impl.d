lib/core/soundness.ml: Array Format Hashtbl Mechanism Policy Program Seq Space Value
