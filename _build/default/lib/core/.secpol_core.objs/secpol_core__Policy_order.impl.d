lib/core/policy_order.ml: Hashtbl Iset Policy Seq Space Value
