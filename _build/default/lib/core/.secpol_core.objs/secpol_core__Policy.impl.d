lib/core/policy.ml: Array Format Iset List Value
