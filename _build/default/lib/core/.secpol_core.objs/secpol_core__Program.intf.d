lib/core/program.mli: Format Space Value
