lib/core/space.ml: Array Format List Printf Random Seq Value
