lib/core/completeness.ml: Format Mechanism Program Seq Space Value
