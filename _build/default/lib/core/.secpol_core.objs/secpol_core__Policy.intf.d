lib/core/policy.mli: Format Iset Value
