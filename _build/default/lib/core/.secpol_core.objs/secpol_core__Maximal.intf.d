lib/core/maximal.mli: Mechanism Policy Program Space
