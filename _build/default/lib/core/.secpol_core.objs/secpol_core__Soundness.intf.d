lib/core/soundness.mli: Format Mechanism Policy Program Space Value
