lib/core/mechanism.mli: Program Space Stdlib Value
