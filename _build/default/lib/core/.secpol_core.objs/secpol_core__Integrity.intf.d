lib/core/integrity.mli: Format Mechanism Policy Program Space Value
