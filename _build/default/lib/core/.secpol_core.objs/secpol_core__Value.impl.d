lib/core/value.ml: Format Hashtbl Stdlib
