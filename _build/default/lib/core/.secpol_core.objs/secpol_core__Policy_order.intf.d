lib/core/policy_order.mli: Iset Policy Space
