lib/core/iset.mli: Format
