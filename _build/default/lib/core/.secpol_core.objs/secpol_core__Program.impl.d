lib/core/program.ml: Array Format Printf Seq Space Stdlib Value
