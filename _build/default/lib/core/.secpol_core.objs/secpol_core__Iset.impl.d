lib/core/iset.ml: Format List Printf String Sys
