lib/core/lattice.ml: Completeness List Mechanism Printf Program Seq Space
