lib/core/space.mli: Format Random Seq Value
