lib/core/lattice.mli: Mechanism Program Space Value
