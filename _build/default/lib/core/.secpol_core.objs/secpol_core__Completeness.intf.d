lib/core/completeness.mli: Format Mechanism Program Space Value
