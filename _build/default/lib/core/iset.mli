(** Sets of input indices.

    The paper indexes program inputs [x1 ... xk]; we use 0-based indices
    [0 .. k-1] throughout the library. An {!Iset.t} denotes a subset of input
    positions — the allowed set [J] of a policy [allow(J)], or the
    "surveillance variable" of a program variable (the set of inputs that may
    have affected its current value).

    The representation is an integer bitset, so indices are limited to
    [0 .. max_index - 1]. Every program in this reproduction has far fewer
    inputs than that; constructors assert the bound. *)

type t
(** An immutable set of input indices. *)

val max_index : int
(** Exclusive upper bound on representable indices (62 on 64-bit). *)

val empty : t

val full : int -> t
(** [full k] is [{0, ..., k-1}]. *)

val singleton : int -> t

val add : int -> t -> t

val remove : int -> t -> t

val mem : int -> t -> bool

val union : t -> t -> t

val inter : t -> t -> t

val diff : t -> t -> t

val subset : t -> t -> bool
(** [subset a b] is true iff every index of [a] is in [b]. *)

val equal : t -> t -> bool

val is_empty : t -> bool

val cardinal : t -> int

val of_list : int list -> t

val to_list : t -> int list
(** Ascending order. *)

val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a
(** Folds over members in ascending order. *)

val union_list : t list -> t

val to_mask : t -> int
(** The raw bitset, used when encoding surveillance variables as integer
    program values in instrumented flowcharts. *)

val of_mask : int -> t
(** Inverse of {!to_mask}. Negative masks are rejected. *)

val pp : Format.formatter -> t -> unit
(** Prints as [{i1,i2,...}] with 0-based indices. *)

val to_string : t -> string
