(** The refinement order on security policies.

    Policies are information filters; one filter is more restrictive than
    another when its output can be computed from the other's. Over a
    finite space this is decidable by comparing the induced partitions:
    [I1] {e reveals at most} [I2] iff whenever [I2] cannot distinguish two
    inputs, neither can [I1] (every [I2]-class sits inside an [I1]-class).

    For the paper's [allow(...)] family the order is just set inclusion of
    the allowed index sets — {!agrees_with_inclusion} pins the semantic
    and syntactic readings together — but the semantic definition also
    orders content-dependent filters like Example 2's.

    Two facts the test suite verifies on random programs (neither stated
    in the paper, both immediate in its model):

    - {e soundness is antitone}: a mechanism sound for a more restrictive
      policy is sound for any laxer one;
    - {e surveillance is monotone}: enlarging the allowed set never
      shrinks any dynamic mechanism's grant set. *)

val reveals_at_most : Policy.t -> Policy.t -> Space.t -> bool
(** [reveals_at_most i1 i2 space]: [I1]'s image is a function of [I2]'s
    over the space ([I1] is at least as restrictive as [I2]). *)

val equivalent : Policy.t -> Policy.t -> Space.t -> bool
(** Same induced partition: interchangeable for every enforcement
    question. *)

val strictly_below : Policy.t -> Policy.t -> Space.t -> bool
(** Reveals at most, and on some pair strictly less. *)

val agrees_with_inclusion : arity:int -> Iset.t -> Iset.t -> Space.t -> bool
(** Sanity: [allow(J1) reveals_at_most allow(J2)] iff [J1 ⊆ J2], over the
    given space (requires every input domain to have at least two values,
    otherwise a coordinate carries no information and inclusion is
    sufficient but not necessary). *)
