(** Protection mechanisms.

    A protection mechanism for [Q : D1 x ... x Dk -> E] is a function
    [M : D1 x ... x Dk -> E u F]: on every input it either returns exactly
    [Q]'s output or a violation notice drawn from a set [F] disjoint from [E].
    The mechanism is the thing users actually run — the "gatekeeper" that
    suppresses or replaces the protected program's output.

    Because mechanisms are executable objects here, a reply also carries the
    mechanism's own step count. The paper notes that a mechanism's running
    time may legitimately differ from the protected program's; what matters
    (for soundness under an observable clock) is that the mechanism's time
    does not encode disallowed information. *)

type response =
  | Granted of Value.t  (** the protected program's own output, [Q(a)] *)
  | Denied of string  (** a violation notice from [F]; the payload is the
                          notice's identity — distinct notices are distinct
                          elements of [F] *)
  | Hung  (** the mechanism diverged (fuel exhausted) *)
  | Failed of string  (** the mechanism faulted at runtime *)

type reply = { response : response; steps : int }

type t = {
  name : string;
  arity : int;
  respond : Value.t array -> reply;
}

val make : name:string -> arity:int -> (Value.t array -> reply) -> t

val of_program : Program.t -> t
(** The program as its own protection mechanism — "no protection at all"
    (Example 3). Sound only if the program itself ignores disallowed
    inputs. *)

val pull_the_plug : ?notice:string -> int -> t
(** [pull_the_plug arity] always answers the same violation notice —
    trivially sound for every policy, and useless (Example 3). *)

val constant : arity:int -> Value.t -> t
(** Always grants a fixed value. A mechanism for [Q] only if [Q] is that
    constant. *)

val respond : t -> Value.t array -> reply

val observe : Program.view -> reply -> Program.Obs.t
(** The user-visible observable of a reply. Violation notices are observable
    values (strings tagged to stay disjoint from program outputs); under
    [`Timed] the reply's step count is included for grants {e and} denials —
    the time at which a violation notice appears is itself a channel. *)

val join : t -> t -> t
(** [join m1 m2] is the union mechanism [M1 v M2] of Theorem 1:
    grants whenever either component grants, otherwise answers [m2]'s reply.
    If both components are sound protection mechanisms for the same [Q] and
    [I], the join is a sound mechanism at least as complete as each. *)

val join_list : arity:int -> t list -> t
(** Big union [M1 v M2 v ...]; with the empty list this is
    {!pull_the_plug}. *)

type counterexample = {
  input : Value.t array;
  got : response;
  expected : Program.result;
}

val check_protects : t -> Program.t -> Space.t -> (unit, counterexample) Stdlib.result
(** Exhaustively verify the defining condition of a protection mechanism:
    for every input, [M(a) = Q(a)] or [M(a)] is a violation notice. (Replies
    are compared by value, not time.) *)

val rename : string -> t -> t
