(** First-order values.

    The paper treats a program as a total function [Q : D1 x ... x Dk -> E]
    over unspecified domains. We instantiate domains with a small universe of
    first-order values: integers, booleans, strings, and tuples. Tuples let a
    single output carry several components — in particular [(value, time)]
    pairs when running time is declared observable, and the canonical image
    [I(a)] of a policy applied to an input vector. *)

type t =
  | Int of int
  | Bool of bool
  | Str of string
  | Tuple of t list

val unit : t
(** The empty tuple, used as the image of [allow()] ("no information"). *)

val int : int -> t

val bool : bool -> t

val str : string -> t

val tuple : t list -> t

val pair : t -> t -> t

val equal : t -> t -> bool

val compare : t -> t -> int
(** A total order (structural); used to key partitions of input spaces. *)

val hash : t -> int

val to_int : t -> int
(** @raise Invalid_argument if the value is not an [Int]. *)

val pp : Format.formatter -> t -> unit

val to_string : t -> string
