type t =
  | Allow of Iset.t
  | Filter of { name : string; image : Value.t array -> Value.t }

let allow l = Allow (Iset.of_list l)
let allow_set j = Allow j
let allow_none = Allow Iset.empty
let allow_all ~arity = Allow (Iset.full arity)
let filter ~name image = Filter { name; image }

let name = function
  | Allow j -> Format.asprintf "allow%a" Iset.pp j
  | Filter { name; _ } -> name

let image p a =
  match p with
  | Allow j -> Value.Tuple (List.map (fun i -> a.(i)) (Iset.to_list j))
  | Filter { image; _ } -> image a

let equiv p a b = Value.equal (image p a) (image p b)
let allowed_indices = function Allow j -> Some j | Filter _ -> None

let disallowed_indices p ~arity =
  match p with
  | Allow j -> Some (Iset.diff (Iset.full arity) j)
  | Filter _ -> None

let pp ppf p = Format.pp_print_string ppf (name p)
