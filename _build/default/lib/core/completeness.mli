(** The completeness (pre-)order on protection mechanisms.

    Pulling the plug is sound; the interesting question is which sound
    mechanism gives the {e most} real answers. With all violation notices
    identified, [M1 >= M2] iff for every input where [M2] returns [Q]'s
    output, so does [M1]. This module decides the order exhaustively over a
    finite space and also measures the {e completeness ratio} — the fraction
    of the input space on which a mechanism grants [Q]'s output — which is
    the quantity the experiment tables report.

    Grants are compared to [Q] by output value only: the paper explicitly
    allows a mechanism's running time to differ from the program's. *)

val grants : Mechanism.t -> q:Program.t -> Value.t array -> bool
(** [grants m ~q a] iff [M(a) = Q(a)] (a real answer, not a notice). *)

val ratio : Mechanism.t -> q:Program.t -> Space.t -> float
(** Fraction of the space on which the mechanism grants. 1.0 means the
    mechanism is as complete as [Q] itself; 0.0 is pulling the plug. *)

val grant_count : Mechanism.t -> q:Program.t -> Space.t -> int * int
(** [(grants, total)] over the space. *)

type comparison =
  | Equal  (** grant exactly the same inputs *)
  | More_complete  (** [m1 > m2] strictly *)
  | Less_complete  (** [m1 < m2] strictly *)
  | Incomparable  (** each grants somewhere the other does not *)

val compare : Mechanism.t -> Mechanism.t -> q:Program.t -> Space.t -> comparison
(** Decide the paper's [>=] order between two mechanisms for the same
    program, exhaustively. *)

val as_complete_as :
  Mechanism.t -> Mechanism.t -> q:Program.t -> Space.t -> (unit, Value.t array) result
(** [as_complete_as m1 m2 ~q space] is [Ok ()] iff [m1 >= m2]; otherwise the
    error carries an input where [m2] grants but [m1] does not. *)

val pp_comparison : Format.formatter -> comparison -> unit
