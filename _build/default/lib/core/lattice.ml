let notice = "\xce\x9b"

let meet m1 m2 =
  if m1.Mechanism.arity <> m2.Mechanism.arity then
    invalid_arg "Lattice.meet: arity mismatch";
  let respond a =
    let r1 = Mechanism.respond m1 a in
    match r1.Mechanism.response with
    | Mechanism.Granted _ -> (
        match (Mechanism.respond m2 a).Mechanism.response with
        | Mechanism.Granted _ -> r1
        | Mechanism.Denied _ | Mechanism.Hung | Mechanism.Failed _ ->
            { Mechanism.response = Mechanism.Denied notice; steps = 1 })
    | Mechanism.Denied _ | Mechanism.Hung | Mechanism.Failed _ ->
        { Mechanism.response = Mechanism.Denied notice; steps = 1 }
  in
  Mechanism.make
    ~name:(Printf.sprintf "(%s ^ %s)" m1.Mechanism.name m2.Mechanism.name)
    ~arity:m1.Mechanism.arity respond

let grant_set m ~q space =
  List.of_seq
    (Seq.filter (fun a -> Completeness.grants m ~q a) (Space.enumerate space))

let equivalent m1 m2 ~q space =
  Seq.for_all
    (fun a -> Completeness.grants m1 ~q a = Completeness.grants m2 ~q a)
    (Space.enumerate space)

let of_grant_predicate ~name ~q pred =
  let respond a =
    if pred a then begin
      let o = Program.run q a in
      match o.Program.result with
      | Program.Value v ->
          { Mechanism.response = Mechanism.Granted v; steps = o.Program.steps }
      | Program.Diverged -> { Mechanism.response = Mechanism.Hung; steps = o.Program.steps }
      | Program.Fault m -> { Mechanism.response = Mechanism.Failed m; steps = o.Program.steps }
    end
    else { Mechanism.response = Mechanism.Denied notice; steps = 1 }
  in
  Mechanism.make ~name ~arity:q.Program.arity respond
