type t =
  | Int of int
  | Bool of bool
  | Str of string
  | Tuple of t list

let unit = Tuple []
let int n = Int n
let bool b = Bool b
let str s = Str s
let tuple l = Tuple l
let pair a b = Tuple [ a; b ]
let equal (a : t) (b : t) = a = b
let compare (a : t) (b : t) = Stdlib.compare a b
let hash (v : t) = Hashtbl.hash v

let to_int = function
  | Int n -> n
  | Bool _ | Str _ | Tuple _ -> invalid_arg "Value.to_int: not an integer"

let rec pp ppf = function
  | Int n -> Format.pp_print_int ppf n
  | Bool b -> Format.pp_print_bool ppf b
  | Str s -> Format.fprintf ppf "%S" s
  | Tuple l ->
      Format.fprintf ppf "(%a)"
        (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ") pp)
        l

let to_string v = Format.asprintf "%a" pp v
