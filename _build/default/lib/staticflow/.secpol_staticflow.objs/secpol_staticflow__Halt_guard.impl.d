lib/staticflow/halt_guard.ml: Array Dataflow List Secpol_core Secpol_flowgraph
