lib/staticflow/dataflow.mli: Secpol_core Secpol_flowgraph
