lib/staticflow/dataflow.ml: Array Fun List Printf Secpol_core Secpol_flowgraph
