lib/staticflow/certify.ml: List Printf Secpol_core Secpol_flowgraph
