lib/staticflow/halt_guard.mli: Secpol_core Secpol_flowgraph
