lib/staticflow/certify.mli: Secpol_core Secpol_flowgraph
