(** Per-halt compile-time enforcement (Example 9's mechanism).

    Whole-program certification ({!Dataflow.certified}) is all-or-nothing:
    one dirty path condemns every input. Example 9's duplication transform
    works because the mechanism it feeds is finer-grained: each halt box is
    checked {e separately}, and only the halt boxes whose statically
    computed output taint escapes the allowed set are replaced by violation
    halts. The rewritten flowchart is itself the mechanism — enforcement
    costs nothing at run time, and inputs that reach a clean halt are
    served.

    The per-halt check includes the halt's control context (the taints of
    the decisions it sits under), so reaching-a-given-halt can only encode
    allowed information: the construction stays sound. When the decisions
    guarding a halt are themselves disallowed, the context taints the halt
    and it is (correctly) replaced — this is why the mechanism only
    improves on whole-program certification when the branching is on
    {e allowed} data, exactly Example 9's situation. *)

val guard : allowed:Secpol_core.Iset.t -> Secpol_flowgraph.Graph.t -> Secpol_flowgraph.Graph.t
(** Replace statically uncertifiable halt boxes with violation halts. *)

val mechanism :
  ?fuel:int ->
  policy:Secpol_core.Policy.t ->
  Secpol_flowgraph.Graph.t ->
  Secpol_core.Mechanism.t
(** Package the guarded flowchart as a protection mechanism.
    @raise Invalid_argument on a non-[allow] policy. *)
