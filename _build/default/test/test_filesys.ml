(* Example 2: the file system with its content-dependent policy. *)

open Util
module Filesys = Secpol_filesys.Filesys
module Leakage = Secpol_probe.Leakage
module Partition = Secpol_probe.Partition

let k = 2
let space = Filesys.space ~k ~file_values:[ 10; 20 ]
let policy = Filesys.policy ~k

(* inputs: [d0; d1; f0; f1] with dirs booleans. *)
let inp d0 d1 f0 f1 =
  [| Value.bool d0; Value.bool d1; Value.int f0; Value.int f1 |]

let test_policy_filters_denied_files () =
  (* Same directories; file 1 differs but is denied: images equal. *)
  let a = inp true false 10 10 and b = inp true false 10 20 in
  Alcotest.(check bool) "denied file filtered out" true (Policy.equiv policy a b);
  (* If the directory says YES the file content shows in the image. *)
  let c = inp true true 10 10 and d = inp true true 10 20 in
  Alcotest.(check bool) "permitted file visible" false (Policy.equiv policy c d);
  (* Directories themselves are always visible. *)
  let e = inp true false 10 10 and f = inp false false 10 10 in
  Alcotest.(check bool) "directories visible" false (Policy.equiv policy e f)

let test_partition_shape () =
  (* 4 dir combos x file visibility: d1 hides f1 (2 values collapse), etc.
     Total points 4*4 = 16; classes: for each dir combo, visible files
     multiply: YY->4, YN->2, NY->2, NN->1 classes = 9. *)
  let p = Partition.compute policy space in
  Alcotest.(check int) "points" 16 p.Partition.points;
  Alcotest.(check int) "classes" 9 (Partition.class_count p)

let test_raw_read_unsound () =
  let q = Filesys.read_file ~k ~slot:1 in
  check_unsound "reading without the permission check leaks" policy
    (Mechanism.of_program q) space;
  let leak = Leakage.of_program policy q space in
  Alcotest.(check bool) "leaks a full bit on denied classes" true
    (leak.Leakage.max_bits > 0.99)

let test_monitor_sound_and_complete_where_permitted () =
  let q = Filesys.read_file ~k ~slot:1 in
  let m = Filesys.monitor ~k ~slot:1 in
  check_sound "reference monitor is sound" policy m space;
  (match Mechanism.check_protects m q space with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "monitor grants must equal the file content");
  (* Grants exactly the half of the space where d1 = YES. *)
  check_ratio "permitted half served" ~expected:0.5 m ~q space;
  Alcotest.(check bool) "monitor leaks nothing" true
    (Leakage.is_tight (Leakage.of_mechanism policy m space))

let test_monitor_notice_text () =
  match
    (Mechanism.respond (Filesys.monitor ~k ~slot:0) (inp false true 10 20))
      .Mechanism.response
  with
  | Mechanism.Denied n ->
      Alcotest.(check string) "paper's notice" Filesys.violation_notice n
  | _ -> Alcotest.fail "expected denial"

let test_self_checking_program_sound () =
  (* read_sum_permitted consults the directories itself: sound untouched. *)
  let q = Filesys.read_sum_permitted ~k in
  check_sound "self-checking program is its own sound mechanism" policy
    (Mechanism.of_program q) space;
  (* And it computes what it should. *)
  match (Program.run q (inp true false 10 20)).Program.result with
  | Program.Value v -> Alcotest.check value_testable "sum" (Value.int 10) v
  | _ -> Alcotest.fail "expected a value"

let test_monitor_for_wrong_slot_is_not_mechanism_for_q () =
  let q = Filesys.read_file ~k ~slot:1 in
  let wrong = Filesys.monitor ~k ~slot:0 in
  match Mechanism.check_protects wrong q space with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "monitoring the wrong slot must not protect q"

let () =
  Alcotest.run "secpol-filesys"
    [
      ( "filesys",
        [
          Alcotest.test_case "policy-filters" `Quick test_policy_filters_denied_files;
          Alcotest.test_case "partition-shape" `Quick test_partition_shape;
          Alcotest.test_case "raw-read-unsound" `Quick test_raw_read_unsound;
          Alcotest.test_case "monitor-sound" `Quick test_monitor_sound_and_complete_where_permitted;
          Alcotest.test_case "monitor-notice" `Quick test_monitor_notice_text;
          Alcotest.test_case "self-checking-sound" `Quick test_self_checking_program_sound;
          Alcotest.test_case "wrong-slot" `Quick test_monitor_for_wrong_slot_is_not_mechanism_for_q;
        ] );
    ]
