(* The basic model of Section 2: programs, policies, mechanisms, soundness,
   completeness, join (Theorem 1) and the maximal mechanism (Theorem 2). *)

open Util
module Iset = Secpol_core.Iset

(* A concrete little program used throughout: Q(x0, x1) = x0 + 2*x1. *)
let q_linear =
  Program.of_fun ~name:"linear" ~arity:2 (fun a ->
      Value.int (Value.to_int a.(0) + (2 * Value.to_int a.(1))))

(* Q(x0, x1) = x0 (ignores the second input entirely). *)
let q_first =
  Program.of_fun ~name:"first" ~arity:2 (fun a -> a.(0))

let space2 = Space.ints ~lo:0 ~hi:3 ~arity:2

(* --- Iset ----------------------------------------------------------- *)

let test_iset_basics () =
  let s = Iset.of_list [ 0; 2; 5 ] in
  Alcotest.(check (list int)) "to_list" [ 0; 2; 5 ] (Iset.to_list s);
  Alcotest.(check int) "cardinal" 3 (Iset.cardinal s);
  Alcotest.(check bool) "mem" true (Iset.mem 2 s);
  Alcotest.(check bool) "not mem" false (Iset.mem 1 s);
  Alcotest.check iset_testable "union"
    (Iset.of_list [ 0; 1; 2; 5 ])
    (Iset.union s (Iset.singleton 1));
  Alcotest.check iset_testable "inter"
    (Iset.singleton 2)
    (Iset.inter s (Iset.of_list [ 1; 2; 3 ]));
  Alcotest.check iset_testable "diff"
    (Iset.of_list [ 0; 5 ])
    (Iset.diff s (Iset.of_list [ 2; 3 ]));
  Alcotest.(check bool) "subset yes" true
    (Iset.subset (Iset.of_list [ 0; 5 ]) s);
  Alcotest.(check bool) "subset no" false
    (Iset.subset (Iset.of_list [ 0; 1 ]) s)

let test_iset_full () =
  Alcotest.check iset_testable "full 0" Iset.empty (Iset.full 0);
  Alcotest.check iset_testable "full 3" (Iset.of_list [ 0; 1; 2 ]) (Iset.full 3);
  Alcotest.(check int) "mask roundtrip" 0b101
    (Iset.to_mask (Iset.of_list [ 0; 2 ]));
  Alcotest.check iset_testable "of_mask" (Iset.of_list [ 1; 3 ]) (Iset.of_mask 0b1010)

let iset_gen =
  QCheck.Gen.(map Iset.of_list (list_size (int_bound 8) (int_bound 20)))

let iset_arb = QCheck.make ~print:Iset.to_string iset_gen

let prop_iset_union_subset =
  qtest "iset: a and b are subsets of their union"
    (QCheck.pair iset_arb iset_arb)
    (fun (a, b) ->
      let u = Iset.union a b in
      Iset.subset a u && Iset.subset b u)

let prop_iset_fold_cardinal =
  qtest "iset: fold visits each member exactly once" iset_arb (fun s ->
      Iset.fold (fun _ n -> n + 1) s 0 = Iset.cardinal s)

(* --- Space ----------------------------------------------------------- *)

let test_space_enumerate () =
  let s = Space.ints ~lo:0 ~hi:1 ~arity:2 in
  let all = List.of_seq (Space.enumerate s) in
  Alcotest.(check int) "count" 4 (List.length all);
  Alcotest.(check int) "size agrees" (Space.size s) (List.length all);
  (* Lexicographic order, leftmost coordinate slowest. *)
  let expected = [ [ 0; 0 ]; [ 0; 1 ]; [ 1; 0 ]; [ 1; 1 ] ] in
  List.iter2
    (fun got want ->
      Alcotest.(check (list int)) "tuple" want
        (Array.to_list (Array.map Value.to_int got)))
    all expected

let test_space_persistent () =
  let s = Space.ints ~lo:0 ~hi:2 ~arity:2 in
  let seq = Space.enumerate s in
  Alcotest.(check int) "first pass" 9 (Seq.length seq);
  Alcotest.(check int) "second pass" 9 (Seq.length seq)

let test_space_restrict () =
  let s = Space.ints ~lo:0 ~hi:2 ~arity:2 in
  let s' = Space.restrict s 0 (Value.int 1) in
  Alcotest.(check int) "restricted size" 3 (Space.size s');
  Seq.iter
    (fun a -> Alcotest.(check int) "pinned" 1 (Value.to_int a.(0)))
    (Space.enumerate s')

let test_space_zero_arity () =
  let s = Space.make [||] in
  Alcotest.(check int) "one empty tuple" 1 (Seq.length (Space.enumerate s))

(* --- Policy ----------------------------------------------------------- *)

let test_policy_images () =
  let a = ints [ 1; 2; 3 ] in
  Alcotest.check value_testable "allow()" (Value.tuple [])
    (Policy.image Policy.allow_none a);
  Alcotest.check value_testable "allow(0,2)"
    (Value.tuple [ Value.int 1; Value.int 3 ])
    (Policy.image (Policy.allow [ 0; 2 ]) a);
  Alcotest.check value_testable "allow all"
    (Value.tuple [ Value.int 1; Value.int 2; Value.int 3 ])
    (Policy.image (Policy.allow_all ~arity:3) a)

let test_policy_equiv () =
  let p = Policy.allow [ 1 ] in
  Alcotest.(check bool) "same allowed coord" true
    (Policy.equiv p (ints [ 0; 7 ]) (ints [ 5; 7 ]));
  Alcotest.(check bool) "different allowed coord" false
    (Policy.equiv p (ints [ 0; 7 ]) (ints [ 0; 8 ]))

let test_policy_indices () =
  let p = Policy.allow [ 0; 2 ] in
  (match Policy.disallowed_indices p ~arity:4 with
  | Some d -> Alcotest.check iset_testable "complement" (Iset.of_list [ 1; 3 ]) d
  | None -> Alcotest.fail "expected Some");
  let f = Policy.filter ~name:"f" (fun _ -> Value.unit) in
  Alcotest.(check bool) "filter has no index set" true
    (Policy.allowed_indices f = None)

(* --- Mechanism basics ------------------------------------------------- *)

let test_program_as_own_mechanism () =
  let m = Mechanism.of_program q_linear in
  check_grants "passes outputs through" m [ 1; 2 ] 5;
  match Mechanism.check_protects m q_linear space2 with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "Q is a protection mechanism for itself"

let test_pull_the_plug () =
  let m = Mechanism.pull_the_plug 2 in
  check_denies "always denies" m [ 0; 0 ];
  check_denies "always denies" m [ 3; 3 ];
  (match Mechanism.check_protects m q_linear space2 with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "plug is a protection mechanism for anything");
  (* Trivially sound for every policy (Example 3). *)
  check_sound "plug sound for allow()" Policy.allow_none m space2;
  check_sound "plug sound for allow(0)" (Policy.allow [ 0 ]) m space2

let test_check_protects_catches_liars () =
  let liar =
    Mechanism.make ~name:"liar" ~arity:2 (fun _ ->
        { Mechanism.response = Mechanism.Granted (Value.int 42); steps = 1 })
  in
  match Mechanism.check_protects liar q_linear space2 with
  | Ok () -> Alcotest.fail "the liar is not a mechanism for q_linear"
  | Error c ->
      Alcotest.(check bool) "witness input is in space" true
        (Space.mem space2 c.Mechanism.input)

(* --- Soundness -------------------------------------------------------- *)

let test_soundness_examples () =
  (* Q ignoring x1 is sound for allow(0) but unsound for allow(1). *)
  let m = Mechanism.of_program q_first in
  check_sound "first sound for allow(0)" (Policy.allow [ 0 ]) m space2;
  check_unsound "first unsound for allow(1)" (Policy.allow [ 1 ]) m space2;
  (* The full program leaks under any proper restriction. *)
  let ml = Mechanism.of_program q_linear in
  check_unsound "linear unsound for allow(0)" (Policy.allow [ 0 ]) ml space2;
  check_sound "linear sound for allow(all)" (Policy.allow_all ~arity:2) ml space2

let test_soundness_witness_is_equivalent_pair () =
  match Soundness.check (Policy.allow [ 0 ]) (Mechanism.of_program q_linear) space2 with
  | Soundness.Sound -> Alcotest.fail "expected unsound"
  | Soundness.Unsound w ->
      Alcotest.(check bool) "same policy image" true
        (Policy.equiv (Policy.allow [ 0 ]) w.Soundness.input_a w.Soundness.input_b);
      Alcotest.(check bool) "observations differ" false
        (Program.Obs.equal w.Soundness.obs_a w.Soundness.obs_b)

(* A mechanism that leaks only through the CHOICE of violation notice
   (Example 4 / Denning–Rotenberg): denials must count as outputs. *)
let test_violation_notice_leak () =
  let m =
    Mechanism.make ~name:"notice-leak" ~arity:2 (fun a ->
        {
          Mechanism.response =
            Mechanism.Denied (if Value.to_int a.(1) = 0 then "n0" else "n1");
          steps = 1;
        })
  in
  check_unsound "distinct notices leak x1" (Policy.allow [ 0 ]) m space2;
  (* Identifying all notices (the completeness convention) hides it. *)
  let config = { Soundness.default with Soundness.identify_violations = true } in
  check_sound "identified notices do not" ~config (Policy.allow [ 0 ]) m space2

(* Timing: a mechanism constant in value but whose step count tracks x1. *)
let test_timing_soundness () =
  let m =
    Mechanism.make ~name:"slow" ~arity:2 (fun a ->
        {
          Mechanism.response = Mechanism.Granted (Value.int 0);
          steps = 1 + Value.to_int a.(1);
        })
  in
  let q0 = Program.of_fun ~name:"zero" ~arity:2 (fun _ -> Value.int 0) in
  ignore q0;
  check_sound "value view: sound" (Policy.allow [ 0 ]) m space2;
  check_unsound "timed view: unsound" ~config:Soundness.timed (Policy.allow [ 0 ])
    m space2

(* --- Completeness and join (Theorem 1) -------------------------------- *)

(* Two deliberately partial mechanisms for q_first under allow(0): one
   serves even x0, the other serves x0 < 2. Both sound; incomparable. *)
let serve_if name pred =
  Mechanism.make ~name ~arity:2 (fun a ->
      if pred (Value.to_int a.(0)) then
        { Mechanism.response = Mechanism.Granted a.(0); steps = 1 }
      else { Mechanism.response = Mechanism.Denied "\xce\x9b"; steps = 1 })

let m_even = serve_if "even" (fun x -> x mod 2 = 0)
let m_small = serve_if "small" (fun x -> x < 2)

let test_completeness_ratio () =
  (* x0 in 0..3: even serves {0,2}, small serves {0,1}. *)
  check_ratio "even serves half" ~expected:0.5 m_even ~q:q_first space2;
  check_ratio "small serves half" ~expected:0.5 m_small ~q:q_first space2;
  check_ratio "plug serves none" ~expected:0.0
    (Mechanism.pull_the_plug 2) ~q:q_first space2;
  check_ratio "Q serves all" ~expected:1.0
    (Mechanism.of_program q_first) ~q:q_first space2

let test_completeness_order () =
  Alcotest.(check bool) "incomparable" true
    (Completeness.compare m_even m_small ~q:q_first space2 = Completeness.Incomparable);
  Alcotest.(check bool) "Q more complete than even" true
    (Completeness.compare (Mechanism.of_program q_first) m_even ~q:q_first space2
    = Completeness.More_complete);
  Alcotest.(check bool) "plug less complete than small" true
    (Completeness.compare (Mechanism.pull_the_plug 2) m_small ~q:q_first space2
    = Completeness.Less_complete)

let test_join_theorem1 () =
  let j = Mechanism.join m_even m_small in
  (* Join of sound mechanisms is sound... *)
  check_sound "m_even sound" (Policy.allow [ 0 ]) m_even space2;
  check_sound "m_small sound" (Policy.allow [ 0 ]) m_small space2;
  check_sound "join sound" (Policy.allow [ 0 ]) j space2;
  (* ... and at least as complete as each component. *)
  (match Completeness.as_complete_as j m_even ~q:q_first space2 with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "join >= m_even");
  (match Completeness.as_complete_as j m_small ~q:q_first space2 with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "join >= m_small");
  (* Here strictly more: serves {0,1,2} of 4. *)
  check_ratio "join serves three quarters" ~expected:0.75 j ~q:q_first space2;
  (* Still a protection mechanism. *)
  match Mechanism.check_protects j q_first space2 with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "join is a protection mechanism"

let test_join_list () =
  let j = Mechanism.join_list ~arity:2 [ m_even; m_small ] in
  check_ratio "big join" ~expected:0.75 j ~q:q_first space2;
  let empty = Mechanism.join_list ~arity:2 [] in
  check_ratio "empty join = plug" ~expected:0.0 empty ~q:q_first space2

(* --- Maximal mechanism (Theorem 2) ------------------------------------ *)

let test_maximal_serves_constant_classes () =
  (* q_first under allow(0): Q constant on every class -> maximal = Q. *)
  let mx = Maximal.build (Policy.allow [ 0 ]) q_first space2 in
  check_ratio "maximal complete for independent Q" ~expected:1.0 mx ~q:q_first
    space2;
  check_sound "maximal sound" (Policy.allow [ 0 ]) mx space2;
  (* q_linear under allow(0): no class is constant -> maximal = plug. *)
  let mx' = Maximal.build (Policy.allow [ 0 ]) q_linear space2 in
  check_ratio "maximal empty for dependent Q" ~expected:0.0 mx' ~q:q_linear space2

let test_maximal_dominates_any_sound_mechanism () =
  (* Against a hand-rolled sound mechanism for q_first. *)
  let mx = Maximal.build (Policy.allow [ 0 ]) q_first space2 in
  List.iter
    (fun m ->
      match Completeness.as_complete_as mx m ~q:q_first space2 with
      | Ok () -> ()
      | Error a ->
          Alcotest.failf "maximal misses input (%s) served by %s"
            (String.concat "," (Array.to_list (Array.map Value.to_string a)))
            m.Mechanism.name)
    [ m_even; m_small; Mechanism.join m_even m_small; Mechanism.pull_the_plug 2 ]

let test_maximal_timed_is_stricter () =
  (* A program constant in value per class but with class-varying time. *)
  let q =
    Program.make ~name:"timed" ~arity:2 (fun a ->
        {
          Program.result = Program.Value (Value.int 0);
          steps = 1 + Value.to_int a.(1);
        })
  in
  let mx_untimed = Maximal.build (Policy.allow [ 0 ]) q space2 in
  let mx_timed = Maximal.build ~view:`Timed (Policy.allow [ 0 ]) q space2 in
  check_ratio "untimed maximal serves all" ~expected:1.0 mx_untimed ~q space2;
  check_ratio "timed maximal serves none" ~expected:0.0 mx_timed ~q space2

let test_granted_classes () =
  let served, total = Maximal.granted_classes (Policy.allow [ 0 ]) q_first space2 in
  Alcotest.(check (pair int int)) "all classes served" (4, 4) (served, total);
  let served', total' = Maximal.granted_classes (Policy.allow [ 0 ]) q_linear space2 in
  Alcotest.(check (pair int int)) "no class served" (0, 4) (served', total')

(* --- Edge cases --------------------------------------------------------- *)

let test_iset_bounds () =
  (match Iset.singleton 99 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "indices beyond the mask width must be rejected");
  match Iset.of_mask (-1) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative masks must be rejected"

let test_space_bad_bounds () =
  (match Space.ints ~lo:3 ~hi:1 ~arity:1 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "hi < lo must be rejected");
  match Space.make [| [||] |] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "empty domains must be rejected"

let test_join_arity_mismatch () =
  let m1 = Mechanism.pull_the_plug 2 and m2 = Mechanism.pull_the_plug 3 in
  match Mechanism.join m1 m2 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "joining mechanisms of different arity must fail"

(* Soundness against a content-dependent (filter) policy: the first input
   gates whether the second is revealed. *)
let test_soundness_filter_policy () =
  let gate =
    Policy.filter ~name:"gate" (fun a ->
        if Value.to_int a.(0) = 0 then Value.pair a.(0) a.(1)
        else Value.pair a.(0) (Value.str "#"))
  in
  let q_gated =
    Program.of_fun ~name:"gated" ~arity:2 (fun a ->
        if Value.to_int a.(0) = 0 then a.(1) else Value.int (-1))
  in
  check_sound "gated program respects its gate" gate
    (Mechanism.of_program q_gated) space2;
  check_unsound "ungated program does not" gate
    (Mechanism.of_program (Program.of_fun ~name:"leak" ~arity:2 (fun a -> a.(1))))
    space2;
  (* The maximal mechanism handles filter policies too. *)
  let mx = Maximal.build gate q_linear space2 in
  check_sound "maximal sound for the filter" gate mx space2

(* Property: the maximal mechanism built for random finite functions is
   always sound and always at least as complete as the program-as-mechanism
   when that happens to be sound. *)
let random_table_program rng =
  (* A random function {0..2}^2 -> {0..1} presented as a program. *)
  let table = Array.init 9 (fun _ -> Random.State.int rng 2) in
  Program.of_fun ~name:"table" ~arity:2 (fun a ->
      Value.int table.((3 * Value.to_int a.(0)) + Value.to_int a.(1)))

let prop_maximal_sound_random =
  qtest ~count:60 "maximal is sound for random finite programs"
    (QCheck.make QCheck.Gen.int)
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let q = random_table_program rng in
      let space = Space.ints ~lo:0 ~hi:2 ~arity:2 in
      let policy = Policy.allow [ Random.State.int rng 2 ] in
      let mx = Maximal.build policy q space in
      Soundness.check policy mx space = Soundness.Sound
      && Mechanism.check_protects mx q space = Ok ())

let () =
  Alcotest.run "secpol-core"
    [
      ( "iset",
        [
          Alcotest.test_case "basics" `Quick test_iset_basics;
          Alcotest.test_case "full-and-masks" `Quick test_iset_full;
          prop_iset_union_subset;
          prop_iset_fold_cardinal;
        ] );
      ( "space",
        [
          Alcotest.test_case "enumerate" `Quick test_space_enumerate;
          Alcotest.test_case "persistent" `Quick test_space_persistent;
          Alcotest.test_case "restrict" `Quick test_space_restrict;
          Alcotest.test_case "zero-arity" `Quick test_space_zero_arity;
        ] );
      ( "policy",
        [
          Alcotest.test_case "images" `Quick test_policy_images;
          Alcotest.test_case "equiv" `Quick test_policy_equiv;
          Alcotest.test_case "indices" `Quick test_policy_indices;
        ] );
      ( "mechanism",
        [
          Alcotest.test_case "program-as-own" `Quick test_program_as_own_mechanism;
          Alcotest.test_case "pull-the-plug" `Quick test_pull_the_plug;
          Alcotest.test_case "check-protects" `Quick test_check_protects_catches_liars;
        ] );
      ( "soundness",
        [
          Alcotest.test_case "examples" `Quick test_soundness_examples;
          Alcotest.test_case "witness" `Quick test_soundness_witness_is_equivalent_pair;
          Alcotest.test_case "notice-leak" `Quick test_violation_notice_leak;
          Alcotest.test_case "timing" `Quick test_timing_soundness;
        ] );
      ( "completeness",
        [
          Alcotest.test_case "ratio" `Quick test_completeness_ratio;
          Alcotest.test_case "order" `Quick test_completeness_order;
          Alcotest.test_case "join-theorem1" `Quick test_join_theorem1;
          Alcotest.test_case "join-list" `Quick test_join_list;
        ] );
      ( "maximal",
        [
          Alcotest.test_case "constant-classes" `Quick test_maximal_serves_constant_classes;
          Alcotest.test_case "dominates" `Quick test_maximal_dominates_any_sound_mechanism;
          Alcotest.test_case "timed-stricter" `Quick test_maximal_timed_is_stricter;
          Alcotest.test_case "granted-classes" `Quick test_granted_classes;
          prop_maximal_sound_random;
        ] );
      ( "edge-cases",
        [
          Alcotest.test_case "iset-bounds" `Quick test_iset_bounds;
          Alcotest.test_case "space-bad-bounds" `Quick test_space_bad_bounds;
          Alcotest.test_case "join-arity" `Quick test_join_arity_mismatch;
          Alcotest.test_case "filter-policy" `Quick test_soundness_filter_policy;
        ] );
    ]
