(* Concrete syntax: lexer, parser, printer, and their round-trip. *)

open Util
module Var = Secpol_flowgraph.Var
module Expr = Secpol_flowgraph.Expr
module Ast = Secpol_flowgraph.Ast
module Interp = Secpol_flowgraph.Interp
module Token = Secpol_lang.Token
module Lexer = Secpol_lang.Lexer
module Source = Secpol_lang.Source
module Generator = Secpol_corpus.Generator
module Paper = Secpol_corpus.Paper_programs

let parse_ok src =
  match Source.parse src with
  | Ok p -> p
  | Error m -> Alcotest.failf "parse failed: %s\n%s" m src

(* --- lexer -------------------------------------------------------------- *)

let test_lexer_tokens () =
  let toks =
    List.map
      (fun t -> t.Token.token)
      (Lexer.tokenize "x0 := r12 + 3; # comment\n y := (x1 ? 1 : 2)")
  in
  Alcotest.(check int) "token count" 16 (List.length toks);
  Alcotest.(check bool) "starts with x0 :=" true
    (match toks with Token.INPUT 0 :: Token.ASSIGN :: _ -> true | _ -> false);
  Alcotest.(check bool) "comment skipped, y next" true
    (List.exists (fun t -> t = Token.OUT) toks)

let test_lexer_positions () =
  match Lexer.tokenize "x0 :=\n  @" with
  | exception Lexer.Error { line; col; _ } ->
      Alcotest.(check int) "line" 2 line;
      Alcotest.(check int) "col" 3 col
  | _ -> Alcotest.fail "expected a lexer error"

let test_lexer_operators () =
  let ops = "<= >= <> < > = := : | & ~" in
  let toks = List.map (fun t -> t.Token.token) (Lexer.tokenize ops) in
  Alcotest.(check bool) "all operators" true
    (toks
    = [
        Token.LE; Token.GE; Token.NE; Token.LT; Token.GT; Token.EQ;
        Token.ASSIGN; Token.COLON; Token.BAR; Token.AMP; Token.TILDE;
        Token.EOF;
      ])

(* --- parser ------------------------------------------------------------- *)

let test_parse_simple_program () =
  let p =
    parse_ok
      "program euclid(x0, x1)\n\
       r0 := x0 + 1;\n\
       r1 := x1 + 1;\n\
       while r0 <> r1 do\n\
       if r0 > r1 then r0 := r0 - r1 else r1 := r1 - r0 end\n\
       done;\n\
       y := r0"
  in
  Alcotest.(check string) "name" "euclid" p.Ast.name;
  Alcotest.(check int) "arity" 2 p.Ast.arity;
  (* gcd(4, 6) = 2 *)
  match (Interp.run_ast p (ints [ 3; 5 ])).Program.result with
  | Program.Value v -> Alcotest.check value_testable "runs" (Value.int 2) v
  | _ -> Alcotest.fail "expected a value"

let test_parse_precedence () =
  let p = parse_ok "program prec(x0)\ny := 1 + x0 * 2 - 3" in
  (* 1 + (5*2) - 3 = 8 *)
  match (Interp.run_ast p (ints [ 5 ])).Program.result with
  | Program.Value v -> Alcotest.check value_testable "precedence" (Value.int 8) v
  | _ -> Alcotest.fail "expected a value"

let test_parse_select_vs_paren () =
  (* Both a parenthesized arithmetic expression and a select must parse. *)
  let p1 = parse_ok "program a(x0)\ny := (x0 + 1) * 2" in
  let p2 = parse_ok "program b(x0)\ny := (x0 = 0 ? 10 : 20)" in
  let run p v =
    match (Interp.run_ast p (ints [ v ])).Program.result with
    | Program.Value (Value.Int n) -> n
    | _ -> Alcotest.fail "expected a value"
  in
  Alcotest.(check int) "paren" 8 (run p1 3);
  Alcotest.(check int) "select true" 10 (run p2 0);
  Alcotest.(check int) "select false" 20 (run p2 1)

let test_parse_pred_forms () =
  let p =
    parse_ok
      "program preds(x0, x1)\n\
       if (x0 = 0 or x0 = 1) and not (x1 > 2) then y := 1 else y := 0 end"
  in
  let run a b =
    match (Interp.run_ast p (ints [ a; b ])).Program.result with
    | Program.Value (Value.Int n) -> n
    | _ -> -1
  in
  Alcotest.(check int) "true case" 1 (run 1 2);
  Alcotest.(check int) "false by x0" 0 (run 2 0);
  Alcotest.(check int) "false by x1" 0 (run 0 3)

let test_parse_errors () =
  let expect_error src fragment =
    match Source.parse src with
    | Ok _ -> Alcotest.failf "expected a parse error for %s" src
    | Error m ->
        if not (String.length m > 0) then Alcotest.fail "empty error";
        let contains s sub =
          let n = String.length sub in
          let rec go i =
            i + n <= String.length s && (String.sub s i n = sub || go (i + 1))
          in
          go 0
        in
        Alcotest.(check bool)
          (Printf.sprintf "error %S mentions %S" m fragment)
          true (contains m fragment)
  in
  expect_error "program p(x0) y := " "expression";
  expect_error "program p(x0) if x0 = 0 then skip" "end";
  expect_error "program p(x1) y := 1" "expected x0";
  expect_error "program p(x0) y := x5" "out-of-range"

let test_parse_out_of_range_input () =
  match Source.parse "program p(x0)\ny := x3" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "inputs beyond the declared arity must be rejected"

let test_hyphenated_names () =
  let p = parse_ok "program loop-then-done-2(x0)\ny := x0" in
  Alcotest.(check string) "name joined" "loop-then-done-2" p.Ast.name

let test_policy_hint () =
  let hint src =
    Option.map Secpol_core.Policy.name (Source.policy_hint src)
  in
  Alcotest.(check (option string)) "allow list" (Some "allow{0,2}")
    (hint "# policy: 0,2\nprogram p(x0) y := 1");
  Alcotest.(check (option string)) "allow nothing" (Some "allow{}")
    (hint "  # policy: -  \nprogram p(x0) y := 1");
  Alcotest.(check (option string)) "absent" None (hint "program p(x0) y := 1");
  Alcotest.(check (option string)) "malformed ignored" None
    (hint "# policy: banana\nprogram p(x0) y := 1");
  (* An ordinary comment that merely mentions the word is not a hint. *)
  Alcotest.(check (option string)) "prose comment" None
    (hint "# the policy here is strict\nprogram p(x0) y := 1")

(* --- round trips --------------------------------------------------------- *)

let test_corpus_roundtrip () =
  List.iter
    (fun (e : Paper.entry) ->
      let src = Source.to_source e.Paper.prog in
      let p = parse_ok src in
      Alcotest.(check string)
        (e.Paper.name ^ " stable after one round")
        src (Source.to_source p))
    Paper.all

let prop_generated_roundtrip_stable =
  let params = Generator.default in
  qtest ~count:300 "printer/parser round trip is stable and meaning-preserving"
    (Generator.arbitrary params)
    (fun prog ->
      let src = Source.to_source prog in
      match Source.parse src with
      | Error _ -> false
      | Ok p ->
          Source.to_source p = src
          && Seq.for_all
               (fun a ->
                 let r1 = (Interp.run_ast prog a).Program.result in
                 let r2 = (Interp.run_ast p a).Program.result in
                 match (r1, r2) with
                 | Program.Value v1, Program.Value v2 -> Value.equal v1 v2
                 | Program.Diverged, Program.Diverged -> true
                 | Program.Fault _, Program.Fault _ -> true
                 | _ -> false)
               (Space.enumerate (Generator.space_for params)))

(* --- robustness ------------------------------------------------------------ *)

(* The parser must never escape its error type, whatever bytes arrive. *)
let prop_parser_never_crashes_on_noise =
  qtest ~count:500 "parser is total on arbitrary strings"
    (QCheck.make ~print:(fun s -> String.escaped s) QCheck.Gen.(string_size (int_bound 60)))
    (fun s ->
      match Source.parse s with Ok _ -> true | Error _ -> true)

(* ... including near-miss strings assembled from real syntax fragments. *)
let prop_parser_never_crashes_on_fragments =
  let fragments =
    [| "program"; "p("; "x0"; ", x1)"; "if"; "then"; "else"; "end"; "while";
       "do"; "done"; "y :="; "r0 :="; "+ 1"; "(x0 ? 1 : 2)"; "= 0"; "and";
       "not"; ";"; "#c\n"; "<>"; ":"; "("; ")" |]
  in
  qtest ~count:500 "parser is total on fragment soup"
    (QCheck.make
       ~print:(fun l -> String.concat " " l)
       QCheck.Gen.(list_size (int_bound 12) (oneofl (Array.to_list fragments))))
    (fun pieces ->
      match Source.parse (String.concat " " pieces) with
      | Ok _ -> true
      | Error _ -> true)

let () =
  Alcotest.run "secpol-lang"
    [
      ( "lexer",
        [
          Alcotest.test_case "tokens" `Quick test_lexer_tokens;
          Alcotest.test_case "positions" `Quick test_lexer_positions;
          Alcotest.test_case "operators" `Quick test_lexer_operators;
        ] );
      ( "parser",
        [
          Alcotest.test_case "simple-program" `Quick test_parse_simple_program;
          Alcotest.test_case "precedence" `Quick test_parse_precedence;
          Alcotest.test_case "select-vs-paren" `Quick test_parse_select_vs_paren;
          Alcotest.test_case "pred-forms" `Quick test_parse_pred_forms;
          Alcotest.test_case "errors" `Quick test_parse_errors;
          Alcotest.test_case "out-of-range" `Quick test_parse_out_of_range_input;
          Alcotest.test_case "hyphenated-names" `Quick test_hyphenated_names;
          Alcotest.test_case "policy-hint" `Quick test_policy_hint;
        ] );
      ( "roundtrip",
        [
          Alcotest.test_case "corpus" `Quick test_corpus_roundtrip;
          prop_generated_roundtrip_stable;
        ] );
      ( "robustness",
        [
          prop_parser_never_crashes_on_noise;
          prop_parser_never_crashes_on_fragments;
        ] );
    ]
