(* Section 2's covert channels: the one-way tape, the logon program, and
   the password work-factor collapse. *)

open Util
module Tape = Secpol_channels.Tape
module Logon = Secpol_channels.Logon
module Leakage = Secpol_probe.Leakage

(* --- tape --------------------------------------------------------------- *)

(* Two blocks; block 0 has length 1 or 2, block 1 is a single letter. The
   policy allows only block 1. *)
let tape_space = Tape.block_space ~k:2 ~lengths:[ 1; 2 ] ~alphabet:[ 0; 1 ]
let tape_policy = Policy.allow [ 1 ]

let test_tape_reads_the_right_block () =
  let q = Tape.read_block Tape.Walk ~k:2 ~j:1 in
  let z0 = Value.tuple [ Value.int 0; Value.int 1 ] in
  let z1 = Value.tuple [ Value.int 1 ] in
  match (Program.run q [| z0; z1 |]).Program.result with
  | Program.Value v -> Alcotest.check value_testable "block 1" z1 v
  | _ -> Alcotest.fail "expected a value"

let test_walk_time_encodes_earlier_lengths () =
  let q = Tape.read_block Tape.Walk ~k:2 ~j:1 in
  let z1 = Value.tuple [ Value.int 1 ] in
  let short = [| Value.tuple [ Value.int 0 ]; z1 |] in
  let long = [| Value.tuple [ Value.int 0; Value.int 0 ]; z1 |] in
  let t_short = (Program.run q short).Program.steps in
  let t_long = (Program.run q long).Program.steps in
  Alcotest.(check bool) "crossing a longer z0 takes longer" true (t_long > t_short)

let test_tape_soundness_matrix () =
  (* Value-only view: all three disciplines are sound (the output is z1). *)
  List.iter
    (fun motion ->
      let q = Tape.read_block motion ~k:2 ~j:1 in
      check_sound
        (Printf.sprintf "%s sound untimed" (Tape.motion_name motion))
        tape_policy (Mechanism.of_program q) tape_space)
    [ Tape.Walk; Tape.Tab_linear; Tape.Tab_constant ];
  (* Timed view: walking and the naive tab leak |z0|; constant tab does not. *)
  check_unsound "walk leaks timed" ~config:Soundness.timed tape_policy
    (Mechanism.of_program (Tape.read_block Tape.Walk ~k:2 ~j:1))
    tape_space;
  check_unsound "naive tab leaks timed" ~config:Soundness.timed tape_policy
    (Mechanism.of_program (Tape.read_block Tape.Tab_linear ~k:2 ~j:1))
    tape_space;
  check_sound "constant tab sound timed" ~config:Soundness.timed tape_policy
    (Mechanism.of_program (Tape.read_block Tape.Tab_constant ~k:2 ~j:1))
    tape_space

let test_tape_leak_quantified () =
  let leak motion =
    (Leakage.of_program ~view:`Timed tape_policy
       (Tape.read_block motion ~k:2 ~j:1)
       tape_space)
      .Leakage.avg_bits
  in
  Alcotest.(check bool) "walk leaks bits" true (leak Tape.Walk > 0.5);
  Alcotest.(check (float 1e-9)) "constant tab leaks nothing" 0.0
    (leak Tape.Tab_constant)

(* --- logon --------------------------------------------------------------- *)

let logon_space =
  Logon.logon_space ~uids:[ 1; 2 ] ~pwds:[ 7; 8 ]
    ~table_pairs:[ [ (1, 7) ]; [ (1, 8) ]; [ (2, 7) ] ]

let test_logon_behaviour () =
  let run uid table pwd =
    match
      (Program.run Logon.logon
         [|
           Value.int uid;
           Value.tuple
             (List.map (fun (u, p) -> Value.tuple [ Value.int u; Value.int p ]) table);
           Value.int pwd;
         |])
        .Program.result
    with
    | Program.Value (Value.Bool b) -> b
    | _ -> Alcotest.fail "expected a boolean"
  in
  Alcotest.(check bool) "right password" true (run 1 [ (1, 7) ] 7);
  Alcotest.(check bool) "wrong password" false (run 1 [ (1, 7) ] 8);
  Alcotest.(check bool) "unknown user" false (run 2 [ (1, 7) ] 7)

let test_logon_unsound_but_small_leak () =
  let m = Mechanism.of_program Logon.logon in
  check_unsound "logon is not sound for allow(1,3)" Logon.logon_policy m
    logon_space;
  let leak = Leakage.of_program Logon.logon_policy Logon.logon logon_space in
  Alcotest.(check bool) "but the leak is small (< 1 bit/query)" true
    (leak.Leakage.avg_bits < 1.0);
  Alcotest.(check bool) "and strictly positive" true (leak.Leakage.avg_bits > 0.0)

(* --- password guessing ---------------------------------------------------- *)

let test_attack_oracles () =
  let o = Logon.Attack.make ~n:4 ~k:3 ~secret:[| 2; 0; 3 |] in
  Alcotest.(check bool) "whole: wrong" false
    (Logon.Attack.whole_compare o [| 2; 0; 2 |]);
  Alcotest.(check bool) "whole: right" true
    (Logon.Attack.whole_compare o [| 2; 0; 3 |]);
  Alcotest.(check int) "prefix 0" 0 (Logon.Attack.paged_compare o [| 1; 0; 3 |]);
  Alcotest.(check int) "prefix 2" 2 (Logon.Attack.paged_compare o [| 2; 0; 0 |]);
  Alcotest.(check int) "prefix k" 3 (Logon.Attack.paged_compare o [| 2; 0; 3 |])

let test_work_factor_worst_cases () =
  (* The worst secret for lexicographic search is the all-(n-1) password. *)
  let n = 4 and k = 3 in
  let worst = Array.make k (n - 1) in
  let o = Logon.Attack.make ~n ~k ~secret:worst in
  Alcotest.(check int) "brute force worst case = n^k"
    (int_of_float (float_of_int n ** float_of_int k))
    (Logon.Attack.brute_force o);
  Alcotest.(check int) "prefix walk worst case = n*k" (n * k)
    (Logon.Attack.prefix_walk o)

let test_work_factor_dominance () =
  (* The page-observing attacker is bounded by n*k on every secret, and on
     average far cheaper than blind search (n^k / 2-ish). *)
  let n = 3 and k = 3 in
  let rng = Random.State.make [| 42 |] in
  let trials = 50 in
  let bf_total = ref 0 and pw_total = ref 0 in
  for _ = 1 to trials do
    let secret = Logon.Attack.random_secret rng ~n ~k in
    let o = Logon.Attack.make ~n ~k ~secret in
    let pw = Logon.Attack.prefix_walk o in
    Alcotest.(check bool) "prefix <= n*k" true (pw <= n * k);
    bf_total := !bf_total + Logon.Attack.brute_force o;
    pw_total := !pw_total + pw
  done;
  Alcotest.(check bool) "page channel collapses the average work factor" true
    (!bf_total > !pw_total)

let prop_prefix_walk_always_succeeds =
  qtest ~count:200 "prefix walk finds every secret within n*k probes"
    (QCheck.make
       ~print:(fun (n, k, seed) -> Printf.sprintf "n=%d k=%d seed=%d" n k seed)
       QCheck.Gen.(triple (int_range 2 5) (int_range 1 5) int))
    (fun (n, k, seed) ->
      let rng = Random.State.make [| seed |] in
      let secret = Logon.Attack.random_secret rng ~n ~k in
      let o = Logon.Attack.make ~n ~k ~secret in
      Logon.Attack.prefix_walk o <= n * k)

(* --- page traffic ---------------------------------------------------------- *)

module Paged = Secpol_channels.Paged

let pm = Paged.make ~nvars:5 ~page_size:2

let test_paged_fault_arithmetic () =
  Alcotest.(check int) "empty trace" 0 (Paged.faults pm []);
  Alcotest.(check int) "same page reuse" 1 (Paged.faults pm [ 0; 1; 0; 1 ]);
  Alcotest.(check int) "sequential scan = pages touched" 3
    (Paged.faults pm [ 0; 1; 2; 3; 4 ]);
  Alcotest.(check int) "ping-pong faults every access" 4
    (Paged.faults pm [ 0; 2; 0; 2 ]);
  Alcotest.check_raises "unknown variable"
    (Invalid_argument "Paged.page_of: no such variable") (fun () ->
      ignore (Paged.faults pm [ 9 ]))

let test_paged_channel_soundness () =
  let q = Paged.scan_sorted_by_secret pm ~key:0 in
  let policy = Policy.allow [ 1; 2; 3; 4 ] in
  (* x0 is the secret key *)
  let space = Space.ints ~lo:0 ~hi:1 ~arity:5 in
  check_sound "values constant: sound with faults hidden" policy
    (Mechanism.of_program q) space;
  check_unsound "fault counts differ: unsound with page traffic observable"
    ~config:Soundness.timed policy (Mechanism.of_program q) space;
  let leak = Leakage.of_program ~view:`Timed policy q space in
  Alcotest.(check (float 1e-9)) "exactly the key bit leaks" 1.0
    leak.Leakage.avg_bits

let () =
  Alcotest.run "secpol-channels"
    [
      ( "tape",
        [
          Alcotest.test_case "reads-right-block" `Quick test_tape_reads_the_right_block;
          Alcotest.test_case "walk-time" `Quick test_walk_time_encodes_earlier_lengths;
          Alcotest.test_case "soundness-matrix" `Quick test_tape_soundness_matrix;
          Alcotest.test_case "leak-quantified" `Quick test_tape_leak_quantified;
        ] );
      ( "logon",
        [
          Alcotest.test_case "behaviour" `Quick test_logon_behaviour;
          Alcotest.test_case "unsound-small-leak" `Quick test_logon_unsound_but_small_leak;
        ] );
      ( "paged",
        [
          Alcotest.test_case "fault-arithmetic" `Quick test_paged_fault_arithmetic;
          Alcotest.test_case "channel-soundness" `Quick test_paged_channel_soundness;
        ] );
      ( "attack",
        [
          Alcotest.test_case "oracles" `Quick test_attack_oracles;
          Alcotest.test_case "worst-cases" `Quick test_work_factor_worst_cases;
          Alcotest.test_case "dominance" `Quick test_work_factor_dominance;
          prop_prefix_walk_always_succeeds;
        ] );
    ]
