(* The measuring instruments themselves: partition shapes, exact entropy
   arithmetic, sampled probing statistics, and the table renderer. *)

open Util
module Partition = Secpol_probe.Partition
module Leakage = Secpol_probe.Leakage
module Sampled = Secpol_probe.Sampled
module Tabulate = Secpol_probe.Tabulate

let space2 = Space.ints ~lo:0 ~hi:3 ~arity:2

(* --- partition ----------------------------------------------------------- *)

let test_partition_allow () =
  let p = Partition.compute (Policy.allow [ 0 ]) space2 in
  Alcotest.(check int) "points" 16 p.Partition.points;
  Alcotest.(check int) "one class per x0 value" 4 (Partition.class_count p);
  Alcotest.(check int) "uniform class size" 4 (Partition.largest_class p);
  (* Members of one class share their allowed coordinate. *)
  List.iter
    (fun (_, members) ->
      match members with
      | [] -> Alcotest.fail "empty class"
      | first :: rest ->
          List.iter
            (fun a ->
              Alcotest.check value_testable "same x0" first.(0) a.(0))
            rest)
    p.Partition.classes

let test_partition_extremes () =
  let everything = Partition.compute (Policy.allow_all ~arity:2) space2 in
  Alcotest.(check int) "allow(all): singleton classes" 16
    (Partition.class_count everything);
  let nothing = Partition.compute Policy.allow_none space2 in
  Alcotest.(check int) "allow(): one class" 1 (Partition.class_count nothing);
  Alcotest.(check int) "of full size" 16 (Partition.largest_class nothing)

(* --- leakage arithmetic --------------------------------------------------- *)

let leak_of f = Leakage.of_channel Policy.allow_none (fun a -> Program.Obs.Output (f a)) space2

let test_leakage_exact_values () =
  (* Constant observable: zero bits. *)
  let r = leak_of (fun _ -> Value.int 7) in
  Alcotest.(check (float 1e-9)) "constant leaks nothing" 0.0 r.Leakage.avg_bits;
  Alcotest.(check bool) "tight" true (Leakage.is_tight r);
  (* The identity on x0 (4 equally likely values): exactly 2 bits. *)
  let r = leak_of (fun a -> a.(0)) in
  Alcotest.(check (float 1e-9)) "uniform quaternary = 2 bits" 2.0 r.Leakage.avg_bits;
  (* A boolean of x0: 1 bit when balanced. *)
  let r = leak_of (fun a -> Value.bool (Value.to_int a.(0) < 2)) in
  Alcotest.(check (float 1e-9)) "balanced boolean = 1 bit" 1.0 r.Leakage.avg_bits;
  (* Unbalanced boolean: H(1/4) = 0.811... bits. *)
  let r = leak_of (fun a -> Value.bool (Value.to_int a.(0) = 0)) in
  let h p = -.(p *. Float.log p /. Float.log 2.) -. ((1. -. p) *. Float.log (1. -. p) /. Float.log 2.) in
  Alcotest.(check (float 1e-9)) "H(1/4)" (h 0.25) r.Leakage.avg_bits

let test_leakage_max_vs_avg () =
  (* Leak x1 only when x0 = 0: avg = 2/4 * ... wait per-class; policy
     allow(0) gives one class per x0; only the x0=0 class leaks. *)
  let policy = Policy.allow [ 0 ] in
  let r =
    Leakage.of_channel policy
      (fun a ->
        Program.Obs.Output
          (if Value.to_int a.(0) = 0 then a.(1) else Value.int 0))
      space2
  in
  Alcotest.(check (float 1e-9)) "only one class leaks, fully" 2.0 r.Leakage.max_bits;
  Alcotest.(check (float 1e-9)) "a quarter of the mass" 0.5 r.Leakage.avg_bits;
  Alcotest.(check int) "leaky class count" 1 r.Leakage.leaky_classes

(* --- sampled probing ------------------------------------------------------ *)

let test_sampled_respects_class_structure () =
  (* The resampled partner must stay in the same policy class; a sound
     mechanism therefore never trips the prober, whatever the seed. *)
  let m =
    Mechanism.make ~name:"x0-echo" ~arity:2 (fun a ->
        { Mechanism.response = Mechanism.Granted a.(0); steps = 1 })
  in
  List.iter
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      match Sampled.check ~rng ~trials:100 (Policy.allow [ 0 ]) m space2 with
      | Sampled.Probably_sound 100 -> ()
      | Sampled.Probably_sound n -> Alcotest.failf "stopped at %d" n
      | Sampled.Unsound _ -> Alcotest.fail "false positive")
    [ 1; 2; 3; 42 ]

(* --- cross-instrument consistency ------------------------------------------ *)

(* Two independent meters must agree: the soundness checker's verdict and
   the leakage estimator's zero-bits predicate are both "constant per
   policy class", computed by different code. *)
let prop_soundness_iff_zero_leak =
  let module Generator = Secpol_corpus.Generator in
  let module Interp = Secpol_flowgraph.Interp in
  let params = Generator.default in
  qtest ~count:200 "sound <=> leaks 0.000 bits, on random programs"
    (Generator.arbitrary params)
    (fun prog ->
      let q = Interp.ast_program prog in
      let space = Generator.space_for params in
      List.for_all
        (fun policy ->
          List.for_all
            (fun view ->
              let sound =
                Soundness.is_sound
                  ~config:{ Soundness.view; identify_violations = false }
                  policy (Mechanism.of_program q) space
              in
              let tight = Leakage.is_tight (Leakage.of_program ~view policy q space) in
              sound = tight)
            [ `Value; `Timed ])
        [ Policy.allow_none; Policy.allow [ 0 ]; Policy.allow [ 0; 1 ] ])

(* --- tabulate -------------------------------------------------------------- *)

let test_tabulate_rendering () =
  let t = Tabulate.create ~header:[ "name"; "value" ] in
  Tabulate.add_row t [ "short"; "1" ];
  Tabulate.add_row t [ "much-longer-name"; "22" ];
  let rendered = Tabulate.render t in
  let lines = String.split_on_char '\n' rendered in
  (match lines with
  | header :: rule :: _ ->
      Alcotest.(check int) "rule matches header width" (String.length header)
        (String.length rule)
  | _ -> Alcotest.fail "expected header and rule");
  (* All rows padded to equal width. *)
  let widths =
    List.filter_map
      (fun l -> if l = "" then None else Some (String.length l))
      lines
  in
  (match widths with
  | w :: rest -> List.iter (fun w' -> Alcotest.(check int) "width" w w') rest
  | [] -> Alcotest.fail "no lines")

let test_tabulate_rejects_ragged_rows () =
  let t = Tabulate.create ~header:[ "a"; "b" ] in
  match Tabulate.add_row t [ "only-one" ] with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "ragged row accepted"

let () =
  Alcotest.run "secpol-probe"
    [
      ( "partition",
        [
          Alcotest.test_case "allow" `Quick test_partition_allow;
          Alcotest.test_case "extremes" `Quick test_partition_extremes;
        ] );
      ( "leakage",
        [
          Alcotest.test_case "exact-values" `Quick test_leakage_exact_values;
          Alcotest.test_case "max-vs-avg" `Quick test_leakage_max_vs_avg;
        ] );
      ( "sampled",
        [ Alcotest.test_case "class-structure" `Quick test_sampled_respects_class_structure ] );
      ("consistency", [ prop_soundness_iff_zero_leak ]);
      ( "tabulate",
        [
          Alcotest.test_case "rendering" `Quick test_tabulate_rendering;
          Alcotest.test_case "ragged-rows" `Quick test_tabulate_rejects_ragged_rows;
        ] );
    ]
