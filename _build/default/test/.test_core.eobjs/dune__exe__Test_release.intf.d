test/test_release.mli:
