test/test_transform.ml: Alcotest Array Completeness Fun List Mechanism Policy Program Secpol_core Secpol_corpus Secpol_flowgraph Secpol_taint Secpol_transform Seq Soundness Space String Util
