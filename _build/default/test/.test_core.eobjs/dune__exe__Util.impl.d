test/util.ml: Alcotest Array Float List QCheck QCheck_alcotest Secpol_core
