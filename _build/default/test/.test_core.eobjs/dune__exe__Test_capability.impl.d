test/test_capability.ml: Alcotest Array Completeness List Maximal Mechanism Policy Secpol_capability Secpol_probe Util Value
