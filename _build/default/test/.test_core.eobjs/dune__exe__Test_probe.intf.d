test/test_probe.mli:
