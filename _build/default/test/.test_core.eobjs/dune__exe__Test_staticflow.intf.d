test/test_staticflow.mli:
