test/test_taint.ml: Alcotest Array Completeness List Maximal Mechanism Policy Printf Program QCheck Secpol_core Secpol_corpus Secpol_flowgraph Secpol_taint Seq Soundness Space String Util Value
