test/test_probe.ml: Alcotest Array Float List Mechanism Policy Program Random Secpol_corpus Secpol_flowgraph Secpol_probe Soundness Space String Util Value
