test/test_flowgraph.mli:
