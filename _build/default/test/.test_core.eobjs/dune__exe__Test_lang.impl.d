test/test_lang.ml: Alcotest Array List Option Printf Program QCheck Secpol_core Secpol_corpus Secpol_flowgraph Secpol_lang Seq Space String Util Value
