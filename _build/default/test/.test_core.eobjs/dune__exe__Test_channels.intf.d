test/test_channels.mli:
