test/test_minsky.mli:
