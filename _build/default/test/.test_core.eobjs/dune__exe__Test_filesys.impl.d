test/test_filesys.ml: Alcotest Mechanism Policy Program Secpol_filesys Secpol_probe Util Value
