test/test_channels.ml: Alcotest Array List Mechanism Policy Printf Program QCheck Random Secpol_channels Secpol_probe Soundness Space Util Value
