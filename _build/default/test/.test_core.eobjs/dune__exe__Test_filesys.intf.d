test/test_filesys.mli:
