test/test_flowgraph.ml: Alcotest Array Format List Printf Program QCheck Random Secpol_corpus Secpol_flowgraph Seq Space String Util Value
