test/test_core.ml: Alcotest Array Completeness List Maximal Mechanism Policy Program QCheck Random Secpol_core Seq Soundness Space String Util Value
