test/test_minsky.ml: Alcotest Array Mechanism Policy Program Secpol_minsky Soundness Space Util Value
