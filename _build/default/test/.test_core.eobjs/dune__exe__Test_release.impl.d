test/test_release.ml: Alcotest List Mechanism Policy Secpol Secpol_corpus Secpol_flowgraph Soundness Util Value
