test/test_capability.mli:
