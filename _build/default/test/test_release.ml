(* The packaged release decision: every route taken, every guarantee
   re-verified from outside. *)

open Util
module Release = Secpol.Release
module Paper = Secpol_corpus.Paper_programs
module Generator = Secpol_corpus.Generator
module Interp = Secpol_flowgraph.Interp

let plan (e : Paper.entry) =
  Release.plan ~policy:e.Paper.policy ~space:e.Paper.space e.Paper.prog

let check_route msg expected r =
  Alcotest.(check string) msg expected (Release.route_name r.Release.route)

let test_ship_bare_when_certified () =
  let r = plan Paper.branch_allowed in
  check_route "certified program ships bare" "ship-bare" r;
  Alcotest.(check bool) "certified flag" true r.Release.certified;
  Alcotest.(check (float 1e-9)) "serves everything" 1.0 r.Release.completeness

let test_guarded_route_for_ex9 () =
  let r = plan Paper.ex9 in
  check_route "ex9 takes the per-halt static route" "guarded" r;
  Alcotest.(check (float 1e-9)) "matches maximal" r.Release.maximal
    r.Release.completeness;
  Alcotest.(check (float 1e-9)) "a quarter served" 0.25 r.Release.completeness

let test_monitored_route_for_scoped_trap () =
  (* Static serves 0% of the achievable 25%, search finds nothing either:
     the planner falls through to monitoring (which also serves 0 here, but
     soundly and without lying). *)
  let r = plan Paper.scoped_trap in
  check_route "falls back to monitoring" "monitored" r;
  Alcotest.(check (float 1e-9)) "monitor serves nothing here" 0.0
    r.Release.completeness;
  Alcotest.(check (float 1e-9)) "while maximal shows headroom" 0.25
    r.Release.maximal

let test_refuse_when_nothing_sound () =
  let r = plan Paper.direct_flow in
  check_route "direct flow is refused" "refuse" r;
  Alcotest.(check (float 1e-9)) "maximal is empty" 0.0 r.Release.maximal

let test_monitored_beats_plain_surveillance () =
  (* constant-branch: plain surveillance 0%, the searched monitor 100%. *)
  let r = plan Paper.constant_branch in
  check_route "monitored" "monitored" r;
  Alcotest.(check (float 1e-9)) "search closed the gap" 1.0 r.Release.completeness

let test_notes_present () =
  let r = plan Paper.ex9 in
  Alcotest.(check bool) "decision trail recorded" true (r.Release.notes <> [])

let test_filter_policy_rejected () =
  let e = Paper.ex9 in
  match
    Release.plan
      ~policy:(Policy.filter ~name:"f" (fun _ -> Value.unit))
      ~space:e.Paper.space e.Paper.prog
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "filter policies must be rejected"

(* Whatever route the planner picks on random programs, the result is a
   sound protection mechanism bounded by the maximal yardstick. *)
let prop_plan_always_sound =
  let params = Generator.default in
  qtest ~count:150 "release plans are sound protection mechanisms"
    (Generator.arbitrary params)
    (fun prog ->
      let space = Generator.space_for params in
      List.for_all
        (fun policy ->
          let r = Release.plan ~policy ~space prog in
          Soundness.is_sound policy r.Release.mechanism space
          && Mechanism.check_protects r.Release.mechanism
               (Interp.ast_program prog) space
             = Ok ()
          && r.Release.completeness <= r.Release.maximal +. 1e-9)
        [ Policy.allow_none; Policy.allow [ 0 ]; Policy.allow [ 1 ] ])

let () =
  Alcotest.run "secpol-release"
    [
      ( "routes",
        [
          Alcotest.test_case "ship-bare" `Quick test_ship_bare_when_certified;
          Alcotest.test_case "guarded" `Quick test_guarded_route_for_ex9;
          Alcotest.test_case "monitored-fallback" `Quick test_monitored_route_for_scoped_trap;
          Alcotest.test_case "refuse" `Quick test_refuse_when_nothing_sound;
          Alcotest.test_case "search-wins" `Quick test_monitored_beats_plain_surveillance;
          Alcotest.test_case "notes" `Quick test_notes_present;
          Alcotest.test_case "filter-rejected" `Quick test_filter_policy_rejected;
        ] );
      ("property", [ prop_plan_always_sound ]);
    ]
