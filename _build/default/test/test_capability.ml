(* Capability systems in the model (the paper's closing claim). *)

open Util
module Capsys = Secpol_capability.Capsys
module Leakage = Secpol_probe.Leakage

(* Three objects. Object 0 stores a capability for object 1; object 1
   stores one for object 2: a take-grant chain 0 -> 1 -> 2. *)
let sys =
  Capsys.make ~objects:3 ~stored_caps:[| 0b010; 0b100; 0b000 |]

(* Masks: nothing, object 0 only (whose closure is everything), object 2
   only, objects 0+2. *)
let space = Capsys.space sys ~value_range:2 ~cap_masks:[ 0b000; 0b001; 0b100 ]
let policy = Capsys.policy sys

(* The subject tries to read everything, harvesting capabilities on the
   way. *)
let greedy =
  [
    Capsys.Load 0; Capsys.Fetch 0; Capsys.Load 1; Capsys.Fetch 1; Capsys.Load 2;
  ]

let modest = [ Capsys.Load 0 ]

let test_closure () =
  Alcotest.(check int) "0 reaches all" 0b111 (Capsys.closure sys 0b001);
  Alcotest.(check int) "1 reaches 1,2" 0b110 (Capsys.closure sys 0b010);
  Alcotest.(check int) "2 reaches itself" 0b100 (Capsys.closure sys 0b100);
  Alcotest.(check int) "empty stays empty" 0 (Capsys.closure sys 0)

let test_policy_images () =
  (* With cap {2}, values of objects 0 and 1 are filtered. *)
  let image vals mask =
    Policy.image policy
      (Array.append (Array.map Value.int (Array.of_list vals)) [| Value.int mask |])
  in
  Alcotest.(check bool) "cap{2}: object 0 hidden" true
    (Value.equal (image [ 0; 1; 1 ] 0b100) (image [ 1; 0; 1 ] 0b100));
  Alcotest.(check bool) "cap{0}: everything visible" false
    (Value.equal (image [ 0; 1; 1 ] 0b001) (image [ 1; 1; 1 ] 0b001))

let test_unchecked_machine_leaks () =
  let q = Capsys.program sys greedy in
  check_unsound "unchecked machine ignores capabilities" policy
    (Mechanism.of_program q) space

let test_checked_machine_sound_and_serves_closure () =
  let q = Capsys.program sys greedy in
  let m = Capsys.checked sys greedy in
  check_sound "checked machine is sound" policy m space;
  (match Mechanism.check_protects m q space with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "grants must equal the unchecked sum");
  (* cap {0}: the whole chain is harvestable - the greedy script runs. *)
  check_grants "chain harvested" m [ 1; 1; 1; 0b001 ] 3;
  (* cap {2}: the first load already fails. *)
  check_denies "no entry without object 0" m [ 1; 1; 1; 0b100 ];
  Alcotest.(check bool) "no measured leak" true
    (Leakage.is_tight (Leakage.of_mechanism policy m space))

let test_strict_machine_below_checked () =
  let q = Capsys.program sys greedy in
  let mc = Capsys.checked sys greedy in
  let ms = Capsys.strict sys greedy in
  check_sound "strict machine is sound too" policy ms space;
  (* Strict cannot follow the chain: even cap {0} fails at Load 1. *)
  check_denies "no acquisition, no chain" ms [ 1; 1; 1; 0b001 ];
  Alcotest.(check bool) "checked strictly more complete" true
    (Completeness.compare mc ms ~q space = Completeness.More_complete)

let test_modest_script_everyone_agrees () =
  let q = Capsys.program sys modest in
  let mc = Capsys.checked sys modest in
  let ms = Capsys.strict sys modest in
  Alcotest.(check bool) "same grants on a one-load script" true
    (Completeness.compare mc ms ~q space = Completeness.Equal);
  check_sound "checked sound" policy mc space;
  check_sound "strict sound" policy ms space

let test_maximal_dominates_capability_machines () =
  let q = Capsys.program sys greedy in
  let mx = Maximal.build policy q space in
  List.iter
    (fun m ->
      match Completeness.as_complete_as mx m ~q space with
      | Ok () -> ()
      | Error _ -> Alcotest.failf "%s beats maximal" m.Mechanism.name)
    [ Capsys.checked sys greedy; Capsys.strict sys greedy ]

let test_script_validation () =
  match Capsys.program sys [ Capsys.Load 9 ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "scripts must stay within the system's objects"

let () =
  Alcotest.run "secpol-capability"
    [
      ( "capability",
        [
          Alcotest.test_case "closure" `Quick test_closure;
          Alcotest.test_case "policy-images" `Quick test_policy_images;
          Alcotest.test_case "unchecked-leaks" `Quick test_unchecked_machine_leaks;
          Alcotest.test_case "checked-sound" `Quick test_checked_machine_sound_and_serves_closure;
          Alcotest.test_case "strict-below" `Quick test_strict_machine_below_checked;
          Alcotest.test_case "modest-script" `Quick test_modest_script_everyone_agrees;
          Alcotest.test_case "maximal-dominates" `Quick test_maximal_dominates_capability_machines;
          Alcotest.test_case "script-validation" `Quick test_script_validation;
        ] );
    ]
