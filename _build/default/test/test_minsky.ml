(* Example 1: Minsky machines and Fenton's Data Mark Machine, including the
   paper's analysis of the ill-defined halt statement. *)

open Util
module Machine = Secpol_minsky.Machine
module Dmm = Secpol_minsky.Dmm

let run_value m inputs =
  match (Machine.run m (Array.of_list inputs)).Program.result with
  | Program.Value v -> Value.to_int v
  | Program.Diverged -> Alcotest.fail "unexpected divergence"
  | Program.Fault msg -> Alcotest.failf "unexpected fault %s" msg

(* --- plain machines ----------------------------------------------------- *)

let test_zoo_outputs () =
  Alcotest.(check int) "adder 3+4" 7 (run_value Machine.Zoo.adder [ 3; 4 ]);
  Alcotest.(check int) "adder 0+0" 0 (run_value Machine.Zoo.adder [ 0; 0 ]);
  Alcotest.(check int) "doubler 5" 10 (run_value Machine.Zoo.doubler [ 5 ]);
  Alcotest.(check int) "zero-test 0" 1 (run_value Machine.Zoo.zero_test [ 0 ]);
  Alcotest.(check int) "zero-test 3" 0 (run_value Machine.Zoo.zero_test [ 3 ])

let test_looper_halting () =
  Alcotest.(check bool) "halts on 0" true
    (Machine.halts_within Machine.Zoo.looper ~fuel:1000 [| 0 |]);
  Alcotest.(check bool) "spins on 1" false
    (Machine.halts_within Machine.Zoo.looper ~fuel:1000 [| 1 |])

let test_negative_inputs_clamped () =
  Alcotest.(check int) "negative clamps to 0" 1
    (run_value Machine.Zoo.zero_test [ -5 ])

let test_machine_validation () =
  (match
     Machine.make ~name:"bad" ~ninputs:1 ~nregs:1 ~out_reg:0
       [| Machine.Inc (3, 0) |]
   with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "register out of range accepted");
  match
    Machine.make ~name:"bad" ~ninputs:1 ~nregs:1 ~out_reg:0
      [| Machine.Inc (0, 7) |]
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "jump target out of range accepted"

let test_step_counts_grow_with_input () =
  let steps n =
    (Machine.run Machine.Zoo.slow_counter [| n |]).Program.steps
  in
  Alcotest.(check bool) "monotone in x0" true (steps 5 > steps 1)

(* --- Data Mark Machine --------------------------------------------------- *)

let secret_policy = Policy.allow []
(* x0 is priv; there is nothing the user may learn. *)

let space1 = Space.ints ~lo:0 ~hi:3 ~arity:1

let test_dmm_checked_sound () =
  let cfg = Dmm.config ~pc_mode:Dmm.Monotone ~halt_mode:Dmm.Halt_checked secret_policy in
  let m = Dmm.mechanism cfg Machine.Zoo.negative_inference in
  check_denies "denies on 0" m [ 0 ];
  check_denies "denies on 2" m [ 2 ];
  check_sound "monotone+checked is sound" secret_policy m space1

let test_dmm_error_halt_unsound () =
  (* Fenton's halt read as "emit an error when P <> null", with his scoped
     pc restoration: the error appears iff x0 = 0. The paper's point. *)
  let cfg = Dmm.config ~pc_mode:Dmm.Scoped ~halt_mode:Dmm.Halt_error secret_policy in
  let m = Dmm.mechanism cfg Machine.Zoo.negative_inference in
  check_denies "error notice when x0 = 0" m [ 0 ];
  check_grants "clean output when x0 <> 0" m [ 2 ] 0;
  check_unsound "negative inference leaks" secret_policy m space1

let test_dmm_error_halt_monotone_is_sound_here () =
  (* Without the restoration the pc mark never clears, both paths deny, and
     the interpretation happens to be sound on this program. *)
  let cfg = Dmm.config ~pc_mode:Dmm.Monotone ~halt_mode:Dmm.Halt_error secret_policy in
  let m = Dmm.mechanism cfg Machine.Zoo.negative_inference in
  check_denies "denies on 0" m [ 0 ];
  check_denies "denies on 1" m [ 1 ];
  check_sound "constant denial" secret_policy m space1

let test_dmm_noop_halt_times_leak () =
  (* The benign no-op reading: both paths eventually output 0, but the
     skipped halt costs a step — sound untimed, unsound timed. *)
  let cfg = Dmm.config ~pc_mode:Dmm.Scoped ~halt_mode:Dmm.Halt_noop secret_policy in
  let m = Dmm.mechanism cfg Machine.Zoo.negative_inference in
  check_grants "x0=0 output 0" m [ 0 ] 0;
  check_grants "x0=2 output 0" m [ 2 ] 0;
  check_sound "values constant: untimed sound" secret_policy m space1;
  check_unsound "step counts differ: timed unsound" ~config:Soundness.timed
    secret_policy m space1

let test_dmm_noop_can_run_off_the_end () =
  (* A marked halt as the LAST instruction: the paper notes the semantics
     are undefined; here the machine simply never answers. *)
  let tail_halt =
    Machine.make ~name:"tail-halt" ~ninputs:1 ~nregs:2 ~out_reg:1
      [| Machine.Decjz (0, 1, 1); Machine.Stop |]
  in
  let cfg =
    Dmm.config ~fuel:200 ~pc_mode:Dmm.Monotone ~halt_mode:Dmm.Halt_noop
      secret_policy
  in
  let r = Dmm.run cfg tail_halt (Array.map Value.int [| 0 |]) in
  match r.Mechanism.response with
  | Mechanism.Hung -> ()
  | _ -> Alcotest.fail "expected the machine to hang"

let test_dmm_allowed_inputs_flow () =
  (* With x0 allowed, computation on it is served. *)
  let policy = Policy.allow [ 0 ] in
  let cfg = Dmm.config policy in
  let m = Dmm.mechanism cfg Machine.Zoo.doubler in
  check_grants "doubler grants" m [ 3 ] 6;
  check_sound "sound for allow(0)" policy m space1

let test_dmm_adder_mixed_marks () =
  (* adder with only x1 allowed: output depends on both -> deny; policy
     allowing both -> grant. *)
  let space2 = Space.ints ~lo:0 ~hi:2 ~arity:2 in
  let m1 = Dmm.mechanism (Dmm.config (Policy.allow [ 1 ])) Machine.Zoo.adder in
  check_denies "mixed marks denied" m1 [ 1; 2 ];
  check_sound "sound" (Policy.allow [ 1 ]) m1 space2;
  let m2 = Dmm.mechanism (Dmm.config (Policy.allow [ 0; 1 ])) Machine.Zoo.adder in
  check_grants "full allowance grants" m2 [ 1; 2 ] 3;
  check_sound "sound" (Policy.allow [ 0; 1 ]) m2 space2

let test_dmm_pc_tracking_is_necessary () =
  (* implicit-copy moves the secret without any data flow. The full DMM
     catches it; the data-marks-only ablation waves it through. *)
  let m_full = Dmm.mechanism (Dmm.config secret_policy) Machine.Zoo.implicit_copy in
  check_denies "full DMM denies on 0" m_full [ 0 ];
  check_denies "full DMM denies on 2" m_full [ 2 ];
  check_sound "full DMM sound" secret_policy m_full space1;
  let m_data_only =
    Dmm.mechanism (Dmm.config ~track_pc:false secret_policy) Machine.Zoo.implicit_copy
  in
  check_grants "data-only grants the copied bit" m_data_only [ 0 ] 1;
  check_grants "data-only grants the copied bit" m_data_only [ 2 ] 0;
  check_unsound "data-only is unsound: the implicit flow escapes"
    secret_policy m_data_only space1

(* The checked DMM is a protection mechanism for the machine's program. *)
let test_dmm_protects () =
  let q = Machine.program Machine.Zoo.adder in
  let space2 = Space.ints ~lo:0 ~hi:2 ~arity:2 in
  let m = Dmm.mechanism (Dmm.config (Policy.allow [ 0 ])) Machine.Zoo.adder in
  match Mechanism.check_protects m q space2 with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "DMM grants must match the machine's outputs"

let () =
  Alcotest.run "secpol-minsky"
    [
      ( "machine",
        [
          Alcotest.test_case "zoo-outputs" `Quick test_zoo_outputs;
          Alcotest.test_case "looper-halting" `Quick test_looper_halting;
          Alcotest.test_case "negative-inputs" `Quick test_negative_inputs_clamped;
          Alcotest.test_case "validation" `Quick test_machine_validation;
          Alcotest.test_case "step-counts" `Quick test_step_counts_grow_with_input;
        ] );
      ( "dmm",
        [
          Alcotest.test_case "checked-sound" `Quick test_dmm_checked_sound;
          Alcotest.test_case "error-halt-unsound" `Quick test_dmm_error_halt_unsound;
          Alcotest.test_case "error-halt-monotone" `Quick test_dmm_error_halt_monotone_is_sound_here;
          Alcotest.test_case "noop-halt-times-leak" `Quick test_dmm_noop_halt_times_leak;
          Alcotest.test_case "run-off-the-end" `Quick test_dmm_noop_can_run_off_the_end;
          Alcotest.test_case "allowed-flow" `Quick test_dmm_allowed_inputs_flow;
          Alcotest.test_case "adder-mixed" `Quick test_dmm_adder_mixed_marks;
          Alcotest.test_case "pc-tracking-necessary" `Quick test_dmm_pc_tracking_is_necessary;
          Alcotest.test_case "protects" `Quick test_dmm_protects;
        ] );
    ]
