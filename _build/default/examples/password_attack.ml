(* Section 2's "now-classic case": a password checker whose security rests
   on a work factor of n^k guesses - until the attacker notices page
   movement, an output nobody declared.

       dune exec examples/password_attack.exe *)

module Logon = Secpol_channels.Logon
module Leakage = Secpol_probe.Leakage
module Tabulate = Secpol_probe.Tabulate

let () =
  let n = 8 and k = 4 in
  let rng = Random.State.make [| 1975 |] in
  let secret = Logon.Attack.random_secret rng ~n ~k in
  let oracle = Logon.Attack.make ~n ~k ~secret in
  Printf.printf
    "alphabet size n = %d, password length k = %d\nsecret (hidden): %s\n\n" n k
    (String.concat "" (List.map string_of_int (Array.to_list secret)));

  Printf.printf "promised work factor: n^k = %.0f guesses\n"
    (float_of_int n ** float_of_int k);
  let blind = Logon.Attack.brute_force oracle in
  Printf.printf "blind exhaustive search took:      %6d probes\n" blind;
  let paged = Logon.Attack.prefix_walk oracle in
  Printf.printf "page-boundary-observing walk took: %6d probes (bound n*k = %d)\n\n"
    paged (n * k);

  Printf.printf
    "the attack: lay the guess across a page boundary after the first\n\
     character. The comparison loop faults in the next page only if the\n\
     prefix matched - so every probe reveals the length of the agreeing\n\
     prefix, and characters can be confirmed one at a time.\n\n";

  (* The same story in the model's terms: the logon program is already
     unsound for allow(userid, password) - the paper's Example 5 - but the
     per-query leak is fractional; the page channel is what industrializes
     it. *)
  let space =
    Logon.logon_space ~uids:[ 1; 2 ] ~pwds:[ 7; 8; 9 ]
      ~table_pairs:[ [ (1, 7) ]; [ (1, 8) ]; [ (1, 9) ]; [ (2, 7) ] ]
  in
  let leak = Leakage.of_program Logon.logon_policy Logon.logon space in
  Printf.printf
    "Example 5, quantified: the logon answer itself leaks %.3f bits per\n\
     query about the password table (max %.3f in the worst class) - small,\n\
     which is why password systems are workable at all.\n"
    leak.Leakage.avg_bits leak.Leakage.max_bits;

  let t = Tabulate.create ~header:[ "k"; "n^k"; "n*k"; "measured walk (worst)" ] in
  List.iter
    (fun k ->
      let worst = Array.make k (n - 1) in
      let o = Logon.Attack.make ~n ~k ~secret:worst in
      Tabulate.add_row t
        [
          string_of_int k;
          Printf.sprintf "%.0f" (float_of_int n ** float_of_int k);
          string_of_int (n * k);
          string_of_int (Logon.Attack.prefix_walk o);
        ])
    [ 2; 3; 4; 5; 6 ];
  print_endline "";
  Tabulate.print ~title:"work factor vs password length" t
