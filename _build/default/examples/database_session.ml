(* Beyond allow(...): two policies the paper only gestures at, running.

   First, Section 2's closing remark — "policies (such as might be found
   in a data base system) where what a user is permitted to view is
   dependent upon a history of the user's previous queries" — as a
   statistical database under the differencing attack. Second, the
   conclusions' capability systems, as a take-grant chain.

       dune exec examples/database_session.exe *)

module Value = Secpol_core.Value
module Policy = Secpol_core.Policy
module Program = Secpol_core.Program
module Mechanism = Secpol_core.Mechanism
module Soundness = Secpol_core.Soundness
module Completeness = Secpol_core.Completeness
module Querydb = Secpol_history.Querydb
module Capsys = Secpol_capability.Capsys
module Leakage = Secpol_probe.Leakage

let mask_to_names mask =
  let names = [| "alice"; "bob"; "carol" |] in
  String.concat "+"
    (List.filteri (fun i _ -> mask land (1 lsl i) <> 0) (Array.to_list names))

let () =
  print_endline "== The differencing attack =====================================";
  let db = { Querydb.k = 3; queries = 2 } in
  (* Salaries: alice 3, bob 1, carol 2. The attacker may ask for sums. *)
  let salaries = [| 3; 1; 2 |] in
  let session masks =
    let inputs =
      Array.append (Array.map Value.int salaries)
        (Array.of_list (List.map Value.int masks))
    in
    match (Program.run (Querydb.session_program db) inputs).Program.result with
    | Program.Value (Value.Tuple answers) ->
        List.iter2
          (fun m a ->
            Printf.printf "  sum(%s) = %s\n" (mask_to_names m) (Value.to_string a))
          masks answers
    | _ -> assert false
  in
  print_endline "unguarded session: ask for everyone, then everyone-but-bob:";
  session [ 0b111; 0b101 ];
  print_endline "  ... subtract: bob earns 1. The aggregate interface leaked a";
  print_endline "  single record. The history rule refuses exactly such pairs:";
  Printf.printf "  permitted [everyone; everyone-but-bob] = [%s]\n"
    (String.concat "; "
       (List.map string_of_bool (Querydb.permitted db [ 0b111; 0b101 ])));

  let space =
    Querydb.space db ~record_values:[ 0; 1 ]
      ~query_masks:[ 0b111; 0b110; 0b011; 0b001 ]
  in
  let policy = Querydb.policy db in
  let leak m = (Leakage.of_mechanism policy m space).Leakage.avg_bits in
  Printf.printf "\nmeasured over a %s-point space:\n"
    (string_of_int
       (let p = Secpol_probe.Partition.compute policy space in
        p.Secpol_probe.Partition.points));
  Printf.printf "  answer everything:   %.3f bits leaked (unsound)\n"
    (leak (Mechanism.of_program (Querydb.session_program db)));
  Printf.printf "  session gatekeeper:  %.3f bits leaked (sound)\n"
    (leak (Querydb.monitor db));
  Printf.printf "  slotwise redesign:   %.3f bits leaked (sound)\n"
    (leak (Mechanism.of_program (Querydb.slotwise_program db)));

  print_endline "\n== Capabilities as a policy ====================================";
  let sys = Capsys.make ~objects:3 ~stored_caps:[| 0b010; 0b100; 0b000 |] in
  print_endline "object 0 stores a capability for object 1; 1 stores one for 2.";
  List.iter
    (fun mask ->
      Printf.printf "  closure({%s}) = {%s}\n" (mask_to_names mask)
        (mask_to_names (Capsys.closure sys mask)))
    [ 0b001; 0b010; 0b100 ];
  let greedy =
    [ Capsys.Load 0; Capsys.Fetch 0; Capsys.Load 1; Capsys.Fetch 1; Capsys.Load 2 ]
  in
  let space = Capsys.space sys ~value_range:2 ~cap_masks:[ 0b000; 0b001; 0b100 ] in
  let policy = Capsys.policy sys in
  let q = Capsys.program sys greedy in
  let show label m =
    let sound =
      match Soundness.check policy m space with
      | Soundness.Sound -> "sound"
      | Soundness.Unsound _ -> "UNSOUND"
    in
    Printf.printf "  %-24s %-8s serves %3.0f%%\n" label sound
      (100.0 *. Completeness.ratio m ~q space)
  in
  print_endline "a capability-harvesting script under three disciplines:";
  show "no checking" (Mechanism.of_program q);
  show "check, allow acquiring" (Capsys.checked sys greedy);
  show "check, no acquiring" (Capsys.strict sys greedy);
  print_endline
    "\nboth policies are information filters like any other: the same\n\
     soundness checker, leakage meter and completeness order apply."
