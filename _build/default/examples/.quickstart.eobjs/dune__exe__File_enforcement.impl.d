examples/file_enforcement.ml: Array List Printf Secpol_core Secpol_flowgraph Secpol_lang Secpol_probe Secpol_staticflow Secpol_taint Sys
