examples/certify_pipeline.mli:
