examples/database_session.ml: Array List Printf Secpol_capability Secpol_core Secpol_history Secpol_probe String
