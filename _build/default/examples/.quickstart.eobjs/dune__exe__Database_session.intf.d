examples/database_session.mli:
