examples/password_attack.ml: Array List Printf Random Secpol_channels Secpol_probe String
