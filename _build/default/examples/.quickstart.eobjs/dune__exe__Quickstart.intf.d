examples/quickstart.mli:
