examples/file_enforcement.mli:
