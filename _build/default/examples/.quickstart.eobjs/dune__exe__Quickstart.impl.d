examples/quickstart.ml: Array Format List Printf Secpol_core Secpol_flowgraph Secpol_taint String
