examples/timing_channel.ml: Format List Printf Secpol_core Secpol_flowgraph Secpol_probe Secpol_taint
