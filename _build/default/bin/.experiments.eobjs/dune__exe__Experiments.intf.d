bin/experiments.mli:
