bin/secpol_cli.mli:
