# Convenience targets; everything is plain dune underneath.

all:
	dune build @all

test:
	dune runtest

test-force:
	dune runtest --force --no-buffer

# Lint every example program and fail on an unexpected verdict. The same
# sweep runs inside `dune runtest` (test/lint_corpus.ml); this target drives
# it through the CLI, exit codes and all.
lint-corpus:
	@dune build bin/secpol_cli.exe
	@status=0; \
	for f in examples/programs/*.spl; do \
	  ./_build/default/bin/secpol_cli.exe lint $$f > /dev/null 2>&1; code=$$?; \
	  case $$(basename $$f) in \
	    gcd.spl|mix.spl) want=0 ;; \
	    blind_vote.spl|bounded_search.spl|wage_gap.spl) want=1 ;; \
	    *) echo "UNEXPECTED $$f: add it here and to test/lint_corpus.ml"; status=1; continue ;; \
	  esac; \
	  if [ $$code -ne $$want ]; then \
	    echo "FAIL $$f: exit $$code, want $$want"; status=1; \
	  else \
	    echo "ok   $$f (exit $$code)"; \
	  fi; \
	done; exit $$status

# Certify every example program against its policy hint and fail on an
# unexpected verdict (exit 0 proved, 1 refuted/unknown). The same sweep
# runs inside `dune runtest` (test/certify_corpus.ml, which also covers the
# paper corpus); this target drives it through the CLI. Note mix.spl: the
# linter certifies its dead store of the secret (overwritten on every
# path), but the certifier answers for every monitor mode and high-water
# taint never forgets an overwrite — it condemns.
certify-corpus:
	@dune build bin/secpol_cli.exe
	@status=0; \
	for f in examples/programs/*.spl; do \
	  ./_build/default/bin/secpol_cli.exe certify $$f > /dev/null 2>&1; code=$$?; \
	  case $$(basename $$f) in \
	    gcd.spl) want=0 ;; \
	    blind_vote.spl|bounded_search.spl|mix.spl|wage_gap.spl) want=1 ;; \
	    *) echo "UNEXPECTED $$f: add it here and to test/certify_corpus.ml"; status=1; continue ;; \
	  esac; \
	  if [ $$code -ne $$want ]; then \
	    echo "FAIL $$f: exit $$code, want $$want"; status=1; \
	  else \
	    echo "ok   $$f (exit $$code)"; \
	  fi; \
	done; exit $$status

# Differential fault-injection sweep over the whole corpus: every seeded
# fault must land in a violation notice, never in a fail-open grant. The
# same sweep runs inside `dune runtest` (test/chaos_sweep.ml); this target
# drives it through the CLI with the full seed count and text report.
chaos:
	dune exec bin/secpol_cli.exe -- chaos --seeds 100

# Crash-recovery sweep: kill journaled monitored runs at every crash point,
# tamper with the media, and verify every resume is bit-identical to the
# uninterrupted run or degrades to the violation notice Λ/recovery. The
# same sweep runs inside `dune runtest` (test/crash_sweep.ml).
chaos-crash:
	dune exec bin/secpol_cli.exe -- chaos --crash --crash-points 50

# Both sweeps through the engine pool at 4 domains. Reports are promised
# byte-identical to the sequential ones; the pool's scheduling telemetry
# (steals, idle probes) lands on stderr.
chaos-par:
	dune exec bin/secpol_cli.exe -- chaos --seeds 100 --jobs 4
	dune exec bin/secpol_cli.exe -- chaos --crash --crash-points 50 --jobs 4

# Regenerates experiments_output.txt (gitignored — it is derived output;
# EXPERIMENTS.md narrates the numbers).
experiments:
	dune exec bin/experiments.exe | tee experiments_output.txt

bench:
	dune exec bench/main.exe

# Benchmarks plus a machine-readable BENCH_secpol.json (series -> ns/run).
bench-json:
	dune exec bench/main.exe -- --json

examples:
	dune exec examples/quickstart.exe
	dune exec examples/payroll_audit.exe
	dune exec examples/password_attack.exe
	dune exec examples/timing_channel.exe
	dune exec examples/certify_pipeline.exe
	dune exec examples/file_enforcement.exe
	dune exec examples/database_session.exe

doc:
	# requires odoc (opam install odoc)
	dune build @doc

clean:
	dune clean

.PHONY: all test test-force lint-corpus certify-corpus chaos chaos-crash chaos-par experiments bench bench-json examples doc clean
