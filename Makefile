# Convenience targets; everything is plain dune underneath.

all:
	dune build @all

test:
	dune runtest

test-force:
	dune runtest --force --no-buffer

# Lint / certify every example program and fail on an unexpected verdict.
# Both targets (and test/lint_corpus.ml, test/certify_corpus.ml inside
# `dune runtest`) read the same expectation table,
# examples/programs/corpus.manifest, so adding an example cannot silently
# skip one gate: a file missing from the manifest — or a manifest line
# with no file on disk — fails the sweep. $(1) is the CLI subcommand,
# $(2) the manifest verdict column it answers for.
MANIFEST := examples/programs/corpus.manifest
define corpus_sweep
	@dune build bin/secpol_cli.exe
	@status=0; \
	for f in examples/programs/*.spl; do \
	  b=$$(basename $$f); \
	  verdict=$$(awk -v f="$$b" '!/^\#/ && $$1 == f { print $$$(2) }' $(MANIFEST)); \
	  case "$$verdict" in \
	    proved) want=0 ;; \
	    refuted) want=1 ;; \
	    *) echo "UNEXPECTED $$f: add it to $(MANIFEST)"; status=1; continue ;; \
	  esac; \
	  ./_build/default/bin/secpol_cli.exe $(1) $$f > /dev/null 2>&1; code=$$?; \
	  if [ $$code -ne $$want ]; then \
	    echo "FAIL $$f: exit $$code, want $$want ($$verdict)"; status=1; \
	  else \
	    echo "ok   $$f (exit $$code, $$verdict)"; \
	  fi; \
	done; \
	for b in $$(awk '!/^\#/ && NF { print $$1 }' $(MANIFEST)); do \
	  if [ ! -f "examples/programs/$$b" ]; then \
	    echo "MISSING $$b: listed in $(MANIFEST) but not on disk"; status=1; \
	  fi; \
	done; \
	exit $$status
endef

lint-corpus:
	$(call corpus_sweep,lint,2)

certify-corpus:
	$(call corpus_sweep,certify,3)

# Differential fault-injection sweep over the whole corpus: every seeded
# fault must land in a violation notice, never in a fail-open grant. The
# same sweep runs inside `dune runtest` (test/chaos_sweep.ml); this target
# drives it through the CLI with the full seed count and text report.
chaos:
	dune exec bin/secpol_cli.exe -- chaos --seeds 100

# Crash-recovery sweep: kill journaled monitored runs at every crash point,
# tamper with the media, and verify every resume is bit-identical to the
# uninterrupted run or degrades to the violation notice Λ/recovery. The
# same sweep runs inside `dune runtest` (test/crash_sweep.ml).
chaos-crash:
	dune exec bin/secpol_cli.exe -- chaos --crash --crash-points 50

# Distributed chaos sweep: split every run across cooperating shard
# enforcers under seeded shard-kill / network-fault / coordinator-timeout
# plans, and verify no merge ever fail-opens, with undisturbed runs
# bit-identical to the guarded single enforcer. The same sweep runs inside
# `dune runtest` (test/dist_sweep.ml).
chaos-dist:
	dune exec bin/secpol_cli.exe -- chaos --dist --seeds 30

# Enforcement-service chaos sweep: seeded client misbehaviour
# (disconnects, slowloris stalls, malformed frames, overload bursts) and
# process kills mid-request against the service engine. Every tracked
# request must be answered in E ∪ F — the clean verdict or a violation
# notice, Λ/overload under shedding, Λ/recovery after an unrecoverable
# kill — never a fail-open grant, never silence. The same sweep runs
# inside `dune runtest` (test/server_sweep.ml).
serve-chaos:
	dune exec bin/secpol_cli.exe -- chaos --server --seeds 100

# All four sweeps through the engine pool at 4 domains. Reports are
# promised byte-identical to the sequential ones; the pool's scheduling
# telemetry (steals, idle probes) lands on stderr.
chaos-par:
	dune exec bin/secpol_cli.exe -- chaos --seeds 100 --jobs 4
	dune exec bin/secpol_cli.exe -- chaos --crash --crash-points 50 --jobs 4
	dune exec bin/secpol_cli.exe -- chaos --dist --seeds 30 --jobs 4
	dune exec bin/secpol_cli.exe -- chaos --server --seeds 100 --jobs 4

# Refined-vs-brute differential sweep: partition refinement (the default
# algorithm behind Secpol.Analyze and `secpol measure --algo refine`) must
# reproduce the brute-force yardstick bit-for-bit — class tables under both
# observables, mechanisms, grant tallies, soundness verdicts and witnesses —
# over the corpus, random programs and adversarial spaces, at jobs 1 and 4.
# The same suite runs inside `dune runtest` (test/test_refine.ml).
refine-diff:
	dune exec test/test_refine.exe

# Regenerates experiments_output.txt (gitignored — it is derived output;
# EXPERIMENTS.md narrates the numbers).
experiments:
	dune exec bin/experiments.exe | tee experiments_output.txt

bench:
	dune exec bench/main.exe

# Benchmarks plus a machine-readable BENCH_secpol.json (series -> ns/run).
bench-json:
	dune exec bench/main.exe -- --json

examples:
	dune exec examples/quickstart.exe
	dune exec examples/payroll_audit.exe
	dune exec examples/password_attack.exe
	dune exec examples/timing_channel.exe
	dune exec examples/certify_pipeline.exe
	dune exec examples/file_enforcement.exe
	dune exec examples/database_session.exe

doc:
	# requires odoc (opam install odoc)
	dune build @doc

clean:
	dune clean

.PHONY: all test test-force lint-corpus certify-corpus chaos chaos-crash chaos-dist serve-chaos chaos-par refine-diff experiments bench bench-json examples doc clean
