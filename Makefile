# Convenience targets; everything is plain dune underneath.

all:
	dune build @all

test:
	dune runtest

test-force:
	dune runtest --force --no-buffer

experiments:
	dune exec bin/experiments.exe

bench:
	dune exec bench/main.exe

examples:
	dune exec examples/quickstart.exe
	dune exec examples/payroll_audit.exe
	dune exec examples/password_attack.exe
	dune exec examples/timing_channel.exe
	dune exec examples/certify_pipeline.exe
	dune exec examples/file_enforcement.exe
	dune exec examples/database_session.exe

doc:
	# requires odoc (opam install odoc)
	dune build @doc

clean:
	dune clean

.PHONY: all test test-force experiments bench examples doc clean
