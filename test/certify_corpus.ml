(* Certify every corpus program against its paper policy and every example
   program against its "# policy:" hint, and compare the verdict with this
   expected table. `make certify-corpus` drives the example half through the
   CLI; this executable wires both halves into `dune runtest`.

   Note the deliberate divergence from lint_corpus: mix.spl lints clean
   (the linter's strong updates erase its dead store of the secret), but
   the certifier speaks for ALL monitor modes, and high-water taint never
   forgets an overwrite — so here mix is refuted, not proved. *)

module Policy = Secpol_core.Policy
module Compile = Secpol_flowgraph.Compile
module Certifier = Secpol_staticflow.Certifier
module Paper = Secpol_corpus.Paper_programs
module Source = Secpol_lang.Source

let examples_dir = "../examples/programs"

(* corpus entry name -> verdict under the entry's own policy *)
let expected_corpus =
  [
    ("forgetting", "refuted");
    ("constant-branch", "refuted");
    ("ex7", "refuted");
    ("ex8", "refuted");
    ("ex9", "refuted");
    ("timing-constant", "refuted");
    ("loop-then-secretfree", "refuted");
    ("scoped-trap", "refuted");
    ("direct-flow", "refuted");
    ("branch-allowed", "proved");
  ]

(* example file -> verdict under its policy hint (allow_none when absent),
   from the shared manifest `make certify-corpus` also reads *)
let expected_examples =
  List.map
    (fun (r : Util.manifest_row) -> (r.Util.mf_file, r.Util.mf_certify_verdict))
    (Util.load_corpus_manifest ())

let check want got label failed =
  if got <> want then begin
    Printf.printf "FAIL %-24s verdict=%s (want %s)\n" label got want;
    true
  end
  else begin
    Printf.printf "ok   %-24s verdict=%s\n" label got;
    failed
  end

let check_entry failed (e : Paper.entry) =
  match List.assoc_opt e.Paper.name expected_corpus with
  | None ->
      Printf.printf "FAIL %-24s not in the expected table; add a verdict\n"
        e.Paper.name;
      true
  | Some want ->
      let report =
        Certifier.certify_policy ~policy:e.Paper.policy (Paper.graph e)
      in
      check want (Certifier.verdict_name report.Certifier.verdict) e.Paper.name
        failed

let check_file failed file =
  match List.assoc_opt file expected_examples with
  | None ->
      Printf.printf "FAIL %-24s not in the expected table; add a verdict\n" file;
      true
  | Some want -> (
      let path = Filename.concat examples_dir file in
      match Source.load_with_hint path with
      | Error m ->
          Printf.printf "FAIL %-24s does not parse: %s\n" file m;
          true
      | Ok (prog, hint) ->
          let policy = Option.value hint ~default:Policy.allow_none in
          let report =
            Certifier.certify_policy ~policy (Compile.compile prog)
          in
          check want (Certifier.verdict_name report.Certifier.verdict) file
            failed)

let () =
  let failed = List.fold_left check_entry false Paper.all in
  let missing_entries =
    List.filter
      (fun (n, _) ->
        not (List.exists (fun (e : Paper.entry) -> e.Paper.name = n) Paper.all))
      expected_corpus
  in
  List.iter
    (fun (n, _) -> Printf.printf "FAIL %-24s expected but not in corpus\n" n)
    missing_entries;
  let files =
    Sys.readdir examples_dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".spl")
    |> List.sort compare
  in
  let missing_files =
    List.filter (fun (f, _) -> not (List.mem f files)) expected_examples
  in
  List.iter
    (fun (f, _) -> Printf.printf "FAIL %-24s expected but not on disk\n" f)
    missing_files;
  let failed =
    List.fold_left check_file
      (failed || missing_entries <> [] || missing_files <> [])
      files
  in
  if failed then exit 1
