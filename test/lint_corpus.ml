(* Lint every example program against its "# policy:" hint and compare the
   verdict and the set of fired rules with the shared expectation table
   (examples/programs/corpus.manifest — the same table `make lint-corpus`
   reads). This executable wires the sweep into `dune runtest`. A new
   .spl file must be added to the manifest — the sweep fails on
   unexpected files as well as unexpected verdicts, in both tools. *)

module Iset = Secpol_core.Iset
module Policy = Secpol_core.Policy
module Compile = Secpol_flowgraph.Compile
module Lint = Secpol_staticflow.Lint
module Source = Secpol_lang.Source

let examples_dir = "../examples/programs"

(* file -> (certified, rules fired, in kebab-case and sorted) *)
let expected =
  List.map
    (fun (r : Util.manifest_row) ->
      (r.Util.mf_file, (r.Util.mf_lint_certified, List.sort compare r.Util.mf_lint_rules)))
    (Util.load_corpus_manifest ())

let lint file =
  let path = Filename.concat examples_dir file in
  match Source.load_with_hint path with
  | Error m -> Error (Printf.sprintf "does not parse: %s" m)
  | Ok (prog, hint) -> (
      let policy = Option.value hint ~default:Policy.allow_none in
      match Policy.allowed_indices policy with
      | None -> Error "policy hint is not an allow(...) policy"
      | Some allowed -> Ok (Lint.check ~prog ~allowed (Compile.compile prog)))

let check_file failed file =
  match List.assoc_opt file expected with
  | None ->
      Printf.printf "FAIL %-20s not in the expected table; add a verdict\n" file;
      true
  | Some (want_certified, want_rules) -> (
      match lint file with
      | Error m ->
          Printf.printf "FAIL %-20s %s\n" file m;
          true
      | Ok report ->
          let rules =
            List.sort_uniq compare
              (List.map
                 (fun (f : Lint.finding) -> Lint.rule_name f.Lint.rule)
                 report.Lint.findings)
          in
          if report.Lint.certified <> want_certified || rules <> want_rules then begin
            Printf.printf
              "FAIL %-20s certified=%b (want %b), rules=[%s] (want [%s])\n" file
              report.Lint.certified want_certified (String.concat "," rules)
              (String.concat "," want_rules);
            true
          end
          else begin
            Printf.printf "ok   %-20s certified=%b rules=[%s]\n" file
              report.Lint.certified (String.concat "," rules);
            failed
          end)

let () =
  let files =
    Sys.readdir examples_dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".spl")
    |> List.sort compare
  in
  let missing =
    List.filter (fun (f, _) -> not (List.mem f files)) expected
  in
  List.iter
    (fun (f, _) -> Printf.printf "FAIL %-20s expected but not on disk\n" f)
    missing;
  let failed = List.fold_left check_file (missing <> []) files in
  if failed then exit 1
