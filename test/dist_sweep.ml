(* The issue's distributed acceptance gate, wired into `dune runtest`:
   corpus × allow(J) policies × ≥1000 seeded plans mixing shard kills,
   injected monitor faults, message drop/delay/duplicate/reorder/corrupt
   and coordinator timeouts. Zero fail-open merges — no grant the clean
   single enforcer would not have issued — and every undisturbed run
   bit-identical to the guarded single enforcer, with a separate
   fault-free pass at shard counts 1, 2, 3 and 5. `make chaos-dist`
   drives the same sweep through the CLI. *)

module Sweep = Secpol_dist.Sweep

let () =
  let report = Sweep.run ~seeds:30 () in
  let t = report.Sweep.totals in
  Printf.printf "dist chaos: %d plans, %d distributed runs\n" t.Sweep.plans
    t.Sweep.runs;
  if t.Sweep.plans < 1000 then begin
    Printf.printf "FAIL plans %d < 1000\n" t.Sweep.plans;
    exit 1
  end;
  let check name v =
    if v = 0 then Printf.printf "ok   %-28s 0\n" name
    else Printf.printf "FAIL %-28s %d\n" name v
  in
  check "fail-open merges" t.Sweep.fail_open;
  check "clean-run mismatches" t.Sweep.clean_mismatch;
  (* The sweep must actually have disturbed something in every fault
     class — an inert sweep would pass the gates above while testing
     nothing. *)
  let inert = ref false in
  let nonzero name v =
    if v > 0 then Printf.printf "ok   %-28s %d\n" name v
    else begin
      Printf.printf "FAIL %-28s 0 (sweep is inert)\n" name;
      inert := true
    end
  in
  nonzero "grants" t.Sweep.grants;
  nonzero "recovered grants" t.Sweep.recovered;
  nonzero "monitor denials" t.Sweep.monitor_denials;
  nonzero "partitions" t.Sweep.partitions;
  nonzero "shard kills" t.Sweep.shard_kills;
  nonzero "monitor-faulty shards" t.Sweep.monitor_faults;
  nonzero "coordinator timeouts" t.Sweep.timeouts;
  nonzero "retransmissions" t.Sweep.retransmits;
  nonzero "journal recoveries" t.Sweep.journal_resumes;
  nonzero "shards lost" t.Sweep.lost_shards;
  nonzero "messages dropped" t.Sweep.net_dropped;
  nonzero "messages delayed" t.Sweep.net_delayed;
  nonzero "messages duplicated" t.Sweep.net_duplicated;
  nonzero "messages reordered" t.Sweep.net_reordered;
  nonzero "messages corrupted" t.Sweep.net_corrupted;
  List.iter
    (fun (f : Sweep.finding) ->
      Printf.printf "  ! %s / %s / seed %d / %d shards / %s: %s\n"
        f.Sweep.entry f.Sweep.policy f.Sweep.seed f.Sweep.shards f.Sweep.input
        f.Sweep.detail)
    report.Sweep.findings;
  if (not report.Sweep.ok) || !inert then exit 1
