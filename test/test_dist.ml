(* Distributed enforcement: the sharding, the wire layer, the seeded
   network, and the coordinator's fail-secure merge. The invariants under
   test mirror the module docs — slices partition the disallowed set, the
   codec is a total inverse of the encoder, the merge is idempotent under
   duplicated/reordered/delayed delivery and bit-identical to the guarded
   single enforcer when nothing is disturbed, and every distributed
   failure lands in F (Λ/partition at worst), never in a grant. *)

open Util
module Graph = Secpol_flowgraph.Graph
module Dynamic = Secpol_taint.Dynamic
module Paper = Secpol_corpus.Paper_programs
module Guard = Secpol_fault.Guard
module Codec = Secpol_journal.Codec
module Frame = Secpol_journal.Frame
module Media = Secpol_journal.Media
module Msg = Secpol_dist.Msg
module Net = Secpol_dist.Net
module Plan = Secpol_dist.Plan
module Shard = Secpol_dist.Shard
module Coordinator = Secpol_dist.Coordinator
module Run = Secpol.Run

let reply_testable =
  Alcotest.testable
    (fun ppf r -> Format.pp_print_string ppf (show_mech_reply r))
    ( = )

(* --- slices -------------------------------------------------------------- *)

(* The watch sets partition the disallowed coordinates: pairwise disjoint,
   union exactly D, and each shard's sub-policy allows everything it does
   not watch. *)
let prop_slices_partition =
  qtest ~count:500 "slices-partition-the-disallowed-set"
    QCheck.(triple (int_range 1 8) (int_range 1 8) (int_range 0 255))
    (fun (shards, arity, mask_seed) ->
      let full = Iset.full arity in
      let allowed =
        Iset.of_list
          (List.filter
             (fun i -> (mask_seed lsr i) land 1 = 1)
             (List.init arity Fun.id))
      in
      let disallowed = Iset.diff full allowed in
      let slices = Shard.slices ~shards ~arity ~allowed in
      if Array.length slices <> shards then
        QCheck.Test.fail_reportf "expected %d slices" shards;
      let union = ref Iset.empty in
      Array.iter
        (fun (sl : Shard.slice) ->
          if not (Iset.is_empty (Iset.inter !union sl.Shard.watch_set)) then
            QCheck.Test.fail_reportf "watch sets overlap at shard %d"
              sl.Shard.shard_id;
          if
            not
              (Iset.equal sl.Shard.sub_allowed
                 (Iset.diff full sl.Shard.watch_set))
          then
            QCheck.Test.fail_reportf "shard %d sub_allowed is not full \\ D_s"
              sl.Shard.shard_id;
          union := Iset.union !union sl.Shard.watch_set)
        slices;
      Iset.equal !union disallowed
      || QCheck.Test.fail_reportf "union %s <> disallowed %s"
           (Iset.to_string !union)
           (Iset.to_string disallowed))

(* --- the wire layer ------------------------------------------------------ *)

let gen_report =
  QCheck.Gen.(
    let* shards = int_range 1 8 in
    let* shard_id = int_range 0 (shards - 1) in
    let* nonce = small_nat in
    let* attempt = int_range 1 4 in
    let* watch_mask = small_nat in
    let* watched_boxes = small_nat in
    let* skipped_boxes = small_nat in
    let* steps = small_nat in
    let* response =
      oneof
        [
          map (fun v -> Mechanism.Granted (Value.int v)) small_signed_int;
          map (fun n -> Mechanism.Denied n)
            (oneofl [ "\xce\x9b"; "\xce\x9b/fuel"; "notice \"x\"\n" ]);
          return Mechanism.Hung;
          map (fun m -> Mechanism.Failed m) small_string;
        ]
    in
    return
      {
        Msg.shard_id;
        shards;
        nonce;
        attempt;
        watch_mask;
        watched_boxes;
        skipped_boxes;
        reply = { Mechanism.response; steps };
      })

let report_arb =
  QCheck.make
    ~print:(fun (r : Msg.report) ->
      Printf.sprintf "shard %d/%d nonce %d attempt %d: %s" r.Msg.shard_id
        r.Msg.shards r.Msg.nonce r.Msg.attempt (show_mech_reply r.Msg.reply))
    gen_report

let prop_msg_roundtrip =
  qtest ~count:500 "decode-of-encode-is-identity" report_arb (fun r ->
      match Msg.decode (Msg.encode r) with
      | Ok r' ->
          r = r'
          || QCheck.Test.fail_reportf "roundtrip changed the report: %s vs %s"
               (show_mech_reply r.Msg.reply)
               (show_mech_reply r'.Msg.reply)
      | Error e ->
          QCheck.Test.fail_reportf "exact encoding rejected: %s"
            (Codec.error_message e))

(* Every truncation and every single-bit flip of an encoding is rejected
   with a typed error — never an exception, never a misread report. *)
let prop_msg_damage_rejected =
  qtest ~count:300 "torn-or-flipped-encodings-rejected"
    QCheck.(pair report_arb (int_range 0 1_000_000))
    (fun (r, salt) ->
      let bytes = Msg.encode r in
      let len = String.length bytes in
      let cut = salt mod len in
      (match Msg.decode (String.sub bytes 0 cut) with
      | Error _ -> ()
      | Ok _ -> QCheck.Test.fail_reportf "truncation at %d decoded" cut);
      (match Msg.decode (bytes ^ "x") with
      | Error _ -> ()
      | Ok _ -> QCheck.Test.fail_report "trailing byte decoded");
      let pos = salt mod len and bit = salt mod 8 in
      let flipped = Bytes.of_string bytes in
      Bytes.set flipped pos
        (Char.chr (Char.code (Bytes.get flipped pos) lxor (1 lsl bit)));
      match Msg.decode (Bytes.to_string flipped) with
      | Error _ -> true
      | Ok _ ->
          QCheck.Test.fail_reportf "bit %d of byte %d flipped yet decoded" bit
            pos)

let test_msg_foreign_version_rejected () =
  let r =
    {
      Msg.shard_id = 0;
      shards = 2;
      nonce = 7;
      attempt = 1;
      watch_mask = 1;
      watched_boxes = 3;
      skipped_boxes = 0;
      reply = { Mechanism.response = Mechanism.Denied "\xce\x9b"; steps = 4 };
    }
  in
  let payload =
    match Frame.one (Msg.encode r) with
    | Ok p -> p
    | Error e -> Alcotest.failf "frame unreadable: %s" (Codec.error_message e)
  in
  (* The payload opens with the codec's version stamp; splice in a foreign
     one and re-frame. The CRC is fresh, so only the version check can
     reject it — and it must. *)
  let version_prefix =
    let w = Codec.W.create () in
    Codec.write_version w;
    Codec.W.contents w
  in
  let vlen = String.length version_prefix in
  Alcotest.(check string)
    "payload opens with the version stamp" version_prefix
    (String.sub payload 0 vlen);
  let foreign =
    let w = Codec.W.create () in
    Codec.write_version ~version:(Codec.format_version + 1) w;
    Codec.W.contents w ^ String.sub payload vlen (String.length payload - vlen)
  in
  match Msg.decode (Frame.frame foreign) with
  | Error (Codec.Bad_version _) -> ()
  | Error e ->
      Alcotest.failf "expected Bad_version, got %s" (Codec.error_message e)
  | Ok _ -> Alcotest.fail "foreign-version report decoded"

let test_msg_content_equal_ignores_attempt () =
  let r =
    {
      Msg.shard_id = 1;
      shards = 3;
      nonce = 9;
      attempt = 1;
      watch_mask = 2;
      watched_boxes = 5;
      skipped_boxes = 1;
      reply = { Mechanism.response = Mechanism.Granted (Value.int 3); steps = 6 };
    }
  in
  Alcotest.(check bool)
    "retransmission with a bumped attempt is the same report" true
    (Msg.content_equal r { r with Msg.attempt = 3 });
  Alcotest.(check bool)
    "a different verdict is a disagreement" false
    (Msg.content_equal r
       {
         r with
         Msg.reply =
           { Mechanism.response = Mechanism.Granted (Value.int 4); steps = 6 };
       })

(* --- fixtures for merge tests ------------------------------------------- *)

(* `forgetting` under its allow policy: the space holds both condemning
   (Λ) and granting inputs — found by scanning, not hard-coded. *)
let entry = Paper.forgetting

let policy =
  match Policy.allowed_indices entry.Paper.policy with
  | Some _ -> entry.Paper.policy
  | None -> Alcotest.fail "the entry's policy must be allow(J)"

let graph = Paper.graph entry

let clean_mech =
  Dynamic.mechanism (Dynamic.config ~mode:Dynamic.Surveillance policy) graph

(* The distributed baseline: the guarded single enforcer, exactly what the
   coordinator promises to reconstruct bit-for-bit when undisturbed. *)
let guarded_reply a =
  Guard.reply_of_outcome (Guard.run ~config:Guard.default clean_mech a)

let find_input pred =
  match
    Seq.find
      (fun a -> pred (Mechanism.respond clean_mech a).Mechanism.response)
      (Space.enumerate entry.Paper.space)
  with
  | Some a -> a
  | None -> Alcotest.fail "the entry space lacks the wanted verdict"

let denying_input =
  find_input (function
    | Mechanism.Denied n -> n = Dynamic.notice
    | _ -> false)

let granting_input = find_input (function Mechanism.Granted _ -> true | _ -> false)

let make_shards ?journal n =
  let slices =
    Shard.slices ~shards:n ~arity:graph.Graph.arity
      ~allowed:(Option.get (Policy.allowed_indices policy))
  in
  Array.map
    (fun sl ->
      Shard.create ?journal ~mode:Dynamic.Surveillance sl graph)
    slices

let enforce ?config ?net shards a =
  Coordinator.enforce ?config ?net ~nonce:(Coordinator.fresh_nonce ()) shards a

(* --- the merge ----------------------------------------------------------- *)

let test_fault_free_parity () =
  List.iter
    (fun a ->
      let clean = guarded_reply a in
      List.iter
        (fun n ->
          let r, stats = enforce (make_shards n) a in
          Alcotest.check reply_testable
            (Printf.sprintf "%d shards, perfect network" n)
            clean r;
          Alcotest.(check bool) "complete" true stats.Coordinator.complete;
          let rj, _ =
            enforce
              (make_shards ~journal:(fun () -> Media.memory ()) n)
              a
          in
          Alcotest.check reply_testable
            (Printf.sprintf "%d journaled shards" n)
            clean rj)
        [ 1; 2; 3; 5; 8 ])
    [ denying_input; granting_input ]

(* Duplicated, reordered and delayed deliveries never change the verdict:
   the merge is idempotent over content, and the default deadline covers
   the worst delay. *)
let prop_merge_idempotent_under_disorder =
  qtest ~count:100 "duplicate-reorder-delay-keep-the-reply"
    QCheck.(pair (int_range 0 1_000_000) (int_range 2 5))
    (fun (seed, n) ->
      List.iter
        (fun a ->
          let clean = guarded_reply a in
          List.iter
            (fun kinds ->
              let net = Net.create ~seed ~rate:100 ~kinds () in
              let r, _ = enforce ~net (make_shards n) a in
              if r <> clean then
                QCheck.Test.fail_reportf
                  "disordered delivery changed the reply: %s vs %s"
                  (show_mech_reply r) (show_mech_reply clean))
            [
              [ Net.Duplicate ];
              [ Net.Reorder ];
              [ Net.Delay ];
              [ Net.Duplicate; Net.Reorder; Net.Delay ];
            ])
        [ denying_input; granting_input ];
      true)

let test_total_loss_is_partition () =
  let net = Net.create ~seed:11 ~rate:100 ~kinds:[ Net.Drop ] () in
  let r, stats = enforce ~net (make_shards 3) granting_input in
  (match r.Mechanism.response with
  | Mechanism.Denied n when n = Coordinator.partition_notice -> ()
  | _ -> Alcotest.failf "expected Λ/partition, got %s" (show_mech_reply r));
  Alcotest.(check bool) "incomplete" false stats.Coordinator.complete;
  Alcotest.(check bool) "retransmissions were attempted" true
    (stats.Coordinator.retransmits > 0);
  Alcotest.(check int)
    "backoff charged into the reply" stats.Coordinator.backoff_steps
    r.Mechanism.steps

let test_killed_shard_grants_become_partition () =
  let shards = make_shards 3 in
  Shard.kill shards.(1);
  let r, stats = enforce shards granting_input in
  (match r.Mechanism.response with
  | Mechanism.Denied n when n = Coordinator.partition_notice -> ()
  | _ ->
      Alcotest.failf "a grant must not survive a lost shard: %s"
        (show_mech_reply r));
  Alcotest.(check int) "one shard lost" 1 stats.Coordinator.lost

let test_killed_shard_never_grants_and_can_deny () =
  let clean = guarded_reply denying_input in
  let delivered = ref 0 in
  for victim = 0 to 2 do
    let shards = make_shards 3 in
    Shard.kill shards.(victim);
    let r, stats = enforce shards denying_input in
    (match r.Mechanism.response with
    | Mechanism.Granted _ ->
        Alcotest.failf "kill of shard %d produced a grant" victim
    | Mechanism.Denied n ->
        if n = Dynamic.notice || n = Dynamic.fuel_notice then begin
          (* A surviving monitor denial: valid whatever the dead shard
             would have said, delivered with the backoff surcharge. *)
          incr delivered;
          if r.Mechanism.response = clean.Mechanism.response then
            Alcotest.(check int) "clean denial plus backoff"
              (clean.Mechanism.steps + stats.Coordinator.backoff_steps)
              r.Mechanism.steps
        end
        else if n <> Coordinator.partition_notice then
          Alcotest.failf "unexpected notice %S" n
    | _ -> Alcotest.failf "non-F reply %s" (show_mech_reply r))
  done;
  (* The denial is owned by one shard; killing either other shard must
     still deliver a monitor denial. *)
  Alcotest.(check bool)
    "surviving monitor denials are delivered" true (!delivered >= 2)

let test_journaled_kill_recovers_via_retransmit () =
  List.iter
    (fun a ->
      let clean = guarded_reply a in
      let shards = make_shards ~journal:(fun () -> Media.memory ()) 3 in
      Shard.arm_kill shards.(0) 1;
      let r, stats = enforce shards a in
      Alcotest.(check bool) "a retransmission was needed" true
        (stats.Coordinator.retransmits > 0);
      Alcotest.(check bool) "the journal answered it" true
        (Shard.resumes shards.(0) > 0);
      Alcotest.(check bool) "merge completed" true stats.Coordinator.complete;
      Alcotest.(check bool) "verdict is the clean verdict" true
        (r.Mechanism.response = clean.Mechanism.response);
      Alcotest.(check int) "steps are clean plus backoff"
        (clean.Mechanism.steps + stats.Coordinator.backoff_steps)
        r.Mechanism.steps)
    [ denying_input; granting_input ]

let test_foreign_nonce_and_garbage_ignored () =
  let shards = make_shards 3 in
  let net = Net.create () in
  let nonce = Coordinator.fresh_nonce () in
  let stray =
    {
      Msg.shard_id = 0;
      shards = 3;
      nonce = nonce + 1;
      attempt = 1;
      watch_mask = Shard.watch_mask shards.(0);
      watched_boxes = 0;
      skipped_boxes = 0;
      reply = { Mechanism.response = Mechanism.Granted (Value.int 9); steps = 1 };
    }
  in
  Net.send net (Msg.encode stray);
  Net.send net "not a frame at all";
  let clean = guarded_reply denying_input in
  let r, stats = Coordinator.enforce ~net ~nonce shards denying_input in
  Alcotest.check reply_testable "stray traffic never changes the verdict"
    clean r;
  Alcotest.(check bool) "foreign nonce counted" true
    (stats.Coordinator.foreign >= 1);
  Alcotest.(check bool) "garbage counted as rejected" true
    (stats.Coordinator.rejected >= 1)

let test_zero_deadline_times_out_to_partition () =
  let shards = make_shards 2 in
  let config =
    { Coordinator.default with Coordinator.deadline_rounds = 0; retries = 0 }
  in
  let r, _ = enforce ~config shards granting_input in
  match r.Mechanism.response with
  | Mechanism.Denied n when n = Coordinator.partition_notice -> ()
  | _ -> Alcotest.failf "expected a timeout partition, got %s" (show_mech_reply r)

(* --- fault plans --------------------------------------------------------- *)

let test_plans_deterministic_and_described () =
  for seed = 0 to 24 do
    let p1 = Plan.generate ~shards:3 ~seed ()
    and p2 = Plan.generate ~shards:3 ~seed () in
    if Plan.describe p1 <> Plan.describe p2 then
      Alcotest.failf "plan %d not deterministic" seed
  done;
  let ff = Plan.fault_free ~shards:4 in
  Alcotest.(check bool) "fault-free plan says so" true (Plan.is_fault_free ff);
  Alcotest.(check int) "no kills" 0 (Plan.kills ff);
  Alcotest.(check int) "no faulty monitors" 0 (Plan.monitor_faults ff)

(* --- the Run facade ------------------------------------------------------ *)

let test_run_facade_parity_and_refusals () =
  List.iter
    (fun a ->
      let clean = guarded_reply a in
      List.iter
        (fun shards ->
          List.iter
            (fun jobs ->
              let cfg = Run.config ~policy ~shards ~jobs () in
              Alcotest.check reply_testable
                (Printf.sprintf "Run with %d shards, %d jobs" shards jobs)
                clean (Run.run cfg graph a))
            [ 1; 4 ])
        [ 2; 3; 5 ])
    [ denying_input; granting_input ];
  let refused msg f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.failf "%s: expected Invalid_argument" msg
  in
  refused "no policy" (fun () ->
      Run.run (Run.config ~shards:2 ()) graph denying_input);
  refused "residual conflicts" (fun () ->
      Run.run (Run.config ~policy ~shards:2 ~residual:true ()) graph
        denying_input);
  refused "zero shards" (fun () ->
      Run.run (Run.config ~policy ~shards:0 ()) graph denying_input)

let test_run_facade_metrics () =
  let m = Secpol_trace.Metrics.create () in
  let cfg = Run.config ~policy ~shards:3 ~metrics:m () in
  ignore (Run.run cfg graph denying_input);
  Alcotest.(check int) "one distributed run counted" 1
    (Secpol_trace.Metrics.counter_value m "run/dist/runs")

(* --- lifecycle events ----------------------------------------------------- *)

let test_dist_events_emitted_and_decodable () =
  let sink = Secpol_trace.Sink.memory () in
  let shards = make_shards 2 in
  let r, _ =
    Coordinator.enforce ~sink ~nonce:(Coordinator.fresh_nonce ()) shards
      denying_input
  in
  ignore r;
  let events = Secpol_trace.Sink.events sink in
  let dist_kinds =
    List.filter_map
      (function
        | Secpol_trace.Event.Dist { kind; _ } -> Some kind | _ -> None)
      events
  in
  Alcotest.(check bool) "shard starts traced" true
    (List.mem Secpol_trace.Event.Shard_start dist_kinds);
  Alcotest.(check bool) "shard replies traced" true
    (List.mem Secpol_trace.Event.Shard_reply dist_kinds);
  Alcotest.(check bool) "the merge is traced" true
    (List.mem Secpol_trace.Event.Merge dist_kinds);
  (* And the trace survives its own codec. *)
  List.iter
    (fun e ->
      match Secpol_trace.Event.of_jsonl (Secpol_trace.Event.to_jsonl e) with
      | Ok e' when Secpol_trace.Event.equal e e' -> ()
      | Ok _ -> Alcotest.fail "dist event changed through jsonl"
      | Error m -> Alcotest.failf "dist event undecodable: %s" m)
    events

let () =
  Alcotest.run "dist"
    [
      ("slices", [ prop_slices_partition ]);
      ( "wire",
        [
          prop_msg_roundtrip;
          prop_msg_damage_rejected;
          Alcotest.test_case "foreign-version" `Quick
            test_msg_foreign_version_rejected;
          Alcotest.test_case "content-equal" `Quick
            test_msg_content_equal_ignores_attempt;
        ] );
      ( "merge",
        [
          Alcotest.test_case "fault-free-parity" `Quick test_fault_free_parity;
          prop_merge_idempotent_under_disorder;
          Alcotest.test_case "total-loss-partition" `Quick
            test_total_loss_is_partition;
          Alcotest.test_case "killed-shard-grant" `Quick
            test_killed_shard_grants_become_partition;
          Alcotest.test_case "killed-shard-denial" `Quick
            test_killed_shard_never_grants_and_can_deny;
          Alcotest.test_case "journaled-recovery" `Quick
            test_journaled_kill_recovers_via_retransmit;
          Alcotest.test_case "stray-traffic" `Quick
            test_foreign_nonce_and_garbage_ignored;
          Alcotest.test_case "zero-deadline" `Quick
            test_zero_deadline_times_out_to_partition;
        ] );
      ( "plans",
        [
          Alcotest.test_case "deterministic" `Quick
            test_plans_deterministic_and_described;
        ] );
      ( "run-facade",
        [
          Alcotest.test_case "parity-and-refusals" `Quick
            test_run_facade_parity_and_refusals;
          Alcotest.test_case "metrics" `Quick test_run_facade_metrics;
        ] );
      ( "events",
        [
          Alcotest.test_case "lifecycle" `Quick
            test_dist_events_emitted_and_decodable;
        ] );
    ]
