(* Shared helpers for the test suites. *)

module Value = Secpol_core.Value
module Iset = Secpol_core.Iset
module Space = Secpol_core.Space
module Policy = Secpol_core.Policy
module Program = Secpol_core.Program
module Mechanism = Secpol_core.Mechanism
module Soundness = Secpol_core.Soundness
module Completeness = Secpol_core.Completeness
module Maximal = Secpol_core.Maximal

let ints l = Array.of_list (List.map Value.int l)

let value_testable = Alcotest.testable Value.pp Value.equal
let obs_testable = Alcotest.testable Program.Obs.pp Program.Obs.equal
let iset_testable = Alcotest.testable Iset.pp Iset.equal

let check_sound ?config msg policy m space =
  match Soundness.check ?config policy m space with
  | Soundness.Sound -> ()
  | Soundness.Unsound _ as v ->
      Alcotest.failf "%s: expected sound, got %a" msg Soundness.pp_verdict v

let check_unsound ?config msg policy m space =
  match Soundness.check ?config policy m space with
  | Soundness.Unsound _ -> ()
  | Soundness.Sound -> Alcotest.failf "%s: expected unsound, got sound" msg

(* The response a mechanism gives on a concrete input, collapsed for easy
   assertions: [Ok v] for a grant, [Error notice] otherwise. *)
let respond m inputs =
  match (Mechanism.respond m (ints inputs)).Mechanism.response with
  | Mechanism.Granted v -> Ok v
  | Mechanism.Denied n -> Error n
  | Mechanism.Hung -> Error "<hung>"
  | Mechanism.Failed msg -> Error ("<failed: " ^ msg ^ ">")

let check_grants msg m inputs expected =
  match respond m inputs with
  | Ok v -> Alcotest.check value_testable msg (Value.int expected) v
  | Error e -> Alcotest.failf "%s: expected grant of %d, got %s" msg expected e

let check_denies msg m inputs =
  match respond m inputs with
  | Ok v -> Alcotest.failf "%s: expected denial, got %a" msg Value.pp v
  | Error _ -> ()

let ratio m ~q space = Completeness.ratio m ~q space

let check_ratio msg ~expected m ~q space =
  let r = ratio m ~q space in
  if Float.abs (r -. expected) > 1e-9 then
    Alcotest.failf "%s: expected completeness %.3f, measured %.3f" msg expected r

let show_mech_reply (r : Mechanism.reply) =
  let resp =
    match r.Mechanism.response with
    | Mechanism.Granted v -> "granted " ^ Value.to_string v
    | Mechanism.Denied n -> "denied " ^ n
    | Mechanism.Hung -> "hung"
    | Mechanism.Failed m -> "failed: " ^ m
  in
  Printf.sprintf "%s (%d steps)" resp r.Mechanism.steps

let qtest ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest ~verbose:false
    (QCheck.Test.make ~count ~name gen prop)

(* The example-program expectation table shared with `make lint-corpus` /
   `make certify-corpus`: one line per .spl file —
   [file lint_verdict certify_verdict rules] with verdicts proved|refuted
   and rules a comma-separated list ("-" for none). *)
type manifest_row = {
  mf_file : string;
  mf_lint_certified : bool;
  mf_certify_verdict : string;
  mf_lint_rules : string list;
}

let corpus_manifest_path = "../examples/programs/corpus.manifest"

let load_corpus_manifest () =
  let ic = open_in corpus_manifest_path in
  let certified = function
    | "proved" -> true
    | "refuted" -> false
    | v -> failwith (Printf.sprintf "%s: bad verdict %S" corpus_manifest_path v)
  in
  let rec loop rows =
    match input_line ic with
    | exception End_of_file ->
        close_in ic;
        List.rev rows
    | line -> (
        let line = String.trim line in
        if line = "" || line.[0] = '#' then loop rows
        else
          match
            String.split_on_char ' ' line
            |> List.filter (fun s -> s <> "")
          with
          | [ file; lint_v; certify_v; rules ] ->
              loop
                ({
                   mf_file = file;
                   mf_lint_certified = certified lint_v;
                   mf_certify_verdict = certify_v;
                   mf_lint_rules =
                     (if rules = "-" then []
                      else String.split_on_char ',' rules);
                 }
                :: rows)
          | _ ->
              failwith
                (Printf.sprintf "%s: malformed line %S" corpus_manifest_path
                   line))
  in
  loop []
