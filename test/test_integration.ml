(* Cross-library integration: the whole paper-programs corpus pushed through
   every mechanism at once, the join of heterogeneous mechanisms, the
   Theorem 4 / Ruzzo construction over Minsky machines, and the residual
   termination channel that bounds what static certification can promise. *)

open Util
module Iset = Secpol_core.Iset
module Ast = Secpol_flowgraph.Ast
module Var = Secpol_flowgraph.Var
module Expr = Secpol_flowgraph.Expr
module Compile = Secpol_flowgraph.Compile
module Interp = Secpol_flowgraph.Interp
module Dynamic = Secpol_taint.Dynamic
module Instrument = Secpol_taint.Instrument
module Certify = Secpol_staticflow.Certify
module Halt_guard = Secpol_staticflow.Halt_guard
module Transforms = Secpol_transform.Transforms
module Machine = Secpol_minsky.Machine
module Paper = Secpol_corpus.Paper_programs
module Leakage = Secpol_probe.Leakage
open Expr.Build

(* Every mechanism the library can construct for a structured program. *)
let mechanisms_for (e : Paper.entry) =
  let g = Paper.graph e in
  let policy = e.Paper.policy in
  [
    ("high-water", Dynamic.mechanism (Dynamic.config ~mode:Dynamic.High_water policy) g);
    ("surveillance", Dynamic.mechanism (Dynamic.config ~mode:Dynamic.Surveillance policy) g);
    ("timed", Dynamic.mechanism (Dynamic.config ~mode:Dynamic.Timed policy) g);
    ("instrumented", Instrument.mechanism Instrument.Untimed ~policy g);
    ("static", Certify.mechanism ~policy e.Paper.prog);
    ("halt-guard", Halt_guard.mechanism ~policy g);
  ]

(* The library-wide contract: every constructed mechanism is (1) a protection
   mechanism for Q and (2) sound, on every corpus entry. (Scoped is excluded:
   it is the deliberate counterexample.) *)
let test_all_mechanisms_protect_and_are_sound () =
  List.iter
    (fun (e : Paper.entry) ->
      let q = Paper.program e in
      List.iter
        (fun (label, m) ->
          (match Mechanism.check_protects m q e.Paper.space with
          | Ok () -> ()
          | Error _ ->
              Alcotest.failf "%s/%s: not a protection mechanism" e.Paper.name label);
          check_sound
            (Printf.sprintf "%s/%s" e.Paper.name label)
            e.Paper.policy m e.Paper.space;
          (* Zero measured leakage, by the information-theoretic meter too. *)
          if not (Leakage.is_tight (Leakage.of_mechanism e.Paper.policy m e.Paper.space))
          then Alcotest.failf "%s/%s: leaks bits" e.Paper.name label)
        (mechanisms_for e))
    Paper.all

(* Maximal dominates everything, on every corpus entry. *)
let test_maximal_dominates_everything () =
  List.iter
    (fun (e : Paper.entry) ->
      let q = Paper.program e in
      let mx = Maximal.build e.Paper.policy q e.Paper.space in
      List.iter
        (fun (label, m) ->
          match Completeness.as_complete_as mx m ~q e.Paper.space with
          | Ok () -> ()
          | Error _ -> Alcotest.failf "%s/%s: beats the maximal mechanism!" e.Paper.name label)
        (mechanisms_for e))
    Paper.all

(* Joining a dynamic and a static mechanism: Theorem 1 across kinds. On ex8,
   surveillance serves x1 = 1; a hand-built sound mechanism serves x1 = 3;
   their join serves both quarters. *)
let test_heterogeneous_join () =
  let e = Paper.ex8 in
  let q = Paper.program e in
  let ms = Dynamic.mechanism (Dynamic.config ~mode:Dynamic.Surveillance e.Paper.policy) (Paper.graph e) in
  let serves_three =
    Mechanism.make ~name:"x1=3" ~arity:2 (fun a ->
        if Value.to_int a.(1) = 3 then
          let o = Program.run q a in
          match o.Program.result with
          | Program.Value v -> { Mechanism.response = Mechanism.Granted v; steps = 1 }
          | _ -> { Mechanism.response = Mechanism.Hung; steps = 1 }
        else { Mechanism.response = Mechanism.Denied "\xce\x9b"; steps = 1 })
  in
  (* x1 = 3 forces the else branch: Q = x0... that depends on x0, which is
     disallowed! Serving it would be unsound - verify the checker agrees. *)
  check_unsound "serving x1=3 here is unsound" e.Paper.policy serves_three
    e.Paper.space;
  (* A genuinely sound partial ally: serve x1 = 1 oddly-timed. *)
  let serves_one =
    Mechanism.make ~name:"x1=1" ~arity:2 (fun a ->
        if Value.to_int a.(1) = 1 then
          { Mechanism.response = Mechanism.Granted (Value.int 1); steps = 9 }
        else { Mechanism.response = Mechanism.Denied "other" ; steps = 9 })
  in
  check_sound "ally sound" e.Paper.policy serves_one e.Paper.space;
  let j = Mechanism.join ms serves_one in
  check_sound "join sound" e.Paper.policy j e.Paper.space;
  check_ratio "join = surveillance here (same grants)" ~expected:0.25 j ~q
    e.Paper.space

(* Theorem 4 via Ruzzo's construction: Q_M(x0) = 1 iff machine M halts in
   at most x0 steps. The maximal mechanism for allow() is constant iff M's
   halting horizon lies outside the domain — brute force decides it per
   finite domain, but the bound needed grows with M, which is the content
   of the impossibility. *)
let ruzzo_program (m : Machine.t) ~machine_input =
  Program.of_fun
    ~name:("ruzzo-" ^ m.Machine.name)
    ~arity:1
    (fun a ->
      Value.int
        (if Machine.halts_within m ~fuel:(Value.to_int a.(0)) machine_input then 1
         else 0))

let test_thm4_ruzzo_minsky () =
  let space = Space.ints ~lo:0 ~hi:40 ~arity:1 in
  (* looper on input 1 never halts: Q is constantly 0, maximal serves all. *)
  let q_spin = ruzzo_program Machine.Zoo.looper ~machine_input:[| 1 |] in
  let mx_spin = Maximal.build Policy.allow_none q_spin space in
  check_ratio "non-halting machine: constant, fully served" ~expected:1.0
    mx_spin ~q:q_spin space;
  (* looper on input 0 halts quickly: Q flips 0 -> 1 inside the domain. *)
  let q_halt = ruzzo_program Machine.Zoo.looper ~machine_input:[| 0 |] in
  let mx_halt = Maximal.build Policy.allow_none q_halt space in
  check_ratio "halting machine: non-constant, nothing served" ~expected:0.0
    mx_halt ~q:q_halt space;
  (* adder halts too, but only after its input-dependent run time; the flip
     point moves with the machine — the 'unbounded search' the theorem
     turns into undecidability. *)
  let q_adder = ruzzo_program Machine.Zoo.adder ~machine_input:[| 5; 5 |] in
  let mx_adder = Maximal.build Policy.allow_none q_adder space in
  let r = Completeness.ratio mx_adder ~q:q_adder space in
  Alcotest.(check (float 1e-9)) "adder flips inside the domain" 0.0 r

(* Ruzzo's exact construction: Q(x0, x1) = 1 iff the machine halts on x0
   after EXACTLY x1 steps, under allow(0). The maximal mechanism denies a
   whole x0-class precisely when the machine halts on x0 within the x1
   domain — its denial pattern IS the machine's halting set, which is why
   it "need not be recursive (even when Q and I are)". *)
let test_ruzzo_exact_steps () =
  let exact_steps m =
    Program.of_fun ~name:"ruzzo-exact" ~arity:2 (fun a ->
        let x = Value.to_int a.(0) and t = Value.to_int a.(1) in
        let o = Machine.run ~fuel:(t + 1) m [| x |] in
        match o.Program.result with
        | Program.Value _ when o.Program.steps = t -> Value.int 1
        | _ -> Value.int 0)
  in
  (* looper halts on 0 (in 1 step) and spins on positive inputs. *)
  let q = exact_steps Machine.Zoo.looper in
  let space =
    Space.make
      [|
        Array.init 3 Value.int (* x0: machine input *);
        Array.init 30 Value.int (* x1: step counts probed *);
      |]
  in
  let policy = Policy.allow [ 0 ] in
  let mx = Maximal.build policy q space in
  let denied_class x =
    match
      (Mechanism.respond mx [| Value.int x; Value.int 0 |]).Mechanism.response
    with
    | Mechanism.Denied _ -> true
    | _ -> false
  in
  Alcotest.(check bool) "class of a halting input is denied" true (denied_class 0);
  Alcotest.(check bool) "classes of spinning inputs are served" false (denied_class 1);
  Alcotest.(check bool) "ditto" false (denied_class 2);
  (* The denial pattern equals the halting set on this domain. *)
  List.iter
    (fun x ->
      Alcotest.(check bool)
        (Printf.sprintf "denied(%d) = halts(%d)" x x)
        (Machine.halts_within Machine.Zoo.looper ~fuel:30 [| x |])
        (denied_class x))
    [ 0; 1; 2 ]

(* Theorem 4's flowchart family, as in the paper's proof. *)
let test_thm4_flowchart_family () =
  let zero = Paper.thm4_family (fun _ -> 0) ~name:"thm4-zero" in
  let spike = Paper.thm4_family (fun v -> if v = 5 then 1 else 0) ~name:"thm4-spike" in
  List.iter
    (fun ((e : Paper.entry), expect) ->
      let q = Paper.program e in
      let mx = Maximal.build e.Paper.policy q e.Paper.space in
      check_ratio (e.Paper.name ^ ": maximal ratio") ~expected:expect mx ~q
        e.Paper.space;
      (* Surveillance cannot tell the two cases apart: denies both. *)
      let ms =
        Dynamic.mechanism (Dynamic.config ~mode:Dynamic.Surveillance e.Paper.policy) (Paper.graph e)
      in
      check_ratio (e.Paper.name ^ ": surveillance blind") ~expected:0.0 ms ~q
        e.Paper.space)
    [ (zero, 1.0); (spike, 0.0) ]

(* The termination channel: static certification (and Theorem 3) promise
   soundness for TERMINATING programs with unobservable time. A program that
   diverges exactly when the secret is positive slips through any mechanism
   that runs Q unmodified. *)
let test_termination_channel () =
  let p =
    Ast.prog ~name:"spin-if-positive" ~arity:1
      (Ast.While (x 0 >: i 0, Ast.Skip))
  in
  Alcotest.(check bool) "certifier accepts (y is untouched)" true
    (Certify.certified ~policy:Policy.allow_none p);
  let q = Interp.ast_program ~fuel:200 p in
  let space = Space.ints ~lo:0 ~hi:2 ~arity:1 in
  (* The 'certified' static mechanism runs Q as-is and hangs on positives:
     observable divergence distinguishes the class. *)
  check_unsound "termination leaks through the certified program"
    Policy.allow_none
    (Certify.mechanism ~fuel:200 ~policy:Policy.allow_none p)
    space;
  (* The timed surveillance mechanism kills the run at the tainted decision
     and stays sound even against the divergence observer. *)
  let mt = Dynamic.mechanism (Dynamic.config ~fuel:200 ~mode:Dynamic.Timed Policy.allow_none) (Compile.compile p) in
  check_sound "timed surveillance closes it" Policy.allow_none mt space;
  ignore q

(* Instrumented mechanisms compose with the core combinators like any other:
   join(instrumented, static) obeys Theorem 1 on the whole corpus. *)
let test_join_instrumented_static () =
  List.iter
    (fun (e : Paper.entry) ->
      let q = Paper.program e in
      let g = Paper.graph e in
      let mi = Instrument.mechanism Instrument.Untimed ~policy:e.Paper.policy g in
      let mst = Certify.mechanism ~policy:e.Paper.policy e.Paper.prog in
      let j = Mechanism.join mi mst in
      check_sound (e.Paper.name ^ ": join sound") e.Paper.policy j e.Paper.space;
      (match Completeness.as_complete_as j mi ~q e.Paper.space with
      | Ok () -> ()
      | Error _ -> Alcotest.failf "%s: join >= instrumented fails" e.Paper.name);
      match Completeness.as_complete_as j mst ~q e.Paper.space with
      | Ok () -> ()
      | Error _ -> Alcotest.failf "%s: join >= static fails" e.Paper.name)
    Paper.all

let () =
  Alcotest.run "secpol-integration"
    [
      ( "corpus",
        [
          Alcotest.test_case "all-mechanisms-sound" `Slow test_all_mechanisms_protect_and_are_sound;
          Alcotest.test_case "maximal-dominates" `Slow test_maximal_dominates_everything;
        ] );
      ( "join",
        [
          Alcotest.test_case "heterogeneous" `Quick test_heterogeneous_join;
          Alcotest.test_case "instrumented-static" `Slow test_join_instrumented_static;
        ] );
      ( "theorem4",
        [
          Alcotest.test_case "ruzzo-minsky" `Quick test_thm4_ruzzo_minsky;
          Alcotest.test_case "ruzzo-exact-steps" `Quick test_ruzzo_exact_steps;
          Alcotest.test_case "flowchart-family" `Quick test_thm4_flowchart_family;
        ] );
      ( "limits",
        [ Alcotest.test_case "termination-channel" `Quick test_termination_channel ] );
    ]
