(* The static policy certifier: label-lattice policies, verdict semantics
   (Proved / Refuted / Unknown), residual-monitor parity, cache pre-seeding,
   and the differential gates tying the certifier to the dynamic monitors
   on corpus and random programs. *)

open Util
module Expr = Secpol_flowgraph.Expr
module Var = Secpol_flowgraph.Var
module Ast = Secpol_flowgraph.Ast
module Graph = Secpol_flowgraph.Graph
module Compile = Secpol_flowgraph.Compile
module Certifier = Secpol_staticflow.Certifier
module Dynamic = Secpol_taint.Dynamic
module Label = Secpol_core.Lattice.Label
module Paper = Secpol_corpus.Paper_programs
module Generator = Secpol_corpus.Generator
module Source = Secpol_lang.Source
module Run = Secpol.Run
module Static = Secpol.Static
module Cache = Secpol_engine.Cache
module Memo = Secpol_engine.Memo
module Runner = Secpol_journal.Runner
module Metrics = Secpol_trace.Metrics
open Expr.Build

let examples_dir = "../examples/programs"

let load_spl file =
  let path = Filename.concat examples_dir file in
  match Source.load_with_hint path with
  | Ok (prog, hint) -> (prog, hint)
  | Error m -> Alcotest.failf "%s: %s" file m

(* Every subset of the program's input indices, as allowed sets. *)
let all_allowed_sets arity = List.init (1 lsl arity) Iset.of_mask

let verdict_of report = Certifier.verdict_name report.Certifier.verdict

let check_reply msg want got =
  if want <> got then
    Alcotest.failf "%s: %s vs %s" msg (show_mech_reply want) (show_mech_reply got)

(* A condemnation is a denial with a notice other than the fuel watchdog's:
   Proved programs may still exhaust fuel, never issue Λ proper. *)
let condemned (reply : Mechanism.reply) =
  match reply.Mechanism.response with
  | Mechanism.Denied n -> n <> Dynamic.fuel_notice
  | _ -> false

(* --- Label lattices ----------------------------------------------------- *)

let chain3 = Label.chain ~name:"c3" [ "low"; "mid"; "high" ]
let test_orders = [ Label.two_point; Label.diamond; chain3 ]

let test_lattice_laws () =
  List.iter
    (fun ord ->
      let ls = Label.levels ord in
      let name = Label.name ord in
      List.iter
        (fun a ->
          Alcotest.(check bool)
            (name ^ ": leq refl") true (Label.leq ord a a);
          Alcotest.(check string)
            (name ^ ": bottom is unit of join")
            a
            (Label.join ord (Label.bottom ord) a);
          Alcotest.(check string)
            (name ^ ": top absorbs join")
            (Label.top ord)
            (Label.join ord (Label.top ord) a);
          List.iter
            (fun b ->
              Alcotest.(check string)
                (name ^ ": join comm") (Label.join ord a b) (Label.join ord b a);
              Alcotest.(check string)
                (name ^ ": meet comm") (Label.meet ord a b) (Label.meet ord b a);
              Alcotest.(check string)
                (name ^ ": absorption")
                a
                (Label.join ord a (Label.meet ord a b));
              Alcotest.(check bool)
                (name ^ ": leq iff join")
                (Label.leq ord a b)
                (Label.join ord a b = b);
              List.iter
                (fun c ->
                  Alcotest.(check string)
                    (name ^ ": join assoc")
                    (Label.join ord a (Label.join ord b c))
                    (Label.join ord (Label.join ord a b) c);
                  Alcotest.(check string)
                    (name ^ ": meet assoc")
                    (Label.meet ord a (Label.meet ord b c))
                    (Label.meet ord (Label.meet ord a b) c))
                ls)
            ls)
        ls)
    test_orders

let expect_invalid msg f =
  match f () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.failf "%s: expected Invalid_argument" msg

let test_order_rejects () =
  (* a, b below both c and d: {a, b} has two minimal upper bounds, so no
     least one — a partial order but not a lattice. *)
  expect_invalid "no unique join" (fun () ->
      Label.order ~name:"m2" ~levels:[ "a"; "b"; "c"; "d" ]
        ~covers:[ ("a", "c"); ("a", "d"); ("b", "c"); ("b", "d") ]);
  expect_invalid "cycle" (fun () ->
      Label.order ~name:"cyc" ~levels:[ "a"; "b" ]
        ~covers:[ ("a", "b"); ("b", "a") ]);
  expect_invalid "duplicate level" (fun () ->
      Label.order ~name:"dup" ~levels:[ "a"; "a" ] ~covers:[]);
  expect_invalid "unknown cover name" (fun () ->
      Label.order ~name:"unk" ~levels:[ "a" ] ~covers:[ ("a", "z") ]);
  expect_invalid "unknown label in policy" (fun () ->
      Label.policy ~order:Label.two_point ~labels:[ "low"; "hi" ]
        ~clearance:"low");
  expect_invalid "unknown clearance" (fun () ->
      Label.policy ~order:Label.two_point ~labels:[ "low" ] ~clearance:"zz")

let test_of_allow_roundtrip () =
  let arity = 3 in
  List.iter
    (fun allowed ->
      let lp = Label.of_allow ~arity allowed in
      Alcotest.check iset_testable "allowed_of inverts of_allow" allowed
        (Label.allowed_of lp);
      Alcotest.(check (option (list int)))
        "to_policy induces allow(J)"
        (Some (Iset.to_list allowed))
        (Option.map Iset.to_list
           (Policy.allowed_indices (Label.to_policy lp))))
    (all_allowed_sets arity)

let test_output_label () =
  let lp =
    Label.policy ~order:Label.diamond ~labels:[ "left"; "right"; "bot" ]
      ~clearance:"top"
  in
  Alcotest.check iset_testable "everything flows to top"
    (Iset.of_list [ 0; 1; 2 ])
    (Label.allowed_of lp);
  Alcotest.(check string)
    "join of incomparables is top" "top"
    (Label.output_label lp (Iset.of_list [ 0; 1 ]));
  Alcotest.(check string)
    "single label" "left"
    (Label.output_label lp (Iset.singleton 0));
  Alcotest.(check string)
    "no deps: bottom" "bot"
    (Label.output_label lp Iset.empty);
  let mid =
    Label.policy ~order:chain3 ~labels:[ "low"; "mid"; "high" ]
      ~clearance:"mid"
  in
  Alcotest.check iset_testable "chain clearance cuts the chain"
    (Iset.of_list [ 0; 1 ])
    (Label.allowed_of mid)

(* --- Verdicts on hand-built programs ------------------------------------ *)

let compile name arity body = Compile.compile (Ast.prog ~name ~arity body)

let test_proved_direct () =
  let g = compile "copy-allowed" 2 (Ast.Assign (Var.Out, x 0)) in
  let report = Certifier.certify ~allowed:(Iset.singleton 0) g in
  Alcotest.(check string) "verdict" "proved" (verdict_of report);
  (* a Proved program's residual plan releases every box *)
  Alcotest.(check int)
    "no boxes watched" 0 report.Certifier.residual.Certifier.watched_boxes;
  Alcotest.(check bool)
    "some boxes released" true
    (report.Certifier.residual.Certifier.skipped_boxes > 0)

let test_refuted_direct () =
  let g = compile "copy-secret" 2 (Ast.Assign (Var.Out, x 1)) in
  let report = Certifier.certify ~allowed:(Iset.singleton 0) g in
  match report.Certifier.verdict with
  | Certifier.Refuted w ->
      Alcotest.(check bool)
        "not a fuel denial" true
        (w.Certifier.w_notice <> Dynamic.fuel_notice);
      let cfg =
        Dynamic.config ~mode:w.Certifier.w_mode (Policy.allow [ 0 ])
      in
      let reply = Dynamic.run cfg g w.Certifier.w_input in
      (match reply.Mechanism.response with
      | Mechanism.Denied n ->
          Alcotest.(check string) "witness notice replays" w.Certifier.w_notice n
      | _ ->
          Alcotest.failf "witness does not replay: %s" (show_mech_reply reply));
      Alcotest.(check bool)
        "witness carries a located finding" true
        (w.Certifier.w_finding <> None)
  | v -> Alcotest.failf "expected refuted, got %s" (Certifier.verdict_name v)

(* Statically the output may depend on x1 (one branch arm copies it), but on
   the witness-search space {0..2} the guard x0 < 0 never fires, so no
   monitor ever condemns: the certifier must answer Unknown. *)
let test_unknown () =
  let g =
    compile "guarded-secret" 2
      (Ast.If (x 0 <: i 0, Ast.Assign (Var.Out, x 1), Ast.Assign (Var.Out, x 0)))
  in
  let report = Certifier.certify ~allowed:(Iset.singleton 0) g in
  Alcotest.(check string) "verdict" "unknown" (verdict_of report);
  Alcotest.(check bool)
    "static deps include the secret" true
    (Iset.mem 1 report.Certifier.summary.Certifier.deps)

(* Surveillance forgets taint on overwrite and grants; only the high-water
   monitor condemns. The certifier abstracts high-water, so it refutes — and
   the witness must name the mode that actually condemns. *)
let test_high_water_witness () =
  let g =
    compile "overwrite-then-out" 2
      (Ast.seq
         [
           Ast.Assign (Var.Reg 0, x 1);
           Ast.Assign (Var.Reg 0, i 0);
           Ast.Assign (Var.Out, r 0);
         ])
  in
  let report = Certifier.certify ~allowed:(Iset.singleton 0) g in
  match report.Certifier.verdict with
  | Certifier.Refuted w ->
      Alcotest.(check string)
        "only high-water condemns" "high-water"
        (Dynamic.mode_name w.Certifier.w_mode)
  | v -> Alcotest.failf "expected refuted, got %s" (Certifier.verdict_name v)

let test_corpus_poles () =
  let refuted = Certifier.certify_policy
      ~policy:Paper.loop_then_secretfree.Paper.policy
      (Paper.graph Paper.loop_then_secretfree)
  in
  Alcotest.(check string)
    "loop-then-secretfree refuted" "refuted" (verdict_of refuted);
  let proved =
    Certifier.certify_policy ~policy:Paper.branch_allowed.Paper.policy
      (Paper.graph Paper.branch_allowed)
  in
  Alcotest.(check string) "branch-allowed proved" "proved" (verdict_of proved);
  Alcotest.(check int)
    "proved watches nothing" 0
    proved.Certifier.residual.Certifier.watched_boxes;
  Alcotest.(check bool)
    "proved releases its boxes" true
    (proved.Certifier.residual.Certifier.skipped_boxes > 0)

(* --- QCheck: verdicts vs the dynamic monitors on random programs -------- *)

let gen_params = Generator.default
let gen_space = Generator.space_for gen_params

(* Proved ⇒ no monitor mode ever condemns, and the monitored mechanism is
   sound; Refuted ⇒ the witness replays to the recorded condemnation. *)
let prop_verdicts_vs_monitors prog =
  let g = Compile.compile prog in
  List.iter
    (fun allowed ->
      let report = Certifier.certify ~allowed g in
      match report.Certifier.verdict with
      | Certifier.Proved ->
          List.iter
            (fun mode ->
              let policy = Policy.allow_set allowed in
              let cfg = Dynamic.config ~mode policy in
              Seq.iter
                (fun a ->
                  let reply = Dynamic.run cfg g a in
                  if condemned reply then
                    Alcotest.failf "proved for %a yet %s condemns: %s"
                      Iset.pp allowed (Dynamic.mode_name mode)
                      (show_mech_reply reply))
                (Space.enumerate gen_space);
              check_sound "proved program is sound monitored" policy
                (Dynamic.mechanism cfg g) gen_space)
            Dynamic.all_modes
      | Certifier.Refuted w ->
          let cfg =
            Dynamic.config ~mode:w.Certifier.w_mode (Policy.allow_set allowed)
          in
          let reply = Dynamic.run cfg g w.Certifier.w_input in
          (match reply.Mechanism.response with
          | Mechanism.Denied n when n = w.Certifier.w_notice -> ()
          | _ ->
              Alcotest.failf "witness does not replay for %a: %s" Iset.pp
                allowed (show_mech_reply reply));
          if w.Certifier.w_notice = Dynamic.fuel_notice then
            Alcotest.fail "fuel exhaustion counted as a refutation"
      | Certifier.Unknown -> ())
    (all_allowed_sets prog.Ast.arity);
  true

(* The residual plan never changes a reply, in any mode, for any input. *)
let prop_residual_parity prog =
  let g = Compile.compile prog in
  List.iter
    (fun allowed ->
      let plan = Certifier.residual_plan ~allowed g in
      List.iter
        (fun mode ->
          let cfg = Dynamic.config ~mode (Policy.allow_set allowed) in
          Seq.iter
            (fun a ->
              let full = Dynamic.run cfg g a in
              let residual, _stats =
                Dynamic.run_residual cfg ~watch:plan.Certifier.watch g a
              in
              check_reply
                (Printf.sprintf "residual parity (%s, %s)"
                   (Dynamic.mode_name mode)
                   (Format.asprintf "%a" Iset.pp allowed))
                full residual)
            (Space.enumerate gen_space))
        Dynamic.all_modes)
    (all_allowed_sets prog.Ast.arity);
  true

(* --- Residual monitoring on the corpus ---------------------------------- *)

let test_residual_corpus () =
  List.iter
    (fun (e : Paper.entry) ->
      match Policy.allowed_indices e.Paper.policy with
      | None -> ()
      | Some allowed ->
          let g = Paper.graph e in
          let report = Certifier.certify ~allowed g in
          let plan = report.Certifier.residual in
          List.iter
            (fun mode ->
              let cfg = Dynamic.config ~mode e.Paper.policy in
              Seq.iter
                (fun a ->
                  let full = Dynamic.run cfg g a in
                  let residual, stats =
                    Dynamic.run_residual cfg ~watch:plan.Certifier.watch g a
                  in
                  check_reply
                    (Printf.sprintf "%s/%s residual parity" e.Paper.name
                       (Dynamic.mode_name mode))
                    full residual;
                  (* a Proved program commits no watched boxes at all *)
                  if report.Certifier.verdict = Certifier.Proved then
                    Alcotest.(check int)
                      (e.Paper.name ^ ": proved run watches nothing") 0
                      stats.Dynamic.watched_boxes)
                (Space.enumerate e.Paper.space))
            Dynamic.all_modes)
    Paper.all

let test_residual_chatty_refused () =
  let g = Paper.graph Paper.forgetting in
  let cfg =
    Dynamic.config ~mode:Dynamic.Surveillance ~chatty_notices:true
      Paper.forgetting.Paper.policy
  in
  let plan =
    Certifier.residual_plan
      ~allowed:(Option.get (Policy.allowed_indices Paper.forgetting.Paper.policy))
      g
  in
  expect_invalid "chatty notices break D-part-exactness" (fun () ->
      Dynamic.run_residual cfg ~watch:plan.Certifier.watch g (ints [ 1; 0 ]))

(* --- Run integration ----------------------------------------------------- *)

let test_run_residual () =
  let metrics = Metrics.create () in
  let total = ref 0 in
  List.iter
    (fun (e : Paper.entry) ->
      let g = Paper.graph e in
      let full = Run.config ~policy:e.Paper.policy () in
      let residual =
        Run.config ~policy:e.Paper.policy ~residual:true ~metrics ()
      in
      Seq.iter
        (fun a ->
          incr total;
          check_reply
            (e.Paper.name ^ ": residual Run parity")
            (Run.run full g a) (Run.run residual g a))
        (Space.enumerate e.Paper.space))
    [ Paper.forgetting; Paper.branch_allowed ];
  Alcotest.(check int)
    "every run counted" !total
    (Metrics.counter_value metrics "run/residual/runs");
  Alcotest.(check bool)
    "released boxes counted" true
    (Metrics.counter_value metrics "run/residual/skipped-boxes" > 0)

let test_run_residual_errors () =
  let g = Paper.graph Paper.forgetting in
  expect_invalid "residual without a policy" (fun () ->
      Run.mechanism (Run.config ~residual:true ()) g);
  expect_invalid "residual cannot journal" (fun () ->
      Run.mechanism
        (Run.config ~policy:Paper.forgetting.Paper.policy ~residual:true
           ~journal:(Run.journal_memory ~program_ref:"forgetting" ())
           ())
        g)

(* --- Cache pre-seeding --------------------------------------------------- *)

let memoized cache cfg g =
  match cfg.Run.policy with
  | Some policy ->
      Memo.mechanism ~cache ~digest:(Runner.graph_hash g)
        ~tag:(Static.cache_tag cfg) ~policy (Run.mechanism cfg g)
  | None -> Alcotest.fail "memoized: config has no policy"

let test_preseed_gcd () =
  let prog, hint = load_spl "gcd.spl" in
  let policy =
    match hint with
    | Some p -> p
    | None -> Alcotest.fail "gcd.spl lost its policy hint"
  in
  let g = Compile.compile prog in
  let cfg = Run.config ~policy () in
  let space = Space.ints ~lo:0 ~hi:3 ~arity:2 in
  let cache = Cache.create () in
  (match Static.preseed ~cache cfg g space with
  | Ok n ->
      (* both inputs allowed: every input is its own policy class *)
      Alcotest.(check int) "one class per input" (Space.size space) n
  | Error m -> Alcotest.failf "preseed failed: %s" m);
  let misses_after_seed = Cache.misses cache in
  let m = memoized cache cfg g in
  Seq.iter
    (fun a ->
      check_reply "preseeded reply is the monitored reply"
        (Run.run cfg g a) (Mechanism.respond m a))
    (Space.enumerate space);
  Alcotest.(check int)
    "no monitored run ever computed into the cache" misses_after_seed
    (Cache.misses cache);
  Alcotest.(check int) "every lookup hit" (Space.size space) (Cache.hits cache)

(* A Proved diverging program: the seeded plain outcome must surface as the
   monitor's fuel denial Λ/fuel at the same step count — both machines check
   the budget before committing a box. *)
let test_preseed_divergence () =
  let g =
    compile "spin" 1
      (Ast.seq
         [
           Ast.Assign (Var.Out, x 0);
           Ast.While (i 0 <: i 1, Ast.Assign (Var.Reg 0, i 0));
         ])
  in
  let cfg = Run.config ~policy:(Policy.allow [ 0 ]) ~fuel:200 () in
  let report = Static.certify cfg g in
  Alcotest.(check string)
    "no reachable halt: proved" "proved" (verdict_of report);
  let space = Space.ints ~lo:0 ~hi:2 ~arity:1 in
  let cache = Cache.create () in
  (match Static.preseed ~report ~cache cfg g space with
  | Ok n -> Alcotest.(check int) "three classes" 3 n
  | Error m -> Alcotest.failf "preseed failed: %s" m);
  let m = memoized cache cfg g in
  Seq.iter
    (fun a ->
      let cached = Mechanism.respond m a in
      (match cached.Mechanism.response with
      | Mechanism.Denied n when n = Dynamic.fuel_notice -> ()
      | _ ->
          Alcotest.failf "expected the fuel denial, got %s"
            (show_mech_reply cached));
      check_reply "fuel denial parity" (Run.run cfg g a) cached)
    (Space.enumerate space)

let test_preseed_errors () =
  let e = Paper.direct_flow in
  let g = Paper.graph e in
  let space = e.Paper.space in
  let refused msg cfg g =
    match Static.preseed ~cache:(Cache.create ()) cfg g space with
    | Error _ -> ()
    | Ok n -> Alcotest.failf "%s: seeded %d classes" msg n
  in
  refused "refuted program" (Run.config ~policy:e.Paper.policy ()) g;
  refused "no policy" (Run.config ()) g;
  refused "journaled config"
    (Run.config ~policy:e.Paper.policy
       ~journal:(Run.journal_memory ~program_ref:"direct-flow" ())
       ())
    g;
  let proved = Paper.branch_allowed in
  refused "guarded config"
    (Run.config ~policy:proved.Paper.policy
       ~guard:Secpol_fault.Guard.default ())
    (Paper.graph proved)

(* --- Differential: lattice policies reduce to allow(J) ------------------- *)

let test_label_reduction_corpus () =
  List.iter
    (fun (e : Paper.entry) ->
      let g = Paper.graph e in
      List.iter
        (fun allowed ->
          let direct = Certifier.certify ~allowed g in
          let lp = Label.of_allow ~arity:g.Graph.arity allowed in
          let via_labels = Certifier.certify_label ~policy:lp g in
          Alcotest.(check string)
            (Printf.sprintf "%s/%s: label reduction verdict" e.Paper.name
               (Format.asprintf "%a" Iset.pp allowed))
            (verdict_of direct) (verdict_of via_labels);
          (* Proved is exactly "the output label flows to the clearance"
             (plus clean control/fault channels, which deps already folds
             in) — on violation-free graphs. *)
          if not via_labels.Certifier.summary.Certifier.violation_halts then
            Alcotest.(check bool)
              (e.Paper.name ^ ": proved iff output label clears")
              (via_labels.Certifier.verdict = Certifier.Proved)
              (Label.leq Label.two_point
                 (Certifier.output_label ~policy:lp via_labels)
                 (Label.clearance lp)))
        (all_allowed_sets g.Graph.arity))
    Paper.all

let test_label_arity_mismatch () =
  let g = Paper.graph Paper.forgetting in
  expect_invalid "label arity must match the program" (fun () ->
      Certifier.certify_label
        ~policy:(Label.of_allow ~arity:3 (Iset.singleton 0))
        g)

let () =
  Alcotest.run "certifier"
    [
      ( "lattice",
        [
          Alcotest.test_case "lattice laws" `Quick test_lattice_laws;
          Alcotest.test_case "invalid orders rejected" `Quick test_order_rejects;
          Alcotest.test_case "of_allow round-trip" `Quick test_of_allow_roundtrip;
          Alcotest.test_case "output labels" `Quick test_output_label;
        ] );
      ( "verdicts",
        [
          Alcotest.test_case "proved: direct copy" `Quick test_proved_direct;
          Alcotest.test_case "refuted: direct leak" `Quick test_refuted_direct;
          Alcotest.test_case "unknown: unreachable leak" `Quick test_unknown;
          Alcotest.test_case "high-water witness" `Quick test_high_water_witness;
          Alcotest.test_case "corpus poles" `Quick test_corpus_poles;
        ] );
      ( "random",
        [
          qtest ~count:60 "verdicts vs every monitor"
            (Generator.arbitrary gen_params)
            prop_verdicts_vs_monitors;
          qtest ~count:60 "residual parity"
            (Generator.arbitrary gen_params)
            prop_residual_parity;
        ] );
      ( "residual",
        [
          Alcotest.test_case "corpus parity, all modes" `Quick
            test_residual_corpus;
          Alcotest.test_case "chatty notices refused" `Quick
            test_residual_chatty_refused;
          Alcotest.test_case "Run integration" `Quick test_run_residual;
          Alcotest.test_case "Run misuse rejected" `Quick
            test_run_residual_errors;
        ] );
      ( "preseed",
        [
          Alcotest.test_case "gcd: all hits" `Quick test_preseed_gcd;
          Alcotest.test_case "divergence parity" `Quick test_preseed_divergence;
          Alcotest.test_case "refusals" `Quick test_preseed_errors;
        ] );
      ( "labels",
        [
          Alcotest.test_case "corpus label reduction" `Quick
            test_label_reduction_corpus;
          Alcotest.test_case "arity mismatch" `Quick test_label_arity_mismatch;
        ] );
    ]
