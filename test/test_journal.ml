(* The durable enforcement runtime: binary codec (round-trips, version
   rejection, truncation), record framing (torn tails vs corruption), media
   semantics, and the journaled runner — kill at every crash point and
   resume bit-identically, replay idempotently, skip stale records, and
   degrade unrecoverable media to Λ/recovery. *)

open Util
module Iset = Secpol_core.Iset
module Dynamic = Secpol_taint.Dynamic
module Paper = Secpol_corpus.Paper_programs
module Codec = Secpol_journal.Codec
module Frame = Secpol_journal.Frame
module Media = Secpol_journal.Media
module Runner = Secpol_journal.Runner
module Guard = Secpol_fault.Guard

let entries = [ Paper.forgetting; Paper.branch_allowed; Paper.direct_flow ]

let resolve (h : Runner.header) =
  match
    List.find_opt (fun (e : Paper.entry) -> e.Paper.name = h.Runner.program_ref) Paper.all
  with
  | Some e -> Ok (Paper.graph e)
  | None -> Error ("unknown " ^ h.Runner.program_ref)

let cfg_of (e : Paper.entry) =
  Dynamic.config ~fuel:2000 ~mode:Dynamic.Surveillance e.Paper.policy

(* --- codec --------------------------------------------------------------- *)

let test_crc32_vectors () =
  (* The IEEE 802.3 check value; any table or reflection bug breaks it. *)
  Alcotest.(check int) "123456789" 0xCBF43926 (Codec.crc32 "123456789");
  Alcotest.(check int) "empty" 0 (Codec.crc32 "");
  Alcotest.(check bool) "sensitive to one bit" true
    (Codec.crc32 "123456789" <> Codec.crc32 "123456788")

let test_value_roundtrip () =
  let values =
    [
      Value.int 0;
      Value.int (-7);
      Value.int max_int;
      Value.int min_int;
      Value.Bool true;
      Value.Str "";
      Value.Str "x\x00y\xff";
      Value.Tuple [ Value.int 1; Value.Tuple [ Value.Bool false ]; Value.Str "s" ];
    ]
  in
  List.iter
    (fun v ->
      let b = Codec.W.create () in
      Codec.write_value b v;
      let r = Codec.R.of_string (Codec.W.contents b) in
      let v' = Codec.read_value r in
      if not (Value.equal v v') then
        Alcotest.failf "value %s did not round-trip" (Value.to_string v);
      Alcotest.(check bool) "consumed everything" true (Codec.R.eof r))
    values

(* A reachable interpreter state: run the machine a pseudo-random number of
   boxes into a pseudo-random corpus run. *)
let reachable_state seed =
  let e = List.nth entries (seed mod List.length entries) in
  let g = Paper.graph e in
  let cfg = cfg_of e in
  let m = Dynamic.prepare cfg g in
  let inputs = List.of_seq (Space.enumerate e.Paper.space) in
  let a = List.nth inputs (seed / 7 mod List.length inputs) in
  match Dynamic.start m a with
  | Error _ -> None
  | Ok st0 ->
      let rec go st k =
        if k = 0 then st
        else
          match Dynamic.step m st with
          | Dynamic.Final _ -> st
          | Dynamic.Step st' -> go st' (k - 1)
      in
      Some (g, go st0 (seed / 31 mod 9))

let prop_image_roundtrip =
  qtest ~count:400 "encode-decode-is-id-on-reachable-states"
    (QCheck.int_range 0 1_000_000) (fun seed ->
      match reachable_state seed with
      | None -> true
      | Some (g, st) -> (
          let im = Dynamic.image st in
          (match Codec.decode_image (Codec.encode_image im) with
          | Ok im' when Dynamic.image_equal im im' -> ()
          | Ok _ -> QCheck.Test.fail_report "decode(encode im) <> im"
          | Error e -> QCheck.Test.fail_report (Codec.error_message e));
          (* And the image really rebuilds the state: rehydrate, reflatten. *)
          match Dynamic.of_image g im with
          | Error m -> QCheck.Test.fail_report ("of_image refused: " ^ m)
          | Ok st' -> Dynamic.image_equal im (Dynamic.image st')))

(* Rehydrated states must also RUN identically, not just compare equal. *)
let prop_rehydrated_runs_identically =
  qtest ~count:200 "of-image-continues-bit-identically"
    (QCheck.int_range 0 1_000_000) (fun seed ->
      match reachable_state seed with
      | None -> true
      | Some (g, st) -> (
          let e = List.nth entries (seed mod List.length entries) in
          let m = Dynamic.prepare (cfg_of e) g in
          let direct = Dynamic.run_to_end m st in
          match Dynamic.of_image g (Dynamic.image st) with
          | Error msg -> QCheck.Test.fail_report msg
          | Ok st' ->
              let resumed = Dynamic.run_to_end m st' in
              if direct = resumed then true
              else QCheck.Test.fail_report "resumed run diverged from direct run"))

let test_version_rejected () =
  match reachable_state 5 with
  | None -> Alcotest.fail "no reachable state"
  | Some (_, st) -> (
      let im = Dynamic.image st in
      match Codec.decode_image (Codec.encode_image ~version:99 im) with
      | Error (Codec.Bad_version { got = 99; want }) ->
          Alcotest.(check int) "wants this build's layout" Codec.format_version want
      | Error e -> Alcotest.failf "wrong error: %s" (Codec.error_message e)
      | Ok _ -> Alcotest.fail "foreign layout version must be rejected")

let test_truncation_rejected () =
  match reachable_state 11 with
  | None -> Alcotest.fail "no reachable state"
  | Some (_, st) ->
      let s = Codec.encode_image (Dynamic.image st) in
      for cut = 0 to String.length s - 1 do
        match Codec.decode_image (String.sub s 0 cut) with
        | Error _ -> ()
        | Ok _ -> Alcotest.failf "prefix of %d bytes decoded as an image" cut
      done;
      (match Codec.decode_image (s ^ "x") with
      | Error (Codec.Malformed _) -> ()
      | _ -> Alcotest.fail "trailing bytes must be rejected")

let test_absurd_length_rejected () =
  (* A crafted inputs-array length around 2^61: the naive bound check
     [8 * n <= remaining] wraps and passes, and [Array.init] then blows up
     with an exception that is not a [decode_error]. Decode must instead
     return the typed error that degrades to Λ/recovery. *)
  let b = Codec.W.create () in
  Codec.write_version b;
  Codec.W.int b 0 (* im_node *);
  Codec.W.int b 0 (* im_steps *);
  Codec.W.int b 0x2000_0000_0000_0000 (* im_inputs length *);
  (match Codec.decode_image (Codec.W.contents b) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "absurd array length decoded as an image");
  (* Same overflow shape on the scoped-frames count, patched into an
     otherwise valid image (the frame count is the trailing word when the
     frame list is empty). *)
  match reachable_state 5 with
  | None -> Alcotest.fail "no reachable state"
  | Some (_, st) -> (
      let im = Dynamic.image st in
      if im.Dynamic.im_frames <> [] then
        Alcotest.fail "expected a frameless (non-scoped) state";
      let by = Bytes.of_string (Codec.encode_image im) in
      Bytes.set_int64_le by (Bytes.length by - 8) 0x1000_0000_0000_0000L;
      match Codec.decode_image (Bytes.to_string by) with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "absurd frame count decoded as an image")

(* --- framing ------------------------------------------------------------- *)

let test_frame_roundtrip () =
  let payloads = [ ""; "a"; String.make 300 '\x00'; "sj"; "\xff\xfe" ] in
  let b = Buffer.create 64 in
  List.iter (Frame.append b) payloads;
  match Frame.scan (Buffer.contents b) with
  | Ok { Frame.records; dropped_bytes } ->
      Alcotest.(check (list string)) "payloads back in order" payloads records;
      Alcotest.(check int) "nothing dropped" 0 dropped_bytes
  | Error e -> Alcotest.failf "clean scan failed: %s" (Codec.error_message e)

let test_frame_torn_tail_dropped () =
  let intact = Frame.frame "first" ^ Frame.frame "second" in
  let torn = intact ^ Frame.frame "third" in
  (* Every strict prefix that cuts into the third frame: torn tail, first
     two records survive. *)
  for cut = String.length intact + 1 to String.length torn - 1 do
    match Frame.scan (String.sub torn 0 cut) with
    | Ok { Frame.records; dropped_bytes } ->
        Alcotest.(check (list string)) "intact prefix survives"
          [ "first"; "second" ] records;
        Alcotest.(check int) "tail accounted" (cut - String.length intact)
          dropped_bytes
    | Error e ->
        Alcotest.failf "cut %d: torn tail must not be an error: %s" cut
          (Codec.error_message e)
  done

let test_frame_corruption_refused () =
  let s = Frame.frame "first" ^ Frame.frame "second" in
  (* Flip one bit of the first payload: complete frame, wrong checksum. *)
  let by = Bytes.of_string s in
  Bytes.set by Frame.header_size
    (Char.chr (Char.code (Bytes.get by Frame.header_size) lxor 1));
  (match Frame.scan (Bytes.to_string by) with
  | Error (Codec.Bad_checksum _) -> ()
  | Error e -> Alcotest.failf "wrong error: %s" (Codec.error_message e)
  | Ok _ -> Alcotest.fail "bit flip must poison the scan");
  match Frame.scan ("xx" ^ s) with
  | Error (Codec.Bad_magic _) -> ()
  | _ -> Alcotest.fail "non-frame bytes must be Bad_magic"

let test_frame_one () =
  (match Frame.one (Frame.frame "snap") with
  | Ok p -> Alcotest.(check string) "payload" "snap" p
  | Error e -> Alcotest.failf "single frame: %s" (Codec.error_message e));
  (match Frame.one (Frame.frame "a" ^ Frame.frame "b") with
  | Error (Codec.Malformed _) -> ()
  | _ -> Alcotest.fail "two frames are not a snapshot");
  let f = Frame.frame "snap" in
  match Frame.one (String.sub f 0 (String.length f - 1)) with
  | Error (Codec.Truncated _) -> ()
  | _ -> Alcotest.fail "a torn snapshot is unrecoverable (snapshots are atomic)"

(* --- media --------------------------------------------------------------- *)

let test_memory_media () =
  let m = Media.memory () in
  Alcotest.(check bool) "empty before checkpoint" true (Media.load m = None);
  Media.append m "r1";
  Alcotest.(check bool) "journal alone is not loadable" true (Media.load m = None);
  Media.checkpoint m "snap1";
  Alcotest.(check bool) "checkpoint resets journal" true
    (Media.load m = Some ("snap1", ""));
  Media.append m "r2";
  Media.append m "r3";
  Alcotest.(check bool) "appends accumulate" true
    (Media.load m = Some ("snap1", "r2r3"))

let with_temp_dir f =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "secpol_journal_test_%d" (Hashtbl.hash (Sys.time ())))
  in
  let cleanup () =
    if Sys.file_exists dir then begin
      Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
      Sys.rmdir dir
    end
  in
  cleanup ();
  Fun.protect ~finally:cleanup (fun () -> f dir)

let test_dir_media_kill_resume () =
  with_temp_dir (fun dir ->
      let e = Paper.forgetting in
      let cfg = cfg_of e in
      let a = ints [ 3; 0 ] in
      let clean = Dynamic.run cfg (Paper.graph e) a in
      let media = Media.dir dir in
      (match
         Runner.run ~kill_at:1 ~snapshot_every:2 ~media
           ~program_ref:e.Paper.name cfg (Paper.graph e) a
       with
      | Runner.Killed { at_box; _ } -> Alcotest.(check int) "killed where asked" 1 at_box
      | Runner.Completed _ -> Alcotest.fail "expected the kill to land");
      Media.close media;
      (* A separate handle, as a restarted process would open. *)
      let media' = Media.dir dir in
      (match Runner.resume ~resolve ~media:media' () with
      | Ok res ->
          if res.Runner.reply <> clean then
            Alcotest.fail "resume from disk not bit-identical"
      | Error f -> Alcotest.failf "resume failed: %s" (Runner.failure_message f));
      Media.close media')

(* --- the journaled runner ------------------------------------------------ *)

(* Kill at EVERY crash point of every small-corpus run and resume: response
   and step count must match the uninterrupted run exactly. The full-corpus
   version of this (plus tampering) is crash_sweep.ml. *)
let test_kill_everywhere_resume_identical () =
  List.iter
    (fun (e : Paper.entry) ->
      let g = Paper.graph e in
      let cfg = cfg_of e in
      Seq.iter
        (fun a ->
          let clean = Dynamic.run cfg g a in
          for k = 0 to 24 do
            let media = Media.memory () in
            ignore
              (Runner.run ~kill_at:k ~snapshot_every:3 ~media
                 ~program_ref:e.Paper.name cfg g a);
            match Runner.resume ~resolve ~media () with
            | Ok res ->
                if res.Runner.reply <> clean then
                  Alcotest.failf "%s kill@%d: resume %s, clean %s" e.Paper.name
                    k
                    (show_mech_reply res.Runner.reply)
                    (show_mech_reply clean)
            | Error f ->
                Alcotest.failf "%s kill@%d: %s" e.Paper.name k
                  (Runner.failure_message f)
          done)
        (Space.enumerate e.Paper.space))
    entries

(* Replaying the same journal twice (crash during recovery) lands on the
   same verdict: resume, kill the RESUMED run, resume again. *)
let test_replay_idempotent () =
  let e = Paper.forgetting in
  let g = Paper.graph e in
  let cfg = cfg_of e in
  let a = ints [ 3; 0 ] in
  let clean = Dynamic.run cfg g a in
  for k1 = 0 to 5 do
    for k2 = 0 to 3 do
      let media = Media.memory () in
      ignore
        (Runner.run ~kill_at:k1 ~snapshot_every:2 ~media
           ~program_ref:e.Paper.name cfg g a);
      (match Runner.resume ~kill_at:k2 ~resolve ~media () with
      | Ok _ | Error _ -> ());
      match Runner.resume ~resolve ~media () with
      | Ok res ->
          if res.Runner.reply <> clean then
            Alcotest.failf "kill@%d then kill@%d: double resume diverged" k1 k2
      | Error f ->
          Alcotest.failf "kill@%d then kill@%d: %s" k1 k2
            (Runner.failure_message f)
    done
  done

(* Stale journal records (a crash between snapshot rename and journal
   reset) are skipped by step monotonicity. *)
let test_stale_records_skipped () =
  let e = Paper.forgetting in
  let g = Paper.graph e in
  let cfg = cfg_of e in
  let a = ints [ 3; 0 ] in
  let clean = Dynamic.run cfg g a in
  (* Journal with records 1..k and the initial snapshot. *)
  let media_old = Media.memory () in
  ignore
    (Runner.run ~kill_at:4 ~snapshot_every:100 ~media:media_old
       ~program_ref:e.Paper.name cfg g a);
  (* A later snapshot, from a run that checkpointed at box 3. *)
  let media_new = Media.memory () in
  ignore
    (Runner.run ~kill_at:3 ~snapshot_every:3 ~media:media_new
       ~program_ref:e.Paper.name cfg g a);
  match (Media.load media_old, Media.load media_new) with
  | Some (_, old_journal), Some (new_snapshot, _) -> (
      (* The composite a rename-then-crash leaves behind: new snapshot,
         old (stale) journal. *)
      let media = Media.memory ~snapshot:new_snapshot ~journal:old_journal () in
      match Runner.resume ~resolve ~media () with
      | Ok res ->
          if res.Runner.reply <> clean then
            Alcotest.fail "stale records corrupted the resume"
      | Error f -> Alcotest.failf "resume refused: %s" (Runner.failure_message f))
  | _ -> Alcotest.fail "expected both media loadable"

(* The cross-run stale-journal window: a journal directory REUSED for a
   second run, with the crash landing between the new snapshot's rename and
   the journal truncation. The medium then holds the new run's snapshot
   (steps = 0) next to the ENTIRE previous run's journal — its verdict
   record included. Resume must execute the new run, never re-deliver the
   old verdict under the new header (a stale grant under different inputs
   is fail-open). Records are told apart by their per-run nonce. *)
let test_cross_run_stale_journal_not_adopted () =
  let e = Paper.forgetting in
  let g = Paper.graph e in
  let cfg = cfg_of e in
  let cleans =
    List.map
      (fun a -> (a, Dynamic.run cfg g a))
      (List.of_seq (Space.enumerate e.Paper.space))
  in
  let (a_old, clean_old), (a_new, clean_new) =
    match cleans with
    | (a0, r0) :: rest -> (
        match List.find_opt (fun (_, r) -> r <> r0) rest with
        | Some p -> ((a0, r0), p)
        | None -> Alcotest.fail "need two inputs with differing verdicts")
    | [] -> Alcotest.fail "empty input space"
  in
  (* The previous run, complete: journal ends in its verdict record. *)
  let media_old = Media.memory () in
  (match
     Runner.run ~snapshot_every:100 ~media:media_old ~program_ref:e.Paper.name
       cfg g a_old
   with
  | Runner.Completed r ->
      if r <> clean_old then Alcotest.fail "old journaled run diverged"
  | Runner.Killed _ -> Alcotest.fail "no kill requested");
  (* The new run, killed right after its initial checkpoint. *)
  let media_new = Media.memory () in
  ignore
    (Runner.run ~kill_at:0 ~snapshot_every:100 ~media:media_new
       ~program_ref:e.Paper.name cfg g a_new);
  match (Media.load media_old, Media.load media_new) with
  | Some (_, old_journal), Some (new_snapshot, _) -> (
      let media = Media.memory ~snapshot:new_snapshot ~journal:old_journal () in
      match Runner.resume ~resolve ~media () with
      | Ok res ->
          if res.Runner.was_complete then
            Alcotest.fail "stale verdict from the previous run was adopted";
          if res.Runner.reply = clean_old && clean_old <> clean_new then
            Alcotest.fail "resume re-delivered the previous run's verdict";
          if res.Runner.reply <> clean_new then
            Alcotest.failf "resume gave %s, new run's clean verdict is %s"
              (show_mech_reply res.Runner.reply)
              (show_mech_reply clean_new)
      | Error f -> Alcotest.failf "resume refused: %s" (Runner.failure_message f))
  | _ -> Alcotest.fail "expected both media loadable"

(* A kill DURING resume must report the interpreter's step count at the
   moment the kill fired, not the count recovery started from. *)
let test_killed_resume_reports_progress () =
  let e = Paper.forgetting in
  let g = Paper.graph e in
  let cfg = cfg_of e in
  let a = ints [ 3; 0 ] in
  (* What the clean interpreter's charge is after three boxes. *)
  let m = Dynamic.prepare cfg g in
  let expected =
    match Dynamic.start m a with
    | Error _ -> Alcotest.fail "start failed"
    | Ok st0 ->
        let rec go st k =
          if k = 0 then Dynamic.steps_of st
          else
            match Dynamic.step m st with
            | Dynamic.Final _ -> Dynamic.steps_of st
            | Dynamic.Step st' -> go st' (k - 1)
        in
        go st0 3
  in
  let media = Media.memory () in
  ignore
    (Runner.run ~kill_at:0 ~snapshot_every:100 ~media ~program_ref:e.Paper.name
       cfg g a);
  match Runner.resume ~kill_at:3 ~resolve ~media () with
  | Ok res ->
      Alcotest.(check int) "killed reply carries current steps" expected
        res.Runner.reply.Mechanism.steps
  | Error f -> Alcotest.failf "resume failed: %s" (Runner.failure_message f)

let test_completed_journal_redelivers () =
  let e = Paper.direct_flow in
  let cfg = cfg_of e in
  let a = ints [ 2 ] in
  let media = Media.memory () in
  let r0 =
    match
      Runner.run ~media ~program_ref:e.Paper.name cfg (Paper.graph e) a
    with
    | Runner.Completed r -> r
    | Runner.Killed _ -> Alcotest.fail "no kill requested"
  in
  match Runner.resume ~resolve ~media () with
  | Ok res ->
      Alcotest.(check bool) "verdict came from the journal" true
        res.Runner.was_complete;
      if res.Runner.reply <> r0 then Alcotest.fail "re-delivered verdict differs"
  | Error f -> Alcotest.failf "resume failed: %s" (Runner.failure_message f)

(* Unrecoverable media: every refusal maps to the single notice Λ/recovery,
   and Λ/recovery is an F element, not a grant. *)
let test_unrecoverable_is_recovery_notice () =
  let e = Paper.forgetting in
  let cfg = cfg_of e in
  let a = ints [ 3; 0 ] in
  let media = Media.memory () in
  ignore
    (Runner.run ~kill_at:2 ~snapshot_every:2 ~media ~program_ref:e.Paper.name
       cfg (Paper.graph e) a);
  let snapshot, journal =
    match Media.load media with Some p -> p | None -> Alcotest.fail "no media"
  in
  let cases =
    [
      ("empty medium", Media.memory ());
      ("flipped snapshot bit",
       let by = Bytes.of_string snapshot in
       Bytes.set by 20 (Char.chr (Char.code (Bytes.get by 20) lxor 4));
       Media.memory ~snapshot:(Bytes.to_string by) ~journal ());
      ("snapshot is garbage", Media.memory ~snapshot:"not a frame" ~journal ());
      ("foreign program",
       let media' = Media.memory () in
       ignore
         (Runner.run ~kill_at:2 ~media:media' ~program_ref:"no-such-program"
            cfg (Paper.graph e) a);
       media');
    ]
  in
  List.iter
    (fun (label, m) ->
      match Runner.resume ~resolve ~media:m () with
      | Ok _ -> Alcotest.failf "%s: resume should refuse" label
      | Error _ as err -> (
          match (Guard.reply_of_recovery err).Mechanism.response with
          | Mechanism.Denied n ->
              Alcotest.(check string) label Guard.recovery_notice n
          | _ -> Alcotest.failf "%s: refusal escaped F" label))
    cases

(* Resume under a DIFFERENT program than the journal was written against
   must be refused — the journal is not portable across programs. *)
let test_program_hash_checked () =
  let e = Paper.forgetting in
  let cfg = cfg_of e in
  let media = Media.memory () in
  ignore
    (Runner.run ~kill_at:2 ~media ~program_ref:e.Paper.name cfg (Paper.graph e)
       (ints [ 3; 0 ]));
  let bad_resolve (_ : Runner.header) = Ok (Paper.graph Paper.direct_flow) in
  match Runner.resume ~resolve:bad_resolve ~media () with
  | Error (Runner.Program_mismatch _) -> ()
  | Error f -> Alcotest.failf "wrong failure: %s" (Runner.failure_message f)
  | Ok _ -> Alcotest.fail "hash mismatch must refuse to resume"

let () =
  Alcotest.run "journal"
    [
      ( "codec",
        [
          Alcotest.test_case "crc32-vectors" `Quick test_crc32_vectors;
          Alcotest.test_case "value-roundtrip" `Quick test_value_roundtrip;
          Alcotest.test_case "version-rejected" `Quick test_version_rejected;
          Alcotest.test_case "truncation-rejected" `Quick test_truncation_rejected;
          Alcotest.test_case "absurd-length-rejected" `Quick test_absurd_length_rejected;
          prop_image_roundtrip;
          prop_rehydrated_runs_identically;
        ] );
      ( "frame",
        [
          Alcotest.test_case "roundtrip" `Quick test_frame_roundtrip;
          Alcotest.test_case "torn-tail-dropped" `Quick test_frame_torn_tail_dropped;
          Alcotest.test_case "corruption-refused" `Quick test_frame_corruption_refused;
          Alcotest.test_case "one" `Quick test_frame_one;
        ] );
      ( "media",
        [
          Alcotest.test_case "memory" `Quick test_memory_media;
          Alcotest.test_case "dir-kill-resume" `Quick test_dir_media_kill_resume;
        ] );
      ( "runner",
        [
          Alcotest.test_case "kill-everywhere-resume-identical" `Quick
            test_kill_everywhere_resume_identical;
          Alcotest.test_case "replay-idempotent" `Quick test_replay_idempotent;
          Alcotest.test_case "stale-records-skipped" `Quick test_stale_records_skipped;
          Alcotest.test_case "cross-run-stale-journal-not-adopted" `Quick
            test_cross_run_stale_journal_not_adopted;
          Alcotest.test_case "killed-resume-reports-progress" `Quick
            test_killed_resume_reports_progress;
          Alcotest.test_case "completed-redelivers" `Quick test_completed_journal_redelivers;
          Alcotest.test_case "unrecoverable-is-recovery-notice" `Quick
            test_unrecoverable_is_recovery_notice;
          Alcotest.test_case "program-hash-checked" `Quick test_program_hash_checked;
        ] );
    ]
