(* The issue's acceptance gate for durable enforcement, wired into `dune
   runtest`: the crash-recovery sweep over every corpus program, every
   allow(J) policy over its inputs, and 50 crash points per case, with
   seeded media tampering (torn tails, dropped records, flipped bits).
   Every resume must be bit-identical to the uninterrupted run or degrade
   to Λ/recovery — zero divergent verdicts, zero fail-open grants, zero
   journaled-vs-plain mismatches. `make chaos-crash` drives the same sweep
   through the CLI. *)

module Crash = Secpol_fault.Crash

let () =
  let report = Crash.run ~crash_points:50 () in
  let t = report.Crash.totals in
  Printf.printf "crash sweep: %d cases, %d kill/resume cycles\n" t.Crash.cases
    t.Crash.crashes;
  let check name v =
    if v = 0 then Printf.printf "ok   %-28s 0\n" name
    else Printf.printf "FAIL %-28s %d\n" name v
  in
  check "divergent resumes" t.Crash.divergent;
  check "fail-open resumes" t.Crash.fail_open;
  check "journaled-run mismatches" t.Crash.journal_mismatch;
  (* Sanity on the sweep itself: it must actually have resumed runs
     bit-identically, re-delivered journaled verdicts, survived crash-shaped
     damage and refused corruption — an inert sweep would pass the gates
     above while testing nothing. *)
  let nonzero name v =
    if v > 0 then Printf.printf "ok   %-28s %d\n" name v
    else Printf.printf "FAIL %-28s 0 (sweep is inert)\n" name
  in
  nonzero "bit-identical resumes" t.Crash.identical;
  nonzero "complete replays" t.Crash.complete_replays;
  nonzero "tampering survived" t.Crash.tamper_survived;
  nonzero "recovery notices" t.Crash.recovery_notices;
  List.iter
    (fun (f : Crash.finding) ->
      Printf.printf "  ! %s / %s / %s / crash@%d / %s: %s\n" f.Crash.entry
        f.Crash.policy f.Crash.input f.Crash.crash_point f.Crash.tamper
        f.Crash.detail)
    report.Crash.findings;
  if
    not
      (report.Crash.ok && t.Crash.identical > 0 && t.Crash.complete_replays > 0
     && t.Crash.tamper_survived > 0 && t.Crash.recovery_notices > 0)
  then exit 1
