(* The violation-notice namespace F (Core.Notice): the enumeration is
   tight — members distinct, round-tripping and Λ-prefixed; [in_f] is
   exactly the prefix check, strictly wider than [mem]; the layer
   constants (Dynamic's fuel notice, the server's overload notice) are
   the canonical members, not private spellings — and it is exhaustive:
   every denial the dynamic stack emits over the whole corpus, every
   policy, every mode, fuel-starved or not, is a canonical member, and
   chatty notices stay inside F. *)

open Util
module Notice = Secpol_core.Notice
module Dynamic = Secpol_taint.Dynamic
module Ast = Secpol_flowgraph.Ast
module Paper = Secpol_corpus.Paper_programs
module FReport = Secpol_fault.Report
module Wire = Secpol_server.Wire

let starts_with prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

(* --- the enumeration ------------------------------------------------------ *)

let test_members_distinct_and_prefixed () =
  let ms = Notice.members in
  Alcotest.(check int)
    "members lists every constructor" (List.length Notice.all)
    (List.length ms);
  Alcotest.(check int)
    "members are pairwise distinct" (List.length ms)
    (List.length (List.sort_uniq compare ms));
  List.iter
    (fun m ->
      if not (starts_with Notice.prefix m) then
        Alcotest.failf "%S does not start with the Λ prefix" m)
    ms

let test_round_trip () =
  List.iter
    (fun n ->
      match Notice.of_string (Notice.to_string n) with
      | Some n' when n' = n -> ()
      | Some _ -> Alcotest.failf "%s round-trips wrong" (Notice.to_string n)
      | None -> Alcotest.failf "of_string misses %s" (Notice.to_string n))
    Notice.all;
  List.iter
    (fun s ->
      if Notice.of_string s <> None then
        Alcotest.failf "of_string accepts non-member %S" s)
    [ ""; "L"; "lambda"; "\xce\x9b/"; "\xce\x9b/explicit"; "\xce\x9b: x tainted" ]

let test_in_f_is_the_prefix_check () =
  (* mem ⊂ in_f: every canonical notice is in F ... *)
  List.iter
    (fun m ->
      if not (Notice.in_f m) then Alcotest.failf "member %S not in F" m;
      if not (Notice.mem m) then Alcotest.failf "mem misses member %S" m)
    Notice.members;
  (* ... and F also holds the chatty and provenance spellings mem rejects. *)
  List.iter
    (fun s ->
      if not (Notice.in_f s) then Alcotest.failf "%S should be in F" s;
      if Notice.mem s then Alcotest.failf "%S should not be canonical" s)
    [
      "\xce\x9b: surveillance variable x";
      "\xce\x9b/explicit";
      "\xce\x9b/implicit";
      "\xce\x9b/timed";
    ];
  List.iter
    (fun s -> if Notice.in_f s then Alcotest.failf "%S must not be in F" s)
    [ ""; "ok"; "granted 3"; "L/overload"; "\xce"; "42" ]

let test_describe () =
  let ds = List.map Notice.describe Notice.all in
  List.iter
    (fun d -> if d = "" then Alcotest.fail "describe returned an empty line")
    ds;
  Alcotest.(check int)
    "descriptions are distinct" (List.length ds)
    (List.length (List.sort_uniq compare ds))

(* --- the layer constants are the canonical members ------------------------ *)

let test_layer_constants () =
  Alcotest.(check string) "Dynamic.fuel_notice is Notice.Fuel"
    (Notice.to_string Notice.Fuel)
    Dynamic.fuel_notice;
  Alcotest.(check string) "Wire.overload_notice is Notice.Overload"
    (Notice.to_string Notice.Overload)
    Wire.overload_notice;
  Alcotest.(check string) "the condemned notice is the bare prefix"
    Notice.prefix
    (Notice.to_string Notice.Condemned)

(* --- exhaustiveness over the corpus --------------------------------------- *)

(* Every denial the dynamic stack emits — all corpus entries, all allow(J)
   policies, all four modes, normal and fuel-starved — must be a canonical
   member of F. Hung/Failed never escape [Dynamic.run]. *)
let test_corpus_exhaustive () =
  let modes =
    [ Dynamic.High_water; Dynamic.Surveillance; Dynamic.Scoped; Dynamic.Timed ]
  in
  let runs = ref 0 and denials = ref 0 and fuel_denials = ref 0 in
  List.iter
    (fun (e : Paper.entry) ->
      let g = Paper.graph e in
      let arity = e.Paper.prog.Ast.arity in
      List.iter
        (fun policy ->
          List.iter
            (fun mode ->
              List.iter
                (fun fuel ->
                  let m =
                    Dynamic.mechanism (Dynamic.config ?fuel ~mode policy) g
                  in
                  Seq.iter
                    (fun a ->
                      incr runs;
                      match (Mechanism.respond m a).Mechanism.response with
                      | Mechanism.Granted _ -> ()
                      | Mechanism.Denied n ->
                          incr denials;
                          if n = Dynamic.fuel_notice then incr fuel_denials;
                          if not (Notice.mem n) then
                            Alcotest.failf
                              "%s / %s / %s: non-canonical notice %S"
                              e.Paper.name (Policy.name policy)
                              (Dynamic.mode_name mode) n
                      | Mechanism.Hung ->
                          Alcotest.failf "%s: hung" e.Paper.name
                      | Mechanism.Failed msg ->
                          Alcotest.failf "%s: failed: %s" e.Paper.name msg)
                    (Space.enumerate e.Paper.space))
                [ None; Some 4 ])
            modes)
        (FReport.policies_of_arity arity))
    Paper.all;
  if !denials = 0 then Alcotest.fail "inert sweep: no denial was emitted";
  if !fuel_denials = 0 then
    Alcotest.fail "inert sweep: fuel starvation never fired";
  if !runs < 1000 then Alcotest.failf "inert sweep: only %d runs" !runs

(* Chatty notices carry diagnostic text but must stay inside F (the Λ
   prefix) — and at least one must leave the canonical enumeration, or
   the chatty path is dead. *)
let test_chatty_stays_in_f () =
  let chatty = ref 0 in
  List.iter
    (fun (e : Paper.entry) ->
      let g = Paper.graph e in
      let m =
        Dynamic.mechanism
          (Dynamic.config ~chatty_notices:true ~mode:Dynamic.Surveillance
             Policy.allow_none)
          g
      in
      Seq.iter
        (fun a ->
          match (Mechanism.respond m a).Mechanism.response with
          | Mechanism.Denied n ->
              if not (Notice.in_f n) then
                Alcotest.failf "%s: chatty notice %S escaped F" e.Paper.name n;
              if not (Notice.mem n) then incr chatty
          | _ -> ())
        (Space.enumerate e.Paper.space))
    Paper.all;
  if !chatty = 0 then Alcotest.fail "chatty mode never produced chatty text"

let () =
  Alcotest.run "notice"
    [
      ( "namespace",
        [
          Alcotest.test_case "members" `Quick
            test_members_distinct_and_prefixed;
          Alcotest.test_case "round-trip" `Quick test_round_trip;
          Alcotest.test_case "in-f" `Quick test_in_f_is_the_prefix_check;
          Alcotest.test_case "describe" `Quick test_describe;
          Alcotest.test_case "layer-constants" `Quick test_layer_constants;
        ] );
      ( "exhaustiveness",
        [
          Alcotest.test_case "corpus" `Quick test_corpus_exhaustive;
          Alcotest.test_case "chatty" `Quick test_chatty_stays_in_f;
        ] );
    ]
