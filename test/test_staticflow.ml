(* Section 5: compile-time enforcement — certification over the structured
   AST, the graph-level dataflow analysis, and the per-halt guard that
   realizes Example 9. *)

open Util
module Iset = Secpol_core.Iset
module Ast = Secpol_flowgraph.Ast
module Var = Secpol_flowgraph.Var
module Expr = Secpol_flowgraph.Expr
module Compile = Secpol_flowgraph.Compile
module Interp = Secpol_flowgraph.Interp
module Certify = Secpol_staticflow.Certify
module Dataflow = Secpol_staticflow.Dataflow
module Halt_guard = Secpol_staticflow.Halt_guard
module Dynamic = Secpol_taint.Dynamic
module Paper = Secpol_corpus.Paper_programs
module Generator = Secpol_corpus.Generator
open Expr.Build

(* --- AST certification -------------------------------------------------- *)

let test_certify_direct_flow () =
  let e = Paper.direct_flow in
  Alcotest.(check bool) "rejected under allow(0)" false
    (Certify.certified ~policy:e.Paper.policy e.Paper.prog);
  Alcotest.(check bool) "accepted under allow(all)" true
    (Certify.certified ~policy:(Policy.allow [ 0; 1 ]) e.Paper.prog)

let test_certify_implicit_flow () =
  (* if x0 = 0 then y := 1 else y := 2 depends on x0 only implicitly; the
     program-counter context must catch it. *)
  let e = Paper.branch_allowed in
  Alcotest.(check bool) "accepted when the test is allowed" true
    (Certify.certified ~policy:(Policy.allow [ 0 ]) e.Paper.prog);
  Alcotest.(check bool) "rejected when the test is withheld" false
    (Certify.certified ~policy:(Policy.allow [ 1 ]) e.Paper.prog)

let test_certify_loop_fixpoint () =
  (* Taint flows around the loop: x0 -> r0 -> r1 -> y needs two iterations
     of the fixpoint to surface. *)
  let p =
    Ast.prog ~name:"ripple" ~arity:2
      (Ast.seq
         [
           Ast.Assign (Var.Reg 0, x 0);
           Ast.Assign (Var.Reg 2, i 3);
           Ast.While
             ( r 2 >: i 0,
               Ast.seq
                 [
                   Ast.Assign (Var.Reg 1, r 0);
                   Ast.Assign (Var.Reg 0, r 1);
                   Ast.Assign (Var.Out, r 1);
                   Ast.Assign (Var.Reg 2, r 2 -: i 1);
                 ] );
         ])
  in
  let report = Certify.analyze ~allowed:(Iset.of_list [ 1 ]) p in
  Alcotest.(check bool) "x0 reaches y through the loop" true
    (Iset.mem 0 report.Certify.out_taint);
  Alcotest.(check bool) "rejected" false report.Certify.certified

let test_certify_flow_sensitive () =
  (* y := x0; y := x1 — flow-sensitivity lets the second assignment erase
     the first's taint (unlike high-water). *)
  let p =
    Ast.prog ~name:"overwrite" ~arity:2
      (Ast.seq [ Ast.Assign (Var.Out, x 0); Ast.Assign (Var.Out, x 1) ])
  in
  Alcotest.(check bool) "certified for allow(1)" true
    (Certify.certified ~policy:(Policy.allow [ 1 ]) p)

let test_certify_mechanism_all_or_nothing () =
  let e = Paper.direct_flow in
  let m = Certify.mechanism ~policy:e.Paper.policy e.Paper.prog in
  check_ratio "rejected program: serves nothing" ~expected:0.0 m
    ~q:(Paper.program e) e.Paper.space;
  let e' = Paper.branch_allowed in
  let m' = Certify.mechanism ~policy:e'.Paper.policy e'.Paper.prog in
  check_ratio "certified program: serves everything" ~expected:1.0 m'
    ~q:(Paper.program e') e'.Paper.space

let test_presimplify_rescues_dead_operands () =
  let p =
    Ast.prog ~name:"dead-operand" ~arity:2
      (Ast.Assign (Var.Out, Expr.Add (x 0, Expr.Mul (x 1, i 0))))
  in
  let allowed = Iset.of_list [ 0 ] in
  Alcotest.(check bool) "plain analysis rejects x1 * 0" false
    (Certify.analyze ~allowed p).Certify.certified;
  Alcotest.(check bool) "presimplified analysis certifies" true
    (Certify.analyze ~presimplify:true ~allowed p).Certify.certified

(* Pre-simplification must never cost soundness: whenever the simplified
   analysis certifies, the ORIGINAL program leaks nothing. *)
let prop_presimplified_certification_still_sound =
  let params = Generator.default in
  qtest ~count:300 "presimplify-certified => original program leaks nothing"
    (Generator.arbitrary params)
    (fun prog ->
      let space = Generator.space_for params in
      List.for_all
        (fun policy ->
          let allowed =
            match Policy.allowed_indices policy with Some j -> j | None -> assert false
          in
          (not (Certify.analyze ~presimplify:true ~allowed prog).Certify.certified)
          || Soundness.is_sound policy
               (Mechanism.of_program (Interp.ast_program prog))
               space)
        [ Policy.allow_none; Policy.allow [ 0 ]; Policy.allow [ 1 ] ])

(* And it is monotone: everything the plain analysis certifies, the
   presimplified analysis certifies too. *)
let prop_presimplify_monotone =
  let params = Generator.default in
  qtest ~count:300 "presimplification only gains certifications"
    (Generator.arbitrary params)
    (fun prog ->
      List.for_all
        (fun allowed ->
          (not (Certify.analyze ~allowed prog).Certify.certified)
          || (Certify.analyze ~presimplify:true ~allowed prog).Certify.certified)
        [ Iset.empty; Iset.of_list [ 0 ]; Iset.of_list [ 1 ] ])

(* Certification is conservative and correct: a certified program is sound
   as its own mechanism (checked exhaustively on random programs). *)
let prop_certified_implies_sound =
  let params = Generator.default in
  qtest ~count:300 "certified => program leaks nothing (untimed)"
    (Generator.arbitrary params)
    (fun prog ->
      let space = Generator.space_for params in
      List.for_all
        (fun policy ->
          (not (Certify.certified ~policy prog))
          || Soundness.is_sound policy
               (Mechanism.of_program (Interp.ast_program prog))
               space)
        [ Policy.allow_none; Policy.allow [ 0 ]; Policy.allow [ 1 ] ])

(* The static mechanism can never out-grant the (runtime) maximal one. *)
let prop_static_below_maximal =
  let params = Generator.default in
  qtest ~count:150 "static mechanism <= maximal"
    (Generator.arbitrary params)
    (fun prog ->
      let q = Interp.ast_program prog in
      let space = Generator.space_for params in
      let policy = Policy.allow [ 1 ] in
      let mstat = Certify.mechanism ~policy prog in
      let mx = Maximal.build policy q space in
      Completeness.as_complete_as mx mstat ~q space = Ok ())

(* --- Graph dataflow ------------------------------------------------------ *)

let test_dataflow_agrees_on_corpus () =
  List.iter
    (fun (e : Paper.entry) ->
      let ast_v = Certify.certified ~policy:e.Paper.policy e.Paper.prog in
      let graph_v = Dataflow.certified ~policy:e.Paper.policy (Paper.graph e) in
      Alcotest.(check bool)
        (Printf.sprintf "%s: AST and graph certifiers agree" e.Paper.name)
        ast_v graph_v)
    Paper.all

(* The graph certifier is sound in the same exhaustive sense. *)
let prop_graph_certified_implies_sound =
  let params = Generator.default in
  qtest ~count:300 "graph-certified => program leaks nothing"
    (Generator.arbitrary params)
    (fun prog ->
      let g = Compile.compile prog in
      let space = Generator.space_for params in
      List.for_all
        (fun policy ->
          (not (Dataflow.certified ~policy g))
          || Soundness.is_sound policy
               (Mechanism.of_program (Interp.graph_program g))
               space)
        [ Policy.allow_none; Policy.allow [ 0 ]; Policy.allow [ 1 ] ])

(* Static analysis ranges over all paths, so it must accept no more than the
   dynamic surveillance mechanism grants: if the graph certifies, dynamic
   surveillance may still deny (static scoping is finer), but certification
   must never contradict dynamic soundness. Concretely: certified programs
   are served completely by the static mechanism, and that service agrees
   with Q. *)
let prop_static_mechanism_protects =
  let params = Generator.default in
  qtest ~count:150 "static mechanism is a protection mechanism"
    (Generator.arbitrary params)
    (fun prog ->
      let q = Interp.ast_program prog in
      let space = Generator.space_for params in
      Mechanism.check_protects
        (Certify.mechanism ~policy:(Policy.allow [ 0 ]) prog)
        q space
      = Ok ())

(* --- Per-halt guard (Example 9) ----------------------------------------- *)

let test_ex9_whole_program_rejected () =
  let e = Paper.ex9 in
  Alcotest.(check bool) "whole-program certification rejects" false
    (Certify.certified ~policy:e.Paper.policy e.Paper.prog)

let test_ex9_halt_guard_after_duplication () =
  let e = Paper.ex9 in
  let q = Paper.program e in
  (* Duplicate the trailing assignment into both arms, split the halt, and
     guard per halt: the clean path (x0 = 0) survives. *)
  let dup = Secpol_transform.Transforms.sink_into_branches e.Paper.prog in
  let g = Secpol_transform.Transforms.split_halts (Compile.compile dup) in
  let m = Halt_guard.mechanism ~policy:e.Paper.policy g in
  check_grants "clean path grants y=1" m [ 0; 2 ] 1;
  check_denies "dirty path denies" m [ 1; 2 ];
  check_denies "dirty path denies" m [ 3; 0 ];
  check_sound "per-halt mechanism is sound" e.Paper.policy m e.Paper.space;
  check_ratio "serves exactly the x0=0 quarter" ~expected:0.25 m ~q e.Paper.space;
  (* Without duplication + splitting, the shared halt is condemned. *)
  let m0 = Halt_guard.mechanism ~policy:e.Paper.policy (Paper.graph e) in
  check_ratio "undup: serves nothing" ~expected:0.0 m0 ~q e.Paper.space

(* Direct coverage for the graph rewrite itself (not just the packaged
   mechanism). *)
let count_violations g =
  Array.fold_left
    (fun n -> function Secpol_flowgraph.Graph.Halt_violation _ -> n + 1 | _ -> n)
    0 g.Secpol_flowgraph.Graph.nodes

let test_guard_rewrites_dirty_halts () =
  let module Graph = Secpol_flowgraph.Graph in
  let e = Paper.direct_flow in
  let g = Paper.graph e in
  (* Everything allowed: the guard must be the identity on the node array. *)
  let clean = Halt_guard.guard ~allowed:(Iset.of_list [ 0; 1 ]) g in
  Alcotest.(check int) "allow-all leaves every halt alone" 0
    (count_violations clean);
  Alcotest.(check bool) "allow-all preserves the nodes" true
    (g.Graph.nodes = clean.Graph.nodes);
  (* Nothing allowed: the unique halt is condemned, structure preserved. *)
  let guarded = Halt_guard.guard ~allowed:Iset.empty g in
  Alcotest.(check int) "allow-none condemns the halt" 1
    (count_violations guarded);
  Alcotest.(check int) "same number of nodes"
    (Graph.node_count g) (Graph.node_count guarded);
  Array.iteri
    (fun i node ->
      match (node, guarded.Graph.nodes.(i)) with
      | Graph.Halt, Graph.Halt_violation n ->
          Alcotest.(check string) "violation halts carry the notice Λ"
            Dynamic.notice n
      | Graph.Halt, _ ->
          Alcotest.failf "halt %d was not replaced by a violation halt" i
      | other, other' when other = other' -> ()
      | _ -> Alcotest.failf "non-halt node %d was rewritten" i)
    g.Graph.nodes

let test_guard_preserves_spans () =
  let module Graph = Secpol_flowgraph.Graph in
  (* A parsed program has source spans on its flowchart; the guard rewrite
     must carry them over unchanged. *)
  let src = "program spanned(x0)\n  y := x0\n" in
  let prog =
    match Secpol_lang.Source.parse src with
    | Ok p -> p
    | Error m -> Alcotest.fail m
  in
  let g = Compile.compile prog in
  Alcotest.(check bool) "compiled graph carries at least one span" true
    (Array.exists Option.is_some g.Graph.spans);
  let guarded = Halt_guard.guard ~allowed:Iset.empty g in
  Alcotest.(check bool) "guard preserves the span table" true
    (g.Graph.spans = guarded.Graph.spans)

(* A per-halt-certifiable mix: branching on allowed data with one dirty arm
   condemns only that arm's halt (after splitting). *)
let test_guard_split_condemns_only_dirty_arm () =
  let e = Paper.ex9 in
  let dup = Secpol_transform.Transforms.sink_into_branches e.Paper.prog in
  let g = Secpol_transform.Transforms.split_halts (Compile.compile dup) in
  let allowed =
    match Policy.allowed_indices e.Paper.policy with
    | Some a -> a
    | None -> assert false
  in
  let guarded = Halt_guard.guard ~allowed g in
  let total =
    List.length (Secpol_flowgraph.Graph.halt_nodes guarded)
  in
  let condemned = count_violations guarded in
  Alcotest.(check bool)
    (Printf.sprintf "some but not all halts condemned (%d of %d)" condemned
       total)
    true
    (condemned > 0 && condemned < total)

let prop_halt_guard_sound =
  let params = Generator.default in
  qtest ~count:200 "per-halt guard is sound on random programs"
    (Generator.arbitrary params)
    (fun prog ->
      let g = Compile.compile prog in
      let space = Generator.space_for params in
      List.for_all
        (fun policy ->
          Soundness.is_sound policy (Halt_guard.mechanism ~policy g) space)
        [ Policy.allow_none; Policy.allow [ 0 ]; Policy.allow [ 1 ] ])

let prop_halt_guard_sound_after_split =
  let params = Generator.default in
  qtest ~count:200 "per-halt guard stays sound after halt splitting"
    (Generator.arbitrary params)
    (fun prog ->
      let g = Secpol_transform.Transforms.split_halts (Compile.compile prog) in
      let space = Generator.space_for params in
      List.for_all
        (fun policy ->
          Soundness.is_sound policy (Halt_guard.mechanism ~policy g) space)
        [ Policy.allow_none; Policy.allow [ 1 ] ])

let () =
  Alcotest.run "secpol-staticflow"
    [
      ( "certify",
        [
          Alcotest.test_case "direct-flow" `Quick test_certify_direct_flow;
          Alcotest.test_case "implicit-flow" `Quick test_certify_implicit_flow;
          Alcotest.test_case "loop-fixpoint" `Quick test_certify_loop_fixpoint;
          Alcotest.test_case "flow-sensitive" `Quick test_certify_flow_sensitive;
          Alcotest.test_case "mechanism" `Quick test_certify_mechanism_all_or_nothing;
          Alcotest.test_case "presimplify" `Quick test_presimplify_rescues_dead_operands;
          prop_presimplified_certification_still_sound;
          prop_presimplify_monotone;
          prop_certified_implies_sound;
          prop_static_below_maximal;
        ] );
      ( "dataflow",
        [
          Alcotest.test_case "agrees-on-corpus" `Quick test_dataflow_agrees_on_corpus;
          prop_graph_certified_implies_sound;
          prop_static_mechanism_protects;
        ] );
      ( "halt-guard",
        [
          Alcotest.test_case "ex9-whole-rejected" `Quick test_ex9_whole_program_rejected;
          Alcotest.test_case "ex9-guarded" `Quick test_ex9_halt_guard_after_duplication;
          Alcotest.test_case "guard-rewrite" `Quick test_guard_rewrites_dirty_halts;
          Alcotest.test_case "guard-spans" `Quick test_guard_preserves_spans;
          Alcotest.test_case "guard-split-dirty-arm" `Quick test_guard_split_condemns_only_dirty_arm;
          prop_halt_guard_sound;
          prop_halt_guard_sound_after_split;
        ] );
    ]
