(* The witness-carrying linter: finding structure, JSON round-trips, and
   the cross-checks tying the static analyses to each other and to the
   dynamic taint semantics (the differential and superset satellites). *)

open Util
module Expr = Secpol_flowgraph.Expr
module Var = Secpol_flowgraph.Var
module Ast = Secpol_flowgraph.Ast
module Span = Secpol_flowgraph.Span
module Graph = Secpol_flowgraph.Graph
module Compile = Secpol_flowgraph.Compile
module Certify = Secpol_staticflow.Certify
module Dataflow = Secpol_staticflow.Dataflow
module Lint = Secpol_staticflow.Lint
module Dynamic = Secpol_taint.Dynamic
module Paper = Secpol_corpus.Paper_programs
module Generator = Secpol_corpus.Generator
module Source = Secpol_lang.Source
open Expr.Build

let examples_dir = "../examples/programs"

let load_spl file =
  let path = Filename.concat examples_dir file in
  match Source.load_with_hint path with
  | Ok (prog, hint) -> (prog, hint)
  | Error m -> Alcotest.failf "%s: %s" file m

let lint_spl ?allowed file =
  let prog, hint = load_spl file in
  let allowed =
    match allowed with
    | Some a -> a
    | None -> (
        match Option.map Policy.allowed_indices hint with
        | Some (Some a) -> a
        | _ -> Iset.empty)
  in
  Lint.check ~prog ~allowed (Compile.compile prog)

(* Every subset of the program's input indices, as allowed sets. *)
let all_allowed_sets arity = List.init (1 lsl arity) Iset.of_mask

let errors_of (r : Lint.report) =
  List.filter (fun (f : Lint.finding) -> f.Lint.severity = Lint.Error) r.Lint.findings

let rules_of (r : Lint.report) =
  List.sort_uniq compare
    (List.map (fun (f : Lint.finding) -> Lint.rule_name f.Lint.rule) r.Lint.findings)

(* --- Differential: AST certifier vs graph dataflow vs linter ------------- *)

(* Satellite: on every corpus program and EVERY allow(J) policy over its
   inputs, the structured certifier and the graph dataflow agree — and the
   linter's verdict agrees with both (its errors are exactly the dataflow
   violations). *)
let test_differential_corpus_sweep () =
  List.iter
    (fun (e : Paper.entry) ->
      let g = Paper.graph e in
      List.iter
        (fun allowed ->
          let ast_v = (Certify.analyze ~allowed e.Paper.prog).Certify.certified in
          let graph_v = (Dataflow.analyze ~allowed g).Dataflow.certified in
          let lint_v = (Lint.check ~allowed g).Lint.certified in
          Alcotest.(check bool)
            (Printf.sprintf "%s / allow(%s): AST vs graph" e.Paper.name
               (Iset.to_string allowed))
            ast_v graph_v;
          Alcotest.(check bool)
            (Printf.sprintf "%s / allow(%s): graph vs lint" e.Paper.name
               (Iset.to_string allowed))
            graph_v lint_v)
        (all_allowed_sets e.Paper.prog.Ast.arity))
    Paper.all

let prop_differential_generated =
  let params = Generator.default in
  qtest ~count:300 "AST certifier and graph dataflow agree on random programs"
    (Generator.arbitrary params)
    (fun prog ->
      let g = Compile.compile prog in
      List.for_all
        (fun allowed ->
          let ast_v = (Certify.analyze ~allowed prog).Certify.certified in
          let graph_v = (Dataflow.analyze ~allowed g).Dataflow.certified in
          let lint_v = (Lint.check ~prog ~allowed g).Lint.certified in
          ast_v = graph_v && graph_v = lint_v)
        (all_allowed_sets prog.Ast.arity))

(* --- Soundness: static out-taint contains every dynamic out-taint -------- *)

let static_out_taint g =
  let r = Dataflow.analyze ~allowed:Iset.empty g in
  List.fold_left
    (fun acc (_, t) -> Iset.union acc t)
    Iset.empty r.Dataflow.halt_taints

(* Satellite: the static analysis ranges over all paths, a run takes one,
   so on every terminating run the scoped-dynamic taint at the halt box is
   contained in the static halt taint. Checked exhaustively over each
   corpus program's input space. *)
let test_static_superset_dynamic_corpus () =
  List.iter
    (fun (e : Paper.entry) ->
      let g = Paper.graph e in
      let static = static_out_taint g in
      Seq.iter
        (fun inputs ->
          match Dynamic.out_taint g inputs with
          | Error _ -> () (* diverged or faulted: no halt-box check happens *)
          | Ok dynamic ->
              if not (Iset.subset dynamic static) then
                Alcotest.failf
                  "%s: dynamic out-taint %s escapes static %s on some input"
                  e.Paper.name (Iset.to_string dynamic) (Iset.to_string static))
        (Secpol_core.Space.enumerate e.Paper.space))
    Paper.all

let prop_static_superset_dynamic_generated =
  let params = Generator.default in
  qtest ~count:200 "static out-taint contains scoped-dynamic out-taint"
    (Generator.arbitrary params)
    (fun prog ->
      let g = Compile.compile prog in
      let static = static_out_taint g in
      Seq.for_all
        (fun inputs ->
          match Dynamic.out_taint g inputs with
          | Error _ -> true
          | Ok dynamic -> Iset.subset dynamic static)
        (Secpol_core.Space.enumerate (Generator.space_for params)))

(* --- Finding structure --------------------------------------------------- *)

(* Witness chains are structurally meaningful: implicit steps sit on
   decision boxes, explicit steps on assignments, and a flow to the output
   ends at an assignment to y. *)
let test_witness_structure () =
  List.iter
    (fun (e : Paper.entry) ->
      let g = Paper.graph e in
      let report = Lint.check_policy ~policy:e.Paper.policy g in
      List.iter
        (fun (f : Lint.finding) ->
          List.iter
            (fun (s : Lint.step) ->
              match (s.Lint.kind, g.Graph.nodes.(s.Lint.node)) with
              | Lint.Implicit, Graph.Decision _ -> ()
              | Lint.Explicit, Graph.Assign _ -> ()
              | _ ->
                  Alcotest.failf "%s: step %S has kind/node mismatch"
                    e.Paper.name s.Lint.label)
            f.Lint.witness;
          match f.Lint.rule with
          | Lint.Explicit_flow | Lint.Implicit_flow -> (
              match List.rev f.Lint.witness with
              | { Lint.node; _ } :: _ -> (
                  match g.Graph.nodes.(node) with
                  | Graph.Assign (Var.Out, _, _) -> ()
                  | _ ->
                      Alcotest.failf
                        "%s: flow witness does not end at an assignment to y"
                        e.Paper.name)
              | [] ->
                  Alcotest.failf "%s: flow finding with empty witness"
                    e.Paper.name)
          | Lint.Termination_channel | Lint.Imprecision -> ())
        (errors_of report))
    Paper.all

let test_uncertifiable_corpus_has_findings () =
  List.iter
    (fun (e : Paper.entry) ->
      let g = Paper.graph e in
      match Secpol_core.Policy.allowed_indices e.Paper.policy with
      | None -> ()
      | Some allowed ->
          let report = Lint.check ~allowed g in
          if not (Dataflow.analyze ~allowed g).Dataflow.certified then
            Alcotest.(check bool)
              (Printf.sprintf "%s: uncertifiable => at least one error"
                 e.Paper.name)
              true
              (errors_of report <> []))
    Paper.all

let test_explicit_vs_implicit_classification () =
  let direct = Lint.check ~allowed:Iset.empty (Paper.graph Paper.direct_flow) in
  Alcotest.(check (list string))
    "direct-flow is explicit" [ "explicit-flow" ] (rules_of direct);
  let branch =
    Lint.check ~allowed:(Iset.of_list [ 1 ]) (Paper.graph Paper.branch_allowed)
  in
  Alcotest.(check bool) "withheld test => implicit flow" true
    (List.exists
       (fun (f : Lint.finding) -> f.Lint.rule = Lint.Implicit_flow)
       branch.Lint.findings)

(* A two-halt program where the output is clean at both halts but WHICH
   halt is reached depends on the withheld input. *)
let test_which_halt_channel () =
  let g =
    Graph.make ~name:"two-halts" ~arity:1 ~entry:0
      [| Graph.Start 1; Graph.Decision (x 0 =: i 0, 2, 3); Graph.Halt; Graph.Halt |]
  in
  let report = Lint.check ~allowed:Iset.empty g in
  Alcotest.(check bool) "not certified" false report.Lint.certified;
  match errors_of report with
  | [ f ] ->
      Alcotest.(check string)
        "rule" "termination-channel" (Lint.rule_name f.Lint.rule);
      Alcotest.(check int) "input" 0 f.Lint.input
  | fs -> Alcotest.failf "expected exactly one error, got %d" (List.length fs)

(* The spin program: certification (halt-taint) is blind to it — the only
   leak is whether the program halts at all. The linter's predicate-aware
   termination rule flags it as a warning, keeping the verdict aligned
   with certification. *)
let spin_graph =
  Graph.make ~name:"spin" ~arity:1 ~entry:0
    [|
      Graph.Start 1;
      Graph.Decision (x 0 =: i 0, 2, 3);
      Graph.Decision (Expr.True, 2, 2);
      Graph.Assign (Var.Out, i 1, 4);
      Graph.Halt;
    |]

let test_termination_warning_on_spin () =
  let report = Lint.check ~allowed:Iset.empty spin_graph in
  Alcotest.(check bool) "halt-taint certifies (the blind spot)" true
    (Dataflow.analyze ~allowed:Iset.empty spin_graph).Dataflow.certified;
  Alcotest.(check bool) "linter verdict agrees" true report.Lint.certified;
  match report.Lint.findings with
  | [ f ] ->
      Alcotest.(check string)
        "rule" "termination-channel" (Lint.rule_name f.Lint.rule);
      Alcotest.(check string) "severity" "warning"
        (Lint.severity_name f.Lint.severity);
      Alcotest.(check int) "input" 0 f.Lint.input
  | fs -> Alcotest.failf "expected exactly one warning, got %d" (List.length fs)

(* ... and the spin leak is real: the guarded mechanism observable-hangs on
   x0 = 0 only, which is unsound under allow(). *)
let test_spin_leak_is_real () =
  let m =
    Secpol_staticflow.Halt_guard.mechanism ~fuel:200 ~policy:Policy.allow_none
      spin_graph
  in
  check_unsound "termination channel defeats the halt guard" Policy.allow_none
    m
    (Secpol_core.Space.ints ~lo:0 ~hi:1 ~arity:1)

(* --- Source spans -------------------------------------------------------- *)

let test_spl_findings_have_spans () =
  let report = lint_spl "wage_gap.spl" in
  Alcotest.(check bool) "not certified" false report.Lint.certified;
  let errs = errors_of report in
  Alcotest.(check bool) "has errors" true (errs <> []);
  List.iter
    (fun (f : Lint.finding) ->
      (match f.Lint.span with
      | Some _ -> ()
      | None -> Alcotest.failf "finding %S has no span" f.Lint.message);
      Alcotest.(check bool)
        (Printf.sprintf "witness of %S is non-empty" f.Lint.message)
        true (f.Lint.witness <> []);
      List.iter
        (fun (s : Lint.step) ->
          match s.Lint.span with
          | Some sp ->
              Alcotest.(check bool)
                (Printf.sprintf "step %S has a sane line" s.Lint.label)
                true
                (Span.line sp >= 1)
          | None -> Alcotest.failf "step %S has no span" s.Lint.label)
        f.Lint.witness)
    errs;
  Alcotest.(check bool) "an implicit-flow finding is present" true
    (List.exists
       (fun (f : Lint.finding) -> f.Lint.rule = Lint.Implicit_flow)
       errs)

let test_imprecision_warning () =
  let report = lint_spl "bounded_search.spl" in
  Alcotest.(check bool) "not certified" false report.Lint.certified;
  Alcotest.(check (list string))
    "explicit error plus imprecision warning"
    [ "explicit-flow"; "imprecision" ] (rules_of report);
  List.iter
    (fun (f : Lint.finding) ->
      if f.Lint.rule = Lint.Imprecision then begin
        Alcotest.(check string) "imprecision is a warning" "warning"
          (Lint.severity_name f.Lint.severity);
        Alcotest.(check int) "about the dead operand x1" 1 f.Lint.input
      end)
    report.Lint.findings

let test_certified_examples_are_clean () =
  List.iter
    (fun file ->
      let report = lint_spl file in
      Alcotest.(check bool) (file ^ " certified") true report.Lint.certified;
      Alcotest.(check (list string)) (file ^ " has no findings") [] (rules_of report))
    [ "gcd.spl"; "mix.spl" ]

(* --- JSON ----------------------------------------------------------------- *)

let rec json_equal (a : Lint.Json.value) (b : Lint.Json.value) =
  match (a, b) with
  | Lint.Json.Null, Lint.Json.Null -> true
  | Lint.Json.Bool x, Lint.Json.Bool y -> x = y
  | Lint.Json.Int x, Lint.Json.Int y -> x = y
  | Lint.Json.String x, Lint.Json.String y -> String.equal x y
  | Lint.Json.List x, Lint.Json.List y ->
      List.length x = List.length y && List.for_all2 json_equal x y
  | Lint.Json.Obj x, Lint.Json.Obj y ->
      List.length x = List.length y
      && List.for_all2
           (fun (k1, v1) (k2, v2) -> String.equal k1 k2 && json_equal v1 v2)
           x y
  | _ -> false

let test_json_roundtrip () =
  let reports =
    [
      lint_spl "wage_gap.spl";
      lint_spl "bounded_search.spl";
      lint_spl "gcd.spl";
      Lint.check ~allowed:Iset.empty (Paper.graph Paper.direct_flow);
      Lint.check ~allowed:Iset.empty spin_graph;
    ]
  in
  List.iter
    (fun r ->
      let tree = Lint.to_json r in
      match Lint.Json.parse (Lint.Json.render tree) with
      | Ok tree' ->
          Alcotest.(check bool)
            (r.Lint.program ^ ": render/parse round-trip")
            true (json_equal tree tree')
      | Error m -> Alcotest.failf "%s: JSON did not parse back: %s" r.Lint.program m)
    reports

let test_json_fields () =
  let report = lint_spl "wage_gap.spl" in
  match Lint.Json.parse (Lint.to_json_string report) with
  | Error m -> Alcotest.failf "parse: %s" m
  | Ok v -> (
      (match Lint.Json.member "certified" v with
      | Some (Lint.Json.Bool false) -> ()
      | _ -> Alcotest.fail "certified field should be false");
      (match Lint.Json.member "allowed" v with
      | Some (Lint.Json.List [ Lint.Json.Int 2 ]) -> ()
      | _ -> Alcotest.fail "allowed field should be [2]");
      match Lint.Json.member "findings" v with
      | Some (Lint.Json.List (first :: _ as fs)) ->
          Alcotest.(check int)
            "as many JSON findings as report findings"
            (List.length report.Lint.findings)
            (List.length fs);
          (match Lint.Json.member "rule" first with
          | Some (Lint.Json.String _) -> ()
          | _ -> Alcotest.fail "finding lacks a rule");
          (match Lint.Json.member "span" first with
          | Some (Lint.Json.Obj _) -> ()
          | _ -> Alcotest.fail "finding lacks a span object");
          (match Lint.Json.member "witness" first with
          | Some (Lint.Json.List (_ :: _)) -> ()
          | _ -> Alcotest.fail "finding lacks a witness")
      | _ -> Alcotest.fail "findings field should be a non-empty list")

let test_json_parser_edge_cases () =
  let ok s v =
    match Lint.Json.parse s with
    | Ok v' ->
        Alcotest.(check bool) (Printf.sprintf "parse %S" s) true (json_equal v v')
    | Error m -> Alcotest.failf "parse %S: %s" s m
  in
  ok {| {"a": [1, -2, null], "b": "q\"\\\n", "c": {}} |}
    (Lint.Json.Obj
       [
         ("a", Lint.Json.List [ Lint.Json.Int 1; Lint.Json.Int (-2); Lint.Json.Null ]);
         ("b", Lint.Json.String "q\"\\\n");
         ("c", Lint.Json.Obj []);
       ]);
  ok "[]" (Lint.Json.List []);
  ok "true" (Lint.Json.Bool true);
  List.iter
    (fun s ->
      match Lint.Json.parse s with
      | Ok _ -> Alcotest.failf "parse %S should fail" s
      | Error _ -> ())
    [ "{"; "[1,]"; "\"unterminated"; "12 34"; "nul"; "-" ]

let () =
  Alcotest.run "secpol-lint"
    [
      ( "differential",
        [
          Alcotest.test_case "corpus-policy-sweep" `Quick test_differential_corpus_sweep;
          prop_differential_generated;
        ] );
      ( "static-vs-dynamic",
        [
          Alcotest.test_case "corpus-superset" `Quick test_static_superset_dynamic_corpus;
          prop_static_superset_dynamic_generated;
        ] );
      ( "findings",
        [
          Alcotest.test_case "witness-structure" `Quick test_witness_structure;
          Alcotest.test_case "uncertifiable-has-findings" `Quick test_uncertifiable_corpus_has_findings;
          Alcotest.test_case "explicit-vs-implicit" `Quick test_explicit_vs_implicit_classification;
          Alcotest.test_case "which-halt-channel" `Quick test_which_halt_channel;
          Alcotest.test_case "spin-warning" `Quick test_termination_warning_on_spin;
          Alcotest.test_case "spin-leak-real" `Quick test_spin_leak_is_real;
        ] );
      ( "spans",
        [
          Alcotest.test_case "spl-findings-have-spans" `Quick test_spl_findings_have_spans;
          Alcotest.test_case "imprecision" `Quick test_imprecision_warning;
          Alcotest.test_case "clean-examples" `Quick test_certified_examples_are_clean;
        ] );
      ( "json",
        [
          Alcotest.test_case "roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "fields" `Quick test_json_fields;
          Alcotest.test_case "parser-edge-cases" `Quick test_json_parser_edge_cases;
        ] );
    ]
