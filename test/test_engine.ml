(* The parallel enforcement engine: pool scheduling, the compute-once
   verdict cache, sound memoization (soundness makes caching on the
   I-projection legal), and the parallel exhaustive drivers — everything
   promised bit-identical to the sequential code paths, whatever [jobs]. *)

open Util
module Pool = Secpol_engine.Pool
module Cache = Secpol_engine.Cache
module Memo = Secpol_engine.Memo
module Exhaustive = Secpol_engine.Exhaustive
module Report = Secpol_fault.Report
module Sweep = Secpol_fault.Sweep
module Crash = Secpol_fault.Crash
module Json = Secpol_staticflow.Lint.Json
module Paper = Secpol_corpus.Paper_programs
module Generator = Secpol_corpus.Generator
module Compile = Secpol_flowgraph.Compile
module Dynamic = Secpol_taint.Dynamic
module Runner = Secpol_journal.Runner

let all_jobs = [ 1; 2; 4; 7 ]

(* --- pool ----------------------------------------------------------- *)

let test_pool_map_order () =
  let n = 37 in
  let expected = Array.init n (fun i -> i * i) in
  List.iter
    (fun jobs ->
      let got, stats = Pool.map ~jobs n (fun i -> i * i) in
      Alcotest.(check (array int))
        (Printf.sprintf "jobs=%d results in index order" jobs)
        expected got;
      Alcotest.(check int) "task_count" n stats.Pool.task_count;
      let tasks, _, _ = Pool.total stats in
      Alcotest.(check int) "worker tasks sum to task_count" n tasks)
    all_jobs

let test_pool_edges () =
  let empty, stats = Pool.map ~jobs:4 0 (fun _ -> assert false) in
  Alcotest.(check int) "empty map" 0 (Array.length empty);
  Alcotest.(check int) "empty task_count" 0 stats.Pool.task_count;
  let got, stats = Pool.map ~jobs:8 3 (fun i -> i) in
  Alcotest.(check (array int)) "n < jobs" [| 0; 1; 2 |] got;
  Alcotest.(check bool) "never more domains than tasks" true
    (stats.Pool.jobs <= 3)

let test_pool_exception () =
  Alcotest.check_raises "failing task's exception propagates"
    (Failure "boom") (fun () ->
      ignore (Pool.map ~jobs:4 40 (fun i -> if i = 17 then failwith "boom" else i)))

let test_pool_run_effects () =
  let hits = Array.make 25 0 in
  let stats = Pool.run ~jobs:4 25 (fun i -> hits.(i) <- hits.(i) + 1) in
  Alcotest.(check (array int)) "each task ran exactly once" (Array.make 25 1) hits;
  Alcotest.(check int) "task_count" 25 stats.Pool.task_count

(* --- cache ----------------------------------------------------------- *)

let q_first = Program.of_fun ~name:"first" ~arity:2 (fun a -> a.(0))
let some_reply i = Mechanism.respond (Mechanism.of_program q_first) (ints [ i; 0 ])

let key ?(digest = "d") ?(tag = "t") i =
  { Cache.digest; tag; projection = Value.int i }

let test_cache_compute_once () =
  let c = Cache.create () in
  let computed = ref 0 in
  let f () = incr computed; some_reply 7 in
  for _ = 1 to 5 do
    let r = Cache.find_or_compute c (key 0) f in
    Alcotest.(check string) "cached reply" (show_mech_reply (some_reply 7))
      (show_mech_reply r)
  done;
  Alcotest.(check int) "computed once" 1 !computed;
  Alcotest.(check int) "one miss" 1 (Cache.misses c);
  Alcotest.(check int) "four hits" 4 (Cache.hits c);
  ignore (Cache.find_or_compute c (key 1) f);
  ignore (Cache.find_or_compute c (key ~tag:"u" 0) f);
  ignore (Cache.find_or_compute c (key ~digest:"e" 0) f);
  Alcotest.(check int) "distinct keys are distinct entries" 4 (Cache.size c)

let test_cache_failure_releases_key () =
  let c = Cache.create () in
  Alcotest.check_raises "compute failure propagates" (Failure "flaky")
    (fun () -> ignore (Cache.find_or_compute c (key 0) (fun () -> failwith "flaky")));
  (* The key was released: the next requester recomputes. *)
  let r = Cache.find_or_compute c (key 0) (fun () -> some_reply 3) in
  Alcotest.(check string) "retry computes" (show_mech_reply (some_reply 3))
    (show_mech_reply r);
  Alcotest.(check int) "only the success is resident" 1 (Cache.size c)

let test_cache_concurrent_compute_once () =
  let c = Cache.create () in
  let computed = Atomic.make 0 in
  let f () = Atomic.incr computed; some_reply 1 in
  let n = 64 in
  ignore (Pool.run ~jobs:4 n (fun _ -> ignore (Cache.find_or_compute c (key 0) f)));
  Alcotest.(check int) "one computation across domains" 1 (Atomic.get computed);
  Alcotest.(check int) "deterministic misses" 1 (Cache.misses c);
  Alcotest.(check int) "deterministic hits" (n - 1) (Cache.hits c)

(* A bounded cache holds at most [capacity] verdicts: the least recently
   used one is evicted, a repeat of it recomputes, and a touched entry
   survives the overflow that would otherwise have taken it. *)
let test_cache_lru_eviction () =
  let c = Cache.create ~capacity:2 () in
  Cache.store c (key 0) (some_reply 0);
  Cache.store c (key 1) (some_reply 1);
  (* Touch key 0: key 1 becomes the LRU victim. *)
  (match Cache.find c (key 0) with
  | Some r ->
      Alcotest.(check string) "touched entry intact"
        (show_mech_reply (some_reply 0)) (show_mech_reply r)
  | None -> Alcotest.fail "key 0 missing before overflow");
  Cache.store c (key 2) (some_reply 2);
  Alcotest.(check int) "capacity respected" 2 (Cache.size c);
  Alcotest.(check int) "one eviction" 1 (Cache.evictions c);
  Alcotest.(check bool) "LRU key evicted" true (Cache.find c (key 1) = None);
  Alcotest.(check bool) "recently used key survived" true
    (Cache.find c (key 0) <> None);
  Alcotest.(check bool) "new key resident" true (Cache.find c (key 2) <> None);
  (* The evicted key recomputes — forgetting is the only effect. *)
  let r = Cache.find_or_compute c (key 1) (fun () -> some_reply 1) in
  Alcotest.(check string) "evicted key recomputed"
    (show_mech_reply (some_reply 1)) (show_mech_reply r);
  Alcotest.(check int) "recompute evicts again" 2 (Cache.evictions c);
  Alcotest.(check bool) "unbounded cache never evicts" true
    (Cache.evictions (Cache.create ()) = 0);
  Alcotest.check_raises "capacity must be positive"
    (Invalid_argument "Cache.create: capacity < 1") (fun () ->
      ignore (Cache.create ~capacity:0 ()))

(* --- memoization ------------------------------------------------------ *)

(* The satellite property, exhaustively: for every corpus program and every
   allow(J) policy, the checked-memoized mechanism agrees with the direct
   one on the whole input space at the view it is sound for, and unsound
   mechanisms bypass the cache untouched. *)

let canonical r =
  let cfg = Soundness.default in
  Soundness.canonicalize cfg (Mechanism.observe cfg.Soundness.view r)

let check_memo_agrees name policy space direct =
  let cache = Cache.create () in
  let g_tag = Printf.sprintf "%s|%s" name (Policy.name policy) in
  let memo, verdict =
    Memo.checked ~cache ~digest:name ~tag:g_tag ~policy ~space direct
  in
  match verdict with
  | Soundness.Unsound _ ->
      Alcotest.(check bool)
        (g_tag ^ ": unsound mechanism returned untouched")
        true (memo == direct)
  | Soundness.Sound ->
      Seq.iter
        (fun a ->
          Alcotest.check obs_testable
            (Printf.sprintf "%s on %s" g_tag (Report.show_input a))
            (canonical (Mechanism.respond direct a))
            (canonical (Mechanism.respond memo a)))
        (Space.enumerate space);
      Alcotest.(check bool) (g_tag ^ ": memoized mechanism stays sound") true
        (Soundness.is_sound policy memo space)

let test_memo_corpus () =
  List.iter
    (fun (e : Paper.entry) ->
      let g = Paper.graph e in
      let arity = e.Paper.prog.Secpol_flowgraph.Ast.arity in
      List.iter
        (fun policy ->
          let direct =
            Dynamic.mechanism
              (Dynamic.config ~mode:Dynamic.Surveillance policy)
              g
          in
          check_memo_agrees e.Paper.name policy e.Paper.space direct)
        (Report.policies_of_arity arity))
    Paper.all

let prop_memo_random_programs =
  qtest ~count:60 "memo(checked) agrees with direct on random programs"
    (Generator.arbitrary Generator.default)
    (fun prog ->
      let g = Compile.compile prog in
      let space = Generator.space_for Generator.default in
      let policy = Policy.allow [ 0 ] in
      let direct =
        Dynamic.mechanism (Dynamic.config ~mode:Dynamic.Surveillance policy) g
      in
      check_memo_agrees (Runner.graph_hash g) policy space direct;
      true)

let test_memo_exact_any_mechanism () =
  (* Exact keys are sound for any mechanism — including raw Q. *)
  let cache = Cache.create () in
  let e = Paper.find "ex7" in
  let q = Mechanism.of_program (Paper.program e) in
  let memo = Memo.exact ~cache ~digest:"ex7" ~tag:"raw" q in
  Seq.iter
    (fun a ->
      Alcotest.(check string) "exact memo is the identity"
        (show_mech_reply (Mechanism.respond q a))
        (show_mech_reply (Mechanism.respond memo a)))
    (Space.enumerate e.Paper.space);
  (* Second full pass: every lookup is now a hit. *)
  Seq.iter (fun a -> ignore (Mechanism.respond memo a))
    (Space.enumerate e.Paper.space);
  Alcotest.(check int) "misses = distinct inputs" (Space.size e.Paper.space)
    (Cache.misses cache);
  Alcotest.(check int) "hits = repeated inputs" (Space.size e.Paper.space)
    (Cache.hits cache)

(* --- exhaustive drivers (through the Analyze facade) ------------------- *)

module Analyze = Secpol.Analyze

let verdict_str v = Format.asprintf "%a" Soundness.pp_verdict v
let both_algos = [ Analyze.Brute; Analyze.Refine ]

let test_exhaustive_check_parity () =
  List.iter
    (fun (e : Paper.entry) ->
      let g = Paper.graph e in
      let arity = e.Paper.prog.Secpol_flowgraph.Ast.arity in
      List.iter
        (fun policy ->
          let m =
            Dynamic.mechanism
              (Dynamic.config ~mode:Dynamic.Surveillance policy)
              g
          in
          let seq = Soundness.check policy m e.Paper.space in
          List.iter
            (fun jobs ->
              List.iter
                (fun algo ->
                  let cfg = Analyze.config ~jobs ~algo e.Paper.space in
                  let got, _ = Analyze.soundness cfg policy m in
                  Alcotest.(check string)
                    (Printf.sprintf
                       "%s/%s jobs=%d algo=%s: same verdict, same witness"
                       e.Paper.name (Policy.name policy) jobs
                       (Analyze.algo_name algo))
                    (verdict_str seq) (verdict_str got))
                both_algos)
            [ 1; 4 ])
        (Report.policies_of_arity arity))
    Paper.all

let test_exhaustive_check_timed_view () =
  let e = Paper.find "ex7" in
  let p = e.Paper.policy in
  let m =
    Dynamic.mechanism
      (Dynamic.config ~mode:Dynamic.Surveillance p)
      (Paper.graph e)
  in
  let seq = Soundness.check ~config:Soundness.timed p m e.Paper.space in
  List.iter
    (fun algo ->
      let cfg = Analyze.config ~view:`Timed ~jobs:4 ~algo e.Paper.space in
      let got, _ = Analyze.soundness cfg p m in
      Alcotest.(check string)
        (Printf.sprintf "timed view parity (%s)" (Analyze.algo_name algo))
        (verdict_str seq) (verdict_str got))
    both_algos

let test_exhaustive_maximal_parity () =
  List.iter
    (fun name ->
      let e = Paper.find name in
      let q = Paper.program e in
      let p = e.Paper.policy in
      let seq = Maximal.build p q e.Paper.space in
      List.iter
        (fun algo ->
          let cfg = Analyze.config ~jobs:4 ~algo e.Paper.space in
          let got, _ = Analyze.maximal cfg p q in
          Seq.iter
            (fun a ->
              Alcotest.(check string)
                (Printf.sprintf "%s maximal (%s) on %s" name
                   (Analyze.algo_name algo) (Report.show_input a))
                (show_mech_reply (Mechanism.respond seq a))
                (show_mech_reply (Mechanism.respond got a)))
            (Space.enumerate e.Paper.space);
          Alcotest.(check (pair int int))
            (Printf.sprintf "%s granted classes (%s)" name
               (Analyze.algo_name algo))
            (Maximal.granted_classes p q e.Paper.space)
            (fst (Analyze.granted_classes cfg p q));
          Alcotest.(check (float 1e-12))
            (Printf.sprintf "%s maximal ratio (%s)" name
               (Analyze.algo_name algo))
            (Completeness.ratio seq ~q e.Paper.space)
            (fst (Analyze.maximal_ratio cfg p q)))
        both_algos)
    [ "ex7"; "ex8"; "direct-flow" ]

(* --- determinism of the parallel sweeps -------------------------------- *)

(* The headline promise: reduced chaos and crash sweeps render byte-for-byte
   the same report — JSON and text — at jobs=1 and jobs=4. [pool] telemetry
   is outside both renderings by design. *)

let test_sweep_jobs_byte_identity () =
  let entries = [ Paper.find "ex7" ] in
  let at jobs = Sweep.run ~entries ~seeds:30 ~jobs () in
  let r1 = at 1 and r4 = at 4 in
  Alcotest.(check string) "chaos JSON identical across jobs"
    (Sweep.to_json_string r1) (Sweep.to_json_string r4);
  Alcotest.(check string) "chaos text identical across jobs"
    (Format.asprintf "%a" Sweep.pp r1)
    (Format.asprintf "%a" Sweep.pp r4);
  Alcotest.(check bool) "sweep is fail-secure" true r1.Sweep.ok;
  (* The cache counters are part of the deterministic report. *)
  let json = Sweep.to_json_string r1 in
  let contains needle =
    let n = String.length needle and h = String.length json in
    let rec at i = i + n <= h && (String.sub json i n = needle || at (i + 1)) in
    at 0
  in
  Alcotest.(check bool) "cache hits visible in the JSON totals" true
    (contains "\"cache_hits\"");
  Alcotest.(check bool) "cache misses visible in the JSON totals" true
    (contains "\"cache_misses\"")

let test_crash_jobs_byte_identity () =
  let entries = [ Paper.find "ex7" ] in
  let at jobs = Crash.run ~entries ~crash_points:4 ~jobs () in
  let r1 = at 1 and r4 = at 4 in
  Alcotest.(check string) "crash JSON identical across jobs"
    (Crash.to_json_string r1) (Crash.to_json_string r4);
  Alcotest.(check string) "crash text identical across jobs"
    (Format.asprintf "%a" Crash.pp r1)
    (Format.asprintf "%a" Crash.pp r4);
  Alcotest.(check bool) "crash sweep is clean" true r1.Crash.ok

(* --- report ordering --------------------------------------------------- *)

let test_report_findings_sorted () =
  let f fields detail = { Report.subject = [ "s" ]; fields; detail } in
  let a = f [ ("k", Json.Int 2) ] "z" in
  let b = f [ ("k", Json.Int 1) ] "y" in
  let c = f [ ("k", Json.Int 1) ] "x" in
  Alcotest.(check bool) "fields dominate" true (Report.compare_finding b a < 0);
  Alcotest.(check bool) "detail breaks ties" true (Report.compare_finding c b < 0);
  let sorted = Report.sort_findings [ a; b; c ] in
  Alcotest.(check (list string)) "stable sorted order" [ "x"; "y"; "z" ]
    (List.map (fun (x : Report.finding) -> x.Report.detail) sorted)

let () =
  Alcotest.run "engine"
    [
      ( "pool",
        [
          Alcotest.test_case "map preserves index order" `Quick test_pool_map_order;
          Alcotest.test_case "edge cases" `Quick test_pool_edges;
          Alcotest.test_case "exception propagation" `Quick test_pool_exception;
          Alcotest.test_case "effect-only run" `Quick test_pool_run_effects;
        ] );
      ( "cache",
        [
          Alcotest.test_case "compute-once, counted" `Quick test_cache_compute_once;
          Alcotest.test_case "failure releases the key" `Quick
            test_cache_failure_releases_key;
          Alcotest.test_case "concurrent compute-once" `Quick
            test_cache_concurrent_compute_once;
          Alcotest.test_case "LRU bound evicts and recomputes" `Quick
            test_cache_lru_eviction;
        ] );
      ( "memo",
        [
          Alcotest.test_case "corpus x allow(J): memoized = direct" `Slow
            test_memo_corpus;
          prop_memo_random_programs;
          Alcotest.test_case "exact keys deduplicate any mechanism" `Quick
            test_memo_exact_any_mechanism;
        ] );
      ( "exhaustive",
        [
          Alcotest.test_case "soundness verdict parity" `Slow
            test_exhaustive_check_parity;
          Alcotest.test_case "timed-view parity" `Quick
            test_exhaustive_check_timed_view;
          Alcotest.test_case "maximal mechanism parity" `Quick
            test_exhaustive_maximal_parity;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "chaos report byte-identical across jobs" `Slow
            test_sweep_jobs_byte_identity;
          Alcotest.test_case "crash report byte-identical across jobs" `Slow
            test_crash_jobs_byte_identity;
          Alcotest.test_case "findings sorted by stable key" `Quick
            test_report_findings_sorted;
        ] );
    ]
