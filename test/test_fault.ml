(* The fail-secure enforcement runtime: seeded fault plans, injection into
   the monitors, the Guard supervisor's retry/backoff and watchdogs, and the
   properties the issue demands — soundness modulo notices under every fault
   plan, guarded below unfaulted in the completeness order, transient
   retries recovering full completeness. *)

open Util
module Iset = Secpol_core.Iset
module Hook = Secpol_flowgraph.Hook
module Expr = Secpol_flowgraph.Expr
module Interp = Secpol_flowgraph.Interp
module Dynamic = Secpol_taint.Dynamic
module Instrument = Secpol_taint.Instrument
module Paper = Secpol_corpus.Paper_programs
module Plan = Secpol_fault.Plan
module Injector = Secpol_fault.Injector
module Guard = Secpol_fault.Guard
module Sweep = Secpol_fault.Sweep
module Media = Secpol_journal.Media
module Runner = Secpol_journal.Runner

(* Entries with total programs and small spaces, used for the exhaustive
   property checks. *)
let entries = [ Paper.forgetting; Paper.branch_allowed; Paper.direct_flow ]

let clean_mech (e : Paper.entry) =
  Dynamic.mechanism (Dynamic.config ~mode:Dynamic.Surveillance e.Paper.policy) (Paper.graph e)

let faulty_mech (e : Paper.entry) injector =
  Dynamic.mechanism
    (Dynamic.config
       ~hook:(Injector.hook injector)
       ~mode:Dynamic.Surveillance e.Paper.policy)
    (Paper.graph e)

(* --- plans ------------------------------------------------------------- *)

let test_plan_deterministic () =
  for seed = 0 to 49 do
    let p1 = Plan.generate ~seed () and p2 = Plan.generate ~seed () in
    if p1 <> p2 then Alcotest.failf "seed %d: generate not deterministic" seed;
    if p1.Plan.points = [] then Alcotest.failf "seed %d: empty plan" seed;
    List.iter
      (fun (pt : Plan.point) ->
        if pt.Plan.at_step < 0 || pt.Plan.at_step >= 24 then
          Alcotest.failf "seed %d: step %d outside horizon" seed pt.Plan.at_step)
      p1.Plan.points;
    let steps = List.map (fun (pt : Plan.point) -> pt.Plan.at_step) p1.Plan.points in
    if List.sort compare steps <> steps then
      Alcotest.failf "seed %d: points not sorted" seed
  done

let test_plan_make_dedupes () =
  let p =
    Plan.make
      [
        { Plan.at_step = 5; kind = Plan.Crash };
        { Plan.at_step = 2; kind = Plan.Exhaust_fuel };
        { Plan.at_step = 5; kind = Plan.Corrupt_taint };
      ]
  in
  Alcotest.(check int) "one point per step" 2 (List.length p.Plan.points);
  Alcotest.(check string) "describe" "exhaust-fuel@2 crash@5" (Plan.describe p)

(* --- injector ---------------------------------------------------------- *)

let test_injector_transient_clears () =
  let plan = Plan.make [ { Plan.at_step = 0; kind = Plan.Transient 2 } ] in
  let inj = Injector.create plan in
  let hook = Injector.hook inj in
  Alcotest.(check bool) "fires on attempt 1" true (hook ~step:0 <> None);
  Injector.next_attempt inj;
  Alcotest.(check bool) "fires on attempt 2" true (hook ~step:0 <> None);
  Injector.next_attempt inj;
  Alcotest.(check bool) "cleared on attempt 3" true (hook ~step:0 = None);
  Alcotest.(check int) "fired twice in total" 2 (Injector.fired_total inj);
  Injector.reset inj;
  Alcotest.(check int) "reset zeroes counters" 0 (Injector.fired_total inj);
  Alcotest.(check bool) "fires again after reset" true (hook ~step:0 <> None)

let test_injector_persistent_always_fires () =
  let plan = Plan.make [ { Plan.at_step = 1; kind = Plan.Crash } ] in
  let inj = Injector.create plan in
  let hook = Injector.hook inj in
  for _ = 1 to 5 do
    Alcotest.(check bool) "fires every attempt" true (hook ~step:1 <> None);
    Alcotest.(check bool) "only at its step" true (hook ~step:0 = None);
    Injector.next_attempt inj
  done

(* --- the Guard supervisor ---------------------------------------------- *)

(* forgetting: y := x0; if x1 = 0 then y := x1, under allow(1).
   Clean surveillance grants 0 exactly when x1 = 0. *)

let test_guard_transient_recovers () =
  let e = Paper.forgetting in
  let inj =
    Injector.create (Plan.make [ { Plan.at_step = 0; kind = Plan.Transient 2 } ])
  in
  let m = faulty_mech e inj in
  (* 2 retries = 3 attempts; the fault clears on attempt 3. *)
  (match Guard.run ~config:{ Guard.default with Guard.retries = 2 } ~injector:inj m (ints [ 3; 0 ]) with
  | Guard.Output v, _ -> Alcotest.check value_testable "Q's real output" (Value.int 0) v
  | Guard.Notice n, _ -> Alcotest.failf "expected recovery, got notice %s" n
  | Guard.Degraded _, _ -> Alcotest.fail "expected recovery, got degraded");
  Alcotest.(check int) "the fault really fired" 2 (Injector.fired_total inj);
  (* Same transient on a denied input: the retried attempt re-delivers the
     clean denial, not a degraded notice. *)
  (match Guard.run ~config:{ Guard.default with Guard.retries = 2 } ~injector:inj m (ints [ 3; 1 ]) with
  | Guard.Notice n, _ -> Alcotest.(check string) "clean notice" Dynamic.notice n
  | Guard.Output v, _ -> Alcotest.failf "expected denial, got grant %s" (Value.to_string v)
  | Guard.Degraded _, _ -> Alcotest.fail "expected denial, got degraded")

let test_guard_insufficient_retries_degrade () =
  let e = Paper.forgetting in
  let inj =
    Injector.create (Plan.make [ { Plan.at_step = 0; kind = Plan.Transient 3 } ])
  in
  let m = faulty_mech e inj in
  match Guard.run ~config:{ Guard.default with Guard.retries = 1 } ~injector:inj m (ints [ 3; 0 ]) with
  | Guard.Degraded r, _ ->
      Alcotest.(check int) "both attempts failed" 2 r.Guard.attempts;
      Alcotest.(check int) "one symptom per attempt" 2 (List.length r.Guard.symptoms)
  | Guard.Output _, _ -> Alcotest.fail "fail-open: transient outlasted the retry budget yet run granted"
  | Guard.Notice n, _ -> Alcotest.failf "expected degraded, got notice %s" n

let test_guard_persistent_degrades_never_grants () =
  let e = Paper.forgetting in
  let inj = Injector.create (Plan.make [ { Plan.at_step = 0; kind = Plan.Crash } ]) in
  let m = faulty_mech e inj in
  List.iter
    (fun retries ->
      match Guard.run ~config:{ Guard.default with Guard.retries } ~injector:inj m (ints [ 3; 0 ]) with
      | Guard.Degraded r, steps ->
          Alcotest.(check int) "attempts = retries + 1" (retries + 1) r.Guard.attempts;
          (* Backoff penalty: base * (2^0 + ... + 2^(retries-1)). *)
          let expected_backoff = 4 * ((1 lsl retries) - 1) in
          Alcotest.(check int) "backoff accounted" expected_backoff r.Guard.backoff_steps;
          if steps < expected_backoff then
            Alcotest.failf "steps %d below backoff %d" steps expected_backoff
      | Guard.Output v, _ ->
          Alcotest.failf "fail-open under persistent crash: granted %s" (Value.to_string v)
      | Guard.Notice n, _ -> Alcotest.failf "expected degraded, got notice %s" n)
    [ 0; 1; 2; 3 ]

let test_guard_fuel_fault_is_notice () =
  (* An injected fuel collapse is already a violation notice at the monitor
     layer; the guard passes it through rather than retrying. *)
  let e = Paper.forgetting in
  let inj = Injector.create (Plan.make [ { Plan.at_step = 0; kind = Plan.Exhaust_fuel } ]) in
  let m = faulty_mech e inj in
  match Guard.run ~injector:inj m (ints [ 3; 0 ]) with
  | Guard.Notice n, _ -> Alcotest.(check string) "fuel notice" Dynamic.fuel_notice n
  | _ -> Alcotest.fail "expected the fuel watchdog notice"

let test_guard_no_faults_bit_identical () =
  List.iter
    (fun (e : Paper.entry) ->
      let m = clean_mech e in
      Seq.iter
        (fun a ->
          let direct = Mechanism.respond m a in
          let guarded = Guard.reply_of_outcome (Guard.run m a) in
          if direct <> guarded then
            Alcotest.failf "%s: guard not bit-identical without faults" e.Paper.name)
        (Space.enumerate e.Paper.space))
    entries

let test_guard_absorbs_exceptions () =
  let bomb =
    Mechanism.make ~name:"bomb" ~arity:1 (fun _ -> failwith "kaboom")
  in
  match Guard.run bomb (ints [ 0 ]) with
  | Guard.Degraded r, _ ->
      Alcotest.(check bool) "symptom recorded" true
        (List.exists (fun s -> String.length s > 0) r.Guard.symptoms)
  | _ -> Alcotest.fail "expected a raising mechanism to degrade"

let test_guard_step_budget_watchdog () =
  let slow =
    Mechanism.make ~name:"slow" ~arity:1 (fun _ ->
        { Mechanism.response = Mechanism.Granted (Value.int 7); steps = 1000 })
  in
  (match Guard.run ~config:{ Guard.default with Guard.step_budget = Some 10 } slow (ints [ 0 ]) with
  | Guard.Degraded _, _ -> ()
  | _ -> Alcotest.fail "expected the step-budget watchdog to degrade");
  match Guard.run ~config:{ Guard.default with Guard.step_budget = Some 2000 } slow (ints [ 0 ]) with
  | Guard.Output v, _ -> Alcotest.check value_testable "under budget grants" (Value.int 7) v
  | _ -> Alcotest.fail "expected a grant under a loose budget"

let test_protect_replies_stay_in_E_u_F () =
  let bomb = Mechanism.make ~name:"bomb" ~arity:1 (fun _ -> failwith "kaboom") in
  let g = Guard.protect bomb in
  (match (Mechanism.respond g (ints [ 0 ])).Mechanism.response with
  | Mechanism.Denied n -> Alcotest.(check string) "degraded notice" Guard.degraded_notice n
  | _ -> Alcotest.fail "expected Denied degraded_notice");
  Alcotest.(check string) "wrapper name" "guard(bomb)" g.Mechanism.name

(* --- totality of the monitor layer -------------------------------------- *)

let test_dynamic_total_on_bad_inputs () =
  let e = Paper.forgetting in
  let m = clean_mech e in
  (* Wrong arity through Dynamic.run directly (Mechanism.respond checks
     before dispatch, so go underneath it). *)
  let cfg = Dynamic.config ~mode:Dynamic.Surveillance e.Paper.policy in
  (match (Dynamic.run cfg (Paper.graph e) (ints [ 1 ])).Mechanism.response with
  | Mechanism.Failed _ -> ()
  | _ -> Alcotest.fail "wrong arity should be a Failed reply");
  ignore m

let test_fuel_exhaustion_is_notice_everywhere () =
  let e = Paper.loop_then_secretfree in
  let g = Paper.graph e in
  (* Starve both constructions of the surveillance mechanism. *)
  let dyn = Dynamic.mechanism (Dynamic.config ~fuel:2 ~mode:Dynamic.Surveillance e.Paper.policy) g in
  (match (Mechanism.respond dyn (ints [ 3; 1 ])).Mechanism.response with
  | Mechanism.Denied n -> Alcotest.(check string) "dynamic fuel notice" Dynamic.fuel_notice n
  | _ -> Alcotest.fail "dynamic: starved monitor must deny, not hang");
  let inst = Instrument.mechanism ~fuel:2 Instrument.Untimed ~policy:e.Paper.policy g in
  match (Mechanism.respond inst (ints [ 3; 1 ])).Mechanism.response with
  | Mechanism.Denied n -> Alcotest.(check string) "instrumented fuel notice" Dynamic.fuel_notice n
  | _ -> Alcotest.fail "instrumented: starved monitor must deny, not hang"

let test_interp_hook_faults () =
  let g = Paper.graph Paper.forgetting in
  let crash = fun ~step -> if step = 0 then Some (Hook.Crash "boom") else None in
  (match (Interp.run_graph ~hook:crash g (ints [ 1; 2 ])).Program.result with
  | Program.Fault m ->
      Alcotest.(check bool) "tagged as monitor fault" true
        (String.length m >= String.length Interp.monitor_fault_prefix
        && String.sub m 0 (String.length Interp.monitor_fault_prefix)
           = Interp.monitor_fault_prefix)
  | _ -> Alcotest.fail "injected crash must be a Fault outcome");
  let starve = fun ~step -> if step = 1 then Some Hook.Starve else None in
  (match (Interp.run_graph ~hook:starve g (ints [ 1; 2 ])).Program.result with
  | Program.Diverged -> ()
  | _ -> Alcotest.fail "injected starvation must be Diverged");
  (* Hook.none is the identity. *)
  let plain = Interp.run_graph g (ints [ 1; 2 ]) in
  let hooked = Interp.run_graph ~hook:Hook.none g (ints [ 1; 2 ]) in
  if plain <> hooked then Alcotest.fail "Hook.none must be bit-identical"

(* --- durability: torn writes and truncation ------------------------------ *)

let journal_resolve (h : Runner.header) =
  match
    List.find_opt
      (fun (e : Paper.entry) -> e.Paper.name = h.Runner.program_ref)
      Paper.all
  with
  | Some e -> Ok (Paper.graph e)
  | None -> Error ("unknown " ^ h.Runner.program_ref)

(* A killed journaled run for entry/input/crash point derived from [seed],
   plus the clean verdict it must resume to. *)
let killed_run seed =
  let e = List.nth entries (seed mod List.length entries) in
  let g = Paper.graph e in
  let cfg = Dynamic.config ~fuel:2000 ~mode:Dynamic.Surveillance e.Paper.policy in
  let inputs = List.of_seq (Space.enumerate e.Paper.space) in
  let a = List.nth inputs (seed / 7 mod List.length inputs) in
  let clean = Dynamic.run cfg g a in
  let media = Media.memory () in
  ignore
    (Runner.run ~kill_at:(seed / 13 mod 16) ~snapshot_every:3 ~media
       ~program_ref:e.Paper.name cfg g a);
  match Media.load media with
  | Some bytes -> (e, clean, bytes)
  | None -> Alcotest.fail "killed run left no snapshot"

let resume_on (snapshot, journal) =
  Runner.resume ~resolve:journal_resolve
    ~media:(Media.memory ~snapshot ~journal ())
    ()

(* Property: TRUNCATING the journal anywhere — mid-frame (a torn write) or
   at a frame boundary (a lost suffix) — is always survivable: resume
   re-executes the missing steps and lands on the clean verdict exactly. *)
let prop_truncation_always_resumes =
  qtest ~count:300 "journal-truncation-resumes-bit-identically"
    (QCheck.int_range 0 1_000_000) (fun seed ->
      let _, clean, (snapshot, journal) = killed_run seed in
      let cut = seed / 17 mod (String.length journal + 1) in
      match resume_on (snapshot, String.sub journal 0 cut) with
      | Ok res ->
          res.Runner.reply = clean
          || QCheck.Test.fail_reportf "cut at %d/%d: resumed %s, clean %s" cut
               (String.length journal)
               (show_mech_reply res.Runner.reply)
               (show_mech_reply clean)
      | Error f ->
          QCheck.Test.fail_reportf "cut at %d: truncation must be survivable: %s"
            cut (Runner.failure_message f))

(* Property: a FLIPPED BIT anywhere on the medium yields the clean verdict
   or a typed refusal (mapped to Λ/recovery) — never a divergent verdict,
   and never a grant the clean run did not issue. *)
let prop_bitflip_never_diverges =
  qtest ~count:300 "media-bit-flip-is-identical-or-recovery-notice"
    (QCheck.int_range 0 1_000_000) (fun seed ->
      let _, clean, (snapshot, journal) = killed_run seed in
      let total = String.length snapshot + String.length journal in
      let pos = seed / 17 mod total in
      let flip s i =
        let by = Bytes.of_string s in
        Bytes.set by i (Char.chr (Char.code (Bytes.get by i) lxor (1 lsl (seed / 23 mod 8))));
        Bytes.to_string by
      in
      let damaged =
        if pos < String.length snapshot then (flip snapshot pos, journal)
        else (snapshot, flip journal (pos - String.length snapshot))
      in
      match resume_on damaged with
      | Ok res -> (
          if res.Runner.reply = clean then true
          else
            match res.Runner.reply.Mechanism.response with
            | Mechanism.Granted _ ->
                QCheck.Test.fail_reportf "FAIL-OPEN: flip at %d granted %s, clean %s"
                  pos
                  (show_mech_reply res.Runner.reply)
                  (show_mech_reply clean)
            | _ ->
                QCheck.Test.fail_reportf "flip at %d diverged: %s vs clean %s" pos
                  (show_mech_reply res.Runner.reply)
                  (show_mech_reply clean))
      | Error err -> (
          match (Guard.reply_of_recovery (Error err)).Mechanism.response with
          | Mechanism.Denied n when n = Guard.recovery_notice -> true
          | _ -> QCheck.Test.fail_report "refusal escaped Λ/recovery"))

(* --- the three issue properties, as qcheck properties over seeds --------- *)

let seed_gen = QCheck.int_range 0 5000

let with_seeded_guard (e : Paper.entry) seed ~retries f =
  let plan = Plan.generate ~seed () in
  let inj = Injector.create plan in
  let faulty = faulty_mech e inj in
  let guarded =
    Guard.protect ~config:{ Guard.default with Guard.retries } ~injector:inj faulty
  in
  f plan guarded

(* Property 1: under EVERY fault plan the guarded mechanism is fail-secure
   (grants only Q's output, no reply outside E u F) and sound modulo
   notices (grants constant on each I-equivalence class). *)
let prop_sound_modulo_notices_under_faults =
  qtest ~count:120 "sound-modulo-notices-under-any-plan" seed_gen (fun seed ->
      List.for_all
        (fun (e : Paper.entry) ->
          with_seeded_guard e seed ~retries:2 (fun _plan guarded ->
              (match Guard.check_fail_secure ~q:(Paper.program e) guarded e.Paper.space with
              | Ok () -> ()
              | Error b -> QCheck.Test.fail_reportf "%s: %s" e.Paper.name b.Guard.detail);
              match Guard.sound_modulo_notices e.Paper.policy guarded e.Paper.space with
              | Ok () -> true
              | Error b -> QCheck.Test.fail_reportf "%s: %s" e.Paper.name b.Guard.detail))
        entries)

(* Property 2: faults only ever lose answers — the unfaulted monitor is at
   least as complete as the guarded faulty one, for every plan. *)
let prop_guarded_below_clean =
  qtest ~count:120 "guarded-below-unfaulted-completeness" seed_gen (fun seed ->
      List.for_all
        (fun (e : Paper.entry) ->
          with_seeded_guard e seed ~retries:2 (fun _plan guarded ->
              match
                Completeness.as_complete_as (clean_mech e) guarded
                  ~q:(Paper.program e) e.Paper.space
              with
              | Ok () -> true
              | Error a ->
                  QCheck.Test.fail_reportf
                    "%s: guarded grants where the clean monitor does not, at %s"
                    e.Paper.name
                    (String.concat "," (List.map Value.to_string (Array.to_list a)))))
        entries)

(* Property 3: if every fault of the plan is transient and the retry budget
   covers the worst of them, the guard recovers FULL completeness — every
   reply equals the clean monitor's (response for response; steps differ by
   the retries and backoff, which is the price of recovery). *)
let prop_transient_retry_recovers =
  qtest ~count:200 "transient-retries-recover-completeness" seed_gen (fun seed ->
      let plan = Plan.generate ~seed () in
      QCheck.assume (Plan.is_transient_only plan);
      let retries = Plan.worst_transient plan in
      List.for_all
        (fun (e : Paper.entry) ->
          let inj = Injector.create plan in
          let faulty = faulty_mech e inj in
          let m = clean_mech e in
          Seq.for_all
            (fun a ->
              let clean = (Mechanism.respond m a).Mechanism.response in
              let outcome, _ =
                Guard.run ~config:{ Guard.default with Guard.retries } ~injector:inj faulty a
              in
              match ((Guard.reply_of_outcome (outcome, 0)).Mechanism.response, clean) with
              | Mechanism.Granted v, Mechanism.Granted w -> Value.equal v w
              | Mechanism.Denied n, Mechanism.Denied n' -> n = n'
              | got, want ->
                  let show = function
                    | Mechanism.Granted v -> "granted " ^ Value.to_string v
                    | Mechanism.Denied n -> "denied " ^ n
                    | Mechanism.Hung -> "hung"
                    | Mechanism.Failed m -> "failed: " ^ m
                  in
                  QCheck.Test.fail_reportf "%s: recovered %s but clean is %s"
                    e.Paper.name (show got) (show want))
            (Space.enumerate e.Paper.space))
        entries)

(* --- jittered backoff bounds --------------------------------------------- *)

(* A mechanism that always faults forces the guard through its whole retry
   budget, so the charged backoff is the full schedule: attempt [i]'s
   penalty is [backoff_base * 2^(i-1)] unjittered, drawn from [p, 2p) when
   jittered — totals exactly B = base*(2^k - 1), respectively in [B, 2B). *)
let prop_jitter_backoff_bounds =
  qtest ~count:300 "jittered-backoff-within-documented-bounds"
    QCheck.(triple (int_range 0 1_000_000) (int_range 1 5) (int_range 1 16))
    (fun (seed, retries, base) ->
      let broken =
        Mechanism.make ~name:"broken" ~arity:1 (fun _ ->
            { Mechanism.response = Mechanism.Failed "injected"; steps = 0 })
      in
      let a = ints [ 0 ] in
      let backoff config =
        match Guard.run ~config broken a with
        | Guard.Degraded r, _ -> r.Guard.backoff_steps
        | _ -> Alcotest.fail "a broken mechanism must degrade"
      in
      let unjittered =
        backoff { Guard.default with retries; backoff_base = base }
      in
      let b = base * ((1 lsl retries) - 1) in
      if unjittered <> b then
        QCheck.Test.fail_reportf "unjittered backoff %d, schedule says %d"
          unjittered b;
      let jittered =
        backoff
          { Guard.default with retries; backoff_base = base; jitter = Some seed }
      in
      let again =
        backoff
          { Guard.default with retries; backoff_base = base; jitter = Some seed }
      in
      if jittered <> again then
        QCheck.Test.fail_reportf "jitter seed %d not replayable: %d vs %d" seed
          jittered again;
      jittered >= b && jittered < 2 * b
      || QCheck.Test.fail_reportf "jittered backoff %d outside [%d, %d)"
           jittered b (2 * b))

let () =
  Alcotest.run "fault"
    [
      ( "plan",
        [
          Alcotest.test_case "deterministic" `Quick test_plan_deterministic;
          Alcotest.test_case "make-dedupes" `Quick test_plan_make_dedupes;
        ] );
      ( "injector",
        [
          Alcotest.test_case "transient-clears" `Quick test_injector_transient_clears;
          Alcotest.test_case "persistent-fires" `Quick test_injector_persistent_always_fires;
        ] );
      ( "guard",
        [
          Alcotest.test_case "transient-recovers" `Quick test_guard_transient_recovers;
          Alcotest.test_case "insufficient-retries" `Quick test_guard_insufficient_retries_degrade;
          Alcotest.test_case "persistent-degrades" `Quick test_guard_persistent_degrades_never_grants;
          Alcotest.test_case "fuel-fault-notice" `Quick test_guard_fuel_fault_is_notice;
          Alcotest.test_case "no-faults-bit-identical" `Quick test_guard_no_faults_bit_identical;
          Alcotest.test_case "absorbs-exceptions" `Quick test_guard_absorbs_exceptions;
          Alcotest.test_case "step-budget" `Quick test_guard_step_budget_watchdog;
          Alcotest.test_case "protect-E-u-F" `Quick test_protect_replies_stay_in_E_u_F;
        ] );
      ( "totality",
        [
          Alcotest.test_case "dynamic-bad-inputs" `Quick test_dynamic_total_on_bad_inputs;
          Alcotest.test_case "fuel-notice-everywhere" `Quick test_fuel_exhaustion_is_notice_everywhere;
          Alcotest.test_case "interp-hooks" `Quick test_interp_hook_faults;
        ] );
      ( "properties",
        [
          prop_sound_modulo_notices_under_faults;
          prop_guarded_below_clean;
          prop_transient_retry_recovers;
          prop_jitter_backoff_bounds;
        ] );
      ( "durability",
        [ prop_truncation_always_resumes; prop_bitflip_never_diverges ] );
    ]
