(* The issue's acceptance gate, wired into `dune runtest`: a differential
   chaos sweep over every corpus program, every allow(J) policy over its
   inputs, and 100 seeded fault plans each. Every injected fault must
   surface as a violation notice (Notice or Degraded) — zero fail-open
   outcomes — and runs whose fault points never fire must be bit-identical
   to the unguarded clean monitor. `make chaos` drives the same sweep
   through the CLI. *)

module Sweep = Secpol_fault.Sweep

let () =
  let report = Sweep.run ~seeds:100 () in
  let t = report.Sweep.totals in
  Printf.printf "chaos: %d plans, %d guarded runs\n" t.Sweep.plans t.Sweep.runs;
  let check name v =
    if v = 0 then Printf.printf "ok   %-28s 0\n" name
    else Printf.printf "FAIL %-28s %d\n" name v
  in
  check "fail-open outcomes" t.Sweep.fail_open;
  check "clean-run mismatches" t.Sweep.clean_mismatch;
  (* Sanity on the sweep itself: it must actually have injected something,
     degraded something, and recovered something — an accidentally inert
     sweep would pass the two gates above while testing nothing. *)
  let nonzero name v =
    if v > 0 then Printf.printf "ok   %-28s %d\n" name v
    else Printf.printf "FAIL %-28s 0 (sweep is inert)\n" name
  in
  nonzero "faults absorbed (degraded)" t.Sweep.degraded;
  nonzero "unguarded crashes contrast" t.Sweep.unguarded_failures;
  nonzero "recovered grants" t.Sweep.recovered;
  List.iter
    (fun (f : Sweep.finding) ->
      Printf.printf "  ! %s / %s / seed %d / %s: %s\n" f.Sweep.entry
        f.Sweep.policy f.Sweep.seed f.Sweep.input f.Sweep.detail)
    report.Sweep.findings;
  if
    not
      (report.Sweep.ok && t.Sweep.degraded > 0 && t.Sweep.unguarded_failures > 0
     && t.Sweep.recovered > 0)
  then exit 1
