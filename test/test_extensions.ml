(* The model's outer reaches: the data-security dual (integrity), the
   lattice structure of sound mechanisms, and the history-dependent
   database policy of Section 2's closing remark. *)

open Util
module Integrity = Secpol_core.Integrity
module Lattice = Secpol_core.Lattice
module Querydb = Secpol_history.Querydb
module Leakage = Secpol_probe.Leakage
module Sampled = Secpol_probe.Sampled

let space2 = Space.ints ~lo:0 ~hi:3 ~arity:2
let q_first = Program.of_fun ~name:"first" ~arity:2 (fun a -> a.(0))

let q_sum =
  Program.of_fun ~name:"sum" ~arity:2 (fun a ->
      Value.int (Value.to_int a.(0) + Value.to_int a.(1)))

(* --- integrity: the operator-function dual ------------------------------ *)

let test_integrity_identity_preserves_all () =
  let q_id = Program.of_fun ~name:"id" ~arity:2 (fun a -> Value.tuple (Array.to_list a)) in
  Alcotest.(check bool) "identity preserves everything" true
    (Integrity.preserves (Policy.allow_all ~arity:2)
       (Mechanism.of_program q_id) space2);
  Alcotest.(check bool) "and trivially allow()" true
    (Integrity.preserves Policy.allow_none (Mechanism.of_program q_id) space2)

let test_integrity_projection () =
  let m = Mechanism.of_program q_first in
  (* Returning x0 delivers all information about x0... *)
  Alcotest.(check bool) "preserves allow(0)" true
    (Integrity.preserves (Policy.allow [ 0 ]) m space2);
  (* ... and destroys x1. *)
  (match Integrity.check (Policy.allow [ 1 ]) m space2 with
  | Integrity.Loses w ->
      Alcotest.(check bool) "witness images differ" false
        (Value.equal w.Integrity.image_a w.Integrity.image_b)
  | Integrity.Preserves -> Alcotest.fail "x1 is not recoverable from x0")

let test_integrity_sum_loses_addends () =
  let m = Mechanism.of_program q_sum in
  (* The sum determines neither addend: 0+2 = 1+1. *)
  Alcotest.(check bool) "loses x0" false
    (Integrity.preserves (Policy.allow [ 0 ]) m space2);
  Alcotest.(check bool) "but preserves nothing-required" true
    (Integrity.preserves Policy.allow_none m space2)

let test_integrity_vs_soundness_tension () =
  (* The paper's two questions pull in opposite directions: the plug is
     sound for everything and preserves (almost) nothing; the identity
     preserves everything and is sound only for allow(all). *)
  let plug = Mechanism.pull_the_plug 2 in
  Alcotest.(check bool) "plug sound" true
    (Soundness.is_sound (Policy.allow [ 0 ]) plug space2);
  Alcotest.(check bool) "plug loses required info" false
    (Integrity.preserves (Policy.allow [ 0 ]) plug space2);
  let full = Mechanism.of_program q_first in
  Alcotest.(check bool) "first preserves allow(0)" true
    (Integrity.preserves (Policy.allow [ 0 ]) full space2);
  Alcotest.(check bool) "first sound for allow(0)" true
    (Soundness.is_sound (Policy.allow [ 0 ]) full space2)

let test_integrity_denial_timing () =
  (* A mechanism that denies but encodes the required info in WHICH notice
     it gives still preserves the information. *)
  let m =
    Mechanism.make ~name:"chatty-denier" ~arity:2 (fun a ->
        {
          Mechanism.response =
            Mechanism.Denied (Printf.sprintf "n%d" (Value.to_int a.(0)));
          steps = 1;
        })
  in
  Alcotest.(check bool) "distinct notices preserve x0" true
    (Integrity.preserves (Policy.allow [ 0 ]) m space2);
  (* Identifying the notices destroys it. *)
  let config = { Integrity.default with Integrity.identify_violations = true } in
  Alcotest.(check bool) "identified notices lose x0" false
    (Integrity.preserves ~config (Policy.allow [ 0 ]) m space2)

(* --- policy refinement order --------------------------------------------- *)

module Policy_order = Secpol_core.Policy_order
module Iset = Secpol_core.Iset
module Dynamic = Secpol_taint.Dynamic
module Compile = Secpol_flowgraph.Compile
module Interp = Secpol_flowgraph.Interp
module Generator = Secpol_corpus.Generator

let test_policy_order_allow_inclusion () =
  let space = Space.ints ~lo:0 ~hi:1 ~arity:3 in
  let pairs =
    [ ([], [ 0 ]); ([ 0 ], [ 0; 1 ]); ([ 1 ], [ 0 ]); ([ 0; 2 ], [ 0; 1; 2 ]) ]
  in
  List.iter
    (fun (j1, j2) ->
      Alcotest.(check bool)
        (Printf.sprintf "inclusion test for {%s} vs {%s}"
           (String.concat "," (List.map string_of_int j1))
           (String.concat "," (List.map string_of_int j2)))
        true
        (Policy_order.agrees_with_inclusion ~arity:3 (Iset.of_list j1)
           (Iset.of_list j2) space))
    pairs

let test_policy_order_content_dependent () =
  (* Example 2's filter reveals at most allow(everything) and at least
     allow(directories): it sits strictly between. *)
  let module Filesys = Secpol_filesys.Filesys in
  let k = 2 in
  let space = Filesys.space ~k ~file_values:[ 1; 2 ] in
  let fs = Filesys.policy ~k in
  Alcotest.(check bool) "below allow(all)" true
    (Policy_order.strictly_below fs (Policy.allow [ 0; 1; 2; 3 ]) space);
  Alcotest.(check bool) "above allow(dirs)" true
    (Policy_order.strictly_below (Policy.allow [ 0; 1 ]) fs space);
  Alcotest.(check bool) "equivalent to itself" true
    (Policy_order.equivalent fs fs space)

(* Soundness is antitone in the refinement order. *)
let prop_soundness_antitone =
  let params = Generator.default in
  qtest ~count:200 "sound for a stricter policy => sound for a laxer one"
    (Generator.arbitrary params)
    (fun prog ->
      let g = Compile.compile prog in
      let space = Generator.space_for params in
      let stricter = Policy.allow [ 1 ] and laxer = Policy.allow [ 0; 1 ] in
      (* Use the stricter policy's own surveillance mechanism as the test
         subject: sound for stricter by Theorem 3; must be sound for laxer. *)
      let m = Dynamic.mechanism (Dynamic.config ~mode:Dynamic.Surveillance stricter) g in
      Policy_order.reveals_at_most stricter laxer space
      && Soundness.is_sound laxer m space)

(* Every dynamic mechanism's grant set grows with the allowed set. *)
let prop_surveillance_monotone_in_policy =
  let params = Generator.default in
  qtest ~count:200 "grant sets are monotone in the allowed set"
    (Generator.arbitrary params)
    (fun prog ->
      let g = Compile.compile prog in
      let q = Interp.ast_program prog in
      let space = Generator.space_for params in
      List.for_all
        (fun mode ->
          let m_small = Dynamic.mechanism (Dynamic.config ~mode (Policy.allow [ 1 ])) g in
          let m_big = Dynamic.mechanism (Dynamic.config ~mode (Policy.allow [ 0; 1 ])) g in
          Completeness.as_complete_as m_big m_small ~q space = Ok ())
        Dynamic.all_modes)

(* --- arbitrarily complex policies (Section 2's remark) -------------------- *)

(* "the reader should note that our definition of security policy does
   admit arbitrarily complex policies": here, reveal only the SUM of the
   two inputs — an aggregate, neither input individually. *)
let reveal_sum =
  Policy.filter ~name:"reveal-sum" (fun a ->
      Value.int (Value.to_int a.(0) + Value.to_int a.(1)))

let test_aggregate_policy () =
  (* The program that computes exactly the aggregate is sound... *)
  check_sound "sum program sound for reveal-sum" reveal_sum
    (Mechanism.of_program q_sum) space2;
  (* ... a projection is not (knowing x0 exceeds knowing x0 + x1) ... *)
  check_unsound "projection unsound for reveal-sum" reveal_sum
    (Mechanism.of_program q_first) space2;
  (* ... and anything derivable from the sum is fine: parity of the sum. *)
  let q_parity =
    Program.of_fun ~name:"parity" ~arity:2 (fun a ->
        Value.int ((Value.to_int a.(0) + Value.to_int a.(1)) mod 2))
  in
  check_sound "parity-of-sum sound" reveal_sum (Mechanism.of_program q_parity)
    space2

let test_aggregate_policy_maximal () =
  (* The maximal mechanism for the projection under reveal-sum serves the
     classes where the sum pins both addends: the extreme diagonals. *)
  let mx = Maximal.build reveal_sum q_first space2 in
  check_sound "maximal sound" reveal_sum mx space2;
  (* Sum 0 = (0,0) and sum 6 = (3,3) are singleton classes; 16 points. *)
  check_ratio "only the two singleton classes served" ~expected:(2.0 /. 16.0) mx
    ~q:q_first space2

(* --- the lattice of mechanisms ------------------------------------------ *)

let m_even =
  Lattice.of_grant_predicate ~name:"even" ~q:q_first (fun a ->
      Value.to_int a.(0) mod 2 = 0)

let m_small =
  Lattice.of_grant_predicate ~name:"small" ~q:q_first (fun a ->
      Value.to_int a.(0) < 2)

let m_big =
  Lattice.of_grant_predicate ~name:"big" ~q:q_first (fun a ->
      Value.to_int a.(0) >= 2)

let test_meet_grants_intersection () =
  let m = Lattice.meet m_even m_small in
  (* x0 in 0..3: even {0,2}, small {0,1} -> meet {0}. *)
  check_ratio "meet = intersection" ~expected:0.25 m ~q:q_first space2;
  check_grants "grants on 0" m [ 0; 3 ] 0;
  check_denies "denies on 2 (not small)" m [ 2; 0 ];
  check_denies "denies on 1 (not even)" m [ 1; 0 ]

let test_meet_preserves_soundness () =
  let p = Policy.allow [ 0 ] in
  check_sound "m_even sound" p m_even space2;
  check_sound "m_small sound" p m_small space2;
  check_sound "meet sound" p (Lattice.meet m_even m_small) space2

let test_lattice_laws () =
  let ( ||| ) = Mechanism.join and ( &&& ) = Lattice.meet in
  let eq m1 m2 = Lattice.equivalent m1 m2 ~q:q_first space2 in
  (* Idempotence, commutativity, associativity, absorption - on grant sets. *)
  Alcotest.(check bool) "join idempotent" true (eq (m_even ||| m_even) m_even);
  Alcotest.(check bool) "meet idempotent" true (eq (m_even &&& m_even) m_even);
  Alcotest.(check bool) "join commutative" true
    (eq (m_even ||| m_small) (m_small ||| m_even));
  Alcotest.(check bool) "meet commutative" true
    (eq (m_even &&& m_small) (m_small &&& m_even));
  Alcotest.(check bool) "join associative" true
    (eq ((m_even ||| m_small) ||| m_big) (m_even ||| (m_small ||| m_big)));
  Alcotest.(check bool) "meet associative" true
    (eq ((m_even &&& m_small) &&& m_big) (m_even &&& (m_small &&& m_big)));
  Alcotest.(check bool) "absorption join" true
    (eq (m_even ||| (m_even &&& m_small)) m_even);
  Alcotest.(check bool) "absorption meet" true
    (eq (m_even &&& (m_even ||| m_small)) m_even)

let test_lattice_bounds () =
  let plug = Mechanism.pull_the_plug 2 in
  let eq m1 m2 = Lattice.equivalent m1 m2 ~q:q_first space2 in
  Alcotest.(check bool) "bottom for join" true (eq (Mechanism.join m_even plug) m_even);
  Alcotest.(check bool) "bottom for meet" true (eq (Lattice.meet m_even plug) plug);
  (* The maximal mechanism tops every sound one. *)
  let mx = Maximal.build (Policy.allow [ 0 ]) q_first space2 in
  Alcotest.(check bool) "top absorbs join" true (eq (Mechanism.join m_even mx) mx);
  Alcotest.(check bool) "top neutral for meet" true (eq (Lattice.meet m_even mx) m_even)

let test_grant_set () =
  let gs = Lattice.grant_set m_small ~q:q_first space2 in
  Alcotest.(check int) "eight grant points" 8 (List.length gs);
  List.iter
    (fun a -> Alcotest.(check bool) "all small" true (Value.to_int a.(0) < 2))
    gs

(* --- history-dependent database policy ----------------------------------- *)

let db = { Querydb.k = 3; queries = 2 }

(* Masks: 0b111 = everyone, 0b110, 0b011 (pairs), 0b001 (a direct read). *)
let db_space =
  Querydb.space db ~record_values:[ 0; 1 ] ~query_masks:[ 0b111; 0b110; 0b011; 0b001 ]

let test_history_rule () =
  Alcotest.(check (list bool)) "pair then full: difference is one record"
    [ true; false ]
    (Querydb.permitted db [ 0b110; 0b111 ]);
  Alcotest.(check (list bool)) "full then pair: same, order-independent"
    [ true; false ]
    (Querydb.permitted db [ 0b111; 0b110 ]);
  Alcotest.(check (list bool)) "two overlapping pairs are fine"
    [ true; true ]
    (Querydb.permitted db [ 0b110; 0b011 ]);
  Alcotest.(check (list bool)) "singleton refused outright"
    [ false; true ]
    (Querydb.permitted db [ 0b001; 0b111 ]);
  (* A refused query does not poison the history. *)
  Alcotest.(check (list bool)) "refused query keeps no shadow"
    [ false; true ]
    (Querydb.permitted db [ 0b001; 0b011 ])

let test_history_unprotected_leaks () =
  let q = Querydb.session_program db in
  check_unsound "raw session answers refused queries"
    (Querydb.policy db) (Mechanism.of_program q) db_space;
  let leak = Leakage.of_program (Querydb.policy db) q db_space in
  Alcotest.(check bool) "differencing attack leaks" true (leak.Leakage.avg_bits > 0.0)

let test_history_monitor_sound () =
  let m = Querydb.monitor db in
  check_sound "session gatekeeper is sound" (Querydb.policy db) m db_space;
  (match Mechanism.check_protects m (Querydb.session_program db) db_space with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "monitor must be a strict protection mechanism");
  Alcotest.(check bool) "leaks nothing" true
    (Leakage.is_tight (Leakage.of_mechanism (Querydb.policy db) m db_space))

let test_history_redesigned_program_sound () =
  let q = Querydb.slotwise_program db in
  check_sound "slotwise front end is its own sound mechanism"
    (Querydb.policy db) (Mechanism.of_program q) db_space;
  (* And it serves strictly more sessions than the all-or-nothing monitor:
     a session with one bad query still gets its good answers. *)
  match
    (Program.run q
       (Array.append
          [| Value.int 1; Value.int 0; Value.int 1 |]
          [| Value.int 0b110; Value.int 0b111 |]))
      .Program.result
  with
  | Program.Value (Value.Tuple [ first; second ]) ->
      Alcotest.check value_testable "good query answered" (Value.int 1) first;
      Alcotest.check value_testable "bad query marked" Querydb.refused second
  | _ -> Alcotest.fail "expected a pair"

let test_history_sampled_probe_needs_allow () =
  (* The sampling prober resamples disallowed coordinates, which only makes
     sense for allow(...) policies - the filter policy must be rejected. *)
  let rng = Random.State.make [| 5 |] in
  match
    Sampled.check ~rng ~trials:10 (Querydb.policy db) (Querydb.monitor db) db_space
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "filter policies cannot be sample-probed"

let test_sampled_probe_finds_leaks () =
  let rng = Random.State.make [| 11 |] in
  let q_leaky = Program.of_fun ~name:"leak" ~arity:2 (fun a -> a.(1)) in
  (match
     Sampled.check ~rng ~trials:200 (Policy.allow [ 0 ])
       (Mechanism.of_program q_leaky) space2
   with
  | Sampled.Unsound _ -> ()
  | Sampled.Probably_sound _ -> Alcotest.fail "sampling must find this leak");
  match
    Sampled.check ~rng ~trials:200 (Policy.allow [ 0 ])
      (Mechanism.of_program q_first) space2
  with
  | Sampled.Probably_sound n -> Alcotest.(check int) "all trials ran" 200 n
  | Sampled.Unsound _ -> Alcotest.fail "q_first does not leak"

let () =
  Alcotest.run "secpol-extensions"
    [
      ( "integrity",
        [
          Alcotest.test_case "identity" `Quick test_integrity_identity_preserves_all;
          Alcotest.test_case "projection" `Quick test_integrity_projection;
          Alcotest.test_case "sum" `Quick test_integrity_sum_loses_addends;
          Alcotest.test_case "tension" `Quick test_integrity_vs_soundness_tension;
          Alcotest.test_case "denial-content" `Quick test_integrity_denial_timing;
        ] );
      ( "aggregate-policy",
        [
          Alcotest.test_case "soundness" `Quick test_aggregate_policy;
          Alcotest.test_case "maximal" `Quick test_aggregate_policy_maximal;
        ] );
      ( "policy-order",
        [
          Alcotest.test_case "allow-inclusion" `Quick test_policy_order_allow_inclusion;
          Alcotest.test_case "content-dependent" `Quick test_policy_order_content_dependent;
          prop_soundness_antitone;
          prop_surveillance_monotone_in_policy;
        ] );
      ( "lattice",
        [
          Alcotest.test_case "meet" `Quick test_meet_grants_intersection;
          Alcotest.test_case "meet-sound" `Quick test_meet_preserves_soundness;
          Alcotest.test_case "laws" `Quick test_lattice_laws;
          Alcotest.test_case "bounds" `Quick test_lattice_bounds;
          Alcotest.test_case "grant-set" `Quick test_grant_set;
        ] );
      ( "history",
        [
          Alcotest.test_case "rule" `Quick test_history_rule;
          Alcotest.test_case "unprotected-leaks" `Quick test_history_unprotected_leaks;
          Alcotest.test_case "monitor-sound" `Quick test_history_monitor_sound;
          Alcotest.test_case "redesign-sound" `Quick test_history_redesigned_program_sound;
          Alcotest.test_case "probe-needs-allow" `Quick test_history_sampled_probe_needs_allow;
        ] );
      ( "sampled",
        [ Alcotest.test_case "finds-leaks" `Quick test_sampled_probe_finds_leaks ] );
    ]
