(* The refined yardstick against its oracle.

   Partition refinement (Refine, and the engine's refined drivers) promises
   answers bit-identical to the enumerate-everything builders it replaces:
   same class tables, same mechanisms, same verdicts and witnesses, same
   granted/total tallies — over the corpus, over random programs, over
   adversarial partitions (all singletons, one giant class, the degenerate
   empty-product space), at any jobs, cached or not. This suite is the
   differential gate: the brute-force path stays in-tree exactly so these
   comparisons stay meaningful. *)

open Util
module Refine = Secpol_core.Refine
module Cache = Secpol_engine.Cache
module Exhaustive = Secpol_engine.Exhaustive
module Analyze = Secpol.Analyze
module Report = Secpol_fault.Report
module Paper = Secpol_corpus.Paper_programs
module Generator = Secpol_corpus.Generator
module Compile = Secpol_flowgraph.Compile
module Interp = Secpol_flowgraph.Interp
module Dynamic = Secpol_taint.Dynamic

let fp = Refine.table_fingerprint
let verdict_str v = Format.asprintf "%a" Soundness.pp_verdict v
let views = [ (`Value, "value"); (`Timed, "timed") ]
let both_jobs = [ 1; 4 ]

(* Every comparison between the refined family and the brute oracle for one
   (policy, program, space, view): sequential core, parallel engine driver
   at each jobs, tallies and the facade. *)
let check_against_oracle msg view policy q space =
  let oracle_tbl = Maximal.table view policy q space in
  let oracle_fp = fp oracle_tbl in
  let oracle_classes = Maximal.classes_of_table oracle_tbl in
  (* Sequential refined core. *)
  let tbl, stats = Refine.table_stats view policy q space in
  Alcotest.(check string) (msg ^ ": refined table = oracle") oracle_fp (fp tbl);
  Alcotest.(check (pair int int))
    (msg ^ ": refined classes = oracle") oracle_classes
    (Maximal.classes_of_table tbl);
  Alcotest.(check bool)
    (msg ^ ": runs never exceed the space")
    true
    (stats.Refine.runs <= stats.Refine.space_size
    && stats.Refine.saved = stats.Refine.space_size - stats.Refine.runs);
  (* Parallel refined driver, at each jobs. *)
  List.iter
    (fun jobs ->
      let (ptbl, pt), prstats, _ =
        Exhaustive.maximal_table_refined ~view ~jobs policy q space
      in
      Alcotest.(check string)
        (Printf.sprintf "%s: refined table (jobs=%d) = oracle" msg jobs)
        oracle_fp (fp ptbl);
      Alcotest.(check int)
        (Printf.sprintf "%s: runs independent of jobs=%d" msg jobs)
        stats.Refine.runs prstats.Refine.runs;
      (* The grant tally read off the table equals the brute point count. *)
      let mx = Maximal.of_table policy q oracle_tbl in
      let granted, total = Refine.grant_count_of_table pt ptbl in
      Alcotest.(check (pair int int))
        (msg ^ ": grant count off the table = Completeness.grant_count")
        (Completeness.grant_count mx ~q space)
        (granted, total))
    both_jobs;
  (* The mechanisms reply identically everywhere. *)
  let brute_m = Maximal.build ~view policy q space in
  let refined_m = Refine.build ~view policy q space in
  Seq.iter
    (fun a ->
      Alcotest.(check string)
        (Printf.sprintf "%s: maximal reply on %s" msg (Report.show_input a))
        (show_mech_reply (Mechanism.respond brute_m a))
        (show_mech_reply (Mechanism.respond refined_m a)))
    (Space.enumerate space)

let check_soundness_against_oracle msg config policy m space =
  let oracle = verdict_str (Soundness.check ~config policy m space) in
  let seq, _ = Refine.check_stats ~config policy m space in
  Alcotest.(check string) (msg ^ ": refined verdict = oracle") oracle
    (verdict_str seq);
  List.iter
    (fun jobs ->
      let par, _ = Exhaustive.check_refined ~config ~jobs policy m space in
      Alcotest.(check string)
        (Printf.sprintf "%s: refined verdict (jobs=%d) = oracle" msg jobs)
        oracle (verdict_str par))
    both_jobs

(* --- corpus x allow(J) x views ----------------------------------------- *)

let test_corpus_differential () =
  List.iter
    (fun (e : Paper.entry) ->
      let q = Paper.program e in
      let arity = e.Paper.prog.Secpol_flowgraph.Ast.arity in
      List.iter
        (fun policy ->
          List.iter
            (fun (view, vname) ->
              check_against_oracle
                (Printf.sprintf "%s/%s/%s" e.Paper.name (Policy.name policy)
                   vname)
                view policy q e.Paper.space)
            views)
        (Report.policies_of_arity arity))
    Paper.all

let test_corpus_soundness_differential () =
  List.iter
    (fun (e : Paper.entry) ->
      let g = Paper.graph e in
      let arity = e.Paper.prog.Secpol_flowgraph.Ast.arity in
      List.iter
        (fun policy ->
          let m =
            Dynamic.mechanism
              (Dynamic.config ~mode:Dynamic.Surveillance policy)
              g
          in
          List.iter
            (fun config ->
              check_soundness_against_oracle
                (Printf.sprintf "%s/%s" e.Paper.name (Policy.name policy))
                config policy m e.Paper.space)
            [ Soundness.default; Soundness.timed ];
          (* The raw program is the adversarial mechanism: mixed classes
             abound, so witnesses are actually exercised. *)
          check_soundness_against_oracle
            (Printf.sprintf "%s/%s/raw-Q" e.Paper.name (Policy.name policy))
            Soundness.default policy
            (Mechanism.of_program (Paper.program e))
            e.Paper.space)
        (Report.policies_of_arity arity))
    Paper.all

(* --- adversarial partitions -------------------------------------------- *)

(* A program whose observable genuinely varies, so one-giant-class is mixed
   and witnesses exist. *)
let q_sum =
  Program.of_fun ~name:"sum" ~arity:2 (fun a ->
      Value.int (Value.to_int a.(0) + Value.to_int a.(1)))

let adversarial_space = Space.ints ~lo:0 ~hi:4 ~arity:2

let test_all_singleton_classes () =
  (* allow everything: each point is its own class — refinement can skip
     every run in the soundness check and none in the table build. *)
  let policy = Policy.allow [ 0; 1 ] in
  check_against_oracle "all-singleton" `Value policy q_sum adversarial_space;
  let _, stats =
    Refine.check_stats policy (Mechanism.of_program q_sum) adversarial_space
  in
  Alcotest.(check int) "singleton classes need no soundness runs" 0
    stats.Refine.runs;
  check_soundness_against_oracle "all-singleton" Soundness.default policy
    (Mechanism.of_program q_sum) adversarial_space

let test_one_giant_class () =
  (* allow nothing: the whole space is one class, mixed almost immediately
     — the refined build stops after the first split. *)
  let policy = Policy.allow_none in
  check_against_oracle "one-giant-class" `Value policy q_sum adversarial_space;
  let _, stats = Refine.table_stats `Value policy q_sum adversarial_space in
  Alcotest.(check int) "mixed giant class stops at the first split" 2
    stats.Refine.runs;
  check_soundness_against_oracle "one-giant-class" Soundness.default policy
    (Mechanism.of_program q_sum) adversarial_space

let test_filter_policy () =
  (* A non-allow policy exercises the generic hash partition (no
     structural fast path): classes by parity of the first coordinate. *)
  let policy =
    Policy.filter ~name:"parity" (fun a -> Value.int (Value.to_int a.(0) mod 2))
  in
  check_against_oracle "filter-parity" `Value policy q_sum adversarial_space;
  check_against_oracle "filter-parity-timed" `Timed policy q_sum
    adversarial_space;
  check_soundness_against_oracle "filter-parity" Soundness.default policy
    (Mechanism.of_program q_sum) adversarial_space

let test_duplicate_domain_values () =
  (* A domain with repeated values: two digit combinations carry the same
     policy image, so the index-arithmetic fast path must stand down and
     the hash partition must merge them — exactly like the brute oracle. *)
  let space =
    Space.make
      [|
        [| Value.int 0; Value.int 1; Value.int 0 |];
        [| Value.int 0; Value.int 1 |];
      |]
  in
  let policy = Policy.allow [ 0 ] in
  check_against_oracle "duplicate-domain" `Value policy q_sum space;
  check_soundness_against_oracle "duplicate-domain" Soundness.default policy
    (Mechanism.of_program q_sum) space

let test_empty_product_space () =
  (* Space.make [||] is the legal degenerate space: one empty point. *)
  let space = Space.make [||] in
  let q0 = Program.of_fun ~name:"nullary" ~arity:0 (fun _ -> Value.int 42) in
  let policy = Policy.allow_none in
  check_against_oracle "empty-product" `Value policy q0 space;
  check_soundness_against_oracle "empty-product" Soundness.default policy
    (Mechanism.of_program q0) space

(* --- random programs ---------------------------------------------------- *)

let prop_random_differential =
  qtest ~count:40 "refined = brute on random programs (tables and verdicts)"
    (Generator.arbitrary Generator.default)
    (fun prog ->
      let g = Compile.compile prog in
      let q = Interp.graph_program g in
      let space = Generator.space_for Generator.default in
      List.iter
        (fun policy ->
          List.iter
            (fun (view, vname) ->
              let msg = Printf.sprintf "%s/%s" (Policy.name policy) vname in
              let oracle = Maximal.table view policy q space in
              let tbl, _ = Refine.table_stats view policy q space in
              Alcotest.(check string) (msg ^ ": table") (fp oracle) (fp tbl);
              List.iter
                (fun jobs ->
                  let (ptbl, _), _, _ =
                    Exhaustive.maximal_table_refined ~view ~jobs policy q space
                  in
                  Alcotest.(check string)
                    (Printf.sprintf "%s: table jobs=%d" msg jobs)
                    (fp oracle) (fp ptbl))
                both_jobs)
            views;
          check_soundness_against_oracle
            (Policy.name policy ^ "/raw-Q") Soundness.default policy
            (Mechanism.of_program q) space)
        (Report.policies_of_arity (Space.arity space));
      true)

(* --- cache sharing ------------------------------------------------------ *)

let test_cache_sharing_across_views () =
  let e = Paper.find "ex8" in
  let q = Paper.program e in
  let p = e.Paper.policy in
  let space = e.Paper.space in
  let cache = Cache.create () in
  let share = { Exhaustive.cache; digest = "ex8"; tag = "raw-Q" } in
  let run view = Exhaustive.maximal_table_refined ~view ~jobs:1 ~share p q space in
  let (tbl_v, _), rs_v, _ = run `Value in
  Alcotest.(check int) "cold cache: misses = refined runs" rs_v.Refine.runs
    (Cache.misses cache);
  Alcotest.(check string) "cached value-view table = oracle"
    (fp (Maximal.table `Value p q space))
    (fp tbl_v);
  (* Same view again: zero new misses, identical table. *)
  let misses0 = Cache.misses cache in
  let (tbl_v2, _), _, _ = run `Value in
  Alcotest.(check int) "warm cache: no new misses" misses0 (Cache.misses cache);
  Alcotest.(check string) "warm table identical" (fp tbl_v) (fp tbl_v2);
  (* The timed view shares every raw-Q run already cached: the tag excludes
     the view, so only genuinely new points can miss. *)
  let hits0 = Cache.hits cache in
  let (tbl_t, _), rs_t, _ = run `Timed in
  Alcotest.(check bool) "timed view hits value-view runs" true
    (Cache.hits cache > hits0);
  Alcotest.(check bool) "timed view misses only new points" true
    (Cache.misses cache - misses0 <= rs_t.Refine.runs);
  Alcotest.(check string) "cached timed-view table = oracle"
    (fp (Maximal.table `Timed p q space))
    (fp tbl_t)

(* --- the facade --------------------------------------------------------- *)

let test_analyze_brute_equals_refine () =
  let e = Paper.find "ex8" in
  let q = Paper.program e in
  let p = e.Paper.policy in
  List.iter
    (fun jobs ->
      let at algo = Analyze.config ~jobs ~algo e.Paper.space in
      let m_b, _ = Analyze.maximal (at Analyze.Brute) p q in
      let m_r, _ = Analyze.maximal (at Analyze.Refine) p q in
      Seq.iter
        (fun a ->
          Alcotest.(check string)
            (Printf.sprintf "Analyze jobs=%d on %s" jobs (Report.show_input a))
            (show_mech_reply (Mechanism.respond m_b a))
            (show_mech_reply (Mechanism.respond m_r a)))
        (Space.enumerate e.Paper.space);
      Alcotest.(check (pair int int))
        (Printf.sprintf "Analyze granted classes jobs=%d" jobs)
        (fst (Analyze.granted_classes (at Analyze.Brute) p q))
        (fst (Analyze.granted_classes (at Analyze.Refine) p q));
      Alcotest.(check (float 1e-12))
        (Printf.sprintf "Analyze maximal ratio jobs=%d" jobs)
        (fst (Analyze.maximal_ratio (at Analyze.Brute) p q))
        (fst (Analyze.maximal_ratio (at Analyze.Refine) p q));
      let m = Mechanism.of_program q in
      Alcotest.(check string)
        (Printf.sprintf "Analyze soundness jobs=%d" jobs)
        (verdict_str (fst (Analyze.soundness (at Analyze.Brute) p m)))
        (verdict_str (fst (Analyze.soundness (at Analyze.Refine) p m))))
    both_jobs

let test_refine_actually_saves () =
  (* The perf claim's mechanism, pinned functionally: on the bench workload
     shape (gcd under allow{0}) most classes split early, so the refined
     pass runs a small fraction of the space. *)
  let gcd =
    Program.of_fun ~name:"gcd" ~arity:2 (fun a ->
        let rec go a b = if b = 0 then a else if a > b then go (a - b) b else go a (b - a) in
        Value.int (go (Value.to_int a.(0) + 1) (Value.to_int a.(1) + 1)))
  in
  let space = Space.ints ~lo:0 ~hi:15 ~arity:2 in
  let policy = Policy.allow [ 0 ] in
  check_against_oracle "gcd-16x16" `Value policy gcd space;
  let _, stats = Refine.table_stats `Value policy gcd space in
  Alcotest.(check bool)
    (Printf.sprintf "refinement skips most of 16x16 (ran %d of %d)"
       stats.Refine.runs stats.Refine.space_size)
    true
    (stats.Refine.saved > stats.Refine.space_size / 2)

let () =
  Alcotest.run "refine"
    [
      ( "differential",
        [
          Alcotest.test_case "corpus x allow(J) x views: tables, mechanisms"
            `Slow test_corpus_differential;
          Alcotest.test_case "corpus x allow(J): soundness verdicts" `Slow
            test_corpus_soundness_differential;
          prop_random_differential;
        ] );
      ( "adversarial",
        [
          Alcotest.test_case "all-singleton classes" `Quick
            test_all_singleton_classes;
          Alcotest.test_case "one giant class" `Quick test_one_giant_class;
          Alcotest.test_case "filter policy (generic partition)" `Quick
            test_filter_policy;
          Alcotest.test_case "duplicate domain values" `Quick
            test_duplicate_domain_values;
          Alcotest.test_case "empty-product space" `Quick
            test_empty_product_space;
        ] );
      ( "sharing",
        [
          Alcotest.test_case "exact-key cache shared across views" `Quick
            test_cache_sharing_across_views;
        ] );
      ( "facade",
        [
          Alcotest.test_case "Analyze: Brute = Refine at jobs 1 and 4" `Quick
            test_analyze_brute_equals_refine;
          Alcotest.test_case "refinement saves runs on the bench shape" `Quick
            test_refine_actually_saves;
        ] );
    ]
