(* The telemetry layer: event codec round-trips (QCheck), sink backends,
   the metrics registry, and the two properties the tentpole promises —
   tracing is bit-invisible (a traced run replies exactly like an
   un-traced one, and the null sink IS the un-traced code path), and
   verdict provenance explains every condemned run in the corpus with a
   chain that ends at the condemning box. *)

open Util
module Var = Secpol_flowgraph.Var
module Span = Secpol_flowgraph.Span
module Emit = Secpol_flowgraph.Emit
module Graph = Secpol_flowgraph.Graph
module Dynamic = Secpol_taint.Dynamic
module Instrument = Secpol_taint.Instrument
module Paper = Secpol_corpus.Paper_programs
module Guard = Secpol_fault.Guard
module Media = Secpol_journal.Media
module Runner = Secpol_journal.Runner
module Event = Secpol_trace.Event
module Sink = Secpol_trace.Sink
module Metrics = Secpol_trace.Metrics
module Provenance = Secpol_trace.Provenance
module Json = Secpol_staticflow.Lint.Json

let contains s sub =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

let show_inputs a =
  "(" ^ String.concat "," (Array.to_list (Array.map Value.to_string a)) ^ ")"

let expect_invalid what f =
  match f () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.failf "%s: expected Invalid_argument" what

(* --- event generator ----------------------------------------------------- *)

let gen_iset =
  QCheck.Gen.(
    map Iset.of_list
      (list_size (int_bound 6) (int_bound (min 20 (Iset.max_index - 1)))))

let gen_var =
  QCheck.Gen.(
    oneof
      [
        return Var.Out;
        map (fun i -> Var.Reg i) (int_bound 9);
        map (fun i -> Var.Input i) (int_bound 9);
      ])

let gen_str =
  (* Printable ASCII, salted with the characters the JSON escaper has to
     work for. *)
  QCheck.Gen.(
    string_size ~gen:
      (frequency
         [
           (20, map Char.chr (int_range 32 126)); (1, oneofl [ '\n'; '\t'; '"'; '\\' ]);
         ])
      (int_bound 12))

let gen_span =
  QCheck.Gen.(
    opt
      (map
         (fun (a, b, c, d) ->
           Span.make ~start_line:a ~start_col:b ~end_line:c ~end_col:d)
         (quad small_nat small_nat small_nat small_nat)))

let gen_event =
  let open QCheck.Gen in
  let nat = small_nat in
  oneof
    [
      map
        (fun ((program, arity, mode), (allowed, inputs)) ->
          Event.Run { program; arity; mode; allowed; inputs })
        (pair (triple gen_str (int_bound 8) gen_str)
           (pair gen_iset (list_size (int_bound 4) gen_str)));
      map
        (fun (step, node, span) -> Event.Box { step; node; span })
        (triple nat nat gen_span);
      map
        (fun (step, node, var, value) -> Event.Assign { step; node; var; value })
        (quad nat nat gen_var small_signed_int);
      map
        (fun ((step, node, span), (var, taint, srcs)) ->
          Event.Taint { step; node; span; var; taint; srcs })
        (pair (triple nat nat gen_span)
           (triple gen_var gen_iset (list_size (int_bound 4) gen_var)));
      map
        (fun ((step, node, span), (pc, srcs)) ->
          Event.Pc { step; node; span; pc; srcs })
        (pair (triple nat nat gen_span)
           (pair gen_iset (list_size (int_bound 4) gen_var)));
      map
        (fun ((step, node, span), (at_decision, taint, srcs), notice) ->
          Event.Condemn { step; node; span; at_decision; taint; srcs; notice })
        (triple (triple nat nat gen_span)
           (triple bool gen_iset (list_size (int_bound 4) gen_var))
           gen_str);
      map
        (fun (kind, mechanism, attempt, detail) ->
          Event.Guard { kind; mechanism; attempt; detail })
        (quad (oneofl [ Event.Retry; Event.Degraded ]) gen_str nat gen_str);
      map
        (fun (kind, step, detail) -> Event.Journal { kind; step; detail })
        (triple
           (oneofl [ Event.Checkpoint; Event.Resume; Event.Replay_skip ])
           nat gen_str);
      map
        (fun (kind, shard, round, detail) ->
          Event.Dist { kind; shard; round; detail })
        (quad
           (oneofl
              [
                Event.Shard_start;
                Event.Shard_reply;
                Event.Shard_retry;
                Event.Shard_lost;
                Event.Merge;
              ])
           (map (fun n -> n - 1) nat)
           nat gen_str);
      map
        (fun (kind, conn, session, detail) ->
          Event.Server { kind; conn; session; detail })
        (quad
           (oneofl
              [
                Event.Conn_open;
                Event.Conn_close;
                Event.Session_open;
                Event.Admit;
                Event.Shed;
                Event.Expire;
                Event.Serve;
                Event.Resume_serve;
                Event.Proto_error;
                Event.Drain;
                Event.Restart;
              ])
           (map (fun n -> n - 1) nat)
           gen_str gen_str);
      map
        (fun (response, text, steps) -> Event.Verdict { response; text; steps })
        (triple
           (oneofl [ Event.Granted; Event.Denied; Event.Hung; Event.Failed ])
           gen_str nat);
    ]

let event_arb = QCheck.make ~print:Event.to_jsonl gen_event

(* --- codec --------------------------------------------------------------- *)

let jsonl_roundtrip e =
  match Event.of_jsonl (Event.to_jsonl e) with
  | Ok e' -> Event.equal e e'
  | Error m -> QCheck.Test.fail_reportf "decode failed: %s" m

let json_roundtrip e =
  match Event.of_json (Event.to_json e) with
  | Ok e' -> Event.equal e e'
  | Error m -> QCheck.Test.fail_reportf "decode failed: %s" m

let chrome_renders e =
  (* Render-only, but the rendering must be self-contained valid JSON. *)
  match Json.parse (Json.render (Event.to_chrome e)) with
  | Ok (Json.Obj fields) -> List.mem_assoc "ph" fields
  | Ok _ -> false
  | Error m -> QCheck.Test.fail_reportf "chrome object unparseable: %s" m

let sample_events =
  [
    Event.Run
      {
        program = "p";
        arity = 2;
        mode = "surveillance";
        allowed = Iset.of_list [ 0 ];
        inputs = [ "1"; "2" ];
      };
    Event.Box
      {
        step = 0;
        node = 1;
        span = Some (Span.make ~start_line:1 ~start_col:0 ~end_line:1 ~end_col:4);
      };
    Event.Taint
      {
        step = 0;
        node = 1;
        span = None;
        var = Var.Reg 0;
        taint = Iset.of_list [ 1 ];
        srcs = [ Var.Input 1 ];
      };
    Event.Pc { step = 1; node = 2; span = None; pc = Iset.empty; srcs = [] };
    Event.Condemn
      {
        step = 2;
        node = 3;
        span = None;
        at_decision = false;
        taint = Iset.of_list [ 1 ];
        srcs = [ Var.Out ];
        notice = "Λ";
      };
    Event.Guard
      { kind = Event.Retry; mechanism = "m"; attempt = 1; detail = "boom" };
    Event.Journal { kind = Event.Checkpoint; step = 4; detail = "snapshot" };
    Event.Dist
      { kind = Event.Shard_reply; shard = 1; round = 2; detail = "Λ in 4" };
    Event.Verdict { response = Event.Denied; text = "Λ"; steps = 9 };
  ]

let check_events msg expected actual =
  Alcotest.(check int) (msg ^ ": count") (List.length expected) (List.length actual);
  List.iteri
    (fun i (e, e') ->
      if not (Event.equal e e') then
        Alcotest.failf "%s: event %d: %s <> %s" msg i (Event.to_jsonl e)
          (Event.to_jsonl e'))
    (List.combine expected actual)

let test_decode_lines () =
  let doc =
    "\n"
    ^ String.concat "\n\n" (List.map Event.to_jsonl sample_events)
    ^ "\n\n"
  in
  (match Event.decode_lines doc with
  | Ok evs -> check_events "blank lines skipped" sample_events evs
  | Error m -> Alcotest.failf "decode_lines: %s" m);
  match
    Event.decode_lines (Event.to_jsonl (List.hd sample_events) ^ "\nnot json\n")
  with
  | Ok _ -> Alcotest.fail "malformed line accepted"
  | Error m ->
      Alcotest.(check bool)
        (Printf.sprintf "error %S names line 2" m)
        true (contains m "line 2")

(* --- sinks --------------------------------------------------------------- *)

let test_null_sink_is_none () =
  Alcotest.(check bool) "emitter null == Emit.none" true
    (Sink.emitter Sink.null == Emit.none);
  let g = Paper.graph Paper.direct_flow in
  Alcotest.(check bool) "with a graph too" true
    (Sink.emitter ~graph:g Sink.null == Emit.none);
  Alcotest.(check bool) "is_null" true (Sink.is_null Sink.null)

let test_memory_sink () =
  let sink = Sink.memory () in
  List.iter (Sink.emit sink) sample_events;
  check_events "arrival order" sample_events (Sink.events sink);
  Alcotest.(check int) "count" (List.length sample_events) (Sink.count sink)

let with_temp_file f =
  let path = Filename.temp_file ~temp_dir:(Sys.getcwd ()) "trace" ".tmp" in
  Fun.protect ~finally:(fun () -> Sys.remove path) (fun () -> f path)

let read_file path = In_channel.with_open_bin path In_channel.input_all

let test_jsonl_file_sink () =
  with_temp_file (fun path ->
      let sink = Sink.to_file Sink.Jsonl path in
      List.iter (Sink.emit sink) sample_events;
      Sink.close sink;
      Sink.close sink (* idempotent *);
      Sink.emit sink (Event.Box { step = 99; node = 99; span = None });
      (* no-op after close *)
      match Event.decode_lines (read_file path) with
      | Ok evs -> check_events "file round-trip" sample_events evs
      | Error m -> Alcotest.failf "decode_lines: %s" m)

let test_chrome_file_sink () =
  with_temp_file (fun path ->
      let sink = Sink.to_file Sink.Chrome path in
      List.iter (Sink.emit sink) sample_events;
      Sink.close sink;
      match Json.parse (read_file path) with
      | Ok (Json.List objs) ->
          Alcotest.(check bool)
            "one trace-event object per event" true
            (List.length objs >= List.length sample_events);
          List.iter
            (function
              | Json.Obj fields ->
                  Alcotest.(check bool) "has ph" true (List.mem_assoc "ph" fields)
              | _ -> Alcotest.fail "non-object trace event")
            objs
      | Ok _ -> Alcotest.fail "chrome file is not a JSON array"
      | Error m -> Alcotest.failf "chrome file unparseable: %s" m)

(* --- metrics ------------------------------------------------------------- *)

let test_metrics_registry () =
  let m = Metrics.create () in
  let a = Metrics.counter m "alpha" in
  let h = Metrics.histogram m "lat" in
  let b = Metrics.counter m "beta" in
  Metrics.incr a;
  Metrics.incr ~by:4 b;
  List.iter (Metrics.observe h) [ 1; 2; 3; 8 ];
  (match Metrics.stats m with
  | [
   ("alpha", Metrics.Counter 1);
   ("lat", Metrics.Histogram s);
   ("beta", Metrics.Counter 4);
  ] ->
      Alcotest.(check int) "n" 4 s.Metrics.n;
      Alcotest.(check int) "sum" 14 s.Metrics.sum;
      Alcotest.(check int) "min" 1 s.Metrics.min;
      Alcotest.(check int) "max" 8 s.Metrics.max;
      let uppers = List.map fst s.Metrics.buckets in
      Alcotest.(check bool) "buckets ascending" true
        (List.sort compare uppers = uppers);
      Alcotest.(check int) "bucket counts total n" 4
        (List.fold_left (fun acc (_, c) -> acc + c) 0 s.Metrics.buckets)
  | stats ->
      Alcotest.failf "unexpected registry contents (%d entries)"
        (List.length stats));
  Alcotest.(check int) "get-or-create returns the same counter" 1
    (Metrics.count (Metrics.counter m "alpha"));
  Alcotest.(check int) "counter_value by name" 4 (Metrics.counter_value m "beta");
  Alcotest.(check int) "absent name reads 0" 0 (Metrics.counter_value m "nope");
  expect_invalid "counter/histogram kind clash" (fun () ->
      Metrics.counter m "lat");
  expect_invalid "histogram/counter kind clash" (fun () ->
      Metrics.histogram m "alpha");
  expect_invalid "negative increment" (fun () -> Metrics.incr ~by:(-1) a);
  expect_invalid "negative sample" (fun () -> Metrics.observe h (-1));
  match Json.parse (Metrics.to_json_string m) with
  | Ok (Json.Obj fields) ->
      Alcotest.(check bool) "json has every name" true
        (List.for_all (fun k -> List.mem_assoc k fields) [ "alpha"; "lat"; "beta" ])
  | Ok _ | Error _ -> Alcotest.fail "metrics JSON unparseable"

let test_metrics_gauges () =
  let m = Metrics.create () in
  let g = Metrics.gauge m "depth" in
  Alcotest.(check int) "initial" 0 (Metrics.gauge_read g);
  Metrics.set g 7;
  Alcotest.(check int) "set" 7 (Metrics.gauge_read g);
  Metrics.add g 5;
  Metrics.add g (-10);
  Alcotest.(check int) "add goes down" 2 (Metrics.gauge_read g);
  Metrics.add g (-5);
  Alcotest.(check int) "may go negative" (-3) (Metrics.gauge_read g);
  Alcotest.(check int) "gauge_value by name" (-3) (Metrics.gauge_value m "depth");
  Alcotest.(check int) "absent gauge reads 0" 0 (Metrics.gauge_value m "nope");
  expect_invalid "gauge/counter kind clash" (fun () -> Metrics.counter m "depth");
  expect_invalid "gauge/histogram kind clash" (fun () ->
      Metrics.histogram m "depth");
  expect_invalid "counter/gauge kind clash" (fun () ->
      let _ = Metrics.counter m "c" in
      Metrics.gauge m "c");
  (* Snapshot JSON keeps the gauge shape and round-trips exactly. *)
  let snap = Metrics.snapshot m in
  (match Metrics.snapshot_of_json (Metrics.snapshot_to_json snap) with
  | Ok back ->
      Alcotest.(check bool) "snapshot json round-trip" true (back = snap)
  | Error e -> Alcotest.fail ("snapshot json: " ^ e));
  match Metrics.find m "depth" with
  | Some (Metrics.Gauge (-3)) -> ()
  | _ -> Alcotest.fail "find did not report the gauge"

let test_metrics_merge () =
  let mk fill =
    let m = Metrics.create () in
    fill m;
    m
  in
  let into =
    mk (fun m ->
        Metrics.incr ~by:3 (Metrics.counter m "c");
        Metrics.set (Metrics.gauge m "g") 5;
        List.iter (Metrics.observe (Metrics.histogram m "h")) [ 1; 4 ])
  in
  let src =
    mk (fun m ->
        Metrics.incr ~by:2 (Metrics.counter m "c");
        Metrics.set (Metrics.gauge m "g") (-1);
        List.iter (Metrics.observe (Metrics.histogram m "h")) [ 4; 100 ];
        Metrics.incr (Metrics.counter m "only-src"))
  in
  Metrics.merge ~into src;
  Alcotest.(check int) "counters sum" 5 (Metrics.counter_value into "c");
  Alcotest.(check int) "gauges sum" 4 (Metrics.gauge_value into "g");
  Alcotest.(check int) "new names registered" 1
    (Metrics.counter_value into "only-src");
  (match Metrics.find into "h" with
  | Some (Metrics.Histogram s) ->
      Alcotest.(check int) "hist n" 4 s.Metrics.n;
      Alcotest.(check int) "hist sum" 109 s.Metrics.sum;
      Alcotest.(check int) "hist min" 1 s.Metrics.min;
      Alcotest.(check int) "hist max" 100 s.Metrics.max
  | _ -> Alcotest.fail "merged histogram missing");
  (* Kind conflicts refuse to merge, whichever pair collides. *)
  let clash fill_into fill_src =
    let into = mk fill_into and src = mk fill_src in
    expect_invalid "merge kind clash" (fun () -> Metrics.merge ~into src)
  in
  clash
    (fun m -> ignore (Metrics.counter m "x"))
    (fun m -> ignore (Metrics.gauge m "x"));
  clash
    (fun m -> ignore (Metrics.gauge m "x"))
    (fun m -> ignore (Metrics.histogram m "x"));
  clash
    (fun m -> ignore (Metrics.histogram m "x"))
    (fun m -> ignore (Metrics.counter m "x"))

let test_metrics_boundaries () =
  let m = Metrics.create () in
  let h = Metrics.histogram m "edge" in
  Metrics.observe h 0;
  Metrics.observe h 1;
  Metrics.observe h max_int;
  match Metrics.summary h with
  | s ->
      Alcotest.(check int) "n" 3 s.Metrics.n;
      Alcotest.(check int) "min" 0 s.Metrics.min;
      Alcotest.(check int) "max" max_int s.Metrics.max;
      (* 0 and 1 share the first bucket (upper bound 1); max_int lands in
         the last bucket, whose upper bound is max_int itself — no
         overflow into a negative bound. *)
      (match s.Metrics.buckets with
      | [ (1, 2); (upper, 1) ] ->
          Alcotest.(check int) "last bucket bound" max_int upper
      | _ -> Alcotest.fail "unexpected bucket shape");
      Alcotest.(check bool) "bounds ascend" true
        (let uppers = List.map fst s.Metrics.buckets in
         List.sort compare uppers = uppers)

let test_metrics_diff () =
  let older =
    [
      ("c", Metrics.Counter 10);
      ("g", Metrics.Gauge 9);
      ("h", Metrics.Histogram
          { Metrics.n = 2; sum = 5; min = 1; max = 4; buckets = [ (1, 1); (7, 1) ] });
      ("gone-backwards", Metrics.Counter 100);
    ]
  in
  let newer =
    [
      ("c", Metrics.Counter 15);
      ("g", Metrics.Gauge 2);
      ("h", Metrics.Histogram
          { Metrics.n = 5; sum = 25; min = 1; max = 16; buckets = [ (1, 1); (7, 2); (31, 2) ] });
      ("gone-backwards", Metrics.Counter 40);
      ("fresh", Metrics.Counter 3);
    ]
  in
  match Metrics.diff ~older newer with
  | [
      ("c", Metrics.Counter 5);
      ("g", Metrics.Gauge 2);
      ("h", Metrics.Histogram hs);
      ("gone-backwards", Metrics.Counter 0);
      ("fresh", Metrics.Counter 3);
    ] ->
      Alcotest.(check int) "interval n" 3 hs.Metrics.n;
      Alcotest.(check int) "interval sum" 20 hs.Metrics.sum;
      Alcotest.(check int) "cumulative max kept" 16 hs.Metrics.max;
      Alcotest.(check bool) "zero buckets dropped" true
        (hs.Metrics.buckets = [ (7, 1); (31, 2) ])
  | d ->
      Alcotest.failf "diff shape unexpected (%d entries)" (List.length d)

(* --- Prometheus exposition round-trip ------------------------------------ *)

(* Registry names are arbitrary strings — slashes, quotes, backslashes,
   newlines, unicode — while Prometheus family names are [A-Za-z0-9_:].
   The renderer must carry the exact name through the name="..." label
   whatever we throw at it. *)
let gen_metric_name =
  QCheck.Gen.(
    string_size ~gen:
      (frequency
         [
           (6, char_range 'a' 'z');
           (2, oneofl [ '/'; '-'; '_'; ':' ]);
           (2, oneofl [ '"'; '\\'; '\n'; ' '; '{'; '}'; ','; '='; '\xce'; '\x9b' ]);
         ])
      (int_range 1 18))

let gen_snapshot_ops =
  QCheck.Gen.(
    list_size (int_bound 10)
      (triple gen_metric_name (int_bound 2)
         (list_size (int_bound 6) (frequency [ (5, int_bound 1000); (1, return 0); (1, return max_int) ]))))

(* Build a real registry from the generated ops (first kind wins for a
   repeated name, matching registry semantics) and snapshot it. *)
let snapshot_of_ops ops =
  let m = Metrics.create () in
  List.iter
    (fun (name, kind, samples) ->
      match Metrics.find m name with
      | Some _ -> ()
      | None -> (
          match kind with
          | 0 ->
              Metrics.incr ~by:(List.fold_left ( + ) 0 (List.map (fun s -> s land 0xff) samples))
                (Metrics.counter m name)
          | 1 ->
              Metrics.set (Metrics.gauge m name)
                (List.fold_left ( - ) 17 (List.map (fun s -> s land 0xffff) samples))
          | _ -> List.iter (Metrics.observe (Metrics.histogram m name)) samples))
    ops;
  Metrics.snapshot m

let snapshot_arb =
  QCheck.make
    ~print:(fun ops ->
      Secpol_trace.Expo.render (snapshot_of_ops ops))
    gen_snapshot_ops

let expo_roundtrip ops =
  let snap = snapshot_of_ops ops in
  let text = Secpol_trace.Expo.render snap in
  (* Deterministic: same snapshot, same bytes. *)
  if text <> Secpol_trace.Expo.render snap then false
  else
    match Secpol_trace.Expo.parse text with
    | Ok back -> back = snap
    | Error _ -> false

(* Registry names that sanitize onto a histogram's sibling families
   (_min/_max/_bucket/_sum/_count) force collision renames in the
   exposition — registered before the histogram they displace its bound
   and sample families, registered after they are displaced themselves.
   Parse routes by the emitting family's # TYPE plus the name label, so
   the inverse must survive both orders. *)
let test_expo_sibling_collisions () =
  let round_trip what m =
    let snap = Metrics.snapshot m in
    match Secpol_trace.Expo.parse (Secpol_trace.Expo.render snap) with
    | Ok back -> Alcotest.(check bool) (what ^ " round-trips") true (back = snap)
    | Error e -> Alcotest.failf "%s: render not parseable: %s" what e
  in
  (* Siblings first: histogram "h" and its bounds get renamed families. *)
  let m = Metrics.create () in
  Metrics.set (Metrics.gauge m "h_min") 1;
  Metrics.set (Metrics.gauge m "h_max") 2;
  Metrics.set (Metrics.gauge m "h_bucket") 3;
  Metrics.incr (Metrics.counter m "h_sum");
  Metrics.incr (Metrics.counter m "h_count");
  List.iter (Metrics.observe (Metrics.histogram m "h")) [ 0; 5; 1000 ];
  round_trip "siblings before histogram" m;
  (* Histogram first: the later families are the renamed ones — including
     a second histogram landing on a reserved sibling name. *)
  let m = Metrics.create () in
  List.iter (Metrics.observe (Metrics.histogram m "g")) [ 2; 9 ];
  Metrics.set (Metrics.gauge m "g_min") 4;
  Metrics.set (Metrics.gauge m "g_bucket") 5;
  Metrics.observe (Metrics.histogram m "g_count") 7;
  round_trip "siblings after histogram" m

(* --- bit-identity across the corpus -------------------------------------- *)

(* Tracing must be invisible: on every corpus entry, mode, and input, a
   run traced to a memory sink (the expensive backend) and a run traced
   to the null sink reply exactly — response AND step count — like the
   un-traced run. *)
let test_bit_identity () =
  List.iter
    (fun (e : Paper.entry) ->
      match Policy.allowed_indices e.Paper.policy with
      | None -> ()
      | Some _ ->
          let g = Paper.graph e in
          List.iter
            (fun mode ->
              let plain_cfg = Dynamic.config ~fuel:2000 ~mode e.Paper.policy in
              Seq.iter
                (fun a ->
                  let plain = Dynamic.run plain_cfg g a in
                  let check label emit =
                    let cfg = Dynamic.config ~fuel:2000 ~mode ~emit e.Paper.policy in
                    let traced = Dynamic.run cfg g a in
                    if show_mech_reply plain <> show_mech_reply traced then
                      Alcotest.failf "%s/%s %s: %s run diverged: %s vs %s"
                        e.Paper.name (Dynamic.mode_name mode) (show_inputs a)
                        label (show_mech_reply plain) (show_mech_reply traced)
                  in
                  check "null-sink" (Sink.emitter ~graph:g Sink.null);
                  check "memory-sink" (Sink.emitter ~graph:g (Sink.memory ())))
                (Space.enumerate e.Paper.space))
            Dynamic.all_modes)
    Paper.all

(* --- instrumented-run parity --------------------------------------------- *)

let show_var = function
  | Var.Reg i -> Printf.sprintf "r%d" i
  | Var.Input i -> Printf.sprintf "x%d" i
  | Var.Out -> "y"

let taint_trajectory evs =
  (* Surveillance-variable updates for program variables. The instrumented
     flowchart's prologue also initialises the input slots x̄j := {j};
     Dynamic keeps those implicit, so Input taints are dropped on both
     sides before comparing. *)
  List.filter_map
    (function
      | Event.Taint { var = (Var.Reg _ | Var.Out) as v; taint; _ } ->
          Some (v, taint)
      | _ -> None)
    evs

let show_trajectory l =
  String.concat "; "
    (List.map
       (fun (v, t) ->
         Printf.sprintf "%s=%s" (show_var v) (Format.asprintf "%a" Iset.pp t))
       l)

let verdict_class (r : Mechanism.reply) =
  match r.Mechanism.response with
  | Mechanism.Granted v -> "granted " ^ Value.to_string v
  | Mechanism.Denied _ -> "denied"
  | Mechanism.Hung -> "hung"
  | Mechanism.Failed _ -> "failed"

(* Rules (1)-(4) as an interpreter (Dynamic, Surveillance) and as a
   source-to-source rewrite (Instrument, Untimed) must not only agree on
   verdicts — through the trace adapter they must bind the SAME
   surveillance values to the SAME variables in the SAME order. *)
let test_instrument_parity () =
  List.iter
    (fun (e : Paper.entry) ->
      let g = Paper.graph e in
      Seq.iter
        (fun a ->
          let dyn_sink = Sink.memory () in
          let dyn =
            Dynamic.mechanism
                (Dynamic.config ~fuel:10000 ~mode:Dynamic.Surveillance
                   ~emit:(Sink.emitter ~graph:g dyn_sink) e.Paper.policy)
                g
          in
          let r1 = Mechanism.respond dyn a in
          let ins_sink = Sink.memory () in
          let ins =
            Instrument.mechanism ~fuel:100000
              ~emit:(Sink.emitter ins_sink) Instrument.Untimed
              ~policy:e.Paper.policy g
          in
          let r2 = Mechanism.respond ins a in
          if verdict_class r1 <> verdict_class r2 then
            Alcotest.failf "%s %s: dynamic %s, instrumented %s" e.Paper.name
              (show_inputs a) (verdict_class r1) (verdict_class r2);
          let t1 = taint_trajectory (Sink.events dyn_sink) in
          let t2 = taint_trajectory (Sink.events ins_sink) in
          if t1 <> t2 then
            Alcotest.failf "%s %s: taint trajectories diverge:@\n  dynamic: %s@\n  instrumented: %s"
              e.Paper.name (show_inputs a) (show_trajectory t1)
              (show_trajectory t2))
        (Space.enumerate e.Paper.space))
    [ Paper.forgetting; Paper.direct_flow; Paper.branch_allowed; Paper.scoped_trap ]

(* --- guard events -------------------------------------------------------- *)

let test_guard_events () =
  let failing =
    Mechanism.make ~name:"flaky" ~arity:0 (fun _ ->
        { Mechanism.response = Mechanism.Failed "boom"; steps = 1 })
  in
  let sink = Sink.memory () in
  let outcome, _steps = Guard.run ~sink failing [||] in
  (match outcome with
  | Guard.Degraded r -> Alcotest.(check int) "attempts" 3 r.Guard.attempts
  | Guard.Output _ | Guard.Notice _ -> Alcotest.fail "expected degradation");
  let guards =
    List.filter_map
      (function
        | Event.Guard { kind; mechanism; attempt; _ } ->
            Some (kind, mechanism, attempt)
        | _ -> None)
      (Sink.events sink)
  in
  match guards with
  | [ (Event.Retry, m1, 1); (Event.Retry, m2, 2); (Event.Degraded, m3, 3) ] ->
      List.iter
        (fun m -> Alcotest.(check string) "mechanism name" "flaky" m)
        [ m1; m2; m3 ]
  | _ ->
      Alcotest.failf "unexpected guard events: %s"
        (String.concat "; "
           (List.map
              (fun (k, _, a) ->
                Printf.sprintf "%s@%d"
                  (match k with Event.Retry -> "retry" | Event.Degraded -> "degraded")
                  a)
              guards))

(* --- journal events ------------------------------------------------------ *)

let first_input (e : Paper.entry) =
  match (Space.enumerate e.Paper.space) () with
  | Seq.Cons (a, _) -> a
  | Seq.Nil -> assert false

let test_journal_events () =
  let e = Paper.forgetting in
  let g = Paper.graph e in
  let a = first_input e in
  let cfg = Dynamic.config ~fuel:2000 ~mode:Dynamic.Surveillance e.Paper.policy in
  let sink = Sink.memory () in
  let media = Media.memory () in
  (match
     Runner.run ~snapshot_every:2 ~sink ~media ~program_ref:e.Paper.name cfg g a
   with
  | Runner.Completed _ -> ()
  | Runner.Killed _ -> Alcotest.fail "unexpected kill");
  let evs = Sink.events sink in
  (match evs with
  | Event.Run _ :: _ -> ()
  | _ -> Alcotest.fail "journaled run does not open with the run header");
  (match List.rev evs with
  | Event.Verdict _ :: _ -> ()
  | _ -> Alcotest.fail "journaled run does not close with the verdict");
  Alcotest.(check bool) "at least one checkpoint" true
    (List.exists
       (function Event.Journal { kind = Event.Checkpoint; _ } -> true | _ -> false)
       evs);
  (* Kill the run mid-flight, then watch the recovery lifecycle. *)
  let media2 = Media.memory () in
  (match
     Runner.run ~kill_at:2 ~snapshot_every:2 ~media:media2
       ~program_ref:e.Paper.name cfg g a
   with
  | Runner.Killed _ -> ()
  | Runner.Completed _ -> Alcotest.fail "kill_at did not kill");
  let resolve (h : Runner.header) =
    if h.Runner.program_ref = e.Paper.name then Ok g
    else Error ("unknown " ^ h.Runner.program_ref)
  in
  let sink2 = Sink.memory () in
  (match Runner.resume ~sink:sink2 ~resolve ~media:media2 () with
  | Ok _ -> ()
  | Error f -> Alcotest.failf "resume failed: %s" (Runner.failure_message f));
  let evs2 = Sink.events sink2 in
  Alcotest.(check bool) "resume event present" true
    (List.exists
       (function Event.Journal { kind = Event.Resume; _ } -> true | _ -> false)
       evs2);
  match List.rev evs2 with
  | Event.Verdict _ :: _ -> ()
  | _ -> Alcotest.fail "recovery does not close with the verdict"

(* --- provenance over the corpus ------------------------------------------ *)

(* Every condemned run in the corpus, under every mode, must explain: the
   chains cover exactly the disallowed coordinates, each chain ends at
   the condemning box, and the verdict is classified Λ/explicit,
   Λ/implicit, or Λ/timed. Chain-less denials (Λ/fuel) classify as
   Other; granted runs refuse to explain. The corpus must exercise all
   three Λ kinds. *)
let test_explain_corpus () =
  let seen = Hashtbl.create 8 in
  List.iter
    (fun (e : Paper.entry) ->
      match Policy.allowed_indices e.Paper.policy with
      | None -> ()
      | Some allowed ->
          let g = Paper.graph e in
          List.iter
            (fun mode ->
              Seq.iter
                (fun a ->
                  let where =
                    Printf.sprintf "%s/%s %s" e.Paper.name
                      (Dynamic.mode_name mode) (show_inputs a)
                  in
                  let sink = Sink.memory () in
                  let m =
                    Dynamic.mechanism
                        (Dynamic.config ~fuel:2000 ~mode
                           ~emit:(Sink.emitter ~graph:g sink) e.Paper.policy)
                        g
                  in
                  Sink.emit sink
                    (Event.run_header ~program:e.Paper.name
                       ~arity:g.Graph.arity ~mode:(Dynamic.mode_name mode)
                       ~allowed ~inputs:a);
                  let r = Mechanism.respond m a in
                  Sink.emit sink (Event.of_reply r);
                  let evs = Sink.events sink in
                  match r.Mechanism.response with
                  | Mechanism.Granted _ -> (
                      match Provenance.explain evs with
                      | Error _ -> ()
                      | Ok _ -> Alcotest.failf "%s: granted run explained" where)
                  | _ -> (
                      let condemned =
                        List.exists
                          (function Event.Condemn _ -> true | _ -> false)
                          evs
                      in
                      match Provenance.explain evs with
                      | Error msg ->
                          Alcotest.failf "%s: cannot explain denial: %s" where msg
                      | Ok ex ->
                          Hashtbl.replace seen
                            (Provenance.kind_name ex.Provenance.kind) ();
                          if condemned then begin
                            (match ex.Provenance.kind with
                            | Provenance.Explicit | Provenance.Implicit
                            | Provenance.Timed ->
                                ()
                            | Provenance.Other n ->
                                Alcotest.failf
                                  "%s: condemned run classified Other %S" where n);
                            if ex.Provenance.chains = [] then
                              Alcotest.failf "%s: condemned run has no chains"
                                where;
                            List.iter
                              (fun (c : Provenance.chain) ->
                                match List.rev c.Provenance.links with
                                | last :: _
                                  when last.Provenance.node = ex.Provenance.node
                                  ->
                                    ()
                                | _ ->
                                    Alcotest.failf
                                      "%s: chain for coordinate %d does not \
                                       end at the condemning box"
                                      where c.Provenance.coordinate)
                              ex.Provenance.chains;
                            let coords =
                              Iset.of_list
                                (List.map
                                   (fun (c : Provenance.chain) ->
                                     c.Provenance.coordinate)
                                   ex.Provenance.chains)
                            in
                            if not (Iset.equal coords ex.Provenance.disallowed)
                            then
                              Alcotest.failf
                                "%s: chains cover %a, disallowed is %a" where
                                Iset.pp coords Iset.pp ex.Provenance.disallowed
                          end
                          else
                            match ex.Provenance.kind with
                            | Provenance.Other _ -> ()
                            | k ->
                                Alcotest.failf
                                  "%s: chain-less denial classified %s" where
                                  (Provenance.kind_name k)))
                (Space.enumerate e.Paper.space))
            Dynamic.all_modes)
    Paper.all;
  List.iter
    (fun k ->
      if not (Hashtbl.mem seen k) then
        Alcotest.failf "corpus never produced a %s verdict" k)
    [ "Λ/explicit"; "Λ/implicit"; "Λ/timed" ]

(* ------------------------------------------------------------------------- *)

let () =
  Alcotest.run "trace"
    [
      ( "codec",
        [
          qtest "jsonl round-trip" event_arb jsonl_roundtrip;
          qtest "json round-trip" event_arb json_roundtrip;
          qtest "chrome rendering is valid JSON" event_arb chrome_renders;
          Alcotest.test_case "decode_lines" `Quick test_decode_lines;
        ] );
      ( "sinks",
        [
          Alcotest.test_case "null sink is Emit.none" `Quick test_null_sink_is_none;
          Alcotest.test_case "memory sink" `Quick test_memory_sink;
          Alcotest.test_case "jsonl file sink" `Quick test_jsonl_file_sink;
          Alcotest.test_case "chrome file sink" `Quick test_chrome_file_sink;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "registry" `Quick test_metrics_registry;
          Alcotest.test_case "gauges" `Quick test_metrics_gauges;
          Alcotest.test_case "merge and kind conflicts" `Quick test_metrics_merge;
          Alcotest.test_case "histogram boundaries" `Quick test_metrics_boundaries;
          Alcotest.test_case "snapshot diff" `Quick test_metrics_diff;
          qtest "prometheus round-trip" snapshot_arb expo_roundtrip;
          Alcotest.test_case "exposition survives sibling-name collisions"
            `Quick test_expo_sibling_collisions;
        ] );
      ( "invisibility",
        [
          Alcotest.test_case "traced replies = un-traced replies" `Quick
            test_bit_identity;
          Alcotest.test_case "dynamic/instrumented taint parity" `Quick
            test_instrument_parity;
        ] );
      ( "lifecycles",
        [
          Alcotest.test_case "guard retry/degrade events" `Quick test_guard_events;
          Alcotest.test_case "journal checkpoint/resume events" `Quick
            test_journal_events;
        ] );
      ( "provenance",
        [ Alcotest.test_case "explains the whole corpus" `Quick test_explain_corpus ] );
    ]
