(* Section 3: the surveillance protection mechanism and its relatives —
   both the taint-tracking interpreter and the paper's literal
   source-to-source instrumentation, which must agree. *)

open Util
module Iset = Secpol_core.Iset
module Ast = Secpol_flowgraph.Ast
module Var = Secpol_flowgraph.Var
module Expr = Secpol_flowgraph.Expr
module Graph = Secpol_flowgraph.Graph
module Compile = Secpol_flowgraph.Compile
module Interp = Secpol_flowgraph.Interp
module Dynamic = Secpol_taint.Dynamic
module Instrument = Secpol_taint.Instrument
module Paper = Secpol_corpus.Paper_programs
module Generator = Secpol_corpus.Generator
open Expr.Build

let mech mode (e : Paper.entry) = Dynamic.mechanism (Dynamic.config ~mode e.Paper.policy) (Paper.graph e)

(* --- The Section 3 comparison: surveillance vs high-water ------------- *)

let test_forgetting_surveillance () =
  let e = Paper.forgetting in
  let ms = mech Dynamic.Surveillance e in
  (* Grants exactly when x1 = 0 (y's old taint is forgotten). *)
  check_grants "x1=0 grants y=0" ms [ 3; 0 ] 0;
  check_denies "x1<>0 denies" ms [ 3; 1 ];
  check_denies "x1<>0 denies" ms [ 0; 2 ];
  check_sound "surveillance sound" e.Paper.policy ms e.Paper.space;
  check_ratio "grants the x1=0 quarter" ~expected:0.25 ms
    ~q:(Paper.program e) e.Paper.space

let test_forgetting_high_water () =
  let e = Paper.forgetting in
  let mh = mech Dynamic.High_water e in
  check_denies "high-water never forgets" mh [ 3; 0 ];
  check_denies "high-water never forgets" mh [ 0; 0 ];
  check_sound "high-water sound" e.Paper.policy mh e.Paper.space;
  check_ratio "grants nothing" ~expected:0.0 mh ~q:(Paper.program e) e.Paper.space;
  (* Ms > Mh, strictly (the paper's claim). *)
  let ms = mech Dynamic.Surveillance e in
  Alcotest.(check bool) "Ms strictly more complete" true
    (Completeness.compare ms mh ~q:(Paper.program e) e.Paper.space
    = Completeness.More_complete)

(* --- Non-maximality (Section 4) ---------------------------------------- *)

let test_surveillance_not_maximal () =
  let e = Paper.constant_branch in
  let q = Paper.program e in
  let ms = mech Dynamic.Surveillance e in
  check_ratio "surveillance always denies" ~expected:0.0 ms ~q e.Paper.space;
  let mx = Maximal.build e.Paper.policy q e.Paper.space in
  check_ratio "maximal grants everywhere (Q is constant)" ~expected:1.0 mx ~q
    e.Paper.space;
  Alcotest.(check bool) "maximal strictly beats surveillance" true
    (Completeness.compare mx ms ~q e.Paper.space = Completeness.More_complete)

(* --- Timed surveillance (Theorem 3') ----------------------------------- *)

let test_timed_mode () =
  let e = Paper.forgetting in
  let mt = mech Dynamic.Timed e in
  (* The decision on x1 is allowed here, so timed behaves like plain
     surveillance on this program. *)
  check_grants "still grants x1=0" mt [ 3; 0 ] 0;
  check_sound "sound with observable time" ~config:Soundness.timed e.Paper.policy
    mt e.Paper.space;
  (* Surveillance (which suppresses only at halt) is NOT timed-sound on a
     program that branches on the secret before halting. *)
  let branchy =
    Ast.prog ~name:"branchy" ~arity:2
      (Ast.seq
         [
           Ast.If (x 0 =: i 0, Ast.Assign (Var.Reg 0, i 1), Ast.Skip);
           Ast.Assign (Var.Out, x 1);
         ])
  in
  let g = Compile.compile branchy in
  let policy = Policy.allow [ 1 ] in
  let ms = Dynamic.mechanism (Dynamic.config ~mode:Dynamic.Surveillance policy) g in
  let mt' = Dynamic.mechanism (Dynamic.config ~mode:Dynamic.Timed policy) g in
  let space = Space.ints ~lo:0 ~hi:3 ~arity:2 in
  check_sound "surveillance sound untimed" policy ms space;
  check_unsound "surveillance leaks through time" ~config:Soundness.timed policy
    ms space;
  check_sound "timed variant sound even timed" ~config:Soundness.timed policy mt'
    space

let test_timed_denies_at_decision () =
  (* Branch on the secret: the timed mechanism must deny BEFORE the test —
     i.e. at the same step count on every input of a class. *)
  let branchy =
    Ast.prog ~name:"secret-branch" ~arity:1
      (Ast.If (x 0 =: i 0, Ast.Assign (Var.Out, i 1), Ast.Assign (Var.Out, i 1)))
  in
  let g = Compile.compile branchy in
  let m = Dynamic.mechanism (Dynamic.config ~mode:Dynamic.Timed Policy.allow_none) g in
  let r0 = Mechanism.respond m (ints [ 0 ]) in
  let r5 = Mechanism.respond m (ints [ 3 ]) in
  (match (r0.Mechanism.response, r5.Mechanism.response) with
  | Mechanism.Denied _, Mechanism.Denied _ -> ()
  | _ -> Alcotest.fail "expected denials");
  Alcotest.(check int) "same denial time" r0.Mechanism.steps r5.Mechanism.steps

(* --- Scoped surveillance: more complete, not sound --------------------- *)

let test_scoped_trap () =
  let e = Paper.scoped_trap in
  let q = Paper.program e in
  let msc = mech Dynamic.Scoped e in
  let ms = mech Dynamic.Surveillance e in
  (* Scoped restores the pc taint after the join, so the UNTAKEN-branch
     runs (x1 <> 0, y left at 0) are granted; the taken branch's assignment
     still absorbs the branch taint and is denied. Granting 3/4 of the
     space while the grant/deny choice tracks the disallowed test is
     precisely the leak. *)
  check_ratio "scoped grants the untaken-branch inputs" ~expected:0.75 msc ~q
    e.Paper.space;
  check_ratio "surveillance denies everywhere" ~expected:0.0 ms ~q e.Paper.space;
  check_unsound "scoped is unsound here" e.Paper.policy msc e.Paper.space;
  check_sound "surveillance stays sound" e.Paper.policy ms e.Paper.space

let test_scoped_helps_soundly_sometimes () =
  (* Compute after a tainted branch rejoins, but never into the output:
     scoped grants, surveillance denies, and scoped happens to be sound. *)
  let p =
    Ast.prog ~name:"rejoin" ~arity:2
      (Ast.seq
         [
           Ast.If (x 0 =: i 0, Ast.Assign (Var.Reg 0, i 1), Ast.Assign (Var.Reg 0, i 2));
           Ast.Assign (Var.Out, x 1);
         ])
  in
  let g = Compile.compile p in
  let policy = Policy.allow [ 1 ] in
  let space = Space.ints ~lo:0 ~hi:2 ~arity:2 in
  let msc = Dynamic.mechanism (Dynamic.config ~mode:Dynamic.Scoped policy) g in
  let ms = Dynamic.mechanism (Dynamic.config ~mode:Dynamic.Surveillance policy) g in
  let q = Interp.graph_program g in
  check_ratio "scoped grants" ~expected:1.0 msc ~q space;
  check_ratio "surveillance denies" ~expected:0.0 ms ~q space;
  check_sound "scoped sound on this program" policy msc space

(* --- The instrumentation (rules 1-4) ------------------------------------ *)

let test_instrumented_structure () =
  let e = Paper.forgetting in
  let g = Paper.graph e in
  let allowed = Iset.of_list [ 1 ] in
  let g' = Instrument.instrument Instrument.Untimed ~allowed g in
  (* The instrumented graph contains exactly one violation halt, and more
     boxes than the original. *)
  let violations =
    Array.to_list g'.Graph.nodes
    |> List.filter (function Graph.Halt_violation _ -> true | _ -> false)
  in
  Alcotest.(check int) "one violation halt" 1 (List.length violations);
  Alcotest.(check bool) "strictly bigger" true
    (Graph.node_count g' > Graph.node_count g)

let test_instrumented_rejects_reinstrumentation () =
  let e = Paper.forgetting in
  let allowed = Iset.of_list [ 1 ] in
  let g' = Instrument.instrument Instrument.Untimed ~allowed (Paper.graph e) in
  match Instrument.instrument Instrument.Untimed ~allowed g' with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "re-instrumentation must be rejected"

let responses_agree (a : Mechanism.reply) (b : Mechanism.reply) =
  match (a.Mechanism.response, b.Mechanism.response) with
  | Mechanism.Granted v, Mechanism.Granted w -> Value.equal v w
  | Mechanism.Denied _, Mechanism.Denied _ -> true
  | Mechanism.Hung, Mechanism.Hung -> true
  | Mechanism.Failed _, Mechanism.Failed _ -> true
  | _ -> false

(* The paper defines surveillance BY the instrumentation; the interpreter is
   our optimization. They must agree pointwise, on every generated program
   and policy. *)
let prop_instrumentation_agrees_with_interpreter =
  let params = Generator.default in
  let arb =
    QCheck.pair (Generator.arbitrary params)
      (QCheck.make
         ~print:(fun l -> String.concat "," (List.map string_of_int l))
         QCheck.Gen.(map (fun m -> List.filteri (fun i _ -> m land (1 lsl i) <> 0) [ 0; 1 ])
           (int_bound 3)))
  in
  qtest ~count:200 "instrumented flowchart = taint interpreter (untimed)" arb
    (fun (prog, allowed_list) ->
      let g = Compile.compile prog in
      let policy = Policy.allow allowed_list in
      let m_interp = Dynamic.mechanism (Dynamic.config ~mode:Dynamic.Surveillance policy) g in
      let m_instr = Instrument.mechanism Instrument.Untimed ~policy g in
      Seq.for_all
        (fun a ->
          responses_agree (Mechanism.respond m_interp a) (Mechanism.respond m_instr a))
        (Space.enumerate (Generator.space_for params)))

let prop_timed_instrumentation_agrees =
  let params = Generator.default in
  qtest ~count:150 "timed instrumented flowchart = timed taint interpreter"
    (Generator.arbitrary params)
    (fun prog ->
      let g = Compile.compile prog in
      let policy = Policy.allow [ 0 ] in
      let m_interp = Dynamic.mechanism (Dynamic.config ~mode:Dynamic.Timed policy) g in
      let m_instr = Instrument.mechanism Instrument.Timed_variant ~policy g in
      Seq.for_all
        (fun a ->
          responses_agree (Mechanism.respond m_interp a) (Mechanism.respond m_instr a))
        (Space.enumerate (Generator.space_for params)))

(* --- The theorems, checked on random programs --------------------------- *)

let policy_cases = [ Policy.allow_none; Policy.allow [ 0 ]; Policy.allow [ 1 ] ]

(* Theorem 3: surveillance is sound when running time is unobservable. *)
let prop_theorem3_surveillance_sound =
  let params = Generator.default in
  qtest ~count:200 "Theorem 3: surveillance sound (untimed) on random programs"
    (Generator.arbitrary params)
    (fun prog ->
      let g = Compile.compile prog in
      let space = Generator.space_for params in
      List.for_all
        (fun policy ->
          Soundness.is_sound policy
            (Dynamic.mechanism (Dynamic.config ~mode:Dynamic.Surveillance policy) g)
            space)
        policy_cases)

(* Theorem 3': the timed variant stays sound with time observable. *)
let prop_theorem3'_timed_sound =
  let params = Generator.default in
  qtest ~count:200 "Theorem 3': timed surveillance sound (timed view)"
    (Generator.arbitrary params)
    (fun prog ->
      let g = Compile.compile prog in
      let space = Generator.space_for params in
      List.for_all
        (fun policy ->
          Soundness.is_sound ~config:Soundness.timed policy
            (Dynamic.mechanism (Dynamic.config ~mode:Dynamic.Timed policy) g)
            space)
        policy_cases)

(* The instrumented timed mechanism is a DIFFERENT executable from the
   timed interpreter (its step counts include the taint bookkeeping), so
   its Theorem-3' property needs its own check: sound under the timed view
   on random programs. *)
let prop_timed_instrumented_sound_timed_view =
  let params = Generator.default in
  qtest ~count:150 "Theorem 3' holds for the instrumented flowchart's own clock"
    (Generator.arbitrary params)
    (fun prog ->
      let g = Compile.compile prog in
      let space = Generator.space_for params in
      List.for_all
        (fun policy ->
          Soundness.is_sound ~config:Soundness.timed policy
            (Instrument.mechanism Instrument.Timed_variant ~policy g)
            space)
        policy_cases)

(* High-water is sound too, and never more complete than surveillance. *)
let prop_high_water_sound_and_below_surveillance =
  let params = Generator.default in
  qtest ~count:200 "high-water sound and <= surveillance"
    (Generator.arbitrary params)
    (fun prog ->
      let g = Compile.compile prog in
      let q = Interp.graph_program g in
      let space = Generator.space_for params in
      List.for_all
        (fun policy ->
          let mh = Dynamic.mechanism (Dynamic.config ~mode:Dynamic.High_water policy) g in
          let ms = Dynamic.mechanism (Dynamic.config ~mode:Dynamic.Surveillance policy) g in
          Soundness.is_sound policy mh space
          && Completeness.as_complete_as ms mh ~q space = Ok ())
        policy_cases)

(* Every mode yields a genuine protection mechanism: grants match Q. *)
let prop_modes_are_protection_mechanisms =
  let params = Generator.default in
  qtest ~count:150 "all modes are protection mechanisms for Q"
    (Generator.arbitrary params)
    (fun prog ->
      let g = Compile.compile prog in
      let q = Interp.graph_program g in
      let space = Generator.space_for params in
      List.for_all
        (fun mode ->
          Mechanism.check_protects
            (Dynamic.mechanism (Dynamic.config ~mode (Policy.allow [ 0 ])) g)
            q space
          = Ok ())
        Dynamic.all_modes)

(* Surveillance never grants less than the maximal mechanism forbids:
   i.e. maximal >= surveillance always. *)
let prop_maximal_dominates_surveillance =
  let params = Generator.default in
  qtest ~count:150 "maximal >= surveillance on random programs"
    (Generator.arbitrary params)
    (fun prog ->
      let g = Compile.compile prog in
      let q = Interp.graph_program g in
      let space = Generator.space_for params in
      List.for_all
        (fun policy ->
          let ms = Dynamic.mechanism (Dynamic.config ~mode:Dynamic.Surveillance policy) g in
          let mx = Maximal.build policy q space in
          Completeness.as_complete_as mx ms ~q space = Ok ())
        policy_cases)

(* Example 4: mechanisms that leak through their violation notices. The
   chatty variant names the offending taint set; the taint set is
   path-dependent, so inside one policy class different secrets can draw
   different notices. *)
let test_chatty_notices_leak () =
  let prog =
    Ast.prog ~name:"chatty" ~arity:2
      (Ast.If (x 0 =: i 0, Ast.Assign (Var.Out, x 0), Ast.Assign (Var.Out, x 0 +: x 1)))
  in
  let g = Compile.compile prog in
  let policy = Policy.allow_none in
  let space = Space.ints ~lo:0 ~hi:3 ~arity:2 in
  let plain = Dynamic.mechanism (Dynamic.config ~mode:Dynamic.Surveillance policy) g in
  check_sound "single notice: sound (denies everywhere)" policy plain space;
  let chatty =
    Dynamic.mechanism
      (Dynamic.config ~chatty_notices:true ~mode:Dynamic.Surveillance policy)
    g
  in
  check_unsound "taint-naming notices split a class" policy chatty space;
  (* The notices really do differ in text, not just in principle. *)
  let notice_at inputs =
    match (Mechanism.respond chatty (ints inputs)).Mechanism.response with
    | Mechanism.Denied n -> n
    | _ -> Alcotest.fail "expected denial"
  in
  Alcotest.(check bool) "distinct notice texts" false
    (String.equal (notice_at [ 0; 0 ]) (notice_at [ 1; 0 ]))

(* Theorem 3's side condition: under an operand-sized cost model, even the
   timed mechanism leaks through granted-run durations. *)
let test_cost_model_breaks_timed_soundness () =
  let prog =
    Ast.prog ~name:"dead-multiply" ~arity:1
      (Ast.seq [ Ast.Assign (Var.Reg 0, x 0 *: x 0); Ast.Assign (Var.Out, i 1) ])
  in
  let g = Compile.compile prog in
  let policy = Policy.allow_none in
  let space = Space.ints ~lo:0 ~hi:7 ~arity:1 in
  let uniform = Dynamic.mechanism (Dynamic.config ~mode:Dynamic.Timed policy) g in
  check_sound "uniform cost: timed-sound" ~config:Soundness.timed policy uniform
    space;
  let sized =
    Dynamic.mechanism
      (Dynamic.config ~cost:Secpol_flowgraph.Expr.Operand_sized
         ~mode:Dynamic.Timed policy)
      g
  in
  (* Values still fine... *)
  check_sound "operand-sized: still value-sound" policy sized space;
  (* ... but the clock betrays the dead operand. *)
  check_unsound "operand-sized: timed-UNSOUND" ~config:Soundness.timed policy
    sized space

let test_cost_model_agrees_between_interpreters () =
  (* The plain interpreter and the monitor count the same (costed) steps on
     granted runs. *)
  let prog =
    Ast.prog ~name:"mix" ~arity:1
      (Ast.seq
         [ Ast.Assign (Var.Reg 0, (x 0 *: i 3) +: (x 0 /: i 2));
           Ast.Assign (Var.Out, x 0) ])
  in
  let g = Compile.compile prog in
  let policy = Policy.allow [ 0 ] in
  List.iter
    (fun cost ->
      let cfg = Dynamic.config ~cost ~mode:Dynamic.Surveillance policy in
      List.iter
        (fun v ->
          let plain = Interp.run_graph ~cost g (ints [ v ]) in
          let monitored = Dynamic.run cfg g (ints [ v ]) in
          Alcotest.(check int)
            (Printf.sprintf "steps agree at %d" v)
            plain.Program.steps monitored.Mechanism.steps)
        [ 0; 3; 7 ])
    [ Secpol_flowgraph.Expr.Uniform; Secpol_flowgraph.Expr.Operand_sized ]

let test_non_allow_policy_rejected () =
  let g = Paper.graph Paper.forgetting in
  let f = Policy.filter ~name:"custom" (fun _ -> Value.unit) in
  (match Dynamic.config ~mode:Dynamic.Surveillance f with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "filter policy must be rejected");
  match Instrument.mechanism Instrument.Untimed ~policy:f g with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "filter policy must be rejected by instrumentation"

let () =
  Alcotest.run "secpol-taint"
    [
      ( "section3",
        [
          Alcotest.test_case "forgetting-surveillance" `Quick test_forgetting_surveillance;
          Alcotest.test_case "forgetting-high-water" `Quick test_forgetting_high_water;
          Alcotest.test_case "not-maximal" `Quick test_surveillance_not_maximal;
        ] );
      ( "timed",
        [
          Alcotest.test_case "theorem3'" `Quick test_timed_mode;
          Alcotest.test_case "denies-at-decision" `Quick test_timed_denies_at_decision;
        ] );
      ( "scoped",
        [
          Alcotest.test_case "trap" `Quick test_scoped_trap;
          Alcotest.test_case "sound-sometimes" `Quick test_scoped_helps_soundly_sometimes;
        ] );
      ( "instrumentation",
        [
          Alcotest.test_case "structure" `Quick test_instrumented_structure;
          Alcotest.test_case "no-reinstrument" `Quick test_instrumented_rejects_reinstrumentation;
          prop_instrumentation_agrees_with_interpreter;
          prop_timed_instrumentation_agrees;
          Alcotest.test_case "non-allow-rejected" `Quick test_non_allow_policy_rejected;
        ] );
      ( "notices",
        [ Alcotest.test_case "chatty-notices-leak" `Quick test_chatty_notices_leak ] );
      ( "cost-model",
        [
          Alcotest.test_case "breaks-timed" `Quick test_cost_model_breaks_timed_soundness;
          Alcotest.test_case "interpreters-agree" `Quick test_cost_model_agrees_between_interpreters;
        ] );
      ( "theorems",
        [
          prop_theorem3_surveillance_sound;
          prop_theorem3'_timed_sound;
          prop_timed_instrumented_sound_timed_view;
          prop_high_water_sound_and_below_surveillance;
          prop_modes_are_protection_mechanisms;
          prop_maximal_dominates_surveillance;
        ] );
    ]
