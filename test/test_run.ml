(* The Secpol.Run facade: one config record in front of the interpreter,
   the dynamic monitor, the guard and the durable runner. Each single-layer
   configuration must be bit-identical to calling the underlying module
   directly, and batch must be input-ordered and jobs-independent. *)

open Util
module Run = Secpol.Run
module Pool = Secpol_engine.Pool
module Dynamic = Secpol_taint.Dynamic
module Interp = Secpol_flowgraph.Interp
module Guard = Secpol_fault.Guard
module Media = Secpol_journal.Media
module Runner = Secpol_journal.Runner
module Paper = Secpol_corpus.Paper_programs

let every_input space f = Seq.iter f (Space.enumerate space)

let check_replies msg a want got =
  Alcotest.(check string)
    (Printf.sprintf "%s on %s" msg (Secpol_fault.Report.show_input a))
    (show_mech_reply want) (show_mech_reply got)

(* --- single layers ----------------------------------------------------- *)

let test_monitor_parity () =
  let e = Paper.find "ex7" in
  let g = Paper.graph e in
  let p = e.Paper.policy in
  let cfg = Run.config ~policy:p () in
  let direct =
    Dynamic.mechanism (Dynamic.config ~mode:Dynamic.Surveillance p) g
  in
  every_input e.Paper.space (fun a ->
      check_replies "policy-only config = Dynamic" a
        (Mechanism.respond direct a) (Run.run cfg g a))

let test_interp_parity () =
  let e = Paper.find "ex7" in
  let g = Paper.graph e in
  let cfg = Run.config () in
  let plain = Interp.graph_mechanism g in
  every_input e.Paper.space (fun a ->
      check_replies "policy-less config = plain interpreter" a
        (Mechanism.respond plain a) (Run.run cfg g a))

let test_mode_and_guard_layer () =
  let e = Paper.find "ex8" in
  let g = Paper.graph e in
  let p = e.Paper.policy in
  List.iter
    (fun mode ->
      let cfg = Run.config ~policy:p ~mode ~guard:Guard.default () in
      let direct =
        Guard.protect ~config:Guard.default
          (Dynamic.mechanism (Dynamic.config ~mode p) g)
      in
      every_input e.Paper.space (fun a ->
          check_replies
            (Printf.sprintf "guarded %s config = Guard.protect"
               (Dynamic.mode_name mode))
            a
            (Mechanism.respond direct a) (Run.run cfg g a)))
    Dynamic.all_modes

let test_journal_transparent () =
  let e = Paper.find "ex7" in
  let g = Paper.graph e in
  let p = e.Paper.policy in
  let plain = Run.config ~policy:p () in
  let journaled =
    Run.config ~policy:p
      ~journal:(Run.journal_memory ~program_ref:e.Paper.name ())
      ()
  in
  every_input e.Paper.space (fun a ->
      check_replies "journaling does not change the reply" a
        (Run.run plain g a) (Run.run journaled g a))

let test_journal_needs_policy () =
  let e = Paper.find "ex7" in
  let g = Paper.graph e in
  let cfg =
    Run.config ~journal:(Run.journal_memory ~program_ref:e.Paper.name ()) ()
  in
  Alcotest.check_raises "journal without policy refused"
    (Invalid_argument "Run: a journaled run needs a policy") (fun () ->
      ignore (Run.run cfg g (ints [ 0; 0 ])))

(* --- batch -------------------------------------------------------------- *)

let test_batch_order_and_jobs () =
  let e = Paper.find "ex7" in
  let g = Paper.graph e in
  let p = e.Paper.policy in
  let inputs = List.of_seq (Space.enumerate e.Paper.space) in
  let sequential =
    List.map (fun a -> show_mech_reply (Run.run (Run.config ~policy:p ()) g a)) inputs
  in
  List.iter
    (fun jobs ->
      let replies, stats = Run.batch (Run.config ~policy:p ~jobs ()) g inputs in
      Alcotest.(check (list string))
        (Printf.sprintf "batch jobs=%d = sequential runs, in input order" jobs)
        sequential
        (List.map show_mech_reply replies);
      Alcotest.(check int) "one task per input" (List.length inputs)
        stats.Pool.task_count)
    [ 1; 4 ]

let test_batch_refuses_shared_dir_journal () =
  let e = Paper.find "ex7" in
  let g = Paper.graph e in
  let cfg =
    Run.config ~policy:e.Paper.policy
      ~journal:(Run.journal_dir ~program_ref:e.Paper.name "/nonexistent")
      ~jobs:2 ()
  in
  Alcotest.check_raises "parallel batch on one journal dir refused"
    (Invalid_argument "Run.batch: parallel runs cannot share a journal directory")
    (fun () -> ignore (Run.batch cfg g [ ints [ 0; 0 ] ]))

(* --- resume -------------------------------------------------------------- *)

let with_temp_dir f =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "secpol_run_test_%d" (Hashtbl.hash (Sys.time ())))
  in
  let cleanup () =
    if Sys.file_exists dir then begin
      Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
      Sys.rmdir dir
    end
  in
  cleanup ();
  Fun.protect ~finally:cleanup (fun () -> f dir)

let resolve (h : Runner.header) =
  match Paper.find h.Runner.program_ref with
  | e -> Ok (Paper.graph e)
  | exception Not_found -> Error ("unknown program " ^ h.Runner.program_ref)

let test_resume_roundtrip () =
  with_temp_dir (fun dir ->
      let e = Paper.find "ex7" in
      let g = Paper.graph e in
      let p = e.Paper.policy in
      let a = ints [ 3; 0 ] in
      let cfg =
        Run.config ~policy:p
          ~journal:(Run.journal_dir ~program_ref:e.Paper.name dir)
          ()
      in
      let original = Run.run cfg g a in
      let media = Media.dir dir in
      let result = Run.resume (Run.config ()) ~resolve ~media in
      Media.close media;
      match result with
      | Error f -> Alcotest.failf "resume failed: %s" (Runner.failure_message f)
      | Ok res ->
          Alcotest.(check bool) "verdict was already journaled" true
            res.Runner.was_complete;
          check_replies "resumed reply = original reply" a original
            res.Runner.reply;
          check_replies "reply_of_resume unwraps the success" a original
            (Run.reply_of_resume result))

let () =
  Alcotest.run "run-facade"
    [
      ( "layers",
        [
          Alcotest.test_case "monitor parity" `Quick test_monitor_parity;
          Alcotest.test_case "interpreter parity" `Quick test_interp_parity;
          Alcotest.test_case "guard layering parity" `Quick
            test_mode_and_guard_layer;
          Alcotest.test_case "journal transparency" `Quick
            test_journal_transparent;
          Alcotest.test_case "journal needs a policy" `Quick
            test_journal_needs_policy;
        ] );
      ( "batch",
        [
          Alcotest.test_case "input order, jobs-independent" `Quick
            test_batch_order_and_jobs;
          Alcotest.test_case "shared dir journal refused" `Quick
            test_batch_refuses_shared_dir_journal;
        ] );
      ( "resume",
        [ Alcotest.test_case "roundtrip via the facade" `Quick test_resume_roundtrip ]
      );
    ]
