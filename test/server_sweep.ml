(* The issue's server acceptance gate, wired into `dune runtest`:
   corpus × allow(J) policies × ≥1000 seeded server plans mixing client
   disconnects, slowloris frames, malformed/truncated/foreign-version
   frames, overload bursts above queue capacity and kill/restart cycles.
   Zero fail-open: every shed, expired or interrupted request is answered
   with a violation notice in F or recovered bit-identically via journal
   resume — never a foreign grant, never silence. `make serve-chaos`
   drives the same sweep through the CLI. *)

module Chaos = Secpol_server.Chaos

let () =
  let report = Chaos.run ~seeds:30 () in
  let t = report.Chaos.totals in
  Printf.printf "server chaos: %d plans, %d enforce requests\n" t.Chaos.plans
    t.Chaos.requests;
  if t.Chaos.plans < 1000 then begin
    Printf.printf "FAIL plans %d < 1000\n" t.Chaos.plans;
    exit 1
  end;
  let check name v =
    if v = 0 then Printf.printf "ok   %-28s 0\n" name
    else Printf.printf "FAIL %-28s %d\n" name v
  in
  check "fail-open replies" t.Chaos.fail_open;
  check "clean mismatches" t.Chaos.clean_mismatch;
  check "unanswered requests" t.Chaos.unanswered;
  check "refusals missed" t.Chaos.proto_misses;
  (* The sweep must actually have disturbed something in every fault
     class — an inert sweep would pass the gates above while testing
     nothing. *)
  let inert = ref false in
  let nonzero name v =
    if v > 0 then Printf.printf "ok   %-28s %d\n" name v
    else begin
      Printf.printf "FAIL %-28s 0 (sweep is inert)\n" name;
      inert := true
    end
  in
  nonzero "grants" t.Chaos.grants;
  nonzero "monitor denials" t.Chaos.monitor_denials;
  nonzero "overload denials" t.Chaos.overload_denials;
  nonzero "recovery denials" t.Chaos.recovery_denials;
  nonzero "connections refused" t.Chaos.proto_refusals;
  nonzero "client disconnects" t.Chaos.disconnects;
  nonzero "slowloris frames" t.Chaos.slowloris;
  nonzero "malformed frames" t.Chaos.malformed;
  nonzero "kills armed" t.Chaos.kills;
  nonzero "restarts" t.Chaos.restarts;
  nonzero "resume requests" t.Chaos.resumes;
  nonzero "burst requests" t.Chaos.burst_requests;
  List.iter
    (fun (f : Chaos.finding) ->
      Printf.printf "  ! %s / %s / seed %d / %s: %s\n" f.Chaos.entry
        f.Chaos.policy f.Chaos.seed f.Chaos.input f.Chaos.detail)
    report.Chaos.findings;
  if (not report.Chaos.ok) || !inert then exit 1
