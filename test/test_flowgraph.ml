(* The flowchart language: expressions, structured programs, compilation,
   the two interpreters and their agreement, and the graph analyses. *)

open Util
module Var = Secpol_flowgraph.Var
module Expr = Secpol_flowgraph.Expr
module Ast = Secpol_flowgraph.Ast
module Graph = Secpol_flowgraph.Graph
module Compile = Secpol_flowgraph.Compile
module Interp = Secpol_flowgraph.Interp
module Graphalgo = Secpol_flowgraph.Graphalgo
module Generator = Secpol_corpus.Generator
open Expr.Build

let env_of_list l v = List.assoc v l

(* --- Expressions ------------------------------------------------------ *)

let test_eval () =
  let env = env_of_list [ (Var.Input 0, 5); (Var.Reg 0, 3); (Var.Out, 0) ] in
  Alcotest.(check int) "arith" 13 (Expr.eval env ((x 0 *: i 2) +: r 0));
  Alcotest.(check int) "sub/neg" (-2) (Expr.eval env (Expr.Neg (i 5 -: r 0)));
  Alcotest.(check int) "bitwise" 7 (Expr.eval env (Expr.Bor (Expr.Const 5, Expr.Const 3)));
  Alcotest.(check bool) "pred" true (Expr.eval_pred env ((x 0 >: r 0) &&: (r 0 =: i 3)));
  Alcotest.(check int) "cond true" 1 (Expr.eval env (cond (x 0 =: i 5) (i 1) (i 2)));
  Alcotest.(check int) "cond false" 2 (Expr.eval env (cond (x 0 =: i 4) (i 1) (i 2)))

let test_eval_faults () =
  let env _ = 0 in
  Alcotest.check_raises "div by zero" (Expr.Runtime_fault Expr.Division_by_zero)
    (fun () -> ignore (Expr.eval env (i 1 /: i 0)));
  Alcotest.check_raises "mod by zero" (Expr.Runtime_fault Expr.Modulus_by_zero)
    (fun () -> ignore (Expr.eval env (i 1 %: i 0)))

let var_set_testable =
  Alcotest.testable
    (fun ppf s ->
      Format.fprintf ppf "{%s}"
        (String.concat "," (List.map Var.to_string (Var.Set.elements s))))
    Var.Set.equal

let test_vars () =
  Alcotest.check var_set_testable "expr vars"
    (Var.Set.of_list [ Var.Input 0; Var.Reg 1; Var.Out ])
    (Expr.vars ((x 0 +: r 1) *: y));
  (* Cond counts the predicate and both arms. *)
  Alcotest.check var_set_testable "cond vars"
    (Var.Set.of_list [ Var.Input 0; Var.Input 1; Var.Reg 0 ])
    (Expr.vars (cond (x 0 =: i 0) (x 1) (r 0)))

let test_subst () =
  let sigma = Var.Map.singleton (Var.Reg 0) (x 1 +: i 1) in
  let e = Expr.subst sigma (r 0 *: r 0) in
  let env = env_of_list [ (Var.Input 1, 2) ] in
  Alcotest.(check int) "substituted" 9 (Expr.eval env e)

let test_simplify () =
  Alcotest.(check bool) "constant folding" true
    (Expr.equal (Expr.simplify ((i 2 +: i 3) *: i 4)) (i 20));
  Alcotest.(check bool) "x + 0" true (Expr.equal (Expr.simplify (x 0 +: i 0)) (x 0));
  Alcotest.(check bool) "x * 0" true (Expr.equal (Expr.simplify (x 0 *: i 0)) (i 0));
  Alcotest.(check bool) "equal-armed select collapses" true
    (Expr.equal (Expr.simplify (cond (x 0 =: i 1) (i 1) (i 1))) (i 1));
  Alcotest.(check bool) "decided select collapses" true
    (Expr.equal (Expr.simplify (cond (i 1 =: i 1) (x 0) (x 1))) (x 0));
  Alcotest.(check bool) "pred folding" true
    (Expr.equal_pred (Expr.simplify_pred ((i 1 <: i 2) &&: (x 0 =: x 0))) (x 0 =: x 0))

let prop_simplify_preserves_eval =
  qtest ~count:150 "simplify preserves evaluation"
    (QCheck.make QCheck.Gen.(pair (int_range 0 3) (int_range 0 3)))
    (fun (v0, v1) ->
      let env = env_of_list [ (Var.Input 0, v0); (Var.Input 1, v1); (Var.Reg 0, 1) ] in
      let exprs =
        [
          (x 0 +: x 1) *: (i 2 -: i 2);
          cond (x 0 =: x 1) (x 0 *: i 1) (x 1 +: i 0);
          cond (i 3 >: i 2) (x 0) (x 1);
          Expr.Bor (x 0, i 0) +: Expr.Band (x 1, i 3);
        ]
      in
      List.for_all
        (fun e -> Expr.eval env e = Expr.eval env (Expr.simplify e))
        exprs)

(* --- Ast -------------------------------------------------------------- *)

let test_ast_validate () =
  (match
     Ast.validate { Ast.name = "bad"; arity = 1; body = Ast.Assign (Var.Out, x 3) }
   with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "out-of-range input accepted");
  match Ast.prog ~name:"bad" ~arity:1 (Ast.Assign (Var.Out, x 3)) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "prog should raise on invalid input index"

let test_ast_seq_smart () =
  let s = Ast.seq [ Ast.Skip; Ast.Seq [ Ast.Skip; Ast.Assign (Var.Out, i 1) ]; Ast.Skip ] in
  Alcotest.(check bool) "flattens to single" true (s = Ast.Assign (Var.Out, i 1));
  Alcotest.(check bool) "empty is skip" true (Ast.seq [] = Ast.Skip)

let test_ast_meta () =
  let p =
    Ast.prog ~name:"meta" ~arity:2
      (Ast.seq
         [
           Ast.Assign (Var.Reg 2, x 0);
           Ast.While (r 2 >: i 0, Ast.Assign (Var.Reg 2, r 2 -: i 1));
           Ast.Assign (Var.Out, x 1);
         ])
  in
  Alcotest.(check int) "max_reg" 2 (Ast.max_reg p);
  Alcotest.(check bool) "not loop free" false (Ast.loop_free p.Ast.body);
  Alcotest.(check bool) "reads x0 and x1" true
    (Var.Set.mem (Var.Input 0) (Ast.read_vars p.Ast.body)
    && Var.Set.mem (Var.Input 1) (Ast.read_vars p.Ast.body));
  Alcotest.(check bool) "assigns out" true
    (Var.Set.mem Var.Out (Ast.assigned_vars p.Ast.body))

(* --- Interpreters and compilation ------------------------------------- *)

let run_ast p inputs = Interp.run_ast p (ints inputs)
let run_graph p inputs = Interp.run_graph (Compile.compile p) (ints inputs)

let check_value msg o expected =
  match o.Program.result with
  | Program.Value v -> Alcotest.check value_testable msg (Value.int expected) v
  | Program.Diverged -> Alcotest.failf "%s: diverged" msg
  | Program.Fault m -> Alcotest.failf "%s: fault %s" msg m

let euclid =
  (* gcd (x0+1) (x1+1) by repeated subtraction. *)
  Ast.prog ~name:"euclid" ~arity:2
    (Ast.seq
       [
         Ast.Assign (Var.Reg 0, x 0 +: i 1);
         Ast.Assign (Var.Reg 1, x 1 +: i 1);
         Ast.While
           ( r 0 <>: r 1,
             Ast.If
               ( r 0 >: r 1,
                 Ast.Assign (Var.Reg 0, r 0 -: r 1),
                 Ast.Assign (Var.Reg 1, r 1 -: r 0) ) );
         Ast.Assign (Var.Out, r 0);
       ])

let test_interp_programs () =
  check_value "gcd(4,6)=2" (run_ast euclid [ 3; 5 ]) 2;
  check_value "gcd(1,1)=1" (run_ast euclid [ 0; 0 ]) 1;
  check_value "gcd(8,4)=4" (run_ast euclid [ 7; 3 ]) 4

let test_interp_divergence () =
  let spin = Ast.prog ~name:"spin" ~arity:1 (Ast.While (Expr.True, Ast.Skip)) in
  (match (Interp.run_ast ~fuel:50 spin (ints [ 0 ])).Program.result with
  | Program.Diverged -> ()
  | _ -> Alcotest.fail "expected divergence (ast)");
  match
    (Interp.run_graph ~fuel:50 (Compile.compile spin) (ints [ 0 ])).Program.result
  with
  | Program.Diverged -> ()
  | _ -> Alcotest.fail "expected divergence (graph)"

let test_interp_fault () =
  let bad = Ast.prog ~name:"bad" ~arity:1 (Ast.Assign (Var.Out, i 1 /: x 0)) in
  (match (run_ast bad [ 0 ]).Program.result with
  | Program.Fault _ -> ()
  | _ -> Alcotest.fail "expected fault");
  check_value "ok when nonzero" (run_ast bad [ 2 ]) 0

let test_step_counting () =
  let p1 = Ast.prog ~name:"one" ~arity:1 (Ast.Assign (Var.Out, i 1)) in
  Alcotest.(check int) "single assignment" 1 (run_ast p1 [ 0 ]).Program.steps;
  let p2 =
    Ast.prog ~name:"branch" ~arity:1
      (Ast.If (x 0 =: i 0, Ast.Assign (Var.Out, i 1), Ast.Skip))
  in
  Alcotest.(check int) "test+assign" 2 (run_ast p2 [ 0 ]).Program.steps;
  Alcotest.(check int) "test only" 1 (run_ast p2 [ 1 ]).Program.steps;
  Alcotest.(check int) "graph test+assign" 2 (run_graph p2 [ 0 ]).Program.steps;
  Alcotest.(check int) "graph test only" 1 (run_graph p2 [ 1 ]).Program.steps

let outcome_agrees (o1 : Program.outcome) (o2 : Program.outcome) =
  match (o1.Program.result, o2.Program.result) with
  | Program.Value v1, Program.Value v2 ->
      Value.equal v1 v2 && o1.Program.steps = o2.Program.steps
  | Program.Diverged, Program.Diverged -> true
  | Program.Fault _, Program.Fault _ -> true
  | _ -> false

let prop_compile_preserves_semantics =
  let params = Generator.default in
  qtest ~count:300 "AST and compiled flowchart agree on (value, steps)"
    (Generator.arbitrary params)
    (fun prog ->
      let g = Compile.compile prog in
      Seq.for_all
        (fun a -> outcome_agrees (Interp.run_ast prog a) (Interp.run_graph g a))
        (Space.enumerate (Generator.space_for params)))

let prop_generated_programs_terminate =
  let params = Generator.default in
  qtest ~count:300 "generated programs terminate well within fuel"
    (Generator.arbitrary params)
    (fun prog ->
      Seq.for_all
        (fun a ->
          match (Interp.run_ast ~fuel:20_000 prog a).Program.result with
          | Program.Value _ -> true
          | Program.Diverged | Program.Fault _ -> false)
        (Space.enumerate (Generator.space_for params)))

let test_negative_domains () =
  (* Flowchart variables are integers, not naturals: the language must be
     total on negative inputs too. *)
  let p =
    Ast.prog ~name:"abs" ~arity:1
      (Ast.If
         ( x 0 <: i 0,
           Ast.Assign (Var.Out, i 0 -: x 0),
           Ast.Assign (Var.Out, x 0) ))
  in
  let space = Space.ints ~lo:(-3) ~hi:3 ~arity:1 in
  Seq.iter
    (fun a ->
      match (Interp.run_ast p a).Program.result with
      | Program.Value (Value.Int n) ->
          Alcotest.(check int) "absolute value" (abs (Value.to_int a.(0))) n
      | _ -> Alcotest.fail "expected a value")
    (Space.enumerate space)

let test_eval_cost_models () =
  let env = env_of_list [ (Var.Input 0, 12) ] in
  let e = x 0 *: x 0 in
  let v_u, c_u = Expr.eval_cost Expr.Uniform env e in
  Alcotest.(check int) "uniform value" 144 v_u;
  Alcotest.(check int) "uniform extra cost" 0 c_u;
  let v_s, c_s = Expr.eval_cost Expr.Operand_sized env e in
  Alcotest.(check int) "sized value agrees" 144 v_s;
  Alcotest.(check bool) "sized cost positive" true (c_s > 0);
  (* Additions stay free in both models. *)
  let _, c_add = Expr.eval_cost Expr.Operand_sized env (x 0 +: x 0) in
  Alcotest.(check int) "addition free" 0 c_add

let test_cost_scales_with_operands () =
  let cost n =
    let env = env_of_list [ (Var.Input 0, n) ] in
    snd (Expr.eval_cost Expr.Operand_sized env (x 0 *: x 0))
  in
  Alcotest.(check bool) "wider operands cost more" true (cost 1000 > cost 1)

(* --- Graph validation and analyses ------------------------------------ *)

let test_graph_validation () =
  (match
     Graph.validate
       {
         Graph.name = "g";
         arity = 0;
         entry = 0;
         nodes = [| Graph.Halt |];
         spans = [| None |];
       }
   with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "entry must be a start box");
  match
    Graph.validate
      {
        Graph.name = "g";
        arity = 0;
        entry = 0;
        nodes = [| Graph.Start 1; Graph.Assign (Var.Out, i 1, 0) |];
        spans = [| None; None |];
      }
  with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "edges back into the start box must be rejected"

let diamond =
  Graph.make ~name:"diamond" ~arity:1 ~entry:0
    [|
      Graph.Start 1;
      Graph.Decision (x 0 =: i 0, 2, 3);
      Graph.Assign (Var.Reg 0, i 1, 4);
      Graph.Assign (Var.Reg 0, i 2, 4);
      Graph.Assign (Var.Out, r 0, 5);
      Graph.Halt;
    |]

let test_postdominators () =
  let ipd = Graphalgo.immediate_postdominator diamond in
  Alcotest.(check int) "join postdominates the decision" 4 ipd.(1);
  Alcotest.(check int) "assign's ipd is the join" 4 ipd.(2);
  Alcotest.(check int) "join's ipd is halt" 5 ipd.(4);
  Alcotest.(check int) "halt has none" (-1) ipd.(5)

let test_postdominators_loop () =
  let looping =
    Graph.make ~name:"loop" ~arity:1 ~entry:0
      [|
        Graph.Start 1;
        Graph.Decision (x 0 =: i 0, 2, 3);
        Graph.Assign (Var.Reg 0, r 0 +: i 1, 1);
        Graph.Halt;
      |]
  in
  let ipd = Graphalgo.immediate_postdominator looping in
  Alcotest.(check int) "loop decision exits to halt" 3 ipd.(1)

let test_postdominators_at_scale () =
  (* A 400-box assignment chain with a decision every 10 boxes: the
     analyses must stay correct (and affordable) well beyond toy sizes. *)
  let n = 400 in
  let nodes =
    Array.init (n + 2) (fun k ->
        if k = n then Graph.Halt
        else if k = n + 1 then Graph.Start 0
        else if k mod 10 = 0 then Graph.Decision (x 0 =: i 0, k + 1, k + 1)
        else Graph.Assign (Var.Reg 0, r 0 +: i 1, k + 1))
  in
  let g = Graph.make ~name:"long-chain" ~arity:1 ~entry:(n + 1) nodes in
  let ipd = Graphalgo.immediate_postdominator g in
  (* On a chain every node's immediate postdominator is its successor. *)
  for k = 0 to n - 1 do
    Alcotest.(check int) (Printf.sprintf "ipd of %d" k) (k + 1) ipd.(k)
  done;
  Alcotest.(check int) "halt has none" (-1) ipd.(n)

let test_map_nodes () =
  (* Rewrite every constant 1 to 2 in the diamond; semantics shifts
     accordingly, structure is preserved. *)
  let bumped =
    Graph.map_nodes
      (fun _ node ->
        match node with
        | Graph.Assign (v, Expr.Const 1, s) -> Graph.Assign (v, Expr.Const 2, s)
        | n -> n)
      diamond
  in
  (match (Interp.run_graph bumped (ints [ 0 ])).Program.result with
  | Program.Value v -> Alcotest.check value_testable "then-branch now 2" (Value.int 2) v
  | _ -> Alcotest.fail "expected a value");
  match
    Graph.map_nodes (fun i node -> if i = 0 then Graph.Halt else node) diamond
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "map_nodes must revalidate (entry must stay a start box)"

let test_space_sampling () =
  let space = Space.ints ~lo:0 ~hi:2 ~arity:2 in
  let rng = Random.State.make [| 9 |] in
  Seq.iter
    (fun a -> Alcotest.(check bool) "sample in space" true (Space.mem space a))
    (Space.sample_seq rng space 50);
  Alcotest.(check int) "requested count" 50 (Seq.length (Space.sample_seq rng space 50))

let test_ast_size () =
  Alcotest.(check int) "euclid size" 8 (Ast.size euclid.Ast.body);
  Alcotest.(check int) "skip size" 1 (Ast.size Ast.Skip)

let test_no_halt_reachable () =
  let hopeless =
    Graph.make ~name:"hopeless" ~arity:0 ~entry:0
      [|
        Graph.Start 1;
        Graph.Assign (Var.Reg 0, i 1, 2);
        Graph.Assign (Var.Reg 0, i 0, 1);
        Graph.Halt (* unreachable *);
      |]
  in
  let reach = Graphalgo.can_reach_halt hopeless in
  Alcotest.(check bool) "spinner cannot reach halt" false reach.(1);
  let ipd = Graphalgo.immediate_postdominator hopeless in
  Alcotest.(check int) "no ipd inside the black hole" (-1) ipd.(1)

let () =
  Alcotest.run "secpol-flowgraph"
    [
      ( "expr",
        [
          Alcotest.test_case "eval" `Quick test_eval;
          Alcotest.test_case "faults" `Quick test_eval_faults;
          Alcotest.test_case "vars" `Quick test_vars;
          Alcotest.test_case "subst" `Quick test_subst;
          Alcotest.test_case "simplify" `Quick test_simplify;
          prop_simplify_preserves_eval;
        ] );
      ( "ast",
        [
          Alcotest.test_case "validate" `Quick test_ast_validate;
          Alcotest.test_case "seq-smart" `Quick test_ast_seq_smart;
          Alcotest.test_case "meta" `Quick test_ast_meta;
        ] );
      ( "interp",
        [
          Alcotest.test_case "programs" `Quick test_interp_programs;
          Alcotest.test_case "divergence" `Quick test_interp_divergence;
          Alcotest.test_case "fault" `Quick test_interp_fault;
          Alcotest.test_case "step-counting" `Quick test_step_counting;
          prop_compile_preserves_semantics;
          prop_generated_programs_terminate;
          Alcotest.test_case "negative-domains" `Quick test_negative_domains;
          Alcotest.test_case "cost-models" `Quick test_eval_cost_models;
          Alcotest.test_case "cost-scales" `Quick test_cost_scales_with_operands;
        ] );
      ( "graph",
        [
          Alcotest.test_case "validation" `Quick test_graph_validation;
          Alcotest.test_case "postdominators" `Quick test_postdominators;
          Alcotest.test_case "postdominators-loop" `Quick test_postdominators_loop;
          Alcotest.test_case "postdominators-scale" `Quick test_postdominators_at_scale;
          Alcotest.test_case "map-nodes" `Quick test_map_nodes;
          Alcotest.test_case "space-sampling" `Quick test_space_sampling;
          Alcotest.test_case "ast-size" `Quick test_ast_size;
          Alcotest.test_case "no-halt-reachable" `Quick test_no_halt_reachable;
        ] );
    ]
