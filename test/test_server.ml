(* The enforcement service: the wire protocol is a total codec over a
   CRC-framed stream; the admission queue is bounded, deterministic and
   never silent; the engine answers every request with the clean
   monitor's verdict or a notice in F — under overload, deadlines,
   drain, circuit-breaking, kills and restarts; and the real daemon
   (forked, on a real socket) serves, resumes and drains cleanly. *)

open Util
module Wire = Secpol_server.Wire
module Engine = Secpol_server.Engine
module Store = Secpol_server.Store
module Admission = Secpol_server.Admission
module Daemon = Secpol_server.Daemon
module Client = Secpol_server.Client
module Loadgen = Secpol_server.Loadgen
module Chaos = Secpol_server.Chaos
module Dynamic = Secpol_taint.Dynamic
module Paper = Secpol_corpus.Paper_programs
module Guard = Secpol_fault.Guard
module FReport = Secpol_fault.Report
module Hook = Secpol_flowgraph.Hook
module Frame = Secpol_journal.Frame
module Metrics = Secpol_trace.Metrics
module Expo = Secpol_trace.Expo
module Http = Secpol_server.Http
module Top = Secpol_server.Top
module Json = Secpol_staticflow.Lint.Json

let overload = Wire.overload_notice
let recovery = Guard.recovery_notice

let contains s sub =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

let flip_byte s i =
  let b = Bytes.of_string s in
  Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0xff));
  Bytes.to_string b

(* --- wire ----------------------------------------------------------------- *)

let spec_gen =
  QCheck.Gen.(
    let* session = string_size ~gen:(char_range 'a' 'z') (int_range 1 8) in
    let* arity = int_range 0 3 in
    let* mask = int_range 0 15 in
    let* fuel = int_range 1 100_000 in
    let* retries = int_range 0 5 in
    let* journaled = bool in
    let* mode = oneofl Dynamic.[ High_water; Surveillance; Scoped; Timed ] in
    return
      {
        Wire.session;
        allowed =
          Iset.of_list
            (List.filter
               (fun i -> (mask lsr i) land 1 = 1)
               (List.init arity Fun.id));
        mode;
        fuel;
        guard_retries = retries;
        journaled;
      })

let request_gen =
  QCheck.Gen.(
    let* tag = int_range 0 5 in
    match tag with
    | 0 ->
        let* c = string_size (int_range 0 12) in
        return (Wire.Hello { client = c })
    | 1 ->
        let* spec = spec_gen in
        return (Wire.Open_session spec)
    | 2 ->
        let* session = string_size ~gen:(char_range 'a' 'z') (int_range 1 8) in
        let* request_id = int_range 0 10_000 in
        let* program = oneofl [ "ex7"; "ex8"; "forgetting" ] in
        let* n = int_range 0 3 in
        let* xs = list_size (return n) (int_range (-9) 9) in
        let* deadline_us = oneofl [ -1; 0; 1; 1_000; 5_000_000 ] in
        return
          (Wire.Enforce
             {
               Wire.session;
               request_id;
               program;
               inputs = Array.of_list (List.map Value.int xs);
               deadline_us;
             })
    | 3 ->
        let* session = string_size ~gen:(char_range 'a' 'z') (int_range 1 8) in
        let* request_id = int_range 0 10_000 in
        return (Wire.Resume { session; request_id })
    | 4 -> return Wire.Stats
    | _ -> return Wire.Drain)

(* One frame, fed to the stream in random-sized chunks, decodes back to
   the request that produced it. *)
let prop_wire_round_trip =
  qtest ~count:500 "request-round-trip"
    (QCheck.make QCheck.Gen.(pair request_gen (int_range 1 64)))
    (fun (req, chunk) ->
      let bytes = Wire.encode_request req in
      let st = Wire.Stream.create () in
      let n = String.length bytes in
      let i = ref 0 in
      while !i < n do
        let len = min chunk (n - !i) in
        Wire.Stream.feed st ~now:0. (String.sub bytes !i len);
        i := !i + len
      done;
      match Wire.Stream.next st with
      | `Frame payload -> (
          match Wire.decode_request payload with
          | Ok req' ->
              req' = req
              || QCheck.Test.fail_reportf "decoded %s from %s"
                   (Wire.request_name req') (Wire.request_name req)
          | Error e ->
              QCheck.Test.fail_reportf "decode failed: %s"
                (Wire.Codec.error_message e))
      | `Await -> QCheck.Test.fail_report "frame incomplete after full feed"
      | `Corrupt e ->
          QCheck.Test.fail_reportf "corrupt: %s" (Wire.Codec.error_message e))

let test_response_round_trip () =
  let reply response = { Mechanism.response; steps = 17 } in
  List.iter
    (fun r ->
      let bytes = Wire.encode_response r in
      let st = Wire.Stream.create () in
      Wire.Stream.feed st ~now:0. bytes;
      match Wire.Stream.next st with
      | `Frame payload ->
          Alcotest.(check bool)
            (Wire.response_name r ^ " round-trips")
            true
            (Wire.decode_response payload = Ok r)
      | _ -> Alcotest.failf "%s: no frame" (Wire.response_name r))
    [
      Wire.Welcome { server = "s" };
      Wire.Session_opened { session = "load" };
      Wire.Reply
        {
          session = "load";
          request_id = 3;
          reply = reply (Mechanism.Granted (Value.int 7));
        };
      Wire.Reply
        {
          session = "load";
          request_id = 4;
          reply = reply (Mechanism.Denied overload);
        };
      Wire.Stats_reply { body = "{}" };
      Wire.Draining { outstanding = 2 };
      Wire.Refused { code = "proto"; detail = "bad frame" };
    ]

(* Damaged frames never decode into a message: bad magic and bad CRC are
   [`Corrupt]; truncation stays [`Await] (the stream keeps waiting — the
   slowloris deadline, not the codec, kills the connection); a foreign
   wire version re-framed with a valid CRC decodes to a typed error. *)
let test_wire_damage_rejected () =
  let bytes = Wire.encode_request (Wire.Hello { client = "damage" }) in
  let feed s =
    let st = Wire.Stream.create () in
    Wire.Stream.feed st ~now:0. s;
    Wire.Stream.next st
  in
  (match feed (flip_byte bytes 0) with
  | `Corrupt _ -> ()
  | _ -> Alcotest.fail "bad magic accepted");
  (match feed (flip_byte bytes (String.length bytes - 1)) with
  | `Corrupt _ -> ()
  | _ -> Alcotest.fail "bad CRC accepted");
  (match feed (String.sub bytes 0 (String.length bytes - 2)) with
  | `Await -> ()
  | _ -> Alcotest.fail "truncated frame not awaited");
  (let payload =
     String.sub bytes Frame.header_size
       (String.length bytes - Frame.header_size)
   in
   let foreign = Frame.frame (flip_byte payload 0) in
   match feed foreign with
   | `Frame p -> (
       match Wire.decode_request p with
       | Error _ -> ()
       | Ok _ -> Alcotest.fail "foreign version decoded")
   | _ -> Alcotest.fail "foreign-version frame did not parse as a frame");
  match feed "no frame starts like this" with
  | `Corrupt _ -> ()
  | _ -> Alcotest.fail "garbage accepted"

(* --- admission ------------------------------------------------------------ *)

(* Conservation, no silence: every offer is answered exactly once —
   shed (at offer time, or displaced later, or refused in drain) or
   popped — the queue never exceeds capacity, and expired offers are
   shed as Expired. An entry may legitimately be admitted first and
   displaced by a later offer; it must then not also be popped. *)
let prop_admission_conserves =
  qtest ~count:300 "admission-conserves-every-request"
    QCheck.(triple (int_range 1 8) (int_range 1 40) (int_range 0 1_000_000))
    (fun (capacity, offers, seed) ->
      (* QCheck's int shrinker can leave the generated range *)
      let capacity = max 1 capacity and offers = max 1 offers in
      let q = Admission.create ~seed ~capacity () in
      (* request_id -> `Admitted (still queued) | `Answered (shed/popped) *)
      let state = Hashtbl.create 16 in
      for id = 0 to offers - 1 do
        let deadline = float_of_int ((seed + (id * 7)) mod 5) -. 1. in
        let decisions =
          Admission.offer q ~now:0.5 ~conn:0 ~session:"s" ~request_id:id
            ~deadline ()
        in
        List.iter
          (function
            | `Admitted (e : unit Admission.entry) ->
                if Hashtbl.mem state e.Admission.request_id then
                  QCheck.Test.fail_reportf "request %d admitted twice"
                    e.Admission.request_id;
                Hashtbl.add state e.Admission.request_id `Admitted
            | `Shed (e, reason) -> (
                (match Hashtbl.find_opt state e.Admission.request_id with
                | None -> Hashtbl.add state e.Admission.request_id `Answered
                | Some `Admitted ->
                    (* displaced from the queue by the newcomer *)
                    Hashtbl.replace state e.Admission.request_id `Answered
                | Some `Answered ->
                    QCheck.Test.fail_reportf "request %d answered twice"
                      e.Admission.request_id);
                if e.Admission.request_id = id && deadline <= 0.5 then
                  match reason with
                  | Admission.Expired -> ()
                  | r ->
                      QCheck.Test.fail_reportf "expired offer shed as %s"
                        (Admission.reason_name r)))
          decisions;
        if Admission.length q > capacity then
          QCheck.Test.fail_reportf "queue over capacity: %d > %d"
            (Admission.length q) capacity;
        if not (Hashtbl.mem state id) then
          QCheck.Test.fail_reportf "offer %d got no decision" id
      done;
      Admission.drain q;
      (match
         Admission.offer q ~now:0.5 ~conn:0 ~session:"s" ~request_id:offers
           ~deadline:99. ()
       with
      | [ `Shed (_, Admission.Draining) ] -> ()
      | _ -> QCheck.Test.fail_report "drained queue did not refuse the offer");
      let continue = ref true in
      while !continue do
        match Admission.pop q ~now:0.6 with
        | `Empty -> continue := false
        | `Run e | `Expired e -> (
            match Hashtbl.find_opt state e.Admission.request_id with
            | Some `Admitted ->
                Hashtbl.replace state e.Admission.request_id `Answered
            | Some `Answered ->
                QCheck.Test.fail_reportf "request %d popped after answering"
                  e.Admission.request_id
            | None ->
                QCheck.Test.fail_reportf "popped unoffered request %d"
                  e.Admission.request_id)
      done;
      (* drain never drops an admitted request: everything is Answered *)
      for id = 0 to offers - 1 do
        match Hashtbl.find_opt state id with
        | Some `Answered -> ()
        | Some `Admitted ->
            QCheck.Test.fail_reportf "request %d admitted but never popped" id
        | None -> QCheck.Test.fail_reportf "request %d vanished" id
      done;
      true)

(* Deterministic shedding: the same seed and offer sequence replays the
   same decision trace bit-for-bit. *)
let prop_admission_deterministic =
  qtest ~count:300 "admission-deterministic-given-seed"
    QCheck.(
      quad (int_range 1 6) (int_range 1 30) (int_range 0 1_000_000)
        (int_range 0 1_000_000))
    (fun (capacity, offers, seed, dseed) ->
      let capacity = max 1 capacity and offers = max 1 offers in
      let trace () =
        let q = Admission.create ~seed ~capacity () in
        let log = Buffer.create 64 in
        for id = 0 to offers - 1 do
          let deadline = float_of_int ((dseed + (id * 13)) mod 7) in
          List.iter
            (function
              | `Admitted (e : unit Admission.entry) ->
                  Buffer.add_string log
                    (Printf.sprintf "A%d;" e.Admission.request_id)
              | `Shed (e, reason) ->
                  Buffer.add_string log
                    (Printf.sprintf "S%d/%s;" e.Admission.request_id
                       (Admission.reason_name reason)))
            (Admission.offer q ~now:1. ~conn:0 ~session:"s" ~request_id:id
               ~deadline ())
        done;
        Buffer.contents log
      in
      trace () = trace ()
      || QCheck.Test.fail_report "same seed, different decisions")

(* --- engine --------------------------------------------------------------- *)

let session_name = "t"

(* Drive an in-process engine through the wire: open a session, send
   requests, pump replies with a virtual clock. *)
type driver = {
  engine : Engine.t;
  conn : int;
  stream : Wire.Stream.t;
  now : float ref;
  replies : (int, Mechanism.reply) Hashtbl.t;
  refusals : (string * string) list ref;
}

let pump d =
  Wire.Stream.feed d.stream ~now:0. (Engine.output d.engine ~conn:d.conn);
  let continue = ref true in
  while !continue do
    match Wire.Stream.next d.stream with
    | `Frame p -> (
        match Wire.decode_response p with
        | Ok (Wire.Reply { request_id; reply; _ }) ->
            Hashtbl.replace d.replies request_id reply
        | Ok (Wire.Refused { code; detail }) ->
            d.refusals := (code, detail) :: !(d.refusals)
        | Ok _ -> ()
        | Error e -> Alcotest.failf "driver: %s" (Wire.Codec.error_message e))
    | `Await | `Corrupt _ -> continue := false
  done

let step d =
  d.now := !(d.now) +. 0.001;
  Engine.step d.engine ~now:!(d.now);
  pump d

let settle ?(rounds = 60) d =
  for _ = 1 to rounds do
    step d
  done

let send d req =
  Engine.feed d.engine ~conn:d.conn ~now:!(d.now) (Wire.encode_request req)

let enforce d ?(deadline_us = -1) ~id entry a =
  send d
    (Wire.Enforce
       {
         Wire.session = session_name;
         request_id = id;
         program = entry.Paper.name;
         inputs = a;
         deadline_us;
       })

let driver ?(config = Engine.default_config) ?(journaled = false)
    ?(guard_retries = Guard.default.Guard.retries) ?store ~policy () =
  let store = match store with Some s -> s | None -> Store.memory () in
  let now = ref 1000. in
  let engine = Engine.create ~config ~store ~now:!now () in
  let conn = Engine.open_conn engine ~now:!now in
  let d =
    {
      engine;
      conn;
      stream = Wire.Stream.create ();
      now;
      replies = Hashtbl.create 16;
      refusals = ref [];
    }
  in
  let allowed =
    match Policy.allowed_indices policy with
    | Some s -> s
    | None -> Alcotest.fail "driver needs an allow policy"
  in
  send d
    (Wire.Open_session
       {
         Wire.session = session_name;
         allowed;
         mode = Dynamic.Surveillance;
         fuel = 4096;
         guard_retries;
         journaled;
       });
  step d;
  d

let clean_reply entry ~policy a =
  let m =
    Dynamic.mechanism
      (Dynamic.config ~fuel:4096 ~mode:Dynamic.Surveillance
         (Policy.allow_set (Option.get (Policy.allowed_indices policy))))
      (Paper.graph entry)
  in
  Mechanism.respond m a

let reply_of d id =
  match Hashtbl.find_opt d.replies id with
  | Some r -> r
  | None -> Alcotest.failf "request %d unanswered" id

let denial_of d id =
  match (reply_of d id).Mechanism.response with
  | Mechanism.Denied n -> n
  | r ->
      Alcotest.failf "request %d: expected a denial, got %s" id
        (FReport.show_response r)

(* Clean parity: through the whole service stack, every verdict is
   bit-identical to the clean monitor's. *)
let test_engine_clean_parity () =
  List.iter
    (fun name ->
      let entry = Paper.find name in
      let policy = Policy.allow [ 0 ] in
      let d = driver ~policy () in
      let inputs =
        Array.of_list (List.of_seq (Space.enumerate entry.Paper.space))
      in
      Array.iteri (fun id a -> enforce d ~id entry a) inputs;
      settle d;
      Array.iteri
        (fun id a ->
          let got = reply_of d id in
          let want = clean_reply entry ~policy a in
          if got <> want then
            Alcotest.failf "%s input %d: %s, clean %s" name id
              (FReport.show_reply got) (FReport.show_reply want))
        inputs)
    [ "ex7"; "forgetting"; "constant-branch" ]

(* A deadline of zero is already expired: always Λ/overload, never served,
   whatever the queue looks like. *)
let test_deadline_zero_always_shed () =
  let entry = Paper.find "ex7" in
  let d = driver ~policy:(Policy.allow [ 0 ]) () in
  for id = 0 to 9 do
    enforce d ~deadline_us:0 ~id entry (ints [ 1; 1 ])
  done;
  settle d;
  for id = 0 to 9 do
    Alcotest.(check string)
      (Printf.sprintf "request %d shed" id)
      overload (denial_of d id)
  done

(* A burst over capacity: every request answered, the clean verdict or
   Λ/overload — and the queue bound means some really were shed. *)
let test_overload_burst_all_answered () =
  let entry = Paper.find "ex7" in
  let policy = Policy.allow [ 0 ] in
  let config = { Engine.default_config with Engine.capacity = 4 } in
  let d = driver ~config ~policy () in
  let a = ints [ 2; 1 ] in
  let want = clean_reply entry ~policy a in
  let n = 16 in
  for id = 0 to n - 1 do
    enforce d ~id entry a
  done;
  settle d;
  let sheds = ref 0 in
  for id = 0 to n - 1 do
    let got = reply_of d id in
    if got = want then ()
    else if got.Mechanism.response = Mechanism.Denied overload then
      Stdlib.incr sheds
    else Alcotest.failf "request %d: %s" id (FReport.show_reply got)
  done;
  if !sheds = 0 then Alcotest.fail "burst over capacity shed nothing"

(* Drain answers the queue and refuses newcomers with Λ/overload; the
   engine reports drained only once the queue is empty. *)
let test_drain_answers_everything () =
  let entry = Paper.find "ex7" in
  let policy = Policy.allow [ 0 ] in
  let config =
    { Engine.default_config with Engine.capacity = 8; exec_budget = 1 }
  in
  let d = driver ~config ~policy () in
  let a = ints [ 3; 1 ] in
  for id = 0 to 3 do
    enforce d ~id entry a
  done;
  d.now := !(d.now) +. 0.001;
  Engine.step d.engine ~now:!(d.now);
  pump d;
  Engine.drain d.engine ~now:!(d.now);
  enforce d ~id:9 entry a;
  settle d;
  Alcotest.(check bool) "drained" true (Engine.drained d.engine);
  let want = clean_reply entry ~policy a in
  for id = 0 to 3 do
    let got = reply_of d id in
    if got <> want && got.Mechanism.response <> Mechanism.Denied overload then
      Alcotest.failf "admitted request %d: %s" id (FReport.show_reply got)
  done;
  Alcotest.(check string) "post-drain request refused" overload (denial_of d 9)

(* Kill and restart on the same store: a journaled run resumes
   bit-identically, an unjournaled one degrades to Λ/recovery — never a
   grant out of thin air, never silence. *)
let test_kill_restart_resume () =
  List.iter
    (fun journaled ->
      let entry = Paper.find "ex7" in
      let policy = Policy.allow [ 0 ] in
      let store = Store.memory () in
      let a = ints [ 2; 1 ] in
      let d = driver ~journaled ~store ~policy () in
      Engine.kill_next d.engine ~at_box:2;
      enforce d ~id:5 entry a;
      (match
         try
           settle d;
           `Survived
         with Engine.Died -> `Died
       with
      | `Died -> ()
      | `Survived -> Alcotest.fail "armed kill never struck");
      (* restart: fresh engine, same store *)
      let d2 = driver ~journaled ~store ~policy () in
      send d2 (Wire.Resume { session = session_name; request_id = 5 });
      settle d2;
      let got = reply_of d2 5 in
      if journaled then begin
        let want = clean_reply entry ~policy a in
        if got <> want then
          Alcotest.failf "journaled resume diverged: %s, clean %s"
            (FReport.show_reply got) (FReport.show_reply want)
      end
      else
        Alcotest.(check string) "unjournaled resume degrades" recovery
          (denial_of d2 5))
    [ true; false ]

(* The per-session circuit breaker: consecutive degraded outcomes trip
   it, tripped means Λ/overload (shed before execution), and the cooldown
   closes it again. *)
let test_breaker_trips_and_recovers () =
  let entry = Paper.find "ex7" in
  let policy = Policy.allow [ 0 ] in
  let config =
    {
      Engine.default_config with
      Engine.breaker_threshold = 2;
      breaker_cooldown = 0.5;
      hook = (fun ~step:_ -> Some (Hook.Crash "injected"));
    }
  in
  let d = driver ~config ~guard_retries:1 ~policy () in
  let a = ints [ 1; 1 ] in
  (* consecutive degraded outcomes trip the breaker... *)
  for id = 0 to 1 do
    enforce d ~id entry a;
    settle ~rounds:5 d
  done;
  Alcotest.(check string) "degraded" Guard.degraded_notice (denial_of d 0);
  Alcotest.(check string) "degraded" Guard.degraded_notice (denial_of d 1);
  (* ... so the next request is shed without running *)
  enforce d ~id:2 entry a;
  settle ~rounds:5 d;
  Alcotest.(check string) "breaker open" overload (denial_of d 2);
  Alcotest.(check bool) "breaker-sheds counted" true
    (Metrics.counter_value (Engine.metrics d.engine) "server/breaker-sheds"
    > 0);
  (* the dashboard reads the open breaker off the gauge *)
  Alcotest.(check int) "breaker gauge raised" 1
    (Metrics.gauge_value (Engine.metrics d.engine)
       ("server/session/" ^ session_name ^ "/breaker-open"));
  let frame = Top.render (Metrics.snapshot (Engine.metrics d.engine)) in
  Alcotest.(check bool) "top shows the breaker OPEN" true
    (contains frame "OPEN");
  (* past the cooldown the breaker closes (the gauge follows) and the
     guard runs — and degrades — again, re-tripping it *)
  d.now := !(d.now) +. 1.0;
  settle ~rounds:1 d;
  Alcotest.(check int) "breaker gauge lowered after cooldown" 0
    (Metrics.gauge_value (Engine.metrics d.engine)
       ("server/session/" ^ session_name ^ "/breaker-open"));
  enforce d ~id:3 entry a;
  settle ~rounds:5 d;
  Alcotest.(check string) "breaker closed after cooldown"
    Guard.degraded_notice (denial_of d 3);
  Alcotest.(check int) "degraded outcome re-trips the breaker" 1
    (Metrics.gauge_value (Engine.metrics d.engine)
       ("server/session/" ^ session_name ^ "/breaker-open"))

(* --- health --------------------------------------------------------------- *)

let test_engine_health () =
  let entry = Paper.find "ex7" in
  let policy = Policy.allow [ 0 ] in
  let config =
    { Engine.default_config with Engine.capacity = 8; exec_budget = 1 }
  in
  let d = driver ~config ~policy () in
  for id = 0 to 3 do
    enforce d ~id entry (ints [ 1; 1 ])
  done;
  step d;
  let h = Engine.health d.engine ~now:!(d.now) in
  Alcotest.(check bool) "serving is ok" true h.Engine.ok;
  Alcotest.(check string) "status ok" "ok" h.Engine.status;
  Alcotest.(check int) "one session" 1 h.Engine.sessions;
  (match Json.parse (Engine.health_json h) with
  | Ok (Json.Obj fields) -> (
      match List.assoc_opt "ok" fields with
      | Some (Json.Bool true) -> ()
      | _ -> Alcotest.fail "health json lost the ok bit")
  | Ok _ | Error _ -> Alcotest.fail "health json unparseable");
  (* with the queue still holding work, drain is reported in progress *)
  Engine.drain d.engine ~now:!(d.now);
  let h = Engine.health d.engine ~now:!(d.now) in
  Alcotest.(check bool) "draining is not ok" false h.Engine.ok;
  Alcotest.(check string) "status draining" "draining" h.Engine.status;
  settle d;
  let h = Engine.health d.engine ~now:!(d.now) in
  Alcotest.(check bool) "drained reported" true h.Engine.drained;
  Alcotest.(check string) "status drained" "drained" h.Engine.status

(* --- session verdict cache ------------------------------------------------- *)

(* Replaying the input space through one session: replies stay
   bit-identical to the clean monitor while the I-projection cache takes
   the repeats, and the hit/miss counters land on the registry (both the
   per-session series /metrics exposes and the aggregate). *)
let test_session_verdict_cache () =
  let entry = Paper.find "ex7" in
  let policy = Policy.allow [ 0 ] in
  let d = driver ~policy () in
  let inputs =
    Array.of_list (List.of_seq (Space.enumerate entry.Paper.space))
  in
  let n = Array.length inputs in
  let rounds = 3 in
  for rep = 0 to rounds - 1 do
    Array.iteri (fun i a -> enforce d ~id:((rep * n) + i) entry a) inputs;
    settle d
  done;
  for rep = 0 to rounds - 1 do
    Array.iteri
      (fun i a ->
        let got = reply_of d ((rep * n) + i) in
        let want = clean_reply entry ~policy a in
        if got <> want then
          Alcotest.failf "round %d input %d: %s, clean %s" rep i
            (FReport.show_reply got) (FReport.show_reply want))
      inputs
  done;
  let m = Engine.metrics d.engine in
  let hits = Metrics.counter_value m "server/session-cache-hits" in
  let misses = Metrics.counter_value m "server/session-cache-misses" in
  Alcotest.(check bool) "repeats hit the cache" true (hits > 0);
  Alcotest.(check int) "every request consulted the cache" (rounds * n)
    (hits + misses);
  Alcotest.(check int) "per-session hits match" hits
    (Metrics.counter_value m
       ("server/session/" ^ session_name ^ "/cache-hits"));
  (* the cache is invisible in the disabled configuration *)
  let d2 =
    driver
      ~config:{ Engine.default_config with Engine.session_cache = false }
      ~policy ()
  in
  for rep = 0 to 1 do
    Array.iteri (fun i a -> enforce d2 ~id:((rep * n) + i) entry a) inputs;
    settle d2
  done;
  Alcotest.(check int) "disabled cache never hits" 0
    (Metrics.counter_value (Engine.metrics d2.engine)
       "server/session-cache-hits");
  Array.iteri
    (fun i a ->
      let got = reply_of d2 (n + i) in
      let want = clean_reply entry ~policy a in
      if got <> want then
        Alcotest.failf "uncached input %d: %s, clean %s" i
          (FReport.show_reply got) (FReport.show_reply want))
    inputs

(* The I-projection soundness proof quantifies over the corpus space
   only: a wire input outside it must fall back to the exact key even
   when its Policy.image collides with a proven in-space class —
   replaying that class's cached verdict for it would be an enforcement
   hole the proof never ruled out. *)
let test_session_cache_out_of_space () =
  let entry = Paper.find "ex7" in
  let policy = Policy.allow [ 0 ] in
  let d = driver ~policy () in
  let inside = ints [ 2; 1 ] in
  (* Same image under allow [0] (coordinate 0 is 2), outside the 0..3
     corpus space on coordinate 1. *)
  let outside = ints [ 2; 9 ] in
  enforce d ~id:0 entry inside;
  settle d;
  enforce d ~id:1 entry outside;
  settle d;
  enforce d ~id:2 entry outside;
  settle d;
  let m = Engine.metrics d.engine in
  Alcotest.(check int) "the proof ran and passed" 1
    (Metrics.counter_value m "server/cache-ikeys");
  Alcotest.(check int) "out-of-space requests counted" 2
    (Metrics.counter_value m "server/cache-out-of-space");
  List.iter
    (fun (id, a) ->
      let got = reply_of d id in
      let want = clean_reply entry ~policy a in
      if got <> want then
        Alcotest.failf "request %d: %s, clean %s" id (FReport.show_reply got)
          (FReport.show_reply want))
    [ (0, inside); (1, outside); (2, outside) ];
  (* The exact-key fallback still caches: the repeat was a hit. *)
  Alcotest.(check bool) "repeat of the out-of-space input hits" true
    (Metrics.counter_value m "server/session-cache-hits" > 0)

(* A space over the proof budget is never enumerated on the serving
   loop: the session keys on exact inputs, which still cache — only the
   I-collapse is lost. *)
let test_session_cache_space_limit () =
  let entry = Paper.find "ex7" in
  let policy = Policy.allow [ 0 ] in
  let config = { Engine.default_config with Engine.ikey_space_limit = 0 } in
  let d = driver ~config ~policy () in
  let inputs =
    Array.of_list (List.of_seq (Space.enumerate entry.Paper.space))
  in
  let n = Array.length inputs in
  for rep = 0 to 1 do
    Array.iteri (fun i a -> enforce d ~id:((rep * n) + i) entry a) inputs;
    settle d
  done;
  let m = Engine.metrics d.engine in
  Alcotest.(check int) "proof skipped" 1
    (Metrics.counter_value m "server/cache-ikey-skips");
  Alcotest.(check int) "session fell back to exact keys" 1
    (Metrics.counter_value m "server/cache-exact-keys");
  Alcotest.(check int) "no I keys" 0
    (Metrics.counter_value m "server/cache-ikeys");
  Alcotest.(check bool) "exact keys still hit on the second round" true
    (Metrics.counter_value m "server/session-cache-hits" >= n);
  Array.iteri
    (fun i a ->
      let got = reply_of d (n + i) in
      let want = clean_reply entry ~policy a in
      if got <> want then
        Alcotest.failf "input %d: %s, clean %s" i (FReport.show_reply got)
          (FReport.show_reply want))
    inputs

(* Per-session latency histograms: one sample per executed request. *)
let test_session_latency_histogram () =
  let entry = Paper.find "ex7" in
  let policy = Policy.allow [ 0 ] in
  let d = driver ~policy () in
  for id = 0 to 9 do
    enforce d ~id entry (ints [ id mod 4; 1 ])
  done;
  settle d;
  let m = Engine.metrics d.engine in
  let served = Metrics.counter_value m "server/served" in
  Alcotest.(check int) "all served" 10 served;
  match Metrics.find m ("server/session/" ^ session_name ^ "/latency-us") with
  | Some (Metrics.Histogram s) ->
      Alcotest.(check int) "one latency sample per served request" served
        s.Metrics.n
  | _ -> Alcotest.fail "per-session latency histogram missing"

(* --- http ------------------------------------------------------------------ *)

let split_response resp =
  let n = String.length resp in
  let rec find i =
    if i + 3 >= n then Alcotest.fail "response has no header terminator"
    else if String.sub resp i 4 = "\r\n\r\n" then i
    else find (i + 1)
  in
  let i = find 0 in
  (String.sub resp 0 i, String.sub resp (i + 4) (n - i - 4))

let content_length headers =
  let lines = String.split_on_char '\n' headers in
  List.fold_left
    (fun acc line ->
      let line = String.trim line in
      match String.index_opt line ':' with
      | Some i when String.lowercase_ascii (String.sub line 0 i)
                    = "content-length" ->
          int_of_string_opt
            (String.trim (String.sub line (i + 1) (String.length line - i - 1)))
      | _ -> acc)
    None lines

let test_http_routes () =
  (match Http.request_of_buffer "GET /met" with
  | None -> ()
  | Some _ -> Alcotest.fail "partial request line parsed");
  (match Http.request_of_buffer "GET /metrics HTTP/1.0\r\nHost: x\r\n\r\n" with
  | Some { Http.meth = "GET"; target = "/metrics" } -> ()
  | _ -> Alcotest.fail "request line not parsed");
  let entry = Paper.find "ex7" in
  let d = driver ~policy:(Policy.allow [ 0 ]) () in
  enforce d ~id:0 entry (ints [ 1; 1 ]);
  settle ~rounds:5 d;
  let get target = Http.handle d.engine ~now:!(d.now) { Http.meth = "GET"; target } in
  (* /metrics: 200, framed, and the body parses back to the exact registry
     snapshot *)
  let resp = get "/metrics" in
  let headers, body = split_response resp in
  Alcotest.(check bool) "metrics 200" true
    (String.length resp > 12 && String.sub resp 0 15 = "HTTP/1.0 200 OK");
  Alcotest.(check bool) "connection closed" true
    (contains headers "Connection: close");
  (match content_length headers with
  | Some len -> Alcotest.(check int) "content-length" (String.length body) len
  | None -> Alcotest.fail "no Content-Length");
  (match Expo.parse body with
  | Ok snap ->
      Alcotest.(check bool) "scrape equals the registry snapshot" true
        (snap = Metrics.snapshot (Engine.metrics d.engine))
  | Error e -> Alcotest.failf "scrape unparseable: %s" e);
  (* /healthz mirrors Engine.health *)
  let resp = get "/healthz" in
  let _, body = split_response resp in
  Alcotest.(check bool) "healthz 200 while serving" true
    (String.sub resp 0 12 = "HTTP/1.0 200");
  Alcotest.(check string) "healthz body"
    (Engine.health_json (Engine.health d.engine ~now:!(d.now)))
    (String.trim body);
  (* unknown target, wrong method *)
  Alcotest.(check bool) "404" true
    (String.sub (get "/nope") 0 12 = "HTTP/1.0 404");
  Alcotest.(check bool) "405" true
    (String.sub
       (Http.handle d.engine ~now:!(d.now) { Http.meth = "POST"; target = "/metrics" })
       0 12
    = "HTTP/1.0 405");
  (* draining flips /healthz to 503 but /metrics keeps answering *)
  Engine.drain d.engine ~now:!(d.now);
  Alcotest.(check bool) "healthz 503 in drain" true
    (String.sub (get "/healthz") 0 12 = "HTTP/1.0 503");
  Alcotest.(check bool) "metrics still served in drain" true
    (String.sub (get "/metrics") 0 12 = "HTTP/1.0 200")

(* --- top ------------------------------------------------------------------- *)

let test_top_render_and_replay () =
  let m = Metrics.create () in
  let bump name by = Metrics.incr ~by (Metrics.counter m name) in
  bump "server/requests" 40;
  bump "server/granted" 30;
  Metrics.set (Metrics.gauge m "server/queue-now") 3;
  bump "server/session/alpha/requests" 40;
  List.iter
    (Metrics.observe (Metrics.histogram m "server/session/alpha/latency-us"))
    [ 10; 20; 900 ];
  bump "server/session/alpha/sheds" 2;
  bump "server/session/alpha/cache-hits" 7;
  Metrics.set (Metrics.gauge m "server/session/alpha/breaker-open") 0;
  let s1 = Metrics.snapshot m in
  bump "server/requests" 10;
  bump "server/session/alpha/requests" 10;
  bump "server/session/beta/requests" 5;
  let s2 = Metrics.snapshot m in
  Alcotest.(check (list string)) "sessions in first-appearance order"
    [ "alpha"; "beta" ] (Top.sessions_of s2);
  let total = Top.render s2 in
  Alcotest.(check bool) "totals header" true
    (contains total "requests 50" && contains total "queue 3");
  Alcotest.(check bool) "cumulative column without prev" true
    (contains total "TOTAL");
  let rated = Top.render ~prev:s1 ~interval:2.0 s2 in
  (* alpha gained 10 requests over 2 seconds *)
  Alcotest.(check bool) "rps = delta / interval" true (contains rated "5.0");
  Alcotest.(check bool) "new session appears" true (contains rated "beta");
  (* percentiles walk the log2 buckets *)
  (match Metrics.find m "server/session/alpha/latency-us" with
  | Some (Metrics.Histogram s) ->
      Alcotest.(check int) "p50 bucket bound" 31 (Top.percentile s 0.5);
      Alcotest.(check int) "p99 bucket bound" 1023 (Top.percentile s 0.99)
  | _ -> Alcotest.fail "alpha latency histogram missing");
  (* the replay path feeds the same renderer *)
  let jsonl =
    Json.render (Metrics.snapshot_to_json s1)
    ^ "\n"
    ^ Json.render (Metrics.snapshot_to_json s2)
    ^ "\n"
  in
  match Top.frames_of_jsonl jsonl with
  | Ok [ r1; r2 ] ->
      Alcotest.(check bool) "frames round-trip" true (r1 = s1 && r2 = s2)
  | Ok fs -> Alcotest.failf "expected 2 frames, got %d" (List.length fs)
  | Error e -> Alcotest.failf "replay: %s" e

(* --- loadgen -------------------------------------------------------------- *)

let test_loadgen_engine () =
  let entry = Paper.find "ex7" in
  let r =
    Loadgen.run_engine ~requests:3000 ~window:32 ~entry
      ~policy:(Policy.allow [ 0 ]) ()
  in
  Alcotest.(check int) "all requests tallied" 3000
    (r.Loadgen.granted + r.Loadgen.denied + r.Loadgen.overloads);
  Alcotest.(check int) "no fail-open" 0 r.Loadgen.fail_open;
  Alcotest.(check bool) "made progress" true (r.Loadgen.rps > 0.)

(* Running loadgen with the simulated scraper in the loop changes
   nothing about the replies — observability must not perturb verdicts. *)
let test_loadgen_scrape_parity () =
  let entry = Paper.find "ex7" in
  let r =
    Loadgen.run_engine ~requests:2000 ~window:32 ~scrape_hz:200. ~entry
      ~policy:(Policy.allow [ 0 ]) ()
  in
  Alcotest.(check int) "all requests tallied" 2000
    (r.Loadgen.granted + r.Loadgen.denied + r.Loadgen.overloads);
  Alcotest.(check int) "no fail-open with scraping on" 0 r.Loadgen.fail_open;
  Alcotest.(check bool) "the scraper actually ran" true (r.Loadgen.scrapes > 0)

(* --- chaos ---------------------------------------------------------------- *)

(* The sweep report is byte-identical whatever the pool width. *)
let test_chaos_jobs_parity () =
  let entries = [ Paper.find "ex7" ] in
  let json jobs =
    Chaos.to_json_string (Chaos.run ~entries ~seeds:4 ~jobs ())
  in
  Alcotest.(check string) "jobs 1 = jobs 2" (json 1) (json 2)

(* --- the daemon, for real ------------------------------------------------- *)

(* A real daemon on a real Unix socket (in its own domain — its select
   loop and the blocking client run concurrently), talked to with the
   typed client, drained, and joined cleanly. *)
let test_daemon_socket_smoke () =
  let path =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "secpol-test-%d.sock" (Unix.getpid ()))
  in
  (try Sys.remove path with Sys_error _ -> ());
  let entry = Paper.find "ex7" in
  let policy = Policy.allow [ 0 ] in
  let dom =
    Domain.spawn (fun () ->
        try
          Daemon.serve ~signals:false (Daemon.Unix_path path);
          `Ok
        with e -> `Err (Printexc.to_string e))
  in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let c = Client.connect ~retries:50 (Daemon.Unix_path path) in
      (match Client.hello c ~client:"test" with
      | Ok _ -> ()
      | Error m -> Alcotest.failf "hello refused: %s" m);
      let spec = Loadgen.session_spec ~session:"smoke" ~policy () in
      (match Client.open_session c spec with
      | Ok () -> ()
      | Error m -> Alcotest.failf "session refused: %s" m);
      Seq.iteri
        (fun id a ->
          match
            Client.enforce c ~session:"smoke" ~request_id:id ~program:"ex7" a
          with
          | Ok got ->
              let want = clean_reply entry ~policy a in
              if got <> want then
                Alcotest.failf "daemon diverged on input %d: %s vs %s" id
                  (FReport.show_reply got) (FReport.show_reply want)
          | Error m -> Alcotest.failf "enforce refused: %s" m)
        (Space.enumerate entry.Paper.space);
      (match Client.drain c with
      | Ok _ -> ()
      | Error m -> Alcotest.failf "drain refused: %s" m);
      Client.close c;
      match Domain.join dom with
      | `Ok -> ()
      | `Err m -> Alcotest.failf "daemon raised: %s" m)

(* The observability plane on a real daemon: /healthz answers ok,
   /metrics scrapes to a snapshot carrying the advertised series, and the
   plane goes down with the daemon after drain. *)
let test_daemon_metrics_plane () =
  let tmp = Filename.get_temp_dir_name () in
  let path =
    Filename.concat tmp (Printf.sprintf "secpol-mp-%d.sock" (Unix.getpid ()))
  in
  let mpath =
    Filename.concat tmp (Printf.sprintf "secpol-mp-%d-m.sock" (Unix.getpid ()))
  in
  List.iter
    (fun p -> try Sys.remove p with Sys_error _ -> ())
    [ path; mpath ];
  let entry = Paper.find "ex7" in
  let policy = Policy.allow [ 0 ] in
  let maddr = Daemon.Unix_path mpath in
  let dom =
    Domain.spawn (fun () ->
        try
          Daemon.serve ~signals:false ~metrics_address:maddr
            ~http_deadline:0.2 (Daemon.Unix_path path);
          `Ok
        with e -> `Err (Printexc.to_string e))
  in
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun p -> try Sys.remove p with Sys_error _ -> ())
        [ path; mpath ])
    (fun () ->
      let c = Client.connect ~retries:50 (Daemon.Unix_path path) in
      let spec = Loadgen.session_spec ~session:"smoke" ~policy () in
      (match Client.open_session c spec with
      | Ok () -> ()
      | Error m -> Alcotest.failf "session refused: %s" m);
      Seq.iteri
        (fun id a ->
          match
            Client.enforce c ~session:"smoke" ~request_id:id ~program:"ex7" a
          with
          | Ok _ -> ()
          | Error m -> Alcotest.failf "enforce refused: %s" m)
        (Space.enumerate entry.Paper.space);
      let rec scrape_ok what path retries =
        match Top.scrape maddr ~path with
        | Ok body -> body
        | Error _ when retries > 0 ->
            Unix.sleepf 0.05;
            scrape_ok what path (retries - 1)
        | Error m -> Alcotest.failf "%s: %s" what m
      in
      let health = scrape_ok "healthz" "/healthz" 50 in
      Alcotest.(check bool) "healthz reports ok" true
        (contains health "\"ok\":true");
      (match Top.scrape_snapshot maddr with
      | Error m -> Alcotest.failf "metrics scrape: %s" m
      | Ok snap ->
          let served =
            match List.assoc_opt "server/served" snap with
            | Some (Metrics.Counter c) -> c
            | _ -> 0
          in
          Alcotest.(check bool) "served counter over the wire" true
            (served > 0);
          List.iter
            (fun name ->
              if not (List.mem_assoc name snap) then
                Alcotest.failf "required series %s missing" name)
            [
              "server/requests";
              "server/open-sessions";
              "server/queue-now";
              "server/session/smoke/requests";
              "server/session/smoke/latency-us";
              "server/session/smoke/cache-hits";
            ];
          Alcotest.(check bool) "top sees the session" true
            (List.mem "smoke" (Top.sessions_of snap)));
      (* A scraper that connects and never sends a request line is
         reclaimed once the http deadline passes — and meanwhile never
         blocks the plane for anyone else. *)
      let silent = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.connect silent (Unix.ADDR_UNIX mpath);
      Unix.sleepf 0.5;
      ignore (scrape_ok "healthz with a silent scraper" "/healthz" 50);
      let reclaimed =
        match Unix.select [ silent ] [] [] 5.0 with
        | [], _, _ -> false (* still open and quiet after the deadline *)
        | _ -> (
            let b = Bytes.create 1 in
            match Unix.read silent b 0 1 with
            | 0 -> true
            | _ -> false
            | exception
                Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
                true)
      in
      Unix.close silent;
      Alcotest.(check bool) "silent scraper reclaimed" true reclaimed;
      (match Client.drain c with
      | Ok _ -> ()
      | Error m -> Alcotest.failf "drain refused: %s" m);
      Client.close c;
      (match Domain.join dom with
      | `Ok -> ()
      | `Err m -> Alcotest.failf "daemon raised: %s" m);
      match Top.scrape maddr ~path:"/healthz" with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "metrics plane survived the daemon")

let () =
  Alcotest.run "server"
    [
      ( "wire",
        [
          prop_wire_round_trip;
          Alcotest.test_case "response-round-trip" `Quick
            test_response_round_trip;
          Alcotest.test_case "damage-rejected" `Quick test_wire_damage_rejected;
        ] );
      ("admission", [ prop_admission_conserves; prop_admission_deterministic ]);
      ( "engine",
        [
          Alcotest.test_case "clean-parity" `Quick test_engine_clean_parity;
          Alcotest.test_case "deadline-zero" `Quick
            test_deadline_zero_always_shed;
          Alcotest.test_case "overload-burst" `Quick
            test_overload_burst_all_answered;
          Alcotest.test_case "drain" `Quick test_drain_answers_everything;
          Alcotest.test_case "kill-restart-resume" `Quick
            test_kill_restart_resume;
          Alcotest.test_case "circuit-breaker" `Quick
            test_breaker_trips_and_recovers;
          Alcotest.test_case "health" `Quick test_engine_health;
          Alcotest.test_case "session-verdict-cache" `Quick
            test_session_verdict_cache;
          Alcotest.test_case "cache-out-of-space-fallback" `Quick
            test_session_cache_out_of_space;
          Alcotest.test_case "cache-space-limit" `Quick
            test_session_cache_space_limit;
          Alcotest.test_case "latency-histogram" `Quick
            test_session_latency_histogram;
        ] );
      ( "observability",
        [
          Alcotest.test_case "http-routes" `Quick test_http_routes;
          Alcotest.test_case "top-render-and-replay" `Quick
            test_top_render_and_replay;
        ] );
      ( "loadgen",
        [
          Alcotest.test_case "engine" `Quick test_loadgen_engine;
          Alcotest.test_case "scrape-parity" `Quick test_loadgen_scrape_parity;
        ] );
      ( "chaos",
        [ Alcotest.test_case "jobs-parity" `Quick test_chaos_jobs_parity ] );
      ( "daemon",
        [
          Alcotest.test_case "socket-smoke" `Quick test_daemon_socket_smoke;
          Alcotest.test_case "metrics-plane" `Quick test_daemon_metrics_plane;
        ] );
    ]
