(* The enforcement service: the wire protocol is a total codec over a
   CRC-framed stream; the admission queue is bounded, deterministic and
   never silent; the engine answers every request with the clean
   monitor's verdict or a notice in F — under overload, deadlines,
   drain, circuit-breaking, kills and restarts; and the real daemon
   (forked, on a real socket) serves, resumes and drains cleanly. *)

open Util
module Wire = Secpol_server.Wire
module Engine = Secpol_server.Engine
module Store = Secpol_server.Store
module Admission = Secpol_server.Admission
module Daemon = Secpol_server.Daemon
module Client = Secpol_server.Client
module Loadgen = Secpol_server.Loadgen
module Chaos = Secpol_server.Chaos
module Dynamic = Secpol_taint.Dynamic
module Paper = Secpol_corpus.Paper_programs
module Guard = Secpol_fault.Guard
module FReport = Secpol_fault.Report
module Hook = Secpol_flowgraph.Hook
module Frame = Secpol_journal.Frame
module Metrics = Secpol_trace.Metrics

let overload = Wire.overload_notice
let recovery = Guard.recovery_notice

let flip_byte s i =
  let b = Bytes.of_string s in
  Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0xff));
  Bytes.to_string b

(* --- wire ----------------------------------------------------------------- *)

let spec_gen =
  QCheck.Gen.(
    let* session = string_size ~gen:(char_range 'a' 'z') (int_range 1 8) in
    let* arity = int_range 0 3 in
    let* mask = int_range 0 15 in
    let* fuel = int_range 1 100_000 in
    let* retries = int_range 0 5 in
    let* journaled = bool in
    let* mode = oneofl Dynamic.[ High_water; Surveillance; Scoped; Timed ] in
    return
      {
        Wire.session;
        allowed =
          Iset.of_list
            (List.filter
               (fun i -> (mask lsr i) land 1 = 1)
               (List.init arity Fun.id));
        mode;
        fuel;
        guard_retries = retries;
        journaled;
      })

let request_gen =
  QCheck.Gen.(
    let* tag = int_range 0 5 in
    match tag with
    | 0 ->
        let* c = string_size (int_range 0 12) in
        return (Wire.Hello { client = c })
    | 1 ->
        let* spec = spec_gen in
        return (Wire.Open_session spec)
    | 2 ->
        let* session = string_size ~gen:(char_range 'a' 'z') (int_range 1 8) in
        let* request_id = int_range 0 10_000 in
        let* program = oneofl [ "ex7"; "ex8"; "forgetting" ] in
        let* n = int_range 0 3 in
        let* xs = list_size (return n) (int_range (-9) 9) in
        let* deadline_us = oneofl [ -1; 0; 1; 1_000; 5_000_000 ] in
        return
          (Wire.Enforce
             {
               Wire.session;
               request_id;
               program;
               inputs = Array.of_list (List.map Value.int xs);
               deadline_us;
             })
    | 3 ->
        let* session = string_size ~gen:(char_range 'a' 'z') (int_range 1 8) in
        let* request_id = int_range 0 10_000 in
        return (Wire.Resume { session; request_id })
    | 4 -> return Wire.Stats
    | _ -> return Wire.Drain)

(* One frame, fed to the stream in random-sized chunks, decodes back to
   the request that produced it. *)
let prop_wire_round_trip =
  qtest ~count:500 "request-round-trip"
    (QCheck.make QCheck.Gen.(pair request_gen (int_range 1 64)))
    (fun (req, chunk) ->
      let bytes = Wire.encode_request req in
      let st = Wire.Stream.create () in
      let n = String.length bytes in
      let i = ref 0 in
      while !i < n do
        let len = min chunk (n - !i) in
        Wire.Stream.feed st ~now:0. (String.sub bytes !i len);
        i := !i + len
      done;
      match Wire.Stream.next st with
      | `Frame payload -> (
          match Wire.decode_request payload with
          | Ok req' ->
              req' = req
              || QCheck.Test.fail_reportf "decoded %s from %s"
                   (Wire.request_name req') (Wire.request_name req)
          | Error e ->
              QCheck.Test.fail_reportf "decode failed: %s"
                (Wire.Codec.error_message e))
      | `Await -> QCheck.Test.fail_report "frame incomplete after full feed"
      | `Corrupt e ->
          QCheck.Test.fail_reportf "corrupt: %s" (Wire.Codec.error_message e))

let test_response_round_trip () =
  let reply response = { Mechanism.response; steps = 17 } in
  List.iter
    (fun r ->
      let bytes = Wire.encode_response r in
      let st = Wire.Stream.create () in
      Wire.Stream.feed st ~now:0. bytes;
      match Wire.Stream.next st with
      | `Frame payload ->
          Alcotest.(check bool)
            (Wire.response_name r ^ " round-trips")
            true
            (Wire.decode_response payload = Ok r)
      | _ -> Alcotest.failf "%s: no frame" (Wire.response_name r))
    [
      Wire.Welcome { server = "s" };
      Wire.Session_opened { session = "load" };
      Wire.Reply
        {
          session = "load";
          request_id = 3;
          reply = reply (Mechanism.Granted (Value.int 7));
        };
      Wire.Reply
        {
          session = "load";
          request_id = 4;
          reply = reply (Mechanism.Denied overload);
        };
      Wire.Stats_reply { body = "{}" };
      Wire.Draining { outstanding = 2 };
      Wire.Refused { code = "proto"; detail = "bad frame" };
    ]

(* Damaged frames never decode into a message: bad magic and bad CRC are
   [`Corrupt]; truncation stays [`Await] (the stream keeps waiting — the
   slowloris deadline, not the codec, kills the connection); a foreign
   wire version re-framed with a valid CRC decodes to a typed error. *)
let test_wire_damage_rejected () =
  let bytes = Wire.encode_request (Wire.Hello { client = "damage" }) in
  let feed s =
    let st = Wire.Stream.create () in
    Wire.Stream.feed st ~now:0. s;
    Wire.Stream.next st
  in
  (match feed (flip_byte bytes 0) with
  | `Corrupt _ -> ()
  | _ -> Alcotest.fail "bad magic accepted");
  (match feed (flip_byte bytes (String.length bytes - 1)) with
  | `Corrupt _ -> ()
  | _ -> Alcotest.fail "bad CRC accepted");
  (match feed (String.sub bytes 0 (String.length bytes - 2)) with
  | `Await -> ()
  | _ -> Alcotest.fail "truncated frame not awaited");
  (let payload =
     String.sub bytes Frame.header_size
       (String.length bytes - Frame.header_size)
   in
   let foreign = Frame.frame (flip_byte payload 0) in
   match feed foreign with
   | `Frame p -> (
       match Wire.decode_request p with
       | Error _ -> ()
       | Ok _ -> Alcotest.fail "foreign version decoded")
   | _ -> Alcotest.fail "foreign-version frame did not parse as a frame");
  match feed "no frame starts like this" with
  | `Corrupt _ -> ()
  | _ -> Alcotest.fail "garbage accepted"

(* --- admission ------------------------------------------------------------ *)

(* Conservation, no silence: every offer is answered exactly once —
   shed (at offer time, or displaced later, or refused in drain) or
   popped — the queue never exceeds capacity, and expired offers are
   shed as Expired. An entry may legitimately be admitted first and
   displaced by a later offer; it must then not also be popped. *)
let prop_admission_conserves =
  qtest ~count:300 "admission-conserves-every-request"
    QCheck.(triple (int_range 1 8) (int_range 1 40) (int_range 0 1_000_000))
    (fun (capacity, offers, seed) ->
      (* QCheck's int shrinker can leave the generated range *)
      let capacity = max 1 capacity and offers = max 1 offers in
      let q = Admission.create ~seed ~capacity () in
      (* request_id -> `Admitted (still queued) | `Answered (shed/popped) *)
      let state = Hashtbl.create 16 in
      for id = 0 to offers - 1 do
        let deadline = float_of_int ((seed + (id * 7)) mod 5) -. 1. in
        let decisions =
          Admission.offer q ~now:0.5 ~conn:0 ~session:"s" ~request_id:id
            ~deadline ()
        in
        List.iter
          (function
            | `Admitted (e : unit Admission.entry) ->
                if Hashtbl.mem state e.Admission.request_id then
                  QCheck.Test.fail_reportf "request %d admitted twice"
                    e.Admission.request_id;
                Hashtbl.add state e.Admission.request_id `Admitted
            | `Shed (e, reason) -> (
                (match Hashtbl.find_opt state e.Admission.request_id with
                | None -> Hashtbl.add state e.Admission.request_id `Answered
                | Some `Admitted ->
                    (* displaced from the queue by the newcomer *)
                    Hashtbl.replace state e.Admission.request_id `Answered
                | Some `Answered ->
                    QCheck.Test.fail_reportf "request %d answered twice"
                      e.Admission.request_id);
                if e.Admission.request_id = id && deadline <= 0.5 then
                  match reason with
                  | Admission.Expired -> ()
                  | r ->
                      QCheck.Test.fail_reportf "expired offer shed as %s"
                        (Admission.reason_name r)))
          decisions;
        if Admission.length q > capacity then
          QCheck.Test.fail_reportf "queue over capacity: %d > %d"
            (Admission.length q) capacity;
        if not (Hashtbl.mem state id) then
          QCheck.Test.fail_reportf "offer %d got no decision" id
      done;
      Admission.drain q;
      (match
         Admission.offer q ~now:0.5 ~conn:0 ~session:"s" ~request_id:offers
           ~deadline:99. ()
       with
      | [ `Shed (_, Admission.Draining) ] -> ()
      | _ -> QCheck.Test.fail_report "drained queue did not refuse the offer");
      let continue = ref true in
      while !continue do
        match Admission.pop q ~now:0.6 with
        | `Empty -> continue := false
        | `Run e | `Expired e -> (
            match Hashtbl.find_opt state e.Admission.request_id with
            | Some `Admitted ->
                Hashtbl.replace state e.Admission.request_id `Answered
            | Some `Answered ->
                QCheck.Test.fail_reportf "request %d popped after answering"
                  e.Admission.request_id
            | None ->
                QCheck.Test.fail_reportf "popped unoffered request %d"
                  e.Admission.request_id)
      done;
      (* drain never drops an admitted request: everything is Answered *)
      for id = 0 to offers - 1 do
        match Hashtbl.find_opt state id with
        | Some `Answered -> ()
        | Some `Admitted ->
            QCheck.Test.fail_reportf "request %d admitted but never popped" id
        | None -> QCheck.Test.fail_reportf "request %d vanished" id
      done;
      true)

(* Deterministic shedding: the same seed and offer sequence replays the
   same decision trace bit-for-bit. *)
let prop_admission_deterministic =
  qtest ~count:300 "admission-deterministic-given-seed"
    QCheck.(
      quad (int_range 1 6) (int_range 1 30) (int_range 0 1_000_000)
        (int_range 0 1_000_000))
    (fun (capacity, offers, seed, dseed) ->
      let capacity = max 1 capacity and offers = max 1 offers in
      let trace () =
        let q = Admission.create ~seed ~capacity () in
        let log = Buffer.create 64 in
        for id = 0 to offers - 1 do
          let deadline = float_of_int ((dseed + (id * 13)) mod 7) in
          List.iter
            (function
              | `Admitted (e : unit Admission.entry) ->
                  Buffer.add_string log
                    (Printf.sprintf "A%d;" e.Admission.request_id)
              | `Shed (e, reason) ->
                  Buffer.add_string log
                    (Printf.sprintf "S%d/%s;" e.Admission.request_id
                       (Admission.reason_name reason)))
            (Admission.offer q ~now:1. ~conn:0 ~session:"s" ~request_id:id
               ~deadline ())
        done;
        Buffer.contents log
      in
      trace () = trace ()
      || QCheck.Test.fail_report "same seed, different decisions")

(* --- engine --------------------------------------------------------------- *)

let session_name = "t"

(* Drive an in-process engine through the wire: open a session, send
   requests, pump replies with a virtual clock. *)
type driver = {
  engine : Engine.t;
  conn : int;
  stream : Wire.Stream.t;
  now : float ref;
  replies : (int, Mechanism.reply) Hashtbl.t;
  refusals : (string * string) list ref;
}

let pump d =
  Wire.Stream.feed d.stream ~now:0. (Engine.output d.engine ~conn:d.conn);
  let continue = ref true in
  while !continue do
    match Wire.Stream.next d.stream with
    | `Frame p -> (
        match Wire.decode_response p with
        | Ok (Wire.Reply { request_id; reply; _ }) ->
            Hashtbl.replace d.replies request_id reply
        | Ok (Wire.Refused { code; detail }) ->
            d.refusals := (code, detail) :: !(d.refusals)
        | Ok _ -> ()
        | Error e -> Alcotest.failf "driver: %s" (Wire.Codec.error_message e))
    | `Await | `Corrupt _ -> continue := false
  done

let step d =
  d.now := !(d.now) +. 0.001;
  Engine.step d.engine ~now:!(d.now);
  pump d

let settle ?(rounds = 60) d =
  for _ = 1 to rounds do
    step d
  done

let send d req =
  Engine.feed d.engine ~conn:d.conn ~now:!(d.now) (Wire.encode_request req)

let enforce d ?(deadline_us = -1) ~id entry a =
  send d
    (Wire.Enforce
       {
         Wire.session = session_name;
         request_id = id;
         program = entry.Paper.name;
         inputs = a;
         deadline_us;
       })

let driver ?(config = Engine.default_config) ?(journaled = false)
    ?(guard_retries = Guard.default.Guard.retries) ?store ~policy () =
  let store = match store with Some s -> s | None -> Store.memory () in
  let now = ref 1000. in
  let engine = Engine.create ~config ~store ~now:!now () in
  let conn = Engine.open_conn engine ~now:!now in
  let d =
    {
      engine;
      conn;
      stream = Wire.Stream.create ();
      now;
      replies = Hashtbl.create 16;
      refusals = ref [];
    }
  in
  let allowed =
    match Policy.allowed_indices policy with
    | Some s -> s
    | None -> Alcotest.fail "driver needs an allow policy"
  in
  send d
    (Wire.Open_session
       {
         Wire.session = session_name;
         allowed;
         mode = Dynamic.Surveillance;
         fuel = 4096;
         guard_retries;
         journaled;
       });
  step d;
  d

let clean_reply entry ~policy a =
  let m =
    Dynamic.mechanism
      (Dynamic.config ~fuel:4096 ~mode:Dynamic.Surveillance
         (Policy.allow_set (Option.get (Policy.allowed_indices policy))))
      (Paper.graph entry)
  in
  Mechanism.respond m a

let reply_of d id =
  match Hashtbl.find_opt d.replies id with
  | Some r -> r
  | None -> Alcotest.failf "request %d unanswered" id

let denial_of d id =
  match (reply_of d id).Mechanism.response with
  | Mechanism.Denied n -> n
  | r ->
      Alcotest.failf "request %d: expected a denial, got %s" id
        (FReport.show_response r)

(* Clean parity: through the whole service stack, every verdict is
   bit-identical to the clean monitor's. *)
let test_engine_clean_parity () =
  List.iter
    (fun name ->
      let entry = Paper.find name in
      let policy = Policy.allow [ 0 ] in
      let d = driver ~policy () in
      let inputs =
        Array.of_list (List.of_seq (Space.enumerate entry.Paper.space))
      in
      Array.iteri (fun id a -> enforce d ~id entry a) inputs;
      settle d;
      Array.iteri
        (fun id a ->
          let got = reply_of d id in
          let want = clean_reply entry ~policy a in
          if got <> want then
            Alcotest.failf "%s input %d: %s, clean %s" name id
              (FReport.show_reply got) (FReport.show_reply want))
        inputs)
    [ "ex7"; "forgetting"; "constant-branch" ]

(* A deadline of zero is already expired: always Λ/overload, never served,
   whatever the queue looks like. *)
let test_deadline_zero_always_shed () =
  let entry = Paper.find "ex7" in
  let d = driver ~policy:(Policy.allow [ 0 ]) () in
  for id = 0 to 9 do
    enforce d ~deadline_us:0 ~id entry (ints [ 1; 1 ])
  done;
  settle d;
  for id = 0 to 9 do
    Alcotest.(check string)
      (Printf.sprintf "request %d shed" id)
      overload (denial_of d id)
  done

(* A burst over capacity: every request answered, the clean verdict or
   Λ/overload — and the queue bound means some really were shed. *)
let test_overload_burst_all_answered () =
  let entry = Paper.find "ex7" in
  let policy = Policy.allow [ 0 ] in
  let config = { Engine.default_config with Engine.capacity = 4 } in
  let d = driver ~config ~policy () in
  let a = ints [ 2; 1 ] in
  let want = clean_reply entry ~policy a in
  let n = 16 in
  for id = 0 to n - 1 do
    enforce d ~id entry a
  done;
  settle d;
  let sheds = ref 0 in
  for id = 0 to n - 1 do
    let got = reply_of d id in
    if got = want then ()
    else if got.Mechanism.response = Mechanism.Denied overload then
      Stdlib.incr sheds
    else Alcotest.failf "request %d: %s" id (FReport.show_reply got)
  done;
  if !sheds = 0 then Alcotest.fail "burst over capacity shed nothing"

(* Drain answers the queue and refuses newcomers with Λ/overload; the
   engine reports drained only once the queue is empty. *)
let test_drain_answers_everything () =
  let entry = Paper.find "ex7" in
  let policy = Policy.allow [ 0 ] in
  let config =
    { Engine.default_config with Engine.capacity = 8; exec_budget = 1 }
  in
  let d = driver ~config ~policy () in
  let a = ints [ 3; 1 ] in
  for id = 0 to 3 do
    enforce d ~id entry a
  done;
  d.now := !(d.now) +. 0.001;
  Engine.step d.engine ~now:!(d.now);
  pump d;
  Engine.drain d.engine ~now:!(d.now);
  enforce d ~id:9 entry a;
  settle d;
  Alcotest.(check bool) "drained" true (Engine.drained d.engine);
  let want = clean_reply entry ~policy a in
  for id = 0 to 3 do
    let got = reply_of d id in
    if got <> want && got.Mechanism.response <> Mechanism.Denied overload then
      Alcotest.failf "admitted request %d: %s" id (FReport.show_reply got)
  done;
  Alcotest.(check string) "post-drain request refused" overload (denial_of d 9)

(* Kill and restart on the same store: a journaled run resumes
   bit-identically, an unjournaled one degrades to Λ/recovery — never a
   grant out of thin air, never silence. *)
let test_kill_restart_resume () =
  List.iter
    (fun journaled ->
      let entry = Paper.find "ex7" in
      let policy = Policy.allow [ 0 ] in
      let store = Store.memory () in
      let a = ints [ 2; 1 ] in
      let d = driver ~journaled ~store ~policy () in
      Engine.kill_next d.engine ~at_box:2;
      enforce d ~id:5 entry a;
      (match
         try
           settle d;
           `Survived
         with Engine.Died -> `Died
       with
      | `Died -> ()
      | `Survived -> Alcotest.fail "armed kill never struck");
      (* restart: fresh engine, same store *)
      let d2 = driver ~journaled ~store ~policy () in
      send d2 (Wire.Resume { session = session_name; request_id = 5 });
      settle d2;
      let got = reply_of d2 5 in
      if journaled then begin
        let want = clean_reply entry ~policy a in
        if got <> want then
          Alcotest.failf "journaled resume diverged: %s, clean %s"
            (FReport.show_reply got) (FReport.show_reply want)
      end
      else
        Alcotest.(check string) "unjournaled resume degrades" recovery
          (denial_of d2 5))
    [ true; false ]

(* The per-session circuit breaker: consecutive degraded outcomes trip
   it, tripped means Λ/overload (shed before execution), and the cooldown
   closes it again. *)
let test_breaker_trips_and_recovers () =
  let entry = Paper.find "ex7" in
  let policy = Policy.allow [ 0 ] in
  let config =
    {
      Engine.default_config with
      Engine.breaker_threshold = 2;
      breaker_cooldown = 0.5;
      hook = (fun ~step:_ -> Some (Hook.Crash "injected"));
    }
  in
  let d = driver ~config ~guard_retries:1 ~policy () in
  let a = ints [ 1; 1 ] in
  (* consecutive degraded outcomes trip the breaker... *)
  for id = 0 to 1 do
    enforce d ~id entry a;
    settle ~rounds:5 d
  done;
  Alcotest.(check string) "degraded" Guard.degraded_notice (denial_of d 0);
  Alcotest.(check string) "degraded" Guard.degraded_notice (denial_of d 1);
  (* ... so the next request is shed without running *)
  enforce d ~id:2 entry a;
  settle ~rounds:5 d;
  Alcotest.(check string) "breaker open" overload (denial_of d 2);
  Alcotest.(check bool) "breaker-sheds counted" true
    (Metrics.counter_value (Engine.metrics d.engine) "server/breaker-sheds"
    > 0);
  (* past the cooldown the breaker closes and the guard runs (and
     degrades) again *)
  d.now := !(d.now) +. 1.0;
  enforce d ~id:3 entry a;
  settle ~rounds:5 d;
  Alcotest.(check string) "breaker closed after cooldown"
    Guard.degraded_notice (denial_of d 3)

(* --- loadgen -------------------------------------------------------------- *)

let test_loadgen_engine () =
  let entry = Paper.find "ex7" in
  let r =
    Loadgen.run_engine ~requests:3000 ~window:32 ~entry
      ~policy:(Policy.allow [ 0 ]) ()
  in
  Alcotest.(check int) "all requests tallied" 3000
    (r.Loadgen.granted + r.Loadgen.denied + r.Loadgen.overloads);
  Alcotest.(check int) "no fail-open" 0 r.Loadgen.fail_open;
  Alcotest.(check bool) "made progress" true (r.Loadgen.rps > 0.)

(* --- chaos ---------------------------------------------------------------- *)

(* The sweep report is byte-identical whatever the pool width. *)
let test_chaos_jobs_parity () =
  let entries = [ Paper.find "ex7" ] in
  let json jobs =
    Chaos.to_json_string (Chaos.run ~entries ~seeds:4 ~jobs ())
  in
  Alcotest.(check string) "jobs 1 = jobs 2" (json 1) (json 2)

(* --- the daemon, for real ------------------------------------------------- *)

(* A real daemon on a real Unix socket (in its own domain — its select
   loop and the blocking client run concurrently), talked to with the
   typed client, drained, and joined cleanly. *)
let test_daemon_socket_smoke () =
  let path =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "secpol-test-%d.sock" (Unix.getpid ()))
  in
  (try Sys.remove path with Sys_error _ -> ());
  let entry = Paper.find "ex7" in
  let policy = Policy.allow [ 0 ] in
  let dom =
    Domain.spawn (fun () ->
        try
          Daemon.serve ~signals:false (Daemon.Unix_path path);
          `Ok
        with e -> `Err (Printexc.to_string e))
  in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let c = Client.connect ~retries:50 (Daemon.Unix_path path) in
      (match Client.hello c ~client:"test" with
      | Ok _ -> ()
      | Error m -> Alcotest.failf "hello refused: %s" m);
      let spec = Loadgen.session_spec ~session:"smoke" ~policy () in
      (match Client.open_session c spec with
      | Ok () -> ()
      | Error m -> Alcotest.failf "session refused: %s" m);
      Seq.iteri
        (fun id a ->
          match
            Client.enforce c ~session:"smoke" ~request_id:id ~program:"ex7" a
          with
          | Ok got ->
              let want = clean_reply entry ~policy a in
              if got <> want then
                Alcotest.failf "daemon diverged on input %d: %s vs %s" id
                  (FReport.show_reply got) (FReport.show_reply want)
          | Error m -> Alcotest.failf "enforce refused: %s" m)
        (Space.enumerate entry.Paper.space);
      (match Client.drain c with
      | Ok _ -> ()
      | Error m -> Alcotest.failf "drain refused: %s" m);
      Client.close c;
      match Domain.join dom with
      | `Ok -> ()
      | `Err m -> Alcotest.failf "daemon raised: %s" m)

let () =
  Alcotest.run "server"
    [
      ( "wire",
        [
          prop_wire_round_trip;
          Alcotest.test_case "response-round-trip" `Quick
            test_response_round_trip;
          Alcotest.test_case "damage-rejected" `Quick test_wire_damage_rejected;
        ] );
      ("admission", [ prop_admission_conserves; prop_admission_deterministic ]);
      ( "engine",
        [
          Alcotest.test_case "clean-parity" `Quick test_engine_clean_parity;
          Alcotest.test_case "deadline-zero" `Quick
            test_deadline_zero_always_shed;
          Alcotest.test_case "overload-burst" `Quick
            test_overload_burst_all_answered;
          Alcotest.test_case "drain" `Quick test_drain_answers_everything;
          Alcotest.test_case "kill-restart-resume" `Quick
            test_kill_restart_resume;
          Alcotest.test_case "circuit-breaker" `Quick
            test_breaker_trips_and_recovers;
        ] );
      ("loadgen", [ Alcotest.test_case "engine" `Quick test_loadgen_engine ]);
      ( "chaos",
        [ Alcotest.test_case "jobs-parity" `Quick test_chaos_jobs_parity ] );
      ( "daemon",
        [ Alcotest.test_case "socket-smoke" `Quick test_daemon_socket_smoke ]
      );
    ]
