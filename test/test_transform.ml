(* Section 4's transforms: functional equivalence always; completeness
   effects exactly as the paper's Examples 7, 8, 9 describe. *)

open Util
module Ast = Secpol_flowgraph.Ast
module Var = Secpol_flowgraph.Var
module Expr = Secpol_flowgraph.Expr
module Compile = Secpol_flowgraph.Compile
module Interp = Secpol_flowgraph.Interp
module Transforms = Secpol_transform.Transforms
module Dynamic = Secpol_taint.Dynamic
module Paper = Secpol_corpus.Paper_programs
module Generator = Secpol_corpus.Generator

let surveil policy prog =
  Dynamic.mechanism (Dynamic.config ~mode:Dynamic.Surveillance policy) (Compile.compile prog)

let check_equiv msg p1 p2 space =
  match Transforms.equivalent_on p1 p2 space with
  | Ok () -> ()
  | Error a ->
      Alcotest.failf "%s: programs differ at (%s)" msg
        (String.concat ","
           (Array.to_list (Array.map Secpol_core.Value.to_string a)))

(* --- if-then-else transform -------------------------------------------- *)

let test_ite_flattens () =
  let e = Paper.ex7 in
  let t = Transforms.ite e.Paper.prog in
  Alcotest.(check bool) "result is loop-free straight-line" true
    (Ast.loop_free t.Ast.body);
  check_equiv "ex7 ite equivalence" e.Paper.prog t e.Paper.space

let test_ex7_transform_wins () =
  (* Paper: surveillance on Q always denies; on the transformed program it
     always outputs 1 — maximal. *)
  let e = Paper.ex7 in
  let q = Paper.program e in
  let ms = surveil e.Paper.policy e.Paper.prog in
  check_ratio "original: always denies" ~expected:0.0 ms ~q e.Paper.space;
  let t = Transforms.ite e.Paper.prog in
  let mt = surveil e.Paper.policy t in
  check_ratio "transformed: always grants" ~expected:1.0 mt ~q e.Paper.space;
  check_grants "outputs 1" mt [ 0; 0 ] 1;
  check_sound "transformed mechanism sound for original Q" e.Paper.policy mt
    e.Paper.space;
  Alcotest.(check bool) "strictly more complete" true
    (Completeness.compare mt ms ~q e.Paper.space = Completeness.More_complete)

let test_ex7_needs_simplification () =
  (* Without the Cond(p, e, e) collapse the select keeps the test's taint:
     the unsimplified transform gains nothing here. *)
  let e = Paper.ex7 in
  let t = Transforms.ite ~simplify:false e.Paper.prog in
  let mt = surveil e.Paper.policy t in
  check_ratio "unsimplified: still denies" ~expected:0.0 mt ~q:(Paper.program e)
    e.Paper.space

let test_ex8_transform_hurts () =
  (* Paper: M grants where x1 = 1; M' (transformed) always denies; M > M'. *)
  let e = Paper.ex8 in
  let q = Paper.program e in
  let ms = surveil e.Paper.policy e.Paper.prog in
  check_grants "x1=1 grants 1" ms [ 3; 1 ] 1;
  check_denies "x1<>1 denies" ms [ 3; 2 ];
  check_ratio "original grants a quarter" ~expected:0.25 ms ~q e.Paper.space;
  let t = Transforms.ite e.Paper.prog in
  check_equiv "ex8 ite equivalence" e.Paper.prog t e.Paper.space;
  let mt = surveil e.Paper.policy t in
  check_ratio "transformed always denies" ~expected:0.0 mt ~q e.Paper.space;
  Alcotest.(check bool) "M > M'" true
    (Completeness.compare ms mt ~q e.Paper.space = Completeness.More_complete)

let prop_ite_preserves_semantics =
  let params = Generator.default in
  qtest ~count:300 "ite transform preserves semantics"
    (Generator.arbitrary params)
    (fun prog ->
      Transforms.equivalent_on prog (Transforms.ite prog)
        (Generator.space_for params)
      = Ok ())

let prop_ite_surveillance_still_sound =
  let params = Generator.default in
  qtest ~count:200 "surveillance after ite is sound for the ORIGINAL program"
    (Generator.arbitrary params)
    (fun prog ->
      let space = Generator.space_for params in
      List.for_all
        (fun policy ->
          let mt = surveil policy (Transforms.ite prog) in
          Soundness.is_sound policy mt space
          && Mechanism.check_protects mt (Interp.ast_program prog) space = Ok ())
        [ Policy.allow_none; Policy.allow [ 0 ]; Policy.allow [ 1 ] ])

(* --- while transform (predicated unrolling) ----------------------------- *)

let test_while_transform_equivalence () =
  let e = Paper.loop_then_secretfree in
  (* x0 <= 3 on the space, so 4 unrollings suffice. *)
  let t = Transforms.predicate_loops ~bound:4 e.Paper.prog in
  Alcotest.(check bool) "no residual iterations needed" true
    (Transforms.equivalent_on e.Paper.prog t e.Paper.space = Ok ());
  (* An insufficient bound must diverge, never answer wrongly. *)
  let t1 = Transforms.predicate_loops ~bound:1 e.Paper.prog in
  let g = Compile.compile t1 in
  match (Interp.run_graph ~fuel:500 g (ints [ 3; 1 ])).Program.result with
  | Program.Diverged -> ()
  | Program.Value v ->
      Alcotest.failf "expected divergence past the bound, got %a"
        Secpol_core.Value.pp v
  | Program.Fault m -> Alcotest.failf "unexpected fault %s" m

let test_while_transform_rescues_surveillance () =
  let e = Paper.loop_then_secretfree in
  let q = Paper.program e in
  let ms = surveil e.Paper.policy e.Paper.prog in
  check_ratio "original: loop taints everything after it" ~expected:0.0 ms ~q
    e.Paper.space;
  (* With the residual safety loop, its decision re-taints the program
     counter: nothing is gained. *)
  let t_res = Transforms.predicate_loops ~bound:4 e.Paper.prog in
  let mt_res = surveil e.Paper.policy t_res in
  check_ratio "residual decision still poisons" ~expected:0.0 mt_res ~q
    e.Paper.space;
  (* Establish the bound suffices, then drop the residual: the transformed
     program is branch-free and surveillance grants everywhere. *)
  let t = Transforms.predicate_loops ~residual:false ~bound:4 e.Paper.prog in
  (match Transforms.equivalent_on e.Paper.prog t e.Paper.space with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "bound 4 must cover the space");
  let mt = surveil e.Paper.policy t in
  check_ratio "predicated: grants everywhere" ~expected:1.0 mt ~q e.Paper.space;
  check_sound "and is sound" e.Paper.policy mt e.Paper.space

let prop_while_transform_preserves_semantics =
  (* Generated loops iterate at most max(input) <= 2 or a constant <= 3
     times per level; depth 3 nesting multiplies, so give a generous bound
     and fuel. *)
  let params = Generator.default in
  qtest ~count:150 "predicated unrolling preserves semantics (big bound)"
    (Generator.arbitrary params)
    (fun prog ->
      let t = Transforms.predicate_loops ~bound:4 prog in
      Seq.for_all
        (fun a ->
          let r1 = (Interp.run_ast ~fuel:200_000 prog a).Program.result in
          let r2 = (Interp.run_ast ~fuel:200_000 t a).Program.result in
          match (r1, r2) with
          | Program.Value v1, Program.Value v2 -> Secpol_core.Value.equal v1 v2
          | Program.Value _, Program.Diverged ->
              (* Legal only when the bound was insufficient; the generator's
                 loops run at most 3 iterations per level, so 4 suffices for
                 un-nested loops; nested loops multiply. Accept divergence
                 (never-wrong), reject wrong values. *)
              true
          | Program.Diverged, Program.Diverged -> true
          | _ -> false)
        (Space.enumerate (Generator.space_for params)))

(* --- duplication and halt splitting -------------------------------------- *)

let test_sink_equivalence () =
  let e = Paper.ex9 in
  let dup = Transforms.sink_into_branches e.Paper.prog in
  check_equiv "duplication preserves semantics" e.Paper.prog dup e.Paper.space

let prop_sink_preserves_semantics =
  let params = Generator.default in
  qtest ~count:300 "duplication preserves semantics"
    (Generator.arbitrary params)
    (fun prog ->
      Transforms.equivalent_on prog (Transforms.sink_into_branches prog)
        (Generator.space_for params)
      = Ok ())

let prop_split_halts_preserves_semantics =
  let params = Generator.default in
  qtest ~count:300 "halt splitting preserves graph semantics"
    (Generator.arbitrary params)
    (fun prog ->
      let g = Compile.compile prog in
      let g' = Transforms.split_halts g in
      Seq.for_all
        (fun a ->
          let o1 = Interp.run_graph g a and o2 = Interp.run_graph g' a in
          match (o1.Program.result, o2.Program.result) with
          | Program.Value v1, Program.Value v2 ->
              Secpol_core.Value.equal v1 v2 && o1.Program.steps = o2.Program.steps
          | Program.Diverged, Program.Diverged -> true
          | _ -> false)
        (Space.enumerate (Generator.space_for params)))

let test_split_halts_structure () =
  let e = Paper.ex9 in
  let dup = Transforms.sink_into_branches e.Paper.prog in
  let g = Compile.compile dup in
  let g' = Transforms.split_halts g in
  let halts gr =
    List.length
      (List.filter
         (fun i -> gr.Secpol_flowgraph.Graph.nodes.(i) = Secpol_flowgraph.Graph.Halt)
         (List.init (Secpol_flowgraph.Graph.node_count gr) Fun.id))
  in
  Alcotest.(check int) "one shared halt before" 1 (halts g);
  Alcotest.(check int) "two private halts after" 2 (halts g')

(* --- the graph-level diamond transform ------------------------------------ *)

module Graph_ite = Secpol_transform.Graph_ite
module Graph = Secpol_flowgraph.Graph

let test_graph_ite_finds_diamonds () =
  let g = Compile.compile Paper.ex7.Paper.prog in
  Alcotest.(check bool) "ex7 has rewritable diamonds" true
    (Graph_ite.diamonds g <> []);
  let g' = Graph_ite.rewrite g in
  Alcotest.(check (list int)) "none remain after the fixpoint" []
    (Graph_ite.diamonds g');
  (* All decisions are gone: ex7 is two pure diamonds. *)
  let decisions gr =
    Array.fold_left
      (fun n -> function Graph.Decision _ -> n + 1 | _ -> n)
      0 gr.Graph.nodes
  in
  Alcotest.(check int) "branch-free" 0 (decisions g')

let test_graph_ite_matches_ast_ite_on_ex7 () =
  let e = Paper.ex7 in
  let q = Paper.program e in
  let g' = Graph_ite.rewrite (Compile.compile e.Paper.prog) in
  let m = Dynamic.mechanism (Dynamic.config ~mode:Dynamic.Surveillance e.Paper.policy) g' in
  check_ratio "graph-level transform also reaches 100%" ~expected:1.0 m ~q
    e.Paper.space;
  check_sound "and stays sound" e.Paper.policy m e.Paper.space

let test_graph_ite_leaves_loops_alone () =
  let e = Paper.loop_then_secretfree in
  let g = Compile.compile e.Paper.prog in
  let g' = Graph_ite.rewrite g in
  (* The loop decision must survive (it is not a diamond). *)
  let decisions gr =
    Array.fold_left
      (fun n -> function Graph.Decision _ -> n + 1 | _ -> n)
      0 gr.Graph.nodes
  in
  Alcotest.(check int) "loop decision kept" 1 (decisions g')

let test_graph_ite_rejects_mechanism_graphs () =
  let module Instrument = Secpol_taint.Instrument in
  let g =
    Instrument.instrument Instrument.Untimed
      ~allowed:(Secpol_core.Iset.of_list [ 1 ])
      (Compile.compile Paper.ex7.Paper.prog)
  in
  match Graph_ite.rewrite g with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "instrumented graphs must be rejected"

let prop_graph_ite_preserves_semantics =
  let params = Generator.default in
  qtest ~count:300 "graph diamond collapse preserves output values"
    (Generator.arbitrary params)
    (fun prog ->
      let g = Compile.compile prog in
      let g' = Graph_ite.rewrite g in
      Seq.for_all
        (fun a ->
          let r1 = (Interp.run_graph g a).Program.result in
          let r2 = (Interp.run_graph g' a).Program.result in
          match (r1, r2) with
          | Program.Value v1, Program.Value v2 -> Secpol_core.Value.equal v1 v2
          | Program.Diverged, Program.Diverged -> true
          | Program.Fault _, Program.Fault _ -> true
          | _ -> false)
        (Space.enumerate (Generator.space_for params)))

let prop_graph_ite_surveillance_sound =
  let params = Generator.default in
  qtest ~count:200 "surveillance after the graph transform is sound"
    (Generator.arbitrary params)
    (fun prog ->
      let g' = Graph_ite.rewrite (Compile.compile prog) in
      let space = Generator.space_for params in
      List.for_all
        (fun policy ->
          Soundness.is_sound policy
            (Dynamic.mechanism (Dynamic.config ~mode:Dynamic.Surveillance policy) g')
            space)
        [ Policy.allow_none; Policy.allow [ 0 ]; Policy.allow [ 1 ] ])

(* --- bounded mechanism synthesis (Section 4's general recipe) ----------- *)

module Search = Secpol_transform.Search

let search_ratio (e : Paper.entry) =
  let r =
    Search.search ~policy:e.Paper.policy ~space:e.Paper.space e.Paper.prog
  in
  (r.Search.best_ratio, r.Search.maximal_ratio, r)

let test_search_closes_ex7 () =
  let best, mx, _ = search_ratio Paper.ex7 in
  Alcotest.(check (float 1e-9)) "reaches maximal on ex7" mx best;
  Alcotest.(check (float 1e-9)) "which is total" 1.0 best

let test_search_keeps_ex8_baseline () =
  (* The harmful transform is in the pool; the join keeps the better
     component, so the search can only match-or-beat plain surveillance. *)
  let best, mx, _ = search_ratio Paper.ex8 in
  Alcotest.(check (float 1e-9)) "matches maximal on ex8" mx best

let test_search_rescues_loops () =
  let best, mx, _ = search_ratio Paper.loop_then_secretfree in
  Alcotest.(check (float 1e-9)) "while transform found" mx best

let test_search_gap_remains_on_scoped_trap () =
  (* Theorem 4's practical face: no sequence in the pool closes this gap. *)
  let best, mx, r = search_ratio Paper.scoped_trap in
  Alcotest.(check (float 1e-9)) "maximal serves a quarter" 0.25 mx;
  Alcotest.(check (float 1e-9)) "the search finds nothing" 0.0 best;
  Alcotest.(check bool) "yet every candidate it kept is sound" true
    (List.for_all
       (fun c ->
         Soundness.is_sound Paper.scoped_trap.Paper.policy c.Search.mechanism
           Paper.scoped_trap.Paper.space)
       r.Search.candidates)

let test_search_result_is_sound_mechanism () =
  List.iter
    (fun (e : Paper.entry) ->
      let r = Search.search ~policy:e.Paper.policy ~space:e.Paper.space e.Paper.prog in
      check_sound (e.Paper.name ^ ": searched mechanism sound") e.Paper.policy
        r.Search.best e.Paper.space;
      (match
         Mechanism.check_protects r.Search.best
           (Interp.ast_program e.Paper.prog)
           e.Paper.space
       with
      | Ok () -> ()
      | Error _ -> Alcotest.failf "%s: search result lies" e.Paper.name);
      Alcotest.(check bool)
        (e.Paper.name ^ ": bounded by maximal")
        true
        (r.Search.best_ratio <= r.Search.maximal_ratio +. 1e-9))
    [ Paper.ex7; Paper.ex8; Paper.ex9; Paper.forgetting; Paper.constant_branch ]

let () =
  Alcotest.run "secpol-transform"
    [
      ( "ite",
        [
          Alcotest.test_case "flattens" `Quick test_ite_flattens;
          Alcotest.test_case "ex7-wins" `Quick test_ex7_transform_wins;
          Alcotest.test_case "ex7-needs-simplify" `Quick test_ex7_needs_simplification;
          Alcotest.test_case "ex8-hurts" `Quick test_ex8_transform_hurts;
          prop_ite_preserves_semantics;
          prop_ite_surveillance_still_sound;
        ] );
      ( "while",
        [
          Alcotest.test_case "equivalence" `Quick test_while_transform_equivalence;
          Alcotest.test_case "rescues-surveillance" `Quick test_while_transform_rescues_surveillance;
          prop_while_transform_preserves_semantics;
        ] );
      ( "duplication",
        [
          Alcotest.test_case "sink-equivalence" `Quick test_sink_equivalence;
          prop_sink_preserves_semantics;
          prop_split_halts_preserves_semantics;
          Alcotest.test_case "split-structure" `Quick test_split_halts_structure;
        ] );
      ( "graph-ite",
        [
          Alcotest.test_case "finds-diamonds" `Quick test_graph_ite_finds_diamonds;
          Alcotest.test_case "matches-ast-ite" `Quick test_graph_ite_matches_ast_ite_on_ex7;
          Alcotest.test_case "leaves-loops" `Quick test_graph_ite_leaves_loops_alone;
          Alcotest.test_case "rejects-mechanisms" `Quick test_graph_ite_rejects_mechanism_graphs;
          prop_graph_ite_preserves_semantics;
          prop_graph_ite_surveillance_sound;
        ] );
      ( "search",
        [
          Alcotest.test_case "closes-ex7" `Quick test_search_closes_ex7;
          Alcotest.test_case "keeps-ex8" `Quick test_search_keeps_ex8_baseline;
          Alcotest.test_case "rescues-loops" `Quick test_search_rescues_loops;
          Alcotest.test_case "gap-remains" `Quick test_search_gap_remains_on_scoped_trap;
          Alcotest.test_case "sound-result" `Quick test_search_result_is_sound_mechanism;
        ] );
    ]
