(* The observability postulate, live: a program whose VALUE is the constant
   1 on every input, yet which announces the secret through its running
   time - and the two Section 3 mechanisms, one of which closes the channel
   (Theorem 3') while the other only moves it into its violation notices.

       dune exec examples/timing_channel.exe *)

module Value = Secpol_core.Value
module Space = Secpol_core.Space
module Policy = Secpol_core.Policy
module Program = Secpol_core.Program
module Mechanism = Secpol_core.Mechanism
module Soundness = Secpol_core.Soundness
module Ast = Secpol_flowgraph.Ast
module Var = Secpol_flowgraph.Var
module Expr = Secpol_flowgraph.Expr
module Compile = Secpol_flowgraph.Compile
module Interp = Secpol_flowgraph.Interp
module Dynamic = Secpol_taint.Dynamic
module Leakage = Secpol_probe.Leakage
open Expr.Build

let () =
  (* y is always 1; the loop spins x0 times first. *)
  let prog =
    Ast.prog ~name:"constant-but-slow" ~arity:1
      (Ast.seq
         [
           Ast.Assign (Var.Reg 0, x 0);
           Ast.While (r 0 >: i 0, Ast.Assign (Var.Reg 0, r 0 -: i 1));
           Ast.Assign (Var.Out, i 1);
         ])
  in
  let g = Compile.compile prog in
  let q = Interp.graph_program g in
  Format.printf "%a@.@." Ast.pp_prog prog;

  print_endline "outputs and step counts:";
  List.iter
    (fun v ->
      let o = Program.run q [| Value.int v |] in
      match o.Program.result with
      | Program.Value out ->
          Printf.printf "  Q(%d) = %s in %d steps\n" v (Value.to_string out)
            o.Program.steps
      | _ -> assert false)
    [ 0; 1; 4; 7 ];

  let policy = Policy.allow_none in
  let space = Space.ints ~lo:0 ~hi:7 ~arity:1 in
  let verdict config m =
    match Soundness.check ~config policy m space with
    | Soundness.Sound -> "sound"
    | Soundness.Unsound _ -> "UNSOUND"
  in
  let bare = Mechanism.of_program q in
  Printf.printf "\nbare program, time hidden:     %s\n"
    (verdict Soundness.default bare);
  Printf.printf "bare program, time observable: %s  (%.3f bits leaked)\n"
    (verdict Soundness.timed bare)
    (Leakage.of_program ~view:`Timed policy q space).Leakage.avg_bits;

  (* Surveillance suppresses the value at halt - but the HALT arrives at a
     secret-dependent moment, so its violation notices tick out the secret. *)
  let ms = Dynamic.mechanism (Dynamic.config ~mode:Dynamic.Surveillance policy) g in
  Printf.printf "\nsurveillance (suppress at halt), time observable: %s\n"
    (verdict Soundness.timed ms);
  Printf.printf "  leaked through violation timing: %.3f bits\n"
    (Leakage.of_mechanism ~view:`Timed policy ms space).Leakage.avg_bits;

  (* The Theorem 3' mechanism aborts at the first disallowed TEST - before
     the secret can shape the schedule. *)
  let mt = Dynamic.mechanism (Dynamic.config ~mode:Dynamic.Timed policy) g in
  Printf.printf "\ntimed surveillance (abort at the test), time observable: %s\n"
    (verdict Soundness.timed mt);
  Printf.printf "  leaked: %.3f bits\n"
    (Leakage.of_mechanism ~view:`Timed policy mt space).Leakage.avg_bits;
  List.iter
    (fun v ->
      let r = Mechanism.respond mt [| Value.int v |] in
      Printf.printf "  M'(%d) denies at step %d\n" v r.Mechanism.steps)
    [ 0; 4; 7 ]
