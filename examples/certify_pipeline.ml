(* Section 5 as a build pipeline: given a program and a policy, try the
   cheapest enforcement first and escalate -

     1. whole-program certification        (run it bare, zero overhead)
     2. per-halt guard after duplication   (still zero runtime bookkeeping)
     3. surveillance on transformed code   (ite / while transforms)
     4. plain surveillance                 (full dynamic monitoring)

   and report, for each stage, how much of the input space the resulting
   sound mechanism serves. Theorem 4 says no stage list is ever optimal for
   all programs; this one is honest about what each rung buys.

       dune exec examples/certify_pipeline.exe *)

module Policy = Secpol_core.Policy
module Mechanism = Secpol_core.Mechanism
module Soundness = Secpol_core.Soundness
module Completeness = Secpol_core.Completeness
module Maximal = Secpol_core.Maximal
module Ast = Secpol_flowgraph.Ast
module Compile = Secpol_flowgraph.Compile
module Interp = Secpol_flowgraph.Interp
module Dynamic = Secpol_taint.Dynamic
module Certify = Secpol_staticflow.Certify
module Halt_guard = Secpol_staticflow.Halt_guard
module Transforms = Secpol_transform.Transforms
module Tabulate = Secpol_probe.Tabulate
module Paper = Secpol_corpus.Paper_programs

type stage = { label : string; build : Paper.entry -> Mechanism.t option }

let stages =
  [
    {
      label = "1 certify, run bare";
      build =
        (fun e ->
          if Certify.certified ~policy:e.Paper.policy e.Paper.prog then
            Some (Certify.mechanism ~policy:e.Paper.policy e.Paper.prog)
          else None);
    };
    {
      label = "2 duplicate + halt guard";
      build =
        (fun e ->
          let g =
            Transforms.split_halts
              (Compile.compile (Transforms.sink_into_branches e.Paper.prog))
          in
          Some (Halt_guard.mechanism ~policy:e.Paper.policy g));
    };
    {
      label = "3 ite transform + surveillance";
      build =
        (fun e ->
          Some
            (Dynamic.mechanism
                 (Dynamic.config ~mode:Dynamic.Surveillance e.Paper.policy)
                 (Compile.compile (Transforms.ite e.Paper.prog))));
    };
    {
      label = "3b while transform + surveillance";
      build =
        (fun e ->
          let t =
            Transforms.predicate_loops ~residual:false ~bound:4 e.Paper.prog
          in
          match Transforms.equivalent_on e.Paper.prog t e.Paper.space with
          | Ok () ->
              Some
                (Dynamic.mechanism
                     (Dynamic.config ~mode:Dynamic.Surveillance e.Paper.policy)
                     (Compile.compile t))
          | Error _ -> None);
    };
    {
      label = "4 plain surveillance";
      build =
        (fun e ->
          Some
            (Dynamic.mechanism
                 (Dynamic.config ~mode:Dynamic.Surveillance e.Paper.policy)
                 (Paper.graph e)));
    };
  ]

let () =
  List.iter
    (fun name ->
      let e = Paper.find name in
      let q = Paper.program e in
      Printf.printf "\n%s under %s  -  %s\n" e.Paper.name
        (Policy.name e.Paper.policy) e.Paper.paper_ref;
      let t = Tabulate.create ~header:[ "stage"; "applicable"; "serves"; "sound" ] in
      let best = ref ("none", 0.0) in
      List.iter
        (fun s ->
          match s.build e with
          | None -> Tabulate.add_row t [ s.label; "no"; "-"; "-" ]
          | Some m ->
              let ratio = Completeness.ratio m ~q e.Paper.space in
              let sound =
                match Soundness.check e.Paper.policy m e.Paper.space with
                | Soundness.Sound -> "yes"
                | Soundness.Unsound _ -> "NO"
              in
              if sound = "yes" && ratio > snd !best then best := (s.label, ratio);
              Tabulate.add_row t
                [ s.label; "yes"; Printf.sprintf "%.0f%%" (100.0 *. ratio); sound ])
        stages;
      let mx = Maximal.build e.Paper.policy q e.Paper.space in
      Tabulate.add_row t
        [
          "(maximal, brute force)";
          "-";
          Printf.sprintf "%.0f%%" (100.0 *. Completeness.ratio mx ~q e.Paper.space);
          "yes";
        ];
      Tabulate.print t;
      Printf.printf "pipeline picks: %s (%.0f%% served)\n" (fst !best)
        (100.0 *. snd !best))
    [ "branch-allowed"; "ex7"; "ex8"; "ex9"; "loop-then-secretfree"; "direct-flow" ]
