(* A small "real system" scenario in the paper's terms.

   An auditor queries a payroll record (department, headcount, salary).
   Company policy: the auditor may see the department and the headcount,
   never the salary. Three candidate query programs are proposed; for each
   we (a) check statically whether it can be released as-is (Section 5),
   (b) fit the surveillance monitor (Section 3) and measure how much of the
   input space it serves, and (c) compare with the best any sound mechanism
   could do (Theorem 2's maximal, brute-forced).

       dune exec examples/payroll_audit.exe *)

module Value = Secpol_core.Value
module Space = Secpol_core.Space
module Policy = Secpol_core.Policy
module Mechanism = Secpol_core.Mechanism
module Soundness = Secpol_core.Soundness
module Completeness = Secpol_core.Completeness
module Maximal = Secpol_core.Maximal
module Ast = Secpol_flowgraph.Ast
module Var = Secpol_flowgraph.Var
module Expr = Secpol_flowgraph.Expr
module Compile = Secpol_flowgraph.Compile
module Interp = Secpol_flowgraph.Interp
module Dynamic = Secpol_taint.Dynamic
module Certify = Secpol_staticflow.Certify
module Tabulate = Secpol_probe.Tabulate
open Expr.Build

(* inputs: x0 = department id (0..3), x1 = headcount (0..3), x2 = salary *)
let dept = 0
and headcount = 1
and salary = 2

let policy = Policy.allow [ dept; headcount ]
let space = Space.ints ~lo:0 ~hi:3 ~arity:3

(* Query 1: "how big is the department?" — salary never touched. *)
let q_size =
  Ast.prog ~name:"dept-size" ~arity:3
    (Ast.If
       ( x headcount >: i 2,
         Ast.Assign (Var.Out, i 1),
         Ast.Assign (Var.Out, i 0) ))

(* Query 2: "is anyone paid more than 2?" — depends on the salary. *)
let q_overpaid =
  Ast.prog ~name:"overpaid" ~arity:3
    (Ast.If
       ( x salary >: i 2,
         Ast.Assign (Var.Out, i 1),
         Ast.Assign (Var.Out, i 0) ))

(* Query 3: "headcount — except a debug path for department 3 dumps the
   salary." Static analysis must reject the whole program; at run time the
   debug path is only one department wide. *)
let q_debug =
  Ast.prog ~name:"debug-path" ~arity:3
    (Ast.If
       ( x dept =: i 3,
         Ast.Assign (Var.Out, x salary),
         Ast.Assign (Var.Out, x headcount) ))

(* Query 4: a scratch write of the salary into y, overwritten on every
   path before halting. Flow-sensitive certification forgives it. *)
let q_dead_store =
  Ast.prog ~name:"dead-store" ~arity:3
    (Ast.seq
       [
         Ast.Assign (Var.Out, x salary);
         Ast.If
           ( x dept =: i 0,
             Ast.Assign (Var.Out, i 0),
             Ast.Assign (Var.Out, x headcount) );
       ])

let () =
  Printf.printf "policy: %s (salary withheld)\n\n" (Policy.name policy);
  let t =
    Tabulate.create
      ~header:
        [ "query"; "certified?"; "release as-is"; "surveillance serves";
          "best possible" ]
  in
  List.iter
    (fun prog ->
      let g = Compile.compile prog in
      let q = Interp.graph_program g in
      let certified = Certify.certified ~policy prog in
      let bare_sound =
        match Soundness.check policy (Mechanism.of_program q) space with
        | Soundness.Sound -> "safe"
        | Soundness.Unsound _ -> "LEAKS"
      in
      let monitor = Dynamic.mechanism (Dynamic.config ~mode:Dynamic.Surveillance policy) g in
      let mx = Maximal.build policy q space in
      Tabulate.add_row t
        [
          prog.Ast.name;
          string_of_bool certified;
          bare_sound;
          Printf.sprintf "%.0f%%" (100.0 *. Completeness.ratio monitor ~q space);
          Printf.sprintf "%.0f%%" (100.0 *. Completeness.ratio mx ~q space);
        ])
    [ q_size; q_overpaid; q_debug; q_dead_store ];
  Tabulate.print t;
  print_endline "";
  print_endline "reading the table:";
  print_endline "- dept-size never touches the salary: certified, ship it bare.";
  print_endline
    "- overpaid genuinely answers a question about the salary: nothing sound\n\
    \  can serve it (best possible 0%) - the policy, not the mechanism, says no.";
  print_endline
    "- debug-path cannot be certified (some path reads the salary), but the\n\
    \  surveillance monitor salvages the three clean departments at run time.";
  print_endline
    "- dead-store overwrites the scratch salary on every path: flow-sensitive\n\
    \  certification forgives it and it is safe to release bare.";

  (* The run-time view of the debug query under the monitor. *)
  let monitor =
    Dynamic.mechanism (Dynamic.config ~mode:Dynamic.Surveillance policy) (Compile.compile q_debug)
  in
  print_endline "\ndebug-path under the monitor:";
  List.iter
    (fun (d, h, s) ->
      let reply = Mechanism.respond monitor [| Value.int d; Value.int h; Value.int s |] in
      let shown =
        match reply.Mechanism.response with
        | Mechanism.Granted v -> Value.to_string v
        | Mechanism.Denied n -> "violation " ^ n
        | _ -> "<?>"
      in
      Printf.printf "  dept=%d headcount=%d salary=%d -> %s\n" d h s shown)
    [ (0, 3, 1); (2, 3, 1); (3, 3, 1); (3, 3, 2) ]
