(* Quickstart: write a two-input program, state a policy, and watch the
   surveillance mechanism enforce it.

       dune exec examples/quickstart.exe *)

module Value = Secpol_core.Value
module Space = Secpol_core.Space
module Policy = Secpol_core.Policy
module Mechanism = Secpol_core.Mechanism
module Soundness = Secpol_core.Soundness
module Completeness = Secpol_core.Completeness
module Ast = Secpol_flowgraph.Ast
module Var = Secpol_flowgraph.Var
module Expr = Secpol_flowgraph.Expr
module Compile = Secpol_flowgraph.Compile
module Interp = Secpol_flowgraph.Interp
module Dynamic = Secpol_taint.Dynamic
open Expr.Build

let () =
  (* A program over inputs x0 (public) and x1 (secret):
       if x0 = 0 then y := x0 + 1 else y := x1 *)
  let prog =
    Ast.prog ~name:"quickstart" ~arity:2
      (Ast.If
         ( x 0 =: i 0,
           Ast.Assign (Var.Out, x 0 +: i 1),
           Ast.Assign (Var.Out, x 1) ))
  in
  Format.printf "%a@.@." Ast.pp_prog prog;

  (* The policy: the user may learn x0 and nothing about x1. *)
  let policy = Policy.allow [ 0 ] in
  Format.printf "policy: %a  (x1 is withheld)@.@." Policy.pp policy;

  (* Compile to the paper's flowchart form and wrap it in the surveillance
     protection mechanism of Section 3. *)
  let graph = Compile.compile prog in
  let monitor = Dynamic.mechanism (Dynamic.config ~mode:Dynamic.Surveillance policy) graph in

  let show inputs =
    let a = Array.of_list (List.map Value.int inputs) in
    let reply = Mechanism.respond monitor a in
    let shown =
      match reply.Mechanism.response with
      | Mechanism.Granted v -> Value.to_string v
      | Mechanism.Denied n -> "violation notice " ^ n
      | Mechanism.Hung -> "<hung>"
      | Mechanism.Failed m -> "<fault " ^ m ^ ">"
    in
    Printf.printf "  M(%s) = %s\n"
      (String.concat ", " (List.map string_of_int inputs))
      shown
  in
  print_endline "the mechanism grants the x0 = 0 branch and refuses the other:";
  show [ 0; 7 ];
  show [ 0; 8 ];
  show [ 2; 7 ];
  show [ 2; 8 ];

  (* Soundness is not an aspiration; it is checked, exhaustively. *)
  let space = Space.ints ~lo:0 ~hi:3 ~arity:2 in
  (match Soundness.check policy monitor space with
  | Soundness.Sound -> print_endline "\nexhaustive check: the mechanism is SOUND"
  | Soundness.Unsound w ->
      Format.printf "\nleak found: %a@." Soundness.pp_verdict (Soundness.Unsound w));

  (* ... unlike the bare program, which leaks x1 outright. *)
  let bare = Mechanism.of_program (Interp.graph_program graph) in
  (match Soundness.check policy bare space with
  | Soundness.Sound -> print_endline "bare program: sound (unexpected!)"
  | Soundness.Unsound w ->
      Format.printf "bare program: %a@." Soundness.pp_verdict (Soundness.Unsound w));

  Printf.printf "\ncompleteness: mechanism serves %.0f%% of the input space\n"
    (100.0
    *. Completeness.ratio monitor ~q:(Interp.graph_program graph) space)
