(* Programs as files: load While-language source, pick a policy, and let
   the library decide how to release it — the enforcement story applied to
   code you didn't write in OCaml.

       dune exec examples/file_enforcement.exe [FILE.spl] *)

module Value = Secpol_core.Value
module Space = Secpol_core.Space
module Policy = Secpol_core.Policy
module Mechanism = Secpol_core.Mechanism
module Soundness = Secpol_core.Soundness
module Completeness = Secpol_core.Completeness
module Maximal = Secpol_core.Maximal
module Ast = Secpol_flowgraph.Ast
module Compile = Secpol_flowgraph.Compile
module Interp = Secpol_flowgraph.Interp
module Dynamic = Secpol_taint.Dynamic
module Certify = Secpol_staticflow.Certify
module Source = Secpol_lang.Source
module Tabulate = Secpol_probe.Tabulate

let default_file = "examples/programs/wage_gap.spl"

let () =
  let path = if Array.length Sys.argv > 1 then Sys.argv.(1) else default_file in
  let prog =
    match Source.load path with
    | Ok p -> p
    | Error m ->
        Printf.eprintf "%s: %s\n" path m;
        exit 1
  in
  Printf.printf "loaded %s:\n\n%s\n" path (Source.to_source prog);

  let g = Compile.compile prog in
  let q = Interp.graph_program g in
  let space = Space.ints ~lo:0 ~hi:3 ~arity:prog.Ast.arity in

  (* Sweep every single-input policy plus the extremes, and report what
     each enforcement route offers. *)
  let t =
    Tabulate.create
      ~header:[ "policy"; "certified"; "bare program"; "surveillance"; "best possible" ]
  in
  let policies =
    (Policy.allow_none
    :: List.init prog.Ast.arity (fun i -> Policy.allow [ i ]))
    @ [ Policy.allow_all ~arity:prog.Ast.arity ]
  in
  List.iter
    (fun policy ->
      let bare =
        match Soundness.check policy (Mechanism.of_program q) space with
        | Soundness.Sound -> "safe to ship"
        | Soundness.Unsound _ -> "LEAKS"
      in
      let monitor = Dynamic.mechanism (Dynamic.config ~mode:Dynamic.Surveillance policy) g in
      let mx = Maximal.build policy q space in
      Tabulate.add_row t
        [
          Policy.name policy;
          string_of_bool (Certify.certified ~policy prog);
          bare;
          Printf.sprintf "%.0f%%" (100.0 *. Completeness.ratio monitor ~q space);
          Printf.sprintf "%.0f%%" (100.0 *. Completeness.ratio mx ~q space);
        ])
    policies;
  Tabulate.print t;
  print_endline
    "\n(run with any .spl file: dune exec examples/file_enforcement.exe -- path/to/prog.spl)"
