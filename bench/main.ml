(* E6: cost of enforcement. One Bechamel test per measured series.

   The paper has no measured tables (it is a theory paper); Section 5's
   argument for compile-time enforcement is nevertheless quantitative -
   "static techniques would result in efficient security enforcement" - so
   this harness measures exactly that trade:

   - interp/*          the unprotected interpreter baseline
   - monitor/*         the four dynamic mechanisms' per-run overhead
   - instrumented/*    the paper's source-to-source mechanism, run by the
                       PLAIN interpreter (rule-by-rule faithful, slower)
   - compile-time/*    one-off costs: certification, instrumentation,
                       postdominators, maximal-mechanism construction
   - attack/*          the E4 guessing strategies
   - journal/*         durable enforcement: the journaled monitor's write
                       overhead and the cost of a crash recovery
   - server/*          the enforcement service: one enforce round-trip
                       through the wire protocol and a warm engine, plus
                       loadgen throughput and tail latency rows

   Run: dune exec bench/main.exe
        dune exec bench/main.exe -- --json   # also write BENCH_secpol.json *)

open Bechamel
open Toolkit
module Iset = Secpol_core.Iset
module Value = Secpol_core.Value
module Space = Secpol_core.Space
module Policy = Secpol_core.Policy
module Maximal = Secpol_core.Maximal
module Ast = Secpol_flowgraph.Ast
module Var = Secpol_flowgraph.Var
module Expr = Secpol_flowgraph.Expr
module Compile = Secpol_flowgraph.Compile
module Interp = Secpol_flowgraph.Interp
module Graphalgo = Secpol_flowgraph.Graphalgo
module Dynamic = Secpol_taint.Dynamic
module Instrument = Secpol_taint.Instrument
module Certify = Secpol_staticflow.Certify
module Dataflow = Secpol_staticflow.Dataflow
module Certifier = Secpol_staticflow.Certifier
module Logon = Secpol_channels.Logon
module Refine = Secpol_core.Refine

(* The unified analysis facade (Bechamel already claims the name
   [Analyze], so the yardstick facade benches under [Yard]). *)
module Yard = Secpol.Analyze
open Expr.Build

(* Workload: gcd by subtraction plus a polynomial epilogue - a loop whose
   trip count depends on both inputs, heavy enough that per-box costs
   dominate dispatch noise. *)
let workload =
  Ast.prog ~name:"workload" ~arity:2
    (Ast.seq
       [
         Ast.Assign (Var.Reg 0, (x 0 *: i 3) +: i 7);
         Ast.Assign (Var.Reg 1, (x 1 *: i 5) +: i 11);
         Ast.While
           ( r 0 <>: r 1,
             Ast.If
               ( r 0 >: r 1,
                 Ast.Assign (Var.Reg 0, r 0 -: r 1),
                 Ast.Assign (Var.Reg 1, r 1 -: r 0) ) );
         Ast.Assign (Var.Out, (r 0 *: r 0) +: x 0);
       ])

let graph = Compile.compile workload
let policy = Policy.allow [ 0 ]
let inputs = [| Value.int 17; Value.int 5 |]
let space10 = Space.ints ~lo:0 ~hi:9 ~arity:2

let instrumented =
  Instrument.instrument Instrument.Untimed ~allowed:(Iset.of_list [ 0 ]) graph

let staged name f = Test.make ~name (Staged.stage f)

let interp_tests =
  Test.make_grouped ~name:"interp"
    [
      staged "ast" (fun () -> Interp.run_ast workload inputs);
      staged "graph" (fun () -> Interp.run_graph graph inputs);
    ]

let monitor_tests =
  let run mode =
    let cfg = Dynamic.config ~mode policy in
    staged (Dynamic.mode_name mode) (fun () -> Dynamic.run cfg graph inputs)
  in
  Test.make_grouped ~name:"monitor" (List.map run Dynamic.all_modes)

let instrumented_tests =
  Test.make_grouped ~name:"instrumented"
    [
      staged "surveillance-as-flowchart" (fun () ->
          Interp.run_graph instrumented inputs);
    ]

let compile_time_tests =
  Test.make_grouped ~name:"compile-time"
    [
      staged "certify-ast" (fun () ->
          Certify.analyze ~allowed:(Iset.of_list [ 0 ]) workload);
      staged "dataflow-graph" (fun () ->
          Dataflow.analyze ~allowed:(Iset.of_list [ 0 ]) graph);
      staged "instrument" (fun () ->
          Instrument.instrument Instrument.Untimed ~allowed:(Iset.of_list [ 0 ])
            graph);
      staged "postdominators" (fun () -> Graphalgo.immediate_postdominator graph);
      staged "maximal-10x10" (fun () ->
          Maximal.build policy (Interp.graph_program graph) space10);
    ]

(* Residual-monitoring workload: a long loop entirely on the allowed input
   plus one box that touches the secret but feeds no check — the certifier
   proves it and the residual plan releases every box, so the monitored
   loop body does no taint bookkeeping at all. *)
let residual_workload =
  Ast.prog ~name:"residual-workload" ~arity:2
    (Ast.seq
       [
         Ast.Assign (Var.Reg 0, (x 0 %: i 50) +: i 200);
         Ast.Assign (Var.Reg 1, i 0);
         Ast.While
           ( r 0 >: i 0,
             Ast.seq
               [
                 Ast.Assign (Var.Reg 0, r 0 -: i 1);
                 Ast.Assign (Var.Reg 1, (r 1 +: r 0) %: i 97);
               ] );
         Ast.Assign (Var.Reg 2, x 1);
         Ast.Assign (Var.Out, r 1);
       ])

let residual_graph = Compile.compile residual_workload
let residual_allowed = Iset.singleton 0

let residual_plan =
  Certifier.residual_plan ~allowed:residual_allowed residual_graph

let static_tests =
  let cfg = Dynamic.config ~mode:Dynamic.Surveillance policy in
  Test.make_grouped ~name:"static"
    [
      staged "summarize" (fun () -> Certifier.summarize graph);
      staged "certify" (fun () ->
          Certifier.certify ~allowed:(Iset.of_list [ 0 ]) graph);
      staged "residual-plan" (fun () ->
          Certifier.residual_plan ~allowed:residual_allowed residual_graph);
      staged "monitor-full" (fun () ->
          Dynamic.run cfg residual_graph inputs);
      staged "monitor-residual" (fun () ->
          Dynamic.run_residual cfg ~watch:residual_plan.Certifier.watch
            residual_graph inputs);
    ]

let journal_tests =
  let module Media = Secpol_journal.Media in
  let module Runner = Secpol_journal.Runner in
  let cfg = Dynamic.config ~mode:Dynamic.Surveillance policy in
  (* A mid-run crash image, built once: resume re-executes the suffix. *)
  let killed =
    let media = Media.memory () in
    ignore
      (Runner.run ~kill_at:40 ~snapshot_every:32 ~media ~program_ref:"workload"
         cfg graph inputs);
    match Media.load media with Some b -> b | None -> assert false
  in
  let resolve (_ : Runner.header) = Ok graph in
  Test.make_grouped ~name:"journal"
    [
      staged "surveillance-journaled" (fun () ->
          Runner.run ~media:(Media.memory ()) ~program_ref:"workload" cfg graph
            inputs);
      staged "resume-mid-run" (fun () ->
          let snapshot, journal = killed in
          Runner.resume ~resolve ~media:(Media.memory ~snapshot ~journal ()) ());
    ]

(* Tracing overhead. The null-sink series must coincide with their
   un-traced baselines: Sink.emitter on the null sink IS Emit.none, so
   "trace to nowhere" is the identical code path, and the gate at the
   bottom holds the measured difference under 2% (noise). The other two
   series price actually keeping the events: in memory, and as JSONL to a
   bit bucket. *)
let trace_tests =
  let module Sink = Secpol_trace.Sink in
  let null_emit = Sink.emitter ~graph Sink.null in
  let cfg_null =
    Dynamic.config ~mode:Dynamic.Surveillance ~emit:null_emit policy
  in
  let devnull = open_out "/dev/null" in
  let jsonl_sink = Sink.stream Sink.Jsonl devnull in
  let cfg_jsonl =
    Dynamic.config ~mode:Dynamic.Surveillance
      ~emit:(Sink.emitter ~graph jsonl_sink) policy
  in
  Test.make_grouped ~name:"trace"
    [
      staged "graph-null-sink" (fun () ->
          Interp.run_graph ~emit:null_emit graph inputs);
      staged "surveillance-null-sink" (fun () ->
          Dynamic.run cfg_null graph inputs);
      staged "surveillance-memory-sink" (fun () ->
          let sink = Sink.memory () in
          let cfg =
            Dynamic.config ~mode:Dynamic.Surveillance
              ~emit:(Sink.emitter ~graph sink) policy
          in
          Dynamic.run cfg graph inputs);
      staged "surveillance-jsonl-devnull" (fun () ->
          Dynamic.run cfg_jsonl graph inputs);
    ]

let attack_tests =
  let n = 6 and k = 3 in
  let secret = [| 3; 1; 4 |] in
  let oracle = Logon.Attack.make ~n ~k ~secret in
  Test.make_grouped ~name:"attack"
    [
      staged "brute-force" (fun () -> Logon.Attack.brute_force oracle);
      staged "prefix-walk" (fun () -> Logon.Attack.prefix_walk oracle);
    ]

(* Scaling: does monitoring overhead stay a constant factor as programs
   grow, and how fast does brute-forcing the maximal mechanism blow up
   with the input space (Theorem 4's practical shadow)? *)
let scaling_tests =
  (* Deterministic straight-line programs of growing size: n rounds of
     shuffling between three registers plus a final mix. *)
  let straightline n =
    let round _ =
      [
        Ast.Assign (Var.Reg 0, (r 1 +: i 1) *: i 3);
        Ast.Assign (Var.Reg 1, r 2 -: x 0);
        Ast.Assign (Var.Reg 2, (r 0 +: r 1) %: i 97);
      ]
    in
    Ast.prog ~name:(Printf.sprintf "straight-%d" n) ~arity:2
      (Ast.seq (List.concat (List.init n round) @ [ Ast.Assign (Var.Out, r 2 +: x 1) ]))
  in
  let monitor_at n =
    let g = Compile.compile (straightline n) in
    let cfg = Dynamic.config ~mode:Dynamic.Surveillance policy in
    staged (Printf.sprintf "surveillance-%d-boxes" (3 * n)) (fun () ->
        Dynamic.run cfg g inputs)
  in
  let maximal_at side =
    let space = Space.ints ~lo:0 ~hi:(side - 1) ~arity:2 in
    let q = Interp.graph_program graph in
    staged (Printf.sprintf "maximal-%dx%d" side side) (fun () ->
        Maximal.build policy q space)
  in
  (* Partition refinement pushes the yardstick past where brute force
     leaves the bench budget: 32x32 = 1024 points collapse to 32 classes
     under allow(0), and only the class prefixes up to the first split are
     ever run. Brute stays in the series up to 16x16 as the oracle. *)
  let maximal_refined_at side =
    let space = Space.ints ~lo:0 ~hi:(side - 1) ~arity:2 in
    let q = Interp.graph_program graph in
    let cfg = Yard.config ~algo:Yard.Refine space in
    staged (Printf.sprintf "maximal-%dx%d-refined" side side) (fun () ->
        Yard.maximal cfg policy q)
  in
  Test.make_grouped ~name:"scaling"
    (List.map monitor_at [ 4; 16; 64 ]
    @ List.map maximal_at [ 4; 8; 16 ]
    @ List.map maximal_refined_at [ 32 ])

(* The parallel engine: the same exhaustive checks and chaos sweep, routed
   through the domain pool at 1 domain vs the widest width this machine
   actually supports. Hard-coding 4 domains inverts the comparison on a
   1-core container — the pool pays domain spawn and handoff with no
   parallelism to buy it back — so the [-par] rows clamp to
   [min 4 (Domain.recommended_domain_count ())] and the
   secpol/engine/par-jobs row records the width they ran at. Every series
   returns the byte-identical result whatever [jobs] — the gates below
   enforce drift and the no-slower floor. *)
let par_jobs = min 4 (Domain.recommended_domain_count ())

let engine_tests =
  let module Sweep = Secpol_fault.Sweep in
  let module Exhaustive = Secpol_engine.Exhaustive in
  let entries = [ Secpol_corpus.Paper_programs.find "ex7" ] in
  let q = Interp.graph_program graph in
  let space16 = Space.ints ~lo:0 ~hi:15 ~arity:2 in
  let surv =
    Dynamic.mechanism (Dynamic.config ~mode:Dynamic.Surveillance policy) graph
  in
  Test.make_grouped ~name:"engine"
    [
      staged "chaos-ex7-jobs1" (fun () -> Sweep.run ~entries ~seeds:25 ~jobs:1 ());
      staged "chaos-ex7-par" (fun () ->
          Sweep.run ~entries ~seeds:25 ~jobs:par_jobs ());
      staged "soundness-16x16-jobs1" (fun () ->
          Exhaustive.check ~jobs:1 policy surv space16);
      staged "soundness-16x16-par" (fun () ->
          Exhaustive.check ~jobs:par_jobs policy surv space16);
      staged "maximal-16x16-par" (fun () ->
          Exhaustive.build_maximal ~jobs:par_jobs policy q space16);
      staged "maximal-16x16-refined" (fun () ->
          Yard.maximal (Yard.config ~jobs:1 space16) policy q);
      staged "maximal-16x16-refined-par" (fun () ->
          Yard.maximal (Yard.config ~jobs:par_jobs space16) policy q);
    ]

(* The enforcement service: one enforce round-trip through the full wire
   path — encode, frame, CRC, stream reassembly, admission, engine step,
   reply decode — with no socket in the way. A single warm engine serves
   every iteration; the virtual clock advances per call so each iteration
   is one admitted, executed, answered request. *)
let server_tests =
  let module SEngine = Secpol_server.Engine in
  let module SStore = Secpol_server.Store in
  let module SWire = Secpol_server.Wire in
  let entry = Secpol_corpus.Paper_programs.find "ex7" in
  let server_inputs =
    match Space.enumerate entry.Secpol_corpus.Paper_programs.space () with
    | Seq.Cons (a, _) -> a
    | Seq.Nil -> assert false
  in
  let now = ref 1000.0 in
  let engine = SEngine.create ~store:(SStore.memory ()) ~now:!now () in
  let conn = SEngine.open_conn engine ~now:!now in
  let stream = SWire.Stream.create () in
  let send req =
    SEngine.feed engine ~conn ~now:!now (SWire.encode_request req)
  in
  (* Open the session once; its Welcome/Session_opened bytes are drained
     before the first measured iteration. *)
  send (SWire.Hello { client = "bench" });
  send
    (SWire.Open_session
       (Secpol_server.Loadgen.session_spec ~session:"bench" ~policy ()));
  SEngine.step engine ~now:!now;
  ignore (SEngine.output engine ~conn);
  let rid = ref 0 in
  let roundtrip () =
    let request_id = !rid in
    incr rid;
    now := !now +. 1e-4;
    send
      (SWire.Enforce
         {
           SWire.session = "bench";
           request_id;
           program = entry.Secpol_corpus.Paper_programs.name;
           inputs = server_inputs;
           deadline_us = -1;
         });
    let rec wait n =
      if n = 0 then failwith "server bench: no reply";
      SEngine.step engine ~now:!now;
      SWire.Stream.feed stream ~now:!now (SEngine.output engine ~conn);
      match SWire.Stream.next stream with
      | `Frame payload -> (
          match SWire.decode_response payload with
          | Ok r -> r
          | Error _ -> failwith "server bench: undecodable reply")
      | `Await ->
          now := !now +. 1e-4;
          wait (n - 1)
      | `Corrupt _ -> failwith "server bench: corrupt reply"
    in
    wait 10
  in
  (* Pre-warm the registry so the scrape row prices a realistic payload:
     per-session series, latency histograms, cache counters all present. *)
  for _ = 1 to 64 do
    ignore (roundtrip ())
  done;
  Test.make_grouped ~name:"server"
    [
      staged "enforce-round-trip" roundtrip;
      staged "metrics-scrape" (fun () ->
          Secpol_trace.Expo.render
            (Secpol_trace.Metrics.snapshot (SEngine.metrics engine)));
    ]

let tests =
  Test.make_grouped ~name:"secpol"
    [
      interp_tests; monitor_tests; instrumented_tests; compile_time_tests;
      static_tests; attack_tests; journal_tests; trace_tests; scaling_tests;
      engine_tests; server_tests;
    ]

(* The fraction of (corpus program, allow(J)) pairs the certifier decides
   outright — Proved or Refuted, no run-time monitor needed. Reported in
   the table and in BENCH_secpol.json for trend lines. *)
let decided_fraction_pct () =
  let decided = ref 0 and total = ref 0 in
  List.iter
    (fun (e : Secpol_corpus.Paper_programs.entry) ->
      let g = Secpol_corpus.Paper_programs.graph e in
      let arity = g.Secpol_flowgraph.Graph.arity in
      List.iter
        (fun mask ->
          incr total;
          let report =
            Certifier.certify ~allowed:(Iset.of_mask mask) g
          in
          match report.Certifier.verdict with
          | Certifier.Proved | Certifier.Refuted _ -> incr decided
          | Certifier.Unknown -> ())
        (List.init (1 lsl arity) Fun.id))
    Secpol_corpus.Paper_programs.all;
  (100.0 *. float_of_int !decided /. float_of_int !total, !decided, !total)

let () =
  (* The service under sustained load: the in-process loadgen pumps the
     wire protocol through a warm engine with [window] requests
     outstanding, checking every reply against the clean monitor. Run
     first, on a quiet heap — after the Bechamel sweep the major heap is
     large enough to triple per-request latency. Throughput and tail
     latency ride along in the JSON; the server gate below holds the
     floor. *)
  let load =
    Secpol_server.Loadgen.run_engine ~requests:20_000 ~window:64
      ~entry:(Secpol_corpus.Paper_programs.find "ex7")
      ~policy ()
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:true ()
  in
  let raw = Benchmark.all cfg instances tests in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun name ols acc ->
        let ns =
          match Analyze.OLS.estimates ols with Some (e :: _) -> e | _ -> nan
        in
        (name, ns) :: acc)
      results []
    |> List.sort compare
  in
  let pct, decided, total_pairs = decided_fraction_pct () in
  let rows = rows @ [ ("secpol/static/decided-fraction-pct", pct) ] in
  (* The detected core count and the clamped parallel width ride along in
     the JSON so a trend line that regresses (or a waived speedup gate)
     can be read against the machine it ran on. *)
  let rows =
    rows
    @ [
        ( "secpol/engine/recommended-domain-count",
          float_of_int (Domain.recommended_domain_count ()) );
        ("secpol/engine/par-jobs", float_of_int par_jobs);
      ]
  in
  let rows =
    let open Secpol_server.Loadgen in
    rows
    @ [
        ("secpol/server/loadgen-rps", load.rps);
        ("secpol/server/loadgen-p50-us", load.p50_us);
        ("secpol/server/loadgen-p99-us", load.p99_us);
      ]
  in
  Printf.printf "%-45s %14s\n" "benchmark" "ns/run";
  Printf.printf "%s\n" (String.make 60 '-');
  List.iter (fun (name, ns) -> Printf.printf "%-45s %14.1f\n" name ns) rows;
  let find key =
    match List.assoc_opt key rows with Some v -> v | None -> nan
  in
  let base = find "secpol/interp/graph" in
  Printf.printf "\noverhead vs plain graph interpreter:\n";
  List.iter
    (fun mode ->
      let v = find (Printf.sprintf "secpol/monitor/%s" (Dynamic.mode_name mode)) in
      Printf.printf "  %-14s %.2fx\n" (Dynamic.mode_name mode) (v /. base))
    Dynamic.all_modes;
  Printf.printf "  %-14s %.2fx\n" "instrumented"
    (find "secpol/instrumented/surveillance-as-flowchart" /. base);
  Printf.printf "  %-14s %.2fx\n" "journaled"
    (find "secpol/journal/surveillance-journaled" /. base);
  (* The null-sink gate: tracing to nowhere must cost nothing. Both pairs
     compare physically identical code paths, so anything past 2% would
     mean an allocation or branch leaked onto the hot path. The OLS point
     estimates above carry several percent of run-to-run noise (the two
     sides are measured seconds apart), so the gate measures each pair
     directly: interleaved timing blocks, minimum per side — the minimum
     strips scheduler and cache noise, and a leaked branch would shift it
     systematically. *)
  let paired_ratio ~baseline ~traced =
    let iters = 5000 and rounds = 25 in
    let block f =
      let t0 = Unix.gettimeofday () in
      for _ = 1 to iters do
        f ()
      done;
      Unix.gettimeofday () -. t0
    in
    ignore (block baseline);
    ignore (block traced);
    let best_b = ref infinity and best_t = ref infinity in
    for _ = 1 to rounds do
      best_b := Float.min !best_b (block baseline);
      best_t := Float.min !best_t (block traced)
    done;
    !best_t /. !best_b
  in
  let null_emit =
    Secpol_trace.Sink.emitter ~graph Secpol_trace.Sink.null
  in
  let cfg_plain = Dynamic.config ~mode:Dynamic.Surveillance policy in
  let cfg_null =
    Dynamic.config ~mode:Dynamic.Surveillance ~emit:null_emit policy
  in
  let gate = ref true in
  Printf.printf "\nnull-sink trace overhead (gate: within 2%% of baseline, paired blocks):\n";
  List.iter
    (fun (traced_name, baseline_name, baseline, traced) ->
      let ratio = paired_ratio ~baseline ~traced in
      let ok = Float.is_finite ratio && ratio <= 1.02 in
      if not ok then gate := false;
      Printf.printf "  %-34s %.3fx vs %-26s %s\n" traced_name ratio
        baseline_name
        (if ok then "ok" else "OVER BUDGET"))
    [
      ( "secpol/trace/graph-null-sink",
        "secpol/interp/graph",
        (fun () -> ignore (Sys.opaque_identity (Interp.run_graph graph inputs))),
        fun () -> ignore (Sys.opaque_identity (Interp.run_graph ~emit:null_emit graph inputs)) );
      ( "secpol/trace/surveillance-null-sink",
        "secpol/monitor/surveillance",
        (fun () -> ignore (Sys.opaque_identity (Dynamic.run cfg_plain graph inputs))),
        fun () -> ignore (Sys.opaque_identity (Dynamic.run cfg_null graph inputs)) );
    ];
  (* The engine gate, paired like the trace gate: the same reduced chaos
     sweep at 1 vs 4 domains, minimum of interleaved rounds. Two promises:
     zero verdict drift (the reports render byte-identically — always
     enforced), and a >= 2x wall-clock speedup at 4 domains (enforced only
     where 4 cores actually exist; on smaller machines the ratio is printed
     as telemetry and the gate is waived). *)
  let module Sweep = Secpol_fault.Sweep in
  let entries = [ Secpol_corpus.Paper_programs.find "ex7" ] in
  let sweep jobs () = Sweep.run ~entries ~seeds:60 ~jobs () in
  let r1 = sweep 1 () and r4 = sweep 4 () in
  Printf.printf "\nengine gate (chaos ex7, 60 seeds, jobs=1 vs jobs=4):\n";
  if Sweep.to_json_string r1 <> Sweep.to_json_string r4 then begin
    Printf.printf "  VERDICT DRIFT: reports differ between jobs=1 and jobs=4\n";
    gate := false
  end
  else Printf.printf "  verdict drift: none (reports byte-identical)\n";
  let best f =
    let rounds = 5 in
    let best = ref infinity in
    for _ = 1 to rounds do
      let t0 = Unix.gettimeofday () in
      ignore (Sys.opaque_identity (f ()));
      best := Float.min !best (Unix.gettimeofday () -. t0)
    done;
    !best
  in
  ignore (Sys.opaque_identity (sweep 4 ()));
  let t1 = best (sweep 1) and t4 = best (sweep 4) in
  let speedup = t1 /. t4 in
  let cores = Domain.recommended_domain_count () in
  Printf.printf "  speedup: %.2fx (%d core(s) recommended)\n" speedup cores;
  if cores >= 4 then
    if speedup >= 2.0 then Printf.printf "  ok (gate: >= 2x on >= 4 cores)\n"
    else begin
      Printf.printf "  UNDER BUDGET: expected >= 2x at 4 domains on >= 4 cores\n";
      gate := false
    end
  else
    Printf.printf "  speedup gate waived: fewer than 4 cores on this machine\n";
  (* The parallel-row gate: the [-par] rows ran at [par_jobs] domains — a
     width this machine supports — so they must not be slower than their
     sequential twins. The 1.5x slack absorbs OLS run-to-run noise; the
     old hard-coded jobs:4 rows were 3-5x slower on a 1-core container,
     far outside it. *)
  Printf.printf "\nparallel-row gate (par rows at jobs=%d, <= 1.5x of jobs=1):\n"
    par_jobs;
  List.iter
    (fun (par, seq) ->
      let ratio = find par /. find seq in
      let ok = Float.is_finite ratio && ratio <= 1.5 in
      if not ok then gate := false;
      Printf.printf "  %-34s %.2fx vs %s %s\n" par ratio seq
        (if ok then "ok" else "SLOWER THAN SEQUENTIAL"))
    [
      ("secpol/engine/chaos-ex7-par", "secpol/engine/chaos-ex7-jobs1");
      ("secpol/engine/soundness-16x16-par", "secpol/engine/soundness-16x16-jobs1");
      ("secpol/engine/maximal-16x16-refined-par", "secpol/engine/maximal-16x16-refined");
    ];
  (* The refined-yardstick gate. Two promises, checked at 16x16 on the
     bench workload under allow(0):

     - zero verdict drift, ALWAYS fatal: the refined class table must
       render byte-identically to the brute oracle's under BOTH
       observables, sequentially and at [par_jobs] domains, the granted
       tally must match [Completeness.grant_count] of the brute
       mechanism, and the refined soundness check must return the brute
       verdict on a real monitor. A 32x32 fingerprint rides along so the
       new scaling row is oracle-checked at full size, not just timed.
     - a >= 5x wall-clock speedup over brute under the [`Timed]
       observable — the observable that splits classes earliest (the
       first step-count divergence), so refinement skips the most runs.
       The [`Value] ratio is printed as telemetry: gcd collapses many
       inputs to equal outputs, so value classes split late and save
       less. Paired interleaved blocks, minimum per side, like the trace
       gate but sized for half-millisecond builds. *)
  let module Exhaustive = Secpol_engine.Exhaustive in
  let q16 = Interp.graph_program graph in
  let space16 = Space.ints ~lo:0 ~hi:15 ~arity:2 in
  let space32 = Space.ints ~lo:0 ~hi:31 ~arity:2 in
  Printf.printf
    "\nrefined-yardstick gate (16x16, drift always fatal, >= 5x timed):\n";
  List.iter
    (fun (view, vname, space, side) ->
      let fp = Refine.table_fingerprint in
      let oracle = fp (Maximal.table view policy q16 space) in
      let seq_tbl, stats = Refine.table_stats view policy q16 space in
      let (par_tbl, _), _, _ =
        Exhaustive.maximal_table_refined ~view ~jobs:par_jobs policy q16 space
      in
      if oracle <> fp seq_tbl || oracle <> fp par_tbl then begin
        Printf.printf "  %s %s: VERDICT DRIFT vs the brute oracle\n" side vname;
        gate := false
      end
      else
        Printf.printf
          "  %s %s: tables bit-identical to brute (%d of %d runs, %d classes)\n"
          side vname stats.Refine.runs stats.Refine.space_size
          stats.Refine.class_count)
    [
      (`Value, "value", space16, "16x16");
      (`Timed, "timed", space16, "16x16");
      (`Timed, "timed", space32, "32x32");
    ];
  let surv16 =
    Dynamic.mechanism (Dynamic.config ~mode:Dynamic.Surveillance policy) graph
  in
  let grants_brute =
    Secpol_core.Completeness.grant_count
      (Maximal.build policy q16 space16)
      ~q:q16 space16
  in
  let ratio_refined, _ =
    Yard.maximal_ratio (Yard.config space16) policy q16
  in
  let g, t = grants_brute in
  if Float.abs (ratio_refined -. (float_of_int g /. float_of_int t)) > 1e-12
  then begin
    Printf.printf "  TALLY DRIFT: refined grant count differs from brute\n";
    gate := false
  end
  else Printf.printf "  grant tally: %d of %d points under both paths\n" g t;
  let verdict_str algo =
    Format.asprintf "%a" Secpol_core.Soundness.pp_verdict
      (fst
         (Yard.soundness
            (Yard.config ~jobs:par_jobs ~algo space16)
            policy surv16))
  in
  if verdict_str Yard.Brute <> verdict_str Yard.Refine then begin
    Printf.printf "  VERDICT DRIFT: refined soundness differs from brute\n";
    gate := false
  end
  else Printf.printf "  soundness verdict: refined = brute on surveillance\n";
  let refined_ratio view =
    let iters = 20 and rounds = 7 in
    let block f =
      let t0 = Unix.gettimeofday () in
      for _ = 1 to iters do
        ignore (Sys.opaque_identity (f ()))
      done;
      Unix.gettimeofday () -. t0
    in
    let brute () = Maximal.table view policy q16 space16 in
    let refined () = Refine.table view policy q16 space16 in
    ignore (block brute);
    ignore (block refined);
    let best_b = ref infinity and best_r = ref infinity in
    for _ = 1 to rounds do
      best_b := Float.min !best_b (block brute);
      best_r := Float.min !best_r (block refined)
    done;
    !best_b /. !best_r
  in
  let timed_x = refined_ratio `Timed and value_x = refined_ratio `Value in
  Printf.printf "  speedup: %.2fx timed (gated), %.2fx value (telemetry)\n"
    timed_x value_x;
  if timed_x >= 5.0 then Printf.printf "  ok (gate: >= 5x under `Timed)\n"
  else begin
    Printf.printf "  UNDER BUDGET: expected refined >= 5x brute at 16x16\n";
    gate := false
  end;
  (* The server gate: the enforcement service must clear 10k enforce
     requests per second through the full wire path with zero fail-open —
     a grant the clean monitor would not issue, a denial outside F, or a
     dropped reply all count. *)
  (let open Secpol_server.Loadgen in
   Printf.printf
     "\nserver gate (in-process loadgen, %d requests, window 64):\n"
     load.requests;
   Printf.printf
     "  %.0f req/s, p50 %.0f us, p99 %.0f us; %d granted, %d denied, %d \
      overloads, %d fail-open\n"
     load.rps load.p50_us load.p99_us load.granted load.denied load.overloads
     load.fail_open;
   if load.fail_open > 0 then begin
     Printf.printf "  FAIL-OPEN: a reply disagreed with the clean monitor\n";
     gate := false
   end;
   if load.rps < 10_000.0 then begin
     Printf.printf "  UNDER BUDGET: expected >= 10000 req/s\n";
     gate := false
   end;
   if load.fail_open = 0 && load.rps >= 10_000.0 then
     Printf.printf "  ok (gate: zero fail-open, >= 10000 req/s)\n");
  (* The scrape gate, paired like the trace gate: the same loadgen run
     with and without a simulated 10 Hz /metrics scraper (snapshot +
     Prometheus render in-loop — exactly what a GET costs the daemon).
     Each round runs both sides back to back and keeps its own ratio;
     the gate takes the best round, because adjacent runs share a noise
     regime where runs minutes apart on a contended box do not — if any
     round shows scraping keeping >= 98% of throughput, the intrinsic
     cost is within budget and the slow rounds were the machine, not the
     scraper. Alternating order inside the round cancels drift. *)
  (let open Secpol_server.Loadgen in
   let entry = Secpol_corpus.Paper_programs.find "ex7" in
   let run scrape_hz () = run_engine ~requests:10_000 ?scrape_hz ~entry ~policy () in
   ignore (Sys.opaque_identity (run None ()));
   ignore (Sys.opaque_identity (run (Some 10.) ()));
   let rounds = 5 in
   let best = ref 0. and at_best = ref (0., 0.) and scrapes = ref 0 in
   for round = 1 to rounds do
     let plain_first = round land 1 = 1 in
     let p = ref 0. and s = ref 0. in
     let side scraped =
       if scraped then begin
         let r = run (Some 10.) () in
         s := r.rps;
         scrapes := !scrapes + r.scrapes
       end
       else p := (run None ()).rps
     in
     side (not plain_first);
     side plain_first;
     let ratio = !s /. !p in
     if Float.is_finite ratio && ratio > !best then begin
       best := ratio;
       at_best := (!s, !p)
     end
   done;
   let s_rps, p_rps = !at_best in
   Printf.printf
     "\nscrape gate (10k requests, 10 Hz scraper, best of %d paired rounds):\n"
     rounds;
   Printf.printf
     "  %.0f req/s scraped vs %.0f req/s unscraped (%.3fx, %d scrape(s))\n"
     s_rps p_rps !best !scrapes;
   if !best >= 0.98 then
     Printf.printf "  ok (gate: scraping costs <= 2%% rps)\n"
   else begin
     Printf.printf "  OVER BUDGET: 10 Hz scraping cost more than 2%% rps\n";
     gate := false
   end);
  (* The residual-monitor gate: under the certifier's plan the monitored
     replies stay bit-identical in every mode on a grid of inputs, and the
     monitor does strictly less surveillance work (fewer watched boxes than
     committed boxes — the loop body is released). Deterministic, so a hard
     gate rather than a timing one. *)
  Printf.printf
    "\nresidual gate (%s, allow(%s)): bit-identical replies, fewer monitored \
     boxes:\n"
    residual_graph.Secpol_flowgraph.Graph.name
    (Iset.to_string residual_allowed);
  let residual_inputs =
    List.concat_map
      (fun a -> List.map (fun b -> [| Value.int a; Value.int b |]) [ 0; 3; 9 ])
      [ 0; 7; 49 ]
  in
  let max_watched = ref 0 and min_committed = ref max_int in
  List.iter
    (fun mode ->
      let cfg = Dynamic.config ~mode (Policy.allow [ 0 ]) in
      List.iter
        (fun a ->
          let full = Dynamic.run cfg residual_graph a in
          let residual, stats =
            Dynamic.run_residual cfg ~watch:residual_plan.Certifier.watch
              residual_graph a
          in
          if full <> residual then begin
            Printf.printf "  REPLY DRIFT under %s\n" (Dynamic.mode_name mode);
            gate := false
          end;
          let committed =
            stats.Dynamic.watched_boxes + stats.Dynamic.skipped_boxes
          in
          max_watched := max !max_watched stats.Dynamic.watched_boxes;
          min_committed := min !min_committed committed)
        residual_inputs)
    Dynamic.all_modes;
  Printf.printf "  watched <= %d of >= %d committed boxes per run%s\n"
    !max_watched !min_committed
    (if !max_watched < !min_committed then " (ok)" else "");
  if !max_watched >= !min_committed then begin
    Printf.printf "  NO REDUCTION: the residual plan released nothing\n";
    gate := false
  end;
  Printf.printf
    "\nstatically decided: %d of %d (corpus x allow(J)) pairs (%.1f%%)\n"
    decided total_pairs pct;
  (* Machine-readable results for CI trend lines: series name -> ns/run.
     Hand-rolled JSON; names are [A-Za-z0-9/_-] so no escaping is needed. *)
  if Array.exists (( = ) "--json") Sys.argv then begin
    let oc = open_out "BENCH_secpol.json" in
    output_string oc "{\n";
    List.iteri
      (fun i (name, ns) ->
        Printf.fprintf oc "  %S: %.1f%s\n" name ns
          (if i = List.length rows - 1 then "" else ","))
      rows;
    output_string oc "}\n";
    close_out oc;
    Printf.printf "\nwrote BENCH_secpol.json (%d series)\n" (List.length rows)
  end;
  if not !gate then exit 1
