(* The experiment harness: one driver per experiment in DESIGN.md's index.
   `experiments.exe` runs them all; `experiments.exe e3 e7` runs a subset.
   EXPERIMENTS.md records each table next to the paper claim it checks. *)

module Iset = Secpol_core.Iset
module Value = Secpol_core.Value
module Space = Secpol_core.Space
module Policy = Secpol_core.Policy
module Program = Secpol_core.Program
module Mechanism = Secpol_core.Mechanism
module Soundness = Secpol_core.Soundness
module Completeness = Secpol_core.Completeness
module Maximal = Secpol_core.Maximal
module Ast = Secpol_flowgraph.Ast
module Var = Secpol_flowgraph.Var
module Expr = Secpol_flowgraph.Expr
module Compile = Secpol_flowgraph.Compile
module Interp = Secpol_flowgraph.Interp
module Dynamic = Secpol_taint.Dynamic
module Instrument = Secpol_taint.Instrument
module Certify = Secpol_staticflow.Certify
module Halt_guard = Secpol_staticflow.Halt_guard
module Transforms = Secpol_transform.Transforms
module Machine = Secpol_minsky.Machine
module Dmm = Secpol_minsky.Dmm
module Filesys = Secpol_filesys.Filesys
module Tape = Secpol_channels.Tape
module Logon = Secpol_channels.Logon
module Partition = Secpol_probe.Partition
module Leakage = Secpol_probe.Leakage
module Tabulate = Secpol_probe.Tabulate
module Paper = Secpol_corpus.Paper_programs
module Generator = Secpol_corpus.Generator
open Expr.Build

let pct r = Printf.sprintf "%3.0f%%" (100.0 *. r)
let bits b = Printf.sprintf "%.3f" b

let sound_mark ?config policy m space =
  match Soundness.check ?config policy m space with
  | Soundness.Sound -> "sound"
  | Soundness.Unsound _ -> "UNSOUND"

let header title = Printf.printf "\n=== %s ===\n" title

(* ---------------------------------------------------------------- E1 --- *)

(* Completeness of every mechanism on every corpus program, against the
   brute-force maximal yardstick. *)
let e1 () =
  header "E1  Completeness table (fraction of inputs served, per mechanism)";
  let t =
    Tabulate.create
      ~header:
        [ "program"; "policy"; "high-water"; "surveillance"; "scoped"; "timed";
          "static"; "halt-guard"; "ite+surv"; "while+surv"; "maximal" ]
  in
  List.iter
    (fun (e : Paper.entry) ->
      let g = Paper.graph e in
      let q = Paper.program e in
      let space = e.Paper.space in
      let policy = e.Paper.policy in
      let dyn mode = Dynamic.mechanism (Dynamic.config ~mode policy) g in
      let ratio m = pct (Completeness.ratio m ~q space) in
      let ite_m =
        Dynamic.mechanism
            (Dynamic.config ~mode:Dynamic.Surveillance policy)
            (Compile.compile (Transforms.ite e.Paper.prog))
      in
      let while_m =
        let tprog = Transforms.predicate_loops ~residual:false ~bound:4 e.Paper.prog in
        match Transforms.equivalent_on e.Paper.prog tprog space with
        | Ok () ->
            Some
              (Dynamic.mechanism
                   (Dynamic.config ~mode:Dynamic.Surveillance policy)
                   (Compile.compile tprog))
        | Error _ -> None
      in
      Tabulate.add_row t
        [
          e.Paper.name;
          Policy.name policy;
          ratio (dyn Dynamic.High_water);
          ratio (dyn Dynamic.Surveillance);
          ratio (dyn Dynamic.Scoped);
          ratio (dyn Dynamic.Timed);
          ratio (Certify.mechanism ~policy e.Paper.prog);
          ratio
            (Halt_guard.mechanism ~policy
               (Transforms.split_halts
                  (Compile.compile (Transforms.sink_into_branches e.Paper.prog))));
          ratio ite_m;
          (match while_m with Some m -> ratio m | None -> "-");
          ratio (Maximal.build policy q space);
        ])
    Paper.all;
  Tabulate.print t;
  print_string
    "(scoped is the deliberately unsound baseline; every other column is a\n\
    \ sound mechanism, so its ratio is bounded by maximal's.)\n"

(* ---------------------------------------------------------------- E2 --- *)

let e2 () =
  header "E2  Soundness matrix (Theorems 3 and 3'): mechanism x observability";
  let t =
    Tabulate.create
      ~header:[ "program"; "mechanism"; "time hidden"; "time observable" ]
  in
  List.iter
    (fun (e : Paper.entry) ->
      let g = Paper.graph e in
      let policy = e.Paper.policy in
      List.iter
        (fun mode ->
          let m = Dynamic.mechanism (Dynamic.config ~mode policy) g in
          Tabulate.add_row t
            [
              e.Paper.name;
              Dynamic.mode_name mode;
              sound_mark policy m e.Paper.space;
              sound_mark ~config:Soundness.timed policy m e.Paper.space;
            ])
        Dynamic.all_modes)
    [ Paper.forgetting; Paper.scoped_trap; Paper.loop_then_secretfree ];
  Tabulate.print t;
  print_string
    "(Theorem 3: surveillance sound while time is hidden; Theorem 3': only\n\
    \ the timed variant survives an observable clock; scoped leaks even\n\
    \ untimed on its trap program.)\n"

(* ---------------------------------------------------------------- E3 --- *)

(* Timing leakage as the secret's range grows: the secret sets a loop's
   iteration count; output value is constant. *)
let timing_program =
  Ast.prog ~name:"loop-on-secret" ~arity:1
    (Ast.seq
       [
         Ast.Assign (Var.Reg 0, x 0);
         Ast.While (r 0 >: i 0, Ast.Assign (Var.Reg 0, r 0 -: i 1));
         Ast.Assign (Var.Out, i 1);
       ])

let e3 () =
  header "E3  Timing channel: bits leaked through the step count (allow())";
  let t =
    Tabulate.create
      ~header:
        [ "secret range"; "raw Q (timed)"; "surveillance (timed)";
          "timed surv. (timed)"; "raw Q (untimed)" ]
  in
  let g = Compile.compile timing_program in
  let policy = Policy.allow_none in
  List.iter
    (fun hi ->
      let space = Space.ints ~lo:0 ~hi ~arity:1 in
      let leak ?(view = `Timed) m = (Leakage.of_mechanism ~view policy m space).Leakage.avg_bits in
      let raw = Mechanism.of_program (Interp.graph_program g) in
      let ms = Dynamic.mechanism (Dynamic.config ~mode:Dynamic.Surveillance policy) g in
      let mt = Dynamic.mechanism (Dynamic.config ~mode:Dynamic.Timed policy) g in
      Tabulate.add_row t
        [
          Printf.sprintf "0..%d" hi;
          bits (leak raw);
          bits (leak ms);
          bits (leak mt);
          bits (leak ~view:`Value raw);
        ])
    [ 1; 3; 7; 15 ];
  Tabulate.print t;
  print_string
    "(raw Q leaks log2(range) bits through its running time even though its\n\
    \ value is constant; plain surveillance still leaks via the TIME of its\n\
    \ violation notices; the timed variant aborts at the tainted decision at\n\
    \ a secret-independent moment and leaks nothing.)\n"

(* ---------------------------------------------------------------- E4 --- *)

let e4 () =
  header "E4  Password work factor: n^k brute force vs n*k page-boundary walk";
  let n = 8 in
  let t =
    Tabulate.create
      ~header:
        [ "k"; "n^k (worst)"; "measured brute (worst secret)";
          "n*k (bound)"; "measured walk (worst secret)"; "avg brute"; "avg walk" ]
  in
  let rng = Random.State.make [| 7 |] in
  List.iter
    (fun k ->
      let worst = Array.make k (n - 1) in
      let o = Logon.Attack.make ~n ~k ~secret:worst in
      let trials = 30 in
      let avg f =
        let total = ref 0 in
        for _ = 1 to trials do
          let s = Logon.Attack.random_secret rng ~n ~k in
          total := !total + f (Logon.Attack.make ~n ~k ~secret:s)
        done;
        float_of_int !total /. float_of_int trials
      in
      Tabulate.add_row t
        [
          string_of_int k;
          string_of_int (int_of_float (float_of_int n ** float_of_int k));
          string_of_int (Logon.Attack.brute_force o);
          string_of_int (n * k);
          string_of_int (Logon.Attack.prefix_walk o);
          Printf.sprintf "%.1f" (avg Logon.Attack.brute_force);
          Printf.sprintf "%.1f" (avg Logon.Attack.prefix_walk);
        ])
    [ 1; 2; 3; 4; 5 ];
  Tabulate.print t;
  print_string
    "(the forgotten observable - page movement - collapses the work factor\n\
    \ from exponential to linear, exactly as Section 2 recounts.)\n"

(* ---------------------------------------------------------------- E5 --- *)

let e5 () =
  header "E5  Theorem 1: the join of sound mechanisms, measured";
  let t =
    Tabulate.create
      ~header:[ "program"; "M1"; "M2"; "M1 ratio"; "M2 ratio"; "join ratio"; "join sound" ]
  in
  List.iter
    (fun (e : Paper.entry) ->
      let g = Paper.graph e in
      let q = Paper.program e in
      let policy = e.Paper.policy in
      let space = e.Paper.space in
      let m1 = Dynamic.mechanism (Dynamic.config ~mode:Dynamic.Surveillance policy) g in
      let m2 =
        Dynamic.mechanism
            (Dynamic.config ~mode:Dynamic.Surveillance policy)
            (Compile.compile (Transforms.ite e.Paper.prog))
      in
      let j = Mechanism.join m1 m2 in
      Tabulate.add_row t
        [
          e.Paper.name;
          "surveillance";
          "ite+surveillance";
          pct (Completeness.ratio m1 ~q space);
          pct (Completeness.ratio m2 ~q space);
          pct (Completeness.ratio j ~q space);
          sound_mark policy j space;
        ])
    [ Paper.ex7; Paper.ex8; Paper.forgetting; Paper.constant_branch ];
  Tabulate.print t;
  print_string
    "(the join serves the union of what its components serve - on ex8 the\n\
    \ transform loses ground and the join simply keeps the better part.)\n"

(* ---------------------------------------------------------------- E7 --- *)

let e7 () =
  header "E7  One-way tape: reading z1 under allow(z1), three head disciplines";
  let space = Tape.block_space ~k:2 ~lengths:[ 1; 2 ] ~alphabet:[ 0; 1 ] in
  let policy = Policy.allow [ 1 ] in
  let t =
    Tabulate.create
      ~header:
        [ "head motion"; "sound (time hidden)"; "sound (time observable)";
          "timed leak (bits)" ]
  in
  List.iter
    (fun motion ->
      let q = Tape.read_block motion ~k:2 ~j:1 in
      let m = Mechanism.of_program q in
      Tabulate.add_row t
        [
          Tape.motion_name motion;
          sound_mark policy m space;
          sound_mark ~config:Soundness.timed policy m space;
          bits (Leakage.of_program ~view:`Timed policy q space).Leakage.avg_bits;
        ])
    [ Tape.Walk; Tape.Tab_linear; Tape.Tab_constant ];
  Tabulate.print t;
  print_string
    "(walking across z0 encodes its length in the read time; a tab(i) that\n\
    \ secretly walks is just as bad; only the constant-time tab restores the\n\
    \ observability postulate.)\n"

(* ---------------------------------------------------------------- E8 --- *)

let e8 () =
  header "E8  Fenton's halt statement on the negative-inference machine (allow())";
  let space = Space.ints ~lo:0 ~hi:3 ~arity:1 in
  let policy = Policy.allow [] in
  let t =
    Tabulate.create
      ~header:
        [ "pc mode"; "halt mode"; "M(0)"; "M(2)"; "sound (untimed)";
          "sound (timed)" ]
  in
  let show inputs m =
    match (Mechanism.respond m (Array.map Value.int inputs)).Mechanism.response with
    | Mechanism.Granted v -> Value.to_string v
    | Mechanism.Denied _ -> "violation"
    | Mechanism.Hung -> "hangs"
    | Mechanism.Failed _ -> "fault"
  in
  List.iter
    (fun (pc_mode, pc_name) ->
      List.iter
        (fun (halt_mode, halt_name) ->
          let cfg = Dmm.config ~pc_mode ~halt_mode policy in
          let m = Dmm.mechanism cfg Machine.Zoo.negative_inference in
          Tabulate.add_row t
            [
              pc_name;
              halt_name;
              show [| 0 |] m;
              show [| 2 |] m;
              sound_mark policy m space;
              sound_mark ~config:Soundness.timed policy m space;
            ])
        [
          (Dmm.Halt_noop, "no-op"); (Dmm.Halt_error, "error notice");
          (Dmm.Halt_checked, "checked");
        ])
    [ (Dmm.Monotone, "monotone"); (Dmm.Scoped, "scoped (Fenton)") ];
  Tabulate.print t;
  print_string
    "(the paper's Example 1 continued: with Fenton's class-restoring pc, the\n\
    \ error-notice reading of halt announces 'x = 0' - negative inference;\n\
    \ the no-op reading is value-sound but still leaks through time.)\n"

(* ---------------------------------------------------------------- E9 --- *)

let e9 () =
  header "E9  Static certification vs dynamic surveillance on random programs";
  let params = { Generator.default with Generator.depth = 3 } in
  let space = Generator.space_for params in
  let n = 300 in
  let rand = Random.State.make [| 2024 |] in
  let t =
    Tabulate.create
      ~header:
        [ "policy"; "certified"; "avg static"; "avg surveillance"; "avg maximal";
          "surv>static"; "static>surv" ]
  in
  List.iter
    (fun policy ->
      let certified = ref 0 in
      let sum_static = ref 0.0 and sum_surv = ref 0.0 and sum_max = ref 0.0 in
      let surv_wins = ref 0 and static_wins = ref 0 in
      for _ = 1 to n do
        let prog = QCheck.Gen.generate1 ~rand (Generator.gen params) in
        let g = Compile.compile prog in
        let q = Interp.ast_program prog in
        if Certify.certified ~policy prog then incr certified;
        let rs =
          Completeness.ratio (Certify.mechanism ~policy prog) ~q space
        in
        let rd =
          Completeness.ratio
            (Dynamic.mechanism (Dynamic.config ~mode:Dynamic.Surveillance policy) g)
            ~q space
        in
        let rm = Completeness.ratio (Maximal.build policy q space) ~q space in
        sum_static := !sum_static +. rs;
        sum_surv := !sum_surv +. rd;
        sum_max := !sum_max +. rm;
        if rd > rs +. 1e-9 then incr surv_wins;
        if rs > rd +. 1e-9 then incr static_wins
      done;
      let avg r = pct (!r /. float_of_int n) in
      Tabulate.add_row t
        [
          Policy.name policy;
          Printf.sprintf "%d/%d" !certified n;
          avg sum_static;
          avg sum_surv;
          avg sum_max;
          string_of_int !surv_wins;
          string_of_int !static_wins;
        ])
    [ Policy.allow_none; Policy.allow [ 0 ]; Policy.allow [ 1 ]; Policy.allow [ 0; 1 ] ];
  Tabulate.print t;
  print_string
    "(static enforcement is all-or-nothing per program; dynamic surveillance\n\
    \ salvages partial service on programs the certifier must reject, while\n\
    \ certified programs are served completely by both.)\n"

(* --------------------------------------------------------------- E10 --- *)

let e10 () =
  header "E10  Theorem 4: the maximal mechanism exists but cannot be synthesized";
  let t =
    Tabulate.create ~header:[ "A(x) family"; "domain"; "surveillance"; "maximal" ]
  in
  List.iter
    (fun (e, label) ->
      let q = Paper.program e in
      let ms =
        Dynamic.mechanism (Dynamic.config ~mode:Dynamic.Surveillance e.Paper.policy) (Paper.graph e)
      in
      let mx = Maximal.build e.Paper.policy q e.Paper.space in
      Tabulate.add_row t
        [
          label;
          "0..7";
          pct (Completeness.ratio ms ~q e.Paper.space);
          pct (Completeness.ratio mx ~q e.Paper.space);
        ])
    [
      (Paper.thm4_family (fun _ -> 0) ~name:"thm4-zero", "A = 0 everywhere");
      ( Paper.thm4_family (fun v -> if v = 5 then 1 else 0) ~name:"thm4-spike",
        "A(5) = 1, else 0" );
    ];
  Tabulate.print t;
  (* Ruzzo's construction: maximal(Q_M) decides halting questions about M,
     so the bound needed grows with the machine - sweep the domain. *)
  let t2 =
    Tabulate.create
      ~header:[ "machine"; "domain 0..h"; "Q constant on domain?"; "maximal ratio" ]
  in
  let ruzzo m input =
    Program.of_fun ~name:"ruzzo" ~arity:1 (fun a ->
        Value.int
          (if Machine.halts_within m ~fuel:(Value.to_int a.(0)) input then 1 else 0))
  in
  List.iter
    (fun (machine, input, label) ->
      List.iter
        (fun hi ->
          let space = Space.ints ~lo:0 ~hi ~arity:1 in
          let q = ruzzo machine input in
          let mx = Maximal.build Policy.allow_none q space in
          let r = Completeness.ratio mx ~q space in
          Tabulate.add_row t2
            [
              label;
              Printf.sprintf "0..%d" hi;
              (if r > 0.0 then "yes" else "no");
              pct r;
            ])
        [ 5; 20; 80 ])
    [
      (Machine.Zoo.looper, [| 1 |], "looper(1): never halts");
      (Machine.Zoo.looper, [| 0 |], "looper(0): halts in 1 step");
      (Machine.Zoo.adder, [| 9; 9 |], "adder(9,9): halts in ~38 steps");
    ];
  Tabulate.print t2;
  print_string
    "(whether the maximal mechanism is the constant 0 is exactly 'does M halt\n\
    \ within the domain' - pushing the domain out re-answers a halting\n\
    \ question; no single effective procedure covers all machines.)\n"

(* --------------------------------------------------------------- E11 --- *)

let e11 () =
  header "E11  File system (Example 2): the content-dependent policy";
  let k = 2 in
  let space = Filesys.space ~k ~file_values:[ 10; 20; 30 ] in
  let policy = Filesys.policy ~k in
  let part = Partition.compute policy space in
  Printf.printf "space: %d inputs, %d policy classes (largest %d)\n"
    part.Partition.points (Partition.class_count part)
    (Partition.largest_class part);
  let t =
    Tabulate.create
      ~header:[ "subject"; "kind"; "completeness"; "sound"; "avg leak (bits)" ]
  in
  let q_read = Filesys.read_file ~k ~slot:1 in
  let rows =
    [
      ("read file 1, no check", Mechanism.of_program q_read, q_read);
      ("reference monitor", Filesys.monitor ~k ~slot:1, q_read);
      ( "sum of permitted",
        Mechanism.of_program (Filesys.read_sum_permitted ~k),
        Filesys.read_sum_permitted ~k );
    ]
  in
  List.iter
    (fun (label, m, q) ->
      Tabulate.add_row t
        [
          label;
          (if m.Mechanism.name = q.Program.name then "program as mechanism"
           else "monitor");
          pct (Completeness.ratio m ~q space);
          sound_mark policy m space;
          bits (Leakage.of_mechanism policy m space).Leakage.avg_bits;
        ])
    rows;
  Tabulate.print t;
  print_string
    "(the unchecked read leaks the denied file outright; the paper's monitor\n\
    \ with its 'Illegal access attempted' notice is sound and serves exactly\n\
    \ the permitted half; a program that checks permissions itself can be its\n\
    \ own sound mechanism.)\n"

(* --------------------------------------------------------------- E12 --- *)

(* Theorem 3's side condition: expressions must run in time independent of
   disallowed values. A multiplication whose cost tracks its operands
   defeats even the timed mechanism - the secret never reaches the output,
   only the clock. *)
let e12 () =
  header "E12  Expression cost discipline: Theorem 3' needs constant-time operators";
  let prog =
    Ast.prog ~name:"dead-multiply" ~arity:1
      (Ast.seq
         [ Ast.Assign (Var.Reg 0, x 0 *: x 0); Ast.Assign (Var.Out, i 1) ])
  in
  let g = Compile.compile prog in
  let policy = Policy.allow_none in
  let space = Space.ints ~lo:0 ~hi:15 ~arity:1 in
  let t =
    Tabulate.create
      ~header:
        [ "cost model"; "mechanism"; "completeness"; "sound (timed)";
          "timed leak (bits)" ]
  in
  List.iter
    (fun (cost, cost_name) ->
      List.iter
        (fun mode ->
          let m = Dynamic.mechanism (Dynamic.config ~cost ~mode policy) g in
          Tabulate.add_row t
            [
              cost_name;
              Dynamic.mode_name mode;
              pct (Completeness.ratio m ~q:(Interp.graph_program g) space);
              sound_mark ~config:Soundness.timed policy m space;
              bits (Leakage.of_mechanism ~view:`Timed policy m space).Leakage.avg_bits;
            ])
        [ Dynamic.Surveillance; Dynamic.Timed ])
    [ (Expr.Uniform, "uniform"); (Expr.Operand_sized, "operand-sized") ];
  Tabulate.print t;
  print_string
    "(program: r0 := x0 * x0; y := 1 under allow(). Both mechanisms grant -\n\
    \ the secret never flows to y or to a test - and with uniform-cost boxes\n\
    \ both are timed-sound. Give multiplication its operand-sized cost and\n\
    \ the grant's timestamp spells out |x0|: the restriction the paper\n\
    \ attaches to Theorem 3' is necessary, not pedantry.)\n"

(* --------------------------------------------------------------- E13 --- *)

let e13 () =
  header "E13  History-dependent policy: the differencing attack on a statistical DB";
  let module Querydb = Secpol_history.Querydb in
  let db = { Querydb.k = 3; queries = 2 } in
  let space =
    Querydb.space db ~record_values:[ 0; 1 ]
      ~query_masks:[ 0b111; 0b110; 0b011; 0b001 ]
  in
  let policy = Querydb.policy db in
  let q = Querydb.session_program db in
  let t =
    Tabulate.create
      ~header:[ "front end"; "sound"; "avg leak (bits)"; "sessions served" ]
  in
  let row label m q' =
    Tabulate.add_row t
      [
        label;
        sound_mark policy m space;
        bits (Leakage.of_mechanism policy m space).Leakage.avg_bits;
        pct (Completeness.ratio m ~q:q' space);
      ]
  in
  row "answer everything" (Mechanism.of_program q) q;
  row "session gatekeeper" (Querydb.monitor db) q;
  let q_slot = Querydb.slotwise_program db in
  row "redesigned (slotwise)" (Mechanism.of_program q_slot) q_slot;
  Tabulate.print t;
  print_string
    "(two sum queries whose sets differ in one record reveal that record;\n\
    \ the history rule refuses the second query. The policy is a filter\n\
    \ whose value depends on the query inputs - the paper's 'dependent upon\n\
    \ a history of the user's previous queries' remark, enforced and\n\
    \ checked. Completeness is measured against each front end's own\n\
    \ program, so the slotwise redesign's 100% counts sessions it serves\n\
    \ in its weakened, per-query sense.)\n"

(* --------------------------------------------------------------- E14 --- *)

let e14 () =
  header "E14  Capability systems in the model (the paper's closing claim)";
  let module Capsys = Secpol_capability.Capsys in
  let sys = Capsys.make ~objects:3 ~stored_caps:[| 0b010; 0b100; 0b000 |] in
  let space = Capsys.space sys ~value_range:2 ~cap_masks:[ 0b000; 0b001; 0b100 ] in
  let policy = Capsys.policy sys in
  let greedy =
    [ Capsys.Load 0; Capsys.Fetch 0; Capsys.Load 1; Capsys.Fetch 1; Capsys.Load 2 ]
  in
  let q = Capsys.program sys greedy in
  let t =
    Tabulate.create
      ~header:[ "machine"; "sound"; "completeness"; "avg leak (bits)" ]
  in
  let row label m =
    Tabulate.add_row t
      [
        label;
        sound_mark policy m space;
        pct (Completeness.ratio m ~q space);
        bits (Leakage.of_mechanism policy m space).Leakage.avg_bits;
      ]
  in
  row "unchecked" (Mechanism.of_program q);
  row "checked (acquiring)" (Capsys.checked sys greedy);
  row "strict (no acquisition)" (Capsys.strict sys greedy);
  row "maximal (brute force)" (Maximal.build policy q space);
  Tabulate.print t;
  print_string
    "(objects 0 -> 1 -> 2 store a capability chain; the script harvests it.\n\
    \ The reachability policy is content-dependent on the capability input.\n\
    \ The acquiring checker is sound and serves every session whose closure\n\
    \ covers the script; refusing acquisition stays sound but strictly less\n\
    \ complete - the completeness order compares capability disciplines.)\n"

(* --------------------------------------------------------------- E15 --- *)

(* Ablation: how much precision does algebraic pre-simplification buy the
   Section 5 certifier? (Ex. 7's transform needed the same Cond(p,e,e)=e
   law; here it serves the static analysis directly.) *)
let e15 () =
  header "E15  Certifier ablation: plain vs pre-simplified analysis";
  let params = Generator.default in
  let n = 400 in
  let rand = Random.State.make [| 31337 |] in
  let progs = List.init n (fun _ -> QCheck.Gen.generate1 ~rand (Generator.gen params)) in
  let t =
    Tabulate.create
      ~header:[ "policy"; "certified (plain)"; "certified (presimplified)"; "gained" ]
  in
  List.iter
    (fun allowed ->
      let plain = ref 0 and simp = ref 0 in
      List.iter
        (fun prog ->
          if (Certify.analyze ~allowed prog).Certify.certified then incr plain;
          if (Certify.analyze ~presimplify:true ~allowed prog).Certify.certified
          then incr simp)
        progs;
      Tabulate.add_row t
        [
          Policy.name (Policy.allow_set allowed);
          Printf.sprintf "%d/%d" !plain n;
          Printf.sprintf "%d/%d" !simp n;
          string_of_int (!simp - !plain);
        ])
    [ Iset.empty; Iset.of_list [ 0 ]; Iset.of_list [ 1 ] ];
  Tabulate.print t;
  print_string
    "(simplification can only shrink taints, so the gain column is never\n\
    \ negative - verified as a property test; the canonical rescued shape is\n\
    \ a dead operand like y := x0 + x1 * 0.)\n"

(* --------------------------------------------------------------- E16 --- *)

(* The policy dial: completeness as the allowed set grows. Grant sets of
   every mechanism are monotone in J (a property test proves it); this
   series shows the shape on one mixed program. *)
let e16 () =
  header "E16  Completeness as the allowed set grows (one program, J sweeping)";
  let prog =
    Ast.prog ~name:"mixed" ~arity:3
      (Ast.seq
         [
           Ast.If
             ( x 0 =: i 0,
               Ast.Assign (Var.Out, x 1),
               Ast.Assign (Var.Out, x 1 +: x 2) );
         ])
  in
  let g = Compile.compile prog in
  let q = Interp.graph_program g in
  let space = Space.ints ~lo:0 ~hi:2 ~arity:3 in
  let t =
    Tabulate.create
      ~header:
        [ "allowed"; "high-water"; "surveillance"; "timed"; "static"; "maximal" ]
  in
  List.iter
    (fun j ->
      let policy = Policy.allow j in
      let ratio m = pct (Completeness.ratio m ~q space) in
      Tabulate.add_row t
        [
          Policy.name policy;
          ratio (Dynamic.mechanism (Dynamic.config ~mode:Dynamic.High_water policy) g);
          ratio (Dynamic.mechanism (Dynamic.config ~mode:Dynamic.Surveillance policy) g);
          ratio (Dynamic.mechanism (Dynamic.config ~mode:Dynamic.Timed policy) g);
          ratio (Certify.mechanism ~policy prog);
          ratio (Maximal.build policy q space);
        ])
    [ []; [ 1 ]; [ 0; 1 ]; [ 1; 2 ]; [ 0; 1; 2 ] ];
  Tabulate.print t;
  print_string
    "(program: if x0 = 0 then y := x1 else y := x1 + x2. Every column grows\n\
    \ monotonically down the table; static flips 0 -> 100 only once the whole\n\
    \ read set is allowed, while the dynamic mechanisms climb through the\n\
    \ partial-service regime in between.)\n"

(* --------------------------------------------------------------- E17 --- *)

(* Section 4's general recipe, run to its bounded end: enumerate transform
   sequences, keep equivalent+sound candidates, join them (Theorem 1), and
   report the gap to the maximal mechanism that Theorem 4 says no uniform
   procedure closes. *)
let e17 () =
  header "E17  Bounded mechanism synthesis: transform search vs the maximal gap";
  let module Search = Secpol_transform.Search in
  let t =
    Tabulate.create
      ~header:
        [ "program"; "plain surv."; "search best"; "maximal"; "winning sequence";
          "candidates (sound/discarded)" ]
  in
  List.iter
    (fun (e : Paper.entry) ->
      let q = Paper.program e in
      let plain =
        Completeness.ratio
          (Dynamic.mechanism (Dynamic.config ~mode:Dynamic.Surveillance e.Paper.policy) (Paper.graph e))
          ~q e.Paper.space
      in
      let r = Search.search ~policy:e.Paper.policy ~space:e.Paper.space e.Paper.prog in
      let winner =
        match r.Search.candidates with
        | c :: _ when c.Search.ratio > 0.0 -> c.Search.label
        | _ -> "-"
      in
      Tabulate.add_row t
        [
          e.Paper.name;
          pct plain;
          pct r.Search.best_ratio;
          pct r.Search.maximal_ratio;
          winner;
          Printf.sprintf "%d/%d"
            (List.length r.Search.candidates)
            (List.length r.Search.discarded);
        ])
    Paper.all;
  Tabulate.print t;
  print_string
    "(the searched mechanism is the Theorem-1 join of every sound candidate,\n\
    \ so it never loses to plain surveillance; where 'search best' still\n\
    \ trails 'maximal' no sequence in the pool helps - Theorem 4 in practice.)\n"

(* --------------------------------------------------------------- E18 --- *)

(* The conclusions' other observable: page faults. The counter in the
   outcome is any resource; here it counts page transitions of an access
   trace whose ORDER depends on the secret while the values never do. *)
let e18 () =
  header "E18  Page-fault channel: value-constant, traffic-variable (allow all but the key)";
  let module Paged = Secpol_channels.Paged in
  let t =
    Tabulate.create
      ~header:
        [ "vars/page"; "sound (faults hidden)"; "sound (faults observable)";
          "leak (bits)" ]
  in
  List.iter
    (fun page_size ->
      let m = Paged.make ~nvars:5 ~page_size in
      let q = Paged.scan_sorted_by_secret m ~key:0 in
      let policy = Policy.allow [ 1; 2; 3; 4 ] in
      let space = Space.ints ~lo:0 ~hi:1 ~arity:5 in
      Tabulate.add_row t
        [
          string_of_int page_size;
          sound_mark policy (Mechanism.of_program q) space;
          sound_mark ~config:Soundness.timed policy (Mechanism.of_program q) space;
          bits (Leakage.of_program ~view:`Timed policy q space).Leakage.avg_bits;
        ])
    [ 1; 2; 5 ];
  Tabulate.print t;
  print_string
    "(the program outputs 0 always; only its page-access ORDER tracks the\n\
    \ key. With one variable per page, or all on one page, the two orders\n\
    \ cost the same and the channel closes; in between, the fault counter\n\
    \ hands over the key bit - 'running time or page faults', as the\n\
    \ conclusions say, are the same postulate.)\n"

(* --------------------------------------------------------------- E19 --- *)

(* The operator-function question (Section 2): "does the value of Q(d1..dk)
   contain ALL the information that it should?" — the data-security dual,
   which the paper asserts the same methods handle. Measured on Example 2's
   file system: confidentiality (soundness) and integrity (preservation)
   pull in opposite directions. *)
let e19 () =
  header "E19  The dual question: confidentiality vs integrity on the file system";
  let module Integrity = Secpol_core.Integrity in
  let k = 2 in
  let space = Filesys.space ~k ~file_values:[ 10; 20 ] in
  let policy = Filesys.policy ~k in
  let q_read = Filesys.read_file ~k ~slot:1 in
  let q_id =
    Program.of_fun ~name:"dump-everything" ~arity:(Filesys.arity ~k) (fun a ->
        Value.tuple (Array.to_list a))
  in
  let t =
    Tabulate.create
      ~header:
        [ "mechanism"; "sound (reveals at most I)"; "preserves (delivers at least I)" ]
  in
  let verdict m =
    ( sound_mark policy m space,
      match Integrity.check policy m space with
      | Integrity.Preserves -> "preserves"
      | Integrity.Loses _ -> "LOSES" )
  in
  List.iter
    (fun (label, m) ->
      let s, p = verdict m in
      Tabulate.add_row t [ label; s; p ])
    [
      ("dump everything", Mechanism.of_program q_id);
      ("read file 1, unchecked", Mechanism.of_program q_read);
      ("reference monitor (file 1)", Filesys.monitor ~k ~slot:1);
      ("sum of permitted", Mechanism.of_program (Filesys.read_sum_permitted ~k));
      ("pull the plug", Mechanism.pull_the_plug (Filesys.arity ~k));
      ( "the filtered view I itself",
        Mechanism.of_program
          (Program.of_fun ~name:"policy-image" ~arity:(Filesys.arity ~k)
             (Policy.image policy)) );
    ];
  Tabulate.print t;
  print_string
    "(soundness bounds what a reply may reveal; preservation demands the\n\
    \ policy's image be recoverable from it. Dumping everything preserves\n\
    \ and leaks; the plug is sound and loses; no single-file view carries\n\
    \ the whole permitted image. Exactly one program threads both needles:\n\
    \ the one computing the policy's own filtered view. The two questions\n\
    \ are genuinely dual, and the same partition machinery decides both -\n\
    \ Section 2's unproved assertion, exercised.)\n"

(* ----------------------------------------------------------------------- *)

let experiments =
  [
    ("e1", e1); ("e2", e2); ("e3", e3); ("e4", e4); ("e5", e5); ("e7", e7);
    ("e8", e8); ("e9", e9); ("e10", e10); ("e11", e11); ("e12", e12);
    ("e13", e13); ("e14", e14); ("e15", e15); ("e16", e16); ("e17", e17);
    ("e18", e18); ("e19", e19);
  ]

let () =
  let requested =
    match Array.to_list Sys.argv with
    | [ _; "list" ] ->
        List.iter (fun (name, _) -> print_endline name) experiments;
        exit 0
    | _ :: (_ :: _ as names) -> names
    | _ -> List.map fst experiments
  in
  List.iter
    (fun name ->
      match List.assoc_opt name experiments with
      | Some f -> f ()
      | None ->
          Printf.eprintf "unknown experiment %s (known: %s; e6 is the bechamel bench)\n"
            name
            (String.concat " " (List.map fst experiments));
          exit 1)
    requested
