(* secpol: command-line interface to the enforcement library.

   Programs are addressed by their corpus name (see `secpol list`) or by a
   file path ending in .spl holding While-language source (see `secpol fmt`
   and examples/programs/). Policies are given as the comma-separated
   allowed input indices, e.g. `-p 0,2`, or `-p -` for allow() (nothing
   allowed). *)

module Value = Secpol_core.Value
module Policy = Secpol_core.Policy
module Program = Secpol_core.Program
module Mechanism = Secpol_core.Mechanism
module Soundness = Secpol_core.Soundness
module Completeness = Secpol_core.Completeness
module Maximal = Secpol_core.Maximal
module Ast = Secpol_flowgraph.Ast
module Graph = Secpol_flowgraph.Graph
module Compile = Secpol_flowgraph.Compile
module Interp = Secpol_flowgraph.Interp
module Dynamic = Secpol_taint.Dynamic
module Instrument = Secpol_taint.Instrument
module Certify = Secpol_staticflow.Certify
module Leakage = Secpol_probe.Leakage
module Tabulate = Secpol_probe.Tabulate
module Paper = Secpol_corpus.Paper_programs
module Media = Secpol_journal.Media
module Runner = Secpol_journal.Runner
module Iset = Secpol_core.Iset
module Event = Secpol_trace.Event
module Sink = Secpol_trace.Sink
module Provenance = Secpol_trace.Provenance
module Run = Secpol.Run
module Pool = Secpol.Pool
module Exhaustive = Secpol.Exhaustive
open Cmdliner

(* --- shared arguments --------------------------------------------------- *)

let program_arg =
  let doc = "Corpus program name (try `secpol list`) or a .spl file path." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"PROGRAM" ~doc)

let is_file name =
  Filename.check_suffix name ".spl" || String.contains name '/'

(* File-loaded programs get a wrapper entry: the file's "# policy:" hint
   (or allow()) and a small exhaustive space, both overridable with -p. *)
let entry_result name =
  if is_file name then
    match Secpol_lang.Source.load_with_hint name with
    | Ok (prog, hint) ->
        Ok
          {
            Paper.name = prog.Ast.name;
            prog;
            policy = Option.value hint ~default:Policy.allow_none;
            space = Secpol_core.Space.ints ~lo:0 ~hi:3 ~arity:prog.Ast.arity;
            paper_ref = name;
            claim = "";
            note = "";
          }
    | Error m -> Error (Printf.sprintf "%s: %s" name m)
  else
    match Paper.find name with
    | e -> Ok e
    | exception Not_found ->
        Error
          (Printf.sprintf "unknown program %S; try `secpol list` or a .spl path"
             name)

let entry_of_name name =
  match entry_result name with
  | Ok e -> e
  | Error m ->
      prerr_endline m;
      exit 2

let policy_conv =
  let parse s =
    if s = "-" then Ok Policy.allow_none
    else
      try
        Ok
          (Policy.allow
             (List.map int_of_string
                (String.split_on_char ',' s |> List.filter (fun x -> x <> ""))))
      with
      | Failure _ -> Error (`Msg "policy must be like 0,2 or -")
      | Invalid_argument m -> Error (`Msg m)
  in
  Arg.conv (parse, fun ppf p -> Format.fprintf ppf "%s" (Policy.name p))

let policy_arg =
  let doc =
    "Security policy: comma-separated allowed input indices (0-based), or - \
     for allow(). Defaults to the policy the paper discusses for the program."
  in
  Arg.(value & opt (some policy_conv) None & info [ "p"; "policy" ] ~docv:"POLICY" ~doc)

let inputs_arg =
  let doc = "Comma-separated integer inputs, e.g. 3,0." in
  Arg.(required & opt (some string) None & info [ "i"; "inputs" ] ~docv:"INPUTS" ~doc)

let parse_inputs s =
  try Array.of_list (List.map (fun x -> Value.int (int_of_string x)) (String.split_on_char ',' s))
  with Failure _ ->
    prerr_endline "inputs must be integers like 3,0";
    exit 2

let mode_conv =
  let parse = function
    | "high-water" -> Ok Dynamic.High_water
    | "surveillance" -> Ok Dynamic.Surveillance
    | "scoped" -> Ok Dynamic.Scoped
    | "timed" -> Ok Dynamic.Timed
    | s -> Error (`Msg (s ^ ": expected high-water|surveillance|scoped|timed"))
  in
  Arg.conv (parse, fun ppf m -> Format.fprintf ppf "%s" (Dynamic.mode_name m))

let mode_arg =
  let doc = "Dynamic mechanism: high-water, surveillance, scoped or timed." in
  Arg.(value & opt mode_conv Dynamic.Surveillance & info [ "m"; "mode" ] ~docv:"MODE" ~doc)

let resolve_policy entry = function
  | Some p -> p
  | None -> entry.Paper.policy

let seed_arg =
  let doc =
    "Base seed of the deterministic RNG streams (fault plans and media \
     tampers replay bit-for-bit from it)."
  in
  Arg.(value & opt int 0 & info [ "seed"; "base-seed" ] ~docv:"SEED" ~doc)

let json_arg =
  let doc = "Emit the report as JSON (same as $(b,--format) json)." in
  Arg.(value & flag & info [ "json" ] ~doc)

let format_arg =
  let doc = "Output format: text or json." in
  Arg.(
    value
    & opt (enum [ ("text", `Text); ("json", `Json) ]) `Text
    & info [ "format" ] ~docv:"FORMAT" ~doc)

let output_format json format = if json then `Json else format

let jobs_arg =
  let doc =
    "Engine pool width: spread the command's independent work over $(docv) \
     domains. Reports and verdicts are byte-identical whatever the value; \
     scheduling telemetry goes to stderr."
  in
  Arg.(value & opt int 1 & info [ "j"; "jobs" ] ~docv:"JOBS" ~doc)

let check_jobs jobs =
  if jobs < 1 || jobs > Pool.max_jobs then begin
    Printf.eprintf "--jobs must be between 1 and %d\n" Pool.max_jobs;
    exit 2
  end;
  jobs

let shards_arg =
  let doc =
    "Split the enforcement across $(docv) cooperating shard enforcers \
     merged fail-securely by a coordinator; on a fault-free host the \
     reply is bit-identical to the single enforcer. Requires an \
     allow(...) policy."
  in
  Arg.(value & opt int 1 & info [ "shards" ] ~docv:"N" ~doc)

let check_shards shards =
  if shards < 1 || shards > Pool.max_jobs then begin
    Printf.eprintf "--shards must be between 1 and %d\n" Pool.max_jobs;
    exit 2
  end;
  shards

(* Scheduling telemetry is stderr-only: stdout carries the report, whose
   bytes are promised independent of --jobs. *)
let report_pool (stats : Pool.stats) =
  if stats.Pool.jobs > 1 then Format.eprintf "%a@." Pool.pp_stats stats

(* --- trace arguments ------------------------------------------------------ *)

let trace_arg =
  let doc =
    "Write a structured trace of the run to $(docv): one event per executed \
     box, surveillance-variable update, control-context change, guard \
     retry, journal checkpoint and verdict. Format per $(b,--trace-format)."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let trace_format_arg =
  let doc =
    "Trace format: jsonl (one decodable event per line — the format `secpol \
     explain --from` reads back) or chrome (a trace-event array for \
     chrome://tracing or Perfetto)."
  in
  Arg.(
    value
    & opt (enum [ ("jsonl", Sink.Jsonl); ("chrome", Sink.Chrome) ]) Sink.Jsonl
    & info [ "trace-format" ] ~docv:"FORMAT" ~doc)

(* Run [f] with a sink on [trace] (null when omitted) and return its exit
   code; the sink is closed here rather than by [f], because [exit] inside
   [f] would skip any finaliser. *)
let with_sink trace format f =
  match trace with
  | None -> f Sink.null
  | Some path ->
      let sink =
        try Sink.to_file format path
        with Sys_error m ->
          prerr_endline m;
          exit 2
      in
      let code =
        try f sink
        with e ->
          Sink.close sink;
          raise e
      in
      Sink.close sink;
      code

(* --- journal arguments --------------------------------------------------- *)

let journal_arg =
  let doc =
    "Journal the monitored run into $(docv) (created if missing): every \
     committed interpreter box is appended as a checksummed record, with \
     periodic atomic snapshots. A killed run is resumed with `secpol \
     resume`."
  in
  Arg.(value & opt (some string) None & info [ "journal" ] ~docv:"DIR" ~doc)

let kill_at_arg =
  let doc =
    "Fault injection: abort the journaled run after $(docv) committed boxes, \
     simulating a crash (requires --journal)."
  in
  Arg.(value & opt (some int) None & info [ "kill-at" ] ~docv:"N" ~doc)

let snapshot_every_arg =
  let doc = "Fold the journal into a fresh snapshot every $(docv) records." in
  Arg.(
    value
    & opt int Runner.default_snapshot_every
    & info [ "snapshot-every" ] ~docv:"N" ~doc)

(* One journaled monitored run, shared by `run --journal` and `enforce
   --journal`. Prints the reply and returns the exit code. *)
let journaled_run ~dir ~kill_at ~snapshot_every ~sink ~program_ref ~show_reply
    cfg g a =
  if snapshot_every < 1 then begin
    prerr_endline "--snapshot-every must be at least 1";
    exit 2
  end;
  let media = Media.dir dir in
  let outcome =
    Runner.run ?kill_at ~snapshot_every ~sink ~media ~program_ref cfg g a
  in
  Media.close media;
  match outcome with
  | Runner.Killed { at_box; _ } ->
      Printf.printf "killed after %d journaled box(es); recover with: secpol resume %s\n"
        at_box dir;
      0
  | Runner.Completed r ->
      show_reply r;
      0

(* The interpreters are total, but Mechanism.respond still treats a
   wrong-length input vector as a caller bug; catch it at the door. *)
let check_arity (e : Paper.entry) a =
  let k = e.Paper.prog.Ast.arity in
  if Array.length a <> k then begin
    Printf.eprintf "%s expects %d input(s), got %d\n" e.Paper.name k
      (Array.length a);
    exit 2
  end

(* --- list ---------------------------------------------------------------- *)

let list_cmd =
  let run () =
    let t = Tabulate.create ~header:[ "name"; "paper ref"; "policy"; "claim" ] in
    List.iter
      (fun (e : Paper.entry) ->
        let clip s = if String.length s > 58 then String.sub s 0 55 ^ "..." else s in
        Tabulate.add_row t
          [ e.Paper.name; e.Paper.paper_ref; Policy.name e.Paper.policy; clip e.Paper.claim ])
      Paper.all;
    Tabulate.print t
  in
  Cmd.v (Cmd.info "list" ~doc:"List the paper-program corpus")
    Term.(const run $ const ())

(* --- show ---------------------------------------------------------------- *)

let show_cmd =
  let run name instrumented policy =
    let e = entry_of_name name in
    Format.printf "%a@.@." Ast.pp_prog e.Paper.prog;
    let g = Paper.graph e in
    Format.printf "%a@." Graph.pp g;
    if instrumented then begin
      let p = resolve_policy e policy in
      match Policy.allowed_indices p with
      | Some allowed ->
          Format.printf "@.%a@." Graph.pp
            (Instrument.instrument Instrument.Untimed ~allowed g)
      | None -> prerr_endline "cannot instrument for a non-allow policy"
    end
  in
  let instr =
    Arg.(value & flag & info [ "instrumented" ] ~doc:"Also print the surveillance-instrumented flowchart.")
  in
  Cmd.v
    (Cmd.info "show" ~doc:"Print a corpus program as source and as a flowchart")
    Term.(const run $ program_arg $ instr $ policy_arg)

(* --- run ----------------------------------------------------------------- *)

let run_cmd =
  let run name inputs shards journal kill_at snapshot_every trace trace_format =
    let shards = check_shards shards in
    let e = entry_of_name name in
    let a = parse_inputs inputs in
    check_arity e a;
    let code =
      with_sink trace trace_format (fun sink ->
          if shards > 1 then begin
            (* Sharding needs the step machine and an allow(J) policy, so
               the run goes through the monitored interpreter under
               allow(everything) — same outputs, distributed for real. *)
            if kill_at <> None then begin
              prerr_endline
                "--kill-at applies to journaled single-enforcer runs; with \
                 --shards, kills are exercised by `secpol chaos --dist`";
              exit 2
            end;
            let g = Paper.graph e in
            let p = Policy.allow_all ~arity:e.Paper.prog.Ast.arity in
            let journal =
              Option.map
                (fun dir ->
                  Run.journal_dir ~snapshot_every ~program_ref:name dir)
                journal
            in
            let r =
              Run.run (Run.config ~policy:p ~shards ?journal ~trace:sink ()) g a
            in
            (match r.Mechanism.response with
            | Mechanism.Granted v -> Format.printf "output: %a@." Value.pp v
            | Mechanism.Denied n when n = Dynamic.fuel_notice ->
                print_endline "output: <diverged>"
            | Mechanism.Denied n -> Printf.printf "violation notice: %s\n" n
            | Mechanism.Hung -> print_endline "output: <diverged>"
            | Mechanism.Failed m -> Printf.printf "output: <fault: %s>\n" m);
            Printf.printf "steps:  %d\n" r.Mechanism.steps;
            0
          end
          else
          match journal with
          | None ->
              (* A policy-less Run config is the plain graph interpreter:
                 raw Q, never monitored, never cached. *)
              let g = Paper.graph e in
              Sink.emit sink
                (Event.run_header ~program:e.Paper.name ~arity:g.Graph.arity
                   ~mode:"unmonitored" ~allowed:Iset.empty ~inputs:a);
              let r = Run.run (Run.config ~trace:sink ()) g a in
              Sink.emit sink (Event.of_reply r);
              (match r.Mechanism.response with
              | Mechanism.Granted v -> Format.printf "output: %a@." Value.pp v
              | Mechanism.Hung -> print_endline "output: <diverged>"
              | Mechanism.Denied n -> Printf.printf "violation notice: %s\n" n
              | Mechanism.Failed m -> Printf.printf "output: <fault: %s>\n" m);
              Printf.printf "steps:  %d\n" r.Mechanism.steps;
              0
          | Some dir ->
              (* Journaling needs the step machine, so the run goes through
                 the monitored interpreter under allow(everything) — same
                 outputs, plus durability. *)
              let g = Paper.graph e in
              let p = Policy.allow_all ~arity:e.Paper.prog.Ast.arity in
              let cfg =
                Dynamic.config ~mode:Dynamic.Surveillance
                  ~emit:(Sink.emitter ~graph:g sink) p
              in
              let show_reply (r : Mechanism.reply) =
                (match r.Mechanism.response with
                | Mechanism.Granted v -> Format.printf "output: %a@." Value.pp v
                | Mechanism.Denied n when n = Dynamic.fuel_notice ->
                    print_endline "output: <diverged>"
                | Mechanism.Denied n -> Printf.printf "violation notice: %s\n" n
                | Mechanism.Hung -> print_endline "output: <diverged>"
                | Mechanism.Failed m -> Printf.printf "output: <fault: %s>\n" m);
                Printf.printf "steps:  %d\n" r.Mechanism.steps
              in
              journaled_run ~dir ~kill_at ~snapshot_every ~sink
                ~program_ref:name ~show_reply cfg g a)
    in
    exit code
  in
  Cmd.v
    (Cmd.info "run"
       ~doc:
         "Run a corpus program unprotected; with --journal, run it durably \
          under an allow-everything monitor; with --shards, split it \
          across cooperating shard enforcers")
    Term.(
      const run $ program_arg $ inputs_arg $ shards_arg $ journal_arg
      $ kill_at_arg $ snapshot_every_arg $ trace_arg $ trace_format_arg)

(* --- enforce -------------------------------------------------------------- *)

let show_enforce_reply (r : Mechanism.reply) =
  (match r.Mechanism.response with
  | Mechanism.Granted v -> Format.printf "granted: %a@." Value.pp v
  | Mechanism.Denied n -> Printf.printf "violation notice: %s\n" n
  | Mechanism.Hung -> print_endline "<mechanism diverged>"
  | Mechanism.Failed msg -> Printf.printf "<mechanism fault: %s>\n" msg);
  Printf.printf "steps:  %d\n" r.Mechanism.steps

let enforce_cmd =
  let run name inputs mode policy shards journal kill_at snapshot_every trace
      trace_format =
    let shards = check_shards shards in
    let e = entry_of_name name in
    let p = resolve_policy e policy in
    let a = parse_inputs inputs in
    check_arity e a;
    let g = Paper.graph e in
    let code =
      with_sink trace trace_format (fun sink ->
          if shards > 1 then begin
            if Policy.allowed_indices p = None then begin
              prerr_endline "distributed enforcement needs an allow(...) policy";
              exit 2
            end;
            if kill_at <> None then begin
              prerr_endline
                "--kill-at applies to journaled single-enforcer runs; with \
                 --shards, kills are exercised by `secpol chaos --dist`";
              exit 2
            end;
            let journal =
              Option.map
                (fun dir ->
                  Run.journal_dir ~snapshot_every ~program_ref:name dir)
                journal
            in
            let r =
              Run.run
                (Run.config ~policy:p ~mode ~shards ?journal ~trace:sink ())
                g a
            in
            show_enforce_reply r;
            0
          end
          else
          match journal with
          | None ->
              Sink.emit sink
                (Event.run_header ~program:e.Paper.name ~arity:g.Graph.arity
                   ~mode:(Dynamic.mode_name mode)
                   ~allowed:
                     (Option.value (Policy.allowed_indices p)
                        ~default:Iset.empty)
                   ~inputs:a);
              let r = Run.run (Run.config ~policy:p ~mode ~trace:sink ()) g a in
              Sink.emit sink (Event.of_reply r);
              show_enforce_reply r;
              0
          | Some dir ->
              if Policy.allowed_indices p = None then begin
                prerr_endline "journaled enforcement needs an allow(...) policy";
                exit 2
              end;
              let cfg =
                Dynamic.config ~mode ~emit:(Sink.emitter ~graph:g sink) p
              in
              journaled_run ~dir ~kill_at ~snapshot_every ~sink
                ~program_ref:name ~show_reply:show_enforce_reply cfg g a)
    in
    exit code
  in
  Cmd.v
    (Cmd.info "enforce"
       ~doc:
         "Run a corpus program under a dynamic protection mechanism, \
          optionally journaled for crash recovery or split across \
          cooperating shard enforcers")
    Term.(
      const run $ program_arg $ inputs_arg $ mode_arg $ policy_arg
      $ shards_arg $ journal_arg $ kill_at_arg $ snapshot_every_arg
      $ trace_arg $ trace_format_arg)

(* --- resume ---------------------------------------------------------------- *)

let resume_cmd =
  let run dir trace trace_format =
    if not (Sys.file_exists dir && Sys.is_directory dir) then begin
      Printf.eprintf "%s: no such journal directory\n" dir;
      exit 2
    end;
    let code =
      with_sink trace trace_format (fun sink ->
    let media = Media.dir dir in
    let resolve (h : Runner.header) =
      Result.map Paper.graph (entry_result h.Runner.program_ref)
    in
    (* The graph is only known once [resolve] runs, so resume traces carry
       no source spans. *)
    let result = Run.resume (Run.config ~trace:sink ()) ~resolve ~media in
    Media.close media;
    match result with
    | Ok res ->
        Printf.printf "program:  %s (%s mode, %s)\n" res.Runner.header.Runner.program_ref
          (Dynamic.mode_name res.Runner.header.Runner.mode)
          (Policy.name (Policy.allow_set res.Runner.header.Runner.allowed));
        if res.Runner.was_complete then
          print_endline "journal already held the verdict; nothing re-executed"
        else
          Printf.printf
            "replayed %d journal record(s)%s, resumed at step %d\n"
            res.Runner.replayed
            (if res.Runner.torn_bytes > 0 then
               Printf.sprintf " (dropped %d torn byte(s))" res.Runner.torn_bytes
             else "")
            res.Runner.resumed_steps;
        show_enforce_reply res.Runner.reply;
        0
    | Error e ->
        (* Fail-secure degradation: an unrecoverable journal is the single
           violation notice, with the diagnosis on stderr only. *)
        let reply = Run.reply_of_resume (Error e) in
        (match reply.Mechanism.response with
        | Mechanism.Denied n -> Printf.printf "violation notice: %s\n" n
        | _ -> assert false);
        Printf.eprintf "journal unrecoverable: %s\n" (Runner.failure_message e);
        1)
    in
    exit code
  in
  let dir =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"DIR" ~doc:"Journal directory written by --journal.")
  in
  Cmd.v
    (Cmd.info "resume"
       ~doc:
         "Recover a journaled run: replay the last snapshot plus the journal \
          suffix and continue under the same monitor. Bit-identical to the \
          uninterrupted run on intact media; degrades to the violation \
          notice \xce\x9b/recovery on unrecoverable media. Exits 0 when the \
          run was reproduced, 1 on \xce\x9b/recovery, 2 on usage errors.")
    Term.(const run $ dir $ trace_arg $ trace_format_arg)

(* --- certify --------------------------------------------------------------- *)

(* Corpus programs are hand-built ASTs with no source spans; recover them
   by re-parsing the pretty-printed source, which `fmt` guarantees is
   stable. File programs come spanned already. Shared by lint and
   certify. *)
let spanned_prog (e : Paper.entry) =
  let src = Secpol_lang.Source.to_source e.Paper.prog in
  let prog =
    match Secpol_lang.Source.parse src with
    | Ok prog -> prog
    | Error _ -> e.Paper.prog
  in
  (src, prog)

let certify_cmd =
  let module Certifier = Secpol_staticflow.Certifier in
  let module Label = Secpol_core.Lattice.Label in
  let module Json = Certifier.Json in
  let order_conv =
    let parse s =
      match s with
      | "two-point" -> Ok Label.two_point
      | "diamond" -> Ok Label.diamond
      | _ when String.length s > 6 && String.sub s 0 6 = "chain:" -> (
          let levels =
            String.sub s 6 (String.length s - 6)
            |> String.split_on_char ','
            |> List.filter (fun x -> x <> "")
          in
          try Ok (Label.chain ~name:s levels)
          with Invalid_argument m -> Error (`Msg m))
      | _ -> Error (`Msg (s ^ ": expected two-point|diamond|chain:a,b,..."))
    in
    Arg.conv (parse, fun ppf o -> Format.fprintf ppf "%s" (Label.name o))
  in
  let order_arg =
    let doc =
      "Label lattice for --labels: two-point (low ⊑ high), diamond, or \
       chain:a,b,... (lowest first)."
    in
    Arg.(value & opt order_conv Label.two_point & info [ "order" ] ~docv:"ORDER" ~doc)
  in
  let labels_arg =
    let doc =
      "Certify against a label-lattice policy instead of -p: one level per \
       input, comma-separated, e.g. low,high."
    in
    Arg.(value & opt (some string) None & info [ "labels" ] ~docv:"LABELS" ~doc)
  in
  let clearance_arg =
    let doc =
      "Observer clearance for --labels (defaults to the order's bottom)."
    in
    Arg.(value & opt (some string) None & info [ "clearance" ] ~docv:"LEVEL" ~doc)
  in
  let run name policy order labels clearance format json =
    let format = output_format json format in
    let e = entry_of_name name in
    let _, prog = spanned_prog e in
    let g = Compile.compile prog in
    let report, label_policy =
      match labels with
      | Some ls -> (
          let levels =
            String.split_on_char ',' ls |> List.filter (fun x -> x <> "")
          in
          let clearance =
            Option.value clearance ~default:(Label.bottom order)
          in
          try
            let lp = Label.policy ~order ~labels:levels ~clearance in
            (Certifier.certify_label ~policy:lp g, Some lp)
          with Invalid_argument m ->
            prerr_endline m;
            exit 2)
      | None -> (
          if clearance <> None then begin
            prerr_endline "--clearance requires --labels";
            exit 2
          end;
          let p = resolve_policy e policy in
          match Policy.allowed_indices p with
          | None ->
              prerr_endline "certification needs an allow(...) policy";
              exit 2
          | Some _ -> (Certifier.certify_policy ~policy:p g, None))
    in
    (match format with
    | `Json ->
        let js =
          match (Certifier.to_json report, label_policy) with
          | Json.Obj fields, Some lp ->
              Json.Obj
                (fields
                @ [
                    ( "output-label",
                      Json.String (Certifier.output_label ~policy:lp report) );
                    ("clearance", Json.String (Label.clearance lp));
                    ("order", Json.String (Label.name (Label.policy_order lp)));
                  ])
          | js, _ -> js
        in
        print_endline (Json.render js)
    | `Text ->
        (match label_policy with
        | Some lp ->
            Format.printf "labels:       %a@." Label.pp_policy lp;
            Printf.printf "output label: %s (clearance %s)\n"
              (Certifier.output_label ~policy:lp report)
              (Label.clearance lp)
        | None -> ());
        Format.printf "%a@." Certifier.pp_report report);
    exit (match report.Certifier.verdict with Certifier.Proved -> 0 | _ -> 1)
  in
  Cmd.v
    (Cmd.info "certify"
       ~doc:
         "Statically certify a program: prove it policy-clean for every \
          input and every monitor mode, refute it with a replayable \
          counterexample input, or report the residual-monitor plan for the \
          undecided rest. Policies are allow-sets (-p) or label-lattice \
          assignments (--labels/--clearance/--order). Exits 0 when proved, \
          1 otherwise, 2 on usage errors.")
    Term.(
      const run $ program_arg $ policy_arg $ order_arg $ labels_arg
      $ clearance_arg $ format_arg $ json_arg)

(* --- measure --------------------------------------------------------------- *)

let algo_arg =
  let doc =
    "Analysis algorithm: $(b,refine) partitions the space by policy image \
     and runs the program once per representative until each class is \
     proven constant or mixed; $(b,brute) enumerates every point. Both \
     give bit-identical verdicts and tables — brute is kept as the \
     differential oracle the refined path is gated against."
  in
  Arg.(
    value
    & opt
        (enum [ ("refine", Secpol.Analyze.Refine); ("brute", Secpol.Analyze.Brute) ])
        Secpol.Analyze.Refine
    & info [ "algo" ] ~docv:"ALGO" ~doc)

let measure_cmd =
  let module Analyze = Secpol.Analyze in
  let module Json = Secpol_staticflow.Lint.Json in
  let run name policy jobs algo json =
    let jobs = check_jobs jobs in
    let e = entry_of_name name in
    let p = resolve_policy e policy in
    let q = Paper.program e in
    let g = Paper.graph e in
    let space = e.Paper.space in
    let cache = Secpol.Cache.create () in
    let analyze = Analyze.config ~jobs ~cache ~algo space in
    let pool_runs = ref [] in
    let refined = ref [] in
    let note (t : Analyze.telemetry) =
      pool_runs := t.Analyze.pool :: !pool_runs;
      match t.Analyze.refine with
      | Some r -> refined := r :: !refined
      | None -> ()
    in
    let t =
      Tabulate.create ~header:[ "mechanism"; "completeness"; "sound"; "avg leak (bits)" ]
    in
    let rows = ref [] in
    let add label m =
      (* The exhaustive soundness check is the expensive cell: route it
         through the Analyze facade (engine pool + chosen algorithm).
         Verdicts are bit-identical to the sequential Soundness.check
         whatever --jobs or --algo is. *)
      let verdict, stats = Analyze.soundness analyze p m in
      note stats;
      let sound =
        match verdict with
        | Soundness.Sound -> "yes"
        | Soundness.Unsound _ -> "NO"
      in
      let ratio = Analyze.ratio analyze ~q m in
      let leak = (Leakage.of_mechanism p m space).Leakage.avg_bits in
      rows :=
        Json.Obj
          [
            ("mechanism", Json.String label);
            ("completeness", Json.String (Printf.sprintf "%.4f" ratio));
            ("sound", Json.Bool (verdict = Soundness.Sound));
            ("avg-leak-bits", Json.String (Printf.sprintf "%.3f" leak));
          ]
        :: !rows;
      Tabulate.add_row t
        [
          label;
          Printf.sprintf "%.0f%%" (100.0 *. ratio);
          sound;
          Printf.sprintf "%.3f" leak;
        ]
    in
    add "program itself" (Mechanism.of_program q);
    List.iter
      (fun mode -> add (Dynamic.mode_name mode) (Dynamic.mechanism (Dynamic.config ~mode p) g))
      Dynamic.all_modes;
    add "static (certify)" (Certify.mechanism ~policy:p e.Paper.prog);
    let mx, mx_stats = Analyze.maximal analyze p q in
    note mx_stats;
    add (Printf.sprintf "maximal (%s)" (Analyze.algo_name algo)) mx;
    if json then
      print_endline
        (Json.render
           (Json.Obj
              [
                ("program", Json.String e.Paper.name);
                ("policy", Json.String (Policy.name p));
                ("algo", Json.String (Analyze.algo_name algo));
                ("jobs", Json.Int jobs);
                ("rows", Json.List (List.rev !rows));
              ]))
    else
      Tabulate.print
        ~title:(Printf.sprintf "%s under %s" e.Paper.name (Policy.name p))
        t;
    (match !refined with
    | [] -> ()
    | rs ->
        let runs = List.fold_left (fun a r -> a + r.Secpol.Refine.runs) 0 rs in
        let saved = List.fold_left (fun a r -> a + r.Secpol.Refine.saved) 0 rs in
        Format.eprintf
          "refine: %d refined pass(es): %d run(s), %d skipped by the \
           I-kernel partition@."
          (List.length rs) runs saved);
    if jobs > 1 then begin
      let tasks, steals, idle =
        List.fold_left
          (fun (a, b, c) s ->
            let t, st, i = Pool.total s in
            (a + t, b + st, c + i))
          (0, 0, 0) !pool_runs
      in
      Format.eprintf
        "engine: %d pool run(s) on %d domain(s): %d task(s), %d steal(s), %d \
         idle probe(s)@."
        (List.length !pool_runs) jobs tasks steals idle
    end
  in
  Cmd.v
    (Cmd.info "measure"
       ~doc:
         "Exhaustively measure every mechanism for a corpus program. The \
          soundness and maximal-yardstick cells run through the unified \
          Secpol.Analyze facade; pick the algorithm with --algo.")
    Term.(const run $ program_arg $ policy_arg $ jobs_arg $ algo_arg $ json_arg)

(* --- leak ------------------------------------------------------------------ *)

let leak_cmd =
  let run name policy =
    let e = entry_of_name name in
    let p = resolve_policy e policy in
    let q = Paper.program e in
    Printf.printf "%s under %s, uniform inputs on %s\n" e.Paper.name
      (Policy.name p)
      (Format.asprintf "%a" Secpol_core.Space.pp e.Paper.space);
    let report view label =
      let r = Leakage.of_program ~view p q e.Paper.space in
      Format.printf "%-22s %a@." label Leakage.pp r
    in
    report `Value "values only:";
    report `Timed "with running time:"
  in
  Cmd.v
    (Cmd.info "leak"
       ~doc:"Measure a program's information leakage in bits, with and \
             without observable running time")
    Term.(const run $ program_arg $ policy_arg)

(* --- plan ------------------------------------------------------------------ *)

let plan_cmd =
  let run name policy =
    let e = entry_of_name name in
    let p = resolve_policy e policy in
    let r = Secpol.Release.plan ~policy:p ~space:e.Paper.space e.Paper.prog in
    Printf.printf "program:  %s\npolicy:   %s\n" e.Paper.name (Policy.name p);
    Printf.printf "decision: %s\n" (Secpol.Release.route_name r.Secpol.Release.route);
    Printf.printf "serves:   %.0f%% (best possible %.0f%%)\n"
      (100.0 *. r.Secpol.Release.completeness)
      (100.0 *. r.Secpol.Release.maximal);
    List.iter (Printf.printf "  - %s\n") r.Secpol.Release.notes
  in
  Cmd.v
    (Cmd.info "plan"
       ~doc:
         "Decide how to release a program under a policy: ship bare, guard \
          halts, monitor, or refuse")
    Term.(const run $ program_arg $ policy_arg)

(* --- synthesize ------------------------------------------------------------ *)

let synthesize_cmd =
  let run name policy =
    let e = entry_of_name name in
    let p = resolve_policy e policy in
    let module Search = Secpol_transform.Search in
    let r = Search.search ~policy:p ~space:e.Paper.space e.Paper.prog in
    let t = Tabulate.create ~header:[ "candidate"; "serves" ] in
    List.iter
      (fun c ->
        Tabulate.add_row t
          [ c.Search.label; Printf.sprintf "%.0f%%" (100.0 *. c.Search.ratio) ])
      r.Search.candidates;
    Tabulate.print
      ~title:(Printf.sprintf "%s under %s" e.Paper.name (Policy.name p))
      t;
    List.iter
      (fun (label, why) -> Printf.printf "discarded %-24s %s\n" label why)
      r.Search.discarded;
    Printf.printf
      "\njoin of sound candidates serves %.0f%%; brute-force maximal serves %.0f%%\n"
      (100.0 *. r.Search.best_ratio)
      (100.0 *. r.Search.maximal_ratio);
    if r.Search.best_ratio +. 1e-9 < r.Search.maximal_ratio then
      print_endline
        "(the remaining gap is Theorem 4 territory: no transform sequence in\n\
        \ the pool closes it)"
  in
  Cmd.v
    (Cmd.info "synthesize"
       ~doc:
         "Search transform sequences for the most complete sound mechanism \
          (Section 4's recipe, bounded)")
    Term.(const run $ program_arg $ policy_arg)

(* --- lint ------------------------------------------------------------------ *)

let lint_cmd =
  let module Lint = Secpol_staticflow.Lint in
  let module Metrics = Secpol_trace.Metrics in
  let module Json = Lint.Json in
  let run name policy format json =
    let format = output_format json format in
    let e = entry_of_name name in
    let p = resolve_policy e policy in
    match Policy.allowed_indices p with
    | None ->
        prerr_endline "linting needs an allow(...) policy";
        exit 2
    | Some allowed ->
        let src, prog = spanned_prog e in
        let report = Lint.check ~prog ~allowed (Compile.compile prog) in
        (* The summary goes through the shared metrics registry, so the
           linter's counters render exactly like every other monitored
           report's. *)
        let metrics = Metrics.create () in
        Metrics.incr (Metrics.counter metrics "lint/programs");
        if report.Lint.certified then
          Metrics.incr (Metrics.counter metrics "lint/certified");
        List.iter
          (fun (f : Lint.finding) ->
            Metrics.incr
              (Metrics.counter metrics
                 (Printf.sprintf "lint/%s/%s"
                    (Lint.severity_name f.Lint.severity)
                    (Lint.rule_name f.Lint.rule))))
          report.Lint.findings;
        (match format with
        | `Json ->
            let js =
              match Lint.to_json report with
              | Json.Obj fields ->
                  Json.Obj (fields @ [ ("metrics", Metrics.to_json metrics) ])
              | v -> v
            in
            print_endline (Json.render js)
        | `Text ->
            let lines = String.split_on_char '\n' src in
            List.iteri
              (fun i l -> if l <> "" || i < List.length lines - 1 then
                  Printf.printf "%3d | %s\n" (i + 1) l)
              lines;
            print_newline ();
            Format.printf "%a@." Lint.pp_report report;
            Format.printf "@.%a@." Metrics.pp metrics);
        exit (if report.Lint.certified then 0 else 1)
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Statically lint a program for information-flow violations, with \
          source-span witness chains. Exits 0 when certified, 1 on \
          violations, 2 on usage errors.")
    Term.(const run $ program_arg $ policy_arg $ format_arg $ json_arg)

(* --- chaos ----------------------------------------------------------------- *)

let chaos_cmd =
  let module Sweep = Secpol_fault.Sweep in
  let module Crash = Secpol_fault.Crash in
  let module Dist = Secpol_dist.Sweep in
  let module Serverchaos = Secpol_server.Chaos in
  let run program mode seeds base_seed horizon retries crash crash_points
      snapshot_every dist server format json jobs trace trace_format =
    let jobs = check_jobs jobs in
    let format = output_format json format in
    let entries =
      match program with None -> Paper.all | Some name -> [ entry_of_name name ]
    in
    if (if dist then 1 else 0) + (if crash then 1 else 0)
       + (if server then 1 else 0)
       > 1
    then begin
      prerr_endline "--dist, --crash and --server are separate sweeps; pick one";
      exit 2
    end;
    let code =
      with_sink trace trace_format (fun sink ->
          if server then begin
            let report =
              Serverchaos.run ~entries ~mode ~seeds ~base_seed ~sink ~jobs ()
            in
            report_pool report.Serverchaos.pool;
            (match format with
            | `Json -> print_endline (Serverchaos.to_json_string report)
            | `Text -> Format.printf "%a" Serverchaos.pp report);
            if report.Serverchaos.ok then 0 else 1
          end
          else if dist then begin
            let report =
              Dist.run ~entries ~mode ~seeds ~base_seed ~sink ~jobs ()
            in
            report_pool report.Dist.pool;
            (match format with
            | `Json -> print_endline (Dist.to_json_string report)
            | `Text -> Format.printf "%a" Dist.pp report);
            if report.Dist.ok then 0 else 1
          end
          else if crash then begin
            let report =
              Crash.run ~entries ~mode ~crash_points ~base_seed ~snapshot_every
                ~sink ~jobs ()
            in
            report_pool report.Crash.pool;
            (match format with
            | `Json -> print_endline (Crash.to_json_string report)
            | `Text -> Format.printf "%a" Crash.pp report);
            if report.Crash.ok then 0 else 1
          end
          else begin
            let report =
              Sweep.run ~entries ~mode ~seeds ~base_seed ~horizon ~retries
                ~sink ~jobs ()
            in
            report_pool report.Sweep.pool;
            (match format with
            | `Json -> print_endline (Sweep.to_json_string report)
            | `Text -> Format.printf "%a" Sweep.pp report);
            if report.Sweep.ok then 0 else 1
          end)
    in
    exit code
  in
  let crash =
    let doc =
      "Run the crash-recovery sweep instead: kill journaled runs at every \
       crash point, tamper with the media, and verify every resume is \
       bit-identical to the uninterrupted run or degrades to \xce\x9b/recovery."
    in
    Arg.(value & flag & info [ "crash" ] ~doc)
  in
  let dist =
    let doc =
      "Run the distributed sweep instead: split runs across seeded \
       shard-kill / network-fault / coordinator-timeout plans and verify \
       zero fail-open merges, with undisturbed runs bit-identical to the \
       guarded single enforcer."
    in
    Arg.(value & flag & info [ "dist" ] ~doc)
  in
  let server =
    let doc =
      "Run the enforcement-service sweep instead: drive seeded client \
       misbehaviour (disconnects, slowloris, malformed frames, overload \
       bursts) and engine kills against an in-process service and verify \
       every request is answered in E \xe2\x88\xaa F — no fail-open grant, \
       no silence."
    in
    Arg.(value & flag & info [ "server" ] ~doc)
  in
  let crash_points =
    let doc = "Crash points per (program, policy, input) case (with --crash)." in
    Arg.(value & opt int 50 & info [ "crash-points" ] ~docv:"N" ~doc)
  in
  let snapshot_every =
    let doc = "Snapshot interval of the journaled runs (with --crash)." in
    Arg.(
      value
      & opt int Crash.default_snapshot_every
      & info [ "snapshot-every" ] ~docv:"N" ~doc)
  in
  let program =
    let doc =
      "Corpus program name or .spl path; the whole corpus when omitted."
    in
    Arg.(value & pos 0 (some string) None & info [] ~docv:"PROGRAM" ~doc)
  in
  let seeds =
    let doc = "Number of seeded fault plans per (program, policy) pair." in
    Arg.(value & opt int 100 & info [ "seeds" ] ~docv:"N" ~doc)
  in
  let horizon =
    let doc = "Fault points strike at steps below this bound." in
    Arg.(value & opt int 24 & info [ "horizon" ] ~docv:"STEPS" ~doc)
  in
  let retries =
    let doc = "Supervisor retry budget (transient faults clear on retry)." in
    Arg.(value & opt int 2 & info [ "retries" ] ~docv:"N" ~doc)
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:
         "Differential fault-injection sweep: run monitors under seeded \
          fault plans and verify every failure lands in a violation notice \
          (fail-secure), never in a disallowed grant (fail-open). Exits 0 \
          when fail-secure, 1 on a fail-open or clean-run mismatch, 2 on \
          usage errors.")
    Term.(
      const run $ program $ mode_arg $ seeds $ seed_arg $ horizon $ retries
      $ crash $ crash_points $ snapshot_every $ dist $ server $ format_arg
      $ json_arg $ jobs_arg $ trace_arg $ trace_format_arg)

(* --- serve / client -------------------------------------------------------- *)

module SDaemon = Secpol_server.Daemon
module SEngine = Secpol_server.Engine
module SStore = Secpol_server.Store
module SClient = Secpol_server.Client
module SLoadgen = Secpol_server.Loadgen
module STop = Secpol_server.Top
module SMetrics = Secpol_trace.Metrics
module LJson = Secpol_staticflow.Lint.Json

let socket_arg =
  let doc = "Unix-domain socket path of the enforcement service." in
  Arg.(value & opt (some string) None & info [ "socket" ] ~docv:"PATH" ~doc)

let tcp_arg =
  let doc =
    "TCP endpoint of the enforcement service, e.g. 127.0.0.1:7070 (when \
     serving, port 0 lets the kernel pick; the bound address is printed)."
  in
  Arg.(value & opt (some string) None & info [ "tcp" ] ~docv:"HOST:PORT" ~doc)

let address_of socket tcp =
  match (socket, tcp) with
  | Some _, Some _ ->
      prerr_endline "--socket and --tcp are exclusive; pick one";
      exit 2
  | Some path, None -> SDaemon.Unix_path path
  | None, Some hostport -> (
      match String.rindex_opt hostport ':' with
      | Some i -> (
          let host = String.sub hostport 0 i in
          let port =
            String.sub hostport (i + 1) (String.length hostport - i - 1)
          in
          match int_of_string_opt port with
          | Some port when host <> "" && port >= 0 -> SDaemon.Tcp (host, port)
          | _ ->
              prerr_endline "--tcp expects HOST:PORT, e.g. 127.0.0.1:7070";
              exit 2)
      | None ->
          prerr_endline "--tcp expects HOST:PORT, e.g. 127.0.0.1:7070";
          exit 2)
  | None, None ->
      prerr_endline "need --socket PATH or --tcp HOST:PORT";
      exit 2

let session_arg =
  let doc = "Session name on the service." in
  Arg.(value & opt string "cli" & info [ "session" ] ~docv:"NAME" ~doc)

(* Like [address_of], but both-omitted means "no metrics plane". *)
let metrics_address_of msocket mtcp =
  match (msocket, mtcp) with
  | None, None -> None
  | _ -> Some (address_of msocket mtcp)

let metrics_socket_arg =
  let doc = "Serve GET /metrics and /healthz on this Unix-domain socket." in
  Arg.(
    value & opt (some string) None & info [ "metrics-socket" ] ~docv:"PATH" ~doc)

let metrics_tcp_arg =
  let doc =
    "Serve GET /metrics (Prometheus text) and /healthz on this TCP endpoint, \
     e.g. 127.0.0.1:9464 (port 0 lets the kernel pick; the bound address is \
     printed)."
  in
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics-tcp" ] ~docv:"HOST:PORT" ~doc)

let serve_cmd =
  let run socket tcp msocket mtcp store capacity exec_budget frame_deadline
      deadline_ms jobs trace trace_format =
    let address = address_of socket tcp in
    let metrics_address = metrics_address_of msocket mtcp in
    let jobs = check_jobs jobs in
    if capacity < 1 then begin
      prerr_endline "--capacity must be at least 1";
      exit 2
    end;
    let config =
      {
        SEngine.default_config with
        SEngine.capacity;
        exec_budget;
        frame_deadline;
        default_deadline_us = deadline_ms * 1000;
        jobs;
      }
    in
    let store = Option.map SStore.dir store in
    let code =
      with_sink trace trace_format (fun sink ->
          (try
             SDaemon.serve ~config ~sink ?store
               ~ready:(fun a ->
                 Printf.printf "secpol serve: listening on %s\n%!"
                   (SDaemon.address_to_string a))
               ?metrics_address
               ~metrics_ready:(fun a ->
                 Printf.printf "secpol serve: metrics on %s\n%!"
                   (SDaemon.address_to_string a))
               address
           with Unix.Unix_error (e, fn, arg) ->
             Printf.eprintf "cannot serve: %s: %s %s\n" fn
               (Unix.error_message e) arg;
             exit 2);
          0)
    in
    exit code
  in
  let store =
    let doc =
      "Durable state directory (session manifests and journals survive \
       restarts); an in-memory store when omitted."
    in
    Arg.(value & opt (some string) None & info [ "store" ] ~docv:"DIR" ~doc)
  in
  let capacity =
    let doc = "Admission queue bound; requests beyond it are shed \xce\x9b/overload." in
    Arg.(
      value
      & opt int SEngine.default_config.SEngine.capacity
      & info [ "capacity" ] ~docv:"N" ~doc)
  in
  let exec_budget =
    let doc = "Queued requests executed per scheduling round." in
    Arg.(
      value
      & opt int SEngine.default_config.SEngine.exec_budget
      & info [ "exec-budget" ] ~docv:"N" ~doc)
  in
  let frame_deadline =
    let doc = "Seconds a partially written frame may stall before the \
               connection is refused (slowloris)." in
    Arg.(
      value
      & opt float SEngine.default_config.SEngine.frame_deadline
      & info [ "frame-deadline" ] ~docv:"SECONDS" ~doc)
  in
  let deadline_ms =
    let doc = "Default per-request deadline in milliseconds, applied when a \
               request does not carry its own." in
    Arg.(
      value
      & opt int (SEngine.default_config.SEngine.default_deadline_us / 1000)
      & info [ "deadline-ms" ] ~docv:"MS" ~doc)
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the enforcement service: a long-lived daemon answering \
          enforce requests over a Unix or TCP socket, with per-request \
          deadlines, a bounded admission queue that sheds \xce\x9b/overload \
          under load, and graceful drain on SIGTERM. With --store, \
          journaled sessions survive crash-restart. With --metrics-tcp or \
          --metrics-socket, a second listener serves GET /metrics \
          (Prometheus text) and GET /healthz, and keeps answering through \
          drain.")
    Term.(
      const run $ socket_arg $ tcp_arg $ metrics_socket_arg $ metrics_tcp_arg
      $ store $ capacity $ exec_budget $ frame_deadline $ deadline_ms
      $ jobs_arg $ trace_arg $ trace_format_arg)

(* The service's stats payload is Metrics JSON; render it as the same
   kind of table every other report uses. Falls back to the raw payload
   if a newer/older daemon sends a shape this build cannot parse. *)
let render_stats_table body =
  match Result.bind (LJson.parse body) SMetrics.snapshot_of_json with
  | Error m ->
      Printf.eprintf "unparseable stats payload (%s); raw JSON follows\n" m;
      print_endline body
  | Ok snap ->
      let t = Tabulate.create ~header:[ "metric"; "kind"; "value" ] in
      List.iter
        (fun (name, stat) ->
          match (stat : SMetrics.stat) with
          | SMetrics.Counter c ->
              Tabulate.add_row t [ name; "counter"; string_of_int c ]
          | SMetrics.Gauge g ->
              Tabulate.add_row t [ name; "gauge"; string_of_int g ]
          | SMetrics.Histogram s ->
              Tabulate.add_row t
                [
                  name;
                  "histogram";
                  Printf.sprintf "n=%d min=%d p50=%d p99=%d max=%d"
                    s.SMetrics.n s.SMetrics.min
                    (STop.percentile s 0.50)
                    (STop.percentile s 0.99)
                    s.SMetrics.max;
                ])
        snap;
      Tabulate.print t

let client_cmd =
  let run socket tcp action program session policy mode journaled inputs
      request_id deadline_ms requests window retries stats_json =
    let address = address_of socket tcp in
    let with_session () =
      match program with
      | None ->
          prerr_endline "enforce and load need PROGRAM";
          exit 2
      | Some name ->
          let e = entry_of_name name in
          let p = resolve_policy e policy in
          let spec =
            try SLoadgen.session_spec ~session ~mode ~journaled ~policy:p ()
            with Invalid_argument _ ->
              prerr_endline "the service needs an allow(...) policy";
              exit 2
          in
          (e, spec)
    in
    let c =
      try SClient.connect ~retries ~retry_delay:0.1 address
      with Unix.Unix_error (e, fn, arg) ->
        Printf.eprintf "cannot connect: %s: %s %s\n" fn (Unix.error_message e)
          arg;
        exit 2
    in
    let open_session spec =
      match SClient.open_session c spec with
      | Ok () -> ()
      | Error m ->
          prerr_endline ("session refused: " ^ m);
          exit 1
    in
    let show = function
      | Ok reply ->
          show_enforce_reply reply;
          0
      | Error m ->
          prerr_endline ("refused: " ^ m);
          1
    in
    let code =
      try
        match action with
        | `Enforce ->
            let e, spec = with_session () in
            let a =
              match inputs with
              | Some s -> parse_inputs s
              | None ->
                  prerr_endline "enforce needs --inputs";
                  exit 2
            in
            check_arity e a;
            open_session spec;
            let deadline_us =
              if deadline_ms < 0 then -1 else deadline_ms * 1000
            in
            show
              (SClient.enforce c ~deadline_us ~session ~request_id
                 ~program:e.Paper.name a)
        | `Resume -> show (SClient.resume c ~session ~request_id)
        | `Stats -> (
            match SClient.stats c with
            | Ok body ->
                if stats_json then print_endline body
                else render_stats_table body;
                0
            | Error m ->
                prerr_endline ("refused: " ^ m);
                1)
        | `Drain -> (
            match SClient.drain c with
            | Ok outstanding ->
                Printf.printf "draining; %d outstanding\n" outstanding;
                0
            | Error m ->
                prerr_endline ("refused: " ^ m);
                1)
        | `Load ->
            let e, spec = with_session () in
            let r = SLoadgen.run_client ~requests ~window ~client:c ~spec ~entry:e () in
            Format.printf "%a" SLoadgen.pp r;
            if r.SLoadgen.fail_open = 0 then 0 else 1
      with
      | SClient.Protocol_error m ->
          prerr_endline ("protocol error: " ^ m);
          1
      | Failure m ->
          prerr_endline m;
          1
    in
    SClient.close c;
    exit code
  in
  let action =
    let doc =
      "What to ask the service: $(b,enforce) one request, $(b,resume) a \
       crashed journaled request, $(b,stats) for metrics JSON, $(b,drain) \
       for graceful shutdown, or $(b,load) to run the pipelined load \
       generator."
    in
    Arg.(
      required
      & pos 0
          (some
             (enum
                [
                  ("enforce", `Enforce);
                  ("resume", `Resume);
                  ("stats", `Stats);
                  ("drain", `Drain);
                  ("load", `Load);
                ]))
          None
      & info [] ~docv:"ACTION" ~doc)
  in
  let program =
    let doc = "Corpus program name (for enforce and load)." in
    Arg.(value & pos 1 (some string) None & info [] ~docv:"PROGRAM" ~doc)
  in
  let inputs =
    let doc = "Comma-separated integer inputs, e.g. 3,0 (for enforce)." in
    Arg.(
      value
      & opt (some string) None
      & info [ "i"; "inputs" ] ~docv:"INPUTS" ~doc)
  in
  let journaled =
    let doc =
      "Open the session journaled: every run is durable and resumable \
       after a crash."
    in
    Arg.(value & flag & info [ "journaled" ] ~doc)
  in
  let request_id =
    let doc = "Client-chosen request id (echoed in the reply; the resume \
               key for journaled runs)." in
    Arg.(value & opt int 0 & info [ "request-id" ] ~docv:"N" ~doc)
  in
  let deadline_ms =
    let doc = "Per-request deadline in milliseconds; 0 is already expired \
               (always \xce\x9b/overload), negative means the server \
               default." in
    Arg.(value & opt int (-1) & info [ "deadline-ms" ] ~docv:"MS" ~doc)
  in
  let requests =
    let doc = "Requests to send (for load)." in
    Arg.(value & opt int 2000 & info [ "requests" ] ~docv:"N" ~doc)
  in
  let window =
    let doc = "Requests kept outstanding (for load)." in
    Arg.(value & opt int 32 & info [ "window" ] ~docv:"N" ~doc)
  in
  let retries =
    let doc = "Connection attempts to a daemon still booting." in
    Arg.(value & opt int 0 & info [ "retries" ] ~docv:"N" ~doc)
  in
  let stats_json =
    let doc =
      "Print the stats payload as the service's raw JSON instead of a \
       table (for stats)."
    in
    Arg.(value & flag & info [ "json" ] ~doc)
  in
  Cmd.v
    (Cmd.info "client"
       ~doc:
         "Talk to a running enforcement service: enforce a request, resume \
          a crashed journaled run, fetch stats, ask for drain, or drive \
          the load generator against it.")
    Term.(
      const run $ socket_arg $ tcp_arg $ action $ program $ session_arg
      $ policy_arg $ mode_arg $ journaled $ inputs $ request_id $ deadline_ms
      $ requests $ window $ retries $ stats_json)

(* --- top -------------------------------------------------------------------- *)

let top_cmd =
  let run socket tcp from interval frames once no_clear =
    if interval <= 0. then begin
      prerr_endline "--interval must be positive";
      exit 2
    end;
    if frames < 0 then begin
      prerr_endline "--frames must be non-negative";
      exit 2
    end;
    let frames = if once then 1 else frames in
    let clear = if no_clear then "" else "\x1b[2J\x1b[H" in
    let show prev snap =
      print_string clear;
      print_string (STop.render ?prev ~interval snap);
      flush stdout
    in
    let code =
      match from with
      | Some path ->
          (* Replay: one frame per JSONL line, rates from consecutive
             frames — the same renderer the live mode drives, testable
             without a daemon. *)
          let contents =
            try In_channel.with_open_bin path In_channel.input_all
            with Sys_error m ->
              prerr_endline m;
              exit 2
          in
          (match STop.frames_of_jsonl contents with
          | Error m ->
              Printf.eprintf "%s: %s\n" path m;
              2
          | Ok fs ->
              let rec go prev shown = function
                | [] -> 0
                | _ when frames > 0 && shown >= frames -> 0
                | f :: rest ->
                    show prev f;
                    go (Some f) (shown + 1) rest
              in
              go None 0 fs)
      | None ->
          let address = address_of socket tcp in
          let rec go prev shown =
            match STop.scrape_snapshot address with
            | Error m ->
                prerr_endline ("scrape failed: " ^ m);
                1
            | Ok snap ->
                show prev snap;
                if frames > 0 && shown + 1 >= frames then 0
                else begin
                  Unix.sleepf interval;
                  go (Some snap) (shown + 1)
                end
          in
          go None 0
    in
    exit code
  in
  let socket =
    let doc = "Unix-domain socket path of the daemon's $(i,metrics) plane." in
    Arg.(value & opt (some string) None & info [ "socket" ] ~docv:"PATH" ~doc)
  in
  let tcp =
    let doc =
      "TCP endpoint of the daemon's $(i,metrics) plane, e.g. 127.0.0.1:9464."
    in
    Arg.(value & opt (some string) None & info [ "tcp" ] ~docv:"HOST:PORT" ~doc)
  in
  let from =
    let doc =
      "Replay recorded frames instead of scraping: one JSON metrics \
       snapshot per line (the format `secpol client stats --json` and the \
       trace sinks emit)."
    in
    Arg.(value & opt (some string) None & info [ "from" ] ~docv:"FILE" ~doc)
  in
  let interval =
    let doc = "Seconds between scrapes (and the rate window)." in
    Arg.(value & opt float 1.0 & info [ "interval" ] ~docv:"SECONDS" ~doc)
  in
  let frames =
    let doc = "Stop after $(docv) frames; 0 means until interrupted." in
    Arg.(value & opt int 0 & info [ "frames" ] ~docv:"N" ~doc)
  in
  let once =
    let doc = "Render a single frame and exit (same as --frames 1)." in
    Arg.(value & flag & info [ "once" ] ~doc)
  in
  let no_clear =
    let doc = "Do not clear the screen between frames (for piping)." in
    Arg.(value & flag & info [ "no-clear" ] ~doc)
  in
  Cmd.v
    (Cmd.info "top"
       ~doc:
         "Live dashboard over a daemon's /metrics: one row per session \
          with request rate, p50/p99 latency, sheds, verdict-cache hits \
          and breaker state. Scrapes the metrics address every --interval \
          seconds, or replays recorded JSONL frames with --from. Exits 0, \
          1 when a scrape fails, 2 on usage errors.")
    Term.(
      const run $ socket $ tcp $ from $ interval $ frames $ once $ no_clear)

(* --- explain ---------------------------------------------------------------- *)

let explain_cmd =
  let run program inputs mode policy from =
    let explain_events ?allowed events =
      match Provenance.explain ?allowed events with
      | Ok ex ->
          Format.printf "%a@." Provenance.pp ex;
          0
      | Error m ->
          prerr_endline ("cannot explain: " ^ m);
          1
    in
    let code =
      match from with
      | Some path ->
          let contents =
            try In_channel.with_open_bin path In_channel.input_all
            with Sys_error m ->
              prerr_endline m;
              exit 2
          in
          (match Event.decode_lines contents with
          | Ok events ->
              let allowed =
                Option.bind policy Policy.allowed_indices
              in
              explain_events ?allowed events
          | Error m ->
              Printf.eprintf "%s: %s\n" path m;
              2)
      | None -> (
          match (program, inputs) with
          | Some name, Some inputs ->
              let e = entry_of_name name in
              let p = resolve_policy e policy in
              let a = parse_inputs inputs in
              check_arity e a;
              (match Policy.allowed_indices p with
              | None ->
                  prerr_endline "explain needs an allow(...) policy";
                  2
              | Some allowed ->
                  let g = Paper.graph e in
                  let sink = Sink.memory () in
                  Sink.emit sink
                    (Event.run_header ~program:e.Paper.name
                       ~arity:g.Graph.arity ~mode:(Dynamic.mode_name mode)
                       ~allowed ~inputs:a);
                  let r =
                    Run.run (Run.config ~policy:p ~mode ~trace:sink ()) g a
                  in
                  Sink.emit sink (Event.of_reply r);
                  (match r.Mechanism.response with
                  | Mechanism.Granted v ->
                      Format.printf "granted: %a — nothing to explain@."
                        Value.pp v;
                      0
                  | _ -> explain_events (Sink.events sink)))
          | _ ->
              prerr_endline
                "explain needs PROGRAM and --inputs, or --from TRACE";
              2)
    in
    exit code
  in
  let program =
    let doc =
      "Corpus program name or .spl path (omit when reading --from)."
    in
    Arg.(value & pos 0 (some string) None & info [] ~docv:"PROGRAM" ~doc)
  in
  let inputs =
    let doc = "Comma-separated integer inputs, e.g. 3,0." in
    Arg.(
      value
      & opt (some string) None
      & info [ "i"; "inputs" ] ~docv:"INPUTS" ~doc)
  in
  let from =
    let doc =
      "Explain a previously recorded JSONL trace (written by --trace) \
       instead of running anything."
    in
    Arg.(value & opt (some string) None & info [ "from" ] ~docv:"TRACE" ~doc)
  in
  Cmd.v
    (Cmd.info "explain"
       ~doc:
         "Explain a violation verdict: run the monitor (or read a recorded \
          trace) and reconstruct, for each disallowed input coordinate, the \
          chain of boxes that carried it from the input to the condemning \
          box — data flow for \xce\x9b/explicit, control flow for \
          \xce\x9b/implicit, the about-to-test decision for \xce\x9b/timed. \
          Exits 0 when the run was granted or the denial explained, 1 when \
          there is nothing explainable, 2 on usage errors.")
    Term.(const run $ program $ inputs $ mode_arg $ policy_arg $ from)

(* --- fmt ------------------------------------------------------------------ *)

let fmt_cmd =
  let run path =
    match Secpol_lang.Source.load path with
    | Ok prog -> print_string (Secpol_lang.Source.to_source prog)
    | Error m ->
        Printf.eprintf "%s: %s\n" path m;
        exit 2
  in
  let path =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"A .spl source file.")
  in
  Cmd.v
    (Cmd.info "fmt" ~doc:"Parse a .spl file and print it re-formatted")
    Term.(const run $ path)

let () =
  let info =
    Cmd.info "secpol" ~version:"1.0.0"
      ~doc:"Security policies, protection mechanisms, soundness - Jones & Lipton (1975), executable"
  in
  (* Exit-code contract: 0 success/certified, 1 violations, 2 usage errors.
     cmdliner reports bad option values as Exit.cli_error (124); fold that
     into 2 like the hand-rolled usage exits above. *)
  let code =
    Cmd.eval ~term_err:2
      (Cmd.group info
         [ list_cmd; show_cmd; run_cmd; enforce_cmd; resume_cmd; explain_cmd; certify_cmd; lint_cmd; measure_cmd; leak_cmd; plan_cmd; synthesize_cmd; chaos_cmd; serve_cmd; client_cmd; top_cmd; fmt_cmd ])
  in
  exit (if code = Cmd.Exit.cli_error then 2 else code)
