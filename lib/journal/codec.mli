(** Binary codec for durable enforcement state.

    Everything the journal writes goes through this module: 8-byte
    little-endian integers, length-prefixed strings and arrays, a CRC-32
    checksum, and a layout {!format_version} stamped into every snapshot
    and record. Decoding is total — every way the bytes can be wrong
    (truncation, foreign version, bad checksum, nonsense lengths) is a
    constructor of {!decode_error}, never an exception escaping to the
    caller and never a misread state. The fail-secure supervisor maps any
    such error to the violation notice [Λ/recovery]
    ({!Secpol_fault.Guard.recovery_notice}). *)

val format_version : int
(** Version tag of the byte layout, covering the [Expr]/[Store]/
    [Dynamic.image] shapes this build serializes. Decoders reject any other
    version with {!Bad_version}: a journal written under one layout must
    never be replayed under another. *)

type decode_error =
  | Truncated of { wanted : int; have : int }
  | Bad_magic of { got : string; want : string }
  | Bad_version of { got : int; want : int }
  | Bad_checksum of { at : int }
  | Malformed of string

exception Error of decode_error
(** Raised by readers; confined to this library — the public entry points
    return [result]s via {!guard}. *)

val error_message : decode_error -> string

val guard : (unit -> 'a) -> ('a, decode_error) result
(** Runs a decoder to a [result]. Totality backstop included: any
    exception other than {!Error} (the bytes are untrusted input) is
    degraded to [Malformed] rather than allowed to escape. *)

val crc32 : string -> int
(** CRC-32 (IEEE 802.3, reflected). [crc32 "123456789" = 0xCBF43926]. *)

(** Primitive writers over a [Buffer]. *)
module W : sig
  type t = Buffer.t

  val create : unit -> t
  val contents : t -> string
  val int : t -> int -> unit
  val bool : t -> bool -> unit
  val string : t -> string -> unit
  val int_array : t -> int array -> unit
end

(** Primitive readers; length fields are validated against the remaining
    bytes before any allocation. *)
module R : sig
  type t

  val of_string : string -> t
  val remaining : t -> int
  val eof : t -> bool
  val int : t -> int
  val bool : t -> bool
  val string : t -> string
  val int_array : t -> int array
end

val write_version : ?version:int -> W.t -> unit
(** Defaults to {!format_version}; the override exists for version-mismatch
    tests and future migration tooling. *)

val read_version : R.t -> unit
(** @raise Error [Bad_version] on any version other than
    {!format_version}. *)

val write_value : W.t -> Secpol_core.Value.t -> unit
val read_value : R.t -> Secpol_core.Value.t

val write_image : W.t -> Secpol_taint.Dynamic.image -> unit
val read_image : R.t -> Secpol_taint.Dynamic.image

val encode_image : ?version:int -> Secpol_taint.Dynamic.image -> string
(** Version tag followed by the image; the unit the QCheck round-trip
    property quantifies over. *)

val decode_image : string -> (Secpol_taint.Dynamic.image, decode_error) result
(** Inverse of {!encode_image} on exact encodings; rejects trailing bytes,
    foreign versions and truncations with the precise error. *)
