module Iset = Secpol_core.Iset
module Value = Secpol_core.Value
module Mechanism = Secpol_core.Mechanism
module Graph = Secpol_flowgraph.Graph
module Hook = Secpol_flowgraph.Hook
module Emit = Secpol_flowgraph.Emit
module Expr = Secpol_flowgraph.Expr
module Dynamic = Secpol_taint.Dynamic
module Event = Secpol_trace.Event
module Sink = Secpol_trace.Sink

let snapshot_magic = "secpol-journal"
let default_snapshot_every = 32

type header = {
  program_ref : string;
  graph_name : string;
  graph_hash : string;
  arity : int;
  inputs : Value.t array;
  mode : Dynamic.mode;
  allowed : Iset.t;
  fuel : int;
  cost : Expr.cost_model;
  chatty : bool;
  snapshot_every : int;
  run_nonce : int;
}

(* MD5 over the printed graph, not CRC-32: the resume gate that refuses to
   replay a journal against a different program must not be defeatable by a
   32-bit collision. *)
let graph_hash g = Digest.string (Format.asprintf "%a" Graph.pp g)

(* Each run stamps a fresh nonce into its snapshot header and every journal
   record it appends. Replay skips records carrying a foreign nonce: when a
   journal directory is reused for a second run and a crash lands between
   the new snapshot's rename and the journal truncation, the previous run's
   strayed records — its verdict included — must never be adopted under the
   new header (a stale grant under different inputs or policy would be
   fail-open). *)
(* Domain-safe: parallel sweeps mint nonces from several domains at once,
   and [lazy (Random.State.make_self_init ())] is neither safe to force
   concurrently nor safe to share. An atomic counter mixed (splitmix64
   finalizer) with a per-process seed gives process-unique, well-spread
   nonces without any lock. *)
let nonce_seed =
  Int64.add
    (Int64.of_float (Unix.gettimeofday () *. 1e6))
    (Int64.mul (Int64.of_int (Unix.getpid ())) 0x9E3779B97F4A7C15L)

let nonce_counter = Atomic.make 0

let fresh_nonce () =
  let z =
    Int64.add nonce_seed
      (Int64.mul
         (Int64.of_int (1 + Atomic.fetch_and_add nonce_counter 1))
         0x9E3779B97F4A7C15L)
  in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  let z = Int64.logxor z (Int64.shift_right_logical z 31) in
  Int64.to_int z land max_int

let config_of_header ?(emit = Emit.none) h =
  {
    Dynamic.mode = h.mode;
    allowed = h.allowed;
    fuel = h.fuel;
    cost = h.cost;
    chatty_notices = h.chatty;
    hook = Hook.none;
    emit;
  }

(* --- payload codecs ------------------------------------------------------ *)

let mode_tag = function
  | Dynamic.High_water -> 0
  | Dynamic.Surveillance -> 1
  | Dynamic.Scoped -> 2
  | Dynamic.Timed -> 3

let mode_of_tag = function
  | 0 -> Dynamic.High_water
  | 1 -> Dynamic.Surveillance
  | 2 -> Dynamic.Scoped
  | 3 -> Dynamic.Timed
  | t ->
      raise (Codec.Error (Codec.Malformed (Printf.sprintf "mode: unknown tag %d" t)))

let cost_tag = function Expr.Uniform -> 0 | Expr.Operand_sized -> 1

let cost_of_tag = function
  | 0 -> Expr.Uniform
  | 1 -> Expr.Operand_sized
  | t ->
      raise (Codec.Error (Codec.Malformed (Printf.sprintf "cost: unknown tag %d" t)))

let write_header b h =
  Codec.W.string b h.program_ref;
  Codec.W.string b h.graph_name;
  Codec.W.string b h.graph_hash;
  Codec.W.int b h.run_nonce;
  Codec.W.int b h.arity;
  Codec.W.int b (Array.length h.inputs);
  Array.iter (Codec.write_value b) h.inputs;
  Codec.W.int b (mode_tag h.mode);
  Codec.W.int b (Iset.to_mask h.allowed);
  Codec.W.int b h.fuel;
  Codec.W.int b (cost_tag h.cost);
  Codec.W.bool b h.chatty;
  Codec.W.int b h.snapshot_every

let read_header r =
  let program_ref = Codec.R.string r in
  let graph_name = Codec.R.string r in
  let graph_hash = Codec.R.string r in
  let run_nonce = Codec.R.int r in
  let arity = Codec.R.int r in
  let n = Codec.R.int r in
  if n < 0 || n > Codec.R.remaining r then
    raise (Codec.Error (Codec.Malformed "header: bad input count"));
  let inputs = Array.init n (fun _ -> Codec.read_value r) in
  let mode = mode_of_tag (Codec.R.int r) in
  let mask = Codec.R.int r in
  if mask < 0 then
    raise (Codec.Error (Codec.Malformed "header: negative policy mask"));
  let allowed = Iset.of_mask mask in
  let fuel = Codec.R.int r in
  let cost = cost_of_tag (Codec.R.int r) in
  let chatty = Codec.R.bool r in
  let snapshot_every = Codec.R.int r in
  if snapshot_every < 1 then
    raise (Codec.Error (Codec.Malformed "header: snapshot interval < 1"));
  {
    program_ref;
    graph_name;
    graph_hash;
    arity;
    inputs;
    mode;
    allowed;
    fuel;
    cost;
    chatty;
    snapshot_every;
    run_nonce;
  }

let snapshot_payload ?version h image =
  let b = Codec.W.create () in
  Codec.W.string b snapshot_magic;
  Codec.write_version ?version b;
  write_header b h;
  (match image with
  | None -> Codec.W.bool b false
  | Some im ->
      Codec.W.bool b true;
      Codec.write_image b im);
  Codec.W.contents b

let decode_snapshot payload =
  Codec.guard (fun () ->
      let r = Codec.R.of_string payload in
      let m = Codec.R.string r in
      if m <> snapshot_magic then
        raise (Codec.Error (Codec.Bad_magic { got = m; want = snapshot_magic }));
      Codec.read_version r;
      let h = read_header r in
      let image =
        if Codec.R.bool r then Some (Codec.read_image r) else None
      in
      if not (Codec.R.eof r) then
        raise (Codec.Error (Codec.Malformed "snapshot: trailing bytes"));
      (h, image))

type record = State of Dynamic.image | Verdict of Mechanism.reply

(* Every record opens with the layout version and the nonce of the run that
   appended it; {!decode_record} surfaces the nonce so replay can skip
   records strayed from a previous run of the same medium. *)

let state_payload ?version ~nonce im =
  let b = Codec.W.create () in
  Codec.write_version ?version b;
  Codec.W.int b nonce;
  Codec.W.int b 0;
  Codec.write_image b im;
  Codec.W.contents b

let verdict_payload ?version ~nonce (reply : Mechanism.reply) =
  let b = Codec.W.create () in
  Codec.write_version ?version b;
  Codec.W.int b nonce;
  Codec.W.int b 1;
  (match reply.Mechanism.response with
  | Mechanism.Granted v ->
      Codec.W.int b 0;
      Codec.write_value b v
  | Mechanism.Denied n ->
      Codec.W.int b 1;
      Codec.W.string b n
  | Mechanism.Hung -> Codec.W.int b 2
  | Mechanism.Failed m ->
      Codec.W.int b 3;
      Codec.W.string b m);
  Codec.W.int b reply.Mechanism.steps;
  Codec.W.contents b

let decode_record payload =
  Codec.guard (fun () ->
      let r = Codec.R.of_string payload in
      Codec.read_version r;
      let nonce = Codec.R.int r in
      let record =
        match Codec.R.int r with
        | 0 -> State (Codec.read_image r)
        | 1 ->
            let response =
              match Codec.R.int r with
              | 0 -> Mechanism.Granted (Codec.read_value r)
              | 1 -> Mechanism.Denied (Codec.R.string r)
              | 2 -> Mechanism.Hung
              | 3 -> Mechanism.Failed (Codec.R.string r)
              | t ->
                  raise
                    (Codec.Error
                       (Codec.Malformed
                          (Printf.sprintf "verdict: unknown tag %d" t)))
            in
            let steps = Codec.R.int r in
            Verdict { Mechanism.response; steps }
        | t ->
            raise
              (Codec.Error
                 (Codec.Malformed (Printf.sprintf "record: unknown kind %d" t)))
      in
      if not (Codec.R.eof r) then
        raise (Codec.Error (Codec.Malformed "record: trailing bytes"));
      (nonce, record))

(* --- the journaled run --------------------------------------------------- *)

type outcome =
  | Completed of Mechanism.reply
  | Killed of { at_box : int; steps : int }

(* Shared by fresh runs and resumed ones. Commit one box at a time; after
   each commit append its full-state record, and every [snapshot_every]
   records fold the journal into a fresh snapshot. The verdict is appended
   BEFORE it is returned: once a reply has been released it is on the
   medium, so no recovery can ever contradict an already-released verdict.
   [kill_at] stops the loop after that many committed (journaled) boxes —
   the chaos sweep's simulated process death. *)
let journaled_loop ?kill_at ?(sink = Sink.null) ~media ~header m st0 =
  let nonce = header.run_nonce in
  let boxes = ref 0 and since_snap = ref 0 in
  let emit st =
    Media.append media (Frame.frame (state_payload ~nonce (Dynamic.image st)));
    incr since_snap;
    if !since_snap >= header.snapshot_every then begin
      Media.checkpoint media (Frame.frame (snapshot_payload header (Some (Dynamic.image st))));
      Sink.emit sink
        (Event.Journal
           {
             kind = Event.Checkpoint;
             step = Dynamic.steps_of st;
             detail = Printf.sprintf "after box %d" !boxes;
           });
      since_snap := 0
    end
  in
  let rec loop st =
    match kill_at with
    | Some k when !boxes >= k ->
        Killed { at_box = !boxes; steps = Dynamic.steps_of st }
    | _ -> (
        match Dynamic.step m st with
        | Dynamic.Final r ->
            Media.append media (Frame.frame (verdict_payload ~nonce r));
            Sink.emit sink (Event.of_reply r);
            Completed r
        | Dynamic.Step st' ->
            incr boxes;
            emit st';
            loop st')
  in
  loop st0

let run ?kill_at ?(snapshot_every = default_snapshot_every) ?(sink = Sink.null)
    ~media ~program_ref (cfg : Dynamic.config) g inputs =
  if snapshot_every < 1 then invalid_arg "Runner.run: snapshot_every < 1";
  Sink.emit sink
    (Event.run_header ~program:program_ref ~arity:g.Graph.arity
       ~mode:(Dynamic.mode_name cfg.Dynamic.mode)
       ~allowed:cfg.Dynamic.allowed ~inputs);
  let header =
    {
      program_ref;
      graph_name = g.Graph.name;
      graph_hash = graph_hash g;
      arity = g.Graph.arity;
      inputs = Array.copy inputs;
      mode = cfg.Dynamic.mode;
      allowed = cfg.Dynamic.allowed;
      fuel = cfg.Dynamic.fuel;
      cost = cfg.Dynamic.cost;
      chatty = cfg.Dynamic.chatty_notices;
      snapshot_every;
      run_nonce = fresh_nonce ();
    }
  in
  let m = Dynamic.prepare cfg g in
  match Dynamic.start m inputs with
  | Error r ->
      (* The run died at the door (arity, non-integer input). Journal the
         verdict anyway: resuming must reproduce the same Failed reply. *)
      Media.checkpoint media (Frame.frame (snapshot_payload header None));
      Media.append media
        (Frame.frame (verdict_payload ~nonce:header.run_nonce r));
      Sink.emit sink (Event.of_reply r);
      Completed r
  | Ok st0 ->
      Media.checkpoint media (Frame.frame (snapshot_payload header (Some (Dynamic.image st0))));
      journaled_loop ?kill_at ~sink ~media ~header m st0

(* --- recovery ------------------------------------------------------------ *)

type failure =
  | No_journal
  | Decode of Codec.decode_error
  | Program_mismatch of string

let failure_message = function
  | No_journal -> "no journal found"
  | Decode e -> Codec.error_message e
  | Program_mismatch m -> "program mismatch: " ^ m

type resumed = {
  header : header;
  replayed : int;
  resumed_steps : int;
  torn_bytes : int;
  was_complete : bool;
  reply : Mechanism.reply;
}

let resume ?kill_at ?emit ?(sink = Sink.null) ~resolve ~media () =
  match Media.load media with
  | None -> Error No_journal
  | Some (snap_bytes, jour_bytes) -> (
      match Frame.one snap_bytes with
      | Error e -> Error (Decode e)
      | Ok payload -> (
          match decode_snapshot payload with
          | Error e -> Error (Decode e)
          | Ok (header, snap_image) -> (
              match resolve header with
              | Error m -> Error (Program_mismatch m)
              | Ok g ->
                  if graph_hash g <> header.graph_hash then
                    Error
                      (Program_mismatch
                         (Printf.sprintf
                            "%s digests to %s, journal was written against %s"
                            g.Graph.name
                            (Digest.to_hex (graph_hash g))
                            (Digest.to_hex header.graph_hash)))
                  else if g.Graph.arity <> header.arity then
                    Error
                      (Program_mismatch
                         (Printf.sprintf "arity %d, journal has %d"
                            g.Graph.arity header.arity))
                  else (
                    match Frame.scan jour_bytes with
                    | Error e -> Error (Decode e)
                    | Ok { Frame.records; dropped_bytes } -> (
                        (* Replay: adopt each state record whose step count
                           strictly advances the state — full-state records
                           make replay a monotone fold, so replaying a
                           journal twice lands on the same state as once,
                           and stale records left by a crash between
                           snapshot rename and journal reset are skipped.
                           Records stamped with a nonce other than this
                           run's are strays from a PREVIOUS run of the same
                           medium (the crash landed between the new
                           snapshot's rename and the journal truncation);
                           adopting them — the old verdict above all —
                           would re-deliver a stale reply under the new
                           header, so they are skipped wholesale. *)
                        let skip step detail =
                          Sink.emit sink
                            (Event.Journal { kind = Event.Replay_skip; step; detail })
                        in
                        let rec replay current verdict n = function
                          | [] -> Ok (current, verdict, n)
                          | payload :: rest -> (
                              match decode_record payload with
                              | Error e -> Error (Decode e)
                              | Ok (nonce, _) when nonce <> header.run_nonce
                                ->
                                  skip 0 "foreign run nonce";
                                  replay current verdict n rest
                              | Ok (_, Verdict r) ->
                                  replay current (Some r) n rest
                              | Ok (_, State im) ->
                                  let advance =
                                    match current with
                                    | None -> true
                                    | Some cur ->
                                        im.Dynamic.im_steps
                                        > cur.Dynamic.im_steps
                                  in
                                  if advance then replay (Some im) verdict (n + 1) rest
                                  else begin
                                    skip im.Dynamic.im_steps
                                      "stale state record (step count does not advance)";
                                    replay current verdict n rest
                                  end)
                        in
                        match replay snap_image None 0 records with
                        | Error e -> Error e
                        | Ok (_, Some r, replayed) ->
                            (* The run finished and its verdict is on the
                               medium; re-deliver it bit-identically. *)
                            Sink.emit sink
                              (Event.Journal
                                 {
                                   kind = Event.Resume;
                                   step = r.Mechanism.steps;
                                   detail =
                                     Printf.sprintf
                                       "verdict already journaled (%d records replayed)"
                                       replayed;
                                 });
                            Sink.emit sink (Event.of_reply r);
                            Ok
                              {
                                header;
                                replayed;
                                resumed_steps = r.Mechanism.steps;
                                torn_bytes = dropped_bytes;
                                was_complete = true;
                                reply = r;
                              }
                        | Ok (current, None, replayed) -> (
                            let cfg = config_of_header ?emit header in
                            let m = Dynamic.prepare cfg g in
                            let st =
                              match current with
                              | Some im -> (
                                  match Dynamic.of_image g im with
                                  | Ok st -> Ok st
                                  | Error msg ->
                                      Error (Decode (Codec.Malformed msg)))
                              | None -> (
                                  (* Crash before the first checkpoint
                                     carried a state: start over from the
                                     journaled inputs. *)
                                  match Dynamic.start m header.inputs with
                                  | Ok st -> Ok st
                                  | Error r -> Error (Decode (Codec.Malformed
                                      ("initial state unavailable: "
                                       ^ (match r.Mechanism.response with
                                         | Mechanism.Failed msg -> msg
                                         | _ -> "start failed")))))
                            in
                            match st with
                            | Error e -> Error e
                            | Ok st ->
                                let resumed_steps = Dynamic.steps_of st in
                                Sink.emit sink
                                  (Event.Journal
                                     {
                                       kind = Event.Resume;
                                       step = resumed_steps;
                                       detail =
                                         Printf.sprintf
                                           "continuing from step %d (%d records \
                                            replayed, %d torn bytes dropped)"
                                           resumed_steps replayed dropped_bytes;
                                     });
                                (* Continue the monitored run, journaling as
                                   we go — a crash during recovery recovers
                                   too. *)
                                let outcome =
                                  journaled_loop ?kill_at ~sink ~media ~header
                                    m st
                                in
                                let reply =
                                  match outcome with
                                  | Completed r -> r
                                  | Killed { at_box; steps } ->
                                      (* [steps] is the interpreter's count
                                         when the kill fired, not the count
                                         recovery started from — the
                                         simulated-crash reply reports real
                                         progress. *)
                                      {
                                        Mechanism.response =
                                          Mechanism.Failed
                                            (Printf.sprintf
                                               "resume killed after %d boxes"
                                               at_box);
                                        steps;
                                      }
                                in
                                Ok
                                  {
                                    header;
                                    replayed;
                                    resumed_steps;
                                    torn_bytes = dropped_bytes;
                                    was_complete = false;
                                    reply;
                                  }))))))
