module Iset = Secpol_core.Iset
module Value = Secpol_core.Value
module Dynamic = Secpol_taint.Dynamic

(* The on-media layout version. Bump whenever the byte layout of anything
   this module writes changes — the Expr/Store/Dynamic.image shape included:
   a journal written by one layout must never be replayed under another, so
   the decoder rejects foreign versions with a typed error instead of
   misinterpreting bytes. Version history: 1 = initial layout; 2 = snapshot
   headers carry an MD5 graph digest and a per-run nonce, and every journal
   record is stamped with that nonce. *)
let format_version = 2

type decode_error =
  | Truncated of { wanted : int; have : int }
  | Bad_magic of { got : string; want : string }
  | Bad_version of { got : int; want : int }
  | Bad_checksum of { at : int }
  | Malformed of string

exception Error of decode_error

let error_message = function
  | Truncated { wanted; have } ->
      Printf.sprintf "truncated: wanted %d more bytes, have %d" wanted have
  | Bad_magic { got; want } ->
      Printf.sprintf "bad magic %S (want %S)" got want
  | Bad_version { got; want } ->
      Printf.sprintf "layout version %d, this build reads %d" got want
  | Bad_checksum { at } -> Printf.sprintf "checksum mismatch at byte %d" at
  | Malformed m -> "malformed: " ^ m

(* Decoding must be total on arbitrary bytes: besides the typed {!Error},
   any exception a reader could be goaded into (the journal is untrusted
   input) is degraded to [Malformed] rather than allowed to escape — the
   caller maps every decode failure to Λ/recovery, never a crash. *)
let guard f =
  match f () with
  | v -> Ok v
  | exception Error e -> Error e
  | exception exn ->
      Error (Malformed ("unexpected exception: " ^ Printexc.to_string exn))

(* --- CRC-32 (IEEE, reflected), the record checksum ---------------------- *)

let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 <> 0 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let crc32 s =
  let t = Lazy.force crc_table in
  let c = ref 0xFFFFFFFF in
  String.iter
    (fun ch -> c := t.((!c lxor Char.code ch) land 0xff) lxor (!c lsr 8))
    s;
  !c lxor 0xFFFFFFFF

(* --- primitive writers and readers --------------------------------------

   Integers travel as 8-byte little-endian two's complement (OCaml's 63-bit
   ints embed exactly); strings and arrays are length-prefixed. Readers
   raise {!Error} with a typed reason; [guard] turns that into a result at
   the decode boundary. Length fields are validated against the remaining
   bytes before any allocation, so a corrupted length cannot demand
   gigabytes or crash the reader. *)

module W = struct
  type t = Buffer.t

  let create () = Buffer.create 256
  let contents = Buffer.contents

  let int b n =
    let by = Bytes.create 8 in
    Bytes.set_int64_le by 0 (Int64.of_int n);
    Buffer.add_bytes b by

  let bool b v = int b (if v then 1 else 0)

  let string b s =
    int b (String.length s);
    Buffer.add_string b s

  let int_array b a =
    int b (Array.length a);
    Array.iter (int b) a
end

module R = struct
  type t = { src : string; mutable pos : int }

  let of_string s = { src = s; pos = 0 }
  let remaining r = String.length r.src - r.pos
  let eof r = remaining r = 0

  let need r n =
    if n > remaining r then
      raise (Error (Truncated { wanted = n; have = remaining r }))

  let int r =
    need r 8;
    let v = Int64.to_int (String.get_int64_le r.src r.pos) in
    r.pos <- r.pos + 8;
    v

  let bool r = int r <> 0

  let length r what =
    let n = int r in
    if n < 0 then raise (Error (Malformed (what ^ ": negative length")));
    n

  let string r =
    let n = length r "string" in
    need r n;
    let s = String.sub r.src r.pos n in
    r.pos <- r.pos + n;
    s

  let int_array r =
    let n = length r "array" in
    (* Compare by division: [8 * n] can wrap for absurd [n], letting a
       crafted length slip past the bound and crash in [Array.init]. *)
    if n > remaining r / 8 then
      raise
        (Error
           (Truncated
              {
                wanted = (if n > max_int / 8 then max_int else 8 * n);
                have = remaining r;
              }));
    Array.init n (fun _ -> int r)
end

(* --- version tags -------------------------------------------------------- *)

let write_version ?(version = format_version) b = W.int b version

let read_version r =
  let got = R.int r in
  if got <> format_version then
    raise (Error (Bad_version { got; want = format_version }))

(* --- values -------------------------------------------------------------- *)

let rec write_value b = function
  | Value.Int n ->
      W.int b 0;
      W.int b n
  | Value.Bool v ->
      W.int b 1;
      W.bool b v
  | Value.Str s ->
      W.int b 2;
      W.string b s
  | Value.Tuple l ->
      W.int b 3;
      W.int b (List.length l);
      List.iter (write_value b) l

let rec read_value r =
  match R.int r with
  | 0 -> Value.Int (R.int r)
  | 1 -> Value.Bool (R.bool r)
  | 2 -> Value.Str (R.string r)
  | 3 ->
      let n = R.int r in
      if n < 0 || n > R.remaining r then
        raise (Error (Malformed "tuple: bad length"));
      Value.Tuple (List.init n (fun _ -> read_value r))
  | t -> raise (Error (Malformed (Printf.sprintf "value: unknown tag %d" t)))

(* --- interpreter-state images -------------------------------------------- *)

let write_image b (im : Dynamic.image) =
  W.int b im.Dynamic.im_node;
  W.int b im.Dynamic.im_steps;
  W.int_array b im.Dynamic.im_inputs;
  W.int_array b im.Dynamic.im_regs;
  W.int b im.Dynamic.im_out;
  W.int_array b im.Dynamic.im_taint_inputs;
  W.int_array b im.Dynamic.im_taint_regs;
  W.int b im.Dynamic.im_taint_out;
  W.int_array b im.Dynamic.im_shadow_inputs;
  W.int_array b im.Dynamic.im_shadow_regs;
  W.int b im.Dynamic.im_shadow_out;
  W.int b im.Dynamic.im_pc;
  W.int b (List.length im.Dynamic.im_frames);
  List.iter
    (fun (pc, at) ->
      W.int b pc;
      W.int b at)
    im.Dynamic.im_frames

let read_image r =
  let im_node = R.int r in
  let im_steps = R.int r in
  let im_inputs = R.int_array r in
  let im_regs = R.int_array r in
  let im_out = R.int r in
  let im_taint_inputs = R.int_array r in
  let im_taint_regs = R.int_array r in
  let im_taint_out = R.int r in
  let im_shadow_inputs = R.int_array r in
  let im_shadow_regs = R.int_array r in
  let im_shadow_out = R.int r in
  let im_pc = R.int r in
  let nframes = R.length r "frames" in
  (* Division, not multiplication: [16 * nframes] can wrap (see
     [R.int_array]). *)
  if nframes > R.remaining r / 16 then
    raise
      (Error
         (Truncated
            {
              wanted = (if nframes > max_int / 16 then max_int else 16 * nframes);
              have = R.remaining r;
            }));
  let im_frames =
    List.init nframes (fun _ ->
        let pc = R.int r in
        let at = R.int r in
        (pc, at))
  in
  {
    Dynamic.im_node;
    im_steps;
    im_inputs;
    im_regs;
    im_out;
    im_taint_inputs;
    im_taint_regs;
    im_taint_out;
    im_shadow_inputs;
    im_shadow_regs;
    im_shadow_out;
    im_pc;
    im_frames;
  }

let encode_image ?version im =
  let b = W.create () in
  write_version ?version b;
  write_image b im;
  W.contents b

let decode_image s =
  guard (fun () ->
      let r = R.of_string s in
      read_version r;
      let im = read_image r in
      if not (R.eof r) then
        raise (Error (Malformed "image: trailing bytes"));
      im)
