(** The durable enforcement runner: journaled monitored runs and recovery.

    {!run} drives {!Secpol_taint.Dynamic}'s step machine and commits each
    interpreter box to a {!Media.t} as a framed full-state record, with a
    periodic atomic snapshot folding the journal down. The verdict is
    appended {e before} the reply is released, so a crash can never lose an
    already-delivered answer. {!resume} rebuilds the run from the last
    intact snapshot plus the journal suffix and continues it under the same
    monitor; on an intact medium the resumed run is bit-identical (response
    {e and} step count) to the uninterrupted one, and on a corrupted medium
    it returns a typed {!failure} which the fail-secure supervisor maps to
    the violation notice [Λ/recovery] — degraded recovery lands in [F],
    never in a disallowed grant. *)

type header = {
  program_ref : string;  (** how to find the program again, e.g. a corpus entry name *)
  graph_name : string;
  graph_hash : string;  (** MD5 digest of the printed graph; checked on resume *)
  arity : int;
  inputs : Secpol_core.Value.t array;
  mode : Secpol_taint.Dynamic.mode;
  allowed : Secpol_core.Iset.t;
  fuel : int;
  cost : Secpol_flowgraph.Expr.cost_model;
  chatty : bool;
  snapshot_every : int;
  run_nonce : int;
      (** Fresh per {!run}; stamped into every journal record the run
          appends. Replay skips records with a foreign nonce — strays from
          a previous run of a reused medium must never be adopted (a stale
          verdict under a new header would be fail-open). *)
}
(** Everything needed to re-create the monitor configuration and restart
    the run from scratch; written into every snapshot. *)

val graph_hash : Secpol_flowgraph.Graph.t -> string

val config_of_header :
  ?emit:Secpol_flowgraph.Emit.t -> header -> Secpol_taint.Dynamic.config
(** The journaled configuration with {!Secpol_flowgraph.Hook.none} — hooks
    are process-local and cannot be serialized. [emit] (default
    {!Secpol_flowgraph.Emit.none}) re-attaches a process-local trace
    emitter to the rebuilt configuration, for the same reason. *)

val default_snapshot_every : int

type outcome =
  | Completed of Secpol_core.Mechanism.reply
  | Killed of { at_box : int; steps : int }
      (** Only with [?kill_at]: the run stopped after journaling [at_box]
          boxes, simulating process death for the crash sweep; [steps] is
          the interpreter's charged-step count at that moment. *)

val run :
  ?kill_at:int ->
  ?snapshot_every:int ->
  ?sink:Secpol_trace.Sink.t ->
  media:Media.t ->
  program_ref:string ->
  Secpol_taint.Dynamic.config ->
  Secpol_flowgraph.Graph.t ->
  Secpol_core.Value.t array ->
  outcome
(** Run the monitored interpreter, journaling every committed box.
    [kill_at n] aborts after [n] journaled boxes (fault injection);
    [snapshot_every] bounds the journal length between snapshots. [sink]
    (default null) receives the journal lifecycle: the run header, one
    checkpoint event per folded snapshot, and the verdict. Per-box trace
    events flow through the configuration's own [emit] channel, not the
    sink.
    @raise Invalid_argument if [snapshot_every < 1]. *)

type failure =
  | No_journal  (** the medium has no snapshot at all *)
  | Decode of Codec.decode_error
      (** corrupted snapshot, journal, or state image — the journal is
          untrusted and the run degrades to [Λ/recovery] *)
  | Program_mismatch of string
      (** the resolver's graph does not hash to the journaled one *)

val failure_message : failure -> string

type resumed = {
  header : header;
  replayed : int;  (** state records adopted from the journal suffix *)
  resumed_steps : int;  (** charged steps at the point recovery took over *)
  torn_bytes : int;  (** torn-tail bytes dropped at the journal's EOF *)
  was_complete : bool;
      (** the journal already held the verdict; nothing was re-executed *)
  reply : Secpol_core.Mechanism.reply;
}

val resume :
  ?kill_at:int ->
  ?emit:Secpol_flowgraph.Emit.t ->
  ?sink:Secpol_trace.Sink.t ->
  resolve:(header -> (Secpol_flowgraph.Graph.t, string) result) ->
  media:Media.t ->
  unit ->
  (resumed, failure) result
(** Recover the run on [media]: load the last snapshot, replay the journal
    suffix (adopting records by strictly increasing step count, which makes
    replay idempotent and skips stale pre-snapshot records; records whose
    run nonce differs from the snapshot header's are strays from a previous
    run of a reused medium and are skipped wholesale, verdicts included),
    then either re-deliver the journaled verdict or continue executing —
    journaling as it goes, so a crash during recovery also recovers.
    [resolve] maps the journaled {!header} back to a graph; a digest or
    arity mismatch is a {!Program_mismatch}. [sink] (default null)
    receives the recovery lifecycle — a replay-skip event per rejected
    journal record, a resume event at the point recovery takes over, then
    checkpoints and verdict as in {!run}; [emit] is threaded into the
    rebuilt configuration ({!config_of_header}) so the re-executed suffix
    is traced like a live run. *)
