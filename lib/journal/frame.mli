(** Checksummed, length-prefixed record framing for the journal.

    A frame is [magic | u32 length | u32 crc32(payload) | payload]. The
    format is append-only: the only damage an interrupted append can cause
    is a {e torn tail} — a strict byte prefix of a frame at end-of-file —
    which {!scan} silently drops (recovery re-executes from the intact
    prefix and, the interpreter being deterministic, reaches the same
    verdict). Any other inconsistency (checksum failure, bytes that are not
    a frame) cannot come from a crash, only from a lying medium, and makes
    the whole journal untrusted: {!scan} returns the typed error and the
    caller degrades to the [Λ/recovery] violation notice. *)

val magic : string

val header_size : int

val frame : string -> string
(** One framed payload.
    @raise Invalid_argument beyond the u32 length limit. *)

val append : Buffer.t -> string -> unit

type scan = {
  records : string list;  (** payloads of the intact frames, in order *)
  dropped_bytes : int;  (** torn-tail bytes dropped at EOF; 0 when clean *)
}

val scan : string -> (scan, Codec.decode_error) result

val one : string -> (string, Codec.decode_error) result
(** Exactly one intact frame and nothing else — the shape of a snapshot
    file. Torn or multi-frame inputs are errors: a snapshot is replaced
    atomically, so unlike the journal it is never legitimately torn. *)
