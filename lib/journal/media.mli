(** Where a journal lives: storage backends behind one small interface.

    A medium holds two byte streams — an atomically replaced {e snapshot}
    and an append-only {e journal} — and nothing else; all interpretation
    of the bytes belongs to {!Frame} and {!Runner}. Two backends:

    - {!memory}: a buffer pair. The crash-recovery chaos sweep runs
      thousands of kill/tamper/resume cycles per second against it, and its
      optional initializers let the sweep hand recovery a deliberately
      damaged journal.
    - {!dir}: a directory with [snapshot.bin] and [journal.bin]. Appends
      are flushed and [fsync]ed per record (the journal stays ahead of any
      externally visible effect, and survives power loss, not just process
      death); snapshots are replaced by write-then-rename with the tmp file
      synced before and the directory synced after, so a crash leaves the
      old or the new snapshot, never a torn hybrid or an empty file. The
      journal is reset only after the rename — a crash between the two
      leaves stale records, which replay skips: same-run records by step
      monotonicity, previous-run records by their foreign run nonce. *)

type t

val load : t -> (string * string) option
(** [(snapshot_bytes, journal_bytes)], or [None] before the first
    checkpoint. *)

val append : t -> string -> unit
(** Append (already framed) bytes to the journal. *)

val checkpoint : t -> string -> unit
(** Atomically replace the snapshot and reset the journal. *)

val close : t -> unit

val memory : ?snapshot:string -> ?journal:string -> unit -> t
(** Fresh in-memory medium, optionally preloaded (for handing recovery a
    tampered journal). With no [snapshot], {!load} is [None]. *)

val dir : string -> t
(** Directory backend; the directory is created if missing.
    @raise Invalid_argument if the path exists and is not a directory. *)

val snapshot_file : string
val journal_file : string
