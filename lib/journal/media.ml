type t = {
  load : unit -> (string * string) option;
  append : string -> unit;
  checkpoint : string -> unit;
  close : unit -> unit;
}

let load t = t.load ()
let append t s = t.append s
let checkpoint t s = t.checkpoint s
let close t = t.close ()

let memory ?snapshot ?journal () =
  let snap = ref snapshot in
  let jour = Buffer.create 256 in
  Option.iter (Buffer.add_string jour) journal;
  {
    load =
      (fun () ->
        match !snap with
        | None -> None
        | Some s -> Some (s, Buffer.contents jour));
    append = Buffer.add_string jour;
    checkpoint =
      (fun s ->
        snap := Some s;
        Buffer.clear jour);
    close = ignore;
  }

let snapshot_file = "snapshot.bin"
let journal_file = "journal.bin"

let read_file p = In_channel.with_open_bin p In_channel.input_all

let fsync_out oc =
  Out_channel.flush oc;
  Unix.fsync (Unix.descr_of_out_channel oc)

(* Write, flush, and fsync before close: the bytes are on the medium, not
   merely in the page cache, when this returns. *)
let write_file_sync p s =
  Out_channel.with_open_bin p (fun oc ->
      Out_channel.output_string oc s;
      fsync_out oc)

(* Persist a rename: fsync the containing directory so the new entry
   survives power loss. Best-effort — some filesystems refuse fsync on a
   directory fd, and a refusal must not take down the run. *)
let fsync_dir path =
  match Unix.openfile path [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> ()
  | fd ->
      Fun.protect
        ~finally:(fun () -> Unix.close fd)
        (fun () -> try Unix.fsync fd with Unix.Unix_error _ -> ())

let dir path =
  if not (Sys.file_exists path) then Sys.mkdir path 0o755
  else if not (Sys.is_directory path) then
    invalid_arg (Printf.sprintf "Media.dir: %s exists and is not a directory" path);
  let snap_path = Filename.concat path snapshot_file in
  let jour_path = Filename.concat path journal_file in
  let oc = ref None in
  let close_journal () =
    match !oc with
    | Some c ->
        Out_channel.close c;
        oc := None
    | None -> ()
  in
  let journal_oc () =
    match !oc with
    | Some c -> c
    | None ->
        let c =
          Out_channel.open_gen
            [ Open_wronly; Open_append; Open_creat; Open_binary ]
            0o644 jour_path
        in
        oc := Some c;
        c
  in
  {
    load =
      (fun () ->
        if Sys.file_exists snap_path then
          let jour =
            if Sys.file_exists jour_path then read_file jour_path else ""
          in
          Some (read_file snap_path, jour)
        else None);
    append =
      (fun s ->
        let c = journal_oc () in
        Out_channel.output_string c s;
        (* Flush AND fsync per record: the journal must be ahead of any
           externally visible effect, and the verdict frame in particular
           must be on the medium — not just in the page cache — before the
           reply is released. This holds the durability story up against
           power loss, not only process death. *)
        fsync_out c)
    ;
    checkpoint =
      (fun s ->
        close_journal ();
        (* Write-then-rename, fsynced at every stage: the tmp file is
           synced before the rename (no empty snapshot can surface), and
           the directory is synced after it (the rename itself survives
           power loss). A crash leaves either the old snapshot or the new
           one, never a torn hybrid. The journal is reset only AFTER the
           rename; a crash between the two leaves stale records, which
           replay skips — same-run records by step monotonicity,
           previous-run records by their foreign run nonce. *)
        let tmp = snap_path ^ ".tmp" in
        write_file_sync tmp s;
        Sys.rename tmp snap_path;
        fsync_dir path;
        write_file_sync jour_path "");
    close = close_journal;
  }
