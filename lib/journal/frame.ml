(* Record framing: magic ("sj"), u32-LE payload length, u32-LE CRC-32 of
   the payload, payload. The scan distinguishes the two ways a journal can
   be damaged:

   - a TORN TAIL — the file ends inside a frame (fewer bytes than the
     header promises, or not even a full header). That is exactly what a
     crash mid-append produces; the tail is dropped and recovery replays
     the intact prefix, which the deterministic interpreter extends to the
     same verdict.
   - CORRUPTION — a complete frame whose checksum fails, or bytes that are
     not a frame at all. Appends cannot produce that; the medium lied, so
     nothing after the damage can be trusted and the scan refuses the whole
     journal with a typed error (the caller degrades to Λ/recovery). *)

let magic = "sj"
let header_size = 2 + 4 + 4

let u32_max = 0xFFFFFFFF

let frame payload =
  let n = String.length payload in
  if n > u32_max then invalid_arg "Frame.frame: payload too large";
  let b = Buffer.create (header_size + n) in
  Buffer.add_string b magic;
  let by = Bytes.create 8 in
  Bytes.set_int32_le by 0 (Int32.of_int n);
  Bytes.set_int32_le by 4 (Int32.of_int (Codec.crc32 payload));
  Buffer.add_bytes b (Bytes.sub by 0 8);
  Buffer.add_string b payload;
  Buffer.contents b

let append buf payload = Buffer.add_string buf (frame payload)

let get_u32 s pos = Int32.to_int (String.get_int32_le s pos) land u32_max

type scan = { records : string list; dropped_bytes : int }

let scan s =
  let n = String.length s in
  let rec go pos acc =
    if pos = n then Ok { records = List.rev acc; dropped_bytes = 0 }
    else if n - pos < header_size then
      (* Torn mid-header: a crash wrote a prefix of the next frame. *)
      Ok { records = List.rev acc; dropped_bytes = n - pos }
    else
      let m = String.sub s pos 2 in
      if m <> magic then Error (Codec.Bad_magic { got = m; want = magic })
      else
        let len = get_u32 s (pos + 2) in
        let crc = get_u32 s (pos + 6) in
        if pos + header_size + len > n then
          (* Torn mid-payload: header complete, payload cut short at EOF. *)
          Ok { records = List.rev acc; dropped_bytes = n - pos }
        else
          let payload = String.sub s (pos + header_size) len in
          if Codec.crc32 payload <> crc then
            Error (Codec.Bad_checksum { at = pos })
          else go (pos + header_size + len) (payload :: acc)
  in
  go 0 []

let one s =
  match scan s with
  | Error _ as e -> e
  | Ok { records = [ payload ]; dropped_bytes = 0 } -> Ok payload
  | Ok { dropped_bytes; _ } when dropped_bytes > 0 ->
      Error
        (Codec.Truncated
           { wanted = dropped_bytes; have = String.length s - dropped_bytes })
  | Ok { records; _ } ->
      Error
        (Codec.Malformed
           (Printf.sprintf "expected exactly one frame, found %d"
              (List.length records)))
