module Policy = Secpol_core.Policy
module Space = Secpol_core.Space
module Mechanism = Secpol_core.Mechanism
module Soundness = Secpol_core.Soundness
module Completeness = Secpol_core.Completeness
module Maximal = Secpol_core.Maximal
module Ast = Secpol_flowgraph.Ast
module Compile = Secpol_flowgraph.Compile
module Interp = Secpol_flowgraph.Interp
module Dynamic = Secpol_taint.Dynamic
module Halt_guard = Secpol_staticflow.Halt_guard

type candidate = { label : string; mechanism : Mechanism.t; ratio : float }

type report = {
  best : Mechanism.t;
  best_ratio : float;
  candidates : candidate list;
  maximal_ratio : float;
  discarded : (string * string) list;
}

let transforms ~while_bound =
  [
    ("ite", fun p -> Transforms.ite ~simplify:true p);
    ("ite0", fun p -> Transforms.ite ~simplify:false p);
    ("dup", Transforms.sink_into_branches);
    ("while", fun p -> Transforms.predicate_loops ~residual:false ~bound:while_bound p);
  ]

(* All transform sequences up to the depth, as (label, program) pairs,
   deduplicated by the program's structure. *)
let variants ~max_depth ~while_bound prog =
  let seen = Hashtbl.create 32 in
  let out = ref [] in
  let visit label p =
    if not (Hashtbl.mem seen p.Ast.body) then begin
      Hashtbl.add seen p.Ast.body ();
      out := (label, p) :: !out;
      true
    end
    else false
  in
  let rec go depth label p =
    if depth < max_depth then
      List.iter
        (fun (name, f) ->
          match f p with
          | p' ->
              let label' = if label = "" then name else label ^ ";" ^ name in
              if visit label' p' then go (depth + 1) label' p'
          | exception Invalid_argument _ -> ())
        (transforms ~while_bound)
  in
  ignore (visit "original" prog);
  go 0 "" prog;
  List.rev !out

let search ?(max_depth = 2) ?(while_bound = 4) ~policy ~space prog =
  let q = Interp.ast_program prog in
  let arity = prog.Ast.arity in
  let discarded = ref [] in
  let consider (label, p') =
    match Transforms.equivalent_on prog p' space with
    | Error _ ->
        discarded := (label, "not equivalent on the space") :: !discarded;
        []
    | Ok () ->
        let g = Compile.compile p' in
        let attempts =
          [
            (label ^ "+surv", Dynamic.mechanism (Dynamic.config ~mode:Dynamic.Surveillance policy) g);
            ( label ^ "+guard",
              Halt_guard.mechanism ~policy (Transforms.split_halts g) );
            ( label ^ "+gite+surv",
              Dynamic.mechanism
                  (Dynamic.config ~mode:Dynamic.Surveillance policy)
                  (Graph_ite.rewrite g) );
          ]
        in
        List.filter_map
          (fun (label, m) ->
            if Soundness.is_sound policy m space then
              Some
                { label; mechanism = m; ratio = Completeness.ratio m ~q space }
            else begin
              discarded := (label, "measured unsound") :: !discarded;
              None
            end)
          attempts
  in
  let candidates =
    List.concat_map consider (variants ~max_depth ~while_bound prog)
    |> List.sort (fun a b -> Float.compare b.ratio a.ratio)
  in
  let best =
    Mechanism.rename "searched"
      (Mechanism.join_list ~arity (List.map (fun c -> c.mechanism) candidates))
  in
  let mx = Maximal.build policy q space in
  {
    best;
    best_ratio = Completeness.ratio best ~q space;
    candidates;
    maximal_ratio = Completeness.ratio mx ~q space;
    discarded = List.rev !discarded;
  }
