module Value = Secpol_core.Value
module Space = Secpol_core.Space
module Program = Secpol_core.Program
module Var = Secpol_flowgraph.Var
module Expr = Secpol_flowgraph.Expr
module Ast = Secpol_flowgraph.Ast
module Graph = Secpol_flowgraph.Graph
module Interp = Secpol_flowgraph.Interp

(* Symbolic effect of a loop-free statement: for each assigned variable, the
   expression (over the pre-state) it ends up holding. Control joins become
   branchless selects. *)
let symbolic_effect stmt =
  let rec eff sigma = function
    | Ast.Skip -> sigma
    | Ast.Assign (v, e) -> Var.Map.add v (Expr.subst sigma e) sigma
    | Ast.Seq l -> List.fold_left eff sigma l
    | Ast.If (p, a, b) ->
        let p' = Expr.subst_pred sigma p in
        let sa = eff sigma a and sb = eff sigma b in
        let get s v =
          match Var.Map.find_opt v s with Some e -> e | None -> Expr.Var v
        in
        let dom =
          Var.Map.fold (fun v _ acc -> Var.Set.add v acc) sa Var.Set.empty
          |> Var.Map.fold (fun v _ acc -> Var.Set.add v acc) sb
        in
        Var.Set.fold
          (fun v acc -> Var.Map.add v (Expr.Cond (p', get sa v, get sb v)) acc)
          dom sigma
    | Ast.While _ -> invalid_arg "symbolic_effect: loop"
    | Ast.At (_, s) -> eff sigma s
  in
  eff Var.Map.empty stmt

(* Emit the effect map as straight-line code. Temporaries make the parallel
   assignment sequential-safe. *)
let emit_effect ~fresh ~simp m =
  let bindings = Var.Map.bindings m in
  let with_temps =
    List.map
      (fun (v, e) ->
        let t = Var.Reg !fresh in
        incr fresh;
        (v, t, if simp then Expr.simplify e else e))
      bindings
  in
  Ast.seq
    (List.map (fun (_, t, e) -> Ast.Assign (t, e)) with_temps
    @ List.map (fun (v, t, _) -> Ast.Assign (v, Expr.Var t)) with_temps)

let ite ?(simplify = true) (p : Ast.prog) =
  let fresh = ref (Ast.max_reg p + 1) in
  let rec tr = function
    | (Ast.Skip | Ast.Assign _) as s -> s
    | Ast.Seq l -> Ast.seq (List.map tr l)
    | Ast.While (c, body) -> Ast.While (c, tr body)
    | Ast.If (c, a, b) ->
        let a = tr a and b = tr b in
        let branch = Ast.If (c, a, b) in
        if Ast.loop_free a && Ast.loop_free b then
          emit_effect ~fresh ~simp:simplify (symbolic_effect branch)
        else branch
    | Ast.At (sp, s) -> Ast.At (sp, tr s)
  in
  Ast.prog ~name:(p.Ast.name ^ "+ite") ~arity:p.Ast.arity (tr p.Ast.body)

let predicate_loops ?(residual = true) ~bound (p : Ast.prog) =
  if bound < 0 then invalid_arg "predicate_loops: negative bound";
  let fresh = ref (Ast.max_reg p + 1) in
  let predicated c body =
    let g = Var.Reg !fresh in
    incr fresh;
    let m = symbolic_effect body in
    let open Expr in
    let guard_live = Cmp (Eq, Var g, Const 1) in
    let one_copy () =
      let update_guard =
        Ast.Assign (g, Cond (And (guard_live, c), Const 1, Const 0))
      in
      let guarded =
        Var.Map.fold
          (fun v e acc -> Var.Map.add v (Cond (guard_live, e, Var v)) acc)
          m Var.Map.empty
      in
      Ast.seq [ update_guard; emit_effect ~fresh ~simp:false guarded ]
    in
    let copies = List.init bound (fun _ -> one_copy ()) in
    (* If the guard is still live past the bound the original loop would
       have kept going: diverge rather than answer wrongly. The caller may
       drop this safety net once the bound is known sufficient. *)
    let tail =
      if residual then [ Ast.While (And (guard_live, c), Ast.Skip) ] else []
    in
    Ast.seq ((Ast.Assign (g, Const 1) :: copies) @ tail)
  in
  let rec tr = function
    | (Ast.Skip | Ast.Assign _) as s -> s
    | Ast.Seq l -> Ast.seq (List.map tr l)
    | Ast.If (c, a, b) -> Ast.If (c, tr a, tr b)
    | Ast.While (c, body) ->
        let body = tr body in
        if Ast.loop_free body then predicated c body else Ast.While (c, body)
    | Ast.At (sp, s) -> Ast.At (sp, tr s)
  in
  Ast.prog
    ~name:(Printf.sprintf "%s+while%d" p.Ast.name bound)
    ~arity:p.Ast.arity (tr p.Ast.body)

let sink_into_branches (p : Ast.prog) =
  let rec sink = function
    | (Ast.Skip | Ast.Assign _) as s -> s
    | Ast.If (c, a, b) -> Ast.If (c, sink a, sink b)
    | Ast.While (c, body) -> Ast.While (c, sink body)
    | Ast.Seq l -> sink_seq l
    | Ast.At (sp, s) -> Ast.At (sp, sink s)
  and sink_seq = function
    | [] -> Ast.Skip
    | [ s ] -> sink s
    | Ast.If (c, a, b) :: rest ->
        let tail = sink_seq rest in
        Ast.If (c, Ast.seq [ sink a; tail ], Ast.seq [ sink b; tail ])
    | Ast.Seq inner :: rest -> sink_seq (inner @ rest)
    | Ast.At (_, (Ast.If _ | Ast.Seq _ as s)) :: rest -> sink_seq (s :: rest)
    | s :: rest -> Ast.seq [ sink s; sink_seq rest ]
  in
  Ast.prog ~name:(p.Ast.name ^ "+dup") ~arity:p.Ast.arity (sink p.Ast.body)

let split_halts (g : Graph.t) =
  let n = Graph.node_count g in
  (* Edges pointing at each plain halt box. *)
  let halt_preds = Hashtbl.create 8 in
  Array.iteri
    (fun i node ->
      List.iter
        (fun s ->
          match g.Graph.nodes.(s) with
          | Graph.Halt ->
              Hashtbl.replace halt_preds s
                (i :: (Option.value ~default:[] (Hashtbl.find_opt halt_preds s)))
          | _ -> ())
        (match node with
        | Graph.Start s -> [ s ]
        | Graph.Assign (_, _, s) -> [ s ]
        | Graph.Decision (_, a, b) -> [ a; b ]
        | Graph.Halt | Graph.Halt_violation _ -> []))
    g.Graph.nodes;
  let extra = ref [] in
  let next_index = ref n in
  (* For each halt with several incoming edges, all but the first incoming
     edge get a private copy. *)
  let replacement : (int * int, int) Hashtbl.t = Hashtbl.create 8 in
  Hashtbl.iter
    (fun h preds ->
      match List.rev preds with
      | [] | [ _ ] -> ()
      | _first :: rest ->
          List.iter
            (fun p ->
              Hashtbl.replace replacement (p, h) !next_index;
              extra := Graph.Halt :: !extra;
              incr next_index)
            rest)
    halt_preds;
  let redirect i s =
    match Hashtbl.find_opt replacement (i, s) with Some s' -> s' | None -> s
  in
  let rewritten =
    Array.mapi
      (fun i node ->
        match node with
        | Graph.Start s -> Graph.Start (redirect i s)
        | Graph.Assign (v, e, s) -> Graph.Assign (v, e, redirect i s)
        | Graph.Decision (p, a, b) ->
            Graph.Decision (p, redirect i a, redirect i b)
        | (Graph.Halt | Graph.Halt_violation _) as h -> h)
      g.Graph.nodes
  in
  let extra = Array.of_list (List.rev !extra) in
  let nodes = Array.append rewritten extra in
  let spans =
    Array.append g.Graph.spans (Array.make (Array.length extra) None)
  in
  Graph.make ~name:(g.Graph.name ^ "+split") ~arity:g.Graph.arity
    ~entry:g.Graph.entry ~spans nodes

let equivalent_on ?fuel (p1 : Ast.prog) (p2 : Ast.prog) space =
  if p1.Ast.arity <> p2.Ast.arity then
    invalid_arg "equivalent_on: arity mismatch";
  let differs a =
    let r1 = (Interp.run_ast ?fuel p1 a).Program.result in
    let r2 = (Interp.run_ast ?fuel p2 a).Program.result in
    match (r1, r2) with
    | Program.Value v1, Program.Value v2 -> not (Value.equal v1 v2)
    | Program.Diverged, Program.Diverged -> false
    | Program.Fault _, Program.Fault _ -> false
    | _ -> true
  in
  match Seq.find differs (Space.enumerate space) with
  | None -> Ok ()
  | Some a -> Error a
