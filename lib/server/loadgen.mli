(** Windowed load generator for the enforcement service.

    Two drivers around one tally: {!run_engine} pumps frames straight
    through an in-process {!Engine} (the bench hot path — protocol cost
    without socket cost), {!run_client} pipelines over a real connection
    to a daemon. Both keep [window] requests outstanding, sample
    per-request latency, and check {e every} reply against the clean
    monitor: a grant that differs from the monitor's own verdict, a
    denial whose notice is not in [F], or a reply outside [E ∪ F] counts
    as [fail_open] — a load test that would accept a wrong grant is not
    a fail-secure gate. [Λ/overload] answers are counted separately:
    under deliberate overload they are the correct outcome, not a
    failure. *)

module Dynamic = Secpol_taint.Dynamic
module Paper = Secpol_corpus.Paper_programs
module Policy = Secpol_core.Policy

type result = {
  requests : int;
  granted : int;  (** bit-identical to the clean monitor's grant *)
  denied : int;  (** violation notices in [F] (except overload) *)
  overloads : int;  (** [Λ/overload] *)
  fail_open : int;
  duration : float;  (** seconds *)
  rps : float;
  p50_us : float;
  p99_us : float;
  scrapes : int;  (** simulated [/metrics] renders ({!run_engine} [?scrape_hz]) *)
}

val session_spec :
  ?session:string ->
  ?mode:Dynamic.mode ->
  ?journaled:bool ->
  policy:Policy.t ->
  unit ->
  Wire.open_session
(** @raise Invalid_argument for a policy without allowed indices. *)

val run_engine :
  ?requests:int ->
  ?window:int ->
  ?config:Engine.config ->
  ?mode:Dynamic.mode ->
  ?journaled:bool ->
  ?scrape_hz:float ->
  entry:Paper.entry ->
  policy:Policy.t ->
  unit ->
  result
(** In-process: fresh engine on a memory store, queue sized to the
    window. Defaults: 10000 requests, window 64. [scrape_hz] models a
    concurrent scraper: every [1/hz] seconds the engine registry is
    snapshotted and rendered to Prometheus text in-loop — the same work
    a [GET /metrics] costs the daemon — so the bench can pair scraped
    against unscraped throughput. Missed ticks are skipped, not
    bursted; the count lands in [result.scrapes].
    @raise Invalid_argument if [scrape_hz <= 0]. *)

val run_client :
  ?requests:int ->
  ?window:int ->
  client:Client.t ->
  spec:Wire.open_session ->
  entry:Paper.entry ->
  unit ->
  result
(** Over a connected {!Client}: opens (or re-opens) the session, then
    pipelines. Defaults: 2000 requests, window 32.
    @raise Failure if the session or a request is refused. *)

val percentile : float array -> float -> float
(** [percentile sorted p]: nearest-rank percentile of an ascending
    array. *)

val pp : Format.formatter -> result -> unit
