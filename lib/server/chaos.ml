module Value = Secpol_core.Value
module Policy = Secpol_core.Policy
module Space = Secpol_core.Space
module Mechanism = Secpol_core.Mechanism
module Notice = Secpol_core.Notice
module Graph = Secpol_flowgraph.Graph
module Dynamic = Secpol_taint.Dynamic
module Paper = Secpol_corpus.Paper_programs
module Json = Secpol_staticflow.Lint.Json
module Metrics = Secpol_trace.Metrics
module Sink = Secpol_trace.Sink
module Pool = Secpol_engine.Pool
module Guard = Secpol_fault.Guard
module Splan = Secpol_fault.Server_plan
module FReport = Secpol_fault.Report
module Frame = Secpol_journal.Frame

type totals = {
  plans : int;
  requests : int;
  grants : int;
  monitor_denials : int;
  overload_denials : int;
  recovery_denials : int;
  fault_denials : int;
  fail_open : int;
  clean_mismatch : int;
  unanswered : int;
  proto_refusals : int;
  proto_misses : int;
  disconnects : int;
  slowloris : int;
  malformed : int;
  kills : int;
  kill_survivals : int;
  restarts : int;
  resumes : int;
  burst_requests : int;
}

type finding = {
  entry : string;
  policy : string;
  seed : int;
  input : string;
  detail : string;
}

type report = {
  base_seed : int;
  seeds : int;
  mode : Dynamic.mode;
  totals : totals;
  metrics : Metrics.t;
  findings : finding list;
  ok : bool;
  pool : Pool.stats;
}

let max_findings = 20
let session_name = "s"
let session_fuel = 4096

let counter_names =
  [
    "plans";
    "requests";
    "grants";
    "monitor_denials";
    "overload_denials";
    "recovery_denials";
    "fault_denials";
    "fail_open";
    "clean_mismatch";
    "unanswered";
    "proto_refusals";
    "proto_misses";
    "disconnects";
    "slowloris";
    "malformed";
    "kills";
    "kill_survivals";
    "restarts";
    "resumes";
    "burst_requests";
  ]

let register_counters metrics =
  List.iter (fun n -> ignore (Metrics.counter metrics n)) counter_names

(* Up to [k] inputs spread evenly over the enumeration (same selection as
   the distributed sweep). *)
let spread k inputs =
  let arr = Array.of_list inputs in
  let len = Array.length arr in
  if len <= k then inputs
  else List.init k (fun i -> arr.(i * (len - 1) / (max 1 (k - 1))))

type task = { t_entry : Paper.entry; t_policy : Policy.t }

type shard_out = { s_metrics : Metrics.t; s_findings : finding list }

(* How a tracked request may legally be answered. [Strict] requests saw no
   fault: the reply must be bit-identical to the guarded single enforcer.
   [Elastic] requests were disturbed (burst overload, kill/restart): a
   grant must still match the clean monitor's value, but Λ/overload and
   Λ/recovery are acceptable fail-secure answers. *)
type kind = Strict | Elastic

type req_state = {
  a : Value.t array;
  guarded : Mechanism.reply;
  clean : Mechanism.reply;
  deadline0 : bool;
  mutable kind : kind;
  mutable answered : bool;
}

let flip_byte s i =
  let b = Bytes.of_string s in
  Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0xFF));
  Bytes.to_string b

let run_task ~mode ~seeds ~base_seed ~inputs_per_case ~sink t =
  let metrics = Metrics.create () in
  register_counters metrics;
  let c name = Metrics.counter metrics name in
  let c_plans = c "plans"
  and c_requests = c "requests"
  and c_grants = c "grants"
  and c_monitor = c "monitor_denials"
  and c_overload = c "overload_denials"
  and c_recovery = c "recovery_denials"
  and c_fault_denials = c "fault_denials"
  and c_fail_open = c "fail_open"
  and c_clean_mismatch = c "clean_mismatch"
  and c_unanswered = c "unanswered"
  and c_proto_refusals = c "proto_refusals"
  and c_proto_misses = c "proto_misses"
  and c_disconnects = c "disconnects"
  and c_slowloris = c "slowloris"
  and c_malformed = c "malformed"
  and c_kills = c "kills"
  and c_kill_survivals = c "kill_survivals"
  and c_restarts = c "restarts"
  and c_resumes = c "resumes"
  and c_burst = c "burst_requests" in
  let findings = ref [] in
  let n_found = ref 0 in
  let entry = t.t_entry and policy = t.t_policy in
  let g = Paper.graph entry in
  let allowed = Option.get (Policy.allowed_indices policy) in
  let pname = Policy.name policy in
  let inputs =
    Array.of_list
      (spread inputs_per_case (List.of_seq (Space.enumerate entry.Paper.space)))
  in
  (* The clean monitor (what a grant must match) under the session's exact
     config, and the guard layered on it exactly as the server layers it —
     the bit-identity baseline for undisturbed requests. *)
  let clean_mech =
    Dynamic.mechanism
      (Dynamic.config ~fuel:session_fuel ~mode (Policy.allow_set allowed))
      g
  in
  let guard_cfg = Guard.default in
  let note f =
    if !n_found < max_findings then begin
      Stdlib.incr n_found;
      findings := f :: !findings
    end
  in
  let run_plan (plan : Splan.t) =
    Metrics.incr c_plans;
    let smax = if plan.Splan.seed < 0 then 0 else plan.Splan.seed in
    let store = Store.memory () in
    let config =
      {
        Engine.default_config with
        Engine.capacity = 4;
        shed_seed = smax;
        frame_deadline = 1.0;
        exec_budget = 16;
        jobs = 1;
      }
    in
    let now = ref 0.0 in
    let tick () = now := !now +. 0.001 in
    let eng =
      ref (Engine.create ~config ~sink ~metrics ~store ~now:!now ())
    in
    let main = ref (Engine.open_conn !eng ~now:!now) in
    let cst = ref (Wire.Stream.create ()) in
    let reqs : (int, req_state) Hashtbl.t = Hashtbl.create 16 in
    let note_req (r : req_state) detail =
      note
        {
          entry = entry.Paper.name;
          policy = pname;
          seed = plan.Splan.seed;
          input = FReport.show_input r.a;
          detail = Printf.sprintf "[plan %s] %s" (Splan.describe plan) detail;
        }
    in
    let note_plan detail =
      note
        {
          entry = entry.Paper.name;
          policy = pname;
          seed = plan.Splan.seed;
          input = "-";
          detail = Printf.sprintf "[plan %s] %s" (Splan.describe plan) detail;
        }
    in
    let mismatch r detail =
      Metrics.incr c_clean_mismatch;
      note_req r detail
    in
    let handle_reply id (reply : Mechanism.reply) =
      match Hashtbl.find_opt reqs id with
      | None -> ()
      | Some r when r.answered -> ()
      | Some r -> (
          r.answered <- true;
          match reply.Mechanism.response with
          | Mechanism.Granted v ->
              (match r.clean.Mechanism.response with
              | Mechanism.Granted w when Value.equal v w ->
                  Metrics.incr c_grants
              | _ ->
                  Metrics.incr c_fail_open;
                  note_req r
                    (Printf.sprintf
                       "FAIL-OPEN: request %d granted %s but clean monitor \
                        replied %s"
                       id (Value.to_string v)
                       (FReport.show_response r.clean.Mechanism.response)));
              if r.deadline0 then
                mismatch r
                  (Printf.sprintf
                     "deadline-0 request %d was served (must shed with %s)" id
                     Wire.overload_notice)
              else if r.kind = Strict && reply <> r.guarded then
                mismatch r
                  (Printf.sprintf
                     "clean request %d not bit-identical: %s vs guarded %s" id
                     (FReport.show_reply reply)
                     (FReport.show_reply r.guarded))
          | Mechanism.Denied n ->
              if not (Notice.in_f n) then begin
                Metrics.incr c_fail_open;
                note_req r
                  (Printf.sprintf
                     "FAIL-OPEN: request %d denied with %S, which is not a \
                      violation notice in F"
                     id n)
              end
              else if n = Wire.overload_notice then begin
                Metrics.incr c_overload;
                if r.kind = Strict && not r.deadline0 then
                  mismatch r
                    (Printf.sprintf "undisturbed request %d shed with %s" id n)
              end
              else if n = Guard.recovery_notice then begin
                Metrics.incr c_recovery;
                if r.kind = Strict then
                  mismatch r
                    (Printf.sprintf "undisturbed request %d denied %s" id n)
              end
              else if n = Guard.degraded_notice then begin
                Metrics.incr c_fault_denials;
                if r.kind = Strict && reply <> r.guarded then
                  mismatch r
                    (Printf.sprintf
                       "clean request %d degraded: %s vs guarded %s" id
                       (FReport.show_reply reply)
                       (FReport.show_reply r.guarded))
              end
              else begin
                Metrics.incr c_monitor;
                if r.kind = Strict && reply <> r.guarded then
                  mismatch r
                    (Printf.sprintf
                       "clean request %d not bit-identical: %s vs guarded %s"
                       id
                       (FReport.show_reply reply)
                       (FReport.show_reply r.guarded))
              end
          | Mechanism.Hung | Mechanism.Failed _ ->
              Metrics.incr c_fail_open;
              note_req r
                (Printf.sprintf
                   "FAIL-OPEN: request %d answered outside E \xe2\x88\xaa F: %s"
                   id
                   (FReport.show_response reply.Mechanism.response)))
    in
    let pump conn stream =
      let bytes = Engine.output !eng ~conn in
      Wire.Stream.feed stream ~now:!now bytes;
      let rec loop acc =
        match Wire.Stream.next stream with
        | `Frame p -> (
            match Wire.decode_response p with
            | Ok r -> loop (r :: acc)
            | Error _ -> List.rev acc)
        | `Await | `Corrupt _ -> List.rev acc
      in
      let rs = loop [] in
      List.iter
        (function
          | Wire.Reply { request_id; reply; _ } -> handle_reply request_id reply
          | Wire.Refused _ -> Metrics.incr c_proto_refusals
          | _ -> ())
        rs;
      rs
    in
    let send req =
      Engine.feed !eng ~conn:!main ~now:!now (Wire.encode_request req)
    in
    (* Step until the admission queue is empty (at least one step). *)
    let settle () =
      let rounds = ref 0 in
      let continue = ref true in
      while !continue do
        Engine.step !eng ~now:!now;
        tick ();
        ignore (pump !main !cst);
        Stdlib.incr rounds;
        if Engine.queue_length !eng = 0 || !rounds >= 50 then continue := false
      done
    in
    let track id a ~kind ~deadline0 =
      let clean = Mechanism.respond clean_mech a in
      let guarded =
        Guard.reply_of_outcome (Guard.run ~config:guard_cfg clean_mech a)
      in
      Hashtbl.replace reqs id { a; guarded; clean; deadline0; kind; answered = false }
    in
    let enforce ?(deadline_us = -1) ~id a =
      Wire.Enforce
        {
          Wire.session = session_name;
          request_id = id;
          program = entry.Paper.name;
          inputs = a;
          deadline_us;
        }
    in
    let input_for k = inputs.((smax + k) mod Array.length inputs) in
    (* Process death and rebirth: a fresh engine on the same store rebuilds
       the sessions and replays the journals; the client reconnects and
       asks Resume for everything still unanswered. *)
    let restart () =
      Metrics.incr c_restarts;
      ignore (pump !main !cst);
      eng := Engine.create ~config ~sink ~metrics ~store ~now:!now ();
      main := Engine.open_conn !eng ~now:!now;
      cst := Wire.Stream.create ();
      let pending =
        List.sort compare
          (Hashtbl.fold
             (fun id (r : req_state) acc ->
               if r.answered then acc else (id, r) :: acc)
             reqs [])
      in
      List.iter
        (fun (id, (r : req_state)) ->
          r.kind <- Elastic;
          Metrics.incr c_resumes;
          send (Wire.Resume { session = session_name; request_id = id }))
        pending;
      settle ()
    in
    (* Open the session. *)
    let spec =
      {
        Wire.session = session_name;
        allowed;
        mode;
        fuel = session_fuel;
        guard_retries = guard_cfg.Guard.retries;
        journaled = plan.Splan.journaled;
      }
    in
    send (Wire.Hello { client = "chaos" });
    send (Wire.Open_session spec);
    Engine.step !eng ~now:!now;
    tick ();
    let rs = pump !main !cst in
    if
      not
        (List.exists
           (function Wire.Session_opened _ -> true | _ -> false)
           rs)
    then begin
      Metrics.incr c_proto_misses;
      note_plan "session open was not acknowledged"
    end;
    (* Drive the scripted requests. *)
    Array.iteri
      (fun i fault ->
        (* Overload burst: more simultaneous requests than the queue can
           hold. Every one of them must still be answered — the clean
           verdict or Λ/overload, never silence. The first one carries a
           zero deadline: already expired on arrival, always shed. *)
        if plan.Splan.burst > 0 && i = plan.Splan.burst_at then begin
          for k = 0 to plan.Splan.burst - 1 do
            let id = 1000 + k in
            let a = input_for (i + k) in
            track id a ~kind:Elastic ~deadline0:(k = 0);
            Metrics.incr c_burst;
            Metrics.incr c_requests;
            send (enforce ~deadline_us:(if k = 0 then 0 else -1) ~id a)
          done;
          settle ()
        end;
        match fault with
        | Splan.Clean ->
            let a = input_for i in
            track i a ~kind:Strict ~deadline0:false;
            Metrics.incr c_requests;
            send (enforce ~id:i a);
            settle ()
        | Splan.Disconnect ->
            (* Client hangs up mid-frame: the half-written request never
               becomes a request; the server must shrug and carry on. *)
            Metrics.incr c_disconnects;
            let conn = Engine.open_conn !eng ~now:!now in
            let frame =
              Wire.encode_request (enforce ~id:(500 + i) (input_for i))
            in
            Engine.feed !eng ~conn ~now:!now
              (String.sub frame 0 (String.length frame / 2));
            Engine.step !eng ~now:!now;
            tick ();
            Engine.close_conn !eng ~conn;
            settle ()
        | Splan.Slowloris ->
            (* A frame that dribbles in and then stalls: after the frame
               deadline the connection is refused, never served. *)
            Metrics.incr c_slowloris;
            let conn = Engine.open_conn !eng ~now:!now in
            let aux = Wire.Stream.create () in
            let frame =
              Wire.encode_request (enforce ~id:(600 + i) (input_for i))
            in
            Engine.feed !eng ~conn ~now:!now (String.sub frame 0 3);
            Engine.step !eng ~now:!now;
            tick ();
            now := !now +. config.Engine.frame_deadline +. 0.1;
            Engine.step !eng ~now:!now;
            tick ();
            let rs = pump conn aux in
            let refused =
              List.exists
                (function
                  | Wire.Refused { code = "slow"; _ } -> true | _ -> false)
                rs
            in
            if not (refused && Engine.conn_closing !eng ~conn) then begin
              Metrics.incr c_proto_misses;
              note_plan
                (Printf.sprintf "slowloris frame at request %d not refused" i)
            end;
            Engine.close_conn !eng ~conn;
            settle ()
        | Splan.Malformed damage ->
            (* Damaged frames: every kind must come back Refused — the
               decode error costs the sender its connection, nothing
               else. *)
            Metrics.incr c_malformed;
            let conn = Engine.open_conn !eng ~now:!now in
            let aux = Wire.Stream.create () in
            let frame =
              Wire.encode_request (enforce ~id:(700 + i) (input_for i))
            in
            let bytes =
              match damage with
              | Splan.Bad_magic -> flip_byte frame 0
              | Splan.Bad_crc -> flip_byte frame (String.length frame - 1)
              | Splan.Truncated ->
                  (* Cut the tail, then let the next frame's bytes slide
                     into the hole: the checksum catches the splice. *)
                  String.sub frame 0 (String.length frame - 2)
                  ^ Wire.encode_request (Wire.Hello { client = "x" })
              | Splan.Foreign_version ->
                  let payload =
                    String.sub frame Frame.header_size
                      (String.length frame - Frame.header_size)
                  in
                  Frame.frame (flip_byte payload 0)
              | Splan.Garbage -> "\x00\x07not-a-frame-at-all"
            in
            Engine.feed !eng ~conn ~now:!now bytes;
            Engine.step !eng ~now:!now;
            tick ();
            let rs = pump conn aux in
            let refused =
              List.exists
                (function
                  | Wire.Refused { code = "proto"; _ } -> true | _ -> false)
                rs
            in
            if not (refused && Engine.conn_closing !eng ~conn) then begin
              Metrics.incr c_proto_misses;
              note_plan
                (Printf.sprintf "malformed frame (%s) at request %d not refused"
                   (Splan.fault_name fault) i)
            end;
            Engine.close_conn !eng ~conn;
            settle ()
        | Splan.Kill ->
            (* The process dies mid-request. A journaled run resumes to its
               bit-identical verdict after the restart; an unjournaled one
               is denied Λ/recovery. Either way: answered, fail-secure. *)
            Metrics.incr c_kills;
            let a = input_for i in
            track i a ~kind:Elastic ~deadline0:false;
            Metrics.incr c_requests;
            Engine.kill_next !eng ~at_box:(1 + ((smax + i) mod 5));
            send (enforce ~id:i a);
            (try
               settle ();
               Metrics.incr c_kill_survivals
             with Engine.Died -> restart ()))
      plan.Splan.faults;
    (* Graceful drain: stop admitting, finish the queue, answer everyone. *)
    send Wire.Drain;
    (try
       let rounds = ref 0 in
       while not (Engine.drained !eng) && !rounds < 100 do
         Engine.step !eng ~now:!now;
         tick ();
         ignore (pump !main !cst);
         Stdlib.incr rounds
       done
     with Engine.Died -> restart ());
    Engine.step !eng ~now:!now;
    ignore (pump !main !cst);
    List.iter
      (fun (id, (r : req_state)) ->
        if not r.answered then begin
          Metrics.incr c_unanswered;
          note_req r
            (Printf.sprintf
               "FAIL-OPEN: request %d accepted but never answered" id)
        end)
      (List.sort compare (Hashtbl.fold (fun id r acc -> (id, r) :: acc) reqs []))
  in
  run_plan (Splan.fault_free ~requests:4);
  for seed = base_seed to base_seed + seeds - 1 do
    run_plan (Splan.generate ~seed ())
  done;
  { s_metrics = metrics; s_findings = List.rev !findings }

let tasks_of ~entries =
  List.concat_map
    (fun (entry : Paper.entry) ->
      let g = Paper.graph entry in
      List.map
        (fun policy -> { t_entry = entry; t_policy = policy })
        (FReport.policies_of_arity g.Graph.arity))
    entries

let run ?(entries = Paper.all) ?(mode = Dynamic.Surveillance) ?(seeds = 30)
    ?(base_seed = 0) ?(inputs_per_case = 3) ?(sink = Sink.null) ?(jobs = 1) ()
    =
  let sink = if jobs > 1 then Sink.synchronized sink else sink in
  let tasks = Array.of_list (tasks_of ~entries) in
  let shards, pool =
    Pool.map ~jobs (Array.length tasks) (fun i ->
        run_task ~mode ~seeds ~base_seed ~inputs_per_case ~sink tasks.(i))
  in
  let metrics = Metrics.create () in
  register_counters metrics;
  let c_tasks = Metrics.counter metrics "engine_tasks" in
  Array.iter (fun s -> Metrics.merge ~into:metrics s.s_metrics) shards;
  Metrics.incr ~by:pool.Pool.task_count c_tasks;
  let findings =
    let rec take n = function
      | [] -> []
      | _ when n = 0 -> []
      | f :: rest -> f :: take (n - 1) rest
    in
    take max_findings
      (List.concat_map (fun s -> s.s_findings) (Array.to_list shards))
  in
  let v name = Metrics.counter_value metrics name in
  let totals =
    {
      plans = v "plans";
      requests = v "requests";
      grants = v "grants";
      monitor_denials = v "monitor_denials";
      overload_denials = v "overload_denials";
      recovery_denials = v "recovery_denials";
      fault_denials = v "fault_denials";
      fail_open = v "fail_open";
      clean_mismatch = v "clean_mismatch";
      unanswered = v "unanswered";
      proto_refusals = v "proto_refusals";
      proto_misses = v "proto_misses";
      disconnects = v "disconnects";
      slowloris = v "slowloris";
      malformed = v "malformed";
      kills = v "kills";
      kill_survivals = v "kill_survivals";
      restarts = v "restarts";
      resumes = v "resumes";
      burst_requests = v "burst_requests";
    }
  in
  {
    base_seed;
    seeds;
    mode;
    totals;
    metrics;
    findings;
    ok =
      totals.fail_open = 0 && totals.clean_mismatch = 0
      && totals.unanswered = 0 && totals.proto_misses = 0;
    pool;
  }

let report_of r =
  let t = r.totals in
  {
    FReport.title =
      Printf.sprintf
        "server chaos sweep: %d plans (%d seeds from %d), mode %s" t.plans
        r.seeds r.base_seed
        (Dynamic.mode_name r.mode);
    params =
      [
        ("base_seed", Json.Int r.base_seed);
        ("seeds", Json.Int r.seeds);
        ("mode", Json.String (Dynamic.mode_name r.mode));
      ];
    metrics = r.metrics;
    rows =
      [
        ("requests", "enforce requests", None);
        ("grants", "grants", None);
        ("monitor_denials", "monitor denials", None);
        ( "overload_denials",
          "overload denials",
          Some "\xce\x9b/overload \xe2\x88\x88 F" );
        ( "recovery_denials",
          "recovery denials",
          Some "\xce\x9b/recovery \xe2\x88\x88 F" );
        ("fault_denials", "fault denials", None);
        ("fail_open", "fail-open", None);
        ("clean_mismatch", "clean mismatches", None);
        ("unanswered", "unanswered requests", None);
        ("proto_refusals", "connections refused", None);
        ("proto_misses", "refusals missed", None);
        ("disconnects", "client disconnects", None);
        ("slowloris", "slowloris frames", None);
        ("malformed", "malformed frames", None);
        ("kills", "kills armed", Some "process death mid-request");
        ("kill_survivals", "kills outrun", None);
        ("restarts", "restarts", None);
        ("resumes", "resume requests", None);
        ("burst_requests", "burst requests", None);
        ("engine_tasks", "engine tasks", None);
      ];
    findings =
      List.map
        (fun f ->
          {
            FReport.subject =
              [ f.entry; f.policy; "seed " ^ string_of_int f.seed; f.input ];
            fields =
              [
                ("entry", Json.String f.entry);
                ("policy", Json.String f.policy);
                ("seed", Json.Int f.seed);
                ("input", Json.String f.input);
              ];
            detail = f.detail;
          })
        r.findings;
    ok = r.ok;
    verdict_ok =
      "fail-secure (every request answered in E \xe2\x88\xaa F, no fail-open \
       grant, no silence)";
    verdict_fail = "FAIL-OPEN OR SILENT REQUEST DETECTED";
  }

let pp ppf r = FReport.pp ppf (report_of r)
let to_json r = FReport.to_json (report_of r)
let to_json_string r = FReport.to_json_string (report_of r)
