module Value = Secpol_core.Value
module Policy = Secpol_core.Policy
module Space = Secpol_core.Space
module Mechanism = Secpol_core.Mechanism
module Notice = Secpol_core.Notice
module Dynamic = Secpol_taint.Dynamic
module Paper = Secpol_corpus.Paper_programs
module Guard = Secpol_fault.Guard

type result = {
  requests : int;
  granted : int;
  denied : int;
  overloads : int;
  fail_open : int;
  duration : float;
  rps : float;
  p50_us : float;
  p99_us : float;
  scrapes : int;
}

let session_fuel = 4096

let session_spec ?(session = "load") ?(mode = Dynamic.Surveillance)
    ?(journaled = false) ~policy () =
  let allowed =
    match Policy.allowed_indices policy with
    | Some s -> s
    | None -> invalid_arg "Loadgen: needs an allow(...) policy"
  in
  {
    Wire.session;
    allowed;
    mode;
    fuel = session_fuel;
    guard_retries = Guard.default.Guard.retries;
    journaled;
  }

(* Monotonic-clamped wall clock (same discipline as the daemon). *)
let clock () =
  let last = ref (Unix.gettimeofday ()) in
  fun () ->
    let t = Unix.gettimeofday () in
    if t > !last then last := t;
    !last

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.
  else
    let idx = int_of_float (ceil (p *. float_of_int n)) - 1 in
    sorted.(max 0 (min (n - 1) idx))

(* The generator checks its own replies against the clean monitor: a load
   test that would accept a wrong grant is not a fail-secure gate. *)
type tally = {
  expected : Mechanism.reply array;  (** per input index *)
  input_of : int -> int;  (** request id -> input index *)
  mutable granted : int;
  mutable denied : int;
  mutable overloads : int;
  mutable fail_open : int;
}

let tally_of ~(spec : Wire.open_session) ~entry =
  let g = Paper.graph entry in
  let clean =
    Dynamic.mechanism
      (Dynamic.config ~fuel:spec.Wire.fuel ~mode:spec.Wire.mode
         (Policy.allow_set spec.Wire.allowed))
      g
  in
  let inputs =
    Array.of_list (List.of_seq (Space.enumerate entry.Paper.space))
  in
  let len = Array.length inputs in
  {
    expected = Array.map (Mechanism.respond clean) inputs;
    input_of = (fun id -> id mod len);
    granted = 0;
    denied = 0;
    overloads = 0;
    fail_open = 0;
  }

let inputs_of ~entry =
  Array.of_list (List.of_seq (Space.enumerate entry.Paper.space))

let record t id (reply : Mechanism.reply) =
  let expected = t.expected.(t.input_of id) in
  match reply.Mechanism.response with
  | Mechanism.Granted v -> (
      match expected.Mechanism.response with
      | Mechanism.Granted w when Value.equal v w -> t.granted <- t.granted + 1
      | _ -> t.fail_open <- t.fail_open + 1)
  | Mechanism.Denied n ->
      if n = Wire.overload_notice then t.overloads <- t.overloads + 1
      else if Notice.in_f n then t.denied <- t.denied + 1
      else t.fail_open <- t.fail_open + 1
  | Mechanism.Hung | Mechanism.Failed _ -> t.fail_open <- t.fail_open + 1

let finish ?(scrapes = 0) t ~requests ~duration latencies =
  Array.sort Float.compare latencies;
  {
    requests;
    granted = t.granted;
    denied = t.denied;
    overloads = t.overloads;
    fail_open = t.fail_open;
    duration;
    rps = (if duration > 0. then float_of_int requests /. duration else 0.);
    p50_us = percentile latencies 0.50 *. 1e6;
    p99_us = percentile latencies 0.99 *. 1e6;
    scrapes;
  }

(* ---------- in-process driver (the bench hot path: no sockets) ---------- *)

let run_engine ?(requests = 10_000) ?(window = 64) ?config ?mode ?journaled
    ?scrape_hz ~entry ~policy () =
  if requests < 1 then invalid_arg "Loadgen.run_engine: requests < 1";
  if window < 1 then invalid_arg "Loadgen.run_engine: window < 1";
  (match scrape_hz with
  | Some hz when hz <= 0. -> invalid_arg "Loadgen.run_engine: scrape_hz <= 0"
  | _ -> ());
  let spec = session_spec ?mode ?journaled ~policy () in
  let t = tally_of ~spec ~entry in
  let inputs = inputs_of ~entry in
  let config =
    let base = match config with Some c -> c | None -> Engine.default_config in
    {
      base with
      Engine.capacity = max base.Engine.capacity (2 * window);
      exec_budget = max base.Engine.exec_budget window;
    }
  in
  let now = clock () in
  let store = Store.memory () in
  let engine = Engine.create ~config ~store ~now:(now ()) () in
  let conn = Engine.open_conn engine ~now:(now ()) in
  let cst = Wire.Stream.create () in
  Engine.feed engine ~conn ~now:(now ())
    (Wire.encode_request (Wire.Open_session spec));
  Engine.step engine ~now:(now ());
  (let bytes = Engine.output engine ~conn in
   Wire.Stream.feed cst ~now:0. bytes;
   match Wire.Stream.next cst with
   | `Frame p -> (
       match Wire.decode_response p with
       | Ok (Wire.Session_opened _) -> ()
       | Ok (Wire.Refused { code; detail }) ->
           failwith (Printf.sprintf "Loadgen: session refused %s: %s" code detail)
       | Ok r ->
           failwith ("Loadgen: unexpected " ^ Wire.response_name r)
       | Error e -> failwith (Wire.Codec.error_message e))
   | `Await | `Corrupt _ -> failwith "Loadgen: no session acknowledgement");
  let send_at = Array.make requests 0. in
  let latencies = Array.make requests 0. in
  let sent = ref 0 in
  let answered = ref 0 in
  let t_start = now () in
  (* A concurrent scraper, modelled in-process: every 1/hz seconds the
     registry is snapshotted and rendered to Prometheus text, exactly the
     work a [GET /metrics] costs the daemon.  The bench pairs scraped vs
     unscraped runs to gate the overhead. *)
  let scrapes = ref 0 in
  let next_scrape =
    ref (match scrape_hz with Some hz -> t_start +. (1. /. hz) | None -> infinity)
  in
  let maybe_scrape () =
    match scrape_hz with
    | None -> ()
    | Some hz ->
        let t = now () in
        if t >= !next_scrape then begin
          ignore
            (Secpol_trace.Expo.render
               (Secpol_trace.Metrics.snapshot (Engine.metrics engine)));
          Stdlib.incr scrapes;
          (* Skip missed ticks rather than bursting to catch up. *)
          let period = 1. /. hz in
          while !next_scrape <= t do
            next_scrape := !next_scrape +. period
          done
        end
  in
  while !answered < requests do
    while !sent < requests && !sent - !answered < window do
      let id = !sent in
      let a = inputs.(t.input_of id) in
      send_at.(id) <- now ();
      Engine.feed engine ~conn ~now:(now ())
        (Wire.encode_request
           (Wire.Enforce
              {
                Wire.session = spec.Wire.session;
                request_id = id;
                program = entry.Paper.name;
                inputs = a;
                deadline_us = -1;
              }));
      Stdlib.incr sent
    done;
    Engine.step engine ~now:(now ());
    maybe_scrape ();
    let bytes = Engine.output engine ~conn in
    Wire.Stream.feed cst ~now:0. bytes;
    let continue = ref true in
    while !continue do
      match Wire.Stream.next cst with
      | `Frame p -> (
          match Wire.decode_response p with
          | Ok (Wire.Reply { request_id; reply; _ }) ->
              latencies.(request_id) <- now () -. send_at.(request_id);
              record t request_id reply;
              Stdlib.incr answered
          | Ok _ | Error _ -> ())
      | `Await | `Corrupt _ -> continue := false
    done
  done;
  finish ~scrapes:!scrapes t ~requests ~duration:(now () -. t_start) latencies

(* ---------- socket driver (CI: a real daemon on the other end) ---------- *)

let run_client ?(requests = 2_000) ?(window = 32) ~client ~spec ~entry () =
  if requests < 1 then invalid_arg "Loadgen.run_client: requests < 1";
  if window < 1 then invalid_arg "Loadgen.run_client: window < 1";
  let t = tally_of ~spec ~entry in
  let inputs = inputs_of ~entry in
  (match Client.open_session client spec with
  | Ok () -> ()
  | Error m -> failwith ("Loadgen: session refused: " ^ m));
  let now = clock () in
  let send_at = Array.make requests 0. in
  let latencies = Array.make requests 0. in
  let send id =
    send_at.(id) <- now ();
    Client.post client
      (Wire.Enforce
         {
           Wire.session = spec.Wire.session;
           request_id = id;
           program = entry.Paper.name;
           inputs = inputs.(t.input_of id);
           deadline_us = -1;
         })
  in
  let sent = ref 0 in
  let answered = ref 0 in
  let t_start = now () in
  while !sent < requests && !sent < window do
    send !sent;
    Stdlib.incr sent
  done;
  while !answered < requests do
    (match Client.next_response client with
    | Wire.Reply { request_id; reply; _ } ->
        latencies.(request_id) <- now () -. send_at.(request_id);
        record t request_id reply;
        Stdlib.incr answered
    | Wire.Refused { code; detail } ->
        failwith (Printf.sprintf "Loadgen: refused %s: %s" code detail)
    | _ -> ());
    if !sent < requests then begin
      send !sent;
      Stdlib.incr sent
    end
  done;
  finish t ~requests ~duration:(now () -. t_start) latencies

let pp ppf r =
  Format.fprintf ppf
    "%d requests in %.3fs: %.0f req/s, p50 %.0fus, p99 %.0fus@\n\
     granted %d, denied %d, overloads %d, fail-open %d@\n"
    r.requests r.duration r.rps r.p50_us r.p99_us r.granted r.denied
    r.overloads r.fail_open
