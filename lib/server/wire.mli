(** The enforcement service's wire protocol.

    Requests and responses are CRC-framed binary messages built on the
    journal's {!Secpol_journal.Codec} primitives and
    {!Secpol_journal.Frame} framing: every payload opens with the
    {!version} stamp and a message tag, every frame carries the length and
    CRC-32 of its payload. Decoding is total — truncation, foreign
    versions, checksum failures and nonsense bytes come back as the typed
    {!Secpol_journal.Codec.decode_error}, never an exception and never a
    misread message — so a malformed client can cost itself its
    connection, not the server its soundness.

    {!Stream} assembles frames from the byte dribble of a socket: it
    distinguishes {e incomplete} (wait for more bytes, remember since
    when — the slowloris clock) from {e corrupt} (close the connection). *)

module Codec = Secpol_journal.Codec
module Mechanism = Secpol_core.Mechanism

val version : int
(** Wire-protocol version, stamped into every payload. Distinct from the
    journal's {!Codec.format_version}: the wire and the journal evolve
    independently. *)

val overload_notice : string
(** {!Secpol_core.Notice.Overload} ("Λ/overload") — the violation notice
    for every request the service sheds, expires or refuses. *)

val default_deadline_us : int
(** Deadline applied when a request carries a negative [deadline_us]. *)

type open_session = {
  session : string;
  allowed : Secpol_core.Iset.t;  (** the session's [allow(J)] policy *)
  mode : Secpol_taint.Dynamic.mode;
  fuel : int;
  guard_retries : int;  (** per-session guard retry budget *)
  journaled : bool;  (** journal every run; enables {!Resume} recovery *)
}

type enforce = {
  session : string;
  request_id : int;  (** client-chosen; echoed in the {!Reply} *)
  program : string;  (** corpus entry name *)
  inputs : Secpol_core.Value.t array;
  deadline_us : int;
      (** microseconds from arrival; [0] is already expired (always shed
          with [Λ/overload]), negative means {!default_deadline_us} *)
}

type request =
  | Hello of { client : string }
  | Open_session of open_session
  | Enforce of enforce
  | Resume of { session : string; request_id : int }
      (** Ask for the verdict of a journaled run interrupted by a crash. *)
  | Stats
  | Drain

type response =
  | Welcome of { server : string }
  | Session_opened of { session : string }
  | Reply of { session : string; request_id : int; reply : Mechanism.reply }
  | Stats_reply of { body : string }  (** rendered metrics JSON *)
  | Draining of { outstanding : int }
  | Refused of { code : string; detail : string }
      (** Protocol-level refusal (unknown session, draining, foreign
          version, ...); never carries a verdict. *)

val encode_request : request -> string
(** Framed bytes, ready for the socket. *)

val encode_response : response -> string

val decode_request : string -> (request, Codec.decode_error) result
(** Decode one frame {e payload} (as produced by {!Stream.next}). *)

val decode_response : string -> (response, Codec.decode_error) result

val request_name : request -> string
val response_name : response -> string

(** Incremental frame assembly for one connection. *)
module Stream : sig
  type t

  val create : unit -> t

  val feed : t -> now:float -> string -> unit
  (** Append received bytes; [now] timestamps the oldest unparsed byte
      (the slowloris clock). *)

  val next : t -> [ `Frame of string | `Await | `Corrupt of Codec.decode_error ]
  (** Pop the next complete frame's payload. [`Await]: the buffer holds a
      (possibly empty) strict prefix of a frame. [`Corrupt]: the bytes can
      never become a frame (bad magic, checksum failure) — close the
      connection. *)

  val stalled_since : t -> float option
  (** [Some t0] while undecoded bytes are pending: the arrival time of the
      oldest of them. [None] when the buffer is empty. *)

  val pending_bytes : t -> int
end
