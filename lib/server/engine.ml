module Mechanism = Secpol_core.Mechanism
module Policy = Secpol_core.Policy
module Soundness = Secpol_core.Soundness
module Space = Secpol_core.Space
module Value = Secpol_core.Value
module Dynamic = Secpol_taint.Dynamic
module Graph = Secpol_flowgraph.Graph
module Hook = Secpol_flowgraph.Hook
module Guard = Secpol_fault.Guard
module Runner = Secpol_journal.Runner
module Media = Secpol_journal.Media
module Codec = Secpol_journal.Codec
module Paper = Secpol_corpus.Paper_programs
module Sink = Secpol_trace.Sink
module Event = Secpol_trace.Event
module Metrics = Secpol_trace.Metrics
module Pool = Secpol_engine.Pool
module Cache = Secpol_engine.Cache
module Json = Secpol_staticflow.Lint.Json

exception Died

type config = {
  server_name : string;
  capacity : int;
  shed_seed : int;
  default_deadline_us : int;
  frame_deadline : float;
  exec_budget : int;
  jobs : int;
  breaker_threshold : int;
  breaker_cooldown : float;
  snapshot_every : int;
  session_cache : bool;
  ikey_space_limit : int;
  hook : Hook.t;
}

let default_config =
  {
    server_name = "secpol-serve";
    capacity = 64;
    shed_seed = 0;
    default_deadline_us = Wire.default_deadline_us;
    frame_deadline = 2.0;
    exec_budget = 32;
    jobs = 1;
    breaker_threshold = 3;
    breaker_cooldown = 0.5;
    snapshot_every = Runner.default_snapshot_every;
    session_cache = true;
    ikey_space_limit = 4096;
    hook = Hook.none;
  }

type conn = {
  id : int;
  stream : Wire.Stream.t;
  out : Buffer.t;
  mutable alive : bool;  (* still reading requests *)
  mutable closing : bool;  (* engine refused it: flush output, then close *)
}

type work = {
  w_enforce : Wire.enforce;
  w_graph : Graph.t;
  w_session : Session.t;
  w_arrival : float;  (* admission instant, for the latency histograms *)
  w_ckey : Cache.key option;  (* session verdict-cache key; [None] = don't cache *)
}

type t = {
  cfg : config;
  store : Store.t;
  sink : Sink.t;
  ms : Metrics.t;
  graphs : (string, Graph.t) Hashtbl.t;
  spaces : (string, Secpol_core.Space.t) Hashtbl.t;  (* program -> corpus input space *)
  mechs : (string, Mechanism.t) Hashtbl.t;  (* unjournaled, per session/program *)
  ikeys : (string, bool) Hashtbl.t;
      (* per session/program: is the session mechanism timed-view sound for
         its policy, i.e. may the verdict cache key on the I-projection? *)
  sessions : (string, Session.t) Hashtbl.t;
  conns : (int, conn) Hashtbl.t;
  queue : work Admission.t;
  mutable next_conn : int;
  mutable kill_at : int option;
}

let config t = t.cfg
let metrics t = t.ms
let stats_json t = Json.render (Metrics.to_json t.ms)
let draining t = Admission.draining t.queue
let drained t = draining t && Admission.length t.queue = 0
let queue_length t = Admission.length t.queue

let session_names t =
  List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) t.sessions [])

let kill_next t ~at_box =
  if at_box < 0 then invalid_arg "Engine.kill_next: at_box < 0";
  t.kill_at <- Some at_box

let c t name = Metrics.counter t.ms name
let bump ?by t name = Metrics.incr ?by (c t name)

let emit t ev = Sink.emit t.sink ev

let graph_of t program =
  match Hashtbl.find_opt t.graphs program with
  | Some g -> Some g
  | None -> (
      match Paper.find program with
      | entry ->
          let g = Paper.graph entry in
          Hashtbl.add t.graphs program g;
          Hashtbl.add t.spaces program entry.Paper.space;
          Some g
      | exception Not_found -> None)

let resolve t (h : Runner.header) =
  match graph_of t h.Runner.program_ref with
  | Some g -> Ok g
  | None -> Error (Printf.sprintf "unknown program %S" h.Runner.program_ref)

(* ---------- recovery on restart ---------- *)

(* Complete (or refuse) every journaled run the dead process left behind,
   before any client reconnects: an interrupted run either resumes to its
   bit-identical verdict — re-delivered on the Resume request — or its
   journal is untrusted and the verdict is Λ/recovery. Either way the
   request is answered, never silently forgotten. *)
let recover t =
  let sessions = Session.load_all t.store in
  List.iter (fun s -> Hashtbl.replace t.sessions (Session.name s) s) sessions;
  if sessions <> [] then begin
    emit t
      (Event.Server
         {
           kind = Event.Restart;
           conn = -1;
           session = "";
           detail = Printf.sprintf "%d sessions" (List.length sessions);
         });
    bump t "server/restarts"
  end;
  List.iter
    (fun s ->
      if s.Session.spec.Wire.journaled then
        let prefix = Session.media_prefix ~session:(Session.name s) in
        List.iter
          (fun key ->
            if Store.has_media t.store key then begin
              let media = Store.media t.store key in
              (match
                 Runner.resume ~sink:t.sink ~resolve:(resolve t) ~media ()
               with
              | Ok _ -> bump t "server/resumed-runs"
              | Error Runner.No_journal -> ()
              | Error _ -> bump t "server/recovery-refusals");
              Media.close media;
              emit t
                (Event.Server
                   {
                     kind = Event.Resume_serve;
                     conn = -1;
                     session = Session.name s;
                     detail = key;
                   })
            end)
          (Store.keys t.store ~prefix))
    sessions

let create ?(config = default_config) ?(sink = Sink.null) ?metrics ~store ~now:_ () =
  if config.capacity < 1 then invalid_arg "Engine.create: capacity < 1";
  if config.exec_budget < 1 then invalid_arg "Engine.create: exec_budget < 1";
  let ms = match metrics with Some m -> m | None -> Metrics.create () in
  let t =
    {
      cfg = config;
      store;
      sink;
      ms;
      graphs = Hashtbl.create 16;
      spaces = Hashtbl.create 16;
      mechs = Hashtbl.create 16;
      ikeys = Hashtbl.create 16;
      sessions = Hashtbl.create 16;
      conns = Hashtbl.create 16;
      queue = Admission.create ~seed:config.shed_seed ~capacity:config.capacity ();
      next_conn = 0;
      kill_at = None;
    }
  in
  recover t;
  t

(* ---------- connections ---------- *)

let open_conn t ~now:_ =
  let id = t.next_conn in
  t.next_conn <- id + 1;
  Hashtbl.replace t.conns id
    { id; stream = Wire.Stream.create (); out = Buffer.create 256; alive = true; closing = false };
  emit t (Event.Server { kind = Event.Conn_open; conn = id; session = ""; detail = "" });
  bump t "server/conns";
  id

let feed t ~conn ~now bytes =
  match Hashtbl.find_opt t.conns conn with
  | Some cn when cn.alive && not cn.closing -> Wire.Stream.feed cn.stream ~now bytes
  | _ -> ()

let close_conn t ~conn =
  match Hashtbl.find_opt t.conns conn with
  | Some cn ->
      emit t
        (Event.Server { kind = Event.Conn_close; conn; session = ""; detail = "" });
      bump t "server/disconnects";
      Hashtbl.remove t.conns conn;
      ignore cn
  | None -> ()

let output t ~conn =
  match Hashtbl.find_opt t.conns conn with
  | Some cn ->
      let s = Buffer.contents cn.out in
      Buffer.clear cn.out;
      s
  | None -> ""

let conn_closing t ~conn =
  match Hashtbl.find_opt t.conns conn with Some cn -> cn.closing | None -> false

let conn_alive t ~conn =
  match Hashtbl.find_opt t.conns conn with Some cn -> cn.alive | None -> false

let push t conn_id resp =
  match Hashtbl.find_opt t.conns conn_id with
  | Some cn -> Buffer.add_string cn.out (Wire.encode_response resp)
  | None -> bump t "server/dropped-replies"

(* Refuse the connection: answer, stop reading, let the transport flush. *)
let refuse t (cn : conn) code detail =
  push t cn.id (Wire.Refused { code; detail });
  cn.closing <- true;
  emit t
    (Event.Server
       { kind = Event.Proto_error; conn = cn.id; session = ""; detail = code ^ ": " ^ detail });
  bump t "server/proto-errors"

(* ---------- request handling ---------- *)

let overload_reply =
  { Mechanism.response = Mechanism.Denied Wire.overload_notice; steps = 0 }

let recovery_reply =
  { Mechanism.response = Mechanism.Denied Guard.recovery_notice; steps = 0 }

let sname session what = Printf.sprintf "server/session/%s/%s" session what
let sbump ?by t session what = bump ?by t (sname session what)

(* ---------- cross-request session verdict cache ---------- *)

let mech_key session program = session ^ "\x00" ^ program

(* The cache key may collapse inputs to their I-projection only when that
   is {e proven} for this session's mechanism: sound under the timed view,
   so the whole reply — steps included — is constant per I-class and a
   cached representative is bit-identical to a fresh run (DESIGN §13). The
   proof is the exhaustive Soundness check over the program's corpus
   space, run once per (session, program) on the clean mechanism; when it
   fails (or no space is known) the key falls back to the full input
   vector, which is sound for any mechanism.

   The proof runs synchronously on the serving loop, so it is bounded:
   a space larger than [ikey_space_limit] (or whose size overflows) is
   never enumerated on the request path — the session simply keys on
   exact inputs, which costs cache density, never correctness or
   latency. *)
let ikey_strategy t (session : Session.t) program g =
  let key = mech_key (Session.name session) program in
  match Hashtbl.find_opt t.ikeys key with
  | Some b -> b
  | None ->
      let b =
        match Hashtbl.find_opt t.spaces program with
        | None -> false
        | Some space ->
            let provable =
              match Space.size space with
              | n -> n <= t.cfg.ikey_space_limit
              | exception Invalid_argument _ -> false
            in
            if not provable then begin
              bump t "server/cache-ikey-skips";
              false
            end
            else
              let policy = Session.policy session in
              let m =
                Dynamic.mechanism
                  (Dynamic.config ~fuel:session.Session.spec.Wire.fuel
                     ~mode:session.Session.spec.Wire.mode policy)
                  g
              in
              Soundness.is_sound ~config:Soundness.timed policy m space
      in
      Hashtbl.add t.ikeys key b;
      bump t (if b then "server/cache-ikeys" else "server/cache-exact-keys");
      b

let cache_key t (session : Session.t) program g inputs =
  (* The soundness proof quantifies over the corpus space only, so the
     I-projection covers exactly the inputs in that space. An arbitrary
     wire input outside it must key on the full vector: its Policy.image
     may collide with an in-space input's class, and replaying that
     class's cached verdict for it is exactly the enforcement hole the
     proof does not rule out. *)
  let ikey =
    ikey_strategy t session program g
    &&
    match Hashtbl.find_opt t.spaces program with
    | Some space when Space.mem space inputs -> true
    | _ ->
        bump t "server/cache-out-of-space";
        false
  in
  let projection =
    if ikey then Policy.image (Session.policy session) inputs
    else Value.tuple (Array.to_list inputs)
  in
  {
    Cache.digest = Runner.graph_hash g;
    tag =
      Printf.sprintf "%s|fuel=%d|%s"
        (Dynamic.mode_name session.Session.spec.Wire.mode)
        session.Session.spec.Wire.fuel
        (if ikey then "I" else "exact");
    projection;
  }

(* Only settled monitor verdicts are cached: grants and policy denials are
   deterministic functions of the key, while [Λ/degraded]/[Λ/recovery]/
   [Λ/overload], [Hung] and [Failed] describe the infrastructure of one
   particular attempt — caching those would make a transient fault
   permanent. *)
let cacheable (reply : Mechanism.reply) =
  match reply.Mechanism.response with
  | Mechanism.Granted _ -> true
  | Mechanism.Denied n ->
      n <> Guard.degraded_notice && n <> Guard.recovery_notice
      && n <> Wire.overload_notice
  | Mechanism.Hung | Mechanism.Failed _ -> false

(* Surface the session cache's own hit/miss counts as monotone counters,
   per session and in aggregate. Counters only move forward, so publish
   the delta since the last sync. *)
let sync_cache_counters t (session : Session.t) =
  let name = Session.name session in
  let sync what v =
    let n = sname name what in
    let d = v - Metrics.counter_value t.ms n in
    if d > 0 then begin
      bump ~by:d t n;
      bump ~by:d t ("server/session-" ^ what)
    end
  in
  sync "cache-hits" (Cache.hits session.Session.cache);
  sync "cache-misses" (Cache.misses session.Session.cache);
  sync "cache-evictions" (Cache.evictions session.Session.cache)

let shed t (e : work Admission.entry) reason =
  push t e.Admission.conn
    (Wire.Reply
       {
         session = e.Admission.session;
         request_id = e.Admission.request_id;
         reply = overload_reply;
       });
  let kind =
    match reason with Admission.Expired -> Event.Expire | _ -> Event.Shed
  in
  emit t
    (Event.Server
       {
         kind;
         conn = e.Admission.conn;
         session = e.Admission.session;
         detail =
           Printf.sprintf "request %d: %s" e.Admission.request_id
             (Admission.reason_name reason);
       });
  bump t "server/shed";
  bump t (Printf.sprintf "server/shed-%s" (Admission.reason_name reason));
  sbump t e.Admission.session "sheds"

let handle_enforce t (cn : conn) ~now (e : Wire.enforce) =
  match Hashtbl.find_opt t.sessions e.Wire.session with
  | None ->
      refuse t cn "unknown-session"
        (Printf.sprintf "no session %S (request %d)" e.Wire.session e.Wire.request_id)
  | Some session -> (
      match graph_of t e.Wire.program with
      | None ->
          refuse t cn "unknown-program"
            (Printf.sprintf "no program %S (request %d)" e.Wire.program e.Wire.request_id)
      | Some g when Graph.(g.arity) <> Array.length e.Wire.inputs ->
          refuse t cn "bad-arity"
            (Printf.sprintf "%s wants %d inputs, got %d (request %d)" e.Wire.program
               Graph.(g.arity) (Array.length e.Wire.inputs) e.Wire.request_id)
      | Some g ->
          bump t "server/requests";
          sbump t e.Wire.session "requests";
          let d_us =
            if e.Wire.deadline_us < 0 then t.cfg.default_deadline_us
            else e.Wire.deadline_us
          in
          let deadline = now +. (float_of_int d_us /. 1e6) in
          let ckey =
            if t.cfg.session_cache && not session.Session.spec.Wire.journaled
            then Some (cache_key t session e.Wire.program g e.Wire.inputs)
            else None
          in
          let decisions =
            Admission.offer t.queue ~now ~conn:cn.id ~session:e.Wire.session
              ~request_id:e.Wire.request_id ~deadline
              {
                w_enforce = e;
                w_graph = g;
                w_session = session;
                w_arrival = now;
                w_ckey = ckey;
              }
          in
          List.iter
            (function
              | `Admitted (a : work Admission.entry) ->
                  bump t "server/admitted";
                  Metrics.observe
                    (Metrics.histogram t.ms "server/queue-depth")
                    (Admission.length t.queue);
                  emit t
                    (Event.Server
                       {
                         kind = Event.Admit;
                         conn = a.Admission.conn;
                         session = a.Admission.session;
                         detail = Printf.sprintf "request %d" a.Admission.request_id;
                       })
              | `Shed (v, reason) -> shed t v reason)
            decisions)

let handle_resume t (cn : conn) (session_name : string) request_id =
  match Hashtbl.find_opt t.sessions session_name with
  | None ->
      refuse t cn "unknown-session"
        (Printf.sprintf "no session %S (resume %d)" session_name request_id)
  | Some session ->
      let reply =
        if not session.Session.spec.Wire.journaled then recovery_reply
        else
          let key = Session.media_key ~session:session_name ~request_id in
          if not (Store.has_media t.store key) then recovery_reply
          else begin
            let media = Store.media t.store key in
            let res = Runner.resume ~sink:t.sink ~resolve:(resolve t) ~media () in
            Media.close media;
            Guard.reply_of_recovery (Result.map (fun r -> r.Runner.reply) res)
          end
      in
      (if reply.Mechanism.response = recovery_reply.Mechanism.response then
         bump t "server/recovery-denials"
       else bump t "server/resume-served");
      emit t
        (Event.Server
           {
             kind = Event.Resume_serve;
             conn = cn.id;
             session = session_name;
             detail = Printf.sprintf "request %d" request_id;
           });
      push t cn.id (Wire.Reply { session = session_name; request_id; reply })

let handle_request t (cn : conn) ~now req =
  match req with
  | Wire.Hello _ -> push t cn.id (Wire.Welcome { server = t.cfg.server_name })
  | Wire.Open_session spec ->
      if draining t then refuse t cn "draining" "server is draining"
      else if not (Session.valid_name spec.Wire.session) then
        refuse t cn "bad-session" (Printf.sprintf "bad session name %S" spec.Wire.session)
      else (
        match Hashtbl.find_opt t.sessions spec.Wire.session with
        | Some existing when Session.spec_equal existing.Session.spec spec ->
            push t cn.id (Wire.Session_opened { session = spec.Wire.session })
        | Some _ ->
            refuse t cn "session-exists"
              (Printf.sprintf "session %S exists with a different config" spec.Wire.session)
        | None ->
            let s = Session.create spec in
            Hashtbl.replace t.sessions spec.Wire.session s;
            Session.save t.store s;
            emit t
              (Event.Server
                 {
                   kind = Event.Session_open;
                   conn = cn.id;
                   session = spec.Wire.session;
                   detail = "";
                 });
            bump t "server/sessions";
            push t cn.id (Wire.Session_opened { session = spec.Wire.session }))
  | Wire.Enforce e -> handle_enforce t cn ~now e
  | Wire.Resume { session; request_id } -> handle_resume t cn session request_id
  | Wire.Stats -> push t cn.id (Wire.Stats_reply { body = stats_json t })
  | Wire.Drain ->
      if not (draining t) then begin
        Admission.drain t.queue;
        emit t
          (Event.Server { kind = Event.Drain; conn = cn.id; session = ""; detail = "" });
        bump t "server/drains"
      end;
      push t cn.id (Wire.Draining { outstanding = Admission.length t.queue })

let drain t ~now:_ =
  if not (draining t) then begin
    Admission.drain t.queue;
    emit t (Event.Server { kind = Event.Drain; conn = -1; session = ""; detail = "sigterm" });
    bump t "server/drains"
  end

(* ---------- execution ---------- *)

(* The guarded monitor of an unjournaled session, built once per
   (session, program): exactly Guard over Dynamic, the same two layers
   Run.mechanism composes, so a served verdict is bit-identical to a
   local run under the same config. *)
let base_mechanism t (session : Session.t) program g =
  let key = mech_key (Session.name session) program in
  match Hashtbl.find_opt t.mechs key with
  | Some m -> m
  | None ->
      let dcfg =
        Dynamic.config ~fuel:session.Session.spec.Wire.fuel ~hook:t.cfg.hook
          ~emit:(Sink.emitter ~graph:g t.sink)
          ~mode:session.Session.spec.Wire.mode (Session.policy session)
      in
      let m = Dynamic.mechanism dcfg g in
      Hashtbl.add t.mechs key m;
      m

let journaled_mechanism t (session : Session.t) (e : Wire.enforce) g ~kill_at =
  let dcfg =
    Dynamic.config ~fuel:session.Session.spec.Wire.fuel ~hook:t.cfg.hook
      ~emit:(Sink.emitter ~graph:g t.sink)
      ~mode:session.Session.spec.Wire.mode (Session.policy session)
  in
  let key =
    Session.media_key ~session:(Session.name session) ~request_id:e.Wire.request_id
  in
  Mechanism.make
    ~name:(Printf.sprintf "serve-journal(%s)" Graph.(g.name))
    ~arity:Graph.(g.arity)
    (fun a ->
      let media = Store.media t.store key in
      let outcome =
        Runner.run ?kill_at ~snapshot_every:t.cfg.snapshot_every ~sink:t.sink
          ~media ~program_ref:e.Wire.program dcfg g a
      in
      Media.close media;
      match outcome with
      | Runner.Completed r -> r
      | Runner.Killed _ -> raise Died)

(* One queue entry: the scripted kill (if armed) fires here; otherwise
   the run goes through the session's guard so the reply is total into
   E ∪ F whatever the monitor does. *)
let execute_one t (w : work) inputs =
  let session = w.w_session in
  let kill_at = t.kill_at in
  t.kill_at <- None;
  match kill_at with
  | Some _ when not session.Session.spec.Wire.journaled ->
      (* Process death before anything durable happened: the run simply
         never existed. Resume later finds no journal -> Λ/recovery. *)
      raise Died
  | Some at ->
      let m = journaled_mechanism t session w.w_enforce w.w_graph ~kill_at:(Some at) in
      (* An armed kill strikes during the run (Died) unless the run ends
         before box [at]; either way no guard retries a killed process. *)
      let reply = Mechanism.respond m inputs in
      (reply, false)
  | None -> (
      let cached =
        match w.w_ckey with
        | Some key -> Cache.find session.Session.cache key
        | None -> None
      in
      match cached with
      | Some reply -> (reply, false)
      | None ->
          let m =
            if session.Session.spec.Wire.journaled then
              journaled_mechanism t session w.w_enforce w.w_graph ~kill_at:None
            else base_mechanism t session w.w_enforce.Wire.program w.w_graph
          in
          let outcome, steps =
            Guard.run ~config:(Session.guard_config session) ~sink:t.sink m inputs
          in
          let degraded = match outcome with Guard.Degraded _ -> true | _ -> false in
          let reply = Guard.reply_of_outcome (outcome, steps) in
          (match w.w_ckey with
          | Some key when (not degraded) && cacheable reply ->
              Cache.store session.Session.cache key reply
          | _ -> ());
          (reply, degraded))

let classify t (reply : Mechanism.reply) =
  match reply.Mechanism.response with
  | Mechanism.Granted _ -> bump t "server/granted"
  | Mechanism.Denied n ->
      if n = Guard.degraded_notice || n = Guard.recovery_notice then
        bump t "server/fault-denials"
      else if n = Wire.overload_notice then bump t "server/overload-denials"
      else bump t "server/monitor-denials"
  | Mechanism.Hung | Mechanism.Failed _ -> bump t "server/breaches"

let execute t ~now =
  let budget = t.cfg.exec_budget in
  let batch = ref [] in
  let n = ref 0 in
  let continue = ref true in
  while !continue && !n < budget do
    match Admission.pop t.queue ~now with
    | `Empty -> continue := false
    | `Expired e ->
        shed t e Admission.Expired;
        Stdlib.incr n
    | `Run e ->
        let w = e.Admission.work in
        if Session.breaker_open w.w_session ~now then begin
          shed t e Admission.Queue_full;
          bump t "server/breaker-sheds"
        end
        else batch := e :: !batch;
        Stdlib.incr n
  done;
  let batch = Array.of_list (List.rev !batch) in
  let nb = Array.length batch in
  if nb > 0 then begin
    let run i =
      let e = batch.(i) in
      execute_one t e.Admission.work e.Admission.work.w_enforce.Wire.inputs
    in
    Metrics.set (Metrics.gauge t.ms "server/pool-in-flight") nb;
    let results =
      if nb = 1 || t.cfg.jobs <= 1 then Array.init nb run
      else begin
        let rs, _pstats = Pool.map ~jobs:t.cfg.jobs nb run in
        (* Only the deterministic part of the pool telemetry lands in the
           registry; steals/idle probes are scheduling noise (stderr). *)
        bump ~by:nb t "server/pool-tasks";
        rs
      end
    in
    Metrics.set (Metrics.gauge t.ms "server/pool-in-flight") 0;
    Array.iteri
      (fun i (reply, degraded) ->
        let e = batch.(i) in
        let w = e.Admission.work in
        Session.record_outcome w.w_session ~now ~threshold:t.cfg.breaker_threshold
          ~cooldown:t.cfg.breaker_cooldown ~degraded;
        classify t reply;
        bump t "server/served";
        (match reply.Mechanism.response with
        | Mechanism.Granted _ -> sbump t e.Admission.session "granted"
        | Mechanism.Denied _ | Mechanism.Hung | Mechanism.Failed _ -> ());
        let latency_us =
          let us = int_of_float ((now -. w.w_arrival) *. 1e6) in
          if us < 0 then 0 else us
        in
        Metrics.observe (Metrics.histogram t.ms "server/latency-us") latency_us;
        Metrics.observe
          (Metrics.histogram t.ms (sname e.Admission.session "latency-us"))
          latency_us;
        sync_cache_counters t w.w_session;
        Metrics.observe (Metrics.histogram t.ms "server/exec-steps")
          reply.Mechanism.steps;
        emit t
          (Event.Server
             {
               kind = Event.Serve;
               conn = e.Admission.conn;
               session = e.Admission.session;
               detail = Printf.sprintf "request %d" e.Admission.request_id;
             });
        push t e.Admission.conn
          (Wire.Reply
             {
               session = e.Admission.session;
               request_id = e.Admission.request_id;
               reply;
             }))
      results
  end

let parse_conn t (cn : conn) ~now =
  let continue = ref true in
  while !continue && cn.alive && not cn.closing do
    match Wire.Stream.next cn.stream with
    | `Frame payload -> (
        match Wire.decode_request payload with
        | Ok req -> handle_request t cn ~now req
        | Error e ->
            bump t "server/wire-decode-errors";
            refuse t cn "proto" (Codec.error_message e))
    | `Await ->
        (match Wire.Stream.stalled_since cn.stream with
        | Some t0
          when Wire.Stream.pending_bytes cn.stream > 0
               && now -. t0 > t.cfg.frame_deadline ->
            refuse t cn "slow"
              (Printf.sprintf "frame stalled %.3fs" (now -. t0))
        | _ -> ());
        continue := false
    | `Corrupt e ->
        bump t "server/wire-decode-errors";
        refuse t cn "proto" (Codec.error_message e);
        continue := false
  done

(* Instantaneous state, published after every step so a scrape between
   steps reads the post-step truth. Session order is sorted-name so the
   registration order (and with it every rendering) is deterministic. *)
let refresh_gauges t ~now =
  Metrics.set (Metrics.gauge t.ms "server/queue-now") (Admission.length t.queue);
  Metrics.set (Metrics.gauge t.ms "server/open-conns") (Hashtbl.length t.conns);
  Metrics.set
    (Metrics.gauge t.ms "server/open-sessions")
    (Hashtbl.length t.sessions);
  let open_breakers = ref 0 in
  List.iter
    (fun name ->
      match Hashtbl.find_opt t.sessions name with
      | None -> ()
      | Some s ->
          let b = if Session.breaker_open s ~now then 1 else 0 in
          open_breakers := !open_breakers + b;
          Metrics.set (Metrics.gauge t.ms (sname name "breaker-open")) b)
    (session_names t);
  Metrics.set (Metrics.gauge t.ms "server/breakers-open") !open_breakers

let step t ~now =
  let ids =
    List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) t.conns [])
  in
  List.iter
    (fun id ->
      match Hashtbl.find_opt t.conns id with
      | Some cn -> parse_conn t cn ~now
      | None -> ())
    ids;
  execute t ~now;
  refresh_gauges t ~now

(* ---------- health ---------- *)

type health = {
  ok : bool;
  status : string;
  draining : bool;
  drained : bool;
  queue : int;
  capacity : int;
  sessions : int;
  conns : int;
  breakers_open : int;
  recovery_refusals : int;
}

let health t ~now =
  let is_draining = draining t and is_drained = drained t in
  let sessions = Hashtbl.length t.sessions in
  let breakers_open =
    Hashtbl.fold
      (fun _ s acc -> if Session.breaker_open s ~now then acc + 1 else acc)
      t.sessions 0
  in
  let recovery_refusals = Metrics.counter_value t.ms "server/recovery-refusals" in
  let saturated = sessions > 0 && breakers_open = sessions in
  let status =
    if is_drained then "drained"
    else if is_draining then "draining"
    else if saturated then "breakers-saturated"
    else if recovery_refusals > 0 then "recovery-refusals"
    else "ok"
  in
  {
    (* Refused journals are already answered fail-secure (Λ/recovery per
       request); they mark the health detail, not liveness. *)
    ok = (status = "ok" || status = "recovery-refusals");
    status;
    draining = is_draining;
    drained = is_drained;
    queue = Admission.length t.queue;
    capacity = t.cfg.capacity;
    sessions;
    conns = Hashtbl.length t.conns;
    breakers_open;
    recovery_refusals;
  }

let health_json (h : health) =
  Json.render
    (Json.Obj
       [
         ("ok", Json.Bool h.ok);
         ("status", Json.String h.status);
         ("draining", Json.Bool h.draining);
         ("drained", Json.Bool h.drained);
         ("queue", Json.Int h.queue);
         ("capacity", Json.Int h.capacity);
         ("sessions", Json.Int h.sessions);
         ("conns", Json.Int h.conns);
         ("breakers_open", Json.Int h.breakers_open);
         ("recovery_refusals", Json.Int h.recovery_refusals);
       ])
