module Metrics = Secpol_trace.Metrics
module Expo = Secpol_trace.Expo
module Json = Secpol_staticflow.Lint.Json

let session_prefix = "server/session/"

let session_of_name name =
  if String.starts_with ~prefix:session_prefix name then
    let rest =
      String.sub name (String.length session_prefix)
        (String.length name - String.length session_prefix)
    in
    match String.index_opt rest '/' with
    | Some i -> Some (String.sub rest 0 i)
    | None -> None
  else None

let sessions_of snap =
  let seen = Hashtbl.create 8 in
  List.filter_map
    (fun (name, _) ->
      match session_of_name name with
      | Some s when not (Hashtbl.mem seen s) ->
          Hashtbl.add seen s ();
          Some s
      | _ -> None)
    snap

let percentile (s : Metrics.summary) q =
  if s.Metrics.n = 0 then 0
  else begin
    let target =
      let t = int_of_float (ceil (q *. float_of_int s.Metrics.n)) in
      if t < 1 then 1 else t
    in
    let rec walk cum = function
      | [] -> s.Metrics.max
      | (upper, c) :: rest ->
          if cum + c >= target then upper else walk (cum + c) rest
    in
    walk 0 s.Metrics.buckets
  end

(* --- snapshot field access -------------------------------------------- *)

let counter snap name =
  match List.assoc_opt name snap with Some (Metrics.Counter c) -> c | _ -> 0

let gauge snap name =
  match List.assoc_opt name snap with Some (Metrics.Gauge g) -> g | _ -> 0

let hist snap name =
  match List.assoc_opt name snap with
  | Some (Metrics.Histogram s) -> Some s
  | _ -> None

(* --- rendering -------------------------------------------------------- *)

let render ?prev ?(interval = 1.0) snap =
  let delta =
    match prev with Some older -> Metrics.diff ~older snap | None -> snap
  in
  let b = Buffer.create 1024 in
  Buffer.add_string b
    (Printf.sprintf
       "secpol top — requests %d  granted %d  shed %d  queue %d  conns %d  \
        breakers %d\n"
       (counter snap "server/requests")
       (counter snap "server/granted")
       (counter snap "server/shed")
       (gauge snap "server/queue-now")
       (gauge snap "server/open-conns")
       (gauge snap "server/breakers-open"));
  let rate_label = if prev = None then "TOTAL" else "RPS" in
  Buffer.add_string b
    (Printf.sprintf "%-16s %8s %9s %9s %7s %7s %7s %4s\n" "SESSION" rate_label
       "P50us" "P99us" "SHEDS" "HITS" "MISS" "BRK");
  List.iter
    (fun s ->
      let k what = session_prefix ^ s ^ "/" ^ what in
      let rate =
        let d = counter delta (k "requests") in
        match prev with
        | None -> Printf.sprintf "%d" d
        | Some _ ->
            if interval > 0. then
              Printf.sprintf "%.1f" (float_of_int d /. interval)
            else "-"
      in
      let p50, p99 =
        match hist snap (k "latency-us") with
        | Some h -> (percentile h 0.5, percentile h 0.99)
        | None -> (0, 0)
      in
      Buffer.add_string b
        (Printf.sprintf "%-16s %8s %9d %9d %7d %7d %7d %4s\n" s rate p50 p99
           (counter snap (k "sheds"))
           (counter snap (k "cache-hits"))
           (counter snap (k "cache-misses"))
           (if gauge snap (k "breaker-open") > 0 then "OPEN" else "-")))
    (sessions_of snap);
  Buffer.contents b

(* --- replay ----------------------------------------------------------- *)

let frames_of_jsonl text =
  let rec go acc lineno = function
    | [] -> Ok (List.rev acc)
    | line :: rest ->
        let line = String.trim line in
        if line = "" then go acc (lineno + 1) rest
        else
          let frame =
            Result.bind (Json.parse line) Metrics.snapshot_of_json
          in
          (match frame with
          | Ok snap -> go (snap :: acc) (lineno + 1) rest
          | Error e -> Error (Printf.sprintf "line %d: %s" lineno e))
  in
  go [] 1 (String.split_on_char '\n' text)

(* --- live scraping ---------------------------------------------------- *)

let rec really_write fd s off len =
  if len > 0 then begin
    let n = Unix.write_substring fd s off len in
    really_write fd s (off + n) (len - n)
  end

let scrape address ~path =
  let connect () =
    match (address : Daemon.address) with
    | Daemon.Unix_path p ->
        let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        Unix.connect fd (Unix.ADDR_UNIX p);
        fd
    | Daemon.Tcp (host, port) ->
        let addr =
          try Unix.inet_addr_of_string host
          with Failure _ -> (Unix.gethostbyname host).Unix.h_addr_list.(0)
        in
        let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
        Unix.connect fd (Unix.ADDR_INET (addr, port));
        fd
  in
  match connect () with
  | exception (Unix.Unix_error _ | Not_found | Failure _) ->
      Error
        (Printf.sprintf "cannot connect to %s" (Daemon.address_to_string address))
  | fd -> (
      let close () = try Unix.close fd with Unix.Unix_error _ -> () in
      try
        let req = Printf.sprintf "GET %s HTTP/1.0\r\n\r\n" path in
        really_write fd req 0 (String.length req);
        let buf = Bytes.create 65536 in
        let out = Buffer.create 4096 in
        let rec drain () =
          match Unix.read fd buf 0 (Bytes.length buf) with
          | 0 -> ()
          | n ->
              Buffer.add_subbytes out buf 0 n;
              drain ()
        in
        drain ();
        close ();
        let raw = Buffer.contents out in
        let body =
          (* Headers end at the first blank line. *)
          let n = String.length raw in
          let rec find i =
            if i + 3 >= n then None
            else if
              raw.[i] = '\r' && raw.[i + 1] = '\n' && raw.[i + 2] = '\r'
              && raw.[i + 3] = '\n'
            then Some (String.sub raw (i + 4) (n - i - 4))
            else find (i + 1)
          in
          find 0
        in
        match body with
        | None -> Error "malformed HTTP response"
        | Some body ->
            if String.length raw > 12 && String.sub raw 9 3 = "200" then Ok body
            else
              Error
                (String.trim
                   (match String.index_opt raw '\n' with
                   | Some eol -> String.sub raw 0 eol
                   | None -> raw))
      with Unix.Unix_error (e, _, _) ->
        close ();
        Error (Unix.error_message e))

let scrape_snapshot address =
  Result.bind (scrape address ~path:"/metrics") Expo.parse
