(** The bounded admission queue: backpressure that fails secure.

    Every enforce request either runs before its deadline or is {e shed}
    — and a shed request is {e answered}, with the violation notice
    [Λ/overload ∈ F], never silently dropped and never granted. The queue
    is a deterministic state machine: given the same seed and the same
    sequence of offers and pops it makes the same decisions, so the chaos
    sweep replays overload scenarios bit-for-bit.

    Shedding policy when the queue is full: the victim is the entry with
    the {e latest} absolute deadline among the queued entries and the
    newcomer — the request most likely to expire anyway — with ties
    broken by a draw from the seeded {!Secpol_fault.Plan.Rng} stream.
    Entries with [deadline <= now] at offer time are shed immediately
    ([Expired]); a queue in drain refuses every offer ([Draining]). *)

type 'a entry = {
  seq : int;  (** admission sequence number: a total order on offers *)
  conn : int;
  session : string;
  request_id : int;
  deadline : float;  (** absolute *)
  work : 'a;
}

type reason =
  | Expired  (** deadline at or before [now] when offered or popped *)
  | Queue_full  (** displaced by the shedding policy *)
  | Draining  (** offered after {!drain} *)

val reason_name : reason -> string

type 'a t

val create : ?seed:int -> capacity:int -> unit -> 'a t
(** @raise Invalid_argument if [capacity < 1]. *)

val capacity : 'a t -> int
val length : 'a t -> int
val draining : 'a t -> bool

val offer :
  'a t ->
  now:float ->
  conn:int ->
  session:string ->
  request_id:int ->
  deadline:float ->
  'a ->
  [ `Admitted of 'a entry | `Shed of 'a entry * reason ] list
(** Offer one request. Exactly one decision concerns the newcomer; a
    [`Shed] of a {e queued} entry (displaced by the newcomer under the
    shedding policy) may precede it. Every returned entry — admitted or
    shed — must be answered by the caller: the queue never swallows one. *)

val pop : 'a t -> now:float -> [ `Run of 'a entry | `Expired of 'a entry | `Empty ]
(** FIFO by admission order. An entry whose deadline has passed comes back
    [`Expired] — the caller answers it with [Λ/overload] instead of
    running it. *)

val drain : 'a t -> unit
(** Refuse all future offers. Already-admitted entries stay queued: keep
    popping until [`Empty] — drain never drops an admitted request. *)

val to_list : 'a t -> 'a entry list
(** Queued entries, admission order. *)
