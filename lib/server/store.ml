module Media = Secpol_journal.Media

type backend =
  | Memory of {
      media : (string, Media.t) Hashtbl.t;
      blobs : (string, string) Hashtbl.t;
    }
  | Dir of string

type t = backend

let memory () = Memory { media = Hashtbl.create 16; blobs = Hashtbl.create 16 }

let rec mkdir_p path =
  if not (Sys.file_exists path) then begin
    mkdir_p (Filename.dirname path);
    (try Sys.mkdir path 0o755 with Sys_error _ -> ())
  end

let dir root =
  mkdir_p root;
  if not (Sys.is_directory root) then
    invalid_arg (Printf.sprintf "Store.dir: %s is not a directory" root);
  Dir root

let subkey parts =
  List.iter
    (fun p ->
      if p = "" || String.contains p '/' then
        invalid_arg (Printf.sprintf "Store.subkey: bad component %S" p))
    parts;
  String.concat "/" parts

(* Keys are slash-separated paths of safe components; the dir backend
   maps them to nested directories, media to a subdirectory, blobs to a
   ".bin" file. *)
let key_path root key = Filename.concat root key

let media t key =
  match t with
  | Memory { media; _ } -> (
      match Hashtbl.find_opt media key with
      | Some m -> m
      | None ->
          let m = Media.memory () in
          Hashtbl.add media key m;
          m)
  | Dir root ->
      let path = key_path root key in
      mkdir_p (Filename.dirname path);
      Media.dir path

let has_media t key =
  match t with
  | Memory { media; _ } -> Hashtbl.mem media key
  | Dir root ->
      let path = key_path root key in
      Sys.file_exists path && Sys.is_directory path

let blob_path root key = key_path root key ^ ".bin"

let put t key data =
  match t with
  | Memory { blobs; _ } -> Hashtbl.replace blobs key data
  | Dir root ->
      let path = blob_path root key in
      mkdir_p (Filename.dirname path);
      let tmp = path ^ ".tmp" in
      let oc = open_out_bin tmp in
      output_string oc data;
      close_out oc;
      Sys.rename tmp path

let get t key =
  match t with
  | Memory { blobs; _ } -> Hashtbl.find_opt blobs key
  | Dir root ->
      let path = blob_path root key in
      if Sys.file_exists path then begin
        let ic = open_in_bin path in
        let n = in_channel_length ic in
        let s = really_input_string ic n in
        close_in ic;
        Some s
      end
      else None

let keys t ~prefix =
  let has_prefix s =
    String.length s >= String.length prefix
    && String.sub s 0 (String.length prefix) = prefix
  in
  match t with
  | Memory { media; blobs } ->
      let acc = ref [] in
      Hashtbl.iter (fun k _ -> if has_prefix k then acc := k :: !acc) media;
      Hashtbl.iter (fun k _ -> if has_prefix k then acc := k :: !acc) blobs;
      List.sort_uniq compare !acc
  | Dir root ->
      let rec walk rel acc =
        let path = if rel = "" then root else key_path root rel in
        if Sys.file_exists path && Sys.is_directory path then
          Array.fold_left
            (fun acc name ->
              let child = if rel = "" then name else rel ^ "/" ^ name in
              let cpath = key_path root child in
              if Sys.is_directory cpath then
                if Sys.file_exists (Filename.concat cpath Media.snapshot_file)
                   || Sys.file_exists (Filename.concat cpath Media.journal_file)
                then walk child (child :: acc)
                else walk child acc
              else if Filename.check_suffix name ".bin" then
                Filename.chop_suffix child ".bin" :: acc
              else acc)
            acc (Sys.readdir path)
        else acc
      in
      List.sort_uniq compare (List.filter has_prefix (walk "" []))
