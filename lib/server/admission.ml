module Rng = Secpol_fault.Plan.Rng

type 'a entry = {
  seq : int;
  conn : int;
  session : string;
  request_id : int;
  deadline : float;
  work : 'a;
}

type reason = Expired | Queue_full | Draining

let reason_name = function
  | Expired -> "expired"
  | Queue_full -> "queue-full"
  | Draining -> "draining"

type 'a t = {
  cap : int;
  rng : Rng.state;
  mutable queue : 'a entry list;  (* admission order, head = oldest *)
  mutable next_seq : int;
  mutable draining : bool;
}

let create ?(seed = 0) ~capacity () =
  if capacity < 1 then invalid_arg "Admission.create: capacity < 1";
  { cap = capacity; rng = Rng.create seed; queue = []; next_seq = 0; draining = false }

let capacity t = t.cap
let length t = List.length t.queue
let draining t = t.draining
let to_list t = t.queue

let offer t ~now ~conn ~session ~request_id ~deadline work =
  let e =
    { seq = t.next_seq; conn; session; request_id; deadline; work }
  in
  t.next_seq <- t.next_seq + 1;
  if t.draining then [ `Shed (e, Draining) ]
  else if deadline <= now then [ `Shed (e, Expired) ]
  else if List.length t.queue < t.cap then begin
    t.queue <- t.queue @ [ e ];
    [ `Admitted e ]
  end
  else begin
    (* Full: shed the candidate with the latest deadline among the queue
       and the newcomer; seeded draw on deadline ties so the choice is a
       pure function of (seed, queue state). *)
    let latest =
      List.fold_left
        (fun acc c -> if c.deadline > acc.deadline then c else acc)
        e t.queue
    in
    let ties =
      List.filter (fun c -> c.deadline = latest.deadline) (e :: t.queue)
    in
    let victim =
      match ties with
      | [ v ] -> v
      | vs -> List.nth vs (Rng.below t.rng (List.length vs))
    in
    if victim.seq = e.seq then [ `Shed (e, Queue_full) ]
    else begin
      t.queue <-
        List.filter (fun c -> c.seq <> victim.seq) t.queue @ [ e ];
      [ `Shed (victim, Queue_full); `Admitted e ]
    end
  end

let pop t ~now =
  match t.queue with
  | [] -> `Empty
  | e :: rest ->
      t.queue <- rest;
      if e.deadline <= now then `Expired e else `Run e

let drain t = t.draining <- true
