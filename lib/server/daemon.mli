(** The enforcement service as a process: a [Unix.select] loop around
    {!Engine}.

    The daemon owns the sockets and the wall clock and nothing else — all
    protocol and policy behaviour lives in the transport-agnostic
    {!Engine}, which is what the chaos sweep and the property tests
    exercise. Time is a {e monotonic-clamped} wall clock: [gettimeofday]
    stepped backwards (NTP) never rewinds deadlines or the slowloris
    clock.

    Shutdown is graceful by construction: SIGTERM/SIGINT (or a client's
    {!Wire.Drain}) put the engine into drain — new enforce requests are
    answered [Λ/overload], the queue keeps executing — and the loop exits
    once the queue is empty and the last reply bytes are flushed. *)

module Sink = Secpol_trace.Sink
module Metrics = Secpol_trace.Metrics

type address = Unix_path of string | Tcp of string * int

val address_to_string : address -> string

val serve :
  ?config:Engine.config ->
  ?sink:Sink.t ->
  ?metrics:Metrics.t ->
  ?store:Store.t ->
  ?poll:float ->
  ?signals:bool ->
  ?ready:(address -> unit) ->
  ?should_stop:(unit -> bool) ->
  ?metrics_address:address ->
  ?metrics_ready:(address -> unit) ->
  ?http_deadline:float ->
  address ->
  unit
(** Bind, listen, serve until drained. [store] defaults to a fresh
    memory store; give {!Store.dir} to survive restarts. [poll] is the
    select timeout (the engine steps at least this often even when idle,
    so deadlines and slowloris stalls fire without traffic). [signals]
    installs SIGTERM/SIGINT drain handlers (and ignores SIGPIPE);
    restores the old handlers on exit. [ready] is called once with the
    {e bound} address — for [Tcp (host, 0)] it carries the kernel-chosen
    port. [should_stop] is polled once per loop round (for in-process
    tests).

    [metrics_address] opens the observability plane on a second listen
    socket in the same loop: [GET /metrics] (Prometheus text rendered
    from a {!Secpol_trace.Metrics.snapshot} of the engine registry) and
    [GET /healthz] ({!Engine.health_json}; 503 while draining), one
    request per connection, HTTP/1.0, close after answering — see
    {!Http}. [metrics_ready] receives its bound address. The socket
    keeps answering through drain (that is when an operator most wants
    it) and closes when the daemon exits. The plane cannot hold the
    loop hostage: a connection gets [http_deadline] seconds (default
    [2.0]) to deliver its request line before the fd is reclaimed, and
    the response write is non-blocking with the same budget, so a
    scraper that connects and goes silent — or stops reading — is cut
    off, never enforcement.

    @raise Unix.Unix_error if an address cannot be bound. *)
