(** The enforcement service as a process: a [Unix.select] loop around
    {!Engine}.

    The daemon owns the sockets and the wall clock and nothing else — all
    protocol and policy behaviour lives in the transport-agnostic
    {!Engine}, which is what the chaos sweep and the property tests
    exercise. Time is a {e monotonic-clamped} wall clock: [gettimeofday]
    stepped backwards (NTP) never rewinds deadlines or the slowloris
    clock.

    Shutdown is graceful by construction: SIGTERM/SIGINT (or a client's
    {!Wire.Drain}) put the engine into drain — new enforce requests are
    answered [Λ/overload], the queue keeps executing — and the loop exits
    once the queue is empty and the last reply bytes are flushed. *)

module Sink = Secpol_trace.Sink
module Metrics = Secpol_trace.Metrics

type address = Unix_path of string | Tcp of string * int

val address_to_string : address -> string

val serve :
  ?config:Engine.config ->
  ?sink:Sink.t ->
  ?metrics:Metrics.t ->
  ?store:Store.t ->
  ?poll:float ->
  ?signals:bool ->
  ?ready:(address -> unit) ->
  ?should_stop:(unit -> bool) ->
  address ->
  unit
(** Bind, listen, serve until drained. [store] defaults to a fresh
    memory store; give {!Store.dir} to survive restarts. [poll] is the
    select timeout (the engine steps at least this often even when idle,
    so deadlines and slowloris stalls fire without traffic). [signals]
    installs SIGTERM/SIGINT drain handlers (and ignores SIGPIPE);
    restores the old handlers on exit. [ready] is called once with the
    {e bound} address — for [Tcp (host, 0)] it carries the kernel-chosen
    port. [should_stop] is polled once per loop round (for in-process
    tests).

    @raise Unix.Unix_error if the address cannot be bound. *)
