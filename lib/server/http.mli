(** Minimal HTTP/1.0 for the observability plane.

    Just enough protocol to answer [GET /metrics] and [GET /healthz]
    from the daemon's own select loop — request-line parsing, response
    framing, and the two routes — with no dependency beyond [Unix]
    (which this module does not even touch: it is pure string-in,
    string-out, so the chaos/property tests can drive it without a
    socket). Every response carries [Content-Length] and
    [Connection: close]; the daemon writes it and closes, which is all
    an HTTP/1.0 client (curl, Prometheus) needs. *)

type request = { meth : string; target : string }

val request_of_buffer : string -> request option
(** [Some] once the buffered bytes contain a complete request line
    ([METHOD SP TARGET ...\n]); [None] while it is still partial.
    Trailing headers need not have arrived — the routes depend only on
    the request line. *)

val response :
  status:int -> ?content_type:string -> string -> string
(** Full response bytes: status line (with the standard reason phrase),
    [Content-Type] (default [text/plain; charset=utf-8]),
    [Content-Length], [Connection: close], blank line, body. *)

val handle : Engine.t -> now:float -> request -> string
(** The router: [GET /metrics] renders a {!Secpol_trace.Expo} snapshot
    of the engine registry (200), [GET /healthz] renders
    {!Engine.health_json} (200 when [ok], 503 otherwise), anything else
    is 404; non-GET methods are 405. Never raises. *)
