module Sink = Secpol_trace.Sink
module Metrics = Secpol_trace.Metrics

type address = Unix_path of string | Tcp of string * int

let address_to_string = function
  | Unix_path p -> "unix:" ^ p
  | Tcp (host, port) -> Printf.sprintf "tcp:%s:%d" host port

(* Monotonic-clamped wall clock: gettimeofday can step backwards (NTP);
   deadlines and the slowloris clock must not. *)
let clock () =
  let last = ref (Unix.gettimeofday ()) in
  fun () ->
    let t = Unix.gettimeofday () in
    if t > !last then last := t;
    !last

let resolve_host host =
  try Unix.inet_addr_of_string host
  with Failure _ -> (
    try (Unix.gethostbyname host).Unix.h_addr_list.(0)
    with Not_found -> invalid_arg (Printf.sprintf "Daemon: unknown host %S" host))

let listen_socket address =
  match address with
  | Unix_path path ->
      if Sys.file_exists path then Unix.unlink path;
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.bind fd (Unix.ADDR_UNIX path);
      Unix.listen fd 64;
      (fd, address)
  | Tcp (host, port) ->
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.setsockopt fd Unix.SO_REUSEADDR true;
      Unix.bind fd (Unix.ADDR_INET (resolve_host host, port));
      Unix.listen fd 64;
      (* port 0 asks the kernel for a free port; report the real one. *)
      let bound =
        match Unix.getsockname fd with
        | Unix.ADDR_INET (_, p) -> Tcp (host, p)
        | _ -> address
      in
      (fd, bound)

let rec write_all fd s off len =
  if len > 0 then begin
    let n = Unix.write_substring fd s off len in
    write_all fd s (off + n) (len - n)
  end

(* Bounded best-effort send for the metrics plane: the fd is switched to
   non-blocking and given at most [budget] seconds of short write/select
   rounds. A scraper that stops reading loses its response; it can never
   stall the enforcement loop. Returns whether everything was written. *)
let write_within ~now ~budget fd s =
  (try Unix.set_nonblock fd with Unix.Unix_error _ -> ());
  let deadline = now () +. budget in
  let n = String.length s in
  let off = ref 0 in
  let give_up = ref false in
  while !off < n && not !give_up do
    match Unix.write_substring fd s !off (n - !off) with
    | k -> off := !off + k
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        if now () >= deadline then give_up := true
        else begin
          match Unix.select [] [ fd ] [] (min 0.05 budget) with
          | _, [], _ -> if now () >= deadline then give_up := true
          | _ -> ()
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
        end
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | exception Unix.Unix_error _ -> give_up := true
  done;
  !off = n

let serve ?config ?(sink = Sink.null) ?metrics ?store ?(poll = 0.05)
    ?(signals = true) ?(ready = fun _ -> ()) ?(should_stop = fun () -> false)
    ?metrics_address ?(metrics_ready = fun _ -> ()) ?(http_deadline = 2.0)
    address =
  let store = match store with Some s -> s | None -> Store.memory () in
  let now = clock () in
  let engine = Engine.create ?config ~sink ?metrics ~store ~now:(now ()) () in
  let lfd, bound = listen_socket address in
  (* The observability plane listens on its own address, served from the
     same loop: a scrape never preempts enforcement, it just takes its
     turn in the select round. *)
  let mfd, mbound =
    match metrics_address with
    | None -> (None, None)
    | Some a ->
        let fd, b = listen_socket a in
        (Some fd, Some b)
  in
  let conns : (Unix.file_descr, int) Hashtbl.t = Hashtbl.create 16 in
  (* request buffer + accept instant: a scraper gets [http_deadline]
     seconds to deliver its request line before the fd is reclaimed. *)
  let http_conns : (Unix.file_descr, Buffer.t * float) Hashtbl.t =
    Hashtbl.create 8
  in
  let drain_requested = ref false in
  let old_handlers = ref [] in
  if signals then begin
    let install s =
      let old =
        Sys.signal s (Sys.Signal_handle (fun _ -> drain_requested := true))
      in
      old_handlers := (s, old) :: !old_handlers
    in
    install Sys.sigterm;
    install Sys.sigint;
    (try
       old_handlers :=
         (Sys.sigpipe, Sys.signal Sys.sigpipe Sys.Signal_ignore)
         :: !old_handlers
     with Invalid_argument _ | Sys_error _ -> ())
  end;
  let drop fd =
    (match Hashtbl.find_opt conns fd with
    | Some id -> Engine.close_conn engine ~conn:id
    | None -> ());
    Hashtbl.remove conns fd;
    try Unix.close fd with Unix.Unix_error _ -> ()
  in
  let buf = Bytes.create 65536 in
  let drop_http fd =
    Hashtbl.remove http_conns fd;
    try Unix.close fd with Unix.Unix_error _ -> ()
  in
  (* One shot: read until the request line is in, answer, close. The
     response write is itself bounded — a scraper that stops reading is
     cut off, never the loop. *)
  let read_http fd =
    match Hashtbl.find_opt http_conns fd with
    | None -> ()
    | Some (b, _) -> (
        match Unix.read fd buf 0 (Bytes.length buf) with
        | 0 -> drop_http fd
        | n -> (
            Buffer.add_subbytes b buf 0 n;
            if Buffer.length b > 8192 then drop_http fd
            else
              match Http.request_of_buffer (Buffer.contents b) with
              | None -> ()
              | Some req ->
                  let resp = Http.handle engine ~now:(now ()) req in
                  ignore (write_within ~now ~budget:http_deadline fd resp);
                  drop_http fd)
        | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
            drop_http fd
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ())
  in
  (* Reclaim scraper fds that never produced a full request line. *)
  let expire_http t_now =
    let stale =
      Hashtbl.fold
        (fun fd (_, since) acc ->
          if t_now -. since > http_deadline then fd :: acc else acc)
        http_conns []
    in
    List.iter drop_http stale
  in
  let read_conn fd =
    match Hashtbl.find_opt conns fd with
    | None -> ()
    | Some id -> (
        match Unix.read fd buf 0 (Bytes.length buf) with
        | 0 -> drop fd
        | n -> Engine.feed engine ~conn:id ~now:(now ()) (Bytes.sub_string buf 0 n)
        | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
            drop fd
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ())
  in
  let flush_conn fd =
    match Hashtbl.find_opt conns fd with
    | None -> ()
    | Some id ->
        let out = Engine.output engine ~conn:id in
        (if out <> "" then
           try write_all fd out 0 (String.length out)
           with Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) ->
             drop fd);
        if Engine.conn_closing engine ~conn:id then drop fd
  in
  ready bound;
  Option.iter metrics_ready mbound;
  let close_all () =
    Hashtbl.iter (fun fd _ -> try Unix.close fd with _ -> ()) conns;
    Hashtbl.iter (fun fd _ -> try Unix.close fd with _ -> ()) http_conns;
    (try Unix.close lfd with _ -> ());
    (match mfd with Some fd -> ( try Unix.close fd with _ -> ()) | None -> ());
    (match mbound with
    | Some (Unix_path p) -> ( try Unix.unlink p with Unix.Unix_error _ -> ())
    | Some (Tcp _) | None -> ());
    List.iter (fun (s, h) -> try ignore (Sys.signal s h) with _ -> ()) !old_handlers
  in
  (try
     let running = ref true in
     while !running do
       if !drain_requested && not (Engine.draining engine) then
         Engine.drain engine ~now:(now ());
       let fds = lfd :: Hashtbl.fold (fun fd _ acc -> fd :: acc) conns [] in
       let fds =
         match mfd with
         | Some fd -> fd :: Hashtbl.fold (fun fd _ acc -> fd :: acc) http_conns fds
         | None -> fds
       in
       let readable, _, _ =
         try Unix.select fds [] [] poll
         with Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
       in
       List.iter
         (fun fd ->
           if fd = lfd then (
             match Unix.accept lfd with
             | cfd, _ ->
                 let id = Engine.open_conn engine ~now:(now ()) in
                 Hashtbl.replace conns cfd id
             | exception Unix.Unix_error (Unix.EINTR, _, _) -> ())
           else if Some fd = mfd then (
             match Unix.accept fd with
             | cfd, _ ->
                 Hashtbl.replace http_conns cfd (Buffer.create 256, now ())
             | exception Unix.Unix_error (Unix.EINTR, _, _) -> ())
           else if Hashtbl.mem http_conns fd then read_http fd
           else read_conn fd)
         readable;
       expire_http (now ());
       Engine.step engine ~now:(now ());
       List.iter flush_conn (Hashtbl.fold (fun fd _ acc -> fd :: acc) conns []);
       if Engine.drained engine || should_stop () then running := false
     done
   with e ->
     close_all ();
     raise e);
  (* Final flush: the drain answers are already in the buffers. *)
  List.iter flush_conn (Hashtbl.fold (fun fd _ acc -> fd :: acc) conns []);
  close_all ();
  (match bound with
  | Unix_path p -> ( try Unix.unlink p with Unix.Unix_error _ -> ())
  | Tcp _ -> ())
