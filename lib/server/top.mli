(** The [secpol top] dashboard: sessions × (rps, p50/p99, sheds, breaker).

    Pure rendering over {!Secpol_trace.Metrics.snapshot} values, so the
    deterministic tests drive it from replayed JSONL frames; the live
    mode drives the same renderer from {!scrape}d [/metrics] text.

    Interval rates come from {!Secpol_trace.Metrics.diff} between the
    previous and current frame; percentiles are read off the log2
    latency histograms by a cumulative bucket walk (the reported value
    is the bucket's inclusive upper bound — same resolution the
    histogram stores). *)

module Metrics = Secpol_trace.Metrics

val sessions_of : Metrics.snapshot -> string list
(** Session names mentioned by [server/session/<name>/...] series, in
    first-appearance order. *)

val percentile : Metrics.summary -> float -> int
(** [percentile s q] for [0 < q <= 1]: smallest occupied-bucket upper
    bound covering [ceil (q * n)] samples; [0] when the histogram is
    empty. *)

val render : ?prev:Metrics.snapshot -> ?interval:float -> Metrics.snapshot -> string
(** The dashboard frame: a totals header (requests, granted, sheds,
    queue, conns, breakers) and one table row per session. With [prev],
    rps is the request delta over [interval] seconds (default [1.]);
    without it the rps column shows the cumulative total instead. *)

val frames_of_jsonl : string -> (Metrics.snapshot list, string) result
(** One JSON snapshot ({!Metrics.snapshot_of_json}) per non-empty line —
    the replay format for deterministic tests and [secpol top --from]. *)

val scrape : Daemon.address -> path:string -> (string, string) result
(** One HTTP/1.0 GET against a daemon's metrics address; returns the
    body on a 200, [Error] on connection failure or any other status. *)

val scrape_snapshot : Daemon.address -> (Metrics.snapshot, string) result
(** [scrape]s [/metrics] and parses it with {!Secpol_trace.Expo.parse}. *)
