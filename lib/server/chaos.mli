(** The server chaos sweep: seeded client misbehaviour and process death
    against the enforcement service, with a zero-fail-open gate.

    One task per (corpus entry, policy); per task one fault-free plan plus
    [seeds] generated {!Secpol_fault.Server_plan}s. Each plan boots a
    fresh {!Engine} on a memory {!Store} with a small admission queue and
    a virtual clock, opens a session, and drives the scripted requests:

    - {e clean} requests must be answered bit-identically to the guarded
      single enforcer (the same Guard-over-Dynamic layers a local
      {!Secpol_secpol.Run} composes);
    - {e disconnects} abandon a half-written frame — the server carries
      on;
    - {e slowloris} frames stall past the frame deadline and must be
      refused;
    - {e malformed} frames (bad magic, bad CRC, truncation, foreign wire
      version, garbage) must be refused — decode errors cost the sender
      its connection, nothing else;
    - {e kills} strike mid-request; the engine is rebuilt on the same
      store and the client asks {!Wire.Resume} — a journaled run must
      come back bit-identical, an unjournaled one as [Λ/recovery];
    - {e bursts} push more requests than the queue holds — every one must
      be answered, the clean verdict or [Λ/overload];
    - the plan ends in a {!Wire.Drain} and every tracked request must
      have been answered.

    Fail-open is: a grant differing from the clean monitor, a reply
    outside [E ∪ F] ([Hung]/[Failed] or a denial whose notice is not in
    [F]), or an accepted request never answered. The sweep also fails on
    clean-path divergence and on missed refusals. Deterministic per seed;
    the report is byte-identical at any [jobs]. *)

module Dynamic = Secpol_taint.Dynamic
module Metrics = Secpol_trace.Metrics
module Sink = Secpol_trace.Sink
module Pool = Secpol_engine.Pool
module Paper = Secpol_corpus.Paper_programs
module Json = Secpol_staticflow.Lint.Json

type totals = {
  plans : int;
  requests : int;  (** tracked enforce requests sent *)
  grants : int;  (** grants, all bit-identical to the clean monitor *)
  monitor_denials : int;
  overload_denials : int;  (** [Λ/overload] — shed, expired, drained *)
  recovery_denials : int;  (** [Λ/recovery] — unrecoverable after a kill *)
  fault_denials : int;  (** [Λ/degraded] *)
  fail_open : int;
  clean_mismatch : int;
  unanswered : int;
  proto_refusals : int;  (** connections refused (expected under faults) *)
  proto_misses : int;  (** a fault the server should have refused but didn't *)
  disconnects : int;
  slowloris : int;
  malformed : int;
  kills : int;
  kill_survivals : int;  (** armed kills the run completed ahead of *)
  restarts : int;
  resumes : int;
  burst_requests : int;
}

type finding = {
  entry : string;
  policy : string;
  seed : int;
  input : string;
  detail : string;
}

type report = {
  base_seed : int;
  seeds : int;
  mode : Dynamic.mode;
  totals : totals;
  metrics : Metrics.t;
  findings : finding list;
  ok : bool;
  pool : Pool.stats;
}

val run :
  ?entries:Paper.entry list ->
  ?mode:Dynamic.mode ->
  ?seeds:int ->
  ?base_seed:int ->
  ?inputs_per_case:int ->
  ?sink:Sink.t ->
  ?jobs:int ->
  unit ->
  report
(** Defaults: the whole corpus, surveillance mode, 30 seeds from 0, 3
    inputs per case, 1 job — 1178 plans over 38 (entry, policy) tasks. *)

val pp : Format.formatter -> report -> unit
val to_json : report -> Json.value
val to_json_string : report -> string
