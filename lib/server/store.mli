(** Durable state of the enforcement service: journal media plus small
    blobs, keyed by name, surviving engine restarts.

    A {!Secpol_journal.Media.t} is one run's journal; the service owns
    many (one per journaled request) plus small metadata blobs (session
    manifests). The store is the indirection that makes crash-restart
    testable in-process: the chaos sweep holds the {!memory} store across
    an engine "kill", builds a fresh engine on it, and recovery finds
    exactly the bytes the dead engine had committed — the same idiom the
    crash sweep uses with preloaded memory media. The {!dir} backend maps
    keys to subdirectories/files under a root for the real daemon. *)

type t

val memory : unit -> t

val dir : string -> t
(** Directory-backed; the root is created if missing. *)

val media : t -> string -> Secpol_journal.Media.t
(** The journal medium for [key], created empty on first use. The same
    key returns the same underlying bytes across engine restarts (the
    {!memory} backend keeps the medium alive; the {!dir} backend reopens
    the subdirectory). *)

val has_media : t -> string -> bool

val put : t -> string -> string -> unit
(** Durably store a blob at [key] (atomic replace). *)

val get : t -> string -> string option

val keys : t -> prefix:string -> string list
(** All blob and media keys with the prefix, sorted. *)

val subkey : string list -> string
(** Join key components; components must not contain ['/']. *)
