module Mechanism = Secpol_core.Mechanism

exception Protocol_error of string

type t = { fd : Unix.file_descr; stream : Wire.Stream.t; buf : Bytes.t }

let proto fmt = Printf.ksprintf (fun m -> raise (Protocol_error m)) fmt

let sockaddr_of = function
  | Daemon.Unix_path path -> (Unix.PF_UNIX, Unix.ADDR_UNIX path)
  | Daemon.Tcp (host, port) ->
      let addr =
        try Unix.inet_addr_of_string host
        with Failure _ -> (
          try (Unix.gethostbyname host).Unix.h_addr_list.(0)
          with Not_found -> proto "unknown host %S" host)
      in
      (Unix.PF_INET, Unix.ADDR_INET (addr, port))

let connect ?(retries = 0) ?(retry_delay = 0.1) address =
  let domain, addr = sockaddr_of address in
  let rec attempt left =
    let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
    match Unix.connect fd addr with
    | () -> fd
    | exception
        Unix.Unix_error ((Unix.ECONNREFUSED | Unix.ENOENT), _, _) when left > 0
      ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        (try ignore (Unix.select [] [] [] retry_delay) with _ -> ());
        attempt (left - 1)
    | exception e ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        raise e
  in
  let fd = attempt retries in
  { fd; stream = Wire.Stream.create (); buf = Bytes.create 65536 }

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

let post t req =
  let s = Wire.encode_request req in
  let rec write_all off len =
    if len > 0 then begin
      let n = Unix.write_substring t.fd s off len in
      write_all (off + n) (len - n)
    end
  in
  try write_all 0 (String.length s)
  with Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) ->
    proto "connection closed while sending %s" (Wire.request_name req)

let rec next_response t =
  match Wire.Stream.next t.stream with
  | `Frame payload -> (
      match Wire.decode_response payload with
      | Ok r -> r
      | Error e -> proto "bad response frame: %s" (Wire.Codec.error_message e))
  | `Corrupt e -> proto "corrupt response stream: %s" (Wire.Codec.error_message e)
  | `Await -> (
      match Unix.read t.fd t.buf 0 (Bytes.length t.buf) with
      | 0 -> proto "connection closed by server"
      | n ->
          Wire.Stream.feed t.stream ~now:0. (Bytes.sub_string t.buf 0 n);
          next_response t
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> next_response t
      | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
          proto "connection reset by server")

let request t req = post t req; next_response t

let refused code detail = Error (Printf.sprintf "%s: %s" code detail)

let hello t ~client =
  match request t (Wire.Hello { client }) with
  | Wire.Welcome { server } -> Ok server
  | Wire.Refused { code; detail } -> refused code detail
  | r -> proto "expected welcome, got %s" (Wire.response_name r)

let open_session t spec =
  match request t (Wire.Open_session spec) with
  | Wire.Session_opened _ -> Ok ()
  | Wire.Refused { code; detail } -> refused code detail
  | r -> proto "expected session-opened, got %s" (Wire.response_name r)

(* Replies are matched by (session, request_id): the service pipelines,
   and a shed reply can overtake an admitted one. Interleaved responses
   for other ids would mean the caller mixed blocking calls with [post]
   pipelining — refuse loudly instead of misattributing a verdict. *)
let await_reply t ~session ~request_id =
  match next_response t with
  | Wire.Reply { session = s; request_id = id; reply }
    when s = session && id = request_id ->
      Ok reply
  | Wire.Reply { request_id = id; _ } ->
      proto "reply for request %d while waiting for %d" id request_id
  | Wire.Refused { code; detail } -> refused code detail
  | r -> proto "expected reply, got %s" (Wire.response_name r)

let enforce t ?(deadline_us = -1) ~session ~request_id ~program inputs =
  post t
    (Wire.Enforce { Wire.session; request_id; program; inputs; deadline_us });
  await_reply t ~session ~request_id

let resume t ~session ~request_id =
  post t (Wire.Resume { session; request_id });
  await_reply t ~session ~request_id

let stats t =
  match request t Wire.Stats with
  | Wire.Stats_reply { body } -> Ok body
  | Wire.Refused { code; detail } -> refused code detail
  | r -> proto "expected stats-reply, got %s" (Wire.response_name r)

let drain t =
  match request t Wire.Drain with
  | Wire.Draining { outstanding } -> Ok outstanding
  | Wire.Refused { code; detail } -> refused code detail
  | r -> proto "expected draining, got %s" (Wire.response_name r)
