(** Named enforcement sessions and their durable manifests.

    A session is the unit of client configuration: an [allow(J)] policy,
    a monitor mode, a fuel budget, a guard retry budget, and whether runs
    are journaled. Its manifest is persisted in the {!Store} (encoded
    with the {!Wire} codec itself) so a restarted server rebuilds every
    session before any client reconnects; its journaled runs live under
    the session's key prefix, one medium per request id — which also
    makes retried requests idempotent: the journal re-delivers the same
    verdict instead of re-executing.

    The session also carries the per-session circuit breaker: after
    [threshold] {e consecutive} degraded outcomes (the guard exhausting
    its retries — infrastructure failure, not policy denials) the breaker
    opens for [cooldown] seconds and every request is shed with
    [Λ/overload] without touching the faulty monitor; the first request
    after the cooldown is the half-open probe that closes it again or
    re-opens it. *)

type t = {
  spec : Wire.open_session;
  mutable consecutive_degraded : int;
  mutable open_until : float;  (** breaker open until this instant; [0.] = closed *)
  cache : Secpol_engine.Cache.t;
      (** cross-request verdict cache, keyed on the sound
          {!Secpol_engine.Memo} I-projection; bounded to
          {!cache_capacity} verdicts (LRU) because wire inputs choose
          the keys; dies with the session *)
}

val cache_capacity : int
(** Verdicts a session retains at most ([4096]); beyond it the least
    recently used is evicted and a repeat recomputes. *)

val create : Wire.open_session -> t

val name : t -> string

val policy : t -> Secpol_core.Policy.t

val guard_config : t -> Secpol_fault.Guard.config
(** {!Secpol_fault.Guard.default} with the session's retry budget. *)

val spec_equal : Wire.open_session -> Wire.open_session -> bool

val valid_name : string -> bool
(** Safe as a store key component: nonempty, no ['/']. *)

(** {1 Store layout} *)

val manifest_prefix : string
(** All manifests live under this key prefix. *)

val manifest_key : string -> string

val media_key : session:string -> request_id:int -> string
(** The journal medium of one request. *)

val media_prefix : session:string -> string

val save : Store.t -> t -> unit

val load_all : Store.t -> t list
(** Rebuild every session whose manifest decodes, sorted by name.
    Undecodable manifests are skipped (the sessions they described
    degrade to [Λ/recovery] when resumed — fail-secure, not fail-stop). *)

(** {1 Circuit breaker} *)

val breaker_open : t -> now:float -> bool

val record_outcome :
  t -> now:float -> threshold:int -> cooldown:float -> degraded:bool -> unit
(** A degraded outcome counts toward the trip threshold and (re)opens the
    breaker once reached; any other outcome closes it and resets the
    count. *)
