(** The enforcement service engine: sessions, admission, execution.

    Transport-agnostic and clock-explicit: connections are integer ids,
    bytes go in through {!feed} and come out through {!output}, and every
    entry point takes [~now] — the daemon passes a monotonic wall clock,
    the chaos sweep and the QCheck properties pass a virtual clock and
    replay overloads, slowloris stalls and deadline expiries
    deterministically.

    Fail-secure contract: every admitted enforce request is eventually
    answered with the monitor's own verdict or with a violation notice in
    [F] — [Λ/overload] for shed, expired and drain-refused requests,
    [Λ/recovery] for unobservable crashed runs — never with silence and
    never with a grant the clean monitor would not issue. Malformed,
    foreign-version and slow-written frames cost the sender its
    connection ({!Wire.Refused}, then close), never the server.

    Crash-restart: {!create} on a non-empty {!Store.t} first rebuilds
    every session from its manifest, then re-runs recovery
    ({!Secpol_journal.Runner.resume}) over every journaled request
    medium, so interrupted runs complete (or degrade to [Λ/recovery])
    before the first reconnecting client asks via {!Wire.Resume}. *)

module Sink = Secpol_trace.Sink
module Metrics = Secpol_trace.Metrics
module Hook = Secpol_flowgraph.Hook

exception Died
(** Raised out of {!step} when a scripted kill strikes mid-request — the
    in-process stand-in for process death. The engine must be discarded;
    build a new one on the same store to model the restart. *)

type config = {
  server_name : string;
  capacity : int;  (** admission queue bound *)
  shed_seed : int;  (** seeds the shedding tie-break draw *)
  default_deadline_us : int;  (** for requests with a negative deadline *)
  frame_deadline : float;  (** seconds a partial frame may stall (slowloris) *)
  exec_budget : int;  (** queue entries executed per {!step} *)
  jobs : int;  (** domains for batch execution (1 = sequential) *)
  breaker_threshold : int;  (** consecutive degraded outcomes that trip it *)
  breaker_cooldown : float;  (** seconds the breaker stays open *)
  snapshot_every : int;  (** journal snapshot cadence for journaled runs *)
  session_cache : bool;
      (** cross-request verdict caching in unjournaled sessions: keyed on
          the sound {!Secpol_engine.Memo} I-projection when the session's
          mechanism proves timed-view sound over the program's corpus
          space {e and} the request's inputs lie inside that space (the
          proof quantifies over nothing else), on the full input vector
          otherwise — either way a hit replays a bit-identical earlier
          verdict. Default [true]. *)
  ikey_space_limit : int;
      (** largest corpus-space size the engine will exhaustively prove
          timed-view soundness over on the serving loop (once per
          session x program); bigger or unsized spaces skip the proof and
          key on exact inputs, so a huge space can never stall the select
          loop. Default 4096. *)
  hook : Hook.t;  (** interpreter fault hook (tests and chaos only) *)
}

val default_config : config

type t

val create :
  ?config:config -> ?sink:Sink.t -> ?metrics:Metrics.t -> store:Store.t -> now:float -> unit -> t

val config : t -> config
val metrics : t -> Metrics.t
val stats_json : t -> string

(** {1 Health}

    The /healthz truth: [ok] iff the service is accepting and serving
    (not draining, breakers not saturated). Recovery refusals left over
    from a crash-restart are reported — every affected request is already
    answered fail-secure with [Λ/recovery], so they mark [status], not
    [ok]. *)

type health = {
  ok : bool;
  status : string;
      (** ["ok"] | ["recovery-refusals"] | ["breakers-saturated"] |
          ["draining"] | ["drained"] *)
  draining : bool;
  drained : bool;
  queue : int;
  capacity : int;
  sessions : int;
  conns : int;
  breakers_open : int;
  recovery_refusals : int;
}

val health : t -> now:float -> health
val health_json : health -> string

val open_conn : t -> now:float -> int

val feed : t -> conn:int -> now:float -> string -> unit
(** Bytes received from the client; parsed at the next {!step}. *)

val close_conn : t -> conn:int -> unit
(** Client hung up. Queued requests from the connection still execute
    (their journals complete) — only the reply bytes are dropped. *)

val step : t -> now:float -> unit
(** One scheduling round: parse frames on every live connection (id
    order), dispatch messages, expire slow writers, then execute up to
    [exec_budget] queued requests — through the engine pool when
    [jobs > 1].
    @raise Died if a scripted kill struck. *)

val output : t -> conn:int -> string
(** Drain the connection's pending output bytes. *)

val conn_closing : t -> conn:int -> bool
(** The engine refused the connection (protocol error or slowloris):
    flush {!output}, then close the transport. *)

val conn_alive : t -> conn:int -> bool

val drain : t -> now:float -> unit
(** Enter drain: refuse new requests (they are answered [Λ/overload]),
    keep executing the queue. Same as receiving {!Wire.Drain}. *)

val draining : t -> bool

val drained : t -> bool
(** Draining and the queue is empty — safe to stop. *)

val queue_length : t -> int

val session_names : t -> string list

val kill_next : t -> at_box:int -> unit
(** Script the next executed request to die mid-run: a journaled run is
    killed after [at_box] journaled boxes ({!Secpol_journal.Runner.run}'s
    [kill_at]), an unjournaled run dies before leaving any trace. *)
