module Codec = Secpol_journal.Codec
module Frame = Secpol_journal.Frame
module Mechanism = Secpol_core.Mechanism
module Iset = Secpol_core.Iset
module Dynamic = Secpol_taint.Dynamic

let version = 1

let overload_notice = Secpol_core.Notice.(to_string Overload)

let default_deadline_us = 1_000_000

type open_session = {
  session : string;
  allowed : Iset.t;
  mode : Dynamic.mode;
  fuel : int;
  guard_retries : int;
  journaled : bool;
}

type enforce = {
  session : string;
  request_id : int;
  program : string;
  inputs : Secpol_core.Value.t array;
  deadline_us : int;
}

type request =
  | Hello of { client : string }
  | Open_session of open_session
  | Enforce of enforce
  | Resume of { session : string; request_id : int }
  | Stats
  | Drain

type response =
  | Welcome of { server : string }
  | Session_opened of { session : string }
  | Reply of { session : string; request_id : int; reply : Mechanism.reply }
  | Stats_reply of { body : string }
  | Draining of { outstanding : int }
  | Refused of { code : string; detail : string }

let malformed fmt = Printf.ksprintf (fun m -> raise (Codec.Error (Codec.Malformed m))) fmt

(* ---------- scalar codecs ---------- *)

let write_mode w m =
  Codec.W.int w
    (match m with
    | Dynamic.High_water -> 0
    | Dynamic.Surveillance -> 1
    | Dynamic.Scoped -> 2
    | Dynamic.Timed -> 3)

let read_mode r =
  match Codec.R.int r with
  | 0 -> Dynamic.High_water
  | 1 -> Dynamic.Surveillance
  | 2 -> Dynamic.Scoped
  | 3 -> Dynamic.Timed
  | n -> malformed "bad mode tag %d" n

let write_iset w s = Codec.W.int_array w (Array.of_list (Iset.to_list s))

let read_iset r =
  let a = Codec.R.int_array r in
  Array.iter
    (fun i ->
      if i < 0 || i >= Iset.max_index then malformed "input index %d out of range" i)
    a;
  Iset.of_list (Array.to_list a)

let write_inputs w a =
  Codec.W.int w (Array.length a);
  Array.iter (Codec.write_value w) a

let read_inputs r =
  let n = Codec.R.int r in
  if n < 0 || n > Codec.R.remaining r then malformed "bad input count %d" n;
  Array.init n (fun _ -> Codec.read_value r)

let write_reply w (rep : Mechanism.reply) =
  (match rep.Mechanism.response with
  | Mechanism.Granted v ->
      Codec.W.int w 0;
      Codec.write_value w v
  | Mechanism.Denied n ->
      Codec.W.int w 1;
      Codec.W.string w n
  | Mechanism.Hung -> Codec.W.int w 2
  | Mechanism.Failed m ->
      Codec.W.int w 3;
      Codec.W.string w m);
  Codec.W.int w rep.Mechanism.steps

let read_reply r =
  let response =
    match Codec.R.int r with
    | 0 -> Mechanism.Granted (Codec.read_value r)
    | 1 -> Mechanism.Denied (Codec.R.string r)
    | 2 -> Mechanism.Hung
    | 3 -> Mechanism.Failed (Codec.R.string r)
    | n -> malformed "bad response tag %d" n
  in
  { Mechanism.response; steps = Codec.R.int r }

(* ---------- messages ---------- *)

let write_header w tag =
  Codec.write_version ~version w;
  Codec.W.int w tag

let encode_request req =
  let w = Codec.W.create () in
  (match req with
  | Hello { client } ->
      write_header w 0;
      Codec.W.string w client
  | Open_session { session; allowed; mode; fuel; guard_retries; journaled } ->
      write_header w 1;
      Codec.W.string w session;
      write_iset w allowed;
      write_mode w mode;
      Codec.W.int w fuel;
      Codec.W.int w guard_retries;
      Codec.W.bool w journaled
  | Enforce { session; request_id; program; inputs; deadline_us } ->
      write_header w 2;
      Codec.W.string w session;
      Codec.W.int w request_id;
      Codec.W.string w program;
      write_inputs w inputs;
      Codec.W.int w deadline_us
  | Resume { session; request_id } ->
      write_header w 3;
      Codec.W.string w session;
      Codec.W.int w request_id
  | Stats -> write_header w 4
  | Drain -> write_header w 5);
  Frame.frame (Codec.W.contents w)

let encode_response resp =
  let w = Codec.W.create () in
  (match resp with
  | Welcome { server } ->
      write_header w 0;
      Codec.W.string w server
  | Session_opened { session } ->
      write_header w 1;
      Codec.W.string w session
  | Reply { session; request_id; reply } ->
      write_header w 2;
      Codec.W.string w session;
      Codec.W.int w request_id;
      write_reply w reply
  | Stats_reply { body } ->
      write_header w 3;
      Codec.W.string w body
  | Draining { outstanding } ->
      write_header w 4;
      Codec.W.int w outstanding
  | Refused { code; detail } ->
      write_header w 5;
      Codec.W.string w code;
      Codec.W.string w detail);
  Frame.frame (Codec.W.contents w)

let read_version r =
  let got = Codec.R.int r in
  if got <> version then raise (Codec.Error (Codec.Bad_version { got; want = version }))

let finish r v =
  if not (Codec.R.eof r) then malformed "trailing bytes after message";
  v

let decode_request payload =
  Codec.guard (fun () ->
      let r = Codec.R.of_string payload in
      read_version r;
      match Codec.R.int r with
      | 0 ->
          let client = Codec.R.string r in
          finish r (Hello { client })
      | 1 ->
          let session = Codec.R.string r in
          let allowed = read_iset r in
          let mode = read_mode r in
          let fuel = Codec.R.int r in
          let guard_retries = Codec.R.int r in
          let journaled = Codec.R.bool r in
          if fuel < 1 then malformed "bad fuel %d" fuel;
          if guard_retries < 0 then malformed "bad retries %d" guard_retries;
          finish r
            (Open_session { session; allowed; mode; fuel; guard_retries; journaled })
      | 2 ->
          let session = Codec.R.string r in
          let request_id = Codec.R.int r in
          let program = Codec.R.string r in
          let inputs = read_inputs r in
          let deadline_us = Codec.R.int r in
          if request_id < 0 then malformed "bad request id %d" request_id;
          finish r (Enforce { session; request_id; program; inputs; deadline_us })
      | 3 ->
          let session = Codec.R.string r in
          let request_id = Codec.R.int r in
          finish r (Resume { session; request_id })
      | 4 -> finish r Stats
      | 5 -> finish r Drain
      | n -> malformed "bad request tag %d" n)

let decode_response payload =
  Codec.guard (fun () ->
      let r = Codec.R.of_string payload in
      read_version r;
      match Codec.R.int r with
      | 0 ->
          let server = Codec.R.string r in
          finish r (Welcome { server })
      | 1 ->
          let session = Codec.R.string r in
          finish r (Session_opened { session })
      | 2 ->
          let session = Codec.R.string r in
          let request_id = Codec.R.int r in
          let reply = read_reply r in
          finish r (Reply { session; request_id; reply })
      | 3 ->
          let body = Codec.R.string r in
          finish r (Stats_reply { body })
      | 4 ->
          let outstanding = Codec.R.int r in
          finish r (Draining { outstanding })
      | 5 ->
          let code = Codec.R.string r in
          let detail = Codec.R.string r in
          finish r (Refused { code; detail })
      | n -> malformed "bad response tag %d" n)

let request_name = function
  | Hello _ -> "hello"
  | Open_session _ -> "open-session"
  | Enforce _ -> "enforce"
  | Resume _ -> "resume"
  | Stats -> "stats"
  | Drain -> "drain"

let response_name = function
  | Welcome _ -> "welcome"
  | Session_opened _ -> "session-opened"
  | Reply _ -> "reply"
  | Stats_reply _ -> "stats-reply"
  | Draining _ -> "draining"
  | Refused _ -> "refused"

(* ---------- incremental frame assembly ---------- *)

module Stream = struct
  type t = {
    mutable buf : Buffer.t;
    mutable since : float option;  (* arrival time of the oldest unparsed byte *)
  }

  let create () = { buf = Buffer.create 256; since = None }

  let feed t ~now s =
    if String.length s > 0 then begin
      if Buffer.length t.buf = 0 then t.since <- Some now;
      Buffer.add_string t.buf s
    end

  let u32_max = 0xFFFFFFFF

  let get_u32 s pos = Int32.to_int (String.get_int32_le s pos) land u32_max

  let drop t n keep_since =
    let s = Buffer.contents t.buf in
    let rest = String.sub s n (String.length s - n) in
    Buffer.clear t.buf;
    Buffer.add_string t.buf rest;
    if String.length rest = 0 then t.since <- None
    else t.since <- keep_since

  let next t =
    let s = Buffer.contents t.buf in
    let n = String.length s in
    if n = 0 then `Await
    else if n < Frame.header_size then
      let m = min n (String.length Frame.magic) in
      if String.sub s 0 m <> String.sub Frame.magic 0 m then
        `Corrupt (Codec.Bad_magic { got = String.sub s 0 m; want = Frame.magic })
      else `Await
    else
      let m = String.sub s 0 (String.length Frame.magic) in
      if m <> Frame.magic then `Corrupt (Codec.Bad_magic { got = m; want = Frame.magic })
      else
        let len = get_u32 s 2 in
        let total = Frame.header_size + len in
        if n < total then `Await
        else
          let crc = get_u32 s 6 in
          let payload = String.sub s Frame.header_size len in
          if Codec.crc32 payload <> crc then `Corrupt (Codec.Bad_checksum { at = 0 })
          else begin
            drop t total t.since;
            `Frame payload
          end

  let stalled_since t = t.since

  let pending_bytes t = Buffer.length t.buf
end
