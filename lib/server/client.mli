(** Blocking client for the enforcement service.

    One connection, one outstanding request at a time for the typed
    helpers; {!post}/{!next_response} expose the raw pipeline for callers
    that window many requests ({!Loadgen}).

    Transport and protocol failures raise {!Protocol_error}; the
    service's own {!Wire.Refused} answers come back as [Error "code:
    detail"]. Verdicts ({!Wire.Reply}) are ordinary [Ok] values — a
    denial is an answer, not an error. *)

module Mechanism = Secpol_core.Mechanism

exception Protocol_error of string

type t

val connect : ?retries:int -> ?retry_delay:float -> Daemon.address -> t
(** [retries] extra attempts on [ECONNREFUSED]/[ENOENT] (a daemon still
    booting), [retry_delay] seconds apart. *)

val close : t -> unit

val hello : t -> client:string -> (string, string) result
(** Returns the server's name. *)

val open_session : t -> Wire.open_session -> (unit, string) result
(** Idempotent for an identical spec; refused for a conflicting one. *)

val enforce :
  t ->
  ?deadline_us:int ->
  session:string ->
  request_id:int ->
  program:string ->
  Secpol_core.Value.t array ->
  (Mechanism.reply, string) result

val resume :
  t -> session:string -> request_id:int -> (Mechanism.reply, string) result
(** The verdict of a journaled run interrupted by a crash — bit-identical
    if the journal recovered, [Denied Λ/recovery] otherwise. *)

val stats : t -> (string, string) result
(** The server's metrics, rendered as JSON. *)

val drain : t -> (int, string) result
(** Ask the server to drain; returns the outstanding queue length. *)

(** {1 Raw pipeline} *)

val post : t -> Wire.request -> unit
val next_response : t -> Wire.response
