module Metrics = Secpol_trace.Metrics
module Expo = Secpol_trace.Expo

type request = { meth : string; target : string }

let request_of_buffer buf =
  match String.index_opt buf '\n' with
  | None -> None
  | Some eol -> (
      let line = String.trim (String.sub buf 0 eol) in
      match String.split_on_char ' ' line with
      | meth :: target :: _ -> Some { meth; target }
      | _ -> Some { meth = ""; target = "" })

let reason = function
  | 200 -> "OK"
  | 400 -> "Bad Request"
  | 404 -> "Not Found"
  | 405 -> "Method Not Allowed"
  | 503 -> "Service Unavailable"
  | _ -> "Unknown"

let response ~status ?(content_type = "text/plain; charset=utf-8") body =
  Printf.sprintf
    "HTTP/1.0 %d %s\r\n\
     Content-Type: %s\r\n\
     Content-Length: %d\r\n\
     Connection: close\r\n\
     \r\n\
     %s"
    status (reason status) content_type (String.length body) body

let handle engine ~now req =
  if req.meth <> "GET" then response ~status:405 "method not allowed\n"
  else
    match req.target with
    | "/metrics" ->
        response ~status:200
          ~content_type:"text/plain; version=0.0.4; charset=utf-8"
          (Expo.render (Metrics.snapshot (Engine.metrics engine)))
    | "/healthz" ->
        let h = Engine.health engine ~now in
        response
          ~status:(if h.Engine.ok then 200 else 503)
          ~content_type:"application/json"
          (Engine.health_json h ^ "\n")
    | _ -> response ~status:404 "not found\n"
