module Policy = Secpol_core.Policy
module Guard = Secpol_fault.Guard
module Frame = Secpol_journal.Frame

type t = {
  spec : Wire.open_session;
  mutable consecutive_degraded : int;
  mutable open_until : float;
  cache : Secpol_engine.Cache.t;
}

(* The wire hands this cache attacker-chosen keys (exact input vectors of
   any arbitrary request), so it must be bounded: LRU keeps the hot
   verdicts, overflow recomputes. *)
let cache_capacity = 4096

let create spec =
  {
    spec;
    consecutive_degraded = 0;
    open_until = 0.;
    cache = Secpol_engine.Cache.create ~capacity:cache_capacity ();
  }

let name t = t.spec.Wire.session

let policy t = Policy.allow_set t.spec.Wire.allowed

let guard_config t =
  { Guard.default with Guard.retries = t.spec.Wire.guard_retries }

let spec_equal (a : Wire.open_session) (b : Wire.open_session) = a = b

let valid_name s = s <> "" && not (String.contains s '/')

let manifest_prefix = "sessions/"

let manifest_key session = Store.subkey [ "sessions"; session; "meta" ]

let media_key ~session ~request_id =
  Store.subkey [ "sessions"; session; Printf.sprintf "req-%d" request_id ]

let media_prefix ~session = Store.subkey [ "sessions"; session ] ^ "/req-"

(* The manifest is the session's own Open_session message, framed by the
   wire codec — one byte layout for the wire and the store. *)
let save store t =
  Store.put store (manifest_key (name t))
    (Wire.encode_request (Wire.Open_session t.spec))

let load_all store =
  let keys = Store.keys store ~prefix:manifest_prefix in
  let sessions =
    List.filter_map
      (fun key ->
        if Filename.basename key <> "meta" then None
        else
          match Store.get store key with
          | None -> None
          | Some data -> (
              match Result.bind (Frame.one data) Wire.decode_request with
              | Ok (Wire.Open_session spec) -> Some (create spec)
              | Ok _ | Error _ -> None))
      keys
  in
  List.sort (fun a b -> compare (name a) (name b)) sessions

let breaker_open t ~now = t.open_until > now

let record_outcome t ~now ~threshold ~cooldown ~degraded =
  if degraded then begin
    t.consecutive_degraded <- t.consecutive_degraded + 1;
    if t.consecutive_degraded >= threshold then t.open_until <- now +. cooldown
  end
  else begin
    t.consecutive_degraded <- 0;
    t.open_until <- 0.
  end
