module Iset = Secpol_core.Iset
module Span = Secpol_flowgraph.Span
module Var = Secpol_flowgraph.Var

type from = [ `Input | `Var of Var.t | `Pc ]

type link = {
  step : int;
  node : int;
  span : Span.t option;
  site : [ `Assign of Var.t | `Pc | `Condemn ];
  taint : Iset.t;
  from : from;
}

type chain = {
  coordinate : int;
  via : [ `Data | `Control ];
  links : link list;
}

type kind = Explicit | Implicit | Timed | Other of string

let notice_prefix = Secpol_core.Notice.prefix (* Λ *)

let kind_name = function
  | Explicit -> notice_prefix ^ "/explicit"
  | Implicit -> notice_prefix ^ "/implicit"
  | Timed -> notice_prefix ^ "/timed"
  | Other n -> n

type explanation = {
  program : string option;
  mode : string option;
  notice : string;
  kind : kind;
  step : int;
  node : int;
  span : Span.t option;
  taint : Iset.t;
  allowed : Iset.t;
  disallowed : Iset.t;
  chains : chain list;
}

(* Replay state: the surveillance value currently bound to each variable,
   the current control-context taint, and — for every (coordinate, carrier)
   pair — the chain of links that carried the coordinate there, most recent
   first. Carriers are variables and the control context itself. *)

type carrier = CV of Var.t | CPc

type replay = {
  taints : (Var.t, Iset.t) Hashtbl.t;
  chains : (int * carrier, link list) Hashtbl.t;
  mutable pc : Iset.t;
}

let fresh_replay () = { taints = Hashtbl.create 32; chains = Hashtbl.create 32; pc = Iset.empty }

(* An input variable is born carrying its own coordinate. *)
let taint_of r v =
  match Hashtbl.find_opt r.taints v with
  | Some l -> l
  | None -> ( match v with Var.Input i -> Iset.singleton i | Var.Reg _ | Var.Out -> Iset.empty)

let chain_of r c carrier =
  match Hashtbl.find_opt r.chains (c, carrier) with Some l -> l | None -> []

(* Where did coordinate [c] come from at a box reading [srcs]? Prefer the
   first source variable already carrying it (inputs sort first), then the
   control context, else it is the coordinate's own input being
   initialized. The lookup must use the PRE-box taint state. *)
let parent_of r c srcs =
  match List.find_opt (fun w -> Iset.mem c (taint_of r w)) srcs with
  | Some w -> (chain_of r c (CV w), `Var w)
  | None -> if Iset.mem c r.pc then (chain_of r c CPc, `Pc) else ([], `Input)

let replay_taint r ~step ~node ~span ~var ~taint ~srcs =
  let old = taint_of r var in
  (* Compute new bindings against the pre-box state before committing any. *)
  let fresh =
    List.filter_map
      (fun c ->
        if Iset.mem c old then None (* coordinate already carried: keep its chain *)
        else
          let parent, from = parent_of r c srcs in
          Some (c, { step; node; span; site = `Assign var; taint; from } :: parent))
      (Iset.to_list taint)
  in
  List.iter (fun (c, links) -> Hashtbl.replace r.chains (c, CV var) links) fresh;
  List.iter
    (fun c -> if not (Iset.mem c taint) then Hashtbl.remove r.chains (c, CV var))
    (Iset.to_list old);
  Hashtbl.replace r.taints var taint

let replay_pc r ~step ~node ~span ~pc ~srcs =
  let old = r.pc in
  let fresh =
    List.filter_map
      (fun c ->
        if Iset.mem c old then None
        else
          let parent, from = parent_of r c srcs in
          Some (c, { step; node; span; site = `Pc; taint = pc; from } :: parent))
      (Iset.to_list pc)
  in
  List.iter (fun (c, links) -> Hashtbl.replace r.chains (c, CPc) links) fresh;
  List.iter
    (fun c -> if not (Iset.mem c pc) then Hashtbl.remove r.chains (c, CPc))
    (Iset.to_list old);
  r.pc <- pc

let control_link l =
  match (l.site, l.from) with
  | `Pc, _ | _, `Pc -> true
  | (`Assign _ | `Condemn), (`Input | `Var _) -> false

let chains_at_condemn r ~step ~node ~span ~taint ~srcs ~disallowed =
  List.map
    (fun c ->
      let parent, from = parent_of r c srcs in
      let final = { step; node; span; site = `Condemn; taint; from } in
      let links = List.rev (final :: parent) in
      let via = if List.exists control_link links then `Control else `Data in
      { coordinate = c; via; links })
    (Iset.to_list disallowed)

let explain ?allowed events =
  let r = ref (fresh_replay ()) in
  let header_program = ref None in
  let header_mode = ref None in
  let header_allowed = ref None in
  let last_box = ref None in
  let condemned = ref None in
  let verdict = ref None in
  List.iter
    (fun (e : Event.t) ->
      match e with
      | Event.Run { program; mode; allowed; _ } ->
          (* A new attempt (guard retries re-run the mechanism): start over. *)
          r := fresh_replay ();
          header_program := Some program;
          header_mode := Some mode;
          header_allowed := Some allowed;
          if !verdict = None then condemned := None
      | Event.Box { step; node; span } -> last_box := Some (step, node, span)
      | Event.Assign _ -> ()
      | Event.Taint { step; node; span; var; taint; srcs } ->
          if !condemned = None then replay_taint !r ~step ~node ~span ~var ~taint ~srcs
      | Event.Pc { step; node; span; pc; srcs } ->
          if !condemned = None then replay_pc !r ~step ~node ~span ~pc ~srcs
      | Event.Condemn { step; node; span; at_decision; taint; srcs; notice } ->
          if !condemned = None then
            condemned := Some (step, node, span, at_decision, taint, srcs, notice)
      | Event.Guard _ | Event.Journal _ | Event.Dist _ | Event.Server _ -> ()
      | Event.Verdict { response; text; steps } ->
          if !verdict = None then verdict := Some (response, text, steps))
    events;
  let allowed =
    match (allowed, !header_allowed) with
    | Some a, _ -> Some a
    | None, h -> h
  in
  match (!condemned, !verdict) with
  | None, None -> Error "trace contains no condemnation and no verdict"
  | None, Some (Event.Granted, text, _) ->
      Error (Printf.sprintf "run was granted (%s): nothing to explain" text)
  | None, Some ((Event.Denied | Event.Hung | Event.Failed), text, steps) ->
      (* Denied without a condemnation: fuel, degradation, injected fault,
         explicit violation halts... — no taint chain to reconstruct. *)
      let step, node, span =
        match !last_box with Some (s, n, sp) -> (s, n, sp) | None -> (steps, -1, None)
      in
      Ok
        {
          program = !header_program;
          mode = !header_mode;
          notice = text;
          kind = Other text;
          step;
          node;
          span;
          taint = Iset.empty;
          allowed = Option.value allowed ~default:Iset.empty;
          disallowed = Iset.empty;
          chains = [];
        }
  | Some (step, node, span, at_decision, taint, srcs, notice), _ -> (
      match allowed with
      | None -> Error "trace has no run header: pass the policy's allowed set explicitly"
      | Some allowed ->
          let srcs_vars = srcs in
          let disallowed = Iset.diff taint allowed in
          let chains =
            chains_at_condemn !r ~step ~node ~span ~taint ~srcs:srcs_vars ~disallowed
          in
          let kind =
            if at_decision then Timed
            else if Iset.is_empty disallowed then Other notice
            else if List.exists (fun ch -> ch.via = `Data) chains then Explicit
            else Implicit
          in
          Ok
            {
              program = !header_program;
              mode = !header_mode;
              notice;
              kind;
              step;
              node;
              span;
              taint;
              allowed;
              disallowed;
              chains;
            })

(* ---------- pretty-printing ---------- *)

let pp_span_opt ppf = function
  | None -> ()
  | Some s -> Format.fprintf ppf " (%a)" Span.pp s

let pp_link ppf (l : link) =
  Format.fprintf ppf "step %-3d box %-3d" l.step l.node;
  (match l.site with
  | `Assign v -> Format.fprintf ppf " %a := \xce\xbb%a" Var.pp v Iset.pp l.taint
  | `Pc -> Format.fprintf ppf " pc \xe2\x86\x90 \xce\xbb%a" Iset.pp l.taint
  | `Condemn -> Format.fprintf ppf " condemned with \xce\xbb%a" Iset.pp l.taint);
  (match l.from with
  | `Input -> ()
  | `Var w -> Format.fprintf ppf "  \xe2\x86\x90 %a" Var.pp w
  | `Pc -> Format.fprintf ppf "  \xe2\x86\x90 pc");
  pp_span_opt ppf l.span

let pp_chain ppf ch =
  Format.fprintf ppf "@[<v 2>coordinate %d (input x%d) reached the condemning box by %s flow:@,"
    ch.coordinate ch.coordinate
    (match ch.via with `Data -> "data" | `Control -> "control");
  Format.fprintf ppf "input x%d" ch.coordinate;
  List.iter (fun l -> Format.fprintf ppf "@,%a" pp_link l) ch.links;
  Format.fprintf ppf "@]"

let pp ppf e =
  Format.fprintf ppf "@[<v>";
  (match e.kind with
  | Other n -> Format.fprintf ppf "verdict: %s \xe2\x80\x94 no surveillance value condemned" n
  | _ ->
      Format.fprintf ppf "verdict: %s \xe2\x80\x94 condemned at box %d, step %d%a"
        (kind_name e.kind) e.node e.step pp_span_opt e.span);
  (match (e.program, e.mode) with
  | Some p, Some m -> Format.fprintf ppf "@,program: %s  mode: %s" p m
  | Some p, None -> Format.fprintf ppf "@,program: %s" p
  | None, Some m -> Format.fprintf ppf "@,mode: %s" m
  | None, None -> ());
  (match e.kind with
  | Other _ -> Format.fprintf ppf "@,notice: %s" e.notice
  | _ ->
      Format.fprintf ppf "@,policy: allow %a; surveillance value %a; disallowed %a"
        Iset.pp e.allowed Iset.pp e.taint Iset.pp e.disallowed);
  List.iter (fun ch -> Format.fprintf ppf "@,@,%a" pp_chain ch) e.chains;
  Format.fprintf ppf "@]"

let to_string e = Format.asprintf "%a" pp e
