(** Prometheus text exposition for [Metrics] snapshots.

    [render] turns a point-in-time {!Metrics.snapshot} into the
    Prometheus text format (version 0.0.4): one family per metric, a
    [# TYPE] line each, counters and gauges as single samples, log2
    histograms as the cumulative [_bucket{le=...}]/[_sum]/[_count]
    convention with the summary bounds as [_min]/[_max] gauge families.

    Family names are [prefix ^ sanitized-name] (characters outside
    [[A-Za-z0-9_:]] become [_]); because sanitization can collide
    ([a-b] and [a_b]) and registry names are richer than metric names,
    every sample carries the exact original name in a [name="..."]
    label, with full label-value escaping. That label is ground truth:
    {!parse} reconstructs the snapshot from it — same names, same
    kinds, same values, same order — so rendering is lossless and the
    round trip is testable by QCheck. *)

val render : ?prefix:string -> Metrics.snapshot -> string
(** [prefix] defaults to ["secpol_"]. Deterministic: snapshot order is
    family order. Ends with a trailing newline when non-empty. *)

val parse : string -> (Metrics.snapshot, string) result
(** Inverse of {!render} on its image; on other input returns [Error]
    with a line-located message rather than raising. *)
