(** Trace sinks: where events go.

    A sink receives {!Event.t} values and either drops them ({!null}),
    accumulates them in memory ({!memory}), or streams them to an output
    channel as JSONL or a Chrome trace-event array ({!stream},
    {!to_file}).

    The bridge to the interpreters is {!emitter}: it wraps a sink as a
    {!Secpol_flowgraph.Emit.t} and decorates events with source spans
    looked up from the graph the run executes. For the null sink the
    bridge returns {!Secpol_flowgraph.Emit.none} itself — physically the
    same value an un-traced run uses — so "tracing to the null sink" is
    not merely cheap but the identical code path, which is what the
    bit-identity test and the [secpol/trace/*] bench group check. *)

module Emit = Secpol_flowgraph.Emit
module Graph = Secpol_flowgraph.Graph

type format = Jsonl | Chrome

type t

val null : t
(** Drops everything. *)

val memory : unit -> t
(** Accumulates events in order; read them back with {!events}. *)

val stream : format -> out_channel -> t
(** Streams each event as it arrives. The channel is not closed by
    {!close} (the caller owns it); Chrome streams are only valid JSON
    after {!close} writes the closing bracket. *)

val to_file : format -> string -> t
(** Opens [path] for writing; {!close} flushes and closes it. *)

val synchronized : t -> t
(** A mutex-guarded view of the sink, safe to share across domains: every
    {!emit}, {!events}, {!count} and {!close} takes the lock. Events from
    concurrent runs interleave in lock-acquisition order — fine for
    telemetry, meaningless as a deterministic transcript; give each task
    its own sink when order matters. [synchronized null == null] (already
    safe), and wrapping twice is a no-op. *)

val emit : t -> Event.t -> unit

val events : t -> Event.t list
(** In-memory events in arrival order; [[]] for other sinks. *)

val count : t -> int
(** Events received so far. *)

val close : t -> unit
(** Finalises the sink: terminates a Chrome array, flushes, and closes
    the channel if the sink owns it. Idempotent; {!emit} after [close]
    is a no-op. *)

val is_null : t -> bool

val emitter : ?graph:Graph.t -> t -> Emit.t
(** An interpreter-side emitter feeding this sink. [graph] supplies
    source spans for box/taint/pc/condemn events (omit it for graphs
    without spans). [emitter null == Emit.none]. *)

val format_of_string : string -> (format, string) result
(** ["jsonl" | "chrome"]. *)

val format_name : format -> string
