(** A small counters/gauges/histograms registry.

    Replaces the ad-hoc mutable tallies that used to live inside
    [Fault.Sweep] and [Fault.Crash]: a registry is a named collection of
    monotone counters, instantaneous gauges and integer histograms,
    rendered uniformly as text or JSON. Names are registered on first
    use and keep their registration order in every rendering, so reports
    stay stable.

    All kinds share one namespace; re-registering a name with another
    kind raises [Invalid_argument]. *)

module Json = Secpol_staticflow.Lint.Json

type t

val create : unit -> t

(** {1 Counters} *)

type counter

val counter : t -> string -> counter
(** Get or create. *)

val incr : ?by:int -> counter -> unit
(** [by] defaults to 1 and must be non-negative. *)

val count : counter -> int

val counter_value : t -> string -> int
(** [0] if the name was never registered. *)

(** {1 Gauges}

    A gauge is the current value of something — queue depth, open
    sessions, breaker state — not a monotone tally. Unlike counters it
    may go down: [add] accepts negative deltas and [set] overwrites. *)

type gauge

val gauge : t -> string -> gauge
(** Get or create (initial value [0]). *)

val set : gauge -> int -> unit
val add : gauge -> int -> unit

val gauge_read : gauge -> int

val gauge_value : t -> string -> int
(** [0] if the name was never registered. *)

(** {1 Histograms} *)

type histogram

val histogram : t -> string -> histogram
(** Get or create. *)

val observe : histogram -> int -> unit
(** Records a non-negative sample into log2 buckets. *)

type summary = {
  n : int;  (** samples observed *)
  sum : int;
  min : int;  (** 0 when [n = 0] *)
  max : int;
  buckets : (int * int) list;
      (** [(upper, count)]: samples [<= upper], one bucket per occupied
          power of two, ascending. *)
}

val summary : histogram -> summary

(** {1 Merging} *)

val merge : into:t -> t -> unit
(** [merge ~into src] folds [src] into [into]: counters and gauges are
    summed (a gauge shard holds its worker's share of the live total),
    histograms are combined (counts, sums, bounds and buckets). Names
    unknown to [into] are registered in [src]'s registration order after
    [into]'s existing names — so merging per-shard registries created by
    the same code into a registry pre-seeded with that code's names keeps
    the sequential rendering order. A registry is single-domain mutable
    state: merge shards after joining their workers, never concurrently.
    @raise Invalid_argument if a name changes kind. *)

(** {1 Rendering} *)

type stat = Counter of int | Gauge of int | Histogram of summary

val stats : t -> (string * stat) list
(** Registration order. *)

val find : t -> string -> stat option

val pp : Format.formatter -> t -> unit

(** {1 Snapshots}

    A snapshot is an immutable point-in-time copy of the whole registry.
    Every exposition (JSON, Prometheus, [secpol top]) renders a snapshot,
    never the live registry, so a scrape cannot observe a torn state. *)

type snapshot = (string * stat) list
(** Registration order, same shape as [stats]. *)

val snapshot : t -> snapshot

val diff : older:snapshot -> snapshot -> snapshot
(** Interval rates: counters and histogram counts/sums/buckets subtract
    (clamped at 0), gauges keep the newer instantaneous value, histogram
    [min]/[max] keep the newer (cumulative) bounds. Names present only in
    the newer snapshot pass through whole; names that changed kind (or
    vanished) keep the newer stat. *)

val snapshot_to_json : snapshot -> Json.value
val snapshot_of_json : Json.value -> (snapshot, string) result
(** Inverse of [snapshot_to_json]: counters are bare ints, gauges
    [{"gauge": int}], histograms the count/sum/min/max/buckets object. *)

val to_json : t -> Json.value
(** [snapshot_to_json (snapshot t)] — [{"name": int, ...}] for counters;
    [{"gauge": int}] for gauges;
    [{"count":_, "sum":_, "min":_, "max":_, "buckets":[[upper,count],...]}]
    for histograms. *)

val to_json_string : t -> string
