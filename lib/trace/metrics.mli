(** A small counters/histograms registry.

    Replaces the ad-hoc mutable tallies that used to live inside
    [Fault.Sweep] and [Fault.Crash]: a registry is a named collection of
    monotone counters and integer histograms, rendered uniformly as text
    or JSON. Names are registered on first use and keep their
    registration order in every rendering, so reports stay stable.

    Counters and histograms share one namespace; re-registering a name
    with the other kind raises [Invalid_argument]. *)

module Json = Secpol_staticflow.Lint.Json

type t

val create : unit -> t

(** {1 Counters} *)

type counter

val counter : t -> string -> counter
(** Get or create. *)

val incr : ?by:int -> counter -> unit
(** [by] defaults to 1 and must be non-negative. *)

val count : counter -> int

val counter_value : t -> string -> int
(** [0] if the name was never registered. *)

(** {1 Histograms} *)

type histogram

val histogram : t -> string -> histogram
(** Get or create. *)

val observe : histogram -> int -> unit
(** Records a non-negative sample into log2 buckets. *)

type summary = {
  n : int;  (** samples observed *)
  sum : int;
  min : int;  (** 0 when [n = 0] *)
  max : int;
  buckets : (int * int) list;
      (** [(upper, count)]: samples [<= upper], one bucket per occupied
          power of two, ascending. *)
}

val summary : histogram -> summary

(** {1 Merging} *)

val merge : into:t -> t -> unit
(** [merge ~into src] folds [src] into [into]: counters are summed,
    histograms are combined (counts, sums, bounds and buckets). Names
    unknown to [into] are registered in [src]'s registration order after
    [into]'s existing names — so merging per-shard registries created by
    the same code into a registry pre-seeded with that code's names keeps
    the sequential rendering order. A registry is single-domain mutable
    state: merge shards after joining their workers, never concurrently.
    @raise Invalid_argument if a name changes kind. *)

(** {1 Rendering} *)

type stat = Counter of int | Histogram of summary

val stats : t -> (string * stat) list
(** Registration order. *)

val find : t -> string -> stat option

val pp : Format.formatter -> t -> unit

val to_json : t -> Json.value
(** [{"name": int, ...}] for counters;
    [{"count":_, "sum":_, "min":_, "max":_, "buckets":[[upper,count],...]}]
    for histograms. *)

val to_json_string : t -> string
