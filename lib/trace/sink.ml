module Emit = Secpol_flowgraph.Emit
module Graph = Secpol_flowgraph.Graph
module Var = Secpol_flowgraph.Var

type format = Jsonl | Chrome

type stream_state = {
  oc : out_channel;
  format : format;
  owns_channel : bool;
  mutable emitted : int;
  mutable closed : bool;
}

type t =
  | Null
  | Memory of { mutable rev_events : Event.t list; mutable n : int }
  | Stream of stream_state
  | Synced of { lock : Mutex.t; inner : t }

let null = Null

let memory () = Memory { rev_events = []; n = 0 }

let stream format oc = Stream { oc; format; owns_channel = false; emitted = 0; closed = false }

let to_file format path =
  let oc = open_out path in
  Stream { oc; format; owns_channel = true; emitted = 0; closed = false }

let locked lock f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let rec emit t e =
  match t with
  | Null -> ()
  | Synced s -> locked s.lock (fun () -> emit s.inner e)
  | Memory m ->
      m.rev_events <- e :: m.rev_events;
      m.n <- m.n + 1
  | Stream s ->
      if not s.closed then (
        (match s.format with
        | Jsonl ->
            output_string s.oc (Event.to_jsonl e);
            output_char s.oc '\n'
        | Chrome ->
            output_string s.oc (if s.emitted = 0 then "[\n  " else ",\n  ");
            output_string s.oc
              (Secpol_staticflow.Lint.Json.render (Event.to_chrome e)));
        s.emitted <- s.emitted + 1)

let rec events = function
  | Null | Stream _ -> []
  | Synced s -> locked s.lock (fun () -> events s.inner)
  | Memory m -> List.rev m.rev_events

let rec count = function
  | Null -> 0
  | Synced s -> locked s.lock (fun () -> count s.inner)
  | Memory m -> m.n
  | Stream s -> s.emitted

let rec close = function
  | Null | Memory _ -> ()
  | Synced s -> locked s.lock (fun () -> close s.inner)
  | Stream s ->
      if not s.closed then (
        s.closed <- true;
        (match s.format with
        | Jsonl -> ()
        | Chrome -> output_string s.oc (if s.emitted = 0 then "[]\n" else "\n]\n"));
        if s.owns_channel then close_out s.oc else flush s.oc)

let rec is_null = function
  | Null -> true
  | Synced s -> is_null s.inner
  | Memory _ | Stream _ -> false

let synchronized t =
  if is_null t then t
  else
    match t with
    | Synced _ -> t
    | t -> Synced { lock = Mutex.create (); inner = t }

let emitter ?graph t =
  match t with
  | Null -> Emit.none
  | Synced _ | Memory _ | Stream _ ->
      let span node =
        match graph with None -> None | Some g -> Graph.span g node
      in
      Emit.Sink
        {
          Emit.box = (fun ~step ~node -> emit t (Event.Box { step; node; span = span node }));
          assign =
            (fun ~step ~node ~var ~value -> emit t (Event.Assign { step; node; var; value }));
          taint =
            (fun ~step ~node ~var ~taint ~srcs ->
              emit t
                (Event.Taint
                   { step; node; span = span node; var; taint; srcs = Var.Set.elements srcs }));
          pc =
            (fun ~step ~node ~pc ~srcs ->
              emit t
                (Event.Pc { step; node; span = span node; pc; srcs = Var.Set.elements srcs }));
          condemn =
            (fun ~step ~node ~at_decision ~taint ~srcs ~notice ->
              emit t
                (Event.Condemn
                   {
                     step;
                     node;
                     span = span node;
                     at_decision;
                     taint;
                     srcs = Var.Set.elements srcs;
                     notice;
                   }));
        }

let format_of_string = function
  | "jsonl" -> Ok Jsonl
  | "chrome" -> Ok Chrome
  | s -> Error (Printf.sprintf "unknown trace format %S (expected jsonl or chrome)" s)

let format_name = function Jsonl -> "jsonl" | Chrome -> "chrome"
