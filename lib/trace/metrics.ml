module Json = Secpol_staticflow.Lint.Json

type counter = { mutable c : int }

type hist = {
  mutable n : int;
  mutable sum : int;
  mutable min : int;
  mutable max : int;
  bucket_counts : int array;  (* index b counts samples with 2^b <= s < 2^(b+1); index 0 also holds 0 *)
}

type entry = C of counter | H of hist

type t = {
  tbl : (string, entry) Hashtbl.t;
  mutable rev_order : string list;
}

type histogram = hist

let create () = { tbl = Hashtbl.create 16; rev_order = [] }

let register t name entry =
  Hashtbl.add t.tbl name entry;
  t.rev_order <- name :: t.rev_order

let counter t name =
  match Hashtbl.find_opt t.tbl name with
  | Some (C c) -> c
  | Some (H _) -> invalid_arg (Printf.sprintf "Metrics.counter: %S is a histogram" name)
  | None ->
      let c = { c = 0 } in
      register t name (C c);
      c

let incr ?(by = 1) c =
  if by < 0 then invalid_arg "Metrics.incr: negative increment";
  c.c <- c.c + by

let count c = c.c

let counter_value t name =
  match Hashtbl.find_opt t.tbl name with
  | Some (C c) -> c.c
  | Some (H _) | None -> 0

let hist_buckets = 62

let histogram t name =
  match Hashtbl.find_opt t.tbl name with
  | Some (H h) -> h
  | Some (C _) -> invalid_arg (Printf.sprintf "Metrics.histogram: %S is a counter" name)
  | None ->
      let h =
        { n = 0; sum = 0; min = 0; max = 0; bucket_counts = Array.make hist_buckets 0 }
      in
      register t name (H h);
      h

let bucket_of sample =
  let rec go b v = if v <= 1 then b else go (b + 1) (v lsr 1) in
  go 0 sample

let observe h sample =
  if sample < 0 then invalid_arg "Metrics.observe: negative sample";
  if h.n = 0 then (
    h.min <- sample;
    h.max <- sample)
  else (
    if sample < h.min then h.min <- sample;
    if sample > h.max then h.max <- sample);
  h.n <- h.n + 1;
  h.sum <- h.sum + sample;
  let b = bucket_of sample in
  h.bucket_counts.(b) <- h.bucket_counts.(b) + 1

type summary = {
  n : int;
  sum : int;
  min : int;
  max : int;
  buckets : (int * int) list;
}

let summary h =
  let buckets = ref [] in
  for b = hist_buckets - 1 downto 0 do
    if h.bucket_counts.(b) > 0 then
      let upper = if b >= 62 then max_int else (1 lsl (b + 1)) - 1 in
      buckets := (upper, h.bucket_counts.(b)) :: !buckets
  done;
  { n = h.n; sum = h.sum; min = h.min; max = h.max; buckets = !buckets }

let merge_hist ~(into : hist) (src : hist) =
  if src.n > 0 then begin
    if into.n = 0 then (
      into.min <- src.min;
      into.max <- src.max)
    else (
      if src.min < into.min then into.min <- src.min;
      if src.max > into.max then into.max <- src.max);
    into.n <- into.n + src.n;
    into.sum <- into.sum + src.sum;
    Array.iteri
      (fun b c -> into.bucket_counts.(b) <- into.bucket_counts.(b) + c)
      src.bucket_counts
  end

let merge ~into src =
  List.iter
    (fun name ->
      match (Hashtbl.find src.tbl name, Hashtbl.find_opt into.tbl name) with
      | C c, None -> incr ~by:c.c (counter into name)
      | C c, Some (C _) -> incr ~by:c.c (counter into name)
      | H h, None -> merge_hist ~into:(histogram into name) h
      | H h, Some (H _) -> merge_hist ~into:(histogram into name) h
      | C _, Some (H _) | H _, Some (C _) ->
          invalid_arg (Printf.sprintf "Metrics.merge: %S changes kind" name))
    (List.rev src.rev_order)

type stat = Counter of int | Histogram of summary

let stats t =
  List.rev_map
    (fun name ->
      match Hashtbl.find t.tbl name with
      | C c -> (name, Counter c.c)
      | H h -> (name, Histogram (summary h)))
    t.rev_order

let find t name =
  match Hashtbl.find_opt t.tbl name with
  | None -> None
  | Some (C c) -> Some (Counter c.c)
  | Some (H h) -> Some (Histogram (summary h))

let pp ppf t =
  let width =
    List.fold_left (fun w (name, _) -> Stdlib.max w (String.length name)) 0 (stats t)
  in
  List.iter
    (fun (name, stat) ->
      match stat with
      | Counter c -> Format.fprintf ppf "  %-*s %6d@," width name c
      | Histogram s ->
          if s.n = 0 then Format.fprintf ppf "  %-*s (no samples)@," width name
          else
            Format.fprintf ppf "  %-*s n=%d sum=%d min=%d max=%d avg=%.1f@," width name
              s.n s.sum s.min s.max
              (float_of_int s.sum /. float_of_int s.n))
    (stats t)

let to_json t =
  Json.Obj
    (List.map
       (fun (name, stat) ->
         match stat with
         | Counter c -> (name, Json.Int c)
         | Histogram s ->
             ( name,
               Json.Obj
                 [
                   ("count", Json.Int s.n);
                   ("sum", Json.Int s.sum);
                   ("min", Json.Int s.min);
                   ("max", Json.Int s.max);
                   ( "buckets",
                     Json.List
                       (List.map
                          (fun (upper, c) -> Json.List [ Json.Int upper; Json.Int c ])
                          s.buckets) );
                 ] ))
       (stats t))

let to_json_string t = Json.render (to_json t)
